package cache

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

const baseNetlist = `
circuit tiny
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
device M1 transistor 40 30
pin M1 in -20 0
pin M1 out 20 0
pad PIN
pad POUT
strip TL1 PIN.p M1.in length=130
strip TL2 M1.out POUT.p length=140
`

// reorderedNetlist declares the identical circuit with every section
// shuffled.
const reorderedNetlist = `
circuit tiny
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
pad POUT
device M1 transistor 40 30
pin M1 out 20 0
pin M1 in -20 0
pad PIN
strip TL2 M1.out POUT.p length=140
strip TL1 PIN.p M1.in length=130
`

func parse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyStability(t *testing.T) {
	base := parse(t, baseNetlist)
	tests := []struct {
		name     string
		circuit  *netlist.Circuit
		opts     pilp.Options
		wantSame bool
	}{
		{
			name:     "identical circuit and options",
			circuit:  parse(t, baseNetlist),
			wantSame: true,
		},
		{
			name:     "reordered netlist declarations",
			circuit:  parse(t, reorderedNetlist),
			wantSame: true,
		},
		{
			name:     "worker count is output-invariant",
			circuit:  parse(t, baseNetlist),
			opts:     pilp.Options{Workers: 7},
			wantSame: true,
		},
		{
			name:     "explicit defaults equal zero values",
			circuit:  parse(t, baseNetlist),
			opts:     pilp.Options{ChainPoints: 4, MaxChainPoints: 8, MaxRefineIterations: 3},
			wantSame: true,
		},
		{
			name:     "different strip length",
			circuit:  parse(t, strings.Replace(baseNetlist, "length=130", "length=131", 1)),
			wantSame: false,
		},
		{
			name:     "different chain points",
			circuit:  parse(t, baseNetlist),
			opts:     pilp.Options{ChainPoints: 6},
			wantSame: false,
		},
		{
			name:     "different strip time limit",
			circuit:  parse(t, baseNetlist),
			opts:     pilp.Options{StripTimeLimit: time.Second},
			wantSame: false,
		},
	}
	baseKey := Key(base, pilp.Options{})
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Key(tt.circuit, tt.opts)
			if (got == baseKey) != tt.wantSame {
				t.Errorf("Key = %s, base = %s, wantSame=%v", got, baseKey, tt.wantSame)
			}
		})
	}
}

func entry(circuit, layout string) Entry {
	return Entry{Circuit: circuit, Layout: []byte(layout), Runtime: time.Second, Nodes: 42}
}

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestLRUHitMiss(t *testing.T) {
	c := NewLRU(4, 0)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), entry("a", "layout a"))
	got, ok := c.Get(key(1))
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Circuit != "a" || string(got.Layout) != "layout a" || got.Nodes != 42 || got.Runtime != time.Second {
		t.Errorf("entry mangled: %+v", got)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("hit on absent key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	tests := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		puts       int
		access     []int // gets between puts to refresh recency
		wantAlive  []int
		wantGone   []int
	}{
		{
			name:       "entry limit evicts oldest",
			maxEntries: 3,
			puts:       5,
			wantAlive:  []int{2, 3, 4},
			wantGone:   []int{0, 1},
		},
		{
			name:       "get refreshes recency",
			maxEntries: 3,
			puts:       5,
			access:     []int{0}, // touched after put 2 ⇒ survives longer than 1
			wantAlive:  []int{3, 4},
			wantGone:   []int{1, 2},
		},
		{
			name:       "byte limit evicts regardless of entry limit",
			maxEntries: 100,
			maxBytes:   3 * (10 + entryOverhead + 1), // room for ~3 entries
			puts:       5,
			wantAlive:  []int{4},
			wantGone:   []int{0, 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewLRU(tt.maxEntries, tt.maxBytes)
			for i := 0; i < tt.puts; i++ {
				c.Put(key(i), entry("c", strings.Repeat("x", 9))) // 9 + "c" = 10 bytes payload
				if i == 2 {
					for _, a := range tt.access {
						c.Get(key(a))
					}
				}
			}
			for _, i := range tt.wantAlive {
				if _, ok := c.Get(key(i)); !ok {
					t.Errorf("entry %d evicted, want alive", i)
				}
			}
			for _, i := range tt.wantGone {
				if _, ok := c.Get(key(i)); ok {
					t.Errorf("entry %d alive, want evicted", i)
				}
			}
		})
	}
}

func TestLRUOversizedEntryDropped(t *testing.T) {
	c := NewLRU(10, 256)
	c.Put(key(1), entry("small", "ok"))
	c.Put(key(2), entry("big", strings.Repeat("x", 1024)))
	if _, ok := c.Get(key(2)); ok {
		t.Error("oversized entry stored")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("oversized put evicted unrelated entries")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(4, 0)
	c.Put(key(1), entry("a", "v1"))
	c.Put(key(1), entry("a", "v2 longer"))
	got, ok := c.Get(key(1))
	if !ok || string(got.Layout) != "v2 longer" {
		t.Fatalf("got %q, want updated layout", got.Layout)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after double put, want 1", st.Entries)
	}
}

func TestDirRoundTrip(t *testing.T) {
	d, err := NewDir(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key(1)); ok {
		t.Fatal("hit on empty directory")
	}
	want := entry("twostage", "layout twostage\nplace M1 1 2 R0\n")
	d.Put(key(1), want)
	got, ok := d.Get(key(1))
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Circuit != want.Circuit || string(got.Layout) != string(want.Layout) ||
		got.Runtime != want.Runtime || got.Nodes != want.Nodes {
		t.Errorf("round trip mangled entry: got %+v want %+v", got, want)
	}
}

func TestDirRejectsMalformedKeys(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		d.Put(bad, entry("x", "y"))
		if _, ok := d.Get(bad); ok {
			t.Errorf("malformed key %q round-tripped", bad)
		}
	}
}

func TestTieredPromotion(t *testing.T) {
	fast := NewLRU(4, 0)
	slow, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, slow)

	// A slow-tier-only entry is found and promoted.
	slow.Put(key(1), entry("a", "layout a"))
	if _, ok := tiered.Get(key(1)); !ok {
		t.Fatal("tiered miss on slow-tier entry")
	}
	if _, ok := fast.Get(key(1)); !ok {
		t.Error("slow-tier hit not promoted to fast tier")
	}

	// Put writes through to both tiers.
	tiered.Put(key(2), entry("b", "layout b"))
	if _, ok := fast.Get(key(2)); !ok {
		t.Error("put missing from fast tier")
	}
	if _, ok := slow.Get(key(2)); !ok {
		t.Error("put missing from slow tier")
	}
}

func TestLRUEvictionCounter(t *testing.T) {
	c := NewLRU(2, 0)
	for i := 0; i < 5; i++ {
		c.Put(key(i), entry("x", "layout"))
	}
	st := c.Stats()
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3 (5 puts into a 2-entry cache)", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestDirStats(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key(1)); ok {
		t.Fatal("hit on empty dir")
	}
	d.Put(key(1), entry("a", "layout a"))
	if _, ok := d.Get(key(1)); !ok {
		t.Fatal("miss after put")
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("footprint = %d entries / %d bytes, want 1 entry with bytes", st.Entries, st.Bytes)
	}
}

func TestTieredStatsCountEachLookupOnce(t *testing.T) {
	fast := NewLRU(4, 0)
	slow, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, slow)

	slow.Put(key(1), entry("a", "layout a"))
	if _, ok := tiered.Get(key(1)); !ok { // slow hit (promoted)
		t.Fatal("slow-tier entry not found")
	}
	if _, ok := tiered.Get(key(1)); !ok { // fast hit
		t.Fatal("promoted entry not found")
	}
	if _, ok := tiered.Get(key(2)); ok { // both miss
		t.Fatal("hit on absent key")
	}
	st := tiered.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("tiered stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestEntryShardsRoundTrip(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := entry("a", "layout a")
	e.Shards = 5
	d.Put(key(1), e)
	got, ok := d.Get(key(1))
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Shards != 5 {
		t.Errorf("shards = %d, want 5", got.Shards)
	}
}
