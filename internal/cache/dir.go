package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"rficlayout/internal/faultinject"
	"rficlayout/internal/pilp"
)

// Dir is a directory-backed cache tier: one JSON file per entry, named by
// the content-address key. It persists across process runs, which is what
// lets a second `rficgen -cache DIR` invocation skip circuits the first one
// solved. Writes go through a temp file + rename so concurrent processes
// sharing a directory never observe torn entries. Dir is safe for concurrent
// use; all I/O errors degrade to cache misses or dropped writes.
//
// The tier is self-healing: every entry records the SHA-256 of its layout
// text at write time and Get verifies it (plus JSON well-formedness) at read
// time. A corrupt entry is quarantined — renamed to <key>.json.corrupt so it
// stops matching the entry suffix but survives for forensics — counted in
// Stats.Corrupt, and reported as a miss, so the caller re-solves and the next
// Put overwrites the bad entry with a good one. Transient injected read
// errors (faultinject) are retried a bounded, deterministic number of times
// before degrading to a miss.
type Dir struct {
	path    string
	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
}

// readRetries bounds the deterministic retry loop for transient read errors.
const readRetries = 3

// NewDir opens (creating if needed) a directory-backed cache tier.
func NewDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating cache directory: %w", err)
	}
	return &Dir{path: path}, nil
}

// diskEntry is the JSON on-disk form of an Entry. Shards is omitted for
// monolithic solves, so entries written before sharding existed decode
// unchanged.
type diskEntry struct {
	Circuit string `json:"circuit"`
	Layout  string `json:"layout"`
	// Checksum is the hex SHA-256 of Layout, written since the self-healing
	// tier landed; entries without it (or written before it) skip
	// verification, so old caches keep working.
	Checksum  string       `json:"sha256,omitempty"`
	RuntimeNS int64        `json:"runtime_ns"`
	Nodes     int          `json:"nodes"`
	Shards    int          `json:"shards,omitempty"`
	LP        *diskLPStats `json:"lp,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
}

// diskLPStats is the on-disk form of the simplex-effort counters; a nil
// pointer (entries predating the counters) decodes to zeros.
type diskLPStats struct {
	Pivots           int `json:"pivots"`
	Refactorizations int `json:"refactorizations"`
	WarmHits         int `json:"warm_hits"`
	WarmMisses       int `json:"warm_misses"`
	ColdSolves       int `json:"cold_solves"`
	WarmSeedAccepted int `json:"warm_seed_accepted"`
	WarmSeedRejected int `json:"warm_seed_rejected"`
}

func toDiskLPStats(s pilp.LPStats) *diskLPStats {
	if s == (pilp.LPStats{}) {
		return nil
	}
	return &diskLPStats{
		Pivots:           s.Pivots,
		Refactorizations: s.Refactorizations,
		WarmHits:         s.WarmHits,
		WarmMisses:       s.WarmMisses,
		ColdSolves:       s.ColdSolves,
		WarmSeedAccepted: s.WarmSeedAccepted,
		WarmSeedRejected: s.WarmSeedRejected,
	}
}

func fromDiskLPStats(d *diskLPStats) pilp.LPStats {
	if d == nil {
		return pilp.LPStats{}
	}
	s := pilp.LPStats{
		WarmSeedAccepted: d.WarmSeedAccepted,
		WarmSeedRejected: d.WarmSeedRejected,
	}
	s.Pivots = d.Pivots
	s.Refactorizations = d.Refactorizations
	s.WarmHits = d.WarmHits
	s.WarmMisses = d.WarmMisses
	s.ColdSolves = d.ColdSolves
	return s
}

// keyOK rejects keys that are not hex content addresses, so a malformed key
// can never escape the cache directory.
func keyOK(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *Dir) file(key string) string {
	return filepath.Join(d.path, key+".json")
}

// Get reads the entry stored under key; any read or decode failure is a
// miss. Decode failures and checksum mismatches additionally quarantine the
// file so the same corrupt entry is never re-read.
func (d *Dir) Get(key string) (Entry, bool) {
	if !keyOK(key) {
		d.misses.Add(1)
		return Entry{}, false
	}
	data, err := d.read(d.file(key))
	if err != nil {
		d.misses.Add(1)
		return Entry{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil {
		d.quarantine(key)
		d.misses.Add(1)
		return Entry{}, false
	}
	if de.Checksum != "" && de.Checksum != layoutChecksum(de.Layout) {
		d.quarantine(key)
		d.misses.Add(1)
		return Entry{}, false
	}
	d.hits.Add(1)
	return Entry{
		Circuit: de.Circuit,
		Layout:  []byte(de.Layout),
		Runtime: time.Duration(de.RuntimeNS),
		Nodes:   de.Nodes,
		Shards:  de.Shards,
		LP:      fromDiskLPStats(de.LP),
	}, true
}

// read is os.ReadFile plus the injected-transient-error retry loop: an
// injected read error is retried up to readRetries times (the injection
// schedule is deterministic, so so is the retry outcome); real I/O errors
// degrade to a miss immediately, as before.
func (d *Dir) read(path string) ([]byte, error) {
	var err error
	for attempt := 0; attempt <= readRetries; attempt++ {
		if err = faultinject.ErrorAt(faultinject.PointCacheRead); err != nil {
			continue
		}
		var data []byte
		if data, err = os.ReadFile(path); err != nil {
			return nil, err
		}
		return data, nil
	}
	return nil, err
}

// quarantine renames a corrupt entry to <key>.json.corrupt — off the entry
// namespace (Stats and Get only look at *.json) but preserved for forensics.
// If the rename fails for any reason other than the entry already being gone,
// the file is removed outright; either way the corrupt bytes can never be
// served. The corrupt counter increments only for the caller whose rename (or
// fallback remove) actually transitioned the file: two readers racing on the
// same corrupt entry both read the bad bytes, but the rename is atomic, so
// exactly one of them quarantines and counts — the invariant the chaos
// battery's corrupt == fired(torn) reconciliation rests on.
func (d *Dir) quarantine(key string) {
	path := d.file(key)
	if err := os.Rename(path, path+".corrupt"); err == nil {
		d.corrupt.Add(1)
		return
	} else if os.IsNotExist(err) {
		// A concurrent reader already quarantined (or a Put replaced) it.
		return
	}
	if os.Remove(path) == nil {
		d.corrupt.Add(1)
	}
}

// layoutChecksum is the per-entry integrity hash: hex SHA-256 of the layout
// text, the one field whose silent corruption would poison downstream
// byte-identity guarantees.
func layoutChecksum(layout string) string {
	sum := sha256.Sum256([]byte(layout))
	return hex.EncodeToString(sum[:])
}

// Put writes the entry under key; failures are silently dropped (the cache
// is an optimization, never a correctness dependency).
func (d *Dir) Put(key string, e Entry) {
	if !keyOK(key) {
		return
	}
	if err := faultinject.ErrorAt(faultinject.PointCacheWrite); err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{
		Circuit:   e.Circuit,
		Layout:    string(e.Layout),
		Checksum:  layoutChecksum(string(e.Layout)),
		RuntimeNS: int64(e.Runtime),
		Nodes:     e.Nodes,
		Shards:    e.Shards,
		LP:        toDiskLPStats(e.LP),
		CreatedAt: time.Now().UTC(),
	})
	if err != nil {
		return
	}
	if faultinject.Fired(faultinject.PointCacheTorn) {
		// A torn write commits only a prefix of the entry: either truncated
		// JSON (decode failure) or — because the checksum field precedes the
		// layout tail — a mismatching checksum. Both trip quarantine on read.
		data = data[:len(data)/2]
	}
	tmp, err := os.CreateTemp(d.path, "put-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := faultinject.ErrorAt(faultinject.PointCacheRename); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.file(key)); err != nil {
		os.Remove(name)
	}
}

// Stats reports the hit/miss counters of this process plus the directory's
// current footprint (entry files and their byte total, scanned on demand).
func (d *Dir) Stats() Stats {
	s := Stats{Hits: d.hits.Load(), Misses: d.misses.Load(), Corrupt: d.corrupt.Load()}
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return s
	}
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		s.Entries++
		if info, err := de.Info(); err == nil {
			s.Bytes += info.Size()
		}
	}
	return s
}

// Tiered layers a fast cache in front of a slow one: gets try fast first and
// promote slow hits, puts write through to both.
type Tiered struct {
	fast Cache
	slow Cache

	hits   atomic.Int64
	misses atomic.Int64
}

// NewTiered combines a fast (typically in-memory) and a slow (typically
// on-disk) tier.
func NewTiered(fast, slow Cache) *Tiered {
	return &Tiered{fast: fast, slow: slow}
}

// Get tries the fast tier, falls back to the slow tier and promotes hits.
func (t *Tiered) Get(key string) (Entry, bool) {
	if e, ok := t.fast.Get(key); ok {
		t.hits.Add(1)
		return e, true
	}
	e, ok := t.slow.Get(key)
	if ok {
		t.hits.Add(1)
		t.fast.Put(key, e)
	} else {
		t.misses.Add(1)
	}
	return e, ok
}

// Stats reports the combined view: a hit in either tier counts once (the
// per-tier counters would double-count fast misses that the slow tier
// answers), while evictions and the footprint come from the fast tier when
// it can report them.
func (t *Tiered) Stats() Stats {
	s := Stats{Hits: t.hits.Load(), Misses: t.misses.Load()}
	if sr, ok := t.fast.(StatsReader); ok {
		fs := sr.Stats()
		s.Evictions = fs.Evictions
		s.Entries = fs.Entries
		s.Bytes = fs.Bytes
	}
	// Corruption only happens in the persistent (slow) tier; surface it so
	// /healthz sees quarantines even behind the memory tier.
	if sr, ok := t.slow.(StatsReader); ok {
		s.Corrupt = sr.Stats().Corrupt
	}
	return s
}

// Put writes through to both tiers.
func (t *Tiered) Put(key string, e Entry) {
	t.fast.Put(key, e)
	t.slow.Put(key, e)
}
