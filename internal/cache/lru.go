package cache

import (
	"container/list"
	"sync"
)

// LRU is an in-memory least-recently-used cache with entry and byte limits.
// It is safe for concurrent use.
type LRU struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	hits       int64
	misses     int64
	evictions  int64
}

type lruItem struct {
	key   string
	entry Entry
}

// Default LRU limits: enough for a large batch of circuits without letting
// layout text grow unbounded.
const (
	DefaultMaxEntries = 1024
	DefaultMaxBytes   = 64 << 20 // 64 MiB
)

// NewLRU returns an LRU bounded to maxEntries entries and maxBytes of layout
// text (approximate). Zero or negative limits select the defaults.
func NewLRU(maxEntries int, maxBytes int64) *LRU {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &LRU{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// Get returns the entry under key and marks it most recently used.
func (c *LRU) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Put stores the entry under key, evicting least-recently-used entries until
// both limits hold. An entry larger than the byte limit on its own is
// dropped rather than cycling the whole cache.
func (c *LRU) Put(key string, e Entry) {
	if e.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		item := el.Value.(*lruItem)
		c.bytes += e.size() - item.entry.size()
		item.entry = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
		c.bytes += e.size()
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		item := oldest.Value.(*lruItem)
		c.ll.Remove(oldest)
		delete(c.items, item.key)
		c.bytes -= item.entry.size()
		c.evictions++
	}
}

// Stats returns hit/miss/eviction counters and the current footprint.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len(), Bytes: c.bytes}
}
