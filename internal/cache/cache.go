// Package cache provides a content-addressed result cache for the layout
// flow. The progressive solver is a pure function of the parsed circuit and
// the solve options (see the determinism contract in doc.go), so a cache
// keyed by a canonical hash of both returns *exact* results: a hit is
// byte-identical to what re-solving would produce. The package offers an
// in-memory LRU tier with entry and byte limits, a directory-backed tier
// that persists across process runs, and a Tiered combination of the two;
// internal/server and cmd/rficgen sit in front of the engine with one of
// these.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Key returns the content address of one solve: the hex SHA-256 of the
// canonical circuit text plus the solve-option fingerprint. Declaration
// order in the source netlist does not matter (netlist.Canonical sorts it
// away), and neither do output-invariant options such as worker counts
// (pilp.Options.Fingerprint excludes them).
func Key(c *netlist.Circuit, opts pilp.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "rficlayout-cache-v1\n%s\noptions %s\n", netlist.Canonical(c), opts.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one cached solve outcome. Layout holds the layout text exactly as
// layout.Format rendered it after the original solve, so serving the cached
// bytes is byte-identical to re-solving; Runtime and Nodes echo the original
// solve's stats so front-ends can report them alongside a hit.
type Entry struct {
	// Circuit is the circuit name, for listings and sanity checks.
	Circuit string
	// Layout is the layout text (layout.Format output).
	Layout []byte
	// Runtime is the wall-clock time of the original solve.
	Runtime time.Duration
	// Nodes is the total branch-and-bound node count of the original solve.
	Nodes int
	// Shards is how many phase-1 clusters the original solve used (zero for
	// the monolithic phase 1).
	Shards int
	// LP echoes the original solve's simplex-level effort counters so
	// cached responses report the same stats as the solve that produced
	// them. Entries written before these counters existed decode as zero.
	LP pilp.LPStats
}

// size approximates the memory footprint of the entry for the LRU byte
// limit.
func (e Entry) size() int64 {
	return int64(len(e.Layout)) + int64(len(e.Circuit)) + entryOverhead
}

// entryOverhead charges each entry for its key, list element and bookkeeping
// so that many tiny entries still respect the byte limit.
const entryOverhead = 128

// Cache is the minimal store interface shared by all tiers. Implementations
// must be safe for concurrent use.
type Cache interface {
	// Get returns the entry stored under key, if any.
	Get(key string) (Entry, bool)
	// Put stores the entry under key, evicting older entries if needed.
	// Storage is best-effort: a tier may drop the entry (oversized, I/O
	// error) without failing the solve that produced it.
	Put(key string, e Entry)
}

// Stats reports cache effectiveness counters. Entries and Bytes describe the
// current footprint where the tier can measure it cheaply (zero otherwise).
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	// Corrupt counts entries that failed checksum or decode verification and
	// were quarantined (persistent tier only; always a miss, never bad data).
	Corrupt int64 `json:"corrupt"`
}

// StatsReader is implemented by tiers that report effectiveness counters;
// the serving front-end exposes them on GET /healthz.
type StatsReader interface {
	Stats() Stats
}
