package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rficlayout/internal/faultinject"
)

// arm installs a fault plan on the global registry for one test; the
// injection points in Dir consult it. Tests using it must not run parallel.
func arm(t *testing.T, spec string, seed int64) *faultinject.Registry {
	t.Helper()
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := faultinject.New(plan, seed)
	faultinject.Enable(r)
	t.Cleanup(faultinject.Disable)
	return r
}

// corruptLayout rewrites the stored entry with a flipped layout text but the
// original checksum — silent bit rot, the exact failure the checksum exists
// to catch.
func corruptLayout(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil {
		t.Fatal(err)
	}
	de.Layout = strings.Replace(de.Layout, "1", "9", 1)
	out, err := json.Marshal(de)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDirChecksumQuarantine(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(1), entry("a", "layout a\nplace M1 1 2 R0\n"))
	corruptLayout(t, d.file(key(1)))

	if _, ok := d.Get(key(1)); ok {
		t.Fatal("checksum-mismatched entry served as a hit")
	}
	st := d.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d, want 0 (quarantined file must leave the entry namespace)", st.Entries)
	}
	if _, err := os.Stat(d.file(key(1)) + ".corrupt"); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	// Self-healing: the re-solve's Put overwrites, and the entry serves again.
	d.Put(key(1), entry("a", "layout a\nplace M1 1 2 R0\n"))
	if _, ok := d.Get(key(1)); !ok {
		t.Fatal("miss after healing Put")
	}
}

func TestDirTornJSONQuarantine(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(2), entry("b", "layout b"))
	data, err := os.ReadFile(d.file(key(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.file(key(2)), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key(2)); ok {
		t.Fatal("torn JSON served as a hit")
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
}

// Entries written before the checksum existed carry no sha256 field and must
// keep decoding as plain hits.
func TestDirLegacyEntryWithoutChecksum(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(map[string]interface{}{
		"circuit": "old", "layout": "layout old\n", "runtime_ns": 1000, "nodes": 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.file(key(3)), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	e, ok := d.Get(key(3))
	if !ok {
		t.Fatal("legacy entry without checksum rejected")
	}
	if e.Circuit != "old" || string(e.Layout) != "layout old\n" {
		t.Errorf("legacy entry mangled: %+v", e)
	}
	if st := d.Stats(); st.Corrupt != 0 {
		t.Errorf("corrupt = %d, want 0", st.Corrupt)
	}
}

func TestDirInjectedTornWriteSelfHeals(t *testing.T) {
	r := arm(t, "cache.dir.torn=1/1", 7)
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := entry("t", "layout t\nplace M1 1 2 R0\n")
	d.Put(key(4), want) // torn: commits half the entry
	if _, ok := d.Get(key(4)); ok {
		t.Fatal("torn entry served as a hit")
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
	d.Put(key(4), want) // budget exhausted: clean write heals the entry
	got, ok := d.Get(key(4))
	if !ok {
		t.Fatal("miss after healing Put")
	}
	if string(got.Layout) != string(want.Layout) {
		t.Errorf("healed layout = %q, want %q", got.Layout, want.Layout)
	}
	if fired := r.FiredTotal(faultinject.PointCacheTorn); fired != 1 {
		t.Errorf("torn fired %d times, want 1", fired)
	}
}

func TestDirInjectedReadErrorRetries(t *testing.T) {
	// Budget below the retry bound: the bounded retry absorbs the transient
	// errors and the read still hits.
	arm(t, "cache.dir.read=1/2", 11)
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(5), entry("r", "layout r"))
	if _, ok := d.Get(key(5)); !ok {
		t.Fatal("bounded retry did not absorb 2 injected read errors")
	}
	if st := d.Stats(); st.Hits != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit 0 corrupt", st)
	}
}

func TestDirInjectedReadErrorExhaustsRetries(t *testing.T) {
	// More consecutive injected errors than retries: degrade to a miss, no
	// quarantine (the file itself is fine).
	arm(t, "cache.dir.read=1/8", 11)
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(6), entry("r", "layout r"))
	if _, ok := d.Get(key(6)); ok {
		t.Fatal("hit through more injected errors than the retry bound")
	}
	st := d.Stats()
	if st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 miss 0 corrupt", st)
	}
	faultinject.Disable()
	if _, ok := d.Get(key(6)); !ok {
		t.Fatal("entry not served once faults clear")
	}
}

func TestDirInjectedWriteAndRenameDropEntry(t *testing.T) {
	arm(t, "cache.dir.write=1/1,cache.dir.rename=1/1", 3)
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(7), entry("w", "layout w")) // write error: dropped
	d.Put(key(7), entry("w", "layout w")) // rename error: dropped
	if _, ok := d.Get(key(7)); ok {
		t.Fatal("entry survived injected write+rename failures")
	}
	// No stray temp files may accumulate from the failed writes.
	matches, err := filepath.Glob(filepath.Join(d.path, "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("stray temp files after injected failures: %v", matches)
	}
	d.Put(key(7), entry("w", "layout w")) // budgets exhausted: lands
	if _, ok := d.Get(key(7)); !ok {
		t.Fatal("miss after faults cleared")
	}
}

func TestTieredStatsSurfaceCorrupt(t *testing.T) {
	fast := NewLRU(4, 0)
	slow, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, slow)
	slow.Put(key(8), entry("c", "layout c\nplace M1 1 2 R0\n"))
	corruptLayout(t, slow.file(key(8)))
	if _, ok := tiered.Get(key(8)); ok {
		t.Fatal("corrupt slow-tier entry served through the tiered cache")
	}
	if st := tiered.Stats(); st.Corrupt != 1 {
		t.Errorf("tiered corrupt = %d, want 1", st.Corrupt)
	}
}

// TestDirConcurrentQuarantine races several readers onto the same corrupt
// entry: each reads the bad bytes and calls quarantine, but the rename is
// atomic, so exactly one transition happens — one .corrupt file, one counter
// increment. Without the transition-gated counting, every racing reader would
// count, and the chaos battery's corrupt == fired(torn) reconciliation would
// flake under load.
func TestDirConcurrentQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(key(1), entry("a", "layout a\nplace M1 1 2 R0\n"))
	corruptLayout(t, d.file(key(1)))

	const readers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	hits := make([]bool, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, hits[i] = d.Get(key(1))
		}(i)
	}
	close(start)
	wg.Wait()

	for i, hit := range hits {
		if hit {
			t.Errorf("reader %d served the corrupt entry as a hit", i)
		}
	}
	if got := d.Stats().Corrupt; got != 1 {
		t.Errorf("corrupt = %d, want exactly 1 for one corrupt entry", got)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("quarantine files = %v, want exactly one", matches)
	}
	if _, err := os.Stat(d.file(key(1))); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still in the entry namespace: err=%v", err)
	}
}
