// Package report formats the benchmark results of the experiment harness in
// the shape of the paper's Table 1 and Figure 11 data series.
package report

import (
	"fmt"
	"strings"
	"time"

	"rficlayout/internal/emsim"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
)

// Table1Row is one circuit/area row of Table 1.
type Table1Row struct {
	Circuit     string
	Microstrips int
	Devices     int
	AreaWidth   geom.Coord
	AreaHeight  geom.Coord

	ManualMaxBends   int
	ManualTotalBends int
	ManualRuntime    time.Duration
	ManualAvailable  bool

	PILPMaxBends   int
	PILPTotalBends int
	PILPRuntime    time.Duration
	// PILPUnmatched counts microstrips whose exact length could not be
	// closed by the from-scratch solver (0 for a fully exact layout).
	PILPUnmatched int
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %12s | %18s | %18s | %22s\n",
		"Circuit", "#strips", "#devices", "Area(µm)", "Max bends (M/P)", "Total bends (M/P)", "Runtime (M/P)")
	for _, r := range rows {
		area := fmt.Sprintf("%.0f×%.0f", geom.Microns(r.AreaWidth), geom.Microns(r.AreaHeight))
		manualMax, manualTotal, manualRT := "n/a", "n/a", "n/a"
		if r.ManualAvailable {
			manualMax = fmt.Sprintf("%d", r.ManualMaxBends)
			manualTotal = fmt.Sprintf("%d", r.ManualTotalBends)
			manualRT = r.ManualRuntime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-10s %8d %8d %12s | %8s /%8d | %8s /%8d | %10s /%10s",
			r.Circuit, r.Microstrips, r.Devices, area,
			manualMax, r.PILPMaxBends,
			manualTotal, r.PILPTotalBends,
			manualRT, r.PILPRuntime.Round(time.Millisecond))
		if r.PILPUnmatched > 0 {
			fmt.Fprintf(&b, "   (%d strips not exactly matched)", r.PILPUnmatched)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatSweep renders an S-parameter sweep as the data series behind one
// Figure 11 panel.
func FormatSweep(title string, results []emsim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%10s %10s %10s %10s\n", "freq(GHz)", "S11(dB)", "S21(dB)", "S22(dB)")
	for _, r := range results {
		fmt.Fprintf(&b, "%10.2f %10.3f %10.3f %10.3f\n", r.FreqGHz, r.S11dB, r.S21dB, r.S22dB)
	}
	return b.String()
}

// LayoutSummary is a one-line description of a layout's quality metrics.
func LayoutSummary(name string, l *layout.Layout, runtime time.Duration) string {
	m := l.Metrics()
	violations := l.Check(layout.CheckOptions{PinTolerance: 2})
	return fmt.Sprintf("%s: max bends %d, total bends %d, max |Δl| %.2f µm, %d DRC violations, runtime %s",
		name, m.MaxBends, m.TotalBends, geom.Microns(m.MaxLengthError), len(violations),
		runtime.Round(time.Millisecond))
}

// UnmatchedStrips counts the strips whose equivalent length misses the target
// by more than the tolerance.
func UnmatchedStrips(l *layout.Layout, tol geom.Coord) int {
	delta := l.Circuit.Tech.BendCompensation
	n := 0
	for _, rs := range l.RoutedStrips() {
		if geom.AbsCoord(rs.LengthError(delta)) > tol {
			n++
		}
	}
	return n
}
