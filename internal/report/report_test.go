package report

import (
	"strings"
	"testing"
	"time"

	"rficlayout/internal/emsim"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{
		{
			Circuit: "lna94", Microstrips: 25, Devices: 34,
			AreaWidth: geom.FromMicrons(890), AreaHeight: geom.FromMicrons(615),
			ManualAvailable: true, ManualMaxBends: 9, ManualTotalBends: 59, ManualRuntime: time.Minute,
			PILPMaxBends: 4, PILPTotalBends: 22, PILPRuntime: 18 * time.Minute,
		},
		{
			Circuit: "lna94", Microstrips: 25, Devices: 34,
			AreaWidth: geom.FromMicrons(845), AreaHeight: geom.FromMicrons(580),
			PILPMaxBends: 5, PILPTotalBends: 29, PILPRuntime: 28 * time.Minute, PILPUnmatched: 1,
		},
	}
	out := FormatTable1(rows)
	for _, want := range []string{"lna94", "890×615", "845×580", "59", "22", "n/a", "not exactly matched"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSweep(t *testing.T) {
	out := FormatSweep("demo", []emsim.Result{{FreqGHz: 60, S11dB: -12, S21dB: 17, S22dB: -9}})
	if !strings.Contains(out, "demo") || !strings.Contains(out, "17.000") {
		t.Errorf("sweep output wrong:\n%s", out)
	}
}

func smallLayout(t *testing.T) *layout.Layout {
	t.Helper()
	c := netlist.NewCircuit("r", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(200))
	c.AddDevice(netlist.NewPad("P1", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("P2", c.Tech.PadSize))
	c.Connect("TL", "P1", "p", "P2", "p", geom.FromMicrons(300))
	l := layout.New(c)
	if err := l.Place("P1", geom.Pt(0, geom.FromMicrons(100)), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place("P2", geom.Pt(c.AreaWidth, geom.FromMicrons(100)), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Route("TL", geom.Pt(0, geom.FromMicrons(100)), geom.Pt(c.AreaWidth, geom.FromMicrons(100))); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutSummaryAndUnmatched(t *testing.T) {
	l := smallLayout(t)
	s := LayoutSummary("demo", l, 42*time.Millisecond)
	if !strings.Contains(s, "demo") || !strings.Contains(s, "42ms") {
		t.Errorf("summary = %q", s)
	}
	// The straight 300 µm route equals the 300 µm target → 0 unmatched.
	if got := UnmatchedStrips(l, 10); got != 0 {
		t.Errorf("unmatched = %d, want 0", got)
	}
	// Tighten the target so it no longer matches.
	ms, _ := l.Circuit.Microstrip("TL")
	ms.TargetLength = geom.FromMicrons(250)
	if got := UnmatchedStrips(l, 10); got != 1 {
		t.Errorf("unmatched = %d, want 1", got)
	}
}
