package pilp

import (
	"context"
	"testing"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/partition"
	"rficlayout/internal/tech"
)

// largeConstructed builds the synthetic large benchmark circuit and its
// constructed (phase-1a) layout, the input of the global adjustment.
func largeConstructed(t *testing.T) (*netlist.Circuit, *layout.Layout) {
	t.Helper()
	c := netlist.Normalized(circuits.Build(circuits.LargeSpec(1)))
	l, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, l
}

// TestShardedAdjustDeterministicAcrossWorkers is the shard-level determinism
// guard: the sharded phase 1 must produce byte-identical layouts for every
// worker count, exactly like the rest of the flow.
func TestShardedAdjustDeterministicAcrossWorkers(t *testing.T) {
	c, constructed := largeConstructed(t)
	clusters := partition.Clusters(c, partition.Options{MaxDevices: 5})
	if len(clusters) < 4 {
		t.Fatalf("large circuit split into %d clusters, want >= 4", len(clusters))
	}

	var layouts [2]string
	var stats [2][]ShardStat
	for i, workers := range []int{1, 4} {
		opts := Options{
			ShardSize:      5,
			Workers:        workers,
			PhaseTimeLimit: 2 * time.Minute, // generous: a binding limit voids determinism
		}
		lay, st, err := shardedAdjust(context.Background(), c, constructed, clusters, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		layouts[i] = layout.Format(lay)
		stats[i] = st
	}
	if layouts[0] != layouts[1] {
		t.Error("sharded phase 1 differs between 1 and 4 workers")
	}
	if len(stats[0]) != len(clusters) {
		t.Fatalf("got %d shard stats, want %d", len(stats[0]), len(clusters))
	}
	stripsOwned, boundaries := 0, 0
	for i, st := range stats[0] {
		// Unconnected bias devices pack into strip-less clusters, so only
		// Devices is guaranteed per shard; strip ownership is checked in
		// aggregate below.
		if st.Cluster != i || st.Devices == 0 {
			t.Errorf("shard stat %d malformed: %+v", i, st)
		}
		if st.Rounds < 1 {
			t.Errorf("shard %d never solved: %+v", i, st)
		}
		stripsOwned += st.Strips
		boundaries += st.Boundary
		// Node counts are deterministic (Runtime is not) — they must agree
		// across worker counts.
		if st.Nodes != stats[1][i].Nodes || st.Rounds != stats[1][i].Rounds {
			t.Errorf("shard %d effort differs across workers: %+v vs %+v", i, st, stats[1][i])
		}
	}
	if stripsOwned != len(c.Microstrips) {
		t.Errorf("shards own %d strips, circuit has %d", stripsOwned, len(c.Microstrips))
	}
	if boundaries == 0 {
		t.Error("no boundary strips across >= 4 clusters of a connected chain")
	}
}

// TestShardedAdjustImprovesOrKeepsScore checks the coordination loop never
// returns something worse than its input — the same acceptance contract the
// monolithic solve has through GenerateCtx's score gate.
func TestShardedAdjustImprovesOrKeepsScore(t *testing.T) {
	c, constructed := largeConstructed(t)
	clusters := partition.Clusters(c, partition.Options{MaxDevices: 5})
	opts := Options{ShardSize: 5, PhaseTimeLimit: 2 * time.Minute}
	lay, _, err := shardedAdjust(context.Background(), c, constructed, clusters, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score(lay) > score(constructed) {
		t.Errorf("sharded adjustment worsened the score: %.1f -> %.1f", score(constructed), score(lay))
	}
}

// TestAdjustGlobalFallsBackToMonolithic locks in the dispatch rules: no
// sharding without ShardSize, and no sharding when the circuit does not
// split into at least two clusters.
func TestAdjustGlobalFallsBackToMonolithic(t *testing.T) {
	c := netlist.Normalized(cascadeCircuit())
	constructed, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}

	// ShardSize zero: monolithic, no shard stats.
	opts := fastOptions()
	lay, stats, err := adjustGlobal(context.Background(), c, constructed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lay == nil || stats != nil {
		t.Errorf("monolithic path returned stats %v", stats)
	}

	// ShardSize larger than the device count: one cluster, still monolithic.
	opts.ShardSize = 16
	lay2, stats, err := adjustGlobal(context.Background(), c, constructed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		t.Errorf("single-cluster circuit sharded: %v", stats)
	}
	if layout.Format(lay) != layout.Format(lay2) {
		t.Error("fallback layout differs from the plain monolithic solve")
	}
}

// TestGenerateWithShardingEndToEnd runs the full three-phase flow with
// sharding enabled on a mid-size chain and checks the shard stats surface in
// the Result while the layout still completes.
func TestGenerateWithShardingEndToEnd(t *testing.T) {
	c := shardableChain()
	opts := fastOptions()
	opts.ShardSize = 3
	// Reduced budgets always: this test pins the shard-stats plumbing and
	// layout completeness, not solution quality (TestGenerateCascade covers
	// that for the flow at large).
	opts.ChainPoints = 3
	opts.MaxChainPoints = 3
	opts.MaxRefineIterations = 1
	opts.StripTimeLimit = 500 * time.Millisecond
	res, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout == nil || !res.Layout.Complete() {
		t.Fatal("sharded flow produced an incomplete layout")
	}
	if len(res.Shards) < 2 {
		t.Fatalf("Result.Shards = %v, want >= 2 shards", res.Shards)
	}
	nodes := 0
	for _, st := range res.Shards {
		nodes += st.Nodes
	}
	if res.Nodes < nodes {
		t.Errorf("flow nodes %d below shard total %d", res.Nodes, nodes)
	}
}

// shardableChain is a 6-transistor chain with two stubs: 8 non-pad devices,
// enough to split at ShardSize 3 while staying fast to solve end to end.
func shardableChain() *netlist.Circuit {
	c := netlist.NewCircuit("shardchain", tech.Default90nm(),
		geom.FromMicrons(900), geom.FromMicrons(420))
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	prev, prevPin := "PIN", "p"
	for i := 1; i <= 6; i++ {
		name := "M" + string(rune('0'+i))
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("in", geom.PtMicrons(-20, 0), 0)
		d.AddPin("out", geom.PtMicrons(20, 0), 0)
		c.AddDevice(d)
		c.Connect("TL"+string(rune('0'+i)), prev, prevPin, name, "in", geom.FromMicrons(120))
		prev, prevPin = name, "out"
	}
	c.Connect("TL7", prev, prevPin, "POUT", "p", geom.FromMicrons(120))
	for i, anchor := range []string{"M2", "M5"} {
		name := "C" + string(rune('1'+i))
		d := netlist.NewDevice(name, netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("p", geom.PtMicrons(0, -15), 0)
		c.AddDevice(d)
		c.Connect("TS"+string(rune('1'+i)), anchor, "out", name, "p", geom.FromMicrons(80))
	}
	return c
}
