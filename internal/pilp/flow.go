package pilp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"rficlayout/internal/conc"
	"rficlayout/internal/geom"
	"rficlayout/internal/ilpmodel"
	"rficlayout/internal/layout"
	"rficlayout/internal/lp"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
)

// Options tunes the progressive flow.
type Options struct {
	// ChainPoints is the default chain-point count per microstrip in the
	// per-strip exact models (phase 2). Zero means 4.
	ChainPoints int
	// MaxChainPoints bounds chain-point insertion during refinement. Zero
	// means 8.
	MaxChainPoints int
	// Confinement is the τd window of phases 2–3. Zero means 40 µm.
	Confinement geom.Coord
	// PairRadius prunes non-overlap pairs farther apart than this. Zero
	// means 80 µm.
	PairRadius geom.Coord
	// StripTimeLimit bounds each per-strip ILP solve. Zero means 5 s. It is
	// sugar for a per-solve context deadline under the flow's context.
	StripTimeLimit time.Duration
	// PhaseTimeLimit bounds the global adjustment solve of phase 1. Zero
	// means 30 s. Like StripTimeLimit it derives a context deadline.
	PhaseTimeLimit time.Duration
	// StripNodeLimit, when positive, bounds each per-strip branch-and-bound
	// search by explored node count instead of only wall clock. Nodes are
	// processed in a deterministic order at every worker count, so a binding
	// node budget cuts the search at a path-independent point — unlike a
	// binding time limit, which cuts at a wall-clock-dependent one. This is
	// what lets benchmark harnesses run circuits whose strip solves do not
	// converge while keeping the byte-identical determinism contract.
	StripNodeLimit int
	// Phase1NodeLimit, when positive, bounds the phase-1 global-adjustment
	// branch-and-bound — the monolithic solve or each shard sub-solve — by
	// explored node count, the same deterministic path-independent cutoff
	// StripNodeLimit provides for the per-strip solves. The fuzz harness
	// sets both so pathological circuits terminate at a reproducible point
	// instead of a wall-clock-dependent one.
	Phase1NodeLimit int
	// Workers bounds the worker pool that solves independent per-strip (and
	// per-rotation) subproblems concurrently. Zero means GOMAXPROCS; one
	// disables concurrency. The flow is deterministic: every worker count
	// produces the identical layout (see GenerateCtx).
	Workers int
	// MaxRefineIterations bounds phase 3. Zero means 3; a negative value
	// skips refinement entirely — benchmark harnesses use that to keep the
	// workload to phases whose solves converge deterministically.
	MaxRefineIterations int
	// TryRotations enables device-rotation exploration in phase 3.
	TryRotations bool
	// ShardSize, when positive, shards the phase-1 global adjustment: the
	// devices are clustered by net connectivity into groups of at most
	// ShardSize (internal/partition), each cluster solves a local sub-MILP
	// with frozen boundary terminals concurrently, and a bounded
	// coordination loop re-solves shards whose boundaries drifted. Circuits
	// that do not split into at least two clusters keep the monolithic
	// solve, as does the zero default. ShardSize changes the phase-1 model,
	// so it is part of the Fingerprint; like every other option it never
	// breaks the determinism contract (worker counts still cannot change
	// results).
	ShardSize int
	// ShardIterations bounds the boundary-coordination loop of the sharded
	// phase 1. More rounds close more of the quality gap to the monolithic
	// solve at a small multiple of the (much cheaper) sharded round cost.
	// Zero means 5.
	ShardIterations int
	// ShardBoundaryTol is the residual (Manhattan distance between a
	// boundary-strip endpoint and its pin) above which the owning shard is
	// re-solved in the next coordination round. Zero means 2 µm.
	ShardBoundaryTol geom.Coord
	// PivotRule selects the simplex pricing rule for every LP solved by the
	// flow's branch-and-bound trees (see lp.PivotRule); the zero value is
	// Dantzig. The LP layer canonicalizes optimal vertices, so the rule does
	// not change the layout — but it does change the pivot path and thus the
	// effort counters, so it joins the Fingerprint conservatively rather
	// than relying on that invariant.
	PivotRule lp.PivotRule
	// LPCore selects the simplex basis-inverse engine for every LP solved by
	// the flow (see lp.Core); the zero value is the sparse revised core.
	// Like PivotRule it is layout-invariant by the LP layer's vertex
	// canonicalization, and like PivotRule it joins the Fingerprint
	// conservatively because it changes the effort counters.
	LPCore lp.Core
	// ColdLP disables warm-started LP re-solves inside branch-and-bound:
	// every node LP solves from scratch instead of reusing its parent's
	// basis. The layout is identical either way (the determinism contract
	// covers warm starts); the flag exists so harnesses (rficbench
	// -lp-compare) can measure the warm-start saving.
	ColdLP bool
	// AcceptPartial switches GenerateCtx from fail-on-cancellation to anytime
	// degradation: when the flow's context is cancelled between phases, the
	// flow returns the best layout it holds at that point with Result.Partial
	// set (plus bound-gap stats) instead of the context error. Quality
	// degrades, availability does not. Excluded from Fingerprint: when no
	// limit binds it cannot change the layout, and partial results are never
	// written to the cache, so the flag can never conflate cache entries.
	AcceptPartial bool
	// Logf, when non-nil, receives progress messages. With Workers > 1 it may
	// be called from concurrent solver goroutines and must be safe for that
	// (testing.T.Logf and log.Printf both are).
	Logf func(format string, args ...interface{})

	// nodes accumulates branch-and-bound node counts across every MILP solve
	// of one flow invocation. GenerateCtx installs it; the pointer rides
	// along as Options is copied down the call tree, and concurrent strip
	// solvers add to it atomically.
	nodes *atomic.Int64
	// lpStats accumulates the simplex-level effort counters the same way.
	lpStats *lpCounters
	// maxGapBits tracks the worst relative incumbent/bound gap over the MILP
	// solves that returned an incumbent, as float64 bits (non-negative floats
	// order identically as uint64 bits, so an atomic CAS-max works).
	maxGapBits *atomic.Uint64
	// interrupted counts MILP solves stopped by context cancellation.
	interrupted *atomic.Int64
}

func (o Options) chainPoints() int {
	if o.ChainPoints >= 2 {
		return o.ChainPoints
	}
	return 4
}

func (o Options) maxChainPoints() int {
	if o.MaxChainPoints >= o.chainPoints() {
		return o.MaxChainPoints
	}
	return 8
}

func (o Options) confinement() geom.Coord {
	if o.Confinement > 0 {
		return o.Confinement
	}
	return geom.FromMicrons(40)
}

func (o Options) pairRadius() geom.Coord {
	if o.PairRadius > 0 {
		return o.PairRadius
	}
	return geom.FromMicrons(80)
}

func (o Options) stripTimeLimit() time.Duration {
	if o.StripTimeLimit > 0 {
		return o.StripTimeLimit
	}
	return 5 * time.Second
}

func (o Options) phaseTimeLimit() time.Duration {
	if o.PhaseTimeLimit > 0 {
		return o.PhaseTimeLimit
	}
	return 30 * time.Second
}

func (o Options) refineIterations() int {
	if o.MaxRefineIterations < 0 {
		return 0
	}
	if o.MaxRefineIterations > 0 {
		return o.MaxRefineIterations
	}
	return 3
}

func (o Options) shardIterations() int {
	if o.ShardIterations > 0 {
		return o.ShardIterations
	}
	return 5
}

func (o Options) shardBoundaryTol() geom.Coord {
	if o.ShardBoundaryTol > 0 {
		return o.ShardBoundaryTol
	}
	return geom.FromMicrons(2)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// countSolve adds one MILP solve's effort — its node count and its LP-level
// counters — to the flow-wide totals. The totals are deterministic: the set
// of solves and each solve's counters are fixed by the determinism contract
// (absent binding time limits), and summation commutes, so concurrent
// workers cannot change them.
func (o Options) countSolve(r *milp.Result) {
	if r == nil {
		return
	}
	if o.nodes != nil {
		o.nodes.Add(int64(r.Nodes))
	}
	if o.lpStats != nil {
		o.lpStats.add(r)
	}
	if o.interrupted != nil && r.Cancelled {
		o.interrupted.Add(1)
	}
	// Fold the solve's incumbent gap into the flow-wide max. +Inf means "no
	// incumbent" and carries no bound information, so it is skipped.
	if o.maxGapBits != nil {
		if gap := r.Gap(); gap > 0 && !math.IsInf(gap, 1) {
			bits := math.Float64bits(gap)
			for {
				cur := o.maxGapBits.Load()
				if bits <= cur || o.maxGapBits.CompareAndSwap(cur, bits) {
					break
				}
			}
		}
	}
}

// LPStats aggregates the simplex-level effort of every MILP solve in one
// flow invocation — the LP-pivot counterpart to the branch-and-bound Nodes
// total. Like Nodes, every field is deterministic across worker counts.
type LPStats struct {
	milp.LPStats
	// WarmSeedAccepted and WarmSeedRejected count branch-and-bound warm-seed
	// outcomes (milp.Result.WarmSeedAccepted/Rejected) across the solves.
	WarmSeedAccepted int
	WarmSeedRejected int
}

// lpCounters is the atomic accumulator behind LPStats, shared down the call
// tree the same way Options.nodes is.
type lpCounters struct {
	pivots           atomic.Int64
	refactorizations atomic.Int64
	warmHits         atomic.Int64
	warmMisses       atomic.Int64
	coldSolves       atomic.Int64
	peakEta          atomic.Int64 // CAS-max, not a sum
	seedAccepted     atomic.Int64
	seedRejected     atomic.Int64
}

func (c *lpCounters) add(r *milp.Result) {
	c.pivots.Add(int64(r.LP.Pivots))
	c.refactorizations.Add(int64(r.LP.Refactorizations))
	c.warmHits.Add(int64(r.LP.WarmHits))
	c.warmMisses.Add(int64(r.LP.WarmMisses))
	c.coldSolves.Add(int64(r.LP.ColdSolves))
	if peak := int64(r.LP.PeakEta); peak > 0 {
		for {
			cur := c.peakEta.Load()
			if peak <= cur || c.peakEta.CompareAndSwap(cur, peak) {
				break
			}
		}
	}
	c.seedAccepted.Add(int64(r.WarmSeedAccepted))
	c.seedRejected.Add(int64(r.WarmSeedRejected))
}

func (c *lpCounters) snapshot() LPStats {
	return LPStats{
		LPStats: milp.LPStats{
			Pivots:           int(c.pivots.Load()),
			Refactorizations: int(c.refactorizations.Load()),
			WarmHits:         int(c.warmHits.Load()),
			WarmMisses:       int(c.warmMisses.Load()),
			ColdSolves:       int(c.coldSolves.Load()),
			PeakEta:          int(c.peakEta.Load()),
		},
		WarmSeedAccepted: int(c.seedAccepted.Load()),
		WarmSeedRejected: int(c.seedRejected.Load()),
	}
}

// milpOptions is the shared translation from flow options to one MILP
// solve's options: the pivot rule and the warm-LP switch apply to every
// branch-and-bound tree the flow spawns, whatever its time limit or worker
// count.
func (o Options) milpOptions(timeLimit time.Duration, workers int) milp.SolveOptions {
	return milp.SolveOptions{
		TimeLimit:     timeLimit,
		Workers:       workers,
		LPOptions:     lp.Options{Pivot: o.PivotRule, Core: o.LPCore},
		DisableWarmLP: o.ColdLP,
	}
}

// Fingerprint returns a canonical encoding of every option that can change
// the generated layout, with zero values resolved to their effective
// defaults — two Options with equal fingerprints produce byte-identical
// layouts for the same circuit. Workers and Logf are excluded (the
// determinism contract makes them output-invariant); the time limits are
// included because a binding limit changes the result. PivotRule, LPCore and
// ColdLP are included conservatively: the LP layer's vertex canonicalization
// makes them layout-invariant, but the cache never conflates them — they
// change the reported effort counters, and defence in depth is cheap here.
// AcceptPartial is excluded like Workers (see its doc: partial results are
// never cached, and a completed AcceptPartial run is byte-identical to a
// normal one). The result cache hashes this string alongside the canonical
// circuit text.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("chain=%d maxchain=%d conf=%d pair=%d striplimit=%s phaselimit=%s stripnodes=%d p1nodes=%d refine=%d rot=%v shard=%d sharditer=%d shardtol=%d pivot=%s core=%s coldlp=%v",
		o.chainPoints(), o.maxChainPoints(), o.confinement(), o.pairRadius(),
		o.stripTimeLimit(), o.phaseTimeLimit(), o.StripNodeLimit, o.Phase1NodeLimit, o.refineIterations(), o.TryRotations,
		o.ShardSize, o.shardIterations(), o.shardBoundaryTol(), o.PivotRule, o.LPCore, o.ColdLP)
}

// runJobs dispatches independent subproblems to the shared bounded pool:
// jobs skipped by cancellation leave their candidate slots nil, and a
// panicking job surfaces on this goroutine (where engine.Run's per-job
// recover can see it) instead of crashing the process from a worker.
func runJobs(ctx context.Context, workers, n int, fn func(int)) {
	conc.ForEach(ctx, workers, n, fn)
}

// Snapshot records the layout state after one phase of the flow, mirroring
// the per-phase snapshots of Figure 7.
type Snapshot struct {
	Phase      string
	Layout     *layout.Layout
	Metrics    layout.Metrics
	Violations int
	Elapsed    time.Duration
}

// Result is the outcome of the progressive flow.
type Result struct {
	Layout    *layout.Layout
	Snapshots []Snapshot
	Runtime   time.Duration
	// Nodes is the total number of branch-and-bound nodes explored across
	// every MILP solve of the flow — the solver-effort counterpart to the
	// wall-clock Runtime.
	Nodes int
	// LP aggregates the simplex-level effort counters (pivots,
	// refactorizations, warm-start outcomes) across the same solves.
	LP LPStats
	// Shards reports the per-cluster sub-solves of the sharded phase-1
	// adjustment, in cluster order. Nil when phase 1 ran monolithically
	// (ShardSize zero or the circuit below the shard threshold).
	Shards []ShardStat
	// Partial reports anytime degradation: the flow's context was cancelled
	// mid-run and (under Options.AcceptPartial) Layout holds the best layout
	// reached so far instead of the fully refined one. Partial results are
	// real layouts — constructed, routed, DRC-checkable — just not carried
	// through every remaining phase.
	Partial bool
	// PartialPhase names the last phase snapshot the partial layout reached
	// ("construct" when cancellation hit before phase 1 finished). Empty when
	// Partial is false.
	PartialPhase string
	// MaxGap is the worst relative incumbent/bound gap across the MILP solves
	// that found an incumbent — how far from proven-optimal the most
	// interrupted solve stopped. Zero when every solve proved optimality;
	// meaningful mainly alongside Partial or InterruptedSolves.
	MaxGap float64
	// InterruptedSolves counts MILP solves stopped by context cancellation
	// (deadline or cancel) rather than by search exhaustion or node budget.
	InterruptedSolves int
}

// Violations returns the design-rule violations of the final layout.
func (r *Result) Violations() []layout.Violation {
	return checkLayout(r.Layout)
}

// checkOptions are the DRC settings used throughout the flow: exact lengths
// within the 10 nm rounding tolerance, pins within 2 nm.
func checkLayout(l *layout.Layout) []layout.Violation {
	return l.Check(layout.CheckOptions{PinTolerance: 2})
}

// Score ranks layouts the way the flow does internally: design-rule
// violations dominate, then total bends, then accumulated length error.
// Lower is better. Exposed so harnesses (rficbench's sharding guard) can
// compare layouts produced under different options on the flow's own metric.
func Score(l *layout.Layout) float64 {
	return scoreWith(l, checkLayout(l))
}

// scoreWith is Score with the DRC pass already done — callers that also
// need the violation list (the shard coordination loop) avoid a second
// quadratic layout check this way.
func scoreWith(l *layout.Layout, vs []layout.Violation) float64 {
	m := l.Metrics()
	return 1e6*float64(len(vs)) + 100*float64(m.TotalBends) + geom.Microns(m.TotalLengthError)
}

func score(l *layout.Layout) float64 { return Score(l) }

// Generate runs the full progressive flow on the circuit. It is shorthand
// for GenerateCtx with a background context.
func Generate(c *netlist.Circuit, opts Options) (*Result, error) {
	return GenerateCtx(context.Background(), c, opts)
}

// GenerateCtx runs the full progressive flow under a context. Cancellation
// stops the flow at the next solve boundary and returns the context error; a
// context that is already cancelled returns promptly without solving
// anything. With Options.AcceptPartial set, cancellation after the initial
// construction instead returns the best layout reached so far with
// Result.Partial set — anytime degradation: the caller trades refinement
// quality for a guaranteed layout under its deadline.
//
// Determinism: the phase-2 and phase-3 per-strip (and per-rotation)
// subproblems are solved concurrently on opts.Workers goroutines, but each
// subproblem starts from the same frozen snapshot of the layout and the
// results are merged sequentially in a fixed (worst-first, then strip-name)
// order, so the generated layout is byte-identical for every worker count —
// provided no per-solve time limit binds. A binding StripTimeLimit or
// PhaseTimeLimit stops that solve at a wall-clock-dependent point, which is
// nondeterministic even between two identically-configured runs; use limits
// generous enough for the circuit when reproducibility matters.
func GenerateCtx(ctx context.Context, c *netlist.Circuit, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Normalize declaration order first: downstream stages (constructive
	// placement, model variable order) iterate the circuit's slices, so
	// canonical order is what makes canonical-equal circuits — and thus
	// cache hits keyed on netlist.Canonical — produce byte-identical
	// layouts.
	c = netlist.Normalized(c)
	opts.nodes = new(atomic.Int64)
	opts.lpStats = new(lpCounters)
	opts.maxGapBits = new(atomic.Uint64)
	opts.interrupted = new(atomic.Int64)
	res := &Result{}

	// finish seals the result with the flow-wide effort and gap totals; a
	// non-empty phase marks it as an anytime partial stopped at that phase.
	finish := func(l *layout.Layout, partialPhase string) *Result {
		res.Layout = l
		res.Runtime = time.Since(start)
		res.Nodes = int(opts.nodes.Load())
		res.LP = opts.lpStats.snapshot()
		res.MaxGap = math.Float64frombits(opts.maxGapBits.Load())
		res.InterruptedSolves = int(opts.interrupted.Load())
		if partialPhase != "" {
			res.Partial = true
			res.PartialPhase = partialPhase
		}
		return res
	}

	// Phase 1a: constructive placement and planar routing with blurred
	// device clearances.
	current, err := Construct(c)
	if err != nil {
		return nil, err
	}
	opts.logf("pilp: constructed initial layout: %s", current.Metrics())
	if err := ctx.Err(); err != nil {
		if !opts.AcceptPartial {
			return nil, err
		}
		res.addSnapshot("construct", current, time.Since(start))
		return finish(current, "construct"), nil
	}

	// Phase 1b: global coordinate adjustment — soft lengths, penalized
	// overlap, relative positions kept, topology fixed (Eq. 23–28). With
	// ShardSize set and a large enough circuit the solve is sharded into
	// cluster-local sub-MILPs under a boundary-coordination loop.
	adjusted, shards, err := adjustGlobal(ctx, c, current, opts)
	res.Shards = shards
	if err != nil {
		opts.logf("pilp: global adjustment failed: %v", err)
	} else if adjusted != nil && score(adjusted) <= score(current) {
		current = adjusted
	}
	res.addSnapshot("phase1-blurred-routing", current, time.Since(start))
	opts.logf("pilp: phase 1 done: %s", current.Metrics())
	if err := ctx.Err(); err != nil {
		if !opts.AcceptPartial {
			return nil, err
		}
		return finish(current, "phase1-blurred-routing"), nil
	}

	// Phase 2: device visualization and overlap fixing — per-strip exact
	// length models against real device geometry.
	current = exactLengthPass(ctx, c, current, opts)
	res.addSnapshot("phase2-overlap-fixing", current, time.Since(start))
	opts.logf("pilp: phase 2 done: %s", current.Metrics())
	if err := ctx.Err(); err != nil {
		if !opts.AcceptPartial {
			return nil, err
		}
		return finish(current, "phase2-overlap-fixing"), nil
	}

	// Phase 3: iterative refinement with chain-point deletion/insertion and
	// device rotation.
	current = refine(ctx, c, current, opts)
	res.addSnapshot("phase3-refinement", current, time.Since(start))
	opts.logf("pilp: phase 3 done: %s", current.Metrics())
	if err := ctx.Err(); err != nil {
		if !opts.AcceptPartial {
			return nil, err
		}
		return finish(current, "phase3-refinement"), nil
	}

	return finish(current, ""), nil
}

func (r *Result) addSnapshot(phase string, l *layout.Layout, elapsed time.Duration) {
	r.Snapshots = append(r.Snapshots, Snapshot{
		Phase:      phase,
		Layout:     l.Clone(),
		Metrics:    l.Metrics(),
		Violations: len(checkLayout(l)),
		Elapsed:    elapsed,
	})
}

// globalAdjust solves the phase-1 model: every non-pad device and every
// strip coordinate may move within a generous confinement window, lengths
// are soft, overlap is penalized, and relative positions plus topology come
// from the constructed layout, so the model is a pure LP apart from the pad
// boundary choice (pads stay fixed here). Being the one large solve of the
// flow, it gets the full worker pool for its branch-and-bound LP evaluations.
func globalAdjust(ctx context.Context, c *netlist.Circuit, current *layout.Layout, opts Options) (*layout.Layout, error) {
	cfg, err := phase1Config(c, current, opts)
	if err != nil {
		return nil, err
	}
	freeDevices := []string{}
	for _, d := range c.NonPadDevices() {
		freeDevices = append(freeDevices, d.Name)
	}
	cfg.FreeDevices = freeDevices
	m, err := ilpmodel.Build(c, cfg)
	if err != nil {
		return nil, err
	}
	opts.logf("pilp: global adjustment model: %s", m.Stats())
	mo := opts.milpOptions(opts.phaseTimeLimit(), opts.workers())
	mo.MaxNodes = opts.Phase1NodeLimit
	lay, result, err := m.SolveAndExtractCtx(ctx, mo)
	opts.countSolve(result)
	if err != nil {
		return nil, err
	}
	if lay == nil {
		return nil, fmt.Errorf("pilp: global adjustment found no solution (status %v)", result.Status)
	}
	return lay, nil
}

// phase1Config builds the shared phase-1 model configuration: soft lengths,
// penalized overlap, frozen topology and relative positions from the
// constructed layout, generous confinement. The caller sets the freedom
// (FreeDevices/FreeStrips) — the monolithic solve frees every non-pad
// device, the sharded solve restricts it per cluster.
func phase1Config(c *netlist.Circuit, current *layout.Layout, opts Options) (ilpmodel.Config, error) {
	chainPoints := map[string]int{}
	for _, ms := range c.Microstrips {
		rs := current.Routed(ms.Name)
		if rs == nil {
			return ilpmodel.Config{}, fmt.Errorf("pilp: strip %q missing from constructed layout", ms.Name)
		}
		chainPoints[ms.Name] = len(rs.Path.Points)
	}
	return ilpmodel.Config{
		ChainPoints:       chainPoints,
		Fixed:             current,
		SoftLength:        true,
		OverlapSlack:      true,
		FixTopology:       true,
		RelativePositions: true,
		Confinement:       3 * opts.confinement(),
		PairRadius:        opts.pairRadius(),
	}, nil
}

// exactLengthPass drives every microstrip to its exact equivalent length with
// per-strip exact models, worst offenders first. The first solve attempt of
// every strip is an independent subproblem against the same frozen base
// layout, so all of them are dispatched to the worker pool at once; the
// results are then merged sequentially in the fixed worst-first order, with
// the full sequential escalation as fallback for strips whose precomputed
// candidate does not merge cleanly. The frozen-base pre-solve runs even with
// one worker: a contested strip then pays one extra solve before its
// escalation, but taking the old evolving-layout path at workers=1 would
// make the result depend on the worker count, which the determinism
// contract forbids.
func exactLengthPass(ctx context.Context, c *netlist.Circuit, current *layout.Layout, opts Options) *layout.Layout {
	delta := c.Tech.BendCompensation
	strips := append([]*netlist.Microstrip(nil), c.Microstrips...)
	sort.SliceStable(strips, func(i, j int) bool {
		ei := geom.AbsCoord(current.Routed(strips[i].Name).LengthError(delta))
		ej := geom.AbsCoord(current.Routed(strips[j].Name).LengthError(delta))
		if ei != ej {
			return ei > ej
		}
		return strips[i].Name < strips[j].Name
	})

	base := current
	candidates := make([]*layout.Layout, len(strips))
	runJobs(ctx, opts.workers(), len(strips), func(i int) {
		if lay, ok := solveStrips(ctx, c, base, []string{strips[i].Name}, opts.chainPoints(), nil, opts); ok {
			candidates[i] = lay
		}
	})

	for i, ms := range strips {
		if cand := candidates[i]; cand != nil {
			// The candidate differs from the frozen base only in this strip's
			// route: graft that route onto the evolving layout and keep it
			// when the strip comes out clean without hurting the score.
			if merged, ok := applyCandidate(current, cand, []string{ms.Name}, nil); ok {
				if score(merged) <= score(current) && stripClean(merged, ms.Name) {
					current = merged
					continue
				}
			}
		}
		current = solveStripToTarget(ctx, c, current, ms.Name, opts)
	}
	return current
}

// applyCandidate grafts the routes of the listed strips and the placements of
// the listed devices from a solved candidate onto a clone of base. Candidates
// are solved against a frozen snapshot of the layout; this is how their
// changes are merged into the possibly further-evolved current layout.
func applyCandidate(base, candidate *layout.Layout, strips, devices []string) (*layout.Layout, bool) {
	out := base.Clone()
	if !applyInto(out, candidate, strips, devices) {
		return nil, false
	}
	return out, true
}

// applyInto grafts the listed objects from a solved candidate into dst,
// mutating it. The shard merge uses it directly so one round clones the
// layout once instead of once per cluster; applyCandidate wraps it for the
// callers that need base kept intact. Objects missing from the candidate
// fail the graft before dst is touched; a Place/Route error mid-graft
// returns false with dst partially updated — callers needing all-or-nothing
// wrap it (applyCandidate) or roll the objects back from a known-good
// layout (the shard merge).
func applyInto(dst, candidate *layout.Layout, strips, devices []string) bool {
	for _, name := range devices {
		if candidate.Placed(name) == nil {
			return false
		}
	}
	for _, name := range strips {
		if candidate.Routed(name) == nil {
			return false
		}
	}
	for _, name := range devices {
		pd := candidate.Placed(name)
		if err := dst.Place(name, pd.Center, pd.Orient); err != nil {
			return false
		}
	}
	for _, name := range strips {
		rs := candidate.Routed(name)
		if err := dst.Route(name, rs.Path.Points...); err != nil {
			return false
		}
	}
	return true
}

// solveStripToTarget re-solves a single strip (growing its chain points when
// needed) until its exact length is met without new violations, keeping the
// best layout found. When the strip alone cannot be fixed — typically because
// a strip sharing the same pin blocks its detour corridor — the strips of the
// whole junction are re-solved together.
func solveStripToTarget(ctx context.Context, c *netlist.Circuit, current *layout.Layout, strip string, opts Options) *layout.Layout {
	best := current
	bestScore := score(current)
	adopt := func(candidate *layout.Layout, ok bool) bool {
		if !ok {
			return false
		}
		if s := score(candidate); s < bestScore {
			best, bestScore = candidate, s
		}
		return stripClean(candidate, strip)
	}
	for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
		candidate, ok := solveStrips(ctx, c, current, []string{strip}, n, nil, opts)
		if adopt(candidate, ok) {
			return best
		}
	}
	if partners := junctionPartners(c, strip); len(partners) > 1 {
		for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
			candidate, ok := solveStrips(ctx, c, best, partners, n, nil, opts)
			if adopt(candidate, ok) {
				return best
			}
		}
	}
	return best
}

// junctionPartners returns the strip together with every strip that shares a
// terminal pin with it, sorted by name.
func junctionPartners(c *netlist.Circuit, strip string) []string {
	ms, err := c.Microstrip(strip)
	if err != nil {
		return []string{strip}
	}
	set := map[string]bool{strip: true}
	for _, other := range c.Microstrips {
		if other.Name == strip {
			continue
		}
		for _, t := range []netlist.Terminal{other.From, other.To} {
			if t == ms.From || t == ms.To {
				set[other.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// stripClean reports whether the named strip contributes no violations.
func stripClean(l *layout.Layout, strip string) bool {
	for _, v := range checkLayout(l) {
		if v.Subject == strip || v.Other == strip {
			return false
		}
	}
	return true
}

// solveStrips builds and solves an exact model in which the listed strips
// (and optionally the listed devices, confined to τd) are free while the rest
// of the layout stays fixed. It returns the extracted layout and whether a
// solution was found. The per-strip models are small, so their
// branch-and-bound runs single-worker: concurrency comes from solving many
// strips at once, not from splitting one solve.
func solveStrips(ctx context.Context, c *netlist.Circuit, current *layout.Layout, strips []string, chainPoints int, freeDevices []string, opts Options) (*layout.Layout, bool) {
	warm := current.Clone()
	cpMap := map[string]int{}
	for _, strip := range strips {
		rs := warm.Routed(strip)
		if rs == nil {
			return nil, false
		}
		resampled := resamplePath(rs.Path.Points, chainPoints)
		if err := warm.Route(strip, resampled...); err != nil {
			return nil, false
		}
		cpMap[strip] = len(resampled)
	}
	if freeDevices == nil {
		freeDevices = []string{}
	}
	cfg := ilpmodel.Config{
		ChainPoints: cpMap,
		FreeStrips:  strips,
		FreeDevices: freeDevices,
		Fixed:       warm,
		PairRadius:  opts.pairRadius(),
	}
	if len(freeDevices) > 0 {
		cfg.Confinement = opts.confinement()
	}
	m, err := ilpmodel.Build(c, cfg)
	if err != nil {
		opts.logf("pilp: model build for %v failed: %v", strips, err)
		return nil, false
	}
	mo := opts.milpOptions(opts.stripTimeLimit(), 0)
	mo.MaxNodes = opts.StripNodeLimit
	lay, result, err := m.SolveAndExtractCtx(ctx, mo)
	opts.countSolve(result)
	if err != nil || lay == nil {
		return nil, false
	}
	return lay, true
}

// resamplePath collapses redundant chain points and then inserts collinear
// midpoints on the longest legs until the path has at least n points; this is
// the chain-point deletion/insertion primitive of phase 3. The result always
// remains rectilinear.
func resamplePath(pts []geom.Point, n int) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	if len(out) > n {
		simplified := (geom.Polyline{Points: out, Width: 1}).Simplify().Points
		if len(simplified) >= 2 {
			out = simplified
		}
	}
	for len(out) < n {
		// Split the longest leg in half.
		longest := 0
		var longestLen geom.Coord = -1
		for i := 1; i < len(out); i++ {
			if l := out[i-1].ManhattanTo(out[i]); l > longestLen {
				longestLen = l
				longest = i
			}
		}
		a, b := out[longest-1], out[longest]
		mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
		rest := append([]geom.Point{mid}, out[longest:]...)
		out = append(out[:longest], rest...)
	}
	return out
}

// refineCandidate is one precomputed phase-3 improvement: the solved layout
// plus the strip and device names whose geometry it changed relative to the
// frozen base it was solved against.
type refineCandidate struct {
	layout  *layout.Layout
	strips  []string
	devices []string
}

// refine is phase 3: chain points without bends are removed, strips that
// still violate a rule get more chain points, neighbouring devices may move
// within τd, and device rotations are explored. Each iteration dispatches the
// escalation of every troubled strip to the worker pool against a frozen copy
// of the layout and merges the improvements sequentially in strip-name order.
func refine(ctx context.Context, c *netlist.Circuit, current *layout.Layout, opts Options) *layout.Layout {
	for iter := 0; iter < opts.refineIterations(); iter++ {
		if ctx.Err() != nil {
			break
		}
		// Chain-point deletion: simplify every route in place.
		simplified := current.Clone()
		for _, rs := range current.RoutedStrips() {
			pts := rs.Path.Simplify().Points
			if len(pts) >= 2 {
				_ = simplified.Route(rs.Strip.Name, pts...)
			}
		}
		if score(simplified) <= score(current) {
			current = simplified
		}

		violations := checkLayout(current)
		if len(violations) == 0 && current.Metrics().TotalBends == 0 {
			break
		}

		// Collect the strips that still cause trouble.
		trouble := map[string]bool{}
		for _, v := range violations {
			if _, err := c.Microstrip(v.Subject); err == nil {
				trouble[v.Subject] = true
			}
			if v.Other != "" {
				if _, err := c.Microstrip(v.Other); err == nil {
					trouble[v.Other] = true
				}
			}
		}
		if len(trouble) == 0 && len(violations) > 0 {
			// Violations that involve only devices: free the devices with
			// their incident strips.
			for _, v := range violations {
				for _, ms := range c.StripsAt(v.Subject) {
					trouble[ms.Name] = true
				}
			}
		}

		names := sortedKeys(trouble)
		base := current
		before := score(base)
		candidates := make([]*refineCandidate, len(names))
		runJobs(ctx, opts.workers(), len(names), func(i int) {
			strip := names[i]
			for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
				// First with only the strip free, then with its non-pad
				// terminal devices (and their other strips) free within τd —
				// the device-movement freedom of phase 3.
				freed, devs := []string{strip}, []string(nil)
				candidate, ok := solveStrips(ctx, c, base, freed, n, nil, opts)
				if !ok || score(candidate) >= before {
					freed, devs = neighbourhood(c, strip)
					candidate, ok = solveStrips(ctx, c, base, freed, n, devs, opts)
				}
				if !ok {
					continue
				}
				if score(candidate) < before {
					candidates[i] = &refineCandidate{layout: candidate, strips: freed, devices: devs}
					return
				}
			}
		})

		improved := false
		for i := range names {
			rc := candidates[i]
			if rc == nil {
				continue
			}
			merged, ok := applyCandidate(current, rc.layout, rc.strips, rc.devices)
			if !ok {
				continue
			}
			if score(merged) < score(current) {
				current = merged
				improved = true
			}
		}

		if opts.TryRotations && len(checkLayout(current)) > 0 {
			var rotated bool
			current, rotated = tryRotations(ctx, c, current, opts)
			improved = improved || rotated
		}
		if !improved {
			break
		}
	}
	return current
}

// tryRotations explores the three non-identity orientations of every device
// that still participates in violations, re-solving its incident strips each
// time. All device×orientation subproblems run concurrently against the same
// frozen base layout; per device (in name order) the best-scoring rotation is
// merged when it improves the evolving layout.
func tryRotations(ctx context.Context, c *netlist.Circuit, current *layout.Layout, opts Options) (*layout.Layout, bool) {
	violations := checkLayout(current)
	devices := map[string]bool{}
	for _, v := range violations {
		if d, err := c.Device(v.Subject); err == nil && !d.IsPad() {
			devices[v.Subject] = true
		}
		if v.Other != "" {
			if d, err := c.Device(v.Other); err == nil && !d.IsPad() {
				devices[v.Other] = true
			}
		}
	}

	incidentOf := func(name string) []string {
		var incident []string
		for _, ms := range c.StripsAt(name) {
			incident = append(incident, ms.Name)
		}
		return incident
	}

	type rotationJob struct {
		device string
		orient geom.Orientation
	}
	var jobs []rotationJob
	base := current
	for _, name := range sortedKeys(devices) {
		if base.Placed(name) == nil {
			continue
		}
		for _, o := range []geom.Orientation{geom.R90, geom.R180, geom.R270} {
			jobs = append(jobs, rotationJob{device: name, orient: o})
		}
	}
	results := make([]*layout.Layout, len(jobs))
	runJobs(ctx, opts.workers(), len(jobs), func(i int) {
		job := jobs[i]
		pd := base.Placed(job.device)
		candidate := base.Clone()
		if err := candidate.Place(job.device, pd.Center, pd.Orient.Plus(job.orient)); err != nil {
			return
		}
		// Re-solve all incident strips together against the rotated pins.
		next, solved := solveStrips(ctx, c, candidate, incidentOf(job.device), opts.chainPoints(), nil, opts)
		if solved {
			results[i] = next
		}
	})

	improved := false
	for _, name := range sortedKeys(devices) {
		bestScore := score(current)
		var bestMerged *layout.Layout
		for i, job := range jobs {
			if job.device != name || results[i] == nil {
				continue
			}
			merged, ok := applyCandidate(current, results[i], incidentOf(name), []string{name})
			if !ok {
				continue
			}
			if s := score(merged); s < bestScore {
				bestScore = s
				bestMerged = merged
			}
		}
		if bestMerged != nil {
			current = bestMerged
			improved = true
		}
	}
	return current, improved
}

// neighbourhood returns the strip together with its non-pad terminal devices
// and every strip incident to those devices, which is the local problem the
// refinement phase frees when the strip alone cannot be fixed.
func neighbourhood(c *netlist.Circuit, strip string) (strips []string, devices []string) {
	stripSet := map[string]bool{strip: true}
	ms, err := c.Microstrip(strip)
	if err != nil {
		return []string{strip}, nil
	}
	for _, dev := range []string{ms.From.Device, ms.To.Device} {
		d, err := c.Device(dev)
		if err != nil || d.IsPad() {
			continue
		}
		devices = append(devices, dev)
		for _, incident := range c.StripsAt(dev) {
			stripSet[incident.Name] = true
		}
	}
	strips = sortedKeys(stripSet)
	return strips, devices
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
