package pilp

import (
	"fmt"
	"sort"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/ilpmodel"
	"rficlayout/internal/layout"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
)

// Options tunes the progressive flow.
type Options struct {
	// ChainPoints is the default chain-point count per microstrip in the
	// per-strip exact models (phase 2). Zero means 4.
	ChainPoints int
	// MaxChainPoints bounds chain-point insertion during refinement. Zero
	// means 8.
	MaxChainPoints int
	// Confinement is the τd window of phases 2–3. Zero means 40 µm.
	Confinement geom.Coord
	// PairRadius prunes non-overlap pairs farther apart than this. Zero
	// means 80 µm.
	PairRadius geom.Coord
	// StripTimeLimit bounds each per-strip ILP solve. Zero means 5 s.
	StripTimeLimit time.Duration
	// PhaseTimeLimit bounds the global adjustment solve of phase 1. Zero
	// means 30 s.
	PhaseTimeLimit time.Duration
	// MaxRefineIterations bounds phase 3. Zero means 3.
	MaxRefineIterations int
	// TryRotations enables device-rotation exploration in phase 3.
	TryRotations bool
	// Logf, when non-nil, receives progress messages.
	Logf func(format string, args ...interface{})
}

func (o Options) chainPoints() int {
	if o.ChainPoints >= 2 {
		return o.ChainPoints
	}
	return 4
}

func (o Options) maxChainPoints() int {
	if o.MaxChainPoints >= o.chainPoints() {
		return o.MaxChainPoints
	}
	return 8
}

func (o Options) confinement() geom.Coord {
	if o.Confinement > 0 {
		return o.Confinement
	}
	return geom.FromMicrons(40)
}

func (o Options) pairRadius() geom.Coord {
	if o.PairRadius > 0 {
		return o.PairRadius
	}
	return geom.FromMicrons(80)
}

func (o Options) stripTimeLimit() time.Duration {
	if o.StripTimeLimit > 0 {
		return o.StripTimeLimit
	}
	return 5 * time.Second
}

func (o Options) phaseTimeLimit() time.Duration {
	if o.PhaseTimeLimit > 0 {
		return o.PhaseTimeLimit
	}
	return 30 * time.Second
}

func (o Options) refineIterations() int {
	if o.MaxRefineIterations > 0 {
		return o.MaxRefineIterations
	}
	return 3
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Snapshot records the layout state after one phase of the flow, mirroring
// the per-phase snapshots of Figure 7.
type Snapshot struct {
	Phase      string
	Layout     *layout.Layout
	Metrics    layout.Metrics
	Violations int
	Elapsed    time.Duration
}

// Result is the outcome of the progressive flow.
type Result struct {
	Layout    *layout.Layout
	Snapshots []Snapshot
	Runtime   time.Duration
}

// Violations returns the design-rule violations of the final layout.
func (r *Result) Violations() []layout.Violation {
	return checkLayout(r.Layout)
}

// checkOptions are the DRC settings used throughout the flow: exact lengths
// within the 10 nm rounding tolerance, pins within 2 nm.
func checkLayout(l *layout.Layout) []layout.Violation {
	return l.Check(layout.CheckOptions{PinTolerance: 2})
}

// score ranks layouts during the flow: design-rule violations dominate, then
// total bends, then accumulated length error.
func score(l *layout.Layout) float64 {
	vs := checkLayout(l)
	m := l.Metrics()
	return 1e6*float64(len(vs)) + 100*float64(m.TotalBends) + geom.Microns(m.TotalLengthError)
}

// Generate runs the full progressive flow on the circuit.
func Generate(c *netlist.Circuit, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{}

	// Phase 1a: constructive placement and planar routing with blurred
	// device clearances.
	current, err := Construct(c)
	if err != nil {
		return nil, err
	}
	opts.logf("pilp: constructed initial layout: %s", current.Metrics())

	// Phase 1b: global coordinate adjustment — soft lengths, penalized
	// overlap, relative positions kept, topology fixed (Eq. 23–28).
	adjusted, err := globalAdjust(c, current, opts)
	if err != nil {
		opts.logf("pilp: global adjustment failed: %v", err)
	} else if adjusted != nil && score(adjusted) <= score(current) {
		current = adjusted
	}
	res.addSnapshot("phase1-blurred-routing", current, time.Since(start))
	opts.logf("pilp: phase 1 done: %s", current.Metrics())

	// Phase 2: device visualization and overlap fixing — per-strip exact
	// length models against real device geometry.
	current = exactLengthPass(c, current, opts)
	res.addSnapshot("phase2-overlap-fixing", current, time.Since(start))
	opts.logf("pilp: phase 2 done: %s", current.Metrics())

	// Phase 3: iterative refinement with chain-point deletion/insertion and
	// device rotation.
	current = refine(c, current, opts)
	res.addSnapshot("phase3-refinement", current, time.Since(start))
	opts.logf("pilp: phase 3 done: %s", current.Metrics())

	res.Layout = current
	res.Runtime = time.Since(start)
	return res, nil
}

func (r *Result) addSnapshot(phase string, l *layout.Layout, elapsed time.Duration) {
	r.Snapshots = append(r.Snapshots, Snapshot{
		Phase:      phase,
		Layout:     l.Clone(),
		Metrics:    l.Metrics(),
		Violations: len(checkLayout(l)),
		Elapsed:    elapsed,
	})
}

// globalAdjust solves the phase-1 model: every non-pad device and every
// strip coordinate may move within a generous confinement window, lengths
// are soft, overlap is penalized, and relative positions plus topology come
// from the constructed layout, so the model is a pure LP apart from the pad
// boundary choice (pads stay fixed here).
func globalAdjust(c *netlist.Circuit, current *layout.Layout, opts Options) (*layout.Layout, error) {
	freeDevices := []string{}
	for _, d := range c.NonPadDevices() {
		freeDevices = append(freeDevices, d.Name)
	}
	chainPoints := map[string]int{}
	for _, ms := range c.Microstrips {
		rs := current.Routed(ms.Name)
		if rs == nil {
			return nil, fmt.Errorf("pilp: strip %q missing from constructed layout", ms.Name)
		}
		chainPoints[ms.Name] = len(rs.Path.Points)
	}
	cfg := ilpmodel.Config{
		ChainPoints:       chainPoints,
		FreeDevices:       freeDevices,
		Fixed:             current,
		SoftLength:        true,
		OverlapSlack:      true,
		FixTopology:       true,
		RelativePositions: true,
		Confinement:       3 * opts.confinement(),
		PairRadius:        opts.pairRadius(),
	}
	m, err := ilpmodel.Build(c, cfg)
	if err != nil {
		return nil, err
	}
	opts.logf("pilp: global adjustment model: %s", m.Stats())
	lay, result, err := m.SolveAndExtract(milp.SolveOptions{TimeLimit: opts.phaseTimeLimit()})
	if err != nil {
		return nil, err
	}
	if lay == nil {
		return nil, fmt.Errorf("pilp: global adjustment found no solution (status %v)", result.Status)
	}
	return lay, nil
}

// exactLengthPass drives every microstrip to its exact equivalent length with
// per-strip exact models, worst offenders first.
func exactLengthPass(c *netlist.Circuit, current *layout.Layout, opts Options) *layout.Layout {
	delta := c.Tech.BendCompensation
	strips := append([]*netlist.Microstrip(nil), c.Microstrips...)
	sort.Slice(strips, func(i, j int) bool {
		ei := geom.AbsCoord(current.Routed(strips[i].Name).LengthError(delta))
		ej := geom.AbsCoord(current.Routed(strips[j].Name).LengthError(delta))
		return ei > ej
	})
	for _, ms := range strips {
		current = solveStripToTarget(c, current, ms.Name, opts)
	}
	return current
}

// solveStripToTarget re-solves a single strip (growing its chain points when
// needed) until its exact length is met without new violations, keeping the
// best layout found. When the strip alone cannot be fixed — typically because
// a strip sharing the same pin blocks its detour corridor — the strips of the
// whole junction are re-solved together.
func solveStripToTarget(c *netlist.Circuit, current *layout.Layout, strip string, opts Options) *layout.Layout {
	best := current
	bestScore := score(current)
	adopt := func(candidate *layout.Layout, ok bool) bool {
		if !ok {
			return false
		}
		if s := score(candidate); s < bestScore {
			best, bestScore = candidate, s
		}
		return stripClean(candidate, strip)
	}
	for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
		candidate, ok := solveStrips(c, current, []string{strip}, n, nil, opts)
		if adopt(candidate, ok) {
			return best
		}
	}
	if partners := junctionPartners(c, strip); len(partners) > 1 {
		for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
			candidate, ok := solveStrips(c, best, partners, n, nil, opts)
			if adopt(candidate, ok) {
				return best
			}
		}
	}
	return best
}

// junctionPartners returns the strip together with every strip that shares a
// terminal pin with it, sorted by name.
func junctionPartners(c *netlist.Circuit, strip string) []string {
	ms, err := c.Microstrip(strip)
	if err != nil {
		return []string{strip}
	}
	set := map[string]bool{strip: true}
	for _, other := range c.Microstrips {
		if other.Name == strip {
			continue
		}
		for _, t := range []netlist.Terminal{other.From, other.To} {
			if t == ms.From || t == ms.To {
				set[other.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// stripClean reports whether the named strip contributes no violations.
func stripClean(l *layout.Layout, strip string) bool {
	for _, v := range checkLayout(l) {
		if v.Subject == strip || v.Other == strip {
			return false
		}
	}
	return true
}

// solveStrips builds and solves an exact model in which the listed strips
// (and optionally the listed devices, confined to τd) are free while the rest
// of the layout stays fixed. It returns the extracted layout and whether a
// solution was found.
func solveStrips(c *netlist.Circuit, current *layout.Layout, strips []string, chainPoints int, freeDevices []string, opts Options) (*layout.Layout, bool) {
	warm := current.Clone()
	cpMap := map[string]int{}
	for _, strip := range strips {
		rs := warm.Routed(strip)
		if rs == nil {
			return nil, false
		}
		resampled := resamplePath(rs.Path.Points, chainPoints)
		if err := warm.Route(strip, resampled...); err != nil {
			return nil, false
		}
		cpMap[strip] = len(resampled)
	}
	if freeDevices == nil {
		freeDevices = []string{}
	}
	cfg := ilpmodel.Config{
		ChainPoints: cpMap,
		FreeStrips:  strips,
		FreeDevices: freeDevices,
		Fixed:       warm,
		PairRadius:  opts.pairRadius(),
	}
	if len(freeDevices) > 0 {
		cfg.Confinement = opts.confinement()
	}
	m, err := ilpmodel.Build(c, cfg)
	if err != nil {
		opts.logf("pilp: model build for %v failed: %v", strips, err)
		return nil, false
	}
	lay, _, err := m.SolveAndExtract(milp.SolveOptions{TimeLimit: opts.stripTimeLimit()})
	if err != nil || lay == nil {
		return nil, false
	}
	return lay, true
}

// resamplePath collapses redundant chain points and then inserts collinear
// midpoints on the longest legs until the path has at least n points; this is
// the chain-point deletion/insertion primitive of phase 3. The result always
// remains rectilinear.
func resamplePath(pts []geom.Point, n int) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	if len(out) > n {
		simplified := (geom.Polyline{Points: out, Width: 1}).Simplify().Points
		if len(simplified) >= 2 {
			out = simplified
		}
	}
	for len(out) < n {
		// Split the longest leg in half.
		longest := 0
		var longestLen geom.Coord = -1
		for i := 1; i < len(out); i++ {
			if l := out[i-1].ManhattanTo(out[i]); l > longestLen {
				longestLen = l
				longest = i
			}
		}
		a, b := out[longest-1], out[longest]
		mid := geom.Pt((a.X+b.X)/2, (a.Y+b.Y)/2)
		rest := append([]geom.Point{mid}, out[longest:]...)
		out = append(out[:longest], rest...)
	}
	return out
}

// refine is phase 3: chain points without bends are removed, strips that
// still violate a rule get more chain points, neighbouring devices may move
// within τd, and device rotations are explored.
func refine(c *netlist.Circuit, current *layout.Layout, opts Options) *layout.Layout {
	for iter := 0; iter < opts.refineIterations(); iter++ {
		// Chain-point deletion: simplify every route in place.
		simplified := current.Clone()
		for _, rs := range current.RoutedStrips() {
			pts := rs.Path.Simplify().Points
			if len(pts) >= 2 {
				_ = simplified.Route(rs.Strip.Name, pts...)
			}
		}
		if score(simplified) <= score(current) {
			current = simplified
		}

		violations := checkLayout(current)
		if len(violations) == 0 && current.Metrics().TotalBends == 0 {
			break
		}

		// Collect the strips that still cause trouble.
		trouble := map[string]bool{}
		for _, v := range violations {
			if _, err := c.Microstrip(v.Subject); err == nil {
				trouble[v.Subject] = true
			}
			if v.Other != "" {
				if _, err := c.Microstrip(v.Other); err == nil {
					trouble[v.Other] = true
				}
			}
		}
		if len(trouble) == 0 && len(violations) > 0 {
			// Violations that involve only devices: free the devices with
			// their incident strips.
			for _, v := range violations {
				for _, ms := range c.StripsAt(v.Subject) {
					trouble[ms.Name] = true
				}
			}
		}

		improved := false
		names := sortedKeys(trouble)
		for _, strip := range names {
			before := score(current)
			for n := opts.chainPoints(); n <= opts.maxChainPoints(); n++ {
				// First with only the strip free, then with its non-pad
				// terminal devices (and their other strips) free within τd —
				// the device-movement freedom of phase 3.
				candidate, ok := solveStrips(c, current, []string{strip}, n, nil, opts)
				if !ok || score(candidate) >= before {
					strips, devs := neighbourhood(c, strip)
					candidate, ok = solveStrips(c, current, strips, n, devs, opts)
				}
				if !ok {
					continue
				}
				if s := score(candidate); s < before {
					current = candidate
					improved = true
					break
				}
			}
		}

		if opts.TryRotations && len(checkLayout(current)) > 0 {
			var rotated bool
			current, rotated = tryRotations(c, current, opts)
			improved = improved || rotated
		}
		if !improved {
			break
		}
	}
	return current
}

// tryRotations explores the four orientations of the devices that still
// participate in violations, re-solving their incident strips each time, and
// keeps the best result.
func tryRotations(c *netlist.Circuit, current *layout.Layout, opts Options) (*layout.Layout, bool) {
	violations := checkLayout(current)
	devices := map[string]bool{}
	for _, v := range violations {
		if d, err := c.Device(v.Subject); err == nil && !d.IsPad() {
			devices[v.Subject] = true
		}
		if v.Other != "" {
			if d, err := c.Device(v.Other); err == nil && !d.IsPad() {
				devices[v.Other] = true
			}
		}
	}
	improved := false
	for _, name := range sortedKeys(devices) {
		base := current.Placed(name)
		if base == nil {
			continue
		}
		bestScore := score(current)
		bestLayout := current
		var incident []string
		for _, ms := range c.StripsAt(name) {
			incident = append(incident, ms.Name)
		}
		for _, o := range []geom.Orientation{geom.R90, geom.R180, geom.R270} {
			candidate := current.Clone()
			if err := candidate.Place(name, base.Center, base.Orient.Plus(o)); err != nil {
				continue
			}
			// Re-solve all incident strips together against the rotated pins.
			next, solved := solveStrips(c, candidate, incident, opts.chainPoints(), nil, opts)
			if !solved {
				continue
			}
			if s := score(next); s < bestScore {
				bestScore = s
				bestLayout = next
			}
		}
		if bestLayout != current {
			current = bestLayout
			improved = true
		}
	}
	return current, improved
}

// neighbourhood returns the strip together with its non-pad terminal devices
// and every strip incident to those devices, which is the local problem the
// refinement phase frees when the strip alone cannot be fixed.
func neighbourhood(c *netlist.Circuit, strip string) (strips []string, devices []string) {
	stripSet := map[string]bool{strip: true}
	ms, err := c.Microstrip(strip)
	if err != nil {
		return []string{strip}, nil
	}
	for _, dev := range []string{ms.From.Device, ms.To.Device} {
		d, err := c.Device(dev)
		if err != nil || d.IsPad() {
			continue
		}
		devices = append(devices, dev)
		for _, incident := range c.StripsAt(dev) {
			stripSet[incident.Name] = true
		}
	}
	strips = sortedKeys(stripSet)
	return strips, devices
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
