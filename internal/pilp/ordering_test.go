package pilp

import (
	"testing"
	"time"

	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
)

// The two fixtures declare the identical circuit with devices, pins and
// strips in different orders; TL1 and TL2 share a target length so the
// routing-order tie-break is exercised, and B1/B2 have no strips so the
// stub round-robin is exercised.
const orderedNetlist = `
circuit tiny
area 500 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
device B1 capacitor 30 30
pin B1 p 0 0
device B2 capacitor 30 30
pin B2 p 0 0
device M1 transistor 40 30
pin M1 in -20 0
pin M1 out 20 0
pad PIN
pad POUT
strip TL1 PIN.p M1.in length=140
strip TL2 M1.out POUT.p length=140
`

const shuffledNetlist = `
circuit tiny
area 500 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
pad POUT
device M1 transistor 40 30
pin M1 out 20 0
pin M1 in -20 0
device B2 capacitor 30 30
pin B2 p 0 0
strip TL2 M1.out POUT.p length=140
device B1 capacitor 30 30
pin B1 p 0 0
pad PIN
strip TL1 PIN.p M1.in length=140
`

// TestGenerateIndependentOfDeclarationOrder checks the premise the result
// cache is built on: circuits with equal canonical text produce
// byte-identical layouts, regardless of how the source netlist orders its
// declarations.
func TestGenerateIndependentOfDeclarationOrder(t *testing.T) {
	opts := Options{
		ChainPoints:         3,
		MaxChainPoints:      3,
		StripTimeLimit:      5 * time.Second,
		PhaseTimeLimit:      10 * time.Second,
		MaxRefineIterations: 1,
	}
	a, err := netlist.ParseString(orderedNetlist)
	if err != nil {
		t.Fatal(err)
	}
	b, err := netlist.ParseString(shuffledNetlist)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.Canonical(a) != netlist.Canonical(b) {
		t.Fatal("fixtures are not canonical-equal")
	}
	ra, err := Generate(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Generate(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := layout.Format(ra.Layout), layout.Format(rb.Layout); fa != fb {
		t.Errorf("declaration order changed the layout:\n--- ordered ---\n%s\n--- shuffled ---\n%s", fa, fb)
	}
	if ra.Nodes != rb.Nodes {
		t.Errorf("declaration order changed solver effort: %d vs %d nodes", ra.Nodes, rb.Nodes)
	}
}
