package pilp

import (
	"context"
	"strings"
	"sync"
	"testing"

	"rficlayout/internal/layout"
)

// cancelOn returns a Logf hook that cancels the context the first time a
// progress message contains marker — a deterministic cancellation point, as
// opposed to a tiny deadline that fires at a wall-clock-dependent place.
func cancelOn(marker string, cancel context.CancelFunc) func(string, ...interface{}) {
	var once sync.Once
	return func(format string, args ...interface{}) {
		if strings.Contains(format, marker) {
			once.Do(cancel)
		}
	}
}

// TestGenerateCtxPartialAfterConstruct cancels right after construction:
// with AcceptPartial the flow returns the constructed layout marked partial
// instead of the context error.
func TestGenerateCtxPartialAfterConstruct(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOptions()
	opts.AcceptPartial = true
	opts.Logf = cancelOn("constructed initial layout", cancel)

	res, err := GenerateCtx(ctx, cascadeCircuit(), opts)
	if err != nil {
		t.Fatalf("AcceptPartial flow returned error: %v", err)
	}
	if !res.Partial {
		t.Fatal("cancelled flow not marked partial")
	}
	if res.PartialPhase != "construct" {
		t.Errorf("PartialPhase = %q, want construct", res.PartialPhase)
	}
	if res.Layout == nil || !res.Layout.Complete() {
		t.Error("partial result does not carry a complete constructed layout")
	}
	if len(res.Snapshots) == 0 || res.Snapshots[len(res.Snapshots)-1].Phase != "construct" {
		t.Errorf("snapshots do not end at construct: %+v", res.Snapshots)
	}
}

// TestGenerateCtxPartialMidFlow cancels after phase 1: the partial result
// holds the phase-1 layout and the cancelled MILP solves show up in the
// interruption stats.
func TestGenerateCtxPartialMidFlow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOptions()
	opts.AcceptPartial = true
	opts.Logf = cancelOn("phase 1 done", cancel)

	res, err := GenerateCtx(ctx, cascadeCircuit(), opts)
	if err != nil {
		t.Fatalf("AcceptPartial flow returned error: %v", err)
	}
	if !res.Partial || res.PartialPhase != "phase1-blurred-routing" {
		t.Fatalf("partial=%v phase=%q, want partial at phase1-blurred-routing", res.Partial, res.PartialPhase)
	}
	if res.Layout == nil {
		t.Fatal("partial result carries no layout")
	}
	if res.MaxGap < 0 {
		t.Errorf("MaxGap = %v, want >= 0", res.MaxGap)
	}
}

// TestGenerateCtxStrictCancellationStillFails pins the pre-existing
// contract: without AcceptPartial the same deterministic cancellation is an
// error.
func TestGenerateCtxStrictCancellationStillFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOptions()
	opts.Logf = cancelOn("constructed initial layout", cancel)

	res, err := GenerateCtx(ctx, cascadeCircuit(), opts)
	if err == nil {
		t.Fatalf("strict flow returned %+v, want context error", res)
	}
}

// TestAcceptPartialExcludedFromFingerprint pins the cache-key contract:
// AcceptPartial cannot change a completed layout, and partial results are
// never cached, so the flag must not split the key space.
func TestAcceptPartialExcludedFromFingerprint(t *testing.T) {
	a := fastOptions()
	b := fastOptions()
	b.AcceptPartial = true
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("AcceptPartial changed the fingerprint:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestAcceptPartialCompletedRunIdentical checks the other half of that
// contract: when nothing cancels, AcceptPartial produces the byte-identical
// result of a plain run, with Partial unset.
func TestAcceptPartialCompletedRunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full flows")
	}
	plain, err := Generate(cascadeCircuit(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	opts.AcceptPartial = true
	anytime, err := Generate(cascadeCircuit(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if anytime.Partial {
		t.Fatal("uncancelled AcceptPartial run marked partial")
	}
	if layout.Format(anytime.Layout) != layout.Format(plain.Layout) {
		t.Error("AcceptPartial changed the layout of a completed run")
	}
}
