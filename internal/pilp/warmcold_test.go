package pilp

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
)

// TestWarmColdLayoutIdenticalFlow is the flow-level half of the warm-start
// determinism contract: the full three-phase flow must produce the
// byte-identical layout whether branch-and-bound LPs reuse parent bases or
// solve cold, while the warm run actually reuses bases. The mini circuit is
// the one full-flow input whose solves never hit a time limit (binding
// limits are the one legitimate source of nondeterminism, so they would
// void the comparison).
func TestWarmColdLayoutIdenticalFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("two full flow runs in -short mode")
	}
	c := miniCircuit()

	warm, err := Generate(c, miniOptions())
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := miniOptions()
	coldOpts.ColdLP = true
	cold, err := Generate(c, coldOpts)
	if err != nil {
		t.Fatal(err)
	}

	if layout.Format(warm.Layout) != layout.Format(cold.Layout) {
		t.Error("warm and cold flows produced different layouts")
	}
	if warm.Nodes != cold.Nodes {
		t.Errorf("warm flow explored %d nodes, cold %d — search shape changed", warm.Nodes, cold.Nodes)
	}
	if warm.LP.WarmHits == 0 {
		t.Errorf("warm flow never reused a basis: %+v", warm.LP)
	}
	if cold.LP.WarmHits != 0 || cold.LP.WarmMisses != 0 {
		t.Errorf("cold flow counted warm LPs: %+v", cold.LP)
	}
	if warm.LP.Pivots >= cold.LP.Pivots {
		t.Errorf("warm starts saved no pivots: warm %d, cold %d", warm.LP.Pivots, cold.LP.Pivots)
	}
	t.Logf("mini flow pivots: cold %d, warm %d, warm hits %d/%d LPs",
		cold.LP.Pivots, warm.LP.Pivots, warm.LP.WarmHits, warm.LP.Solves())
}

// TestWarmColdLayoutIdenticalTwostagePhase1 pins the contract on the repo's
// example netlist. The twostage per-strip exact-length solves run to their
// time limit (nondeterministic cut points), so the comparison isolates
// phase 1 — construction plus the global adjustment — which converges well
// inside a generous limit.
func TestWarmColdLayoutIdenticalTwostagePhase1(t *testing.T) {
	c, err := netlist.ParseFile(filepath.Join("..", "..", "testdata", "twostage.rfic"))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{PhaseTimeLimit: 2 * time.Minute}

	warm, err := AdjustPhase1(context.Background(), c, base)
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := base
	coldOpts.ColdLP = true
	cold, err := AdjustPhase1(context.Background(), c, coldOpts)
	if err != nil {
		t.Fatal(err)
	}

	if layout.Format(warm.Layout) != layout.Format(cold.Layout) {
		t.Error("warm and cold phase 1 produced different layouts")
	}
	if warm.Nodes != cold.Nodes {
		t.Errorf("warm phase 1 explored %d nodes, cold %d", warm.Nodes, cold.Nodes)
	}
	if cold.LP.WarmHits != 0 || cold.LP.WarmMisses != 0 {
		t.Errorf("cold phase 1 counted warm LPs: %+v", cold.LP)
	}
	t.Logf("twostage phase-1 pivots: cold %d, warm %d, warm hits %d/%d LPs",
		cold.LP.Pivots, warm.LP.Pivots, warm.LP.WarmHits, warm.LP.Solves())
}

// TestWarmColdLayoutIdenticalLargeFlow pins the contract on the large
// synthetic circuit, where the branch-and-bound trees live in the per-strip
// exact-length solves (the phase-1 adjustment solves at an integral root —
// one LP, no tree, so warm starts never engage there). Those strip searches
// do not converge at this scale, so the test bounds each one by a
// deterministic node budget rather than a wall clock: nodes are processed in
// the same order at every worker count, which keeps the cut path-independent
// and the comparison valid. Refinement is skipped for the same reason. The
// test additionally requires the deterministic effort counters to agree
// across worker counts.
func TestWarmColdLayoutIdenticalLargeFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("three node-budgeted large flows in -short mode")
	}
	c := circuits.Build(circuits.LargeSpec(1))
	base := Options{
		ChainPoints:         2,
		MaxChainPoints:      3,
		StripTimeLimit:      5 * time.Minute, // generous: the node budget must bind first
		PhaseTimeLimit:      5 * time.Minute,
		MaxRefineIterations: -1,
		StripNodeLimit:      25,
	}

	type outcome struct {
		text  string
		stats LPStats
		nodes int
	}
	solve := func(cold bool, workers int) outcome {
		opts := base
		opts.ColdLP = cold
		opts.Workers = workers
		res, err := Generate(c, opts)
		if err != nil {
			t.Fatalf("cold=%v workers=%d: %v", cold, workers, err)
		}
		return outcome{text: layout.Format(res.Layout), stats: res.LP, nodes: res.Nodes}
	}

	warm1 := solve(false, 1)
	warm4 := solve(false, 4)
	cold1 := solve(true, 1)

	if warm1.text != warm4.text {
		t.Error("warm flow differs between 1 and 4 workers")
	}
	if warm1.text != cold1.text {
		t.Error("warm and cold flows produced different layouts")
	}
	if warm1.stats != warm4.stats || warm1.nodes != warm4.nodes {
		t.Errorf("warm effort counters differ across workers: %+v/%d vs %+v/%d",
			warm1.stats, warm1.nodes, warm4.stats, warm4.nodes)
	}
	if warm1.stats.WarmHits == 0 {
		t.Errorf("large flow never reused a basis: %+v", warm1.stats)
	}
	if warm1.stats.Pivots >= cold1.stats.Pivots {
		t.Errorf("warm starts saved no pivots on the large circuit: warm %d, cold %d",
			warm1.stats.Pivots, cold1.stats.Pivots)
	}
	t.Logf("large flow pivots: cold %d, warm %d (%.2fx), warm hits %d/%d LPs",
		cold1.stats.Pivots, warm1.stats.Pivots,
		float64(cold1.stats.Pivots)/float64(warm1.stats.Pivots),
		warm1.stats.WarmHits, warm1.stats.Solves())
}

// TestFingerprintCoversLPOptions pins that the cache key separates pivot
// rules and warm/cold modes.
func TestFingerprintCoversLPOptions(t *testing.T) {
	base := Options{}
	seen := map[string]string{base.Fingerprint(): "base"}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"bland", Options{PivotRule: 1}},
		{"devex", Options{PivotRule: 2}},
		{"cold", Options{ColdLP: true}},
	} {
		fp := tc.opts.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share fingerprint %q", tc.name, prev, fp)
		}
		seen[fp] = tc.name
	}
}
