package pilp

import (
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// cascadeCircuit builds a small but representative RF chain:
// PIN → M1 → M2 → POUT with a shunt capacitor stub on the M1–M2 node.
func cascadeCircuit() *netlist.Circuit {
	c := netlist.NewCircuit("cascade", tech.Default90nm(), geom.FromMicrons(500), geom.FromMicrons(380))
	for _, name := range []string{"M1", "M2"} {
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("in", geom.PtMicrons(-20, 0), 0)
		d.AddPin("out", geom.PtMicrons(20, 0), 0)
		c.AddDevice(d)
	}
	cap := netlist.NewDevice("C1", netlist.Capacitor, geom.FromMicrons(50), geom.FromMicrons(40))
	cap.AddPin("p", geom.PtMicrons(0, -20), 0)
	c.AddDevice(cap)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))

	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(150))
	c.Connect("TL2", "M1", "out", "M2", "in", geom.FromMicrons(180))
	c.Connect("TL3", "M2", "out", "POUT", "p", geom.FromMicrons(160))
	c.Connect("TLC", "M1", "out", "C1", "p", geom.FromMicrons(90))
	return c
}

func fastOptions() Options {
	return Options{
		ChainPoints:         4,
		MaxChainPoints:      6,
		StripTimeLimit:      3 * time.Second,
		PhaseTimeLimit:      10 * time.Second,
		MaxRefineIterations: 2,
	}
}

func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.chainPoints() != 4 || o.maxChainPoints() != 8 {
		t.Error("chain point defaults wrong")
	}
	if o.confinement() != geom.FromMicrons(40) || o.pairRadius() != geom.FromMicrons(80) {
		t.Error("geometry defaults wrong")
	}
	if o.stripTimeLimit() != 5*time.Second || o.phaseTimeLimit() != 30*time.Second {
		t.Error("time limit defaults wrong")
	}
	if o.refineIterations() != 3 {
		t.Error("refine default wrong")
	}
	o.logf("no logger must not panic")
}

func TestOrderDevices(t *testing.T) {
	c := cascadeCircuit()
	chain, stubs := orderDevices(c)
	if len(chain) < 4 {
		t.Fatalf("chain too short: %v", chain)
	}
	if chain[0] != "PIN" {
		t.Errorf("chain should start at a pad, got %v", chain)
	}
	onChain := map[string]bool{}
	for _, n := range chain {
		onChain[n] = true
	}
	total := len(chain) + len(stubs)
	if total != len(c.Devices) {
		t.Errorf("chain+stubs covers %d of %d devices", total, len(c.Devices))
	}
	for stub, anchor := range stubs {
		if onChain[stub] {
			t.Errorf("stub %s is also on the chain", stub)
		}
		if !onChain[anchor] {
			t.Errorf("stub %s anchored at non-chain device %s", stub, anchor)
		}
	}
}

func TestLongestPathFrom(t *testing.T) {
	adj := map[string][]string{
		"a": {"b"},
		"b": {"a", "c", "d"},
		"c": {"b"},
		"d": {"b", "e"},
		"e": {"d"},
	}
	path := longestPathFrom("a", adj)
	if len(path) != 4 { // a-b-d-e
		t.Errorf("longest path = %v", path)
	}
	if got := longestPathFrom("", adj); got != nil {
		t.Errorf("empty start should give nil, got %v", got)
	}
}

func TestConstructProducesCompletePlanarLayout(t *testing.T) {
	c := cascadeCircuit()
	l, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Fatal("constructed layout incomplete")
	}
	vs := l.Check(layout.CheckOptions{SkipLengthCheck: true, PinTolerance: 2})
	if n := layout.CountViolations(vs, layout.CrossingViolation); n != 0 {
		t.Errorf("constructed layout has %d crossings: %v", n, vs)
	}
	if n := layout.CountViolations(vs, layout.PadNotOnBoundary); n != 0 {
		t.Errorf("pads off boundary: %v", vs)
	}
	if n := layout.CountViolations(vs, layout.PinMismatch); n != 0 {
		t.Errorf("route endpoints off pins: %v", vs)
	}
}

func TestResamplePath(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 80)}
	grown := resamplePath(pts, 5)
	if len(grown) != 5 {
		t.Fatalf("grown to %d points", len(grown))
	}
	pl := geom.Polyline{Points: grown, Width: 1}
	if pl.Length() != 180 {
		t.Errorf("length changed to %d", pl.Length())
	}
	if pl.Bends() != 1 {
		t.Errorf("bends changed to %d", pl.Bends())
	}
	// Shrinking only removes redundant points; a minimal path stays as is.
	same := resamplePath(grown, 2)
	if len(same) != 3 {
		t.Errorf("simplified to %d points, want the 3 structural ones", len(same))
	}
	// All legs stay axis-parallel.
	for i := 1; i < len(grown); i++ {
		if grown[i-1].X != grown[i].X && grown[i-1].Y != grown[i].Y {
			t.Errorf("leg %d not axis-parallel", i)
		}
	}
}

func TestNeighbourhood(t *testing.T) {
	c := cascadeCircuit()
	strips, devs := neighbourhood(c, "TL2")
	if len(devs) != 2 {
		t.Errorf("devices = %v", devs)
	}
	found := map[string]bool{}
	for _, s := range strips {
		found[s] = true
	}
	for _, want := range []string{"TL1", "TL2", "TL3", "TLC"} {
		if !found[want] {
			t.Errorf("neighbourhood misses %s: %v", want, strips)
		}
	}
	// Unknown strips degrade gracefully.
	strips, devs = neighbourhood(c, "nope")
	if len(strips) != 1 || devs != nil {
		t.Errorf("unknown strip neighbourhood = %v, %v", strips, devs)
	}
}

func TestGenerateCascade(t *testing.T) {
	c := cascadeCircuit()
	opts := fastOptions()
	if testing.Short() {
		// Reduced-iteration variant: one refinement pass, minimal chain-point
		// growth and tight solve budgets keep the full three-phase flow under
		// a few seconds while still exercising every phase end to end.
		opts.ChainPoints = 3
		opts.MaxChainPoints = 3
		opts.MaxRefineIterations = 1
		opts.StripTimeLimit = 500 * time.Millisecond
		opts.PhaseTimeLimit = 2 * time.Second
	}
	res, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout == nil || !res.Layout.Complete() {
		t.Fatal("flow produced an incomplete layout")
	}
	if len(res.Snapshots) != 3 {
		t.Errorf("snapshots = %d, want 3 phases", len(res.Snapshots))
	}
	if testing.Short() {
		// The reduced budgets cannot promise exact lengths; completeness and
		// the phase snapshots above are the -short contract.
		return
	}
	// Planarity and spacing must hold unconditionally. Exact lengths are the
	// goal, but the from-scratch branch-and-bound cannot always close the
	// hardest junction detours within the per-strip time limit, so a small
	// residual mismatch is tolerated here (and reported honestly by the
	// benchmark harness).
	for _, v := range res.Violations() {
		if v.Kind != layout.LengthMismatch {
			t.Errorf("unexpected violation: %v", v)
		}
	}
	m := res.Layout.Metrics()
	if m.TotalBends > 12 {
		t.Errorf("total bends = %d, suspiciously many for this small circuit", m.TotalBends)
	}
	// At least half of the strips must be matched exactly, and the residual
	// mismatch must stay bounded.
	delta := c.Tech.BendCompensation
	exact := 0
	for _, rs := range res.Layout.RoutedStrips() {
		if geom.AbsCoord(rs.LengthError(delta)) <= 10 {
			exact++
		}
	}
	if exact*2 < len(res.Layout.RoutedStrips()) {
		t.Errorf("only %d of %d strips reached their exact length", exact, len(res.Layout.RoutedStrips()))
	}
	if m.MaxLengthError > geom.FromMicrons(30) {
		t.Errorf("max length error %.1f µm too large", geom.Microns(m.MaxLengthError))
	}
}

func TestScoreOrdersLayouts(t *testing.T) {
	c := cascadeCircuit()
	good, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}
	// A layout with everything unplaced scores far worse.
	bad := layout.New(c)
	if score(bad) <= score(good) {
		t.Error("empty layout should score worse than the constructed one")
	}
}
