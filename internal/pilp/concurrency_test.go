package pilp

import (
	"context"
	"runtime"
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// miniCircuit is the smallest interesting flow input: one transistor between
// two pads plus a shunt capacitor, three strips with a junction at M1.out.
func miniCircuit() *netlist.Circuit {
	c := netlist.NewCircuit("mini", tech.Default90nm(), geom.FromMicrons(420), geom.FromMicrons(320))
	d := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	d.AddPin("in", geom.PtMicrons(-20, 0), 0)
	d.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(d)
	cap := netlist.NewDevice("C1", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(30))
	cap.AddPin("p", geom.PtMicrons(0, -15), 0)
	c.AddDevice(cap)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(140))
	c.Connect("TL2", "M1", "out", "POUT", "p", geom.FromMicrons(150))
	c.Connect("TLC", "M1", "out", "C1", "p", geom.FromMicrons(80))
	return c
}

// twoStripCircuit strips the mini circuit down to a single series chain for
// the -short determinism check: PIN → M1 → POUT, no junction.
func twoStripCircuit() *netlist.Circuit {
	c := netlist.NewCircuit("twostrip", tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	d := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	d.AddPin("in", geom.PtMicrons(-20, 0), 0)
	d.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(d)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(130))
	c.Connect("TL2", "M1", "out", "POUT", "p", geom.FromMicrons(140))
	return c
}

// miniOptions keeps the flow fast while leaving time limits generous enough
// that they never bind on the mini circuit — binding limits are the one
// legitimate source of nondeterminism.
func miniOptions() Options {
	return Options{
		ChainPoints:         3,
		MaxChainPoints:      4,
		StripTimeLimit:      20 * time.Second,
		PhaseTimeLimit:      30 * time.Second,
		MaxRefineIterations: 1,
	}
}

// TestGenerateDeterministicAcrossWorkers solves the same circuit with 1, 2
// and GOMAXPROCS workers and requires byte-identical serialized layouts: the
// worker pool must only change wall-clock time, never the result. The MILP
// solves are an order of magnitude slower under -race, so -short drops the
// junction stub and the middle worker count; the full variant still runs in
// the long tier.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	c := miniCircuit()
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	if testing.Short() {
		c = twoStripCircuit()
		counts = []int{1, runtime.GOMAXPROCS(0)}
	}
	var ref string
	for i, workers := range counts {
		opts := miniOptions()
		opts.Workers = workers
		res, err := Generate(c, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Layout == nil || !res.Layout.Complete() {
			t.Fatalf("workers=%d: incomplete layout", workers)
		}
		got := layout.Format(res.Layout)
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("workers=%d produced a different layout:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, ref, workers, got)
		}
	}
}

// TestRunJobsPropagatesPanic checks that a panic inside a pooled job is
// re-raised on the calling goroutine (engine.Run's per-job recover depends
// on this) instead of crashing the process from a worker goroutine.
func TestRunJobsPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: panic was not propagated", workers)
				}
			}()
			runJobs(context.Background(), workers, 8, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestGenerateCtxPreCancelled checks that an already-cancelled context fails
// the flow promptly instead of solving anything.
func TestGenerateCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := GenerateCtx(ctx, miniCircuit(), miniOptions())
	if err == nil {
		t.Fatal("expected an error from a pre-cancelled context")
	}
	if res != nil {
		t.Errorf("expected no result, got %+v", res)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled flow took %v", elapsed)
	}
}

// TestGenerateCtxCancelMidFlow cancels shortly after the flow starts and
// checks that it returns with the context error rather than running to
// completion.
func TestGenerateCtxCancelMidFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive cancellation test skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := GenerateCtx(ctx, cascadeCircuit(), fastOptions())
	if err == nil {
		t.Fatal("expected the deadline to interrupt the flow")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}
