package pilp

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/ilpmodel"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/partition"
)

// ShardStat describes one cluster of the sharded phase-1 adjustment: its
// size, how many coordination rounds re-solved it, and the solver effort it
// consumed. Runtime is wall-clock and therefore scheduling-dependent; every
// other field is deterministic.
type ShardStat struct {
	// Cluster is the cluster index (partition order).
	Cluster int
	// Devices and Strips are the cluster's owned object counts; Boundary is
	// how many of the strips cross into another cluster.
	Devices  int
	Strips   int
	Boundary int
	// Rounds is how many coordination rounds solved this shard (at least 1
	// unless the flow was cancelled first).
	Rounds int
	// Nodes is the branch-and-bound node total across the shard's solves.
	Nodes int
	// Runtime is the accumulated wall-clock time of the shard's solves.
	Runtime time.Duration
}

// Phase1Result is the outcome of AdjustPhase1.
type Phase1Result struct {
	Layout *layout.Layout
	// Shards holds the per-cluster sub-solve stats, nil when the adjustment
	// ran monolithically.
	Shards []ShardStat
	// Nodes is the branch-and-bound node total across the phase's solves.
	Nodes int
	// LP aggregates the simplex-level effort counters across the same
	// solves (see LPStats).
	LP      LPStats
	Runtime time.Duration
}

// AdjustPhase1 runs only phase 1 of the flow — constructive placement plus
// the global coordinate adjustment. It is the benchmarking entry point for
// the sharded-adjustment subsystem (rficbench -shardguard isolates phase 1
// with it); GenerateCtx remains the full three-phase flow. Like GenerateCtx
// it applies the score gate: an adjustment that does not improve on the
// constructed layout is discarded.
func AdjustPhase1(ctx context.Context, c *netlist.Circuit, opts Options) (*Phase1Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c = netlist.Normalized(c)
	opts.nodes = new(atomic.Int64)
	opts.lpStats = new(lpCounters)
	current, err := Construct(c)
	if err != nil {
		return nil, err
	}
	adjusted, shards, err := adjustGlobal(ctx, c, current, opts)
	if err != nil {
		return nil, err
	}
	if adjusted != nil && score(adjusted) <= score(current) {
		current = adjusted
	}
	return &Phase1Result{
		Layout:  current,
		Shards:  shards,
		Nodes:   int(opts.nodes.Load()),
		LP:      opts.lpStats.snapshot(),
		Runtime: time.Since(start),
	}, nil
}

// adjustGlobal dispatches phase 1b: the sharded pipeline when ShardSize is
// set and the circuit splits into at least two clusters, the monolithic
// solve otherwise (and as fallback when sharding fails outright).
func adjustGlobal(ctx context.Context, c *netlist.Circuit, current *layout.Layout, opts Options) (*layout.Layout, []ShardStat, error) {
	if opts.ShardSize > 0 {
		clusters := partition.Clusters(c, partition.Options{MaxDevices: opts.ShardSize})
		if len(clusters) >= 2 {
			lay, stats, err := shardedAdjust(ctx, c, current, clusters, opts)
			if err == nil {
				return lay, stats, nil
			}
			if ctx.Err() != nil {
				// Cancelled mid-shard: building the monolithic model under a
				// dead context would only delay the cancellation.
				return nil, stats, err
			}
			opts.logf("pilp: sharded adjustment failed (%v), falling back to the monolithic solve", err)
		} else {
			opts.logf("pilp: circuit below the shard threshold (%d cluster(s) at size %d), solving monolithically",
				len(clusters), opts.ShardSize)
		}
	}
	lay, err := globalAdjust(ctx, c, current, opts)
	return lay, nil, err
}

// shardedAdjust runs the clustered phase-1 pipeline: every cluster solves a
// local sub-MILP against a frozen snapshot of the layout (remote boundary
// terminals pinned to the snapshot with penalized slack), the results merge
// in cluster order, and shards whose boundary strips ended farther than the
// tolerance from their pins are re-solved against the merged snapshot —
// bounded by ShardIterations rounds. The best-scoring merged layout across
// rounds is returned.
//
// Determinism: sub-solves run concurrently but each starts from the same
// frozen snapshot and runs its branch-and-bound single-worker; the merge
// order, the residual measurement and the re-solve set are all functions of
// the merged layout alone, so the result is byte-identical for every worker
// count (the contract GenerateCtx documents).
func shardedAdjust(ctx context.Context, c *netlist.Circuit, current *layout.Layout, clusters []partition.Cluster, opts Options) (*layout.Layout, []ShardStat, error) {
	base, err := phase1Config(c, current, opts)
	if err != nil {
		return nil, nil, err
	}

	stats := make([]ShardStat, len(clusters))
	objectCluster := map[string]int{} // device name or owned strip name → cluster
	boundary := map[string]bool{}
	for i, cl := range clusters {
		stats[i] = ShardStat{
			Cluster:  i,
			Devices:  len(cl.Devices),
			Strips:   len(cl.Strips),
			Boundary: len(cl.Boundary),
		}
		for _, d := range cl.Devices {
			objectCluster[d] = i
		}
		for _, s := range cl.Strips {
			objectCluster[s] = i
		}
		for _, s := range cl.Boundary {
			boundary[s] = true
		}
	}

	snapshot := current
	best := current
	bestScore := score(current)
	pending := make([]int, len(clusters))
	for i := range clusters {
		pending[i] = i
	}

	for round := 0; round < opts.shardIterations() && len(pending) > 0; round++ {
		if ctx.Err() != nil {
			break
		}
		frozen := snapshot
		results := make([]*layout.Layout, len(clusters))
		runJobs(ctx, opts.workers(), len(pending), func(k int) {
			ci := pending[k]
			results[ci] = solveShard(ctx, c, frozen, base, clusters[ci], opts, &stats[ci])
		})

		// One clone per round: every successful shard grafts its owned
		// objects into the same copy (disjoint ownership makes the grafts
		// independent; a failed shard keeps its snapshot geometry). A graft
		// that fails midway is rolled back from the frozen snapshot — those
		// placements and routes grafted successfully once, so the rollback
		// cannot fail — keeping the cluster all-or-nothing.
		merged := frozen.Clone()
		for _, ci := range pending {
			if results[ci] == nil {
				continue
			}
			if !applyInto(merged, results[ci], clusters[ci].Strips, clusters[ci].Devices) {
				applyInto(merged, frozen, clusters[ci].Strips, clusters[ci].Devices)
			}
		}
		snapshot = merged
		// One DRC pass feeds the score, the drift detection and the log line
		// — layout.Check is quadratic in the circuit, so per round it runs
		// exactly once.
		violations := checkLayout(merged)
		s := scoreWith(merged, violations)
		if s <= bestScore {
			best, bestScore = merged, s
		}
		pending = driftedShards(c, merged, violations, objectCluster, boundary, opts.shardBoundaryTol())
		opts.logf("pilp: shard round %d merged (score %.1f), %d shard(s) drifted", round+1, s, len(pending))
	}
	// Residual boundary drift after the final round (pin-mismatch on an
	// inter-cluster strip) is left for phase 2: its per-strip escalation
	// frees topology and devices, which is what an off-axis drift needs —
	// re-solving it here with frozen topology cannot converge, and a free
	// topology single-strip search costs more than the whole sharded phase.
	if err := ctx.Err(); err != nil && best == current {
		return nil, stats, err
	}
	return best, stats, nil
}

// solveShard builds and solves one cluster-local sub-MILP against the frozen
// snapshot. The sub-models are small, so each branch-and-bound runs
// single-worker — the shard fan-out in shardedAdjust owns the parallelism
// dimension, mirroring how the per-strip pass treats its subproblems.
func solveShard(ctx context.Context, c *netlist.Circuit, frozen *layout.Layout, base ilpmodel.Config, cl partition.Cluster, opts Options, stat *ShardStat) *layout.Layout {
	start := time.Now()
	defer func() {
		stat.Rounds++
		stat.Runtime += time.Since(start)
	}()
	base.Fixed = frozen
	// The sub-model frees the cluster's own strips plus the boundary strips
	// other clusters own that end on this cluster's devices: those tether
	// the devices to the shared nets (soft length, slack at the owner-side
	// terminal). Only the owned routes are merged back.
	freeStrips := append(append([]string(nil), cl.Strips...), cl.Adjacent...)
	sort.Strings(freeStrips)
	slackStrips := append(append([]string(nil), cl.Boundary...), cl.Adjacent...)
	sort.Strings(slackStrips)
	m, err := ilpmodel.BuildSub(c, base, ilpmodel.SubSpec{
		FreeDevices:    cl.Devices,
		FreeStrips:     freeStrips,
		BoundaryStrips: slackStrips,
	})
	if err != nil {
		opts.logf("pilp: shard %d model build failed: %v", stat.Cluster, err)
		return nil
	}
	mo := opts.milpOptions(opts.phaseTimeLimit(), 1)
	mo.MaxNodes = opts.Phase1NodeLimit
	lay, result, err := m.SolveAndExtractCtx(ctx, mo)
	if result != nil {
		stat.Nodes += result.Nodes
	}
	opts.countSolve(result)
	if err != nil || lay == nil {
		opts.logf("pilp: shard %d found no solution: %v", stat.Cluster, err)
		return nil
	}
	return lay
}

// driftedShards decides which clusters the next coordination round must
// re-solve against the merged snapshot. Two signals, both deterministic
// functions of the merged layout:
//
//   - boundary residual: an inter-cluster strip whose route endpoint sits
//     farther than the tolerance from its pin marks both adjacent clusters
//     (the owner re-routes toward the moved pin, the remote side may move
//     its device back);
//   - cross-cluster violations: a design-rule violation between objects of
//     two different clusters marks both — independent shard moves can
//     collide in ways neither sub-model could see.
func driftedShards(c *netlist.Circuit, merged *layout.Layout, violations []layout.Violation, objectCluster map[string]int, boundary map[string]bool, tol geom.Coord) []int {
	drifted := map[int]bool{}
	markStrip := func(ms *netlist.Microstrip) {
		for _, term := range []netlist.Terminal{ms.From, ms.To} {
			if ci, ok := objectCluster[term.Device]; ok {
				drifted[ci] = true
			}
		}
	}
	for _, ms := range c.Microstrips {
		if !boundary[ms.Name] {
			continue
		}
		if boundaryResidual(merged, ms) > tol {
			markStrip(ms)
		}
	}
	for _, v := range violations {
		if v.Other == "" {
			continue
		}
		a, aok := objectCluster[v.Subject]
		b, bok := objectCluster[v.Other]
		if aok && bok && a != b {
			drifted[a] = true
			drifted[b] = true
		}
	}
	out := make([]int, 0, len(drifted))
	for ci := range drifted {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

// boundaryResidual returns the larger pin-to-endpoint Manhattan distance of
// the strip's two terminals in the layout (zero when the strip or a device
// is absent — nothing to coordinate then).
func boundaryResidual(l *layout.Layout, ms *netlist.Microstrip) geom.Coord {
	rs := l.Routed(ms.Name)
	if rs == nil || len(rs.Path.Points) == 0 {
		return 0
	}
	var worst geom.Coord
	ends := [2]struct {
		term netlist.Terminal
		pt   geom.Point
	}{
		{ms.From, rs.Path.Points[0]},
		{ms.To, rs.Path.Points[len(rs.Path.Points)-1]},
	}
	for _, e := range ends {
		pin, err := l.PinPosition(e.term)
		if err != nil {
			continue
		}
		if d := e.pt.ManhattanTo(pin); d > worst {
			worst = d
		}
	}
	return worst
}
