// Package pilp implements the progressive ILP-based RFIC layout generation
// flow of Section 5 of the paper. The flow runs three phases on top of the
// exact model in internal/ilpmodel:
//
//  1. planar routing with blurred devices — realized as a constructive
//     signal-flow placement plus a global coordinate-adjustment model with
//     soft lengths and penalized overlap (Eq. 23–28);
//  2. device visualization and overlap fixing — real device geometries and
//     pins enter the model, coordinates are confined to τd windows around the
//     phase-1 result, and every microstrip is driven to its exact equivalent
//     length by per-strip exact ILPs;
//  3. iterative layout refinement — chain points without bends are deleted,
//     chain points are inserted where a strip cannot reach its length or
//     escape an overlap, and device rotations are explored; the per-strip
//     ILPs are re-solved until no violation remains or the iteration budget
//     is exhausted.
//
// Each phase records a snapshot so the flow can be inspected the way
// Figure 7 of the paper shows it.
package pilp

import (
	"fmt"
	"sort"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
)

// Construct builds the initial layout of phase 1: devices ordered along the
// signal flow, placed on a serpentine of rows with guaranteed spacing, pads
// snapped to the boundary, and every microstrip routed with a simple planar
// L/Z shape. Lengths are not yet matched; that is the job of the later
// phases.
func Construct(c *netlist.Circuit) (*layout.Layout, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	l := layout.New(c)
	chain, stubs := orderDevices(c)
	if err := placeChain(c, l, chain, stubs); err != nil {
		return nil, err
	}
	if err := routeAll(c, l); err != nil {
		return nil, err
	}
	return l, nil
}

// orderDevices splits the devices into a main signal chain (a path through
// the connectivity graph starting and ending at pads where possible) and
// stub devices hanging off chain nodes.
func orderDevices(c *netlist.Circuit) (chain []string, stubs map[string]string) {
	adj := map[string][]string{}
	for _, ms := range c.Microstrips {
		adj[ms.From.Device] = append(adj[ms.From.Device], ms.To.Device)
		adj[ms.To.Device] = append(adj[ms.To.Device], ms.From.Device)
	}
	for _, neigh := range adj {
		sort.Strings(neigh)
	}

	// Start from a pad when one exists, otherwise from the lexicographically
	// first device.
	start := ""
	for _, d := range c.Devices {
		if d.IsPad() {
			if start == "" || d.Name < start {
				start = d.Name
			}
		}
	}
	if start == "" && len(c.Devices) > 0 {
		names := make([]string, 0, len(c.Devices))
		for _, d := range c.Devices {
			names = append(names, d.Name)
		}
		sort.Strings(names)
		start = names[0]
	}

	// Longest simple path from the start by iterative deepening DFS (the
	// circuits are small trees or near-trees, so this is cheap).
	chain = longestPathFrom(start, adj)

	onChain := map[string]bool{}
	for _, n := range chain {
		onChain[n] = true
	}
	// Every remaining device becomes a stub anchored at its closest chain
	// neighbour (breadth-first from the chain).
	stubs = map[string]string{}
	anchor := map[string]string{}
	queue := append([]string(nil), chain...)
	for _, n := range chain {
		anchor[n] = n
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if _, seen := anchor[nb]; seen {
				continue
			}
			anchor[nb] = anchor[cur]
			queue = append(queue, nb)
		}
	}
	unconnected := 0
	for _, d := range c.Devices {
		if onChain[d.Name] {
			continue
		}
		a, ok := anchor[d.Name]
		if !ok {
			// Device without any microstrip (bias/decoupling block): spread
			// these round-robin over the chain so they do not pile up.
			a = chain[unconnected%len(chain)]
			unconnected++
		}
		stubs[d.Name] = a
	}
	return chain, stubs
}

// longestPathFrom returns the longest simple path starting at start in the
// adjacency map, using DFS with backtracking (suitable for the small device
// graphs of RFIC netlists).
func longestPathFrom(start string, adj map[string][]string) []string {
	if start == "" {
		return nil
	}
	best := []string{start}
	visited := map[string]bool{start: true}
	var path []string
	path = append(path, start)
	var dfs func(cur string)
	dfs = func(cur string) {
		if len(path) > len(best) {
			best = append([]string(nil), path...)
		}
		if len(path) > 40 {
			return // depth guard; circuits of interest are far smaller
		}
		for _, nb := range adj[cur] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			path = append(path, nb)
			dfs(nb)
			path = path[:len(path)-1]
			visited[nb] = false
		}
	}
	dfs(start)
	return best
}

// placeChain places the chain devices on a serpentine of rows — spacing
// consecutive devices roughly by the target length of the microstrip between
// them so that most strips are nearly length-matched by construction — and
// the stub devices next to their anchors, then snaps pads to the boundary.
func placeChain(c *netlist.Circuit, l *layout.Layout, chain []string, stubs map[string]string) error {
	spacing := c.Tech.Spacing()
	margin := 3 * spacing
	usableW := c.AreaWidth - 2*margin
	if usableW <= 0 {
		usableW = c.AreaWidth
	}

	// chainGap returns the target length of a microstrip connecting two
	// consecutive chain devices (0 when they are not directly connected).
	chainGap := func(a, b string) geom.Coord {
		var best geom.Coord
		for _, ms := range c.Microstrips {
			if (ms.From.Device == a && ms.To.Device == b) || (ms.From.Device == b && ms.To.Device == a) {
				if ms.TargetLength > best {
					best = ms.TargetLength
				}
			}
		}
		return best
	}

	// Estimate the serpentine length: device widths plus connection targets.
	var total geom.Coord
	for i, name := range chain {
		d, err := c.Device(name)
		if err != nil {
			return err
		}
		total += d.Width
		if i+1 < len(chain) {
			gap := chainGap(name, chain[i+1])
			if gap == 0 {
				gap = 4 * spacing
			}
			total += gap
		}
	}
	rows := int((total + usableW - 1) / usableW)
	if rows < 1 {
		rows = 1
	}
	if rows > len(chain) {
		rows = len(chain)
	}
	rowPitch := c.AreaHeight / geom.Coord(rows+1)

	// Walk the serpentine, advancing by device widths and connection targets.
	row := 0
	leftToRight := true
	cursor := margin
	for i, name := range chain {
		d, err := c.Device(name)
		if err != nil {
			return err
		}
		w, _ := d.Dimensions(geom.R0)
		// Wrap to the next row when the device no longer fits.
		if cursor+w > c.AreaWidth-margin && row+1 < rows {
			row++
			leftToRight = !leftToRight
			cursor = margin
		}
		orient := geom.R0
		if !leftToRight {
			orient = geom.R180
		}
		y := rowPitch * geom.Coord(row+1)
		x := cursor + w/2
		if !leftToRight {
			x = c.AreaWidth - cursor - w/2
		}
		center := geom.Pt(x, y)
		if d.IsPad() {
			// Chain pads are the RF ports: put them on the left or right
			// boundary, whichever is nearer.
			if center.X <= c.AreaWidth/2 {
				center = geom.Pt(0, center.Y)
			} else {
				center = geom.Pt(c.AreaWidth, center.Y)
			}
			orient = geom.R0
		} else {
			center = clampDeviceCenter(c, d, orient, center)
		}
		if err := l.Place(name, center, orient); err != nil {
			return err
		}
		// Re-derive the cursor from the final centre so snapping and
		// clamping do not accumulate placement drift.
		if leftToRight {
			cursor = center.X + w/2
		} else {
			cursor = c.AreaWidth - center.X + w/2
		}
		if i+1 < len(chain) {
			gap := chainGap(name, chain[i+1])
			if gap == 0 {
				gap = 4 * spacing
			}
			// Leave roughly 40% of the target length as slack for the exact
			// length-matching detours of the later phases (pins that end up
			// farther apart than the target can never be fixed, pins that
			// are closer always can, given corridor space).
			gap = gap * 3 / 5
			if gap < 2*spacing {
				gap = 2 * spacing
			}
			cursor += gap
		}
	}

	// Stub devices: above or below their anchors, alternating to spread the
	// congestion; devices sharing an anchor and side are shifted sideways so
	// they do not overlap. Stub pads snap to the closest horizontal boundary.
	flip := false
	perSlot := map[string]geom.Coord{}
	stubNames := make([]string, 0, len(stubs))
	for name := range stubs {
		stubNames = append(stubNames, name)
	}
	sort.Strings(stubNames)
	for _, name := range stubNames {
		anchorName := stubs[name]
		d, err := c.Device(name)
		if err != nil {
			return err
		}
		apd := l.Placed(anchorName)
		if apd == nil {
			return fmt.Errorf("pilp: stub %q has unplaced anchor %q", name, anchorName)
		}
		anchorHalf := apd.BodyRect().Height() / 2
		offset := anchorHalf + d.Height/2 + 3*spacing + margin
		up := !flip
		flip = !flip
		slotKey := anchorName
		if up {
			slotKey += "+"
		} else {
			slotKey += "-"
		}
		sideShift := perSlot[slotKey]
		perSlot[slotKey] += d.Width + 2*spacing
		center := geom.Pt(apd.Center.X+sideShift, apd.Center.Y+offset)
		if !up {
			center = geom.Pt(apd.Center.X+sideShift, apd.Center.Y-offset)
		}
		orient := geom.R0
		if d.IsPad() {
			// Stub pads go to the nearest top/bottom boundary above/below
			// the anchor.
			if up {
				center = geom.Pt(apd.Center.X, c.AreaHeight)
			} else {
				center = geom.Pt(apd.Center.X, 0)
			}
		} else {
			center = clampDeviceCenter(c, d, orient, center)
		}
		if err := l.Place(name, center, orient); err != nil {
			return err
		}
	}
	return nil
}

// clampDeviceCenter keeps a device body inside the layout area.
func clampDeviceCenter(c *netlist.Circuit, d *netlist.Device, o geom.Orientation, center geom.Point) geom.Point {
	w, h := d.Dimensions(o)
	x := geom.ClampCoord(center.X, w/2, c.AreaWidth-w/2)
	y := geom.ClampCoord(center.Y, h/2, c.AreaHeight-h/2)
	return geom.Pt(x, y)
}

// snapToBoundary moves a point to the closest point of the layout boundary.
func snapToBoundary(c *netlist.Circuit, p geom.Point) geom.Point {
	dLeft := p.X
	dRight := c.AreaWidth - p.X
	dBottom := p.Y
	dTop := c.AreaHeight - p.Y
	minD := geom.MinCoord(geom.MinCoord(dLeft, dRight), geom.MinCoord(dBottom, dTop))
	switch minD {
	case dLeft:
		return geom.Pt(0, p.Y)
	case dRight:
		return geom.Pt(c.AreaWidth, p.Y)
	case dBottom:
		return geom.Pt(p.X, 0)
	default:
		return geom.Pt(p.X, c.AreaHeight)
	}
}

// routeAll gives every microstrip a simple planar initial route: straight
// where the pins are aligned, otherwise an L or Z shape chosen to avoid
// crossing device bodies and previously routed strips where possible.
func routeAll(c *netlist.Circuit, l *layout.Layout) error {
	// Route shorter connections first: they have fewer detour options. Equal
	// lengths tie-break on the name so the routing order — and with it the
	// layout — never depends on declaration order or sort stability.
	strips := append([]*netlist.Microstrip(nil), c.Microstrips...)
	sort.Slice(strips, func(i, j int) bool {
		if strips[i].TargetLength != strips[j].TargetLength {
			return strips[i].TargetLength < strips[j].TargetLength
		}
		return strips[i].Name < strips[j].Name
	})
	for _, ms := range strips {
		from, err := l.PinPosition(ms.From)
		if err != nil {
			return err
		}
		to, err := l.PinPosition(ms.To)
		if err != nil {
			return err
		}
		candidates := candidateRoutes(from, to)
		best := candidates[0]
		bestScore := routeScore(c, l, ms, best)
		for _, cand := range candidates[1:] {
			if s := routeScore(c, l, ms, cand); s < bestScore {
				best, bestScore = cand, s
			}
		}
		if err := l.Route(ms.Name, best...); err != nil {
			return err
		}
	}
	return nil
}

// candidateRoutes enumerates simple rectilinear routes between two points:
// straight, the two L shapes, and two Z shapes through the midpoint.
func candidateRoutes(a, b geom.Point) [][]geom.Point {
	if a.X == b.X || a.Y == b.Y {
		return [][]geom.Point{{a, b}}
	}
	midX := (a.X + b.X) / 2
	midY := (a.Y + b.Y) / 2
	return [][]geom.Point{
		{a, geom.Pt(b.X, a.Y), b},                      // horizontal then vertical
		{a, geom.Pt(a.X, b.Y), b},                      // vertical then horizontal
		{a, geom.Pt(midX, a.Y), geom.Pt(midX, b.Y), b}, // Z through the x midpoint
		{a, geom.Pt(a.X, midY), geom.Pt(b.X, midY), b}, // Z through the y midpoint
	}
}

// routeScore counts how many planarity problems a candidate route would
// introduce: crossings with existing routes and overlaps with device bodies
// it does not terminate on. Lower is better; bends break ties.
func routeScore(c *netlist.Circuit, l *layout.Layout, ms *netlist.Microstrip, pts []geom.Point) int {
	width := c.Tech.StripWidth(ms.Width)
	pl := geom.Polyline{Points: pts, Width: width}
	segs := pl.Segments()
	score := 0
	for _, rs := range l.RoutedStrips() {
		for _, other := range rs.Path.Segments() {
			for _, seg := range segs {
				if geom.SegmentsIntersect(seg, other) {
					score += 10
				}
			}
		}
	}
	for _, pd := range l.PlacedDevices() {
		if pd.Device.Name == ms.From.Device || pd.Device.Name == ms.To.Device {
			continue
		}
		body := pd.BodyRect().Expand(c.Tech.Clearance())
		for _, seg := range segs {
			if body.Overlaps(seg.Rect()) {
				score += 10
			}
		}
	}
	return score + pl.Bends()
}
