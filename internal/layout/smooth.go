package layout

import (
	"rficlayout/internal/geom"
)

// SmoothPolyline replaces every 90° corner of an axis-parallel polyline with
// a 45° diagonal shortcut of the given cut length (Figure 3 of the paper:
// bend smoothing for discontinuity reduction). The cut length is clamped to
// half of the shorter adjacent leg so the shortcut never consumes a whole
// segment. The returned point list is no longer axis-parallel.
func SmoothPolyline(pl geom.Polyline, cut geom.Coord) []geom.Point {
	pts := pl.Simplify().Points
	if len(pts) <= 2 || cut <= 0 {
		out := make([]geom.Point, len(pts))
		copy(out, pts)
		return out
	}
	out := []geom.Point{pts[0]}
	for i := 1; i < len(pts)-1; i++ {
		prev, cur, next := pts[i-1], pts[i], pts[i+1]
		dIn, okIn := geom.DirectionBetween(prev, cur)
		dOut, okOut := geom.DirectionBetween(cur, next)
		if !okIn || !okOut || !dIn.Perpendicular(dOut) {
			out = append(out, cur)
			continue
		}
		c := cut
		if inLen := prev.ManhattanTo(cur) / 2; c > inLen {
			c = inLen
		}
		if outLen := cur.ManhattanTo(next) / 2; c > outLen {
			c = outLen
		}
		if c <= 0 {
			out = append(out, cur)
			continue
		}
		inDelta := dIn.Delta()
		outDelta := dOut.Delta()
		before := cur.Sub(geom.Pt(inDelta.X*c, inDelta.Y*c))
		after := cur.Add(geom.Pt(outDelta.X*c, outDelta.Y*c))
		out = append(out, before, after)
	}
	out = append(out, pts[len(pts)-1])
	return out
}

// SmoothedPathLength returns the Euclidean length of a smoothed point path.
func SmoothedPathLength(pts []geom.Point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].EuclideanTo(pts[i])
	}
	return total
}

// DefaultCutLength returns the bend-smoothing cut length used for export and
// RF simulation: 1.5× the strip width, the geometry for which the default
// equivalent-length compensation δ was characterized.
func DefaultCutLength(stripWidth geom.Coord) geom.Coord {
	return stripWidth + stripWidth/2
}

// SmoothedRoute returns the smoothed centreline of a routed strip using the
// default cut length for its width.
func (rs *RoutedStrip) SmoothedRoute() []geom.Point {
	return SmoothPolyline(rs.Path, DefaultCutLength(rs.Path.Width))
}
