// Package layout holds the output side of the RFIC layout problem: placed
// devices, routed microstrips described by their chain points, design-rule
// checking against the spacing / non-crossing / boundary / exact-length
// requirements of the paper, bend counting and smoothing, quality metrics and
// SVG / text export.
package layout

import (
	"fmt"
	"sort"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
)

// PlacedDevice is a device with a fixed centre position and orientation.
type PlacedDevice struct {
	Device *netlist.Device
	Center geom.Point
	Orient geom.Orientation
}

// BodyRect returns the device body rectangle at its placed position.
func (pd *PlacedDevice) BodyRect() geom.Rect {
	return pd.Device.BodyRect(pd.Center, pd.Orient)
}

// PinPosition returns the absolute position of the named pin.
func (pd *PlacedDevice) PinPosition(pin string) (geom.Point, error) {
	off, err := pd.Device.PinOffset(pin, pd.Orient)
	if err != nil {
		return geom.Point{}, err
	}
	return pd.Center.Add(off), nil
}

// RoutedStrip is a microstrip with its chain-point path. The path includes
// both end points (which must coincide with the connected pins) and every
// intermediate chain point.
type RoutedStrip struct {
	Strip *netlist.Microstrip
	Path  geom.Polyline
}

// GeometricLength returns the Manhattan length of the routed centreline
// (l_g,i of Eq. 7).
func (rs *RoutedStrip) GeometricLength() geom.Coord { return rs.Path.Length() }

// Bends returns the number of real 90° bends along the route (n_b,i of
// Eq. 11).
func (rs *RoutedStrip) Bends() int { return rs.Path.Bends() }

// EquivalentLength returns the electrical length after bend smoothing:
// geometric length plus the per-bend compensation δ (Eq. 12).
func (rs *RoutedStrip) EquivalentLength(delta geom.Coord) geom.Coord {
	return rs.GeometricLength() + geom.Coord(rs.Bends())*delta
}

// LengthError returns the signed difference between the equivalent length and
// the target length of the microstrip.
func (rs *RoutedStrip) LengthError(delta geom.Coord) geom.Coord {
	return rs.EquivalentLength(delta) - rs.Strip.TargetLength
}

// Layout is a (possibly partial) solution of the layout problem for one
// circuit.
type Layout struct {
	Circuit *netlist.Circuit
	devices map[string]*PlacedDevice
	strips  map[string]*RoutedStrip
}

// New creates an empty layout for the circuit.
func New(c *netlist.Circuit) *Layout {
	return &Layout{
		Circuit: c,
		devices: map[string]*PlacedDevice{},
		strips:  map[string]*RoutedStrip{},
	}
}

// Clone returns a deep copy of the layout (device placements and strip paths
// are copied; the underlying circuit is shared).
func (l *Layout) Clone() *Layout {
	out := New(l.Circuit)
	for name, pd := range l.devices {
		cp := *pd
		out.devices[name] = &cp
	}
	for name, rs := range l.strips {
		pts := make([]geom.Point, len(rs.Path.Points))
		copy(pts, rs.Path.Points)
		out.strips[name] = &RoutedStrip{Strip: rs.Strip, Path: geom.Polyline{Points: pts, Width: rs.Path.Width}}
	}
	return out
}

// Place positions a device centre with the given orientation.
func (l *Layout) Place(deviceName string, center geom.Point, orient geom.Orientation) error {
	d, err := l.Circuit.Device(deviceName)
	if err != nil {
		return err
	}
	l.devices[deviceName] = &PlacedDevice{Device: d, Center: center, Orient: orient.Normalize()}
	return nil
}

// Route sets the chain-point path of a microstrip. The path legs must be
// axis-parallel; the strip width defaults to the technology width when the
// microstrip does not carry its own.
func (l *Layout) Route(stripName string, points ...geom.Point) error {
	ms, err := l.Circuit.Microstrip(stripName)
	if err != nil {
		return err
	}
	if len(points) < 2 {
		return fmt.Errorf("layout: route of %q needs at least two points", stripName)
	}
	width := l.Circuit.Tech.StripWidth(ms.Width)
	pl, err := geom.NewPolyline(width, points...)
	if err != nil {
		return fmt.Errorf("layout: route of %q: %w", stripName, err)
	}
	l.strips[stripName] = &RoutedStrip{Strip: ms, Path: pl}
	return nil
}

// Placed returns the placement of the named device, or nil when it has not
// been placed yet.
func (l *Layout) Placed(deviceName string) *PlacedDevice { return l.devices[deviceName] }

// Routed returns the route of the named microstrip, or nil when it has not
// been routed yet.
func (l *Layout) Routed(stripName string) *RoutedStrip { return l.strips[stripName] }

// PlacedDevices returns all placements sorted by device name.
func (l *Layout) PlacedDevices() []*PlacedDevice {
	out := make([]*PlacedDevice, 0, len(l.devices))
	for _, pd := range l.devices {
		out = append(out, pd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device.Name < out[j].Device.Name })
	return out
}

// RoutedStrips returns all routed microstrips sorted by name.
func (l *Layout) RoutedStrips() []*RoutedStrip {
	out := make([]*RoutedStrip, 0, len(l.strips))
	for _, rs := range l.strips {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Strip.Name < out[j].Strip.Name })
	return out
}

// Complete reports whether every device is placed and every microstrip
// routed.
func (l *Layout) Complete() bool {
	return len(l.devices) == len(l.Circuit.Devices) && len(l.strips) == len(l.Circuit.Microstrips)
}

// PinPosition resolves the absolute position of a terminal, failing when the
// device is not placed.
func (l *Layout) PinPosition(t netlist.Terminal) (geom.Point, error) {
	pd := l.Placed(t.Device)
	if pd == nil {
		return geom.Point{}, fmt.Errorf("layout: device %q is not placed", t.Device)
	}
	return pd.PinPosition(t.Pin)
}

// UsedBounds returns the bounding box of all placed devices and routed
// strips. It returns the empty rectangle at the origin when nothing is placed.
func (l *Layout) UsedBounds() geom.Rect {
	first := true
	var out geom.Rect
	add := func(r geom.Rect) {
		if first {
			out = r
			first = false
			return
		}
		out = out.Union(r)
	}
	for _, pd := range l.PlacedDevices() {
		add(pd.BodyRect())
	}
	for _, rs := range l.RoutedStrips() {
		if len(rs.Path.Points) > 0 {
			add(rs.Path.Bounds())
		}
	}
	return out
}
