package layout

import (
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
)

// ViolationKind classifies design-rule violations.
type ViolationKind int

// Violation kinds.
const (
	// Unplaced: a device has no placement.
	Unplaced ViolationKind = iota
	// Unrouted: a microstrip has no route.
	Unrouted
	// OutOfArea: a device body or microstrip body leaves the layout area.
	OutOfArea
	// PadNotOnBoundary: a pad centre is not on the layout area boundary
	// (Eq. 15 requires pads along the boundary).
	PadNotOnBoundary
	// SpacingViolation: two shapes are closer than the 2·t spacing rule.
	SpacingViolation
	// CrossingViolation: two microstrip centrelines intersect, breaking the
	// planar routing requirement.
	CrossingViolation
	// LengthMismatch: a routed microstrip's equivalent length differs from
	// its target length by more than the tolerance (Eq. 13).
	LengthMismatch
	// PinMismatch: a route endpoint does not coincide with the pin it should
	// connect to (Eq. 14).
	PinMismatch
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case Unplaced:
		return "unplaced-device"
	case Unrouted:
		return "unrouted-strip"
	case OutOfArea:
		return "out-of-area"
	case PadNotOnBoundary:
		return "pad-not-on-boundary"
	case SpacingViolation:
		return "spacing"
	case CrossingViolation:
		return "crossing"
	case LengthMismatch:
		return "length-mismatch"
	case PinMismatch:
		return "pin-mismatch"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is one design-rule violation found by Check.
type Violation struct {
	Kind        ViolationKind
	Subject     string // primary object (device or strip name)
	Other       string // second object for pairwise violations, "" otherwise
	Description string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Other != "" {
		return fmt.Sprintf("[%s] %s ↔ %s: %s", v.Kind, v.Subject, v.Other, v.Description)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Kind, v.Subject, v.Description)
}

// CheckOptions tunes the design-rule check.
type CheckOptions struct {
	// LengthTolerance is the allowed |equivalent − target| mismatch. Zero
	// means 10 nm (0.01 µm), which absorbs integer rounding of the solver
	// output while still demanding exact lengths at the precision the paper
	// works with.
	LengthTolerance geom.Coord
	// PinTolerance is the allowed distance between a route endpoint and its
	// pin. Zero means exact coincidence.
	PinTolerance geom.Coord
	// SkipLengthCheck disables the exact-length rule; phase-1 intermediate
	// layouts use it because their lengths are only approximately matched.
	SkipLengthCheck bool
}

func (o CheckOptions) lengthTol() geom.Coord {
	if o.LengthTolerance > 0 {
		return o.LengthTolerance
	}
	return 10
}

// shape is an internal helper: one rectangle participating in spacing checks.
type shape struct {
	name     string // owning object name
	kind     string // "device" or "strip"
	rect     geom.Rect
	stripIdx int // segment index within the strip, -1 for devices
	// terms lists the devices the owning strip terminates on, nil for
	// devices.
	terms []string
	// endTerms lists the terminals (device.pin) this segment is directly
	// adjacent to: the From terminal for the first segment, the To terminal
	// for the last one. Two strips meeting at the same pin (a T-junction)
	// are exempt from spacing/crossing checks between those end segments.
	endTerms []netlist.Terminal
}

// Check runs the full design-rule check and returns all violations found.
// A complete, correct layout returns an empty slice.
func (l *Layout) Check(opts CheckOptions) []Violation {
	var out []Violation
	area := l.Circuit.Area()
	clearance := l.Circuit.Tech.Clearance()
	delta := l.Circuit.Tech.BendCompensation

	// Completeness.
	for _, d := range l.Circuit.Devices {
		if l.Placed(d.Name) == nil {
			out = append(out, Violation{Kind: Unplaced, Subject: d.Name, Description: "device has no placement"})
		}
	}
	for _, ms := range l.Circuit.Microstrips {
		if l.Routed(ms.Name) == nil {
			out = append(out, Violation{Kind: Unrouted, Subject: ms.Name, Description: "microstrip has no route"})
		}
	}

	// Device-level rules: inside area, pads on the boundary. Pads are exempt
	// from the containment rule because Eq. 15 aligns their centres with the
	// boundary, so half of the pad body intentionally overhangs the area.
	for _, pd := range l.PlacedDevices() {
		body := pd.BodyRect()
		if !pd.Device.IsPad() && !area.ContainsRect(body) {
			out = append(out, Violation{
				Kind: OutOfArea, Subject: pd.Device.Name,
				Description: fmt.Sprintf("body %v leaves area %v", body, area),
			})
		}
		if pd.Device.IsPad() {
			c := pd.Center
			onBoundary := c.X == 0 || c.X == l.Circuit.AreaWidth || c.Y == 0 || c.Y == l.Circuit.AreaHeight
			if !onBoundary {
				out = append(out, Violation{
					Kind: PadNotOnBoundary, Subject: pd.Device.Name,
					Description: fmt.Sprintf("pad centre %v is interior to the layout area", c),
				})
			}
		}
	}

	// Strip-level rules: inside area, endpoints on pins, exact length.
	for _, rs := range l.RoutedStrips() {
		if len(rs.Path.Points) < 2 {
			continue
		}
		// The chain points (centreline) must stay within the layout area; the
		// strip body may overhang by up to half its width where it meets a
		// boundary pad, matching the coordinate bounds of the ILP model.
		for _, p := range rs.Path.Points {
			if !area.ContainsPoint(p) {
				out = append(out, Violation{
					Kind: OutOfArea, Subject: rs.Strip.Name,
					Description: fmt.Sprintf("chain point %v leaves area %v", p, area),
				})
				break
			}
		}
		out = append(out, l.checkEndpoints(rs, opts)...)
		if !opts.SkipLengthCheck {
			if err := geom.AbsCoord(rs.LengthError(delta)); err > opts.lengthTol() {
				out = append(out, Violation{
					Kind: LengthMismatch, Subject: rs.Strip.Name,
					Description: fmt.Sprintf("equivalent length %.3fµm differs from target %.3fµm by %.3fµm (%d bends)",
						geom.Microns(rs.EquivalentLength(delta)), geom.Microns(rs.Strip.TargetLength),
						geom.Microns(err), rs.Bends()),
				})
			}
		}
	}

	out = append(out, l.checkSpacing(clearance)...)
	out = append(out, l.checkCrossings()...)
	return out
}

// checkEndpoints verifies Eq. 14: each end of a routed strip coincides with
// the pin of the placed device it connects to.
func (l *Layout) checkEndpoints(rs *RoutedStrip, opts CheckOptions) []Violation {
	var out []Violation
	ends := []struct {
		term  netlist.Terminal
		point geom.Point
		label string
	}{
		{rs.Strip.From, rs.Path.Start(), "start"},
		{rs.Strip.To, rs.Path.End(), "end"},
	}
	for _, e := range ends {
		pin, err := l.PinPosition(e.term)
		if err != nil {
			// The unplaced-device violation is already reported.
			continue
		}
		if dist := pin.ManhattanTo(e.point); dist > opts.PinTolerance {
			out = append(out, Violation{
				Kind: PinMismatch, Subject: rs.Strip.Name, Other: e.term.String(),
				Description: fmt.Sprintf("%s point %v is %.3fµm away from pin %v",
					e.label, e.point, geom.Microns(dist), pin),
			})
		}
	}
	return out
}

// collectShapes builds the list of rectangles participating in the spacing
// check.
func (l *Layout) collectShapes() []shape {
	var shapes []shape
	for _, pd := range l.PlacedDevices() {
		shapes = append(shapes, shape{
			name: pd.Device.Name, kind: "device", rect: pd.BodyRect(), stripIdx: -1,
		})
	}
	for _, rs := range l.RoutedStrips() {
		terms := []string{rs.Strip.From.Device, rs.Strip.To.Device}
		segs := rs.Path.Segments()
		for i, seg := range segs {
			s := shape{
				name: rs.Strip.Name, kind: "strip", rect: seg.Rect(), stripIdx: i, terms: terms,
			}
			if i == 0 {
				s.endTerms = append(s.endTerms, rs.Strip.From)
			}
			if i == len(segs)-1 {
				s.endTerms = append(s.endTerms, rs.Strip.To)
			}
			shapes = append(shapes, s)
		}
	}
	return shapes
}

// shareJunction reports whether two end segments of different strips meet at
// the same terminal pin (a T-junction), which exempts them from the spacing
// and crossing rules between each other.
func shareJunction(a, b shape) bool {
	for _, ta := range a.endTerms {
		for _, tb := range b.endTerms {
			if ta == tb {
				return true
			}
		}
	}
	return false
}

// spacingExempt reports whether the pair of shapes is exempt from the spacing
// rule: segments of the same strip that are adjacent (they share a chain
// point), and a strip's segments against the devices it terminates on (the
// strip must reach the pin inside the device clearance).
func spacingExempt(a, b shape) bool {
	if a.kind == "strip" && b.kind == "strip" && a.name == b.name {
		di := a.stripIdx - b.stripIdx
		if di < 0 {
			di = -di
		}
		return di <= 1
	}
	if a.kind == "strip" && b.kind == "strip" && shareJunction(a, b) {
		return true
	}
	if a.kind == "device" && b.kind == "strip" {
		a, b = b, a
	}
	if a.kind == "strip" && b.kind == "device" {
		for _, t := range a.terms {
			if t == b.name {
				return true
			}
		}
	}
	return false
}

// checkSpacing enforces the 2·t spacing rule by expanding every shape by the
// clearance and requiring expanded boxes not to overlap (Section 2.1).
func (l *Layout) checkSpacing(clearance geom.Coord) []Violation {
	shapes := l.collectShapes()
	var out []Violation
	reported := map[[2]string]bool{}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			a, b := shapes[i], shapes[j]
			if a.name == b.name && a.kind == b.kind && a.kind == "device" {
				continue
			}
			if spacingExempt(a, b) {
				continue
			}
			ra := a.rect.Expand(clearance)
			rb := b.rect.Expand(clearance)
			if !ra.Overlaps(rb) {
				continue
			}
			key := [2]string{a.name, b.name}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if reported[key] {
				continue
			}
			reported[key] = true
			gap := a.rect.Distance(b.rect)
			out = append(out, Violation{
				Kind: SpacingViolation, Subject: a.name, Other: b.name,
				Description: fmt.Sprintf("gap %.3fµm < required %.3fµm", geom.Microns(gap), geom.Microns(2*clearance)),
			})
		}
	}
	return out
}

// checkCrossings enforces planarity: centrelines of different microstrips
// must not intersect. End segments of two strips that meet at the same pin
// (a T-junction) are allowed to touch there.
func (l *Layout) checkCrossings() []Violation {
	var out []Violation
	strips := l.RoutedStrips()
	for i := 0; i < len(strips); i++ {
		segsI := strips[i].Path.Segments()
		for j := i + 1; j < len(strips); j++ {
			segsJ := strips[j].Path.Segments()
			crossed := false
			for si, segI := range segsI {
				for sj, segJ := range segsJ {
					if !geom.SegmentsIntersect(segI, segJ) {
						continue
					}
					if junctionSegments(strips[i], si, len(segsI), strips[j], sj, len(segsJ)) {
						continue
					}
					crossed = true
					break
				}
				if crossed {
					break
				}
			}
			if crossed {
				out = append(out, Violation{
					Kind: CrossingViolation, Subject: strips[i].Strip.Name, Other: strips[j].Strip.Name,
					Description: "microstrip centrelines intersect; planar routing is violated",
				})
			}
		}
	}
	return out
}

// junctionSegments reports whether segment si of strip a and segment sj of
// strip b are both end segments meeting at a shared terminal pin.
func junctionSegments(a *RoutedStrip, si, na int, b *RoutedStrip, sj, nb int) bool {
	var aTerms, bTerms []netlist.Terminal
	if si == 0 {
		aTerms = append(aTerms, a.Strip.From)
	}
	if si == na-1 {
		aTerms = append(aTerms, a.Strip.To)
	}
	if sj == 0 {
		bTerms = append(bTerms, b.Strip.From)
	}
	if sj == nb-1 {
		bTerms = append(bTerms, b.Strip.To)
	}
	for _, ta := range aTerms {
		for _, tb := range bTerms {
			if ta == tb {
				return true
			}
		}
	}
	return false
}

// CountViolations returns the number of violations of the given kind.
func CountViolations(vs []Violation, kind ViolationKind) int {
	n := 0
	for _, v := range vs {
		if v.Kind == kind {
			n++
		}
	}
	return n
}
