package layout

import (
	"fmt"

	"rficlayout/internal/geom"
)

// Metrics summarizes the layout-quality figures the paper reports in Table 1
// (maximum and total bend numbers) plus the length-matching and area figures
// the evaluation discusses.
type Metrics struct {
	// MaxBends is the largest bend count on any single microstrip.
	MaxBends int
	// TotalBends is the sum of bend counts over all microstrips.
	TotalBends int
	// MaxLengthError is the largest |equivalent − target| length over all
	// routed microstrips, in nanometres.
	MaxLengthError geom.Coord
	// TotalLengthError is the sum of |equivalent − target| over all routed
	// microstrips, in nanometres.
	TotalLengthError geom.Coord
	// RoutedStrips and PlacedDevices count how much of the circuit is laid
	// out.
	RoutedStrips  int
	PlacedDevices int
	// AreaWidth/AreaHeight echo the layout area of the circuit.
	AreaWidth  geom.Coord
	AreaHeight geom.Coord
	// UsedBounds is the bounding box actually occupied.
	UsedBounds geom.Rect
}

// Metrics computes the quality metrics of the layout.
func (l *Layout) Metrics() Metrics {
	m := Metrics{
		AreaWidth:     l.Circuit.AreaWidth,
		AreaHeight:    l.Circuit.AreaHeight,
		PlacedDevices: len(l.devices),
		RoutedStrips:  len(l.strips),
		UsedBounds:    l.UsedBounds(),
	}
	delta := l.Circuit.Tech.BendCompensation
	for _, rs := range l.RoutedStrips() {
		b := rs.Bends()
		if b > m.MaxBends {
			m.MaxBends = b
		}
		m.TotalBends += b
		e := geom.AbsCoord(rs.LengthError(delta))
		if e > m.MaxLengthError {
			m.MaxLengthError = e
		}
		m.TotalLengthError += e
	}
	return m
}

// AreaMicrons returns the layout area in µm².
func (m Metrics) AreaMicrons() float64 {
	return geom.Microns(m.AreaWidth) * geom.Microns(m.AreaHeight)
}

// String implements fmt.Stringer with the Table 1 style figures.
func (m Metrics) String() string {
	return fmt.Sprintf("area %.0fµm×%.0fµm, max bends %d, total bends %d, max |Δl| %.2fµm, total |Δl| %.2fµm, %d strips / %d devices",
		geom.Microns(m.AreaWidth), geom.Microns(m.AreaHeight),
		m.MaxBends, m.TotalBends,
		geom.Microns(m.MaxLengthError), geom.Microns(m.TotalLengthError),
		m.RoutedStrips, m.PlacedDevices)
}
