package layout

import (
	"strings"
	"testing"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// testCircuit builds a pad → transistor → pad chain in a 400×300 µm area.
func testCircuit() *netlist.Circuit {
	c := netlist.NewCircuit("chain", tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	m1 := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	m1.AddPin("gate", geom.PtMicrons(-20, 0), 0)
	m1.AddPin("drain", geom.PtMicrons(20, 0), 0)
	c.AddDevice(m1)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TLIN", "PIN", "p", "M1", "gate", geom.FromMicrons(150))
	c.Connect("TLOUT", "M1", "drain", "POUT", "p", geom.FromMicrons(196))
	return c
}

// completeLayout builds a correct layout for testCircuit:
//   - PIN pad at the left boundary (0, 150), POUT at the right boundary,
//   - M1 centred so its pins line up with straight or L-shaped routes whose
//     equivalent lengths match the targets exactly.
func completeLayout(t *testing.T) *Layout {
	t.Helper()
	c := testCircuit()
	l := New(c)
	// PIN pad on the left boundary at y=150.
	if err := l.Place("PIN", geom.PtMicrons(0, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	// M1 centre: gate pin at (-20,0) offset → pin lands at x=150+(-20)=130.
	// TLIN: from PIN.p (0,150) straight to gate (150-20=130? we want length 150).
	// Place M1 centre at (170, 150): gate at (150, 150) → straight length 150. ✓
	if err := l.Place("M1", geom.PtMicrons(170, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	// POUT on the right boundary (400, 250).
	if err := l.Place("POUT", geom.PtMicrons(400, 250), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Route("TLIN", geom.PtMicrons(0, 150), geom.PtMicrons(150, 150)); err != nil {
		t.Fatal(err)
	}
	// TLOUT: drain at (190, 150) to POUT at (400, 250): L-shape with one bend.
	// Geometric length = (400-190) + (250-150) = 210 + 100 = 310... too long.
	// Target is 196 µm; choose a different drain-side path: the target was
	// picked to match this geometry: geometric 310 with bends... we instead
	// set target accordingly in testCircuit: 196? Adjust: use a two-bend path
	// is unnecessary — recompute: with δ = −4 µm and one bend, equivalent =
	// geometric − 4. To hit 196 the geometric length must be 200. Route the
	// strip off the direct path: not possible shorter than 310. So instead
	// the test uses target 306 for TLOUT.
	if err := l.Route("TLOUT", geom.PtMicrons(190, 150), geom.PtMicrons(400, 150), geom.PtMicrons(400, 250)); err != nil {
		t.Fatal(err)
	}
	return l
}

// fixTLOUTTarget adjusts the TLOUT target so the completeLayout route is
// exact: geometric 310 µm with 1 bend and δ=−4 µm → equivalent 306 µm.
func fixTLOUTTarget(c *netlist.Circuit) {
	ms, _ := c.Microstrip("TLOUT")
	ms.TargetLength = geom.FromMicrons(306)
}

func TestPlaceAndRouteAccessors(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	if !l.Complete() {
		t.Error("layout should be complete")
	}
	if l.Placed("M1") == nil || l.Routed("TLIN") == nil {
		t.Error("lookups failed")
	}
	if l.Placed("nope") != nil || l.Routed("nope") != nil {
		t.Error("phantom objects found")
	}
	if err := l.Place("missing", geom.Pt(0, 0), geom.R0); err == nil {
		t.Error("placing unknown device accepted")
	}
	if err := l.Route("missing", geom.Pt(0, 0), geom.Pt(1, 0)); err == nil {
		t.Error("routing unknown strip accepted")
	}
	if err := l.Route("TLIN", geom.Pt(0, 0)); err == nil {
		t.Error("single-point route accepted")
	}
	if err := l.Route("TLIN", geom.Pt(0, 0), geom.Pt(5, 5)); err == nil {
		t.Error("diagonal route accepted")
	}
	devs := l.PlacedDevices()
	if len(devs) != 3 || devs[0].Device.Name != "M1" {
		t.Errorf("PlacedDevices = %v", devs)
	}
	strips := l.RoutedStrips()
	if len(strips) != 2 || strips[0].Strip.Name != "TLIN" {
		t.Errorf("RoutedStrips order wrong")
	}
}

func TestPinPositionAndRotation(t *testing.T) {
	l := completeLayout(t)
	pos, err := l.PinPosition(netlist.Terminal{Device: "M1", Pin: "gate"})
	if err != nil || !pos.Eq(geom.PtMicrons(150, 150)) {
		t.Errorf("gate position = %v, %v", pos, err)
	}
	// Rotate M1 by 180°: gate moves to the other side.
	if err := l.Place("M1", geom.PtMicrons(170, 150), geom.R180); err != nil {
		t.Fatal(err)
	}
	pos, _ = l.PinPosition(netlist.Terminal{Device: "M1", Pin: "gate"})
	if !pos.Eq(geom.PtMicrons(190, 150)) {
		t.Errorf("rotated gate position = %v", pos)
	}
	if _, err := l.PinPosition(netlist.Terminal{Device: "POUT", Pin: "zz"}); err == nil {
		t.Error("missing pin accepted")
	}
	l2 := New(l.Circuit)
	if _, err := l2.PinPosition(netlist.Terminal{Device: "M1", Pin: "gate"}); err == nil {
		t.Error("pin position of unplaced device accepted")
	}
}

func TestStripLengthAndBends(t *testing.T) {
	l := completeLayout(t)
	delta := l.Circuit.Tech.BendCompensation
	in := l.Routed("TLIN")
	if in.GeometricLength() != geom.FromMicrons(150) || in.Bends() != 0 {
		t.Errorf("TLIN geometric %d bends %d", in.GeometricLength(), in.Bends())
	}
	if in.EquivalentLength(delta) != geom.FromMicrons(150) {
		t.Errorf("TLIN equivalent %d", in.EquivalentLength(delta))
	}
	if in.LengthError(delta) != 0 {
		t.Errorf("TLIN length error %d", in.LengthError(delta))
	}
	out := l.Routed("TLOUT")
	if out.GeometricLength() != geom.FromMicrons(310) || out.Bends() != 1 {
		t.Errorf("TLOUT geometric %d bends %d", out.GeometricLength(), out.Bends())
	}
	if out.EquivalentLength(delta) != geom.FromMicrons(306) {
		t.Errorf("TLOUT equivalent %d", out.EquivalentLength(delta))
	}
}

func TestMetrics(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	m := l.Metrics()
	if m.MaxBends != 1 || m.TotalBends != 1 {
		t.Errorf("bends = %d/%d", m.MaxBends, m.TotalBends)
	}
	if m.MaxLengthError != 0 || m.TotalLengthError != 0 {
		t.Errorf("length error = %d/%d", m.MaxLengthError, m.TotalLengthError)
	}
	if m.PlacedDevices != 3 || m.RoutedStrips != 2 {
		t.Errorf("counts = %d devices, %d strips", m.PlacedDevices, m.RoutedStrips)
	}
	if m.AreaMicrons() != 400*300 {
		t.Errorf("area = %g", m.AreaMicrons())
	}
	if m.String() == "" {
		t.Error("empty metrics string")
	}
	if m.UsedBounds.Empty() {
		t.Error("used bounds empty for a complete layout")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	l := completeLayout(t)
	cp := l.Clone()
	if err := cp.Place("M1", geom.PtMicrons(50, 50), geom.R90); err != nil {
		t.Fatal(err)
	}
	if err := cp.Route("TLIN", geom.PtMicrons(0, 150), geom.PtMicrons(10, 150)); err != nil {
		t.Fatal(err)
	}
	if l.Placed("M1").Center.Eq(cp.Placed("M1").Center) {
		t.Error("clone shares device placement")
	}
	if l.Routed("TLIN").Path.End().Eq(cp.Routed("TLIN").Path.End()) {
		t.Error("clone shares routes")
	}
}

func TestUsedBoundsEmptyLayout(t *testing.T) {
	l := New(testCircuit())
	b := l.UsedBounds()
	if !b.Empty() {
		t.Errorf("bounds of empty layout = %v", b)
	}
	if l.Complete() {
		t.Error("empty layout reported complete")
	}
}

func TestCheckCleanLayout(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	violations := l.Check(CheckOptions{})
	if len(violations) != 0 {
		for _, v := range violations {
			t.Errorf("unexpected violation: %v", v)
		}
	}
}

func TestCheckFindsMissingPieces(t *testing.T) {
	c := testCircuit()
	l := New(c)
	vs := l.Check(CheckOptions{})
	if CountViolations(vs, Unplaced) != 3 {
		t.Errorf("unplaced = %d, want 3", CountViolations(vs, Unplaced))
	}
	if CountViolations(vs, Unrouted) != 2 {
		t.Errorf("unrouted = %d, want 2", CountViolations(vs, Unrouted))
	}
}

func TestCheckPadBoundaryRule(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	// Move PIN into the interior; keep the route attached so only the pad
	// rule and the pin-mismatch rule fire.
	if err := l.Place("PIN", geom.PtMicrons(50, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	vs := l.Check(CheckOptions{})
	if CountViolations(vs, PadNotOnBoundary) != 1 {
		t.Errorf("expected a pad-boundary violation, got %v", vs)
	}
}

func TestCheckPinMismatch(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	// Shift the TLIN route so its end no longer touches the gate pin.
	if err := l.Route("TLIN", geom.PtMicrons(0, 150), geom.PtMicrons(140, 150)); err != nil {
		t.Fatal(err)
	}
	vs := l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, PinMismatch) == 0 {
		t.Errorf("expected a pin mismatch, got %v", vs)
	}
	// With a generous tolerance the mismatch disappears.
	vs = l.Check(CheckOptions{SkipLengthCheck: true, PinTolerance: geom.FromMicrons(20)})
	if CountViolations(vs, PinMismatch) != 0 {
		t.Errorf("tolerance not honoured: %v", vs)
	}
}

func TestCheckLengthMismatch(t *testing.T) {
	l := completeLayout(t)
	// TLOUT target left at 196 µm while the route realizes 306 µm.
	vs := l.Check(CheckOptions{})
	if CountViolations(vs, LengthMismatch) != 1 {
		t.Errorf("expected exactly one length mismatch, got %v", vs)
	}
	vs = l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, LengthMismatch) != 0 {
		t.Errorf("SkipLengthCheck not honoured")
	}
}

func TestCheckOutOfArea(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	if err := l.Place("M1", geom.PtMicrons(395, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	vs := l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, OutOfArea) == 0 {
		t.Errorf("expected out-of-area violation, got %v", vs)
	}
}

func TestCheckSpacingViolation(t *testing.T) {
	c := testCircuit()
	l := New(c)
	// Two pads 5 µm apart violate the 10 µm (2t) spacing rule.
	if err := l.Place("PIN", geom.PtMicrons(0, 100), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place("POUT", geom.PtMicrons(0, 165), geom.R0); err != nil {
		t.Fatal(err)
	}
	vs := l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, SpacingViolation) != 1 {
		t.Errorf("expected one spacing violation, got %v", vs)
	}
	// At exactly 2t the rule is satisfied: pad edges at y=130 and y=160+? —
	// move POUT so the gap is exactly 10 µm (pads are 60 µm tall).
	if err := l.Place("POUT", geom.PtMicrons(0, 170), geom.R0); err != nil {
		t.Fatal(err)
	}
	vs = l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, SpacingViolation) != 0 {
		t.Errorf("gap of exactly 2t should satisfy the rule: %v", vs)
	}
}

func TestCheckCrossingViolation(t *testing.T) {
	c := testCircuit()
	// Add one more strip so two routes can cross far from any exemption.
	extra := netlist.NewDevice("M2", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	extra.AddPin("gate", geom.PtMicrons(-20, 0), 0)
	extra.AddPin("drain", geom.PtMicrons(20, 0), 0)
	c.AddDevice(extra)
	c.Connect("TLX", "M2", "gate", "M2", "drain", geom.FromMicrons(500))

	l := New(c)
	if err := l.Place("PIN", geom.PtMicrons(0, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place("M1", geom.PtMicrons(170, 150), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place("M2", geom.PtMicrons(100, 30), geom.R0); err != nil {
		t.Fatal(err)
	}
	// TLIN runs horizontally at y=150 from x=0 to x=150.
	if err := l.Route("TLIN", geom.PtMicrons(0, 150), geom.PtMicrons(150, 150)); err != nil {
		t.Fatal(err)
	}
	// TLX runs vertically through x=75 crossing TLIN.
	if err := l.Route("TLX", geom.PtMicrons(80, 30), geom.PtMicrons(75, 30), geom.PtMicrons(75, 250), geom.PtMicrons(120, 250), geom.PtMicrons(120, 30)); err != nil {
		t.Fatal(err)
	}
	vs := l.Check(CheckOptions{SkipLengthCheck: true})
	if CountViolations(vs, CrossingViolation) == 0 {
		t.Errorf("expected crossing violation, got %v", vs)
	}
}

func TestViolationStrings(t *testing.T) {
	kinds := []ViolationKind{Unplaced, Unrouted, OutOfArea, PadNotOnBoundary, SpacingViolation, CrossingViolation, LengthMismatch, PinMismatch, ViolationKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	v := Violation{Kind: SpacingViolation, Subject: "a", Other: "b", Description: "too close"}
	if !strings.Contains(v.String(), "a") || !strings.Contains(v.String(), "b") {
		t.Errorf("violation string %q", v.String())
	}
	v.Other = ""
	if !strings.Contains(v.String(), "a") {
		t.Errorf("violation string %q", v.String())
	}
}
