package layout

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
)

// The layout file format is a line-oriented companion to the circuit format:
//
//	layout <circuit-name>
//	place M1 120.5 80 R90
//	route TL1 60 0 60 45.5 130 45.5
//
// Coordinates are micrometres. Routes list chain points in order.

// Format renders a layout in the text format accepted by ParseLayout.
func Format(l *Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout %s\n", l.Circuit.Name)
	for _, pd := range l.PlacedDevices() {
		fmt.Fprintf(&b, "place %s %s %s %s\n",
			pd.Device.Name, um(pd.Center.X), um(pd.Center.Y), pd.Orient)
	}
	for _, rs := range l.RoutedStrips() {
		fmt.Fprintf(&b, "route %s", rs.Strip.Name)
		for _, p := range rs.Path.Points {
			fmt.Fprintf(&b, " %s %s", um(p.X), um(p.Y))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFile writes the layout to a file in the text format.
func WriteFile(path string, l *Layout) error {
	return os.WriteFile(path, []byte(Format(l)), 0o644)
}

// ParseLayout reads a layout file and binds it to the given circuit.
func ParseLayout(r io.Reader, c *netlist.Circuit) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	l := New(c)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "layout":
			if len(fields) != 2 {
				return nil, fmt.Errorf("layout: line %d: 'layout' needs the circuit name", lineNo)
			}
			if fields[1] != c.Name {
				return nil, fmt.Errorf("layout: line %d: layout is for circuit %q, not %q", lineNo, fields[1], c.Name)
			}
			sawHeader = true
		case "place":
			if len(fields) != 5 {
				return nil, fmt.Errorf("layout: line %d: 'place' needs device, x, y, orientation", lineNo)
			}
			x, err1 := parseUm(fields[2])
			y, err2 := parseUm(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("layout: line %d: invalid placement coordinates", lineNo)
			}
			o, err := parseOrientation(fields[4])
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: %v", lineNo, err)
			}
			if err := l.Place(fields[1], geom.Pt(x, y), o); err != nil {
				return nil, fmt.Errorf("layout: line %d: %v", lineNo, err)
			}
		case "route":
			if len(fields) < 6 || len(fields)%2 != 0 {
				return nil, fmt.Errorf("layout: line %d: 'route' needs a strip name and at least two x y pairs", lineNo)
			}
			var pts []geom.Point
			for i := 2; i < len(fields); i += 2 {
				x, err1 := parseUm(fields[i])
				y, err2 := parseUm(fields[i+1])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("layout: line %d: invalid route coordinate", lineNo)
				}
				pts = append(pts, geom.Pt(x, y))
			}
			if err := l.Route(fields[1], pts...); err != nil {
				return nil, fmt.Errorf("layout: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("layout: line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: reading layout: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("layout: missing 'layout' header")
	}
	return l, nil
}

// ParseLayoutFile reads a layout file from disk.
func ParseLayoutFile(path string, c *netlist.Circuit) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseLayout(f, c)
}

// ParseLayoutString reads a layout from an in-memory string.
func ParseLayoutString(s string, c *netlist.Circuit) (*Layout, error) {
	return ParseLayout(strings.NewReader(s), c)
}

func parseOrientation(s string) (geom.Orientation, error) {
	switch strings.ToUpper(s) {
	case "R0":
		return geom.R0, nil
	case "R90":
		return geom.R90, nil
	case "R180":
		return geom.R180, nil
	case "R270":
		return geom.R270, nil
	default:
		return geom.R0, fmt.Errorf("layout: unknown orientation %q", s)
	}
}

func parseUm(s string) (geom.Coord, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return geom.FromMicrons(v), nil
}

func um(c geom.Coord) string {
	return strconv.FormatFloat(geom.Microns(c), 'f', -1, 64)
}
