package layout

import (
	"strings"
	"testing"

	"rficlayout/internal/geom"
)

func TestLayoutFormatParseRoundTrip(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	text := Format(l)
	parsed, err := ParseLayoutString(text, l.Circuit)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	if !parsed.Complete() {
		t.Fatal("round-tripped layout incomplete")
	}
	for _, pd := range l.PlacedDevices() {
		got := parsed.Placed(pd.Device.Name)
		if got == nil || !got.Center.Eq(pd.Center) || got.Orient != pd.Orient {
			t.Errorf("device %s changed in round trip", pd.Device.Name)
		}
	}
	for _, rs := range l.RoutedStrips() {
		got := parsed.Routed(rs.Strip.Name)
		if got == nil || len(got.Path.Points) != len(rs.Path.Points) {
			t.Errorf("strip %s changed in round trip", rs.Strip.Name)
			continue
		}
		for i := range rs.Path.Points {
			if !got.Path.Points[i].Eq(rs.Path.Points[i]) {
				t.Errorf("strip %s point %d changed", rs.Strip.Name, i)
			}
		}
	}
	// The round-tripped layout passes DRC exactly like the original.
	if vs := parsed.Check(CheckOptions{}); len(vs) != 0 {
		t.Errorf("round-tripped layout has violations: %v", vs)
	}
}

func TestLayoutWriteAndParseFile(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	path := t.TempDir() + "/layout.rlay"
	if err := WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLayoutFile(path, l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Complete() {
		t.Error("parsed layout incomplete")
	}
	if _, err := ParseLayoutFile(path+".missing", l.Circuit); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseLayoutErrors(t *testing.T) {
	c := testCircuit()
	cases := []struct {
		name string
		src  string
	}{
		{"missing header", "place M1 10 10 R0\n"},
		{"wrong circuit", "layout other\n"},
		{"bad place arity", "layout chain\nplace M1 10 10\n"},
		{"bad coordinates", "layout chain\nplace M1 ten 10 R0\n"},
		{"bad orientation", "layout chain\nplace M1 10 10 R45\n"},
		{"unknown device", "layout chain\nplace ZZ 10 10 R0\n"},
		{"bad route arity", "layout chain\nroute TLIN 10 10\n"},
		{"odd route coords", "layout chain\nroute TLIN 10 10 20\n"},
		{"bad route value", "layout chain\nroute TLIN 10 10 x 20\n"},
		{"unknown strip", "layout chain\nroute ZZ 0 0 10 0\n"},
		{"diagonal route", "layout chain\nroute TLIN 0 0 10 10\n"},
		{"unknown keyword", "layout chain\nteleport M1\n"},
		{"header arity", "layout chain extra\n"},
	}
	for _, tc := range cases {
		if _, err := ParseLayoutString(tc.src, c); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseLayoutIgnoresComments(t *testing.T) {
	c := testCircuit()
	src := `
# a comment
layout chain
place PIN 0 150 R0   # trailing comment
`
	l, err := ParseLayoutString(src, c)
	if err != nil {
		t.Fatal(err)
	}
	if l.Placed("PIN") == nil {
		t.Error("placement lost")
	}
}

func TestWriteSVG(t *testing.T) {
	l := completeLayout(t)
	fixTLOUTTarget(l.Circuit)
	var sb strings.Builder
	if err := WriteSVG(&sb, l, SVGOptions{ShowLabels: true, Title: "chain layout"}); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{"<svg", "</svg>", "chain layout", "M1", "TLIN", "<path"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Without labels the device names are absent.
	sb.Reset()
	if err := WriteSVG(&sb, l, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), ">M1<") {
		t.Error("labels rendered although disabled")
	}
}

func TestSaveSVG(t *testing.T) {
	l := completeLayout(t)
	path := t.TempDir() + "/layout.svg"
	if err := SaveSVG(path, l, SVGOptions{Scale: 2}); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLayoutString(Format(l), l.Circuit)
	if err != nil || parsed == nil {
		t.Fatal("sanity re-parse failed")
	}
	if err := SaveSVG("/nonexistent-dir/x.svg", l, SVGOptions{}); err == nil {
		t.Error("expected error for unwritable path")
	}
}

func TestFormatEmptyLayout(t *testing.T) {
	l := New(testCircuit())
	text := Format(l)
	if !strings.HasPrefix(text, "layout chain\n") {
		t.Errorf("unexpected format: %q", text)
	}
	parsed, err := ParseLayoutString(text, l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Complete() {
		t.Error("empty layout should not be complete")
	}
	_ = geom.Pt(0, 0)
}
