package layout

import (
	"fmt"
	"io"
	"os"

	"rficlayout/internal/geom"
)

// SVGOptions tunes SVG rendering.
type SVGOptions struct {
	// Scale is pixels per micron; zero means 1.
	Scale float64
	// ShowLabels draws device and strip names.
	ShowLabels bool
	// Title is an optional figure caption rendered above the layout.
	Title string
}

func (o SVGOptions) scale() float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return 1
}

// WriteSVG renders the layout as an SVG drawing: the layout area outline,
// device bodies (pads hatched), pin markers and the smoothed microstrip
// centrelines, mirroring the style of the layout figures in the paper.
func WriteSVG(w io.Writer, l *Layout, opts SVGOptions) error {
	s := opts.scale()
	um := func(c geom.Coord) float64 { return geom.Microns(c) * s }
	// SVG has y growing downward; flip so the layout origin is bottom-left.
	flipY := func(c geom.Coord) float64 { return um(l.Circuit.AreaHeight - c) }

	const margin = 20.0
	width := um(l.Circuit.AreaWidth) + 2*margin
	height := um(l.Circuit.AreaHeight) + 2*margin
	titleSpace := 0.0
	if opts.Title != "" {
		titleSpace = 24
	}

	var err error
	printf := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.1f" height="%.1f" viewBox="0 0 %.1f %.1f">`+"\n",
		width, height+titleSpace, width, height+titleSpace)
	printf(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if opts.Title != "" {
		printf(`<text x="%.1f" y="16" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
			width/2, opts.Title)
	}
	printf(`<g transform="translate(%.1f,%.1f)">`+"\n", margin, margin+titleSpace)

	// Layout area outline.
	printf(`<rect x="0" y="0" width="%.2f" height="%.2f" fill="#fafafa" stroke="black" stroke-width="1"/>`+"\n",
		um(l.Circuit.AreaWidth), um(l.Circuit.AreaHeight))

	// Devices.
	for _, pd := range l.PlacedDevices() {
		body := pd.BodyRect()
		fill := "#d9e8fb"
		stroke := "#2b5a9b"
		if pd.Device.IsPad() {
			fill = "#f3d9a8"
			stroke = "#9b6a2b"
		}
		printf(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="0.8"/>`+"\n",
			um(body.Min.X), flipY(body.Max.Y), um(body.Width()), um(body.Height()), fill, stroke)
		for _, pin := range pd.Device.Pins {
			pos, perr := pd.PinPosition(pin.Name)
			if perr != nil {
				continue
			}
			printf(`<circle cx="%.2f" cy="%.2f" r="1.6" fill="#c03030"/>`+"\n", um(pos.X), flipY(pos.Y))
		}
		if opts.ShowLabels {
			c := pd.Center
			printf(`<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="8" text-anchor="middle">%s</text>`+"\n",
				um(c.X), flipY(c.Y), pd.Device.Name)
		}
	}

	// Microstrips: smoothed centrelines drawn with the strip width.
	for _, rs := range l.RoutedStrips() {
		pts := rs.SmoothedRoute()
		if len(pts) < 2 {
			continue
		}
		path := ""
		for i, p := range pts {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			path += fmt.Sprintf("%s %.2f %.2f ", cmd, um(p.X), flipY(p.Y))
		}
		printf(`<path d="%s" fill="none" stroke="#3a7d44" stroke-width="%.2f" stroke-linejoin="round" stroke-linecap="round" opacity="0.85"/>`+"\n",
			path, geom.Microns(rs.Path.Width)*s)
		if opts.ShowLabels {
			mid := pts[len(pts)/2]
			printf(`<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="7" fill="#205528">%s</text>`+"\n",
				um(mid.X), flipY(mid.Y)-2, rs.Strip.Name)
		}
	}

	printf("</g>\n</svg>\n")
	return err
}

// SaveSVG writes the SVG rendering to a file.
func SaveSVG(path string, l *Layout, opts SVGOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteSVG(f, l, opts); err != nil {
		return err
	}
	return f.Close()
}
