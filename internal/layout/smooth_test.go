package layout

import (
	"math"
	"testing"
	"testing/quick"

	"rficlayout/internal/geom"
)

func TestSmoothPolylineStraight(t *testing.T) {
	pl := geom.MustPolyline(10, geom.Pt(0, 0), geom.Pt(100, 0))
	pts := SmoothPolyline(pl, 15)
	if len(pts) != 2 || !pts[0].Eq(geom.Pt(0, 0)) || !pts[1].Eq(geom.Pt(100, 0)) {
		t.Errorf("straight line altered: %v", pts)
	}
}

func TestSmoothPolylineLShape(t *testing.T) {
	pl := geom.MustPolyline(10, geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 80))
	pts := SmoothPolyline(pl, 15)
	// The corner (100, 0) is replaced by (85, 0) and (100, 15).
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(85, 0), geom.Pt(100, 15), geom.Pt(100, 80)}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if !pts[i].Eq(want[i]) {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	// The smoothed path is shorter than the rectilinear one (diagonal cut).
	if SmoothedPathLength(pts) >= float64(pl.Length()) {
		t.Error("smoothing did not shorten the path")
	}
}

func TestSmoothPolylineCutClamping(t *testing.T) {
	// Legs of 20 and 300: the cut is clamped to half the short leg (10).
	pl := geom.MustPolyline(10, geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(20, 300))
	pts := SmoothPolyline(pl, 50)
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	if !pts[1].Eq(geom.Pt(10, 0)) || !pts[2].Eq(geom.Pt(20, 50)) {
		// cut clamped to min(20/2, 300/2) = 10 on the incoming leg and the
		// same 10 on the outgoing leg.
		if !pts[2].Eq(geom.Pt(20, 10)) {
			t.Errorf("clamped corner = %v %v", pts[1], pts[2])
		}
	}
}

func TestSmoothPolylineZeroCut(t *testing.T) {
	pl := geom.MustPolyline(10, geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 80))
	pts := SmoothPolyline(pl, 0)
	if len(pts) != 3 {
		t.Errorf("zero cut should keep the corner: %v", pts)
	}
}

func TestSmoothPolylinePreservesEndpointsProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		pts := []geom.Point{geom.Pt(0, 0)}
		cur := geom.Pt(0, 0)
		for i, s := range seed {
			if i > 12 {
				break
			}
			d := geom.Directions[int(s)%geom.NumDirections]
			step := geom.Coord(int(s)%5+1) * 20
			delta := d.Delta()
			cur = cur.Add(geom.Pt(delta.X*step, delta.Y*step))
			pts = append(pts, cur)
		}
		pl := geom.Polyline{Points: pts, Width: 10}
		sm := SmoothPolyline(pl, 15)
		if len(sm) == 0 {
			return false
		}
		if !sm[0].Eq(pts[0]) || !sm[len(sm)-1].Eq(pts[len(pts)-1]) {
			return false
		}
		// Smoothing never lengthens the path.
		return SmoothedPathLength(sm) <= float64(pl.Length())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmoothedRouteAndDefaultCut(t *testing.T) {
	if DefaultCutLength(10000) != 15000 {
		t.Errorf("DefaultCutLength = %d", DefaultCutLength(10000))
	}
	l := completeLayout(t)
	rs := l.Routed("TLOUT")
	pts := rs.SmoothedRoute()
	if len(pts) != 4 {
		t.Errorf("smoothed TLOUT has %d points", len(pts))
	}
	// The diagonal shortcut across a 15 µm cut replaces 30 µm of path with
	// 15·√2 ≈ 21.2 µm.
	wantReduction := 2*15000.0 - 15000*math.Sqrt2
	got := float64(rs.GeometricLength()) - SmoothedPathLength(pts)
	if math.Abs(got-wantReduction) > 1 {
		t.Errorf("smoothing reduction = %g nm, want %g nm", got, wantReduction)
	}
}
