package conc

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"rficlayout/internal/faultinject"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 2} {
		n := 50
		hits := make([]int32, n)
		ForEach(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	ForEach(context.Background(), workers, 64, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent jobs, pool bound is %d", peak, workers)
	}
}

func TestForEachPropagatesFirstPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: panic was not propagated", workers)
				}
			}()
			ForEach(context.Background(), workers, 8, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	ForEach(ctx, 4, 16, func(int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran)
	}
}

// TestForEachInjectedDelayIsResultInvariant arms the conc.delay point on
// every job and checks the pool's output is unchanged — scheduling
// perturbation must never leak into results, which is the determinism
// contract the chaos battery leans on.
func TestForEachInjectedDelayIsResultInvariant(t *testing.T) {
	plan, err := faultinject.ParsePlan(faultinject.PointConcDelay + "=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(plan, 1))
	t.Cleanup(faultinject.Disable)
	for _, workers := range []int{1, 4} {
		n := 8
		out := make([]int, n)
		ForEach(context.Background(), workers, n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d under injected delays", workers, i, v)
			}
		}
	}
}

// TestForEachInjectedPanicReachesCaller arms conc.panic and checks both the
// sequential and the pooled path re-raise the injected panic on the calling
// goroutine with its deterministic message — where engine.Run's per-job
// recover isolates it.
func TestForEachInjectedPanicReachesCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan, err := faultinject.ParsePlan(faultinject.PointConcPanic + "=1/1")
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Enable(faultinject.New(plan, 1))
		t.Cleanup(faultinject.Disable)
		func() {
			defer func() {
				r := recover()
				p, ok := r.(faultinject.Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %v (%T), want faultinject.Panic", workers, r, r)
				}
				if p.Point != faultinject.PointConcPanic {
					t.Fatalf("workers=%d: panic from point %q", workers, p.Point)
				}
			}()
			ForEach(context.Background(), workers, 8, func(int) {})
		}()
		// Budget spent: the pool runs clean again.
		ran := int32(0)
		ForEach(context.Background(), workers, 4, func(int) { atomic.AddInt32(&ran, 1) })
		if ran != 4 {
			t.Fatalf("workers=%d: %d/4 jobs ran after the panic budget was spent", workers, ran)
		}
	}
}
