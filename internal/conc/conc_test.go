package conc

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 2} {
		n := 50
		hits := make([]int32, n)
		ForEach(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	ForEach(context.Background(), workers, 64, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent jobs, pool bound is %d", peak, workers)
	}
}

func TestForEachPropagatesFirstPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: panic was not propagated", workers)
				}
			}()
			ForEach(context.Background(), workers, 8, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	ForEach(ctx, 4, 16, func(int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran)
	}
}
