// Package conc holds the one concurrency primitive the solver layers share:
// a bounded worker pool whose scheduling never leaks into results. Both the
// milp branch-and-bound (eager batch LP evaluation) and the pilp flow
// (per-strip subproblem fan-out) use it, which keeps their panic and
// cancellation semantics identical by construction.
package conc

import (
	"context"
	"sync"
	"time"

	"rficlayout/internal/faultinject"
)

// runJob is every job invocation's single entry: both the sequential and the
// pooled path go through it so the fault-injection points (a scheduling delay
// that must never change results, and a job panic that exercises the callers'
// isolation layers) fire identically regardless of worker count.
func runJob(fn func(int), i int) {
	faultinject.SleepAt(faultinject.PointConcDelay, time.Millisecond)
	faultinject.PanicAt(faultinject.PointConcPanic)
	fn(i)
}

// ForEach executes fn(0..n-1) on a pool of at most workers goroutines and
// waits for all of them. With one worker (or one job) it degrades to a plain
// sequential loop. Jobs must be independent: each writes only its own slot of
// whatever result slice the caller provides. Once the context is cancelled,
// jobs that have not started yet are skipped — their result slots stay zero,
// which callers must treat as "not evaluated". A panic in any job is
// re-raised on the calling goroutine after the pool drains, so callers (and
// their recover handlers) observe it exactly as from a sequential loop.
func ForEach(ctx context.Context, workers, n int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			runJob(fn, i)
		}
		return
	}
	var (
		sem      = make(chan struct{}, workers)
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal interface{}
	)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
				<-sem
			}()
			runJob(fn, i)
		}(i)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
