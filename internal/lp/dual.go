package lp

import "math"

// runDual executes the bounded-variable dual simplex from an installed,
// dual-feasible basis: while some basic variable violates a bound, the worst
// violator leaves the basis toward the violated bound and the dual ratio test
// picks the entering column that keeps the reduced costs sign-feasible. When
// no violation remains the basis is primal- and dual-feasible, i.e. optimal.
//
// An exhausted ratio test (no eligible entering column) proves the primal
// problem infeasible — for a branch-and-bound child that is the common "this
// branch is empty" outcome, reached without any phase-1 work.
func (s *simplex) runDual() Status {
	sinceRefresh := 0
	for {
		if s.iterations >= s.maxIter {
			return StatusIterLimit
		}
		if s.cancelled() {
			return StatusCancelled
		}
		if sinceRefresh >= s.refresh {
			s.computeReducedCosts()
			sinceRefresh = 0
		}

		r, target, bound := s.chooseLeaving()
		if r < 0 {
			return StatusOptimal
		}
		prow := s.prowBuf
		s.core.pivotRow(r, prow)
		enter, ratio, ok := s.dualRatioTest(r, target, prow)
		if !ok {
			return StatusInfeasible
		}

		delta := (s.beta[r] - target) / prow[enter]
		dir, step := 1.0, delta
		if delta < 0 {
			dir, step = -1, -delta
		}
		alpha := s.colBuf
		s.core.column(enter, alpha)

		s.iterations++
		sinceRefresh++
		// A zero dual ratio means no dual-objective progress; a long run of
		// those is the dual analogue of primal stalling.
		if ratio <= 1e-12 {
			s.degenerate++
			if s.degenerate > 2*(s.m+s.n) {
				s.useBland = true
			}
		} else {
			s.degenerate = 0
			s.useBland = false
		}
		s.pivot(enter, dir, r, bound, step, alpha)
	}
}

// chooseLeaving returns the row of the basic variable with the largest bound
// violation, the bound value it must move to, and the status it leaves at —
// or row −1 when the basis is primal-feasible. In anti-cycling mode the
// lowest violating row wins instead of the worst one.
func (s *simplex) chooseLeaving() (row int, target float64, bound varStatus) {
	row = -1
	worst := s.tol
	for i := 0; i < s.m; i++ {
		b := s.basis[i]
		if v := s.lower[b] - s.beta[i]; v > worst {
			row, target, bound = i, s.lower[b], atLower
			if s.useBland {
				return
			}
			worst = v
		}
		if v := s.beta[i] - s.upper[b]; v > worst {
			row, target, bound = i, s.upper[b], atUpper
			if s.useBland {
				return
			}
			worst = v
		}
	}
	return
}

// dualRatioTest picks the entering column for leaving row r (whose tableau
// row is in row) whose basic variable moves to target: among the columns
// whose sign allows the move, the one minimizing |d/alpha| keeps every
// reduced cost sign-feasible after the pivot. Ties break on the larger
// |alpha| (stability) then the lower index; anti-cycling mode breaks ties on
// the lower index alone.
func (s *simplex) dualRatioTest(r int, target float64, row []float64) (enter int, ratio float64, ok bool) {
	const pivTol = 1e-9
	below := s.beta[r] < target // the leaving basic variable must increase
	enter = -1
	bestRatio := math.Inf(1)
	bestAbs := 0.0
	for j := 0; j < s.n; j++ {
		st := s.status[j]
		if st == inBasis || s.lower[j] == s.upper[j] {
			continue
		}
		a := row[j]
		if math.Abs(a) < pivTol {
			continue
		}
		// The entering variable moves by dx = (beta_r − target)/a. A column
		// at its lower bound may only increase (dx > 0), at its upper bound
		// only decrease; free columns move either way. With the numerator's
		// sign fixed by `below`, eligibility reduces to the sign of a.
		switch st {
		case atLower:
			if below != (a < 0) {
				continue
			}
		case atUpper:
			if below != (a > 0) {
				continue
			}
		}
		rj := math.Abs(s.reduced[j] / a)
		switch {
		case rj < bestRatio-1e-12:
			// Strictly better: accept.
		case rj <= bestRatio+1e-12:
			// Tie: keep the earlier index in anti-cycling mode, otherwise
			// prefer the larger pivot element.
			if s.useBland || math.Abs(a) <= bestAbs {
				continue
			}
		default:
			continue
		}
		enter = j
		bestRatio = rj
		bestAbs = math.Abs(a)
	}
	return enter, bestRatio, enter >= 0
}

// lexCanonicalize runs after optimality: among the optimal vertices reachable
// by moving along zero-reduced-cost directions, it descends to the
// lexicographically smallest one (first structural coordinate that changes
// must decrease). Degenerate LPs have many optimal vertices and the primal
// and dual algorithms land on different ones; this pass makes the reported
// solution a property of the optimal face rather than of the pivot path, so
// warm- and cold-started solves agree on X.
//
// The descent is a simplex on the implicit objective Σ εʲ·xⱼ (ε→0⁺) restricted
// to the optimal face: a column is eligible when its real reduced cost is zero
// and its direction lex-decreases X to first order. Degenerate pivots (step 0)
// are taken too — the lex-minimum of a degenerate face is often reachable only
// through a basis exchange at the same vertex, and refusing those strands
// different pivot paths at different vertices. Bland-style index rules on both
// the entering column and the leaving row keep the pass from cycling.
func (s *simplex) lexCanonicalize() {
	maxMoves := 4 * (s.m + s.n)
	if maxMoves < 64 {
		maxMoves = 64
	}
	s.lexPivoting = true
	for moves := 0; moves < maxMoves; moves++ {
		enter, dir, leaveRow, bound, step := s.findLexDescent()
		if enter < 0 {
			break
		}
		// findLexDescent leaves the accepted column's tableau column in
		// s.colBuf, which is exactly what the move application needs.
		s.iterations++
		if leaveRow < 0 {
			s.applyBoundFlip(enter, dir, step, s.colBuf)
		} else {
			s.pivot(enter, dir, leaveRow, bound, step, s.colBuf)
		}
	}
	s.lexPivoting = false
}

// findLexDescent scans nonbasic columns with zero reduced cost, in index
// order, for a bounded move whose direction lexicographically decreases the
// structural solution vector; the first such move wins (Bland's entering
// rule for the implicit lex objective).
func (s *simplex) findLexDescent() (enter int, dir float64, leaveRow int, bound varStatus, step float64) {
	for j := 0; j < s.n; j++ {
		st := s.status[j]
		if st == inBasis || s.lower[j] == s.upper[j] {
			continue
		}
		if math.Abs(s.reduced[j]) > s.tol {
			continue
		}
		var dirs []float64
		switch st {
		case atLower:
			dirs = []float64{1}
		case atUpper:
			dirs = []float64{-1}
		case atFree:
			dirs = []float64{1, -1}
		}
		alpha := s.colBuf
		s.core.column(j, alpha)
		for _, d := range dirs {
			if !s.lexDescending(j, d, alpha) {
				continue
			}
			lr, b, stp, ok := s.ratioTest(j, d, alpha)
			if !ok {
				continue // unbounded ray: the lex objective has no minimum here
			}
			if lr < 0 && stp <= s.tol {
				continue // zero-width bound flip changes nothing
			}
			return j, d, lr, b, stp
		}
	}
	return -1, 0, 0, atLower, 0
}

// lexDescending reports whether moving the entering column (tableau column
// alpha) in direction dir strictly decreases the structural solution in
// lexicographic order to first order: the lowest-index structural variable
// with a nonzero rate of change must decrease. The test reads per-unit rates
// rather than step-scaled deltas, so it is independent of how far the move is
// later allowed to travel — degenerate moves count, which is what lets the
// descent walk through the bases of a degenerate vertex instead of stalling
// on it.
func (s *simplex) lexDescending(enter int, dir float64, alpha []float64) bool {
	const rateTol = 1e-9
	lead := s.nStruct
	var leadRate float64
	if enter < s.nStruct {
		lead = enter
		leadRate = dir
	}
	for i := 0; i < s.m; i++ {
		b := s.basis[i]
		if b >= lead {
			continue
		}
		a := alpha[i]
		if math.Abs(a) <= rateTol {
			continue
		}
		lead = b
		leadRate = -dir * a
	}
	return lead < s.nStruct && leadRate < 0
}
