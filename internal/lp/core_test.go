package lp

import (
	"fmt"
	"math"
	"testing"
)

// chainProblem builds a minimization with enough structure to force a long
// pivot sequence: coupled pairwise constraints over n variables plus one
// shared capacity row.
func chainProblem(n int) *Problem {
	p := NewProblem()
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		vars[i] = p.AddVariable(fmt.Sprintf("x%d", i), 0, Infinity, -float64(1+i%3))
	}
	for i := 0; i+1 < n; i++ {
		p.AddConstraint(fmt.Sprintf("c%d", i), []Entry{{vars[i], 1}, {vars[i+1], 2}}, LE, float64(4+i%5))
	}
	all := make([]Entry, n)
	for i, v := range vars {
		all[i] = Entry{v, 1}
	}
	p.AddConstraint("cap", all, LE, float64(n))
	return p
}

// TestEtaChainCapRespected: RefactorEvery caps the sparse core's update-eta
// chain — a solve long enough to cross the cap many times must report a peak
// chain no longer than the cap, more refactorizations than the default
// cadence, and the same optimum.
func TestEtaChainCapRespected(t *testing.T) {
	p := chainProblem(40)
	def := solveOrFatal(t, p, Options{})
	capped := solveOrFatal(t, p, Options{RefactorEvery: 4})
	if capped.Status != StatusOptimal {
		t.Fatalf("capped solve status = %v", capped.Status)
	}
	if capped.PeakEta > 4 {
		t.Errorf("peak eta chain %d exceeds the RefactorEvery cap 4", capped.PeakEta)
	}
	if capped.PeakEta < 1 {
		t.Errorf("peak eta chain %d: solve pivoted but recorded no update etas", capped.PeakEta)
	}
	if capped.Refactorizations <= def.Refactorizations {
		t.Errorf("capped solve refactorized %d times, default cadence %d — the cap did not bind",
			capped.Refactorizations, def.Refactorizations)
	}
	if math.Abs(capped.Objective-def.Objective) > 1e-7 {
		t.Errorf("objective drifted under the tight cap: %g vs %g", capped.Objective, def.Objective)
	}
	for j := range def.X {
		if math.Abs(capped.X[j]-def.X[j]) > 1e-7 {
			t.Errorf("x[%d] = %g under the tight cap, %g under the default", j, capped.X[j], def.X[j])
		}
	}
}

// TestDriftTriggersRefactorization: an update pivot below the drift tolerance
// must force an immediate refactorization instead of extending the eta chain
// with a near-singular factor. The problem is scaled so the one structural
// pivot element is 1e-8: a short solve normally refactorizes exactly three
// times (cold setup plus two at optimality), so any extra rebuild is the
// drift guard firing.
func TestDriftTriggersRefactorization(t *testing.T) {
	tiny := NewProblem()
	x := tiny.AddVariable("x", 0, 10, -1)
	tiny.AddConstraint("c", []Entry{{x, 1e-8}}, LE, 1e-8)

	sol := solveOrFatal(t, tiny, Options{Core: CoreSparse})
	if math.Abs(sol.X[0]-1) > 1e-6 {
		t.Errorf("x = %g, want 1", sol.X[0])
	}
	if sol.Refactorizations <= 3 {
		t.Errorf("refactorizations = %d; the 1e-8 pivot should have tripped the drift rebuild on top of the baseline 3",
			sol.Refactorizations)
	}

	// The well-scaled statement of the same problem must not trip the guard.
	scaled := NewProblem()
	xs := scaled.AddVariable("x", 0, 10, -1)
	scaled.AddConstraint("c", []Entry{{xs, 1}}, LE, 1)
	ssol := solveOrFatal(t, scaled, Options{Core: CoreSparse})
	if ssol.Refactorizations != 3 {
		t.Errorf("well-scaled solve refactorized %d times, want exactly 3", ssol.Refactorizations)
	}
	if math.Abs(ssol.X[0]-sol.X[0]) > 1e-6 {
		t.Errorf("scaled and tiny statements disagree: %g vs %g", ssol.X[0], sol.X[0])
	}
}

// TestSingularWarmBasisFallsBackCold: a warm basis whose basic columns are
// linearly dependent must be rejected by the deterministic refactorization —
// installBasis fails, the solve silently falls back to the cold path, and the
// reported solution is still optimal (with WarmStarted false).
func TestSingularWarmBasisFallsBackCold(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, -3)
	y := p.AddVariable("y", 0, Infinity, -5)
	p.AddConstraint("c1", []Entry{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint("c2", []Entry{{x, 2}, {y, 2}}, LE, 9)

	// Both structural columns basic: the basis matrix is [[1,1],[2,2]],
	// rank 1. Dimensionally the basis is compatible, so only the singularity
	// check can reject it.
	singular := &Basis{
		Basic:  []int32{0, 1},
		Status: []BasisStatus{BasisBasic, BasisBasic, BasisAtLower, BasisAtLower},
	}
	for _, core := range Cores() {
		ref := solveOrFatal(t, p, Options{Core: core})
		sol := solveOrFatal(t, p, Options{Core: core, WarmBasis: singular})
		if sol.Status != StatusOptimal {
			t.Fatalf("core %s: status = %v", core, sol.Status)
		}
		if sol.WarmStarted {
			t.Errorf("core %s: solve claims a warm start from a singular basis", core)
		}
		if math.Abs(sol.Objective-ref.Objective) > 1e-9 {
			t.Errorf("core %s: fallback objective %g, cold reference %g", core, sol.Objective, ref.Objective)
		}
	}
}

// TestCoresAgreeOnIllConditioned: a Hilbert-matrix LP is about as badly
// conditioned as small dense problems get; both cores under every pivot rule
// must still land on the same canonicalized optimum.
func TestCoresAgreeOnIllConditioned(t *testing.T) {
	const n = 6
	p := NewProblem()
	vars := make([]int, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVariable(fmt.Sprintf("h%d", j), 0, 10, -1)
	}
	for i := 0; i < n; i++ {
		row := make([]Entry, n)
		rhs := 0.0
		for j := 0; j < n; j++ {
			coef := 1 / float64(i+j+1)
			row[j] = Entry{vars[j], coef}
			rhs += coef
		}
		p.AddConstraint(fmt.Sprintf("r%d", i), row, LE, rhs)
	}

	var ref *Solution
	for _, core := range Cores() {
		for _, rule := range PivotRules() {
			sol := solveOrFatal(t, p, Options{Core: core, Pivot: rule})
			if sol.Status != StatusOptimal {
				t.Fatalf("%s/%s: status = %v", core, rule, sol.Status)
			}
			if ref == nil {
				ref = sol
				continue
			}
			if math.Abs(sol.Objective-ref.Objective) > 1e-6 {
				t.Errorf("%s/%s: objective %g, reference %g", core, rule, sol.Objective, ref.Objective)
			}
			for j := range ref.X {
				if math.Abs(sol.X[j]-ref.X[j]) > 1e-6 {
					t.Errorf("%s/%s: x[%d] = %g, reference %g", core, rule, j, sol.X[j], ref.X[j])
				}
			}
		}
	}
}
