package lp

import "math"

// cscMatrix stores the full column set of the solver form — structural
// variables, slacks, artificials — in compressed sparse column layout.
// Column j's entries are rows idx[ptr[j]:ptr[j+1]] with values
// val[ptr[j]:ptr[j+1]], rows ascending within a column. The matrix is built
// once per solve and never mutated; everything basis-dependent lives in the
// eta file.
type cscMatrix struct {
	ptr []int32
	idx []int32
	val []float64
}

// buildCSC assembles the matrix from the raw problem rows, after any
// artificial columns have been added. Duplicate (row, variable) entries are
// summed in declaration order, matching the dense rawRow accumulation.
func buildCSC(s *simplex) cscMatrix {
	// Bucket the structural entries column by column. Rows are visited in
	// ascending order, so each bucket's rows are non-decreasing and duplicate
	// entries of one row sit adjacent.
	type rv struct {
		row  int32
		coef float64
	}
	buckets := make([][]rv, s.nStruct)
	nnz := 0
	for i, c := range s.prob.Constraints {
		for _, e := range c.Row {
			buckets[e.Var] = append(buckets[e.Var], rv{int32(i), e.Coef})
			nnz++
		}
	}
	mat := cscMatrix{
		ptr: make([]int32, 0, s.n+1),
		idx: make([]int32, 0, nnz+s.n-s.nStruct),
		val: make([]float64, 0, nnz+s.n-s.nStruct),
	}
	mat.ptr = append(mat.ptr, 0)
	for j := 0; j < s.nStruct; j++ {
		for _, e := range buckets[j] {
			if k := len(mat.idx); k > int(mat.ptr[j]) && mat.idx[k-1] == e.row {
				mat.val[k-1] += e.coef
				continue
			}
			mat.idx = append(mat.idx, e.row)
			mat.val = append(mat.val, e.coef)
		}
		mat.ptr = append(mat.ptr, int32(len(mat.idx)))
	}
	// One +1 slack per constraint.
	for i := 0; i < s.m; i++ {
		mat.idx = append(mat.idx, int32(i))
		mat.val = append(mat.val, 1)
		mat.ptr = append(mat.ptr, int32(len(mat.idx)))
	}
	// Artificial columns: ±1 in their home row.
	for k, r := range s.artRow {
		mat.idx = append(mat.idx, int32(r))
		mat.val = append(mat.val, s.artSign[k])
		mat.ptr = append(mat.ptr, int32(len(mat.idx)))
	}
	return mat
}

// etaFile is a sequence of product-form eta matrices stored in flat arrays
// (one shared arena, no per-eta allocation on the pivot path). Eta e differs
// from the identity only in column rowOf[e]: the entries listed in
// idx/val[start[e]:start[e+1]], with the diagonal element piv[e] at row
// rowOf[e]. B = E_0·E_1·…·E_{k−1}, so FTRAN applies the inverses in creation
// order and BTRAN in reverse.
type etaFile struct {
	rowOf []int32
	piv   []float64
	start []int32
	idx   []int32
	val   []float64
}

func (f *etaFile) reset() {
	f.rowOf = f.rowOf[:0]
	f.piv = f.piv[:0]
	if len(f.start) == 0 {
		f.start = append(f.start, 0)
	}
	f.start = f.start[:1]
	f.idx = f.idx[:0]
	f.val = f.val[:0]
}

func (f *etaFile) count() int { return len(f.rowOf) }

// etaDropTol is the magnitude below which off-pivot eta entries are dropped
// when a dense spike is compressed into an eta. Entries that small are
// floating-point dust from the preceding solves; keeping them would only
// lengthen every future FTRAN/BTRAN.
const etaDropTol = 1e-13

// pushDense compresses the dense spike v into a new eta with pivot row r.
// The pivot entry is always kept, whatever its magnitude.
func (f *etaFile) pushDense(r int, v []float64) {
	f.rowOf = append(f.rowOf, int32(r))
	f.piv = append(f.piv, v[r])
	for i, x := range v {
		if i != r && math.Abs(x) <= etaDropTol {
			continue
		}
		f.idx = append(f.idx, int32(i))
		f.val = append(f.val, x)
	}
	f.start = append(f.start, int32(len(f.idx)))
}

// pushUnit appends an eta for a ±1 unit column at its home row.
func (f *etaFile) pushUnit(r int, piv float64) {
	f.rowOf = append(f.rowOf, int32(r))
	f.piv = append(f.piv, piv)
	f.idx = append(f.idx, int32(r))
	f.val = append(f.val, piv)
	f.start = append(f.start, int32(len(f.idx)))
}

// ftran solves B·x' = x in place: x ← E_{k−1}⁻¹·…·E_0⁻¹·x.
func (f *etaFile) ftran(x []float64) {
	for e := 0; e < len(f.rowOf); e++ {
		r := f.rowOf[e]
		xr := x[r]
		if xr == 0 {
			continue
		}
		t := xr / f.piv[e]
		for k := f.start[e]; k < f.start[e+1]; k++ {
			if i := f.idx[k]; i != r {
				x[i] -= f.val[k] * t
			}
		}
		x[r] = t
	}
}

// btran solves Bᵀ·y' = y in place: y ← E_0⁻ᵀ·…·E_{k−1}⁻ᵀ·y.
func (f *etaFile) btran(y []float64) {
	for e := len(f.rowOf) - 1; e >= 0; e-- {
		r := f.rowOf[e]
		acc := 0.0
		for k := f.start[e]; k < f.start[e+1]; k++ {
			if i := f.idx[k]; i != r {
				acc += f.val[k] * y[i]
			}
		}
		y[r] = (y[r] - acc) / f.piv[e]
	}
}

// sparseCore is the revised simplex engine: A in CSC form, the basis inverse
// as an elimination-form LU factorization in product form (the eta prefix
// etas[:factorLen], rebuilt by refactorize) extended by one update eta per
// pivot. Tableau columns are FTRAN solves, pivot rows and reduced costs are
// BTRAN solves followed by one pass over the matrix nonzeros — so pivot cost
// scales with nnz(A) plus the eta-chain length instead of m·n.
type sparseCore struct {
	s   *simplex
	mat cscMatrix

	etas      etaFile
	factorLen int // etas[:factorLen] is the refactorization; the rest are updates
	peak      int // longest update chain seen between refactorizations

	spare etaFile   // factorization under construction (swapped in on success)
	work  []float64 // dense length-m scratch for FTRAN/BTRAN vectors
	rhs   []float64 // dense length-m scratch for refactorized basic values
}

// updateDriftTol is the pivot-element magnitude below which an update eta is
// considered too ill-conditioned to extend the chain: the pivot is still
// applied (the eta is exact), but the factorization is immediately rebuilt
// from the raw data before anything else reads it.
const updateDriftTol = 1e-7

func newSparseCore(s *simplex) *sparseCore {
	c := &sparseCore{
		s:    s,
		mat:  buildCSC(s),
		work: make([]float64, s.m),
		rhs:  make([]float64, s.m),
	}
	c.etas.reset()
	c.spare.reset()
	return c
}

func (c *sparseCore) peakEta() int { return c.peak }

// scatterColumn writes raw column j of A into the zeroed dense vector dst.
func (c *sparseCore) scatterColumn(j int, dst []float64) {
	for k := c.mat.ptr[j]; k < c.mat.ptr[j+1]; k++ {
		dst[c.mat.idx[k]] = c.mat.val[k]
	}
}

func (c *sparseCore) column(j int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	c.scatterColumn(j, dst)
	c.etas.ftran(dst)
}

func (c *sparseCore) pivotRow(r int, dst []float64) {
	rho := c.work
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	c.etas.btran(rho)
	// Row r of B⁻¹·A is ρᵀ·A with ρ = B⁻ᵀ·e_r.
	mat := &c.mat
	for j := 0; j < c.s.n; j++ {
		acc := 0.0
		for k := mat.ptr[j]; k < mat.ptr[j+1]; k++ {
			acc += mat.val[k] * rho[mat.idx[k]]
		}
		dst[j] = acc
	}
}

func (c *sparseCore) reducedCosts(cost []float64, dst []float64) {
	s := c.s
	y := c.work
	anyNonzero := false
	for i, j := range s.basis {
		y[i] = cost[j]
		if y[i] != 0 {
			anyNonzero = true
		}
	}
	if !anyNonzero {
		copy(dst, cost[:s.n])
		return
	}
	c.etas.btran(y)
	mat := &c.mat
	for j := 0; j < s.n; j++ {
		acc := 0.0
		for k := mat.ptr[j]; k < mat.ptr[j+1]; k++ {
			acc += mat.val[k] * y[mat.idx[k]]
		}
		dst[j] = cost[j] - acc
	}
}

func (c *sparseCore) tau(x []float64, dst []float64) {
	v := c.work
	copy(v, x)
	c.etas.btran(v)
	mat := &c.mat
	for j := 0; j < c.s.n; j++ {
		acc := 0.0
		for k := mat.ptr[j]; k < mat.ptr[j+1]; k++ {
			acc += mat.val[k] * v[mat.idx[k]]
		}
		dst[j] = acc
	}
}

// applyPivot appends the product-form update eta for the basis exchange —
// B_new = B_old·E with E the identity except for column leaveRow = alpha —
// then refactorizes when the chain hits its cap (Options.RefactorEvery) or
// the pivot element signals drift. The eta is pushed before any rebuild is
// attempted so a singular refactorization (numerically possible on
// pathological data, never for an exact basis) still leaves a valid, merely
// longer, factorization behind.
func (c *sparseCore) applyPivot(enter, leaveRow int, alpha []float64) bool {
	c.etas.pushDense(leaveRow, alpha)
	if chain := c.etas.count() - c.factorLen; chain > c.peak {
		c.peak = chain
	}
	if math.Abs(alpha[leaveRow]) < updateDriftTol || c.etas.count()-c.factorLen >= c.s.refresh {
		return c.refactorize()
	}
	return false
}

// refactorize rebuilds the eta factorization from the raw matrix and the
// driver's current basic set, then recomputes the basic values, making the
// core state a pure function of the basic set. The elimination order mirrors
// the dense core exactly: unit columns (slacks, artificials) pivot at their
// home rows in ascending column order, then structural basis columns in
// ascending index order pick their row by partial pivoting — the largest
// partially-FTRANed magnitude among unassigned rows, lowest row on ties.
// Returns false (old factorization untouched) when the basis is singular.
func (c *sparseCore) refactorize() bool {
	const pivTol = 1e-9
	s := c.s
	m := s.m

	nf := &c.spare
	nf.reset()
	assigned := make([]bool, m)
	newBasis := make([]int, m)
	basicSet := make([]bool, s.n)
	for _, j := range s.basis {
		basicSet[j] = true
	}

	// Unit columns first: their home row is forced.
	for j := s.nStruct; j < s.n; j++ {
		if !basicSet[j] {
			continue
		}
		home := j - s.nStruct
		piv := 1.0
		if j >= s.artStart {
			home = s.artRow[j-s.artStart]
			piv = s.artSign[j-s.artStart]
		}
		if assigned[home] {
			return false
		}
		nf.pushUnit(home, piv)
		assigned[home] = true
		newBasis[home] = j
	}
	// Structural columns by partial pivoting over the unassigned rows.
	work := c.work
	for j := 0; j < s.nStruct; j++ {
		if !basicSet[j] {
			continue
		}
		for i := range work {
			work[i] = 0
		}
		c.scatterColumn(j, work)
		nf.ftran(work)
		best, bestAbs := -1, pivTol
		for r := 0; r < m; r++ {
			if assigned[r] {
				continue
			}
			if a := math.Abs(work[r]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return false
		}
		nf.pushDense(best, work)
		assigned[best] = true
		newBasis[best] = j
	}

	// Commit: swap in the fresh factorization, install the (possibly
	// permuted) row assignment, and re-derive the basic values
	// β = B⁻¹·(b − A_N·x_N) from the raw data.
	c.etas, c.spare = *nf, c.etas
	c.factorLen = c.etas.count()
	copy(s.basis, newBasis)

	rhs := c.rhs
	for i := 0; i < m; i++ {
		rhs[i] = s.prob.Constraints[i].RHS
	}
	for j := 0; j < s.n; j++ {
		if basicSet[j] {
			continue
		}
		x := s.nonbasicValue(j)
		if x == 0 {
			continue
		}
		for k := c.mat.ptr[j]; k < c.mat.ptr[j+1]; k++ {
			rhs[c.mat.idx[k]] -= c.mat.val[k] * x
		}
	}
	c.etas.ftran(rhs)
	if len(s.beta) != m {
		s.beta = make([]float64, m)
	}
	copy(s.beta, rhs)
	return true
}
