package lp

import "fmt"

// PivotRule selects the pricing rule of the primal simplex: how the entering
// column is chosen among those with a favourable reduced cost. Every rule is
// deterministic — given the same problem and options the pivot sequence is
// identical on every run — which is what lets the branch-and-bound layer
// promise byte-identical results at any worker count.
//
// The dual simplex (warm starts) is unaffected by the rule: its leaving row
// is the largest bound violation and its entering column is fixed by the
// dual ratio test.
type PivotRule int

const (
	// PivotDantzig picks the most negative reduced cost (textbook rule,
	// cheap per pivot, prone to long paths on degenerate models). Default.
	PivotDantzig PivotRule = iota
	// PivotBland picks the first eligible column by index. Slowest in
	// practice but immune to cycling; the other rules fall back to it
	// automatically after a run of degenerate pivots.
	PivotBland
	// PivotDevex scores columns by reduced cost weighted with dynamically
	// updated reference weights (Devex pricing, a practical approximation
	// of steepest edge). Usually the fewest pivots on larger models.
	PivotDevex
)

// String implements fmt.Stringer; the names double as the on-disk spelling
// used by flags and cache fingerprints.
func (r PivotRule) String() string {
	switch r {
	case PivotDantzig:
		return "dantzig"
	case PivotBland:
		return "bland"
	case PivotDevex:
		return "devex"
	default:
		return fmt.Sprintf("pivot(%d)", int(r))
	}
}

// ParsePivotRule is the inverse of String.
func ParsePivotRule(s string) (PivotRule, error) {
	switch s {
	case "dantzig", "":
		return PivotDantzig, nil
	case "bland":
		return PivotBland, nil
	case "devex":
		return PivotDevex, nil
	default:
		return 0, fmt.Errorf("lp: unknown pivot rule %q (want dantzig, bland or devex)", s)
	}
}

// PivotRules lists every rule, in a stable order, for benchmark harnesses.
func PivotRules() []PivotRule {
	return []PivotRule{PivotDantzig, PivotBland, PivotDevex}
}

// devexWeights returns the devex reference weights, lazily initialized to 1.
func (s *simplex) devexWeights() []float64 {
	if len(s.devexW) != s.n {
		s.devexW = make([]float64, s.n)
		for j := range s.devexW {
			s.devexW[j] = 1
		}
	}
	return s.devexW
}

// updateDevexWeights applies the Devex reference-weight update after a pivot
// with entering column enter whose normalized pivot row is prow and whose
// pivot element was 1/inv; leaving is the column that left the basis.
func (s *simplex) updateDevexWeights(enter, leaving int, prow []float64, inv float64) {
	w := s.devexWeights()
	wq := w[enter]
	for j := 0; j < s.n; j++ {
		if j == enter || s.status[j] == inBasis {
			continue
		}
		if a := prow[j]; a != 0 {
			if t := a * a * wq; t > w[j] {
				w[j] = t
			}
		}
	}
	wl := wq * inv * inv
	if wl < 1 {
		wl = 1
	}
	w[leaving] = wl
}
