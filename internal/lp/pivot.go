package lp

import "fmt"

// PivotRule selects the pricing rule of the primal simplex: how the entering
// column is chosen among those with a favourable reduced cost. Every rule is
// deterministic — given the same problem and options the pivot sequence is
// identical on every run — which is what lets the branch-and-bound layer
// promise byte-identical results at any worker count.
//
// The dual simplex (warm starts) is unaffected by the rule: its leaving row
// is the largest bound violation and its entering column is fixed by the
// dual ratio test.
type PivotRule int

const (
	// PivotDantzig picks the most negative reduced cost (textbook rule,
	// cheap per pivot, prone to long paths on degenerate models). Default.
	PivotDantzig PivotRule = iota
	// PivotBland picks the first eligible column by index. Slowest in
	// practice but immune to cycling; the other rules fall back to it
	// automatically after a run of degenerate pivots.
	PivotBland
	// PivotDevex scores columns by reduced cost weighted with dynamically
	// updated reference weights (Devex pricing, a practical approximation
	// of steepest edge). Usually the fewest pivots on larger models.
	PivotDevex
	// PivotSteepest is projected steepest-edge pricing in the Goldfarb–Reid
	// style: columns are scored by d²/γ where γ_j approximates
	// 1 + ‖B⁻¹·a_j‖², the squared norm of the edge direction. Unlike Devex,
	// the weights follow the exact steepest-edge recurrence
	// γ'_j = γ_j − 2·ᾱ_j·τ_j + ᾱ_j²·γ_q (with τ = Aᵀ·B⁻ᵀ·T_q supplied by an
	// extra BTRAN per pivot), started from the unit reference framework
	// γ = 1 rather than from exact initial norms. Fewest pivots on the
	// hardest degenerate models, at a higher cost per pivot.
	PivotSteepest
)

// String implements fmt.Stringer; the names double as the on-disk spelling
// used by flags and cache fingerprints.
func (r PivotRule) String() string {
	switch r {
	case PivotDantzig:
		return "dantzig"
	case PivotBland:
		return "bland"
	case PivotDevex:
		return "devex"
	case PivotSteepest:
		return "steepest"
	default:
		return fmt.Sprintf("pivot(%d)", int(r))
	}
}

// ParsePivotRule is the inverse of String.
func ParsePivotRule(s string) (PivotRule, error) {
	switch s {
	case "dantzig", "":
		return PivotDantzig, nil
	case "bland":
		return PivotBland, nil
	case "devex":
		return PivotDevex, nil
	case "steepest":
		return PivotSteepest, nil
	default:
		return 0, fmt.Errorf("lp: unknown pivot rule %q (want dantzig, bland, devex or steepest)", s)
	}
}

// PivotRules lists every rule, in a stable order, for benchmark harnesses.
func PivotRules() []PivotRule {
	return []PivotRule{PivotDantzig, PivotBland, PivotDevex, PivotSteepest}
}

// devexWeights returns the devex reference weights, lazily initialized to 1.
func (s *simplex) devexWeights() []float64 {
	if len(s.devexW) != s.n {
		s.devexW = make([]float64, s.n)
		for j := range s.devexW {
			s.devexW[j] = 1
		}
	}
	return s.devexW
}

// updateDevexWeights applies the Devex reference-weight update after a pivot
// with entering column enter whose normalized pivot row is prow and whose
// pivot element was 1/inv; leaving is the column that left the basis.
func (s *simplex) updateDevexWeights(enter, leaving int, prow []float64, inv float64) {
	w := s.devexWeights()
	wq := w[enter]
	for j := 0; j < s.n; j++ {
		if j == enter || s.status[j] == inBasis {
			continue
		}
		if a := prow[j]; a != 0 {
			if t := a * a * wq; t > w[j] {
				w[j] = t
			}
		}
	}
	wl := wq * inv * inv
	if wl < 1 {
		wl = 1
	}
	w[leaving] = wl
}

// steepestWeights returns the steepest-edge reference weights γ, lazily
// initialized to the unit framework γ = 1 (every column treated as if its
// edge had unit norm until a pivot touches it).
func (s *simplex) steepestWeights() []float64 {
	if len(s.steepW) != s.n {
		s.steepW = make([]float64, s.n)
		for j := range s.steepW {
			s.steepW[j] = 1
		}
	}
	return s.steepW
}

// updateSteepestWeights applies the exact steepest-edge recurrence after a
// pivot with entering column enter (tableau column alpha = T_q under the
// pre-pivot basis), normalized pivot row prow (so prow[j] = ᾱ_j) and pivot
// element 1/inv; leaving is the column that left the basis. It must run
// before the core installs the pivot: τ = Aᵀ·B⁻ᵀ·T_q reads the pre-pivot
// basis inverse.
func (s *simplex) updateSteepestWeights(enter, leaving int, alpha, prow []float64, inv float64) {
	w := s.steepestWeights()
	gq := w[enter]
	s.core.tau(alpha, s.tauBuf)
	for j := 0; j < s.n; j++ {
		if j == enter || s.status[j] == inBasis {
			continue
		}
		ab := prow[j]
		if ab == 0 {
			continue
		}
		g := w[j] - 2*ab*s.tauBuf[j] + ab*ab*gq
		// The exact γ_j is bounded below by 1 + ᾱ_j² (the edge contains the
		// entering row's unit contribution plus ᾱ_j along the pivot row);
		// clipping there absorbs cancellation in the three-term recurrence.
		if lb := 1 + ab*ab; g < lb {
			g = lb
		}
		w[j] = g
	}
	gl := gq * inv * inv
	if lb := 1 + inv*inv; gl < lb {
		gl = lb
	}
	w[leaving] = gl
}
