package benchharness

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/lp"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/tech"
)

func loadTwostage(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseFile(filepath.Join("..", "..", "..", "testdata", "twostage.rfic"))
	if err != nil {
		t.Fatalf("loading twostage fixture: %v", err)
	}
	return c
}

// miniCircuit mirrors pilp's full-flow determinism fixture: small enough
// that no solve ever hits a time limit (a binding limit is the one
// legitimate source of nondeterminism, which would void the byte-equality
// checks the harness makes).
func miniCircuit() *netlist.Circuit {
	c := netlist.NewCircuit("mini", tech.Default90nm(), geom.FromMicrons(420), geom.FromMicrons(320))
	d := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	d.AddPin("in", geom.PtMicrons(-20, 0), 0)
	d.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(d)
	cap := netlist.NewDevice("C1", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(30))
	cap.AddPin("p", geom.PtMicrons(0, -15), 0)
	c.AddDevice(cap)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(140))
	c.Connect("TL2", "M1", "out", "POUT", "p", geom.FromMicrons(150))
	c.Connect("TLC", "M1", "out", "C1", "p", geom.FromMicrons(80))
	return c
}

// TestCompareFullFlow runs the full matrix over the complete three-phase
// flow on the mini circuit: every cell must produce the byte-identical
// layout, the warm cells must actually warm-start, and no warm cell may
// spend more pivots than its cold baseline.
func TestCompareFullFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix of flow solves in -short mode")
	}
	rep, err := Compare(context.Background(), Config{
		Circuit: miniCircuit(),
		Options: pilp.Options{
			ChainPoints:         3,
			MaxChainPoints:      4,
			StripTimeLimit:      20 * time.Second,
			PhaseTimeLimit:      30 * time.Second,
			MaxRefineIterations: 1,
		},
		Workers: []int{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(lp.PivotRules()) * 2; len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
	}
	if ms := rep.Mismatches(); len(ms) > 0 {
		t.Errorf("layout mismatches across the matrix: %v", ms)
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		t.Errorf("warm pivot regressions: %v", regs)
	}
	var warmHits int
	for _, run := range rep.Runs {
		if run.Cold {
			if run.LP.WarmHits != 0 || run.LP.WarmMisses != 0 {
				t.Errorf("%s: cold run counted warm LPs: %+v", run.label(), run.LP)
			}
		} else {
			warmHits += run.LP.WarmHits
		}
	}
	if warmHits == 0 {
		t.Error("no warm-start hits in any warm cell")
	}
	if red := rep.PivotReduction(lp.PivotDantzig); red < 1 {
		t.Errorf("default-rule pivot reduction %.2fx, want >= 1x", red)
	}
	table := rep.Table()
	for _, want := range []string{"dantzig", "bland", "devex", "warm", "cold", "pivot reduction"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	t.Logf("\n%s", table)
}

// TestComparePhase1Twostage exercises the Phase1Only path on the repo's
// example netlist with a reduced matrix.
func TestComparePhase1Twostage(t *testing.T) {
	rep, err := Compare(context.Background(), Config{
		Circuit:    loadTwostage(t),
		Options:    pilp.Options{PhaseTimeLimit: 2 * time.Minute},
		Rules:      []lp.PivotRule{lp.PivotDantzig},
		Workers:    []int{1},
		Phase1Only: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(rep.Runs))
	}
	if ms := rep.Mismatches(); len(ms) > 0 {
		t.Errorf("warm and cold phase-1 layouts differ: %v", ms)
	}
	for _, run := range rep.Runs {
		if run.LP.Pivots == 0 {
			t.Errorf("%s: no pivots counted", run.label())
		}
	}
}

func TestCompareNoCircuit(t *testing.T) {
	if _, err := Compare(context.Background(), Config{}); err == nil {
		t.Fatal("expected an error for a nil circuit")
	}
}
