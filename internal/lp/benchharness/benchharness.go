// Package benchharness compares simplex configurations at the pivot level:
// it runs the progressive layout flow (or just its phase-1 adjustment) over
// a matrix of simplex cores × pivot rules × warm/cold LP modes × worker
// counts, collects the flow-wide effort counters each run reports, and
// checks the determinism contract — every cell of the matrix must produce
// the byte-identical layout. rficbench -lp-compare drives it to regenerate
// the warm-start speedup table, and CI runs it as the pivot-regression guard
// (a warm run spending more pivots than its cold baseline fails the
// comparison) and as the sparse-core wall-clock guard (the revised core must
// keep beating the dense tableau on time per pivot).
package benchharness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"rficlayout/internal/layout"
	"rficlayout/internal/lp"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Config selects what to compare.
type Config struct {
	// Circuit is the circuit every cell solves.
	Circuit *netlist.Circuit
	// Options is the base flow configuration; the harness overrides
	// PivotRule, ColdLP and Workers per cell. The byte-equality check
	// across the matrix assumes no solve hits its time limit — a binding
	// limit cuts the search at a wall-clock-dependent point, the one
	// legitimate source of nondeterminism — so give the circuit limits it
	// comfortably solves under, or restrict the comparison with Phase1Only.
	Options pilp.Options
	// Rules are the pivot rules to compare. Nil means all of lp.PivotRules().
	Rules []lp.PivotRule
	// Cores are the simplex basis-inverse engines to compare. Nil means just
	// the default sparse revised core; include lp.CoreDense for the
	// dense-vs-sparse wall-clock comparison.
	Cores []lp.Core
	// Workers are the flow worker counts to compare. Nil means {1, 4}.
	Workers []int
	// Phase1Only restricts each cell to pilp.AdjustPhase1 — the one large
	// branch-and-bound solve of the flow — instead of the full three-phase
	// flow. The comparison runs 2·|Rules|·|Workers| solves, so this is what
	// keeps the large synthetic circuit affordable.
	Phase1Only bool
}

func (c Config) rules() []lp.PivotRule {
	if len(c.Rules) > 0 {
		return c.Rules
	}
	return lp.PivotRules()
}

func (c Config) cores() []lp.Core {
	if len(c.Cores) > 0 {
		return c.Cores
	}
	return []lp.Core{lp.CoreSparse}
}

func (c Config) workers() []int {
	if len(c.Workers) > 0 {
		return c.Workers
	}
	return []int{1, 4}
}

// Run is the outcome of one cell of the comparison matrix.
type Run struct {
	Rule    lp.PivotRule
	Core    lp.Core
	Cold    bool
	Workers int
	// LP and Nodes are the flow's deterministic effort counters; Runtime is
	// wall-clock and therefore informational only.
	LP      pilp.LPStats
	Nodes   int
	Runtime time.Duration
	// Layout is the formatted layout text, the byte-equality witness.
	Layout string
}

func (r Run) mode() string {
	if r.Cold {
		return "cold"
	}
	return "warm"
}

func (r Run) label() string {
	return fmt.Sprintf("%s/%s/%s/w%d", r.Core, r.Rule, r.mode(), r.Workers)
}

// NsPerPivot is the cell's wall-clock nanoseconds per simplex pivot — the
// quantity the dense-vs-sparse comparison guards. Zero when no pivots ran.
func (r Run) NsPerPivot() float64 {
	if r.LP.Pivots == 0 {
		return 0
	}
	return float64(r.Runtime.Nanoseconds()) / float64(r.LP.Pivots)
}

// Report is the full comparison outcome.
type Report struct {
	Circuit string
	Runs    []Run
}

// Compare runs the matrix sequentially (each cell owns its configured worker
// count) and returns every cell's counters. Cells run in a fixed order —
// core-major, then rule-major, then cold before warm, then ascending
// workers — so the JSONL records downstream tools fold stay stably ordered
// run over run.
func Compare(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Circuit == nil {
		return nil, fmt.Errorf("benchharness: no circuit")
	}
	rep := &Report{Circuit: cfg.Circuit.Name}
	for _, core := range cfg.cores() {
		for _, rule := range cfg.rules() {
			for _, cold := range []bool{true, false} {
				for _, workers := range cfg.workers() {
					opts := cfg.Options
					opts.PivotRule = rule
					opts.LPCore = core
					opts.ColdLP = cold
					opts.Workers = workers
					run := Run{Rule: rule, Core: core, Cold: cold, Workers: workers}
					if cfg.Phase1Only {
						res, err := pilp.AdjustPhase1(ctx, cfg.Circuit, opts)
						if err != nil {
							return nil, fmt.Errorf("benchharness: %s: %w", run.label(), err)
						}
						run.LP, run.Nodes, run.Runtime = res.LP, res.Nodes, res.Runtime
						run.Layout = layout.Format(res.Layout)
					} else {
						res, err := pilp.GenerateCtx(ctx, cfg.Circuit, opts)
						if err != nil {
							return nil, fmt.Errorf("benchharness: %s: %w", run.label(), err)
						}
						run.LP, run.Nodes, run.Runtime = res.LP, res.Nodes, res.Runtime
						run.Layout = layout.Format(res.Layout)
					}
					rep.Runs = append(rep.Runs, run)
				}
			}
		}
	}
	return rep, nil
}

// Mismatches returns one message per run whose layout differs from the first
// run's — empty when the determinism contract held across the whole matrix.
func (r *Report) Mismatches() []string {
	if len(r.Runs) == 0 {
		return nil
	}
	ref := r.Runs[0]
	var out []string
	for _, run := range r.Runs[1:] {
		if run.Layout != ref.Layout {
			out = append(out, fmt.Sprintf("%s differs from %s", run.label(), ref.label()))
		}
	}
	return out
}

// PivotReduction returns cold-pivots / warm-pivots for the given rule,
// summed across worker counts — the warm-start speedup the comparison
// exists to measure. Zero when the rule has no runs or spent no warm pivots.
func (r *Report) PivotReduction(rule lp.PivotRule) float64 {
	var warm, cold int
	for _, run := range r.Runs {
		if run.Rule != rule {
			continue
		}
		if run.Cold {
			cold += run.LP.Pivots
		} else {
			warm += run.LP.Pivots
		}
	}
	if warm == 0 {
		return 0
	}
	return float64(cold) / float64(warm)
}

// Regressions returns one message per (core, rule, workers) triple whose
// warm run spent more pivots than its cold counterpart — the condition the
// CI guard fails on. Warm starts may at worst tie cold (every warm LP falls
// back to the cold path); spending extra pivots means the dual simplex is
// burning work without converging faster.
func (r *Report) Regressions() []string {
	type cell struct {
		core    lp.Core
		rule    lp.PivotRule
		workers int
	}
	cold := map[cell]int{}
	for _, run := range r.Runs {
		if run.Cold {
			cold[cell{run.Core, run.Rule, run.Workers}] = run.LP.Pivots
		}
	}
	var out []string
	for _, run := range r.Runs {
		if run.Cold {
			continue
		}
		if c, ok := cold[cell{run.Core, run.Rule, run.Workers}]; ok && run.LP.Pivots > c {
			out = append(out, fmt.Sprintf("%s spent %d pivots, cold baseline %d", run.label(), run.LP.Pivots, c))
		}
	}
	sort.Strings(out)
	return out
}

// PivotTimeReduction returns the dense core's wall-clock nanoseconds per
// pivot divided by the sparse core's, aggregated across every run of each
// core (runtimes and pivots summed before dividing, so long cells dominate).
// This is the headline number of the revised-simplex rewrite — how much
// cheaper one pivot became — and the quantity the CI floor guards. Zero when
// either core is missing from the matrix or spent no pivots.
func (r *Report) PivotTimeReduction() float64 {
	var sparseNs, denseNs int64
	var sparsePivots, densePivots int
	for _, run := range r.Runs {
		switch run.Core {
		case lp.CoreSparse:
			sparseNs += run.Runtime.Nanoseconds()
			sparsePivots += run.LP.Pivots
		case lp.CoreDense:
			denseNs += run.Runtime.Nanoseconds()
			densePivots += run.LP.Pivots
		}
	}
	if sparsePivots == 0 || densePivots == 0 || sparseNs == 0 {
		return 0
	}
	sparse := float64(sparseNs) / float64(sparsePivots)
	dense := float64(denseNs) / float64(densePivots)
	return dense / sparse
}

// Table renders the comparison as an aligned text table, one row per run.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lp-compare: %s\n", r.Circuit)
	fmt.Fprintf(&b, "%-7s %-8s %-5s %-7s %9s %7s %7s %9s %7s %7s %8s %7s %10s %9s\n",
		"core", "rule", "mode", "workers", "pivots", "refacts", "peaketa", "warmhits", "misses", "cold", "hitrate", "nodes", "runtime", "ns/pivot")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-7s %-8s %-5s %-7d %9d %7d %7d %9d %7d %7d %7.1f%% %7d %10s %9.0f\n",
			run.Core, run.Rule, run.mode(), run.Workers,
			run.LP.Pivots, run.LP.Refactorizations, run.LP.PeakEta,
			run.LP.WarmHits, run.LP.WarmMisses, run.LP.ColdSolves,
			100*run.LP.WarmHitRate(), run.Nodes, run.Runtime.Round(time.Millisecond),
			run.NsPerPivot())
	}
	for _, rule := range r.rulesSeen() {
		if red := r.PivotReduction(rule); red > 0 {
			fmt.Fprintf(&b, "lp-compare: %s warm-start pivot reduction %.2fx\n", rule, red)
		}
	}
	if red := r.PivotTimeReduction(); red > 0 {
		fmt.Fprintf(&b, "lp-compare: sparse-core pivot-time reduction %.2fx vs dense\n", red)
	}
	return b.String()
}

func (r *Report) rulesSeen() []lp.PivotRule {
	seen := map[lp.PivotRule]bool{}
	var out []lp.PivotRule
	for _, run := range r.Runs {
		if !seen[run.Rule] {
			seen[run.Rule] = true
			out = append(out, run.Rule)
		}
	}
	return out
}
