package lp

import (
	"math"
	"math/rand"
	"testing"
)

// branchProblem is a small MILP-relaxation-shaped LP used by the warm-start
// tests: the optimum moves when a bound tightens, like a branch-and-bound
// child node.
func branchProblem() *Problem {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, -3)
	y := p.AddVariable("y", 0, 10, -2)
	z := p.AddVariable("z", 0, 10, -4)
	p.AddConstraint("c1", []Entry{{x, 1}, {y, 1}, {z, 1}}, LE, 12)
	p.AddConstraint("c2", []Entry{{x, 2}, {y, 1}}, LE, 14)
	p.AddConstraint("c3", []Entry{{y, 1}, {z, 3}}, LE, 15)
	return p
}

func TestWarmStartMatchesColdAfterBoundChange(t *testing.T) {
	p := branchProblem()
	root := solveOrFatal(t, p, Options{})
	if root.Status != StatusOptimal {
		t.Fatalf("root status = %v", root.Status)
	}
	if root.Basis == nil {
		t.Fatal("optimal solve exported no basis")
	}
	if root.WarmStarted {
		t.Error("cold solve reported WarmStarted")
	}

	// Branch: tighten x like a floor/ceil split would.
	for _, ov := range []Options{
		{UpperOverride: map[int]float64{0: 2}},
		{LowerOverride: map[int]float64{0: 4}},
		{UpperOverride: map[int]float64{1: 3}, LowerOverride: map[int]float64{0: 1}},
	} {
		cold := solveOrFatal(t, p, ov)
		warmOpts := ov
		warmOpts.WarmBasis = root.Basis
		warm := solveOrFatal(t, p, warmOpts)
		if !warm.WarmStarted {
			t.Errorf("%+v: warm basis rejected", ov)
		}
		if warm.Status != cold.Status {
			t.Fatalf("%+v: warm status %v != cold %v", ov, warm.Status, cold.Status)
		}
		if !approx(warm.Objective, cold.Objective) {
			t.Errorf("%+v: warm objective %g != cold %g", ov, warm.Objective, cold.Objective)
		}
		for j := range cold.X {
			if warm.X[j] != cold.X[j] {
				t.Errorf("%+v: X[%d]: warm %v != cold %v", ov, j, warm.X[j], cold.X[j])
			}
		}
		checkFeasible(t, p, warm.X)
	}
}

func TestWarmStartDetectsInfeasibleChild(t *testing.T) {
	p := branchProblem()
	root := solveOrFatal(t, p, Options{})
	// x + y + z <= 12 makes lower bounds summing past 12 infeasible.
	sol := solveOrFatal(t, p, Options{
		LowerOverride: map[int]float64{0: 6, 1: 5, 2: 4},
		WarmBasis:     root.Basis,
	})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestWarmStartContradictoryBounds(t *testing.T) {
	p := branchProblem()
	root := solveOrFatal(t, p, Options{})
	sol := solveOrFatal(t, p, Options{
		LowerOverride: map[int]float64{0: 7},
		UpperOverride: map[int]float64{0: 3},
		WarmBasis:     root.Basis,
	})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.WarmStarted {
		t.Error("trivially infeasible subproblem reported WarmStarted")
	}
}

func TestStaleBasisFallsBackCold(t *testing.T) {
	p := branchProblem()
	// A basis from a different problem shape must be rejected, not crash.
	other := NewProblem()
	other.AddVariable("a", 0, 1, 1)
	other.AddConstraint("c", []Entry{{0, 1}}, LE, 1)
	osol := solveOrFatal(t, other, Options{})
	if osol.Basis == nil {
		t.Fatal("no basis from helper problem")
	}
	sol := solveOrFatal(t, p, Options{WarmBasis: osol.Basis})
	if sol.WarmStarted {
		t.Error("incompatible basis accepted")
	}
	cold := solveOrFatal(t, p, Options{})
	if !approx(sol.Objective, cold.Objective) {
		t.Errorf("fallback objective %g != cold %g", sol.Objective, cold.Objective)
	}
}

func TestWarmStartSkipsPhase1Work(t *testing.T) {
	// A problem that needs phase-1 artificials cold: equality constraints.
	p := NewProblem()
	x := p.AddVariable("x", 0, 20, 1)
	y := p.AddVariable("y", 0, 20, 2)
	z := p.AddVariable("z", 0, 20, 3)
	p.AddConstraint("s", []Entry{{x, 1}, {y, 1}, {z, 1}}, EQ, 18)
	p.AddConstraint("d", []Entry{{x, 1}, {y, -1}}, GE, 2)
	root := solveOrFatal(t, p, Options{})
	if root.Basis == nil {
		t.Fatal("no root basis")
	}
	warm := solveOrFatal(t, p, Options{
		UpperOverride: map[int]float64{0: 9},
		WarmBasis:     root.Basis,
	})
	cold := solveOrFatal(t, p, Options{UpperOverride: map[int]float64{0: 9}})
	if !warm.WarmStarted {
		t.Fatal("warm basis rejected")
	}
	if warm.Status != StatusOptimal || !approx(warm.Objective, cold.Objective) {
		t.Fatalf("warm %v/%g vs cold %v/%g", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
	if warm.Iterations >= cold.Iterations+root.Iterations {
		t.Errorf("warm start saved nothing: warm %d pivots, cold %d", warm.Iterations, cold.Iterations)
	}
}

// TestPivotRulesOnDegenerateLP is the satellite table test: every pricing
// rule must reach the documented optimum of a degenerate LP (the Beale
// cycling example plus a flat-objective face) and, thanks to the
// lexicographic canonicalization pass, the exact same vertex.
func TestPivotRulesOnDegenerateLP(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
		obj   float64
	}{
		{
			// Beale's cycling example; optimum -0.05 at z = 1.
			name: "beale",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddVariable("x", 0, Infinity, -0.75)
				y := p.AddVariable("y", 0, Infinity, 150)
				z := p.AddVariable("z", 0, Infinity, -0.02)
				w := p.AddVariable("w", 0, Infinity, 6)
				p.AddConstraint("r1", []Entry{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, LE, 0)
				p.AddConstraint("r2", []Entry{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, LE, 0)
				p.AddConstraint("r3", []Entry{{z, 1}}, LE, 1)
				return p
			},
			obj: -0.05,
		},
		{
			// min -(x+y) on x+y <= 4 with 0 <= x,y <= 4: the whole segment
			// x+y=4 is optimal; the canonical vertex is the lex-least one,
			// x=0, y=4.
			name: "flat-face",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddVariable("x", 0, 4, -1)
				y := p.AddVariable("y", 0, 4, -1)
				p.AddConstraint("cap", []Entry{{x, 1}, {y, 1}}, LE, 4)
				return p
			},
			obj: -4,
		},
		{
			// Degenerate transportation corner: supply equals demand, many
			// alternate optimal bases.
			name: "transport",
			build: func() *Problem {
				p := NewProblem()
				costs := []float64{2, 3, 1, 5, 4, 8}
				for _, c := range costs {
					p.AddVariable("t", 0, Infinity, c)
				}
				p.AddConstraint("s0", []Entry{{0, 1}, {1, 1}, {2, 1}}, LE, 20)
				p.AddConstraint("s1", []Entry{{3, 1}, {4, 1}, {5, 1}}, LE, 30)
				p.AddConstraint("d0", []Entry{{0, 1}, {3, 1}}, GE, 10)
				p.AddConstraint("d1", []Entry{{1, 1}, {4, 1}}, GE, 25)
				p.AddConstraint("d2", []Entry{{2, 1}, {5, 1}}, GE, 15)
				return p
			},
			obj: 150,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []float64
			for _, rule := range PivotRules() {
				p := tc.build()
				sol := solveOrFatal(t, p, Options{Pivot: rule})
				if sol.Status != StatusOptimal {
					t.Fatalf("%v: status %v", rule, sol.Status)
				}
				if !approx(sol.Objective, tc.obj) {
					t.Errorf("%v: objective %g, want %g", rule, sol.Objective, tc.obj)
				}
				checkFeasible(t, p, sol.X)
				// Same rule twice: bit-identical (determinism).
				again := solveOrFatal(t, tc.build(), Options{Pivot: rule})
				for j := range sol.X {
					if sol.X[j] != again.X[j] {
						t.Errorf("%v: rerun X[%d] %v != %v", rule, j, again.X[j], sol.X[j])
					}
				}
				// Across rules: the canonicalized vertex is rule-independent.
				if ref == nil {
					ref = sol.X
					continue
				}
				for j := range sol.X {
					if sol.X[j] != ref[j] {
						t.Errorf("%v: X[%d] = %v, dantzig got %v", rule, j, sol.X[j], ref[j])
					}
				}
			}
		})
	}
}

func TestFlatFaceCanonicalVertex(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 4, -1)
	y := p.AddVariable("y", 0, 4, -1)
	p.AddConstraint("cap", []Entry{{x, 1}, {y, 1}}, LE, 4)
	sol := solveOrFatal(t, p, Options{})
	if !approx(sol.Value(x), 0) || !approx(sol.Value(y), 4) {
		t.Errorf("canonical vertex (%g, %g), want lex-least (0, 4)", sol.Value(x), sol.Value(y))
	}
}

// TestWarmColdBitIdentical is the core determinism property behind the MILP
// layer's warm/cold byte-identity contract: solving a child problem from the
// parent basis returns the exact float64 vector of the cold solve.
func TestWarmColdBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(8)
		p, _ := randomFeasibleLP(rng, nVars, 1+rng.Intn(10))
		root, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if root.Status != StatusOptimal || root.Basis == nil {
			continue
		}
		// Simulated branch: tighten one variable's bound toward the middle.
		j := rng.Intn(nVars)
		v := p.Variables[j]
		mid := math.Floor((v.Lower + v.Upper) / 2)
		ov := Options{}
		if rng.Intn(2) == 0 {
			ov.UpperOverride = map[int]float64{j: mid}
		} else {
			ov.LowerOverride = map[int]float64{j: mid}
		}
		cold, err := Solve(p, ov)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		warmOpts := ov
		warmOpts.WarmBasis = root.Basis
		warm, err := Solve(p, warmOpts)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm %v != cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		for k := range cold.X {
			if warm.X[k] != cold.X[k] {
				t.Errorf("trial %d: X[%d] warm %v != cold %v (warmStarted=%v)",
					trial, k, warm.X[k], cold.X[k], warm.WarmStarted)
			}
		}
	}
}

func TestParsePivotRule(t *testing.T) {
	for _, rule := range PivotRules() {
		got, err := ParsePivotRule(rule.String())
		if err != nil || got != rule {
			t.Errorf("ParsePivotRule(%q) = %v, %v", rule.String(), got, err)
		}
	}
	if _, err := ParsePivotRule("steepest-descent"); err == nil {
		t.Error("unknown rule accepted")
	}
	if r, err := ParsePivotRule(""); err != nil || r != PivotDantzig {
		t.Errorf("empty rule: %v, %v", r, err)
	}
}

func TestRefactorizationCounter(t *testing.T) {
	p := branchProblem()
	sol := solveOrFatal(t, p, Options{})
	if sol.Refactorizations < 1 {
		t.Errorf("optimal solve reports %d refactorizations, want >= 1 (final canonical rebuild)", sol.Refactorizations)
	}
	warm := solveOrFatal(t, p, Options{UpperOverride: map[int]float64{0: 2}, WarmBasis: sol.Basis})
	if warm.WarmStarted && warm.Refactorizations < 2 {
		t.Errorf("warm solve reports %d refactorizations, want >= 2 (install + final)", warm.Refactorizations)
	}
}
