package lp

import "math"

// BasisStatus is the role of one column in an exported Basis.
type BasisStatus int8

// Column roles. Nonbasic columns sit at one of their bounds (or at zero when
// free); basic columns take whatever value satisfies the constraints.
const (
	BasisAtLower BasisStatus = iota
	BasisAtUpper
	BasisFree
	BasisBasic
)

// Basis is a snapshot of a simplex basis, detached from any solver state: the
// basic column of every tableau row plus the status of every column. Columns
// are the problem's structural variables followed by one slack per
// constraint; artificial columns never appear (a solve whose optimal basis
// still contains an artificial exports no basis at all).
//
// A Basis exported from one solve can warm-start another solve of the same
// problem through Options.WarmBasis, as long as only bounds changed — which
// is exactly the shape of a branch-and-bound child node. The solver treats an
// imported Basis as read-only, so one Basis may seed many concurrent solves.
type Basis struct {
	Basic  []int32       // basic column per row, len == number of constraints
	Status []BasisStatus // per column, len == variables + constraints
}

// compatible reports whether the basis dimensions match a problem with m
// constraints and nStruct structural variables, every basic column is in
// range and marked basic, no column is basic twice, and exactly the basic
// columns carry BasisBasic.
func (b *Basis) compatible(m, nStruct int) bool {
	if b == nil || len(b.Basic) != m || len(b.Status) != nStruct+m {
		return false
	}
	basicStatuses := 0
	for _, st := range b.Status {
		if st == BasisBasic {
			basicStatuses++
		}
	}
	if basicStatuses != m {
		return false
	}
	seen := make([]bool, nStruct+m)
	for _, c := range b.Basic {
		if c < 0 || int(c) >= nStruct+m || seen[c] || b.Status[c] != BasisBasic {
			return false
		}
		seen[c] = true
	}
	return true
}

// exportBasis snapshots the current basis, or returns nil when an artificial
// column is still basic (a child solve could not reconstruct it).
func (s *simplex) exportBasis() *Basis {
	for _, j := range s.basis {
		if j >= s.artStart {
			return nil
		}
	}
	b := &Basis{
		Basic:  make([]int32, s.m),
		Status: make([]BasisStatus, s.nStruct+s.m),
	}
	for i, j := range s.basis {
		b.Basic[i] = int32(j)
	}
	for j := 0; j < s.nStruct+s.m; j++ {
		switch s.status[j] {
		case atLower:
			b.Status[j] = BasisAtLower
		case atUpper:
			b.Status[j] = BasisAtUpper
		case atFree:
			b.Status[j] = BasisFree
		case inBasis:
			b.Status[j] = BasisBasic
		}
	}
	return b
}

// installBasis loads an exported basis into a freshly constructed solver
// (newSimplexBase state: bounds and costs set, no artificials). It returns
// false — leaving the solver unusable — when the basis does not fit the
// problem, its basis matrix is singular under the deterministic
// refactorization, or the resulting reduced costs are not dual-feasible; the
// caller then falls back to a cold primal solve.
func (s *simplex) installBasis(b *Basis) bool {
	if !b.compatible(s.m, s.nStruct) {
		return false
	}
	s.basis = make([]int, s.m)
	for i, c := range b.Basic {
		s.basis[i] = int(c)
	}
	for j := 0; j < s.n; j++ {
		var st varStatus
		switch b.Status[j] {
		case BasisAtLower:
			st = atLower
		case BasisAtUpper:
			st = atUpper
		case BasisFree:
			st = atFree
		case BasisBasic:
			st = inBasis
		default:
			return false
		}
		s.status[j] = st
		if st != inBasis {
			s.status[j] = s.normalizeNonbasic(j, st)
		}
	}
	// A warm start never has artificial columns, so the column set is final
	// and the core can be stood up here.
	s.initCore()
	if !s.refactorize() {
		return false
	}
	s.computeReducedCosts()
	return s.dualFeasible()
}

// normalizeNonbasic reconciles an imported nonbasic status with the current
// bounds: a bound the status refers to may have become infinite (or the
// variable fixed) relative to the exporting solve.
func (s *simplex) normalizeNonbasic(j int, st varStatus) varStatus {
	lo, up := s.lower[j], s.upper[j]
	if lo == up {
		return atLower
	}
	loInf := math.IsInf(lo, -1)
	upInf := math.IsInf(up, 1)
	switch st {
	case atLower:
		if loInf {
			if upInf {
				return atFree
			}
			return atUpper
		}
	case atUpper:
		if upInf {
			if loInf {
				return atFree
			}
			return atLower
		}
	case atFree:
		if !loInf || !upInf {
			return initialStatus(lo, up)
		}
	}
	return st
}

// dualFeasible reports whether the phase-2 reduced costs respect the sign
// conditions of every nonbasic column. The tolerance is looser than the
// pivoting tolerance because an imported basis was optimal under bit-
// different arithmetic.
func (s *simplex) dualFeasible() bool {
	tol := 10 * s.tol
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis || s.lower[j] == s.upper[j] {
			continue
		}
		d := s.reduced[j]
		switch s.status[j] {
		case atLower:
			if d < -tol {
				return false
			}
		case atUpper:
			if d > tol {
				return false
			}
		case atFree:
			if math.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// rawRow writes the unfactorized constraint row i — structural coefficients,
// the +1 slack, and any artificial columns of that row — into dst, which must
// be zeroed and of length s.n.
func (s *simplex) rawRow(i int, dst []float64) {
	for _, e := range s.prob.Constraints[i].Row {
		dst[e.Var] += e.Coef
	}
	dst[s.nStruct+i] = 1
	for k, r := range s.artRow {
		if r == i {
			dst[s.artStart+k] = s.artSign[k]
		}
	}
}
