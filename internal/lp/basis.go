package lp

import "math"

// BasisStatus is the role of one column in an exported Basis.
type BasisStatus int8

// Column roles. Nonbasic columns sit at one of their bounds (or at zero when
// free); basic columns take whatever value satisfies the constraints.
const (
	BasisAtLower BasisStatus = iota
	BasisAtUpper
	BasisFree
	BasisBasic
)

// Basis is a snapshot of a simplex basis, detached from any solver state: the
// basic column of every tableau row plus the status of every column. Columns
// are the problem's structural variables followed by one slack per
// constraint; artificial columns never appear (a solve whose optimal basis
// still contains an artificial exports no basis at all).
//
// A Basis exported from one solve can warm-start another solve of the same
// problem through Options.WarmBasis, as long as only bounds changed — which
// is exactly the shape of a branch-and-bound child node. The solver treats an
// imported Basis as read-only, so one Basis may seed many concurrent solves.
type Basis struct {
	Basic  []int32       // basic column per row, len == number of constraints
	Status []BasisStatus // per column, len == variables + constraints
}

// compatible reports whether the basis dimensions match a problem with m
// constraints and nStruct structural variables, every basic column is in
// range and marked basic, no column is basic twice, and exactly the basic
// columns carry BasisBasic.
func (b *Basis) compatible(m, nStruct int) bool {
	if b == nil || len(b.Basic) != m || len(b.Status) != nStruct+m {
		return false
	}
	basicStatuses := 0
	for _, st := range b.Status {
		if st == BasisBasic {
			basicStatuses++
		}
	}
	if basicStatuses != m {
		return false
	}
	seen := make([]bool, nStruct+m)
	for _, c := range b.Basic {
		if c < 0 || int(c) >= nStruct+m || seen[c] || b.Status[c] != BasisBasic {
			return false
		}
		seen[c] = true
	}
	return true
}

// exportBasis snapshots the current basis, or returns nil when an artificial
// column is still basic (a child solve could not reconstruct it).
func (s *simplex) exportBasis() *Basis {
	for _, j := range s.basis {
		if j >= s.artStart {
			return nil
		}
	}
	b := &Basis{
		Basic:  make([]int32, s.m),
		Status: make([]BasisStatus, s.nStruct+s.m),
	}
	for i, j := range s.basis {
		b.Basic[i] = int32(j)
	}
	for j := 0; j < s.nStruct+s.m; j++ {
		switch s.status[j] {
		case atLower:
			b.Status[j] = BasisAtLower
		case atUpper:
			b.Status[j] = BasisAtUpper
		case atFree:
			b.Status[j] = BasisFree
		case inBasis:
			b.Status[j] = BasisBasic
		}
	}
	return b
}

// installBasis loads an exported basis into a freshly constructed solver
// (newSimplexBase state: bounds and costs set, no artificials). It returns
// false — leaving the solver unusable — when the basis does not fit the
// problem, its basis matrix is singular under the deterministic
// refactorization, or the resulting reduced costs are not dual-feasible; the
// caller then falls back to a cold primal solve.
func (s *simplex) installBasis(b *Basis) bool {
	if !b.compatible(s.m, s.nStruct) {
		return false
	}
	s.basis = make([]int, s.m)
	for i, c := range b.Basic {
		s.basis[i] = int(c)
	}
	for j := 0; j < s.n; j++ {
		var st varStatus
		switch b.Status[j] {
		case BasisAtLower:
			st = atLower
		case BasisAtUpper:
			st = atUpper
		case BasisFree:
			st = atFree
		case BasisBasic:
			st = inBasis
		default:
			return false
		}
		s.status[j] = st
		if st != inBasis {
			s.status[j] = s.normalizeNonbasic(j, st)
		}
	}
	if !s.refactorize() {
		return false
	}
	s.computeReducedCosts()
	return s.dualFeasible()
}

// normalizeNonbasic reconciles an imported nonbasic status with the current
// bounds: a bound the status refers to may have become infinite (or the
// variable fixed) relative to the exporting solve.
func (s *simplex) normalizeNonbasic(j int, st varStatus) varStatus {
	lo, up := s.lower[j], s.upper[j]
	if lo == up {
		return atLower
	}
	loInf := math.IsInf(lo, -1)
	upInf := math.IsInf(up, 1)
	switch st {
	case atLower:
		if loInf {
			if upInf {
				return atFree
			}
			return atUpper
		}
	case atUpper:
		if upInf {
			if loInf {
				return atFree
			}
			return atLower
		}
	case atFree:
		if !loInf || !upInf {
			return initialStatus(lo, up)
		}
	}
	return st
}

// dualFeasible reports whether the phase-2 reduced costs respect the sign
// conditions of every nonbasic column. The tolerance is looser than the
// pivoting tolerance because an imported basis was optimal under bit-
// different arithmetic.
func (s *simplex) dualFeasible() bool {
	tol := 10 * s.tol
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis || s.lower[j] == s.upper[j] {
			continue
		}
		d := s.reduced[j]
		switch s.status[j] {
		case atLower:
			if d < -tol {
				return false
			}
		case atUpper:
			if d > tol {
				return false
			}
		case atFree:
			if math.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// rawRow writes the unfactorized constraint row i — structural coefficients,
// the +1 slack, and any artificial columns of that row — into dst, which must
// be zeroed and of length s.n.
func (s *simplex) rawRow(i int, dst []float64) {
	for _, e := range s.prob.Constraints[i].Row {
		dst[e.Var] += e.Coef
	}
	dst[s.nStruct+i] = 1
	for k, r := range s.artRow {
		if r == i {
			dst[s.artStart+k] = s.artSign[k]
		}
	}
}

// refactorize rebuilds the tableau T = B⁻¹·A and the basic values from the
// raw problem data and the current basic set, discarding all floating-point
// error accumulated by incremental pivoting. The elimination order — unit
// columns (slacks, artificials) pivot first at their home rows, then
// structural columns in ascending index order with partial pivoting over the
// unassigned rows — depends only on the basic set, so two solves that reach
// the same basis through different pivot paths end with bit-identical state.
// Returns false when the basis matrix is singular.
func (s *simplex) refactorize() bool {
	const pivTol = 1e-9
	m, n := s.m, s.n
	basicSet := make([]bool, n)
	for _, j := range s.basis {
		basicSet[j] = true
	}
	W := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		W[i] = make([]float64, n)
		s.rawRow(i, W[i])
		acc := 0.0
		for j, a := range W[i] {
			if a != 0 && !basicSet[j] {
				acc += a * s.nonbasicValue(j)
			}
		}
		rhs[i] = s.prob.Constraints[i].RHS - acc
	}

	cols := make([]int, 0, m)
	for j := 0; j < n; j++ {
		if basicSet[j] {
			cols = append(cols, j)
		}
	}
	assigned := make([]bool, m)
	newBasis := make([]int, m)
	// eliminate pivots column c in row home; callers have checked that the
	// pivot element is well away from zero.
	eliminate := func(c, home int) {
		inv := 1 / W[home][c]
		prow := W[home]
		for j := 0; j < n; j++ {
			prow[j] *= inv
		}
		prow[c] = 1
		rhs[home] *= inv
		for r := 0; r < m; r++ {
			if r == home {
				continue
			}
			f := W[r][c]
			if f == 0 {
				continue
			}
			row := W[r]
			for j := 0; j < n; j++ {
				row[j] -= f * prow[j]
			}
			row[c] = 0
			rhs[r] -= f * rhs[home]
		}
		assigned[home] = true
		newBasis[home] = c
	}

	// Unit columns: a slack or artificial is ±1 in its home row and zero
	// elsewhere, so it can only pivot there (and the elimination loop finds
	// nothing to do for a still-raw column).
	for _, c := range cols {
		if c < s.nStruct {
			continue
		}
		home := c - s.nStruct
		if c >= s.artStart {
			home = s.artRow[c-s.artStart]
		}
		if assigned[home] || math.Abs(W[home][c]) < pivTol {
			return false
		}
		eliminate(c, home)
	}
	// Structural columns take the remaining rows by partial pivoting.
	for _, c := range cols {
		if c >= s.nStruct {
			continue
		}
		best, bestAbs := -1, pivTol
		for r := 0; r < m; r++ {
			if assigned[r] {
				continue
			}
			if a := math.Abs(W[r][c]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return false
		}
		eliminate(c, best)
	}

	s.tableau = W
	s.beta = rhs
	s.basis = newBasis
	s.refactorizations++
	return true
}
