package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const testTol = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-5*(1+math.Abs(b)) }

func solveOrFatal(t *testing.T, p *Problem, opts Options) *Solution {
	t.Helper()
	sol, err := Solve(p, opts)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return sol
}

// checkFeasible verifies that x satisfies all constraints and bounds of p
// within tolerance.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for j, v := range p.Variables {
		if x[j] < v.Lower-testTol || x[j] > v.Upper+testTol {
			t.Errorf("variable %d (%q) = %g violates bounds [%g, %g]", j, v.Name, x[j], v.Lower, v.Upper)
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for _, e := range c.Row {
			lhs += e.Coef * x[e.Var]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+testTol {
				t.Errorf("constraint %d (%q): %g <= %g violated", i, c.Name, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-testTol {
				t.Errorf("constraint %d (%q): %g >= %g violated", i, c.Name, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > testTol {
				t.Errorf("constraint %d (%q): %g == %g violated", i, c.Name, lhs, c.RHS)
			}
		}
	}
}

func TestSimpleMaximizationAsMinimization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
	// (classic Dantzig example; optimum x=2, y=6, obj=36)
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, -3)
	y := p.AddVariable("y", 0, Infinity, -5)
	p.AddConstraint("c1", []Entry{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Entry{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Entry{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -36) {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if !approx(sol.Value(x), 2) || !approx(sol.Value(y), 6) {
		t.Errorf("x=%g y=%g, want 2, 6", sol.Value(x), sol.Value(y))
	}
	checkFeasible(t, p, sol.X)
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3, y >= 2  → x=8, y=2, obj=12
	p := NewProblem()
	x := p.AddVariable("x", 3, Infinity, 1)
	y := p.AddVariable("y", 2, Infinity, 2)
	p.AddConstraint("sum", []Entry{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 12) {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestGEConstraintsNeedPhase1(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x - y >= -5, x,y >= 0
	// optimum: y as large as allowed relative to x... check: cost favors x
	// (2 < 3), so push x: x=10, y=0 satisfies x-y=10 >= -5. obj=20.
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, 2)
	y := p.AddVariable("y", 0, Infinity, 3)
	p.AddConstraint("c1", []Entry{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint("c2", []Entry{{x, 1}, {y, -1}}, GE, -5)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 20) {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestUpperBoundedVariables(t *testing.T) {
	// min -x - y s.t. x + y <= 8, 0 <= x <= 3, 0 <= y <= 4  → x=3, y=4, obj=-7
	p := NewProblem()
	x := p.AddVariable("x", 0, 3, -1)
	y := p.AddVariable("y", 0, 4, -1)
	p.AddConstraint("cap", []Entry{{x, 1}, {y, 1}}, LE, 8)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -7) {
		t.Errorf("objective = %g, want -7", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestBindingUpperBoundThroughConstraint(t *testing.T) {
	// min -x - y s.t. x + y <= 5, 0 <= x <= 3, 0 <= y <= 4 → obj=-5 (constraint binds)
	p := NewProblem()
	x := p.AddVariable("x", 0, 3, -1)
	y := p.AddVariable("y", 0, 4, -1)
	p.AddConstraint("cap", []Entry{{x, 1}, {y, 1}}, LE, 5)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal || !approx(sol.Objective, -5) {
		t.Fatalf("status=%v obj=%g, want optimal -5", sol.Status, sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestFreeVariables(t *testing.T) {
	// min |style| problem with free variable: min x s.t. x >= -7 expressed
	// via constraint (x free), optimum x=-7.
	p := NewProblem()
	x := p.AddVariable("x", math.Inf(-1), Infinity, 1)
	p.AddConstraint("lb", []Entry{{x, 1}}, GE, -7)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Value(x), -7) {
		t.Errorf("x = %g, want -7", sol.Value(x))
	}
}

func TestFreeVariableEquality(t *testing.T) {
	// min 2a - b s.t. a + b = 4, a - b = 2 with both free → a=3, b=1, obj=5.
	p := NewProblem()
	a := p.AddVariable("a", math.Inf(-1), Infinity, 2)
	b := p.AddVariable("b", math.Inf(-1), Infinity, -1)
	p.AddConstraint("sum", []Entry{{a, 1}, {b, 1}}, EQ, 4)
	p.AddConstraint("diff", []Entry{{a, 1}, {b, -1}}, EQ, 2)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Value(a), 3) || !approx(sol.Value(b), 1) {
		t.Errorf("a=%g b=%g, want 3, 1", sol.Value(a), sol.Value(b))
	}
	if !approx(sol.Objective, 5) {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 2 and x >= 5 cannot both hold.
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, 1)
	p.AddConstraint("lo", []Entry{{x, 1}}, GE, 5)
	p.AddConstraint("hi", []Entry{{x, 1}}, LE, 2)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	// x + y = 1 and x + y = 3.
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 0)
	y := p.AddVariable("y", 0, 10, 0)
	p.AddConstraint("a", []Entry{{x, 1}, {y, 1}}, EQ, 1)
	p.AddConstraint("b", []Entry{{x, 1}, {y, 1}}, EQ, 3)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 and no upper limit.
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, -1)
	p.AddConstraint("dummy", []Entry{{x, 1}}, GE, 0)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestUnboundedNoConstraints(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", math.Inf(-1), Infinity, 1)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraintsBoundedByVarBounds(t *testing.T) {
	// min 2x - 3y with 1 <= x <= 5, -2 <= y <= 7 → x=1, y=7, obj=-19.
	p := NewProblem()
	x := p.AddVariable("x", 1, 5, 2)
	y := p.AddVariable("y", -2, 7, -3)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -19) {
		t.Errorf("objective = %g, want -19", sol.Objective)
	}
	if !approx(sol.Value(x), 1) || !approx(sol.Value(y), 7) {
		t.Errorf("x=%g y=%g", sol.Value(x), sol.Value(y))
	}
}

func TestFixedVariables(t *testing.T) {
	// A fixed variable participates in constraints but cannot move.
	p := NewProblem()
	x := p.AddVariable("x", 4, 4, 0) // fixed at 4
	y := p.AddVariable("y", 0, Infinity, 1)
	p.AddConstraint("c", []Entry{{x, 1}, {y, 1}}, GE, 10)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Value(x), 4) || !approx(sol.Value(y), 6) {
		t.Errorf("x=%g y=%g, want 4, 6", sol.Value(x), sol.Value(y))
	}
	checkFeasible(t, p, sol.X)
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y with -5 <= x <= 5, -5 <= y <= 5, x + y >= -3 → obj = -3.
	p := NewProblem()
	x := p.AddVariable("x", -5, 5, 1)
	y := p.AddVariable("y", -5, 5, 1)
	p.AddConstraint("c", []Entry{{x, 1}, {y, 1}}, GE, -3)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal || !approx(sol.Objective, -3) {
		t.Fatalf("status=%v obj=%g, want optimal -3", sol.Status, sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestBoundOverrides(t *testing.T) {
	// The same problem solved with tightened bounds via Options must respect
	// the overrides; this is the mechanism branch-and-bound uses.
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, -1)
	p.AddConstraint("c", []Entry{{x, 1}}, LE, 8)
	sol := solveOrFatal(t, p, Options{})
	if !approx(sol.Value(x), 8) {
		t.Fatalf("unrestricted x = %g, want 8", sol.Value(x))
	}
	sol = solveOrFatal(t, p, Options{UpperOverride: map[int]float64{0: 3}})
	if !approx(sol.Value(x), 3) {
		t.Errorf("overridden x = %g, want 3", sol.Value(x))
	}
	sol = solveOrFatal(t, p, Options{LowerOverride: map[int]float64{0: 9}})
	if sol.Status != StatusInfeasible {
		t.Errorf("status with lower=9 is %v, want infeasible (conflicts with c)", sol.Status)
	}
	sol = solveOrFatal(t, p, Options{LowerOverride: map[int]float64{0: 5}, UpperOverride: map[int]float64{0: 2}})
	if sol.Status != StatusInfeasible {
		t.Errorf("status with crossing overrides = %v, want infeasible", sol.Status)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate problem (multiple constraints active at the
	// optimum); the solver must terminate and find the optimum.
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, -0.75)
	y := p.AddVariable("y", 0, Infinity, 150)
	z := p.AddVariable("z", 0, Infinity, -0.02)
	w := p.AddVariable("w", 0, Infinity, 6)
	p.AddConstraint("r1", []Entry{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, LE, 0)
	p.AddConstraint("r2", []Entry{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, LE, 0)
	p.AddConstraint("r3", []Entry{{z, 1}}, LE, 1)
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Known optimum of this Beale-cycling example is -0.05 at z = 1.
	if !approx(sol.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies × 3 demands transportation problem with known optimum.
	// supply: 20, 30; demand: 10, 25, 15
	// cost matrix: [2 3 1; 5 4 8]
	// optimum: ship s0→d2:15, s0→d1:5(?), ... compute: total demand 50 = supply.
	// LP optimum cost: s0 ships to d2 (cost1) 15, d0 (cost2) ... we verify by
	// comparing against a brute-force LP check of feasibility + known value 145.
	// Optimal: x02=15, x00=5(?), let's reason: s1 has expensive d2 (8), cheap d1 (4), d0 (5).
	// Assign: x02=15 (c1), remaining s0=5 → cheapest next for s0 is d0 (2): x00=5.
	// s1: d0 remaining 5 → x10=5 (25), d1=25 → x11=25 (100). total=15+10+25+100=150.
	// Alternative: x01=20... try LP: we just check solver value equals 150 computed by
	// an independent greedy-verified optimum via enumeration in the test below.
	costs := [2][3]float64{{2, 3, 1}, {5, 4, 8}}
	supply := [2]float64{20, 30}
	demand := [3]float64{10, 25, 15}
	p := NewProblem()
	var idx [2][3]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			idx[i][j] = p.AddVariable("x", 0, Infinity, costs[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		row := []Entry{{idx[i][0], 1}, {idx[i][1], 1}, {idx[i][2], 1}}
		p.AddConstraint("supply", row, LE, supply[i])
	}
	for j := 0; j < 3; j++ {
		col := []Entry{{idx[0][j], 1}, {idx[1][j], 1}}
		p.AddConstraint("demand", col, GE, demand[j])
	}
	sol := solveOrFatal(t, p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	checkFeasible(t, p, sol.X)
	if !approx(sol.Objective, 150) {
		t.Errorf("objective = %g, want 150", sol.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 5, 2, 0) // crossed bounds
	if err := p.Validate(); err == nil {
		t.Error("crossed bounds not rejected")
	}
	p = NewProblem()
	x = p.AddVariable("x", 0, 1, 0)
	p.AddConstraint("bad", []Entry{{x + 5, 1}}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Error("out-of-range variable index not rejected")
	}
	p = NewProblem()
	x = p.AddVariable("x", 0, 1, 0)
	p.AddConstraint("bad", []Entry{{x, math.NaN()}}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Error("NaN coefficient not rejected")
	}
	p = NewProblem()
	x = p.AddVariable("x", 0, 1, 0)
	p.AddConstraint("bad", []Entry{{x, 1}}, LE, math.Inf(1))
	if err := p.Validate(); err == nil {
		t.Error("infinite rhs not rejected")
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	for _, s := range []Sense{LE, GE, EQ, Sense(9)} {
		if s.String() == "" {
			t.Error("empty Sense string")
		}
	}
	for _, s := range []Status{StatusUnknown, StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit} {
		if s.String() == "" {
			t.Error("empty Status string")
		}
	}
}

// randomFeasibleLP builds a random LP that is feasible by construction: it
// picks a point inside the bounds and only adds constraints satisfied there.
func randomFeasibleLP(rng *rand.Rand, nVars, nCons int) (*Problem, []float64) {
	p := NewProblem()
	point := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		lo := float64(rng.Intn(11) - 5)
		width := float64(rng.Intn(10) + 1)
		cost := float64(rng.Intn(21)-10) / 2
		p.AddVariable("v", lo, lo+width, cost)
		point[j] = lo + rng.Float64()*width
	}
	for i := 0; i < nCons; i++ {
		var row []Entry
		lhs := 0.0
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.4 {
				coef := float64(rng.Intn(9) - 4)
				if coef == 0 {
					coef = 1
				}
				row = append(row, Entry{j, coef})
				lhs += coef * point[j]
			}
		}
		if len(row) == 0 {
			continue
		}
		slackRoom := rng.Float64() * 5
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint("c", row, LE, lhs+slackRoom)
		case 1:
			p.AddConstraint("c", row, GE, lhs-slackRoom)
		default:
			p.AddConstraint("c", row, EQ, lhs)
		}
	}
	return p, point
}

func TestRandomFeasibleLPsSolveToFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(8)
		nCons := 1 + rng.Intn(12)
		p, witness := randomFeasibleLP(rng, nVars, nCons)
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v for a feasible bounded LP", trial, sol.Status)
		}
		checkFeasible(t, p, sol.X)
		// The optimum can be no worse than the witness point's objective.
		witnessObj := 0.0
		for j := range witness {
			witnessObj += p.Variables[j].Cost * witness[j]
		}
		if sol.Objective > witnessObj+1e-5 {
			t.Errorf("trial %d: objective %g worse than witness %g", trial, sol.Objective, witnessObj)
		}
	}
}

func TestAddingConstraintNeverImprovesOptimum(t *testing.T) {
	// Property: the minimum of an LP cannot decrease when a constraint is
	// added (the feasible region only shrinks).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, point := randomFeasibleLP(rng, 3+rng.Intn(4), 2+rng.Intn(4))
		base, err := Solve(p, Options{})
		if err != nil || base.Status != StatusOptimal {
			return true // skip pathological cases; they are covered elsewhere
		}
		// Add one more constraint satisfied at the witness point.
		lhs := 0.0
		var row []Entry
		for j := range point {
			coef := float64(rng.Intn(7) - 3)
			if coef != 0 {
				row = append(row, Entry{j, coef})
				lhs += coef * point[j]
			}
		}
		if len(row) == 0 {
			return true
		}
		p.AddConstraint("extra", row, LE, lhs+rng.Float64())
		tightened, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		if tightened.Status != StatusOptimal {
			return false // still feasible at witness, must stay solvable
		}
		return tightened.Objective >= base.Objective-1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
