package lp

import (
	"context"
	"fmt"
	"math"
)

// variable status codes used by the simplex.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	atFree // nonbasic free variable, parked at zero
	inBasis
)

// simplex is the working state of one bounded-variable simplex solve (primal
// cold start or dual warm start). The driver owns the problem data, bounds,
// statuses, basic values and the incrementally maintained reduced-cost row;
// the tableau quantities every decision needs — entering columns, pivot rows,
// reduced costs from scratch — come from the pluggable basis-inverse core
// (sparse revised simplex by default, dense tableau as the legacy baseline).
type simplex struct {
	m, n    int // constraint and total column counts (structural + slack + artificial)
	nStruct int // structural variable count

	prob *Problem // raw problem data, for refactorization

	lower, upper []float64 // bounds per column
	cost         []float64 // phase-2 cost per column
	phase1Cost   []float64 // phase-1 cost per column (1 for artificials)

	coreKind Core
	core     tableauCore

	beta     []float64   // current values of basic variables, one per row
	basis    []int       // basic column per row
	status   []varStatus // status per column
	reduced  []float64   // reduced cost per column for the active phase
	inPhase1 bool

	colBuf  []float64 // length m: entering tableau column for the current pivot
	prowBuf []float64 // length n: pivot row for the current pivot
	tauBuf  []float64 // length n: steepest-edge τ vector

	// forcedInfeasible marks a subproblem whose bound overrides were
	// contradictory (lower > upper); it is reported as infeasible without
	// running any pivots.
	forcedInfeasible bool

	artStart int       // first artificial column index (== n when none)
	artRow   []int     // row of each artificial column
	artSign  []float64 // raw-row coefficient of each artificial column

	tol        float64
	iterations int
	maxIter    int
	refresh    int

	rule   PivotRule // primal pricing rule
	devexW []float64 // devex reference weights, lazily initialized
	steepW []float64 // steepest-edge reference weights γ, lazily initialized

	refactorizations int

	degenerate  int  // consecutive degenerate pivots
	useBland    bool // anti-cycling mode
	lexPivoting bool // inside lexCanonicalize: ratio-test ties break by index

	// ctx, when non-nil, is polled every few pivots; cancellation aborts the
	// solve with StatusCancelled.
	ctx context.Context
}

// cancelCheckEvery is how many pivots pass between context polls; polling a
// context costs an atomic load plus a channel select, so it is kept off the
// per-pivot path.
const cancelCheckEvery = 32

// cancelled reports whether the solve's context has fired.
func (s *simplex) cancelled() bool {
	return s.ctx != nil && s.iterations%cancelCheckEvery == 0 && s.ctx.Err() != nil
}

// Solve minimizes the problem and returns the solution. The problem itself is
// not modified; bound overrides from opts are applied to a private copy of
// the bound arrays.
func Solve(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve with cancellation: the context is checked periodically
// during pivoting and a cancelled or expired context yields a solution with
// StatusCancelled. Solving the same problem with the same options under a
// context that never fires is identical to Solve.
//
// When opts.WarmBasis is set and still dual-feasible under the (possibly
// overridden) bounds, the solve runs the dual simplex from it; otherwise it
// falls back to the cold primal path. Both paths finish an optimal solve the
// same way — lexicographic canonicalization of the optimal vertex followed by
// a deterministic refactorization — so the two report identical solutions.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var s *simplex
	var status Status
	warm := false
	if opts.WarmBasis != nil {
		ws, err := newSimplexBase(p, opts)
		if err != nil {
			return nil, err
		}
		if ws.forcedInfeasible {
			s, status = ws, StatusInfeasible
		} else if ws.installBasis(opts.WarmBasis) {
			if ctx != nil && ctx.Done() != nil {
				ws.ctx = ctx
			}
			s, warm = ws, true
			status = s.runDual()
			if status == StatusOptimal {
				// Polish: a dual-optimal basis is primal-optimal up to
				// tolerance; the primal loop confirms (usually zero pivots).
				status = s.iterate()
			}
		}
	}
	if s == nil {
		var err error
		s, err = newSimplex(p, opts)
		if err != nil {
			return nil, err
		}
		if ctx != nil && ctx.Done() != nil {
			s.ctx = ctx
		}
		status = s.run()
	}
	if status == StatusOptimal && !s.forcedInfeasible {
		// Refactorize before canonicalizing so every descent decision reads
		// a tableau that is a pure function of the basic set rather than of
		// the pivot path that reached it, then again after so the reported
		// basic values are equally path-free.
		s.refactorize()
		s.computeReducedCosts()
		s.lexCanonicalize()
		s.refactorize()
	}
	sol := &Solution{
		Status:           status,
		X:                s.extract(),
		Iterations:       s.iterations,
		Refactorizations: s.refactorizations,
		WarmStarted:      warm,
	}
	if s.core != nil {
		sol.PeakEta = s.core.peakEta()
	}
	if status == StatusOptimal && !s.forcedInfeasible {
		sol.Basis = s.exportBasis()
	}
	if status == StatusOptimal || status == StatusIterLimit || status == StatusCancelled {
		obj := 0.0
		for j := 0; j < s.nStruct; j++ {
			obj += p.Variables[j].Cost * sol.X[j]
		}
		sol.Objective = obj
	} else if status == StatusUnbounded {
		sol.Objective = math.Inf(-1)
	}
	return sol, nil
}

// newSimplexBase loads the shared solver form — bounds, costs and the raw
// tableau rows with one slack column per constraint — without committing to a
// starting basis. The cold constructor adds the phase-1 artificial start on
// top; the warm path installs an imported basis instead.
func newSimplexBase(p *Problem, opts Options) (*simplex, error) {
	m := len(p.Constraints)
	nStruct := len(p.Variables)
	s := &simplex{
		m:        m,
		nStruct:  nStruct,
		prob:     p,
		tol:      opts.tolerance(),
		refresh:  opts.refactorEvery(),
		rule:     opts.Pivot,
		coreKind: opts.Core,
	}
	s.maxIter = opts.maxIterations(m, nStruct)

	// Column bounds and costs: structural variables then slacks.
	total := nStruct + m
	s.lower = make([]float64, total, total+m)
	s.upper = make([]float64, total, total+m)
	s.cost = make([]float64, total, total+m)
	for j, v := range p.Variables {
		lo, up := v.Lower, v.Upper
		if opts.LowerOverride != nil {
			if o, ok := opts.LowerOverride[j]; ok {
				lo = o
			}
		}
		if opts.UpperOverride != nil {
			if o, ok := opts.UpperOverride[j]; ok {
				up = o
			}
		}
		if lo > up {
			// A branch made the variable empty; the subproblem is trivially
			// infeasible. Signal it through a contradictory fixed bound that
			// the caller sees as StatusInfeasible without running pivots.
			return &simplex{m: 0, n: 0, nStruct: nStruct, forcedInfeasible: true}, nil
		}
		s.lower[j] = lo
		s.upper[j] = up
		s.cost[j] = v.Cost
	}
	for i, c := range p.Constraints {
		j := nStruct + i
		switch c.Sense {
		case LE:
			s.lower[j], s.upper[j] = 0, Infinity
		case GE:
			s.lower[j], s.upper[j] = math.Inf(-1), 0
		case EQ:
			s.lower[j], s.upper[j] = 0, 0
		default:
			return nil, fmt.Errorf("lp: constraint %d has unknown sense %d", i, c.Sense)
		}
	}
	s.n = total
	s.artStart = total
	s.status = make([]varStatus, total, total+m)
	return s, nil
}

// initCore instantiates the basis-inverse engine. It must run after the
// column set is final — for a cold start that means after the artificial
// columns are added — and before the first refactorize call.
func (s *simplex) initCore() {
	s.colBuf = make([]float64, s.m)
	s.prowBuf = make([]float64, s.n)
	s.tauBuf = make([]float64, s.n)
	switch s.coreKind {
	case CoreDense:
		s.core = newDenseCore(s)
	default:
		s.core = newSparseCore(s)
	}
}

// refactorize rebuilds the core's basis-inverse representation (and with it
// s.basis row assignment and s.beta) from the raw problem data; see
// tableauCore.refactorize. The effort counter only counts successful builds.
func (s *simplex) refactorize() bool {
	if !s.core.refactorize() {
		return false
	}
	s.refactorizations++
	return true
}

// newSimplex builds the cold-start solver: nonbasic structural variables park
// at a bound, the slack basis covers what it can, and artificial columns with
// phase-1 cost 1 cover the rest.
func newSimplex(p *Problem, opts Options) (*simplex, error) {
	s, err := newSimplexBase(p, opts)
	if err != nil || s.forcedInfeasible {
		return s, err
	}
	m, nStruct := s.m, s.nStruct

	// Nonbasic structural variables start at the finite bound closest to
	// zero; free variables start at zero.
	for j := 0; j < nStruct; j++ {
		s.status[j] = initialStatus(s.lower[j], s.upper[j])
	}

	// Compute the slack value each row needs, and introduce artificials for
	// rows where that value violates the slack bounds.
	rhs := make([]float64, m)
	for i, c := range p.Constraints {
		acc := 0.0
		for _, e := range c.Row {
			acc += e.Coef * s.nonbasicValue(e.Var)
		}
		rhs[i] = c.RHS - acc
	}
	s.basis = make([]int, m)
	for i := 0; i < m; i++ {
		j := nStruct + i
		need := rhs[i]
		if need >= s.lower[j]-s.tol && need <= s.upper[j]+s.tol {
			// Slack basis is feasible for this row.
			s.basis[i] = j
			s.status[j] = inBasis
			continue
		}
		// Park the slack at its nearest bound and cover the residual with an
		// artificial variable of value |residual|.
		var slackVal float64
		if need < s.lower[j] {
			slackVal = s.lower[j]
			s.status[j] = atLower
		} else {
			slackVal = s.upper[j]
			s.status[j] = atUpper
		}
		art := s.addArtificial(i, sign(need-slackVal))
		s.basis[i] = art
		s.status[art] = inBasis
	}

	// Phase-1 costs: 1 for artificials, 0 otherwise.
	s.phase1Cost = make([]float64, s.n)
	for j := s.artStart; j < s.n; j++ {
		s.phase1Cost[j] = 1
	}

	// The column set is final: stand up the core and factorize the initial
	// basis, which also derives the basic values. The initial basis matrix is
	// a signed permutation (one slack or artificial unit column per row), so
	// this build cannot be singular.
	s.initCore()
	s.refactorize()
	return s, nil
}

// addArtificial appends an artificial column with coefficient sgn in row i
// and returns its index.
func (s *simplex) addArtificial(i int, sgn float64) int {
	j := s.n
	s.n++
	s.lower = append(s.lower, 0)
	s.upper = append(s.upper, Infinity)
	s.cost = append(s.cost, 0)
	s.status = append(s.status, atLower)
	s.artRow = append(s.artRow, i)
	s.artSign = append(s.artSign, sgn)
	if s.artStart > j {
		s.artStart = j
	}
	return j
}

func initialStatus(lo, up float64) varStatus {
	loFin := !math.IsInf(lo, -1)
	upFin := !math.IsInf(up, 1)
	switch {
	case loFin && upFin:
		if math.Abs(up) < math.Abs(lo) {
			return atUpper
		}
		return atLower
	case loFin:
		return atLower
	case upFin:
		return atUpper
	default:
		return atFree
	}
}

// nonbasicValue returns the value a nonbasic column currently takes.
func (s *simplex) nonbasicValue(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lower[j]
	case atUpper:
		return s.upper[j]
	default:
		return 0
	}
}

func clamp(v, lo, up float64) float64 {
	if v < lo {
		return lo
	}
	if v > up {
		return up
	}
	return v
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
