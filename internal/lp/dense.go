package lp

import "math"

// denseCore is the legacy basis-inverse engine: the whole tableau T = B⁻¹·A
// is materialized as an m×n array and kept current by full Gauss–Jordan
// elimination on every pivot. Queries are trivially cheap (a row or column
// copy), pivots cost O(m·n) regardless of sparsity. It is retained as the
// baseline the sparse revised core is benchmarked against and as an
// independent numerical cross-check.
type denseCore struct {
	s       *simplex
	tableau [][]float64 // m rows × n columns, equals B⁻¹·A
}

func newDenseCore(s *simplex) *denseCore {
	return &denseCore{s: s}
}

func (c *denseCore) column(j int, dst []float64) {
	for i := range c.tableau {
		dst[i] = c.tableau[i][j]
	}
}

func (c *denseCore) pivotRow(r int, dst []float64) {
	copy(dst, c.tableau[r])
}

func (c *denseCore) reducedCosts(cost []float64, dst []float64) {
	s := c.s
	// Multipliers per row: cost of the basic variable of that row.
	cb := make([]float64, s.m)
	anyNonzero := false
	for i, j := range s.basis {
		cb[i] = cost[j]
		if cb[i] != 0 {
			anyNonzero = true
		}
	}
	for j := 0; j < s.n; j++ {
		d := cost[j]
		if anyNonzero {
			for i := 0; i < s.m; i++ {
				if cb[i] != 0 {
					d -= cb[i] * c.tableau[i][j]
				}
			}
		}
		dst[j] = d
	}
}

func (c *denseCore) tau(x []float64, dst []float64) {
	s := c.s
	for j := 0; j < s.n; j++ {
		dst[j] = 0
	}
	for i := 0; i < s.m; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := c.tableau[i]
		for j := 0; j < s.n; j++ {
			dst[j] += xi * row[j]
		}
	}
}

// applyPivot eliminates the entering column from every row except the pivot
// row, exactly the update the pre-revised solver ran inline. The driver has
// already updated beta, statuses and the reduced-cost row; alpha (the
// pre-pivot entering column) equals this tableau's column enter, so the
// elimination factors are read from the tableau itself.
func (c *denseCore) applyPivot(enter, leaveRow int, alpha []float64) bool {
	s := c.s
	prow := c.tableau[leaveRow]
	inv := 1 / prow[enter]
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1
	for i := 0; i < s.m; i++ {
		if i == leaveRow {
			continue
		}
		factor := c.tableau[i][enter]
		if factor == 0 {
			continue
		}
		row := c.tableau[i]
		for j := 0; j < s.n; j++ {
			row[j] -= factor * prow[j]
		}
		row[enter] = 0
	}
	return false
}

func (c *denseCore) peakEta() int { return 0 }

// refactorize rebuilds the tableau T = B⁻¹·A and the basic values from the
// raw problem data and the current basic set, discarding all floating-point
// error accumulated by incremental pivoting. The elimination order — unit
// columns (slacks, artificials) pivot first at their home rows, then
// structural columns in ascending index order with partial pivoting over the
// unassigned rows — depends only on the basic set, so two solves that reach
// the same basis through different pivot paths end with bit-identical state.
// Returns false when the basis matrix is singular.
func (c *denseCore) refactorize() bool {
	const pivTol = 1e-9
	s := c.s
	m, n := s.m, s.n
	basicSet := make([]bool, n)
	for _, j := range s.basis {
		basicSet[j] = true
	}
	W := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		W[i] = make([]float64, n)
		s.rawRow(i, W[i])
		acc := 0.0
		for j, a := range W[i] {
			if a != 0 && !basicSet[j] {
				acc += a * s.nonbasicValue(j)
			}
		}
		rhs[i] = s.prob.Constraints[i].RHS - acc
	}

	cols := make([]int, 0, m)
	for j := 0; j < n; j++ {
		if basicSet[j] {
			cols = append(cols, j)
		}
	}
	assigned := make([]bool, m)
	newBasis := make([]int, m)
	// eliminate pivots column col in row home; callers have checked that the
	// pivot element is well away from zero.
	eliminate := func(col, home int) {
		inv := 1 / W[home][col]
		prow := W[home]
		for j := 0; j < n; j++ {
			prow[j] *= inv
		}
		prow[col] = 1
		rhs[home] *= inv
		for r := 0; r < m; r++ {
			if r == home {
				continue
			}
			f := W[r][col]
			if f == 0 {
				continue
			}
			row := W[r]
			for j := 0; j < n; j++ {
				row[j] -= f * prow[j]
			}
			row[col] = 0
			rhs[r] -= f * rhs[home]
		}
		assigned[home] = true
		newBasis[home] = col
	}

	// Unit columns: a slack or artificial is ±1 in its home row and zero
	// elsewhere, so it can only pivot there (and the elimination loop finds
	// nothing to do for a still-raw column).
	for _, col := range cols {
		if col < s.nStruct {
			continue
		}
		home := col - s.nStruct
		if col >= s.artStart {
			home = s.artRow[col-s.artStart]
		}
		if assigned[home] || math.Abs(W[home][col]) < pivTol {
			return false
		}
		eliminate(col, home)
	}
	// Structural columns take the remaining rows by partial pivoting.
	for _, col := range cols {
		if col >= s.nStruct {
			continue
		}
		best, bestAbs := -1, pivTol
		for r := 0; r < m; r++ {
			if assigned[r] {
				continue
			}
			if a := math.Abs(W[r][col]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return false
		}
		eliminate(col, best)
	}

	c.tableau = W
	if len(s.beta) != m {
		s.beta = make([]float64, m)
	}
	copy(s.beta, rhs)
	copy(s.basis, newBasis)
	return true
}
