// Package lp implements a bounded-variable simplex solver for linear
// programs. It is the continuous-relaxation engine underneath the MILP
// branch-and-bound solver in internal/milp, which together replace the
// commercial Gurobi optimizer used by the paper.
//
// The solver handles general variable bounds (including free and fixed
// variables), the three constraint senses, minimization objectives, and
// reports optimal, infeasible, unbounded or iteration-limited outcomes.
//
// Two algorithms share one driver and one basis-inverse engine (Options.Core):
//
//   - a primal simplex with a phase-1 artificial-variable start, used for
//     cold solves;
//   - a dual simplex that starts from an imported Basis (Options.WarmBasis),
//     used by branch-and-bound to re-solve a child node from its parent's
//     optimal basis after a single bound change, skipping phase 1 entirely.
//
// The default engine is a sparse revised simplex: the constraint matrix in
// compressed sparse column form, the basis inverse as an elimination-form LU
// factorization held in product form (an eta sequence) with one product-form
// eta appended per pivot, periodic refactorization, and FTRAN/BTRAN solves
// producing tableau columns, pivot rows and reduced costs on demand. The
// dense tableau core it replaced (T = B⁻¹·A materialized in full, every pivot
// a full elimination) remains selectable as CoreDense — it is the benchmark
// baseline and numerical cross-check; both cores return identical layouts.
//
// Pricing is pluggable through Options.Pivot (Dantzig, Bland, Devex and
// projected steepest edge); every rule is deterministic, so the pivot
// sequence — and therefore the returned vertex — is a pure function of
// (problem, options). At optimality the solver additionally canonicalizes
// degenerate optima by a lexicographic descent over zero-reduced-cost
// directions and refactorizes the final basis from the raw problem data, so
// warm- and cold-started solves of the same problem agree not just on the
// objective but on the solution vector itself — whichever core or rule ran.
package lp

import (
	"fmt"
	"math"
)

// Infinity is the bound value meaning "unbounded" in that direction.
var Infinity = math.Inf(1)

// Sense is the relation of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // left-hand side <= rhs
	GE              // left-hand side >= rhs
	EQ              // left-hand side == rhs
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Entry is one coefficient of a sparse linear expression: Coef * variable Var.
type Entry struct {
	Var  int
	Coef float64
}

// Variable describes one decision variable of a Problem.
type Variable struct {
	Name  string
	Lower float64
	Upper float64
	Cost  float64 // objective coefficient (minimization)
}

// Constraint is one linear constraint of a Problem. Row coefficients are
// stored sparsely; duplicate variable entries are summed when the problem is
// loaded by the solver.
type Constraint struct {
	Name  string
	Row   []Entry
	Sense Sense
	RHS   float64
}

// Problem is a linear program in the form
//
//	minimize    cᵀx
//	subject to  row_i(x) (<=|>=|==) rhs_i
//	            lower_j <= x_j <= upper_j
//
// Build it with NewProblem / AddVariable / AddConstraint and pass it to
// Solve. A Problem can be solved repeatedly with different bound overrides,
// which is how the branch-and-bound solver explores its tree.
type Problem struct {
	Variables   []Variable
	Constraints []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{}
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.Variables) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.Constraints) }

// AddVariable adds a variable with the given bounds and objective cost and
// returns its index. Use -Infinity / Infinity for unbounded directions.
func (p *Problem) AddVariable(name string, lower, upper, cost float64) int {
	p.Variables = append(p.Variables, Variable{Name: name, Lower: lower, Upper: upper, Cost: cost})
	return len(p.Variables) - 1
}

// SetCost sets the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) {
	p.Variables[v].Cost = cost
}

// SetBounds sets the bounds of variable v.
func (p *Problem) SetBounds(v int, lower, upper float64) {
	p.Variables[v].Lower = lower
	p.Variables[v].Upper = upper
}

// AddConstraint adds a constraint and returns its index.
func (p *Problem) AddConstraint(name string, row []Entry, sense Sense, rhs float64) int {
	cp := make([]Entry, len(row))
	copy(cp, row)
	p.Constraints = append(p.Constraints, Constraint{Name: name, Row: cp, Sense: sense, RHS: rhs})
	return len(p.Constraints) - 1
}

// Validate checks structural consistency: variable indices in range, finite
// RHS values, lower <= upper for every variable.
func (p *Problem) Validate() error {
	n := len(p.Variables)
	for j, v := range p.Variables {
		if v.Lower > v.Upper {
			return fmt.Errorf("lp: variable %d (%q) has lower bound %g > upper bound %g", j, v.Name, v.Lower, v.Upper)
		}
		if math.IsNaN(v.Lower) || math.IsNaN(v.Upper) || math.IsNaN(v.Cost) {
			return fmt.Errorf("lp: variable %d (%q) has NaN bound or cost", j, v.Name)
		}
	}
	for i, c := range p.Constraints {
		if math.IsInf(c.RHS, 0) || math.IsNaN(c.RHS) {
			return fmt.Errorf("lp: constraint %d (%q) has non-finite rhs %g", i, c.Name, c.RHS)
		}
		for _, e := range c.Row {
			if e.Var < 0 || e.Var >= n {
				return fmt.Errorf("lp: constraint %d (%q) references variable %d out of range [0,%d)", i, c.Name, e.Var, n)
			}
			if math.IsNaN(e.Coef) || math.IsInf(e.Coef, 0) {
				return fmt.Errorf("lp: constraint %d (%q) has non-finite coefficient for variable %d", i, c.Name, e.Var)
			}
		}
	}
	return nil
}

// Status is the outcome of an LP solve.
type Status int

// Solve outcomes.
const (
	StatusUnknown Status = iota
	StatusOptimal
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
	// StatusCancelled means the context passed to SolveCtx was cancelled or
	// its deadline expired before the solve finished.
	StatusCancelled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Solution is the result of an LP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // one value per problem variable
	// Iterations is the simplex pivot count across all phases (primal,
	// dual and the canonicalization pass).
	Iterations int
	// Refactorizations counts full rebuilds of the basis inverse from the
	// raw problem data: one per solve setup (cold start or accepted warm
	// basis), two at optimality (before and after canonicalization), plus —
	// on the sparse core — every periodic or drift-triggered rebuild of the
	// eta chain between pivots.
	Refactorizations int
	// PeakEta is the longest product-form eta chain the sparse core carried
	// between refactorizations (update etas only, not the factorization
	// itself). Always zero on the dense core.
	PeakEta int
	// WarmStarted reports whether Options.WarmBasis was accepted and the
	// solve ran the dual simplex from it instead of a phase-1 cold start.
	WarmStarted bool
	// Basis is the optimal basis, exportable into Options.WarmBasis of a
	// subsequent solve with modified bounds. It is nil unless the status is
	// StatusOptimal and the final basis is free of artificial columns.
	Basis *Basis
}

// Value returns the solved value of variable v.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// Options tunes the solver.
type Options struct {
	// MaxIterations bounds the total number of simplex pivots across both
	// phases. Zero means a generous default based on problem size.
	MaxIterations int
	// Tolerance is the feasibility / optimality tolerance. Zero means 1e-7.
	Tolerance float64
	// RefactorEvery forces a basis-inverse refactorization every that many
	// pivots. On the sparse core it doubles as the cap on the product-form
	// eta chain between refactorizations. Zero means 64.
	RefactorEvery int
	// Core selects the basis-inverse engine. The zero value is CoreSparse
	// (the revised simplex); CoreDense selects the legacy dense tableau.
	// Both produce identical solutions — see the package comment.
	Core Core
	// LowerOverride / UpperOverride, when non-nil, replace the bounds of the
	// variables whose indices appear in the map. The branch-and-bound solver
	// uses these to explore branches without copying the whole problem.
	LowerOverride map[int]float64
	UpperOverride map[int]float64
	// Pivot selects the pricing rule of the primal simplex. The zero value
	// is PivotDantzig.
	Pivot PivotRule
	// WarmBasis, when non-nil, is a basis exported by a previous solve of
	// the same problem (typically with different bound overrides). If it is
	// still dual-feasible under the new bounds the solve starts the dual
	// simplex from it; otherwise the solver falls back to a cold primal
	// solve. The basis is read-only to the solver.
	WarmBasis *Basis
}

func (o Options) tolerance() float64 {
	if o.Tolerance > 0 {
		return o.Tolerance
	}
	return 1e-7
}

func (o Options) refactorEvery() int {
	if o.RefactorEvery > 0 {
		return o.RefactorEvery
	}
	return 64
}

func (o Options) maxIterations(m, n int) int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	it := 200 * (m + n)
	if it < 2000 {
		it = 2000
	}
	return it
}
