package lp

import "fmt"

// Core selects the basis-inverse representation the simplex pivots on. Both
// cores run the identical driver — pricing, ratio tests, bound handling,
// phase logic and the lexicographic canonicalization are shared — so the
// returned vertex is the same either way; the cores differ only in how the
// tableau quantities (B⁻¹·A columns, pivot rows, reduced costs) are produced
// and in the per-pivot cost of keeping them current.
type Core int

const (
	// CoreSparse is the sparse revised simplex: the constraint matrix is held
	// in compressed sparse column form, the basis inverse as an
	// elimination-form LU factorization in product form (a triangular eta
	// sequence rebuilt at every refactorization) extended by one
	// product-form eta per pivot, and every tableau quantity is produced on
	// demand by FTRAN/BTRAN solves. Pivot cost scales with the number of
	// matrix nonzeros instead of m·n, which is what makes it the default:
	// the layout models are extremely sparse (a handful of variables per
	// non-overlap or chain-point row). Default.
	CoreSparse Core = iota
	// CoreDense is the dense-tableau simplex that predates the revised core:
	// T = B⁻¹·A is materialized as an m×n array and every pivot re-eliminates
	// the full tableau. It is kept as the benchmark baseline the revised
	// core must beat (rficbench -lp-compare -lp-cores sparse,dense) and as a
	// numerical cross-check; both cores produce byte-identical layouts.
	CoreDense
)

// String implements fmt.Stringer; the names double as the on-disk spelling
// used by flags and cache fingerprints.
func (c Core) String() string {
	switch c {
	case CoreSparse:
		return "sparse"
	case CoreDense:
		return "dense"
	default:
		return fmt.Sprintf("core(%d)", int(c))
	}
}

// ParseCore is the inverse of String. The empty string parses to CoreSparse,
// matching the zero-value default of Options.Core.
func ParseCore(s string) (Core, error) {
	switch s {
	case "sparse", "":
		return CoreSparse, nil
	case "dense":
		return CoreDense, nil
	default:
		return 0, fmt.Errorf("lp: unknown simplex core %q (want sparse or dense)", s)
	}
}

// Cores lists every core, in a stable order, for benchmark harnesses.
func Cores() []Core {
	return []Core{CoreSparse, CoreDense}
}

// tableauCore is the basis-inverse engine behind one simplex solve. The
// driver owns the problem data, bounds, statuses, basic values (beta) and the
// reduced-cost row; the core owns whatever representation of B⁻¹ it needs to
// answer the queries below. Every method must be deterministic: the pivot
// sequence — and with it the exported effort counters — is a pure function of
// (problem, options) for either core.
type tableauCore interface {
	// refactorize rebuilds the representation from the raw problem data and
	// the driver's current basic set, discarding accumulated floating-point
	// error. It reassigns basic columns to rows (writing s.basis) and
	// recomputes the basic values (writing s.beta) so the state after a
	// refactorization is a pure function of the basic set, not of the pivot
	// path that reached it. Returns false when the basis matrix is singular,
	// leaving the previous representation intact.
	refactorize() bool
	// column writes the current tableau column T_j = B⁻¹·A_j into dst, which
	// has length m and arbitrary prior contents.
	column(j int, dst []float64)
	// pivotRow writes row r of the current tableau B⁻¹·A into dst, which has
	// length n and arbitrary prior contents.
	pivotRow(r int, dst []float64)
	// reducedCosts writes d = c − c_Bᵀ·B⁻¹·A into dst (length n) from
	// scratch, reading the basic cost entries through the driver's basis.
	reducedCosts(cost []float64, dst []float64)
	// tau writes Aᵀ·B⁻ᵀ·x into dst (length n) for an arbitrary x of length
	// m — the cross-column inner products steepest-edge pricing needs
	// (tau_j = T_jᵀ·T_q when x is the entering tableau column).
	tau(x []float64, dst []float64)
	// applyPivot installs the basis exchange the driver has already recorded
	// in s.basis/s.status: column enter became basic in row leaveRow, and
	// alpha is the tableau column of enter under the pre-pivot basis (as
	// used by the ratio test). The returned flag reports whether the core
	// refactorized as part of the update (eta chain at its cap, or an
	// unsafely small pivot element); the driver must then refresh its
	// reduced costs, because s.beta and the row assignment were rebuilt.
	applyPivot(enter, leaveRow int, alpha []float64) (rebuilt bool)
	// peakEta reports the longest product-form eta chain the core carried
	// between refactorizations (zero for cores without update chains).
	peakEta() int
}
