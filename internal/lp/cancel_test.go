package lp

import (
	"context"
	"testing"
)

// smallLP builds a 2-variable LP with a nontrivial optimum so that solving it
// requires at least one pivot.
func smallLP() *Problem {
	p := NewProblem()
	x := p.AddVariable("x", 0, Infinity, -3)
	y := p.AddVariable("y", 0, Infinity, -2)
	p.AddConstraint("c1", []Entry{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint("c2", []Entry{{x, 1}, {y, 3}}, LE, 6)
	return p
}

func TestSolveCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveCtx(ctx, smallLP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusCancelled {
		t.Errorf("status = %v, want %v", sol.Status, StatusCancelled)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	want, err := Solve(smallLP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveCtx(context.Background(), smallLP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective != want.Objective || got.Iterations != want.Iterations {
		t.Errorf("SolveCtx = %+v, Solve = %+v", got, want)
	}
	for j := range want.X {
		if got.X[j] != want.X[j] {
			t.Errorf("X[%d] = %g, want %g", j, got.X[j], want.X[j])
		}
	}
}

func TestStatusCancelledString(t *testing.T) {
	if StatusCancelled.String() != "cancelled" {
		t.Errorf("StatusCancelled.String() = %q", StatusCancelled.String())
	}
}
