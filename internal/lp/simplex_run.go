package lp

import "math"

// run executes phase 1 (drive artificial infeasibility to zero) and phase 2
// (optimize the real objective), returning the final status.
func (s *simplex) run() Status {
	if s.forcedInfeasible {
		return StatusInfeasible
	}
	if s.m == 0 && s.n == 0 {
		return StatusOptimal
	}

	// Phase 1 is only needed when artificials were introduced.
	if s.artStart < s.n {
		s.inPhase1 = true
		s.computeReducedCosts()
		st := s.iterate()
		if st == StatusIterLimit || st == StatusCancelled {
			return st
		}
		if s.phase1Objective() > 1e-6 {
			return StatusInfeasible
		}
		// Freeze artificials at zero so they can never re-enter with a
		// nonzero value during phase 2.
		for j := s.artStart; j < s.n; j++ {
			s.lower[j], s.upper[j] = 0, 0
			if s.status[j] != inBasis {
				s.status[j] = atLower
			}
		}
	}

	s.inPhase1 = false
	s.computeReducedCosts()
	return s.iterate()
}

// phase1Objective sums the current artificial variable values.
func (s *simplex) phase1Objective() float64 {
	sum := 0.0
	for i, j := range s.basis {
		if j >= s.artStart {
			sum += s.beta[i]
		}
	}
	return sum
}

// activeCost returns the cost vector of the current phase.
func (s *simplex) activeCost() []float64 {
	if s.inPhase1 {
		return s.phase1Cost
	}
	return s.cost
}

// computeReducedCosts recomputes the reduced-cost row from scratch through
// the core: d_j = c_j − c_Bᵀ·T_j (one BTRAN plus a matrix pass on the sparse
// core, a dense accumulation on the dense one).
func (s *simplex) computeReducedCosts() {
	c := s.activeCost()
	if s.reduced == nil || len(s.reduced) != s.n {
		s.reduced = make([]float64, s.n)
	}
	s.core.reducedCosts(c, s.reduced)
	for _, j := range s.basis {
		s.reduced[j] = 0
	}
}

// iterate performs simplex pivots until optimality, unboundedness or the
// iteration limit for the active phase.
func (s *simplex) iterate() Status {
	sinceRefresh := 0
	for {
		if s.iterations >= s.maxIter {
			return StatusIterLimit
		}
		if s.cancelled() {
			return StatusCancelled
		}
		if sinceRefresh >= s.refresh {
			s.computeReducedCosts()
			sinceRefresh = 0
		}

		enter, dir := s.chooseEntering()
		if enter < 0 {
			return StatusOptimal
		}

		alpha := s.colBuf
		s.core.column(enter, alpha)
		leaveRow, bound, step, ok := s.ratioTest(enter, dir, alpha)
		if !ok {
			if s.inPhase1 {
				// The phase-1 objective is bounded below by zero, so an
				// unbounded ray indicates numerical trouble; refresh and
				// retry once before giving up.
				s.computeReducedCosts()
				sinceRefresh = 0
				enter2, dir2 := s.chooseEntering()
				if enter2 < 0 {
					return StatusOptimal
				}
				s.core.column(enter2, alpha)
				leaveRow, bound, step, ok = s.ratioTest(enter2, dir2, alpha)
				if !ok {
					return StatusUnbounded
				}
				enter, dir = enter2, dir2
			} else {
				return StatusUnbounded
			}
		}

		s.iterations++
		sinceRefresh++
		if step <= s.tol {
			s.degenerate++
			if s.degenerate > 2*(s.m+s.n) {
				s.useBland = true
			}
		} else {
			s.degenerate = 0
			if s.useBland {
				s.useBland = false
			}
		}

		if leaveRow < 0 {
			// Bound flip: the entering variable moves to its other bound
			// without any basis change.
			s.applyBoundFlip(enter, dir, step, alpha)
			continue
		}
		s.pivot(enter, dir, leaveRow, bound, step, alpha)
	}
}

// chooseEntering returns the entering column and its movement direction
// (+1 increase, −1 decrease), or (-1, 0) when the current basis is optimal.
// The configured pivot rule scores the eligible columns; anti-cycling mode
// overrides it with Bland's rule.
func (s *simplex) chooseEntering() (int, float64) {
	useBland := s.useBland || s.rule == PivotBland
	var weights []float64
	if !useBland {
		switch s.rule {
		case PivotDevex:
			weights = s.devexWeights()
		case PivotSteepest:
			weights = s.steepestWeights()
		}
	}
	best := -1
	bestScore := 0.0
	bestDir := 0.0
	for j := 0; j < s.n; j++ {
		st := s.status[j]
		if st == inBasis {
			continue
		}
		if s.lower[j] == s.upper[j] && st != atFree {
			continue // fixed variable can never move
		}
		d := s.reduced[j]
		var score, dir float64
		switch st {
		case atLower:
			if d < -s.tol {
				score, dir = -d, 1
			}
		case atUpper:
			if d > s.tol {
				score, dir = d, -1
			}
		case atFree:
			if d < -s.tol {
				score, dir = -d, 1
			} else if d > s.tol {
				score, dir = d, -1
			}
		}
		if dir == 0 {
			continue
		}
		if useBland {
			// Bland's rule: first eligible index.
			return j, dir
		}
		if weights != nil {
			score = score * score / weights[j]
		}
		if score > bestScore {
			bestScore = score
			best = j
			bestDir = dir
		}
	}
	return best, bestDir
}

// ratioTest determines how far the entering variable can move along its
// tableau column alpha = B⁻¹·A_enter. It returns the blocking basic row (or
// −1 for a bound flip of the entering variable itself), which bound the
// leaving variable hits (atLower or atUpper), the step length, and ok=false
// when the problem is unbounded in that direction.
func (s *simplex) ratioTest(enter int, dir float64, alpha []float64) (leaveRow int, bound varStatus, step float64, ok bool) {
	const pivTol = 1e-9
	step = math.Inf(1)
	leaveRow = -1
	bound = atLower

	// The entering variable is limited by the distance to its own opposite
	// bound (a bound flip).
	if !math.IsInf(s.lower[enter], -1) && !math.IsInf(s.upper[enter], 1) {
		step = s.upper[enter] - s.lower[enter]
	}

	for i := 0; i < s.m; i++ {
		a := alpha[i]
		if math.Abs(a) < pivTol {
			continue
		}
		b := s.basis[i]
		delta := dir * a
		var limit float64
		var hit varStatus
		if delta > 0 {
			// Basic variable decreases toward its lower bound.
			if math.IsInf(s.lower[b], -1) {
				continue
			}
			limit = (s.beta[i] - s.lower[b]) / delta
			hit = atLower
		} else {
			// Basic variable increases toward its upper bound.
			if math.IsInf(s.upper[b], 1) {
				continue
			}
			limit = (s.upper[b] - s.beta[i]) / (-delta)
			hit = atUpper
		}
		if limit < -s.tol {
			limit = 0
		}
		if limit < step-1e-12 {
			step = limit
			leaveRow = i
			bound = hit
		} else if leaveRow >= 0 && math.Abs(limit-step) <= 1e-12 {
			if s.lexPivoting {
				// Bland's leaving rule: the lowest basic column index among
				// tied rows, so the canonicalization pass cannot cycle
				// through the bases of a degenerate vertex.
				if b < s.basis[leaveRow] {
					leaveRow = i
					bound = hit
				}
			} else if math.Abs(a) > math.Abs(alpha[leaveRow]) {
				// Tie-break on the larger pivot element for numerical
				// stability.
				leaveRow = i
				bound = hit
			}
		}
	}
	if math.IsInf(step, 1) {
		return -1, atLower, 0, false
	}
	if step < 0 {
		step = 0
	}
	return leaveRow, bound, step, true
}

// applyBoundFlip moves a nonbasic variable from one finite bound to the other
// and updates the basic values along its tableau column alpha.
func (s *simplex) applyBoundFlip(enter int, dir, step float64, alpha []float64) {
	if step != 0 {
		for i := 0; i < s.m; i++ {
			if a := alpha[i]; a != 0 {
				s.beta[i] -= dir * step * a
			}
		}
	}
	if dir > 0 {
		s.status[enter] = atUpper
	} else {
		s.status[enter] = atLower
	}
}

// pivot performs a basis exchange: the entering column becomes basic in
// leaveRow, the previous basic variable of that row leaves at the given
// bound. alpha is the entering tableau column under the pre-pivot basis (the
// one the ratio test ran on). The driver updates the basic values, the
// reduced-cost row (one rank-one update from the pivot row) and the pricing
// weights itself; the core then installs the exchange — a full elimination on
// the dense core, one appended eta (with a possible refactorization) on the
// sparse core. A core-side rebuild replaces beta and the row assignment, so
// the reduced costs are recomputed from scratch when it happens.
func (s *simplex) pivot(enter int, dir float64, leaveRow int, bound varStatus, step float64, alpha []float64) {
	leaving := s.basis[leaveRow]

	// New value of the entering variable.
	enterVal := s.nonbasicValue(enter) + dir*step

	// Update the other basic values.
	for i := 0; i < s.m; i++ {
		if i == leaveRow {
			continue
		}
		if a := alpha[i]; a != 0 {
			s.beta[i] -= dir * step * a
		}
	}

	// Pivot row under the pre-pivot basis, normalized by the pivot element.
	prow := s.prowBuf
	s.core.pivotRow(leaveRow, prow)
	inv := 1 / prow[enter]
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1

	// Pricing-weight recurrences read the pre-pivot basis inverse (steepest
	// edge does an extra BTRAN through the core), so they run before the
	// core installs the exchange.
	switch s.rule {
	case PivotDevex:
		s.updateDevexWeights(enter, leaving, prow, inv)
	case PivotSteepest:
		s.updateSteepestWeights(enter, leaving, alpha, prow, inv)
	}

	// Rank-one update of the reduced costs.
	dEnter := s.reduced[enter]
	if dEnter != 0 {
		for j := 0; j < s.n; j++ {
			s.reduced[j] -= dEnter * prow[j]
		}
	}
	s.reduced[enter] = 0

	// Book-keeping: statuses, basis, values.
	s.basis[leaveRow] = enter
	s.status[enter] = inBasis
	s.beta[leaveRow] = enterVal
	if math.IsInf(s.lower[leaving], -1) && math.IsInf(s.upper[leaving], 1) {
		s.status[leaving] = atFree
	} else {
		s.status[leaving] = bound
	}

	if s.core.applyPivot(enter, leaveRow, alpha) {
		s.refactorizations++
		s.computeReducedCosts()
	}
}

// extract returns the structural variable values of the current basis.
func (s *simplex) extract() []float64 {
	x := make([]float64, s.nStruct)
	if s.forcedInfeasible {
		return x
	}
	for j := 0; j < s.nStruct && j < len(s.status); j++ {
		if s.status[j] != inBasis {
			x[j] = s.nonbasicValue(j)
		}
	}
	for i, j := range s.basis {
		if j < s.nStruct {
			x[j] = s.beta[i]
		}
	}
	return x
}
