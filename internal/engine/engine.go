// Package engine exposes a batch API over the progressive layout flow: many
// circuits are solved concurrently on a bounded worker pool, each job fully
// isolated from the others. It is the serving-side entry point of the solver
// stack (engine → pilp → ilpmodel → milp → lp) — cmd/rficgen and
// cmd/rficbench drive it via their -parallel flag, and a future service
// front-end can feed it straight from a request queue.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"rficlayout/internal/faultinject"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// PanicError is the job error produced when a solve panics: the panic value
// plus the goroutine stack captured at recovery, so an isolated panic is
// still fully diagnosable from the job result (or the server log) alone.
// Serving layers match it with errors.As to count panics separately from
// ordinary solve failures.
type PanicError struct {
	// Job names the job that panicked.
	Job string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the stack of the panicking goroutine (debug.Stack output).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %s panicked: %v", e.Job, e.Value)
}

// Job is one circuit to lay out.
type Job struct {
	// ID is an optional caller-assigned identifier, echoed in the Result.
	// Serving front-ends use it to correlate queued requests with results;
	// the engine itself only passes it through.
	ID string
	// Name identifies the job in its Result; it defaults to the circuit name.
	Name string
	// Circuit is the circuit to solve. A nil circuit fails the job without
	// affecting the batch.
	Circuit *netlist.Circuit
	// Options tune the progressive flow for this job. In a batch of more
	// than one job, a zero Workers is pinned to one worker per flow so the
	// nested pools do not oversubscribe the machine (the flow's output does
	// not depend on its worker count, so this only affects scheduling).
	Options pilp.Options
}

func (j Job) name() string {
	if j.Name != "" {
		return j.Name
	}
	if j.Circuit != nil {
		return j.Circuit.Name
	}
	return "<nil>"
}

// Result is the outcome of one Job, in the same position as its job in the
// input slice.
type Result struct {
	// ID echoes the job's caller-assigned identifier.
	ID   string
	Name string
	// Runtime is the job's wall-clock time as measured by the engine: the
	// full solve including panics and failures, so it is populated even when
	// Err is non-nil (unlike Result.Runtime, which only exists on success).
	Runtime time.Duration
	// Nodes is the total branch-and-bound node count of the job's flow, zero
	// when the job failed before solving.
	Nodes int
	// LP aggregates the flow's simplex-level effort counters
	// (pilp.Result.LP); zero when the job failed before solving.
	LP pilp.LPStats
	// Shards echoes the per-cluster sub-solve stats of the sharded phase-1
	// adjustment (pilp.Result.Shards); nil when the flow ran the monolithic
	// phase 1 or failed before solving.
	Shards []pilp.ShardStat
	// Partial reports that the flow was interrupted by deadline or
	// cancellation and Result holds the best layout found so far rather than
	// the fully refined one (pilp.Result.Partial; requires
	// Options.AcceptPartial).
	Partial bool
	Result  *pilp.Result
	Err     error
}

// Options tunes a Run.
type Options struct {
	// Parallel bounds the number of jobs in flight at once. Zero means
	// GOMAXPROCS; one runs the batch sequentially.
	Parallel int
	// Logf, when non-nil, receives per-job progress messages; it may be
	// called from concurrent workers.
	Logf func(format string, args ...interface{})
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run solves every job and returns one Result per job, in input order. Jobs
// run concurrently on at most opts.Parallel workers, and each is isolated: a
// failing — even panicking — solve is reported in its own Result and leaves
// every other job untouched. Cancelling the context stops jobs at their next
// solve boundary and fails not-yet-started jobs with the context error.
func Run(ctx context.Context, jobs []Job, opts Options) []Result {
	results := make([]Result, len(jobs))
	sem := make(chan struct{}, opts.parallel())
	var wg sync.WaitGroup
	for i := range jobs {
		results[i].ID = jobs[i].ID
		results[i].Name = jobs[i].name()
		if err := ctx.Err(); err != nil {
			results[i].Err = err
			continue
		}
		// With several jobs the engine owns the parallelism dimension: each
		// flow is pinned to one worker so cross-job concurrency (bounded by
		// opts.Parallel) is the only source of load. This also makes
		// Parallel=1 genuinely sequential.
		job := jobs[i]
		if len(jobs) > 1 && job.Options.Workers == 0 {
			job.Options.Workers = 1
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, job Job) {
			defer wg.Done()
			start := time.Now()
			results[i].Result, results[i].Err = runOne(ctx, job)
			results[i].Runtime = time.Since(start)
			if results[i].Result != nil {
				results[i].Nodes = results[i].Result.Nodes
				results[i].LP = results[i].Result.LP
				results[i].Shards = results[i].Result.Shards
				results[i].Partial = results[i].Result.Partial
			}
			if results[i].Err != nil {
				opts.logf("engine: job %s failed after %v: %v", results[i].Name, results[i].Runtime, results[i].Err)
			} else {
				opts.logf("engine: job %s done in %v (%d nodes, %d LP pivots)", results[i].Name, results[i].Runtime, results[i].Nodes, results[i].LP.Pivots)
			}
			<-sem
		}(i, job)
	}
	wg.Wait()
	return results
}

// runOne solves a single job, converting panics into errors so one bad
// circuit cannot take down the batch.
func runOne(ctx context.Context, job Job) (res *pilp.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Job: job.name(), Value: r, Stack: debug.Stack()}
		}
	}()
	if job.Circuit == nil {
		return nil, fmt.Errorf("engine: job %s has no circuit", job.name())
	}
	faultinject.PanicAt(faultinject.PointEnginePanic)
	return pilp.GenerateCtx(ctx, job.Circuit, job.Options)
}
