package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/tech"
)

// testCircuit builds a minimal solvable circuit: PIN → M1 → POUT.
func testCircuit(name string) *netlist.Circuit {
	c := netlist.NewCircuit(name, tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	d := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	d.AddPin("in", geom.PtMicrons(-20, 0), 0)
	d.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(d)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(130))
	c.Connect("TL2", "M1", "out", "POUT", "p", geom.FromMicrons(140))
	return c
}

func fastOptions() pilp.Options {
	return pilp.Options{
		ChainPoints:         3,
		MaxChainPoints:      3,
		StripTimeLimit:      2 * time.Second,
		PhaseTimeLimit:      5 * time.Second,
		MaxRefineIterations: 1,
	}
}

// TestRunBatch solves several circuits concurrently and checks that every
// result arrives in input order with a complete layout.
func TestRunBatch(t *testing.T) {
	jobs := []Job{
		{Circuit: testCircuit("alpha"), Options: fastOptions()},
		{Circuit: testCircuit("beta"), Options: fastOptions()},
		{Circuit: testCircuit("gamma"), Options: fastOptions()},
	}
	results := Run(context.Background(), jobs, Options{Parallel: 2})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Name != jobs[i].Circuit.Name {
			t.Errorf("result %d named %q, want %q", i, r.Name, jobs[i].Circuit.Name)
		}
		if r.Err != nil {
			t.Errorf("job %s failed: %v", r.Name, r.Err)
			continue
		}
		if r.Result.Layout == nil || !r.Result.Layout.Complete() {
			t.Errorf("job %s produced an incomplete layout", r.Name)
		}
	}
}

// TestRunBatchDeterministicAcrossParallelism checks the batch-level
// determinism contract: per-job layouts do not depend on how many jobs run
// concurrently.
func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	build := func() []Job {
		return []Job{
			{Circuit: testCircuit("alpha"), Options: fastOptions()},
			{Circuit: testCircuit("beta"), Options: fastOptions()},
		}
	}
	seq := Run(context.Background(), build(), Options{Parallel: 1})
	par := Run(context.Background(), build(), Options{Parallel: 4})
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if layout.Format(seq[i].Result.Layout) != layout.Format(par[i].Result.Layout) {
			t.Errorf("job %s: parallel batch produced a different layout", seq[i].Name)
		}
	}
}

// TestRunIsolatesFailures checks that a broken job fails alone: nil circuits
// and invalid circuits produce per-job errors while their neighbours solve.
func TestRunIsolatesFailures(t *testing.T) {
	invalid := netlist.NewCircuit("invalid", tech.Default90nm(), geom.FromMicrons(100), geom.FromMicrons(100))
	invalid.Connect("TL1", "GHOST", "p", "PHANTOM", "q", geom.FromMicrons(50))
	jobs := []Job{
		{Name: "broken-nil", Circuit: nil},
		{Circuit: invalid, Options: fastOptions()},
		{Circuit: testCircuit("ok"), Options: fastOptions()},
	}
	results := Run(context.Background(), jobs, Options{Parallel: 3})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "no circuit") {
		t.Errorf("nil-circuit job: err = %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("invalid circuit did not fail")
	}
	if results[2].Err != nil {
		t.Errorf("healthy neighbour failed: %v", results[2].Err)
	}
}

// TestRunPreCancelled checks that a cancelled context fails every job with
// the context error without solving anything.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results := Run(ctx, []Job{
		{Circuit: testCircuit("a"), Options: fastOptions()},
		{Circuit: testCircuit("b"), Options: fastOptions()},
	}, Options{})
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("job %s ran under a cancelled context", r.Name)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled batch took %v", elapsed)
	}
}

// TestRunReportsStats checks the per-job stats surface: every job gets a
// wall-clock Runtime and a positive MILP node count, failed jobs still get a
// Runtime, and caller-assigned IDs are echoed.
func TestRunReportsStats(t *testing.T) {
	jobs := []Job{
		{ID: "job-1", Circuit: testCircuit("alpha"), Options: fastOptions()},
		{ID: "job-2", Name: "broken", Circuit: nil},
	}
	results := Run(context.Background(), jobs, Options{Parallel: 1})
	ok, broken := results[0], results[1]
	if ok.ID != "job-1" || broken.ID != "job-2" {
		t.Errorf("IDs not echoed: got %q, %q", ok.ID, broken.ID)
	}
	if ok.Err != nil {
		t.Fatalf("job failed: %v", ok.Err)
	}
	if ok.Runtime <= 0 {
		t.Errorf("successful job has no wall-clock runtime: %v", ok.Runtime)
	}
	if ok.Nodes <= 0 {
		t.Errorf("successful job reports %d MILP nodes, want > 0", ok.Nodes)
	}
	if ok.Result.Nodes != ok.Nodes {
		t.Errorf("engine nodes %d differ from flow nodes %d", ok.Nodes, ok.Result.Nodes)
	}
	if broken.Err == nil {
		t.Fatal("nil-circuit job did not fail")
	}
	if broken.Nodes != 0 {
		t.Errorf("failed job reports %d nodes, want 0", broken.Nodes)
	}
}

// TestRunSurfacesShardStats checks that a sharded flow's per-cluster stats
// ride through the engine result: a chain long enough to split at the
// configured shard size must report at least two shards.
func TestRunSurfacesShardStats(t *testing.T) {
	c := netlist.NewCircuit("shardable", tech.Default90nm(), geom.FromMicrons(900), geom.FromMicrons(420))
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	prev, prevPin := "PIN", "p"
	for i := 1; i <= 6; i++ {
		name := "M" + string(rune('0'+i))
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("in", geom.PtMicrons(-20, 0), 0)
		d.AddPin("out", geom.PtMicrons(20, 0), 0)
		c.AddDevice(d)
		c.Connect("TL"+string(rune('0'+i)), prev, prevPin, name, "in", geom.FromMicrons(120))
		prev, prevPin = name, "out"
	}
	c.Connect("TL7", prev, prevPin, "POUT", "p", geom.FromMicrons(120))

	opts := fastOptions()
	opts.ShardSize = 3
	results := Run(context.Background(), []Job{{Circuit: c, Options: opts}}, Options{Parallel: 1})
	r := results[0]
	if r.Err != nil {
		t.Fatalf("job failed: %v", r.Err)
	}
	if len(r.Shards) < 2 {
		t.Fatalf("engine result has %d shard stats, want >= 2", len(r.Shards))
	}
	if len(r.Shards) != len(r.Result.Shards) {
		t.Errorf("engine shards %d differ from flow shards %d", len(r.Shards), len(r.Result.Shards))
	}
}
