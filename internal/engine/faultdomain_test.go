package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rficlayout/internal/faultinject"
	"rficlayout/internal/layout"
)

// TestRunConvertsPanicToPanicError checks the panic firewall: a panicking
// solve becomes a *PanicError carrying the panic value and the goroutine
// stack, and neighbouring jobs are untouched.
func TestRunConvertsPanicToPanicError(t *testing.T) {
	plan, err := faultinject.ParsePlan(faultinject.PointEnginePanic + "=1/1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(plan, 1))
	t.Cleanup(faultinject.Disable)

	// Parallel:1 keeps job order deterministic: the injected panic (budget 1)
	// kills exactly the first job.
	results := Run(context.Background(), []Job{
		{Circuit: testCircuit("victim"), Options: fastOptions()},
		{Circuit: testCircuit("survivor"), Options: fastOptions()},
	}, Options{Parallel: 1})

	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("panicked job err = %v (%T), want *PanicError", results[0].Err, results[0].Err)
	}
	if pe.Job != "victim" {
		t.Errorf("PanicError.Job = %q, want victim", pe.Job)
	}
	if want := "faultinject: injected panic at engine.panic"; !strings.Contains(results[0].Err.Error(), want) {
		t.Errorf("error %q does not carry the deterministic panic message %q", results[0].Err, want)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "runOne") {
		t.Errorf("PanicError.Stack does not capture the solve stack:\n%s", pe.Stack)
	}
	if results[1].Err != nil {
		t.Fatalf("neighbour of panicked job failed: %v", results[1].Err)
	}
	if results[1].Result.Layout == nil || !results[1].Result.Layout.Complete() {
		t.Error("neighbour of panicked job produced an incomplete layout")
	}
}

// TestRunSurvivesConcPanicInjection drives the deeper injection point — a
// panic inside the shared worker pool, below pilp — through the same
// firewall, and checks that once the fault budget is spent the identical
// job solves to the byte-identical layout (the chaos battery's core claim).
func TestRunSurvivesConcPanicInjection(t *testing.T) {
	baseline := Run(context.Background(), []Job{{Circuit: testCircuit("c"), Options: fastOptions()}}, Options{Parallel: 1})
	if baseline[0].Err != nil {
		t.Fatalf("baseline solve failed: %v", baseline[0].Err)
	}

	plan, err := faultinject.ParsePlan(faultinject.PointConcPanic + "=1/1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(plan, 2))
	t.Cleanup(faultinject.Disable)

	faulted := Run(context.Background(), []Job{{Circuit: testCircuit("c"), Options: fastOptions()}}, Options{Parallel: 1})
	var pe *PanicError
	if !errors.As(faulted[0].Err, &pe) {
		t.Fatalf("conc-panicked job err = %v, want *PanicError", faulted[0].Err)
	}

	// Budget exhausted: the re-solve must reproduce the fault-free layout.
	healed := Run(context.Background(), []Job{{Circuit: testCircuit("c"), Options: fastOptions()}}, Options{Parallel: 1})
	if healed[0].Err != nil {
		t.Fatalf("re-solve after faults cleared failed: %v", healed[0].Err)
	}
	if layout.Format(healed[0].Result.Layout) != layout.Format(baseline[0].Result.Layout) {
		t.Error("layout after faults cleared differs from the fault-free baseline")
	}
}

// TestRunPartialPassthrough checks that pilp's anytime Partial flag rides
// through the engine result. The flow's context is cancelled right after
// construction (via the Logf hook — deterministic, unlike a tiny deadline),
// so with AcceptPartial the job returns the constructed layout marked
// partial instead of failing.
func TestRunPartialPassthrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOptions()
	opts.AcceptPartial = true
	opts.Logf = func(format string, args ...interface{}) {
		if strings.Contains(format, "constructed initial layout") {
			cancel()
		}
	}
	results := Run(ctx, []Job{{Circuit: testCircuit("p"), Options: opts}}, Options{Parallel: 1})
	r := results[0]
	if r.Err != nil {
		t.Fatalf("AcceptPartial job failed: %v", r.Err)
	}
	if !r.Partial || !r.Result.Partial {
		t.Fatalf("partial flag not propagated: engine=%v flow=%v", r.Partial, r.Result.Partial)
	}
	if r.Result.Layout == nil {
		t.Fatal("partial result carries no layout")
	}
	if r.Result.PartialPhase == "" {
		t.Error("partial result names no phase")
	}

	// Without AcceptPartial the same cancellation is an error, as before.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	strict := fastOptions()
	strict.Logf = func(format string, args ...interface{}) {
		if strings.Contains(format, "constructed initial layout") {
			cancel2()
		}
	}
	results2 := Run(ctx2, []Job{{Circuit: testCircuit("p"), Options: strict}}, Options{Parallel: 1})
	if results2[0].Err == nil {
		t.Fatal("cancellation without AcceptPartial did not fail the job")
	}
	if results2[0].Partial {
		t.Error("failed job marked partial")
	}
}
