// Package manual emulates the manual ("simulation-tuning based") layout flow
// that the paper uses as its baseline in Table 1 and Figure 11. A human
// designer first produces a rough planar layout and then matches every
// microstrip to its target length by inserting compact meanders near the
// devices — which is fast to do by hand but leaves many more bends than the
// globally optimized P-ILP result. This package reproduces that behaviour:
// it reuses the constructive placement of the progressive flow and then
// length-matches each strip with a serpentine meander of small pitch instead
// of solving an ILP, yielding layouts whose bend counts are of the same order
// as the paper's "Manual" column.
package manual

import (
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Options tunes the emulated manual flow.
type Options struct {
	// MeanderPitch is the spacing between meander legs; small pitches give
	// the dense, bend-heavy meanders typical of hand layouts. Zero means
	// 2.5× the spacing rule.
	MeanderPitch geom.Coord
	// MaxMeanderLegs bounds the meander size per strip. Zero means 12.
	MaxMeanderLegs int
}

func (o Options) pitch(c *netlist.Circuit) geom.Coord {
	if o.MeanderPitch > 0 {
		return o.MeanderPitch
	}
	return c.Tech.Spacing()*5/2 + c.Tech.MicrostripWidth
}

func (o Options) maxLegs() int {
	if o.MaxMeanderLegs > 0 {
		return o.MaxMeanderLegs
	}
	return 12
}

// Generate produces the manual-style baseline layout for the circuit.
func Generate(c *netlist.Circuit, opts Options) (*layout.Layout, error) {
	l, err := pilp.Construct(c)
	if err != nil {
		return nil, err
	}
	delta := c.Tech.BendCompensation
	for _, rs := range l.RoutedStrips() {
		matched := matchWithMeander(rs.Path, rs.Strip.TargetLength, delta, opts.pitch(c), opts.maxLegs())
		if err := l.Route(rs.Strip.Name, matched...); err != nil {
			return nil, fmt.Errorf("manual: rerouting %s: %w", rs.Strip.Name, err)
		}
	}
	return l, nil
}

// matchWithMeander lengthens a route to its target equivalent length by
// replacing the longest leg with a serpentine meander, the way a designer
// adds "wiggles" near a device. Routes that are already long enough (or
// cannot be matched) are returned unchanged.
func matchWithMeander(path geom.Polyline, target geom.Coord, delta, pitch geom.Coord, maxLegs int) []geom.Point {
	pts := path.Simplify().Points
	if len(pts) < 2 {
		return pts
	}
	current := geom.Polyline{Points: pts, Width: path.Width}
	need := target - (current.Length() + geom.Coord(current.Bends())*delta)
	if need <= 0 {
		return pts
	}

	// Find the longest leg; the meander is inserted there.
	longest := 1
	for i := 2; i < len(pts); i++ {
		if pts[i-1].ManhattanTo(pts[i]) > pts[longest-1].ManhattanTo(pts[longest]) {
			longest = i
		}
	}
	a, b := pts[longest-1], pts[longest]
	dir, ok := geom.DirectionBetween(a, b)
	if !ok {
		return pts
	}
	legLen := a.ManhattanTo(b)

	// Each meander "tooth" adds 2·amplitude of extra geometric length and 4
	// bends (worth 4·δ of equivalent length). Choose the smallest number of
	// teeth whose amplitude stays compact, the way hand meanders look.
	amplitude := pitch * 2
	teeth := int((need + 4*geom.AbsCoord(delta) + 2*amplitude - 1) / (2 * amplitude))
	if teeth < 1 {
		teeth = 1
	}
	if teeth*2 > maxLegs {
		teeth = maxLegs / 2
		if teeth < 1 {
			teeth = 1
		}
	}
	// Re-derive the amplitude so the equivalent length comes out exactly:
	// extra = teeth·2·amplitude + bends·δ with 4 bends per tooth.
	bendComp := geom.Coord(4*teeth) * delta
	amplitude = (need - bendComp) / geom.Coord(2*teeth)
	if amplitude <= 0 {
		return pts
	}
	// The teeth must fit on the leg.
	toothPitch := legLen / geom.Coord(teeth+1)
	if toothPitch < pitch {
		toothPitch = pitch
	}

	perp := geom.Up
	if dir.Vertical() {
		perp = geom.Right
	}
	step := dir.Delta()
	side := perp.Delta()

	meander := []geom.Point{a}
	cur := a
	for tIdx := 0; tIdx < teeth; tIdx++ {
		cur = cur.Add(geom.Pt(step.X*toothPitch, step.Y*toothPitch))
		up := cur.Add(geom.Pt(side.X*amplitude, side.Y*amplitude))
		upOver := up.Add(geom.Pt(step.X*(pitch/2+1), step.Y*(pitch/2+1)))
		back := geom.Pt(upOver.X-side.X*amplitude, upOver.Y-side.Y*amplitude)
		meander = append(meander, cur, up, upOver, back)
		cur = back
	}
	meander = append(meander, b)

	out := append([]geom.Point(nil), pts[:longest]...)
	out = append(out, meander[1:len(meander)-1]...)
	out = append(out, pts[longest:]...)
	return out
}

// Metrics is a convenience wrapper returning the Table 1 style metrics of a
// manual layout.
func Metrics(l *layout.Layout) layout.Metrics { return l.Metrics() }
