package manual

import (
	"testing"

	"rficlayout/internal/circuits"
	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

func TestMatchWithMeanderAddsLengthAndBends(t *testing.T) {
	// A 200 µm straight leg that must become 300 µm equivalent.
	path := geom.MustPolyline(geom.FromMicrons(10), geom.PtMicrons(0, 0), geom.PtMicrons(200, 0))
	delta := geom.FromMicrons(-4)
	pts := matchWithMeander(path, geom.FromMicrons(300), delta, geom.FromMicrons(25), 12)
	pl := geom.Polyline{Points: pts, Width: path.Width}
	eq := pl.Length() + geom.Coord(pl.Bends())*delta
	if diff := geom.AbsCoord(eq - geom.FromMicrons(300)); diff > geom.FromMicrons(8) {
		t.Errorf("equivalent length %.1f µm, want ≈300 (diff %.1f)", geom.Microns(eq), geom.Microns(diff))
	}
	if pl.Bends() < 4 {
		t.Errorf("meander has only %d bends; a hand meander has at least one full tooth", pl.Bends())
	}
	if !pts[0].Eq(path.Points[0]) || !pts[len(pts)-1].Eq(path.Points[len(path.Points)-1]) {
		t.Error("meander moved the endpoints")
	}
}

func TestMatchWithMeanderLeavesLongRoutesAlone(t *testing.T) {
	path := geom.MustPolyline(geom.FromMicrons(10), geom.PtMicrons(0, 0), geom.PtMicrons(200, 0))
	pts := matchWithMeander(path, geom.FromMicrons(150), geom.FromMicrons(-4), geom.FromMicrons(25), 12)
	if len(pts) != 2 {
		t.Errorf("already-too-long route was modified: %v", pts)
	}
}

func TestGenerateSmallCircuit(t *testing.T) {
	c := netlist.NewCircuit("mini", tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	m1 := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	m1.AddPin("in", geom.PtMicrons(-20, 0), 0)
	m1.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(m1)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(180))
	c.Connect("TL2", "M1", "out", "POUT", "p", geom.FromMicrons(200))

	l, err := Generate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Fatal("manual layout incomplete")
	}
	m := l.Metrics()
	if m.TotalBends == 0 {
		t.Error("manual meandering should introduce bends")
	}
	if m.MaxLengthError > geom.FromMicrons(25) {
		t.Errorf("manual length error %.1f µm too large", geom.Microns(m.MaxLengthError))
	}
}

func TestGenerateBenchmarkCircuitHasManyBends(t *testing.T) {
	spec, err := circuits.BySpecName("buffer60")
	if err != nil {
		t.Fatal(err)
	}
	c := circuits.Build(spec)
	l, err := Generate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Fatal("manual layout incomplete")
	}
	m := l.Metrics()
	// The paper's manual layouts have dozens of bends in total; the emulated
	// designer should land in the same order of magnitude.
	if m.TotalBends < 10 {
		t.Errorf("manual baseline produced only %d bends, expected a bend-heavy layout", m.TotalBends)
	}
}
