package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Normalized returns a copy of the circuit with devices, pins and
// microstrips in canonical (name-sorted) order. The progressive flow
// normalizes its input before solving so that two circuits that differ only
// in declaration order produce byte-identical layouts — the property that
// lets the result cache key on Canonical text. Device structs are copied
// (their pin slices are re-sorted); microstrips are shared, unmodified.
func Normalized(c *Circuit) *Circuit {
	cp := *c
	cp.Devices = make([]*Device, len(c.Devices))
	for i, d := range c.Devices {
		dd := *d
		dd.Pins = append([]Pin(nil), d.Pins...)
		sort.Slice(dd.Pins, func(a, b int) bool { return dd.Pins[a].Name < dd.Pins[b].Name })
		cp.Devices[i] = &dd
	}
	sort.Slice(cp.Devices, func(a, b int) bool { return cp.Devices[a].Name < cp.Devices[b].Name })
	cp.Microstrips = append([]*Microstrip(nil), c.Microstrips...)
	sort.Slice(cp.Microstrips, func(a, b int) bool { return cp.Microstrips[a].Name < cp.Microstrips[b].Name })
	cp.rebuildIndex()
	return &cp
}

// Canonical renders the circuit in the text file format with every
// order-insensitive section sorted: devices by name, pins by name within
// their device, microstrips by name. Two circuits that differ only in
// declaration order — or in incidental formatting of the source file —
// produce byte-identical canonical text, which is what makes it suitable as
// the hashing pre-image of the content-addressed result cache: the solver
// flow is a pure function of this structure, so equal canonical text implies
// an equal layout.
//
// Canonical output is itself parseable by Parse and round-trips: parsing it
// and canonicalizing again reproduces the same bytes.
func Canonical(c *Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s\n", c.Name)
	fmt.Fprintf(&b, "area %s %s\n", um(c.AreaWidth), um(c.AreaHeight))
	fmt.Fprintf(&b, "tech name=%s t=%s width=%s delta=%s pad=%s",
		c.Tech.Name, um(c.Tech.GroundDistance), um(c.Tech.MicrostripWidth),
		um(c.Tech.BendCompensation), um(c.Tech.PadSize))
	if c.Tech.SpacingOverride > 0 {
		fmt.Fprintf(&b, " spacing=%s", um(c.Tech.SpacingOverride))
	}
	b.WriteByte('\n')

	devices := append([]*Device(nil), c.Devices...)
	sort.Slice(devices, func(i, j int) bool { return devices[i].Name < devices[j].Name })
	for _, d := range devices {
		if d.IsPad() && len(d.Pins) == 1 && d.Pins[0].Name == "p" && d.Width == d.Height {
			fmt.Fprintf(&b, "pad %s %s\n", d.Name, um(d.Width))
			continue
		}
		fmt.Fprintf(&b, "device %s %s %s %s\n", d.Name, d.Type, um(d.Width), um(d.Height))
		pins := append([]Pin(nil), d.Pins...)
		sort.Slice(pins, func(i, j int) bool { return pins[i].Name < pins[j].Name })
		for _, p := range pins {
			fmt.Fprintf(&b, "pin %s %s %s %s", d.Name, p.Name, um(p.Offset.X), um(p.Offset.Y))
			if p.SwapGroup != 0 {
				fmt.Fprintf(&b, " swap=%d", p.SwapGroup)
			}
			b.WriteByte('\n')
		}
	}

	strips := append([]*Microstrip(nil), c.Microstrips...)
	sort.Slice(strips, func(i, j int) bool { return strips[i].Name < strips[j].Name })
	for _, ms := range strips {
		fmt.Fprintf(&b, "strip %s %s %s length=%s", ms.Name, ms.From, ms.To, um(ms.TargetLength))
		if ms.Width > 0 {
			fmt.Fprintf(&b, " width=%s", um(ms.Width))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
