package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"rficlayout/internal/geom"
	"rficlayout/internal/tech"
)

// The circuit file format is a small line-oriented text format. Dimensions
// are micrometres (floats allowed), '#' starts a comment. Example:
//
//	circuit lna94
//	area 890 615
//	tech name=cmos90 t=5 width=10 delta=-4 pad=60
//	device M1 transistor 30 40
//	pin M1 gate -15 0
//	pin M1 drain 15 10 swap=1
//	pad P1
//	strip TL1 M1.drain P1.p length=320
//	strip TL2 M1.gate M2.drain length=150 width=8

// Parse reads a circuit file.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var c *Circuit
	techParams := tech.Default90nm()
	lineNo := 0
	ensure := func() error {
		if c == nil {
			return fmt.Errorf("netlist: line %d: statement before 'circuit' declaration", lineNo)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		keyword, args := fields[0], fields[1:]
		switch keyword {
		case "circuit":
			if len(args) != 1 {
				return nil, fmt.Errorf("netlist: line %d: 'circuit' needs exactly one name", lineNo)
			}
			c = NewCircuit(args[0], techParams, 0, 0)
		case "area":
			if err := ensure(); err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, fmt.Errorf("netlist: line %d: 'area' needs width and height", lineNo)
			}
			w, err1 := parseMicrons(args[0])
			h, err2 := parseMicrons(args[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("netlist: line %d: invalid area dimensions", lineNo)
			}
			c.AreaWidth, c.AreaHeight = w, h
		case "tech":
			if err := ensure(); err != nil {
				return nil, err
			}
			t := c.Tech
			for _, kv := range args {
				key, value, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("netlist: line %d: malformed tech parameter %q", lineNo, kv)
				}
				if key == "name" {
					t.Name = value
					continue
				}
				um, err := parseMicrons(value)
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: tech parameter %q: %v", lineNo, kv, err)
				}
				switch key {
				case "t":
					t.GroundDistance = um
				case "width":
					t.MicrostripWidth = um
				case "delta":
					t.BendCompensation = um
				case "pad":
					t.PadSize = um
				case "spacing":
					t.SpacingOverride = um
				default:
					return nil, fmt.Errorf("netlist: line %d: unknown tech parameter %q", lineNo, key)
				}
			}
			c.Tech = t
		case "device":
			if err := ensure(); err != nil {
				return nil, err
			}
			if len(args) != 4 {
				return nil, fmt.Errorf("netlist: line %d: 'device' needs name, type, width, height", lineNo)
			}
			dt, err := ParseDeviceType(args[1])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			w, err1 := parseMicrons(args[2])
			h, err2 := parseMicrons(args[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("netlist: line %d: invalid device dimensions", lineNo)
			}
			c.AddDevice(NewDevice(args[0], dt, w, h))
		case "pad":
			if err := ensure(); err != nil {
				return nil, err
			}
			if len(args) < 1 || len(args) > 2 {
				return nil, fmt.Errorf("netlist: line %d: 'pad' needs a name and an optional size", lineNo)
			}
			size := c.Tech.PadSize
			if len(args) == 2 {
				s, err := parseMicrons(args[1])
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: invalid pad size", lineNo)
				}
				size = s
			}
			c.AddDevice(NewPad(args[0], size))
		case "pin":
			if err := ensure(); err != nil {
				return nil, err
			}
			if len(args) < 4 || len(args) > 5 {
				return nil, fmt.Errorf("netlist: line %d: 'pin' needs device, name, x, y and optional swap=N", lineNo)
			}
			d, err := c.Device(args[0])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			x, err1 := parseMicrons(args[2])
			y, err2 := parseMicrons(args[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("netlist: line %d: invalid pin offset", lineNo)
			}
			swap := 0
			if len(args) == 5 {
				value, ok := strings.CutPrefix(args[4], "swap=")
				if !ok {
					return nil, fmt.Errorf("netlist: line %d: expected swap=N, got %q", lineNo, args[4])
				}
				swap, err = strconv.Atoi(value)
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: invalid swap group %q", lineNo, value)
				}
			}
			d.AddPin(args[1], geom.Pt(x, y), swap)
		case "strip":
			if err := ensure(); err != nil {
				return nil, err
			}
			if len(args) < 4 {
				return nil, fmt.Errorf("netlist: line %d: 'strip' needs name, from, to, length=L", lineNo)
			}
			from, err1 := parseTerminal(args[1])
			to, err2 := parseTerminal(args[2])
			if err1 != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err1)
			}
			if err2 != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err2)
			}
			ms := &Microstrip{Name: args[0], From: from, To: to}
			for _, kv := range args[3:] {
				key, value, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("netlist: line %d: malformed strip parameter %q", lineNo, kv)
				}
				um, err := parseMicrons(value)
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: strip parameter %q: %v", lineNo, kv, err)
				}
				switch key {
				case "length":
					ms.TargetLength = um
				case "width":
					ms.Width = um
				default:
					return nil, fmt.Errorf("netlist: line %d: unknown strip parameter %q", lineNo, key)
				}
			}
			c.AddMicrostrip(ms)
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown keyword %q", lineNo, keyword)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading circuit: %w", err)
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: no 'circuit' declaration found")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseFile reads a circuit file from disk.
func ParseFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// ParseString reads a circuit from an in-memory string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parseTerminal(s string) (Terminal, error) {
	dev, pin, ok := strings.Cut(s, ".")
	if !ok || dev == "" || pin == "" {
		return Terminal{}, fmt.Errorf("netlist: terminal %q is not of the form device.pin", s)
	}
	return Terminal{Device: dev, Pin: pin}, nil
}

func parseMicrons(s string) (geom.Coord, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid micron value %q", s)
	}
	return geom.FromMicrons(v), nil
}

// Format renders the circuit in the text file format accepted by Parse.
func Format(c *Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s\n", c.Name)
	fmt.Fprintf(&b, "area %s %s\n", um(c.AreaWidth), um(c.AreaHeight))
	fmt.Fprintf(&b, "tech name=%s t=%s width=%s delta=%s pad=%s",
		c.Tech.Name, um(c.Tech.GroundDistance), um(c.Tech.MicrostripWidth),
		um(c.Tech.BendCompensation), um(c.Tech.PadSize))
	if c.Tech.SpacingOverride > 0 {
		fmt.Fprintf(&b, " spacing=%s", um(c.Tech.SpacingOverride))
	}
	b.WriteByte('\n')

	devices := append([]*Device(nil), c.Devices...)
	sort.Slice(devices, func(i, j int) bool { return devices[i].Name < devices[j].Name })
	for _, d := range devices {
		if d.IsPad() && len(d.Pins) == 1 && d.Pins[0].Name == "p" && d.Width == d.Height {
			fmt.Fprintf(&b, "pad %s %s\n", d.Name, um(d.Width))
			continue
		}
		fmt.Fprintf(&b, "device %s %s %s %s\n", d.Name, d.Type, um(d.Width), um(d.Height))
		for _, p := range d.Pins {
			fmt.Fprintf(&b, "pin %s %s %s %s", d.Name, p.Name, um(p.Offset.X), um(p.Offset.Y))
			if p.SwapGroup != 0 {
				fmt.Fprintf(&b, " swap=%d", p.SwapGroup)
			}
			b.WriteByte('\n')
		}
	}
	for _, ms := range c.Microstrips {
		fmt.Fprintf(&b, "strip %s %s %s length=%s", ms.Name, ms.From, ms.To, um(ms.TargetLength))
		if ms.Width > 0 {
			fmt.Fprintf(&b, " width=%s", um(ms.Width))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFile writes the circuit to a file in the text format.
func WriteFile(path string, c *Circuit) error {
	return os.WriteFile(path, []byte(Format(c)), 0o644)
}

// um renders a Coord as a compact micron string.
func um(c geom.Coord) string {
	return strconv.FormatFloat(geom.Microns(c), 'f', -1, 64)
}
