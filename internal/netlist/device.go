// Package netlist describes the input of the RFIC layout problem (Section 3
// of the paper): the devices with their dimensions and pin offsets, the I/O
// pads that must sit on the layout boundary, and the microstrip lines with
// the exact equivalent lengths they must realize. It also provides a small
// text format for circuit files and validation of structural consistency.
package netlist

import (
	"fmt"

	"rficlayout/internal/geom"
)

// DeviceType classifies the devices that appear in mm-wave RFIC netlists.
type DeviceType int

// Device classes.
const (
	Transistor DeviceType = iota
	Capacitor
	Inductor
	Resistor
	Pad
	Generic
)

// deviceTypeNames maps types to their canonical lower-case names used in the
// circuit file format.
var deviceTypeNames = map[DeviceType]string{
	Transistor: "transistor",
	Capacitor:  "capacitor",
	Inductor:   "inductor",
	Resistor:   "resistor",
	Pad:        "pad",
	Generic:    "generic",
}

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	if n, ok := deviceTypeNames[d]; ok {
		return n
	}
	return fmt.Sprintf("DeviceType(%d)", int(d))
}

// ParseDeviceType converts a name from the circuit file format.
func ParseDeviceType(s string) (DeviceType, error) {
	for t, n := range deviceTypeNames {
		if n == s {
			return t, nil
		}
	}
	return Generic, fmt.Errorf("netlist: unknown device type %q", s)
}

// Pin is a connection point on a device, described by its offset from the
// device centre in the device's unrotated frame. Pins that share a non-zero
// SwapGroup are electrically equivalent and may be exchanged by the layout
// generator (the paper notes that equivalent pins can be switched in the
// model).
type Pin struct {
	Name      string
	Offset    geom.Point
	SwapGroup int
}

// Device is a placeable circuit element: a transistor, passive component or
// I/O pad. Dimensions are those of the device body; the spacing rule expands
// them when checking clearance to microstrips and other devices.
type Device struct {
	Name   string
	Type   DeviceType
	Width  geom.Coord
	Height geom.Coord
	Pins   []Pin
}

// NewDevice builds a device with the given body size.
func NewDevice(name string, t DeviceType, width, height geom.Coord) *Device {
	return &Device{Name: name, Type: t, Width: width, Height: height}
}

// NewPad builds a square boundary pad with a single centred pin named "p".
func NewPad(name string, size geom.Coord) *Device {
	d := NewDevice(name, Pad, size, size)
	d.AddPin("p", geom.Pt(0, 0), 0)
	return d
}

// AddPin appends a pin at the given centre offset and returns the device for
// chaining.
func (d *Device) AddPin(name string, offset geom.Point, swapGroup int) *Device {
	d.Pins = append(d.Pins, Pin{Name: name, Offset: offset, SwapGroup: swapGroup})
	return d
}

// IsPad reports whether the device is an I/O pad, which the constraints force
// onto the layout boundary (Eq. 15).
func (d *Device) IsPad() bool { return d.Type == Pad }

// Pin returns the pin with the given name.
func (d *Device) Pin(name string) (Pin, error) {
	for _, p := range d.Pins {
		if p.Name == name {
			return p, nil
		}
	}
	return Pin{}, fmt.Errorf("netlist: device %q has no pin %q", d.Name, name)
}

// HasPin reports whether the device declares the named pin.
func (d *Device) HasPin(name string) bool {
	_, err := d.Pin(name)
	return err == nil
}

// PinOffset returns the offset of the named pin from the device centre after
// applying the given orientation.
func (d *Device) PinOffset(name string, o geom.Orientation) (geom.Point, error) {
	p, err := d.Pin(name)
	if err != nil {
		return geom.Point{}, err
	}
	return o.RotateOffset(p.Offset), nil
}

// Dimensions returns the body width and height after applying the given
// orientation (90° rotations swap the two).
func (d *Device) Dimensions(o geom.Orientation) (w, h geom.Coord) {
	if o.SwapsDimensions() {
		return d.Height, d.Width
	}
	return d.Width, d.Height
}

// BodyRect returns the device body rectangle when its centre is placed at c
// with orientation o.
func (d *Device) BodyRect(c geom.Point, o geom.Orientation) geom.Rect {
	w, h := d.Dimensions(o)
	return geom.RectFromCenter(c, w, h)
}

// HalfDiagonal returns half of the body bounding-box diagonal measured in the
// Manhattan norm — the amount by which a "blurred" device grows the spacing
// box of its incident microstrips in phase 1 of the progressive flow
// (Figure 8).
func (d *Device) HalfDiagonal() geom.Coord {
	return (d.Width + d.Height) / 2
}

// Validate checks that the device is structurally sound: positive dimensions,
// unique pin names, pins inside the body.
func (d *Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("netlist: device with empty name")
	}
	if d.Width <= 0 || d.Height <= 0 {
		return fmt.Errorf("netlist: device %q has non-positive dimensions %d×%d nm", d.Name, d.Width, d.Height)
	}
	if len(d.Pins) == 0 {
		return fmt.Errorf("netlist: device %q has no pins", d.Name)
	}
	seen := map[string]bool{}
	body := geom.RectFromCenter(geom.Pt(0, 0), d.Width, d.Height)
	for _, p := range d.Pins {
		if p.Name == "" {
			return fmt.Errorf("netlist: device %q has a pin with empty name", d.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("netlist: device %q has duplicate pin %q", d.Name, p.Name)
		}
		seen[p.Name] = true
		if !body.ContainsPoint(p.Offset) {
			return fmt.Errorf("netlist: device %q pin %q offset %v lies outside the %d×%d nm body",
				d.Name, p.Name, p.Offset, d.Width, d.Height)
		}
	}
	return nil
}

// Terminal names one end of a microstrip: a device (or pad) and one of its
// pins.
type Terminal struct {
	Device string
	Pin    string
}

// String implements fmt.Stringer in the "device.pin" form used by the circuit
// file format.
func (t Terminal) String() string { return t.Device + "." + t.Pin }

// Microstrip is one transmission line of the circuit. TargetLength is the
// exact equivalent length the routed line must realize (constraint (13) of
// the paper); Width of zero means "use the technology default".
type Microstrip struct {
	Name         string
	From, To     Terminal
	TargetLength geom.Coord
	Width        geom.Coord
}

// Validate checks the microstrip fields that do not require the circuit
// context.
func (ms *Microstrip) Validate() error {
	if ms.Name == "" {
		return fmt.Errorf("netlist: microstrip with empty name")
	}
	if ms.TargetLength <= 0 {
		return fmt.Errorf("netlist: microstrip %q has non-positive target length %d nm", ms.Name, ms.TargetLength)
	}
	if ms.Width < 0 {
		return fmt.Errorf("netlist: microstrip %q has negative width", ms.Name)
	}
	if ms.From.Device == "" || ms.From.Pin == "" || ms.To.Device == "" || ms.To.Pin == "" {
		return fmt.Errorf("netlist: microstrip %q has incomplete terminals", ms.Name)
	}
	if ms.From == ms.To {
		return fmt.Errorf("netlist: microstrip %q connects a pin to itself", ms.Name)
	}
	return nil
}
