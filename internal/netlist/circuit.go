package netlist

import (
	"fmt"
	"sort"

	"rficlayout/internal/geom"
	"rficlayout/internal/tech"
)

// Circuit is the complete layout problem instance: the technology, the layout
// area, the devices/pads, and the microstrips with their exact target
// lengths.
type Circuit struct {
	Name        string
	Tech        tech.Technology
	AreaWidth   geom.Coord
	AreaHeight  geom.Coord
	Devices     []*Device
	Microstrips []*Microstrip

	deviceIndex map[string]*Device
}

// NewCircuit creates an empty circuit with the given technology and layout
// area dimensions.
func NewCircuit(name string, t tech.Technology, areaWidth, areaHeight geom.Coord) *Circuit {
	return &Circuit{
		Name:        name,
		Tech:        t,
		AreaWidth:   areaWidth,
		AreaHeight:  areaHeight,
		deviceIndex: map[string]*Device{},
	}
}

// Area returns the layout area rectangle with its lower-left corner at the
// origin.
func (c *Circuit) Area() geom.Rect {
	return geom.R(0, 0, c.AreaWidth, c.AreaHeight)
}

// WithArea returns a shallow copy of the circuit with a different layout
// area, which is how the "smaller area" stress settings of Table 1 are
// expressed.
func (c *Circuit) WithArea(width, height geom.Coord) *Circuit {
	cp := *c
	cp.AreaWidth = width
	cp.AreaHeight = height
	cp.rebuildIndex()
	return &cp
}

// AddDevice appends a device and returns it for further configuration.
func (c *Circuit) AddDevice(d *Device) *Device {
	c.Devices = append(c.Devices, d)
	if c.deviceIndex == nil {
		c.deviceIndex = map[string]*Device{}
	}
	c.deviceIndex[d.Name] = d
	return d
}

// AddMicrostrip appends a microstrip to the circuit.
func (c *Circuit) AddMicrostrip(ms *Microstrip) *Microstrip {
	c.Microstrips = append(c.Microstrips, ms)
	return ms
}

// Connect is a convenience helper that creates a microstrip between
// "fromDevice.fromPin" and "toDevice.toPin" with the given exact target
// length (zero width means the technology default).
func (c *Circuit) Connect(name, fromDevice, fromPin, toDevice, toPin string, targetLength geom.Coord) *Microstrip {
	ms := &Microstrip{
		Name:         name,
		From:         Terminal{Device: fromDevice, Pin: fromPin},
		To:           Terminal{Device: toDevice, Pin: toPin},
		TargetLength: targetLength,
	}
	return c.AddMicrostrip(ms)
}

// Device returns the device with the given name.
func (c *Circuit) Device(name string) (*Device, error) {
	// Lookups must stay read-only: the progressive flow queries the circuit
	// from concurrent solver workers, so a stale index falls back to a linear
	// scan instead of rebuilding in place.
	if idx := c.deviceIndex; idx != nil && len(idx) == len(c.Devices) {
		if d, ok := idx[name]; ok {
			return d, nil
		}
		return nil, fmt.Errorf("netlist: circuit %q has no device %q", c.Name, name)
	}
	for _, d := range c.Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("netlist: circuit %q has no device %q", c.Name, name)
}

func (c *Circuit) rebuildIndex() {
	c.deviceIndex = make(map[string]*Device, len(c.Devices))
	for _, d := range c.Devices {
		c.deviceIndex[d.Name] = d
	}
}

// Pads returns the devices that are I/O pads.
func (c *Circuit) Pads() []*Device {
	var pads []*Device
	for _, d := range c.Devices {
		if d.IsPad() {
			pads = append(pads, d)
		}
	}
	return pads
}

// NonPadDevices returns the devices that are not pads.
func (c *Circuit) NonPadDevices() []*Device {
	var out []*Device
	for _, d := range c.Devices {
		if !d.IsPad() {
			out = append(out, d)
		}
	}
	return out
}

// Microstrip returns the microstrip with the given name.
func (c *Circuit) Microstrip(name string) (*Microstrip, error) {
	for _, ms := range c.Microstrips {
		if ms.Name == name {
			return ms, nil
		}
	}
	return nil, fmt.Errorf("netlist: circuit %q has no microstrip %q", c.Name, name)
}

// StripsAt returns the microstrips that attach to the named device, sorted by
// name for deterministic iteration.
func (c *Circuit) StripsAt(device string) []*Microstrip {
	var out []*Microstrip
	for _, ms := range c.Microstrips {
		if ms.From.Device == device || ms.To.Device == device {
			out = append(out, ms)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PinDegree returns how many microstrips attach to the given terminal.
func (c *Circuit) PinDegree(t Terminal) int {
	n := 0
	for _, ms := range c.Microstrips {
		if ms.From == t || ms.To == t {
			n++
		}
	}
	return n
}

// TotalTargetLength returns the sum of all microstrip target lengths.
func (c *Circuit) TotalTargetLength() geom.Coord {
	var sum geom.Coord
	for _, ms := range c.Microstrips {
		sum += ms.TargetLength
	}
	return sum
}

// Stats summarizes the circuit the way Table 1 of the paper does.
func (c *Circuit) Stats() string {
	return fmt.Sprintf("%s: %d microstrips, %d devices, area %.0fµm×%.0fµm",
		c.Name, len(c.Microstrips), len(c.Devices),
		geom.Microns(c.AreaWidth), geom.Microns(c.AreaHeight))
}

// Validate checks the full problem instance: technology, area, devices,
// microstrips, terminal references and a conservative capacity check that the
// device area fits into the layout area.
func (c *Circuit) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("netlist: circuit with empty name")
	}
	if err := c.Tech.Validate(); err != nil {
		return fmt.Errorf("netlist: circuit %q: %w", c.Name, err)
	}
	if c.AreaWidth <= 0 || c.AreaHeight <= 0 {
		return fmt.Errorf("netlist: circuit %q has non-positive area %d×%d nm", c.Name, c.AreaWidth, c.AreaHeight)
	}
	names := map[string]bool{}
	var deviceArea int64
	for _, d := range c.Devices {
		if err := d.Validate(); err != nil {
			return err
		}
		if names[d.Name] {
			return fmt.Errorf("netlist: circuit %q has duplicate device %q", c.Name, d.Name)
		}
		names[d.Name] = true
		if d.Width > c.AreaWidth || d.Height > c.AreaHeight {
			if d.Height > c.AreaWidth || d.Width > c.AreaHeight {
				return fmt.Errorf("netlist: device %q (%d×%d nm) cannot fit the %d×%d nm layout area in any orientation",
					d.Name, d.Width, d.Height, c.AreaWidth, c.AreaHeight)
			}
		}
		deviceArea += int64(d.Width) * int64(d.Height)
	}
	if areaCap := int64(c.AreaWidth) * int64(c.AreaHeight); deviceArea > areaCap {
		return fmt.Errorf("netlist: circuit %q device area %d nm² exceeds layout area %d nm²", c.Name, deviceArea, areaCap)
	}
	stripNames := map[string]bool{}
	for _, ms := range c.Microstrips {
		if err := ms.Validate(); err != nil {
			return err
		}
		if stripNames[ms.Name] {
			return fmt.Errorf("netlist: circuit %q has duplicate microstrip %q", c.Name, ms.Name)
		}
		stripNames[ms.Name] = true
		for _, term := range []Terminal{ms.From, ms.To} {
			d, err := c.Device(term.Device)
			if err != nil {
				return fmt.Errorf("netlist: microstrip %q: %w", ms.Name, err)
			}
			if !d.HasPin(term.Pin) {
				return fmt.Errorf("netlist: microstrip %q references missing pin %s", ms.Name, term)
			}
		}
	}
	return nil
}
