package netlist

import (
	"strings"
	"testing"

	"rficlayout/internal/geom"
	"rficlayout/internal/tech"
)

// smallCircuit builds a two-transistor, two-pad amplifier stub used across
// the package tests.
func smallCircuit() *Circuit {
	c := NewCircuit("amp", tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	m1 := NewDevice("M1", Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	m1.AddPin("gate", geom.PtMicrons(-20, 0), 0)
	m1.AddPin("drain", geom.PtMicrons(20, 0), 0)
	c.AddDevice(m1)
	m2 := NewDevice("M2", Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	m2.AddPin("gate", geom.PtMicrons(-20, 0), 0)
	m2.AddPin("drain", geom.PtMicrons(20, 0), 0)
	c.AddDevice(m2)
	c.AddDevice(NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(NewPad("POUT", c.Tech.PadSize))
	c.Connect("TLIN", "PIN", "p", "M1", "gate", geom.FromMicrons(150))
	c.Connect("TL12", "M1", "drain", "M2", "gate", geom.FromMicrons(180))
	c.Connect("TLOUT", "M2", "drain", "POUT", "p", geom.FromMicrons(140))
	return c
}

func TestCircuitAccessors(t *testing.T) {
	c := smallCircuit()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	if _, err := c.Device("M1"); err != nil {
		t.Error(err)
	}
	if _, err := c.Device("missing"); err == nil {
		t.Error("missing device accepted")
	}
	if _, err := c.Microstrip("TL12"); err != nil {
		t.Error(err)
	}
	if _, err := c.Microstrip("missing"); err == nil {
		t.Error("missing microstrip accepted")
	}
	if got := len(c.Pads()); got != 2 {
		t.Errorf("pads = %d", got)
	}
	if got := len(c.NonPadDevices()); got != 2 {
		t.Errorf("non-pad devices = %d", got)
	}
	if got := c.Area(); got.Width() != geom.FromMicrons(400) || got.Height() != geom.FromMicrons(300) {
		t.Errorf("area = %v", got)
	}
	if c.Stats() == "" {
		t.Error("empty stats")
	}
	strips := c.StripsAt("M1")
	if len(strips) != 2 || strips[0].Name != "TL12" || strips[1].Name != "TLIN" {
		t.Errorf("StripsAt(M1) = %v", strips)
	}
	if c.PinDegree(Terminal{"M1", "gate"}) != 1 || c.PinDegree(Terminal{"M1", "bulk"}) != 0 {
		t.Error("PinDegree wrong")
	}
	want := geom.FromMicrons(150 + 180 + 140)
	if c.TotalTargetLength() != want {
		t.Errorf("total target length = %d, want %d", c.TotalTargetLength(), want)
	}
}

func TestCircuitWithArea(t *testing.T) {
	c := smallCircuit()
	smaller := c.WithArea(geom.FromMicrons(380), geom.FromMicrons(285))
	if smaller.AreaWidth != geom.FromMicrons(380) || smaller.AreaHeight != geom.FromMicrons(285) {
		t.Error("WithArea did not apply dimensions")
	}
	if c.AreaWidth != geom.FromMicrons(400) {
		t.Error("WithArea mutated the original")
	}
	if len(smaller.Devices) != len(c.Devices) || len(smaller.Microstrips) != len(c.Microstrips) {
		t.Error("WithArea lost content")
	}
	if _, err := smaller.Device("M1"); err != nil {
		t.Errorf("device lookup on copy: %v", err)
	}
}

func TestCircuitValidateCatchesProblems(t *testing.T) {
	base := func() *Circuit { return smallCircuit() }

	c := base()
	c.Name = ""
	if err := c.Validate(); err == nil {
		t.Error("empty circuit name accepted")
	}

	c = base()
	c.AreaWidth = 0
	if err := c.Validate(); err == nil {
		t.Error("zero area accepted")
	}

	c = base()
	c.Tech.GroundDistance = 0
	if err := c.Validate(); err == nil {
		t.Error("invalid tech accepted")
	}

	c = base()
	c.AddDevice(NewPad("PIN", c.Tech.PadSize)) // duplicate name
	if err := c.Validate(); err == nil {
		t.Error("duplicate device accepted")
	}

	c = base()
	c.Connect("TLIN", "PIN", "p", "M2", "gate", geom.FromMicrons(10)) // duplicate strip name
	if err := c.Validate(); err == nil {
		t.Error("duplicate microstrip accepted")
	}

	c = base()
	c.Connect("TLX", "PIN", "p", "MX", "gate", geom.FromMicrons(10)) // unknown device
	if err := c.Validate(); err == nil {
		t.Error("dangling device reference accepted")
	}

	c = base()
	c.Connect("TLX", "PIN", "p", "M2", "bulk", geom.FromMicrons(10)) // unknown pin
	if err := c.Validate(); err == nil {
		t.Error("dangling pin reference accepted")
	}

	c = base()
	big := NewDevice("HUGE", Capacitor, geom.FromMicrons(500), geom.FromMicrons(100))
	big.AddPin("p", geom.Pt(0, 0), 0)
	c.AddDevice(big)
	if err := c.Validate(); err == nil {
		t.Error("device larger than the area accepted")
	}

	// A device that only fits rotated is allowed.
	c = base()
	tall := NewDevice("TALL", Capacitor, geom.FromMicrons(80), geom.FromMicrons(350))
	tall.AddPin("p", geom.Pt(0, 0), 0)
	c.AddDevice(tall)
	if err := c.Validate(); err != nil {
		t.Errorf("rotatable device rejected: %v", err)
	}
}

func TestCircuitValidateAreaCapacity(t *testing.T) {
	c := NewCircuit("tiny", tech.Default90nm(), geom.FromMicrons(100), geom.FromMicrons(100))
	for i := 0; i < 4; i++ {
		d := NewDevice(string(rune('A'+i)), Capacitor, geom.FromMicrons(60), geom.FromMicrons(60))
		d.AddPin("p", geom.Pt(0, 0), 0)
		c.AddDevice(d)
	}
	if err := c.Validate(); err == nil {
		t.Error("overfull circuit accepted")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	c := smallCircuit()
	text := Format(c)
	parsed, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse of formatted circuit failed: %v\n%s", err, text)
	}
	if parsed.Name != c.Name {
		t.Errorf("name = %q", parsed.Name)
	}
	if parsed.AreaWidth != c.AreaWidth || parsed.AreaHeight != c.AreaHeight {
		t.Error("area lost in round trip")
	}
	if len(parsed.Devices) != len(c.Devices) || len(parsed.Microstrips) != len(c.Microstrips) {
		t.Fatalf("content lost: %d devices, %d strips", len(parsed.Devices), len(parsed.Microstrips))
	}
	for _, ms := range c.Microstrips {
		p, err := parsed.Microstrip(ms.Name)
		if err != nil {
			t.Errorf("microstrip %s lost", ms.Name)
			continue
		}
		if p.TargetLength != ms.TargetLength || p.From != ms.From || p.To != ms.To {
			t.Errorf("microstrip %s changed: %+v vs %+v", ms.Name, p, ms)
		}
	}
	d, err := parsed.Device("M1")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pins) != 2 {
		t.Errorf("M1 pins = %d", len(d.Pins))
	}
	if parsed.Tech.GroundDistance != c.Tech.GroundDistance || parsed.Tech.BendCompensation != c.Tech.BendCompensation {
		t.Error("tech parameters lost")
	}
}

func TestParseExampleFile(t *testing.T) {
	src := `
# A 2-stage amplifier stub.
circuit demo
area 500 400
tech name=cmos90 t=5 width=10 delta=-4 pad=60 spacing=12

device M1 transistor 40 30
pin M1 gate -20 0
pin M1 drain 20 5 swap=1
pad P1
pad P2 80

strip TL1 P1.p M1.gate length=200
strip TL2 M1.drain P2.p length=250 width=8
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || len(c.Devices) != 3 || len(c.Microstrips) != 2 {
		t.Fatalf("parsed %s with %d devices, %d strips", c.Name, len(c.Devices), len(c.Microstrips))
	}
	if c.Tech.SpacingOverride != geom.FromMicrons(12) {
		t.Errorf("spacing override = %d", c.Tech.SpacingOverride)
	}
	p2, _ := c.Device("P2")
	if p2.Width != geom.FromMicrons(80) {
		t.Errorf("pad size = %d", p2.Width)
	}
	m1, _ := c.Device("M1")
	drain, _ := m1.Pin("drain")
	if drain.SwapGroup != 1 {
		t.Errorf("swap group = %d", drain.SwapGroup)
	}
	tl2, _ := c.Microstrip("TL2")
	if tl2.Width != geom.FromMicrons(8) || tl2.TargetLength != geom.FromMicrons(250) {
		t.Errorf("TL2 = %+v", tl2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no circuit", "area 100 100\n"},
		{"empty", ""},
		{"bad keyword", "circuit c\nfrobnicate x\n"},
		{"bad area", "circuit c\narea 100\n"},
		{"bad area value", "circuit c\narea ten 100\n"},
		{"bad device arity", "circuit c\ndevice M1 transistor 10\n"},
		{"bad device type", "circuit c\ndevice M1 warpcoil 10 10\n"},
		{"pin before device", "circuit c\npin M1 g 0 0\n"},
		{"bad pin offset", "circuit c\ndevice M1 transistor 10 10\npin M1 g zero 0\n"},
		{"bad swap", "circuit c\ndevice M1 transistor 10 10\npin M1 g 0 0 swap=x\n"},
		{"bad terminal", "circuit c\nstrip T a b length=10\n"},
		{"bad strip param", "circuit c\ndevice M1 transistor 10 10\npin M1 g 0 0\npin M1 d 2 0\nstrip T M1.g M1.d foo=1\n"},
		{"bad tech param", "circuit c\ntech warp=9\n"},
		{"malformed tech", "circuit c\ntech t\n"},
		{"circuit arity", "circuit a b\n"},
		{"bad pad", "circuit c\npad\n"},
		{"validation failure", "circuit c\narea 100 100\nstrip T A.p B.p length=10\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestWriteFileAndParseFile(t *testing.T) {
	c := smallCircuit()
	path := t.TempDir() + "/circuit.rfic"
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != c.Name || len(parsed.Microstrips) != len(c.Microstrips) {
		t.Error("file round trip lost content")
	}
	if _, err := ParseFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFormatContainsComments(t *testing.T) {
	// Formatted output must not contain lines the parser rejects.
	c := smallCircuit()
	for _, line := range strings.Split(Format(c), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		head := strings.Fields(line)[0]
		switch head {
		case "circuit", "area", "tech", "device", "pin", "pad", "strip":
		default:
			t.Errorf("unexpected line in formatted output: %q", line)
		}
	}
}
