package netlist

import (
	"strings"
	"testing"
)

// canonicalBase is a small circuit in "natural" declaration order.
const canonicalBase = `
circuit tiny
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
device M1 transistor 40 30
pin M1 in -20 0
pin M1 out 20 0
pad PIN
pad POUT
strip TL1 PIN.p M1.in length=130
strip TL2 M1.out POUT.p length=140
`

// canonicalShuffled declares the same circuit with devices, pins and strips
// in a different order.
const canonicalShuffled = `
circuit tiny
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
pad POUT
device M1 transistor 40 30
pin M1 out 20 0
pin M1 in -20 0
pad PIN
strip TL2 M1.out POUT.p length=140
strip TL1 PIN.p M1.in length=130
`

func TestCanonicalStableUnderReordering(t *testing.T) {
	a, err := ParseString(canonicalBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseString(canonicalShuffled)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := Canonical(a), Canonical(b)
	if ca != cb {
		t.Errorf("canonical text differs under declaration reordering:\n--- base ---\n%s\n--- shuffled ---\n%s", ca, cb)
	}
}

func TestCanonicalDistinguishesContent(t *testing.T) {
	a, err := ParseString(canonicalBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseString(strings.Replace(canonicalBase, "length=130", "length=131", 1))
	if err != nil {
		t.Fatal(err)
	}
	if Canonical(a) == Canonical(b) {
		t.Error("canonical text identical for circuits with different strip lengths")
	}
}

func TestCanonicalRoundTrips(t *testing.T) {
	c, err := ParseString(canonicalBase)
	if err != nil {
		t.Fatal(err)
	}
	text := Canonical(c)
	reparsed, err := ParseString(text)
	if err != nil {
		t.Fatalf("canonical text does not re-parse: %v\n%s", err, text)
	}
	if again := Canonical(reparsed); again != text {
		t.Errorf("canonicalization is not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}
}
