package netlist

import (
	"testing"

	"rficlayout/internal/geom"
)

func sampleTransistor() *Device {
	d := NewDevice("M1", Transistor, geom.FromMicrons(30), geom.FromMicrons(40))
	d.AddPin("gate", geom.PtMicrons(-15, 0), 0)
	d.AddPin("drain", geom.PtMicrons(15, 10), 0)
	d.AddPin("source", geom.PtMicrons(15, -10), 0)
	return d
}

func TestDeviceTypeRoundTrip(t *testing.T) {
	for _, dt := range []DeviceType{Transistor, Capacitor, Inductor, Resistor, Pad, Generic} {
		parsed, err := ParseDeviceType(dt.String())
		if err != nil || parsed != dt {
			t.Errorf("round trip of %v failed: %v, %v", dt, parsed, err)
		}
	}
	if _, err := ParseDeviceType("flux-capacitor"); err == nil {
		t.Error("unknown type accepted")
	}
	if DeviceType(99).String() == "" {
		t.Error("empty string for out-of-range type")
	}
}

func TestDevicePins(t *testing.T) {
	d := sampleTransistor()
	p, err := d.Pin("drain")
	if err != nil || !p.Offset.Eq(geom.PtMicrons(15, 10)) {
		t.Errorf("Pin(drain) = %+v, %v", p, err)
	}
	if _, err := d.Pin("bulk"); err == nil {
		t.Error("missing pin not reported")
	}
	if !d.HasPin("gate") || d.HasPin("bulk") {
		t.Error("HasPin wrong")
	}
}

func TestDevicePinOffsetWithRotation(t *testing.T) {
	d := sampleTransistor()
	off, err := d.PinOffset("drain", geom.R90)
	if err != nil {
		t.Fatal(err)
	}
	// (15, 10) rotated by 90° CCW becomes (-10, 15).
	if !off.Eq(geom.PtMicrons(-10, 15)) {
		t.Errorf("rotated offset = %v", off)
	}
	if _, err := d.PinOffset("missing", geom.R0); err == nil {
		t.Error("missing pin accepted")
	}
}

func TestDeviceDimensionsAndBody(t *testing.T) {
	d := sampleTransistor()
	w, h := d.Dimensions(geom.R0)
	if w != geom.FromMicrons(30) || h != geom.FromMicrons(40) {
		t.Errorf("R0 dims = %d×%d", w, h)
	}
	w, h = d.Dimensions(geom.R90)
	if w != geom.FromMicrons(40) || h != geom.FromMicrons(30) {
		t.Errorf("R90 dims = %d×%d", w, h)
	}
	body := d.BodyRect(geom.PtMicrons(100, 100), geom.R0)
	if body.Width() != geom.FromMicrons(30) || body.Height() != geom.FromMicrons(40) {
		t.Errorf("body = %v", body)
	}
	if !body.Center().Eq(geom.PtMicrons(100, 100)) {
		t.Errorf("body centre = %v", body.Center())
	}
	if d.HalfDiagonal() != geom.FromMicrons(35) {
		t.Errorf("half diagonal = %d", d.HalfDiagonal())
	}
}

func TestNewPad(t *testing.T) {
	p := NewPad("P1", geom.FromMicrons(60))
	if !p.IsPad() {
		t.Error("pad not classified as pad")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("pad invalid: %v", err)
	}
	pin, err := p.Pin("p")
	if err != nil || !pin.Offset.Eq(geom.Pt(0, 0)) {
		t.Error("pad pin missing or off-centre")
	}
	if sampleTransistor().IsPad() {
		t.Error("transistor classified as pad")
	}
}

func TestDeviceValidate(t *testing.T) {
	ok := sampleTransistor()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid device rejected: %v", err)
	}

	bad := NewDevice("", Transistor, 10, 10).AddPin("p", geom.Pt(0, 0), 0)
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = NewDevice("M", Transistor, 0, 10).AddPin("p", geom.Pt(0, 0), 0)
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	bad = NewDevice("M", Transistor, 10, 10)
	if err := bad.Validate(); err == nil {
		t.Error("device without pins accepted")
	}
	bad = NewDevice("M", Transistor, 10, 10).AddPin("p", geom.Pt(0, 0), 0).AddPin("p", geom.Pt(1, 1), 0)
	if err := bad.Validate(); err == nil {
		t.Error("duplicate pin accepted")
	}
	bad = NewDevice("M", Transistor, 10, 10).AddPin("", geom.Pt(0, 0), 0)
	if err := bad.Validate(); err == nil {
		t.Error("empty pin name accepted")
	}
	bad = NewDevice("M", Transistor, 10, 10).AddPin("p", geom.Pt(50, 0), 0)
	if err := bad.Validate(); err == nil {
		t.Error("pin outside the body accepted")
	}
}

func TestMicrostripValidate(t *testing.T) {
	good := &Microstrip{
		Name:         "TL1",
		From:         Terminal{"M1", "drain"},
		To:           Terminal{"M2", "gate"},
		TargetLength: geom.FromMicrons(120),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid microstrip rejected: %v", err)
	}
	cases := []Microstrip{
		{Name: "", From: good.From, To: good.To, TargetLength: good.TargetLength},
		{Name: "a", From: good.From, To: good.To, TargetLength: 0},
		{Name: "a", From: good.From, To: good.To, TargetLength: good.TargetLength, Width: -1},
		{Name: "a", From: Terminal{}, To: good.To, TargetLength: good.TargetLength},
		{Name: "a", From: good.From, To: good.From, TargetLength: good.TargetLength},
	}
	for i, ms := range cases {
		if err := ms.Validate(); err == nil {
			t.Errorf("case %d: invalid microstrip accepted", i)
		}
	}
	if good.From.String() != "M1.drain" {
		t.Errorf("terminal string = %q", good.From.String())
	}
}
