package netlist

import (
	"path/filepath"
	"testing"
)

// TestParseRepositoryExampleCircuit keeps the example circuit file that ships
// in testdata/ (and that README/cmd/rficgen point at) parseable.
func TestParseRepositoryExampleCircuit(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "twostage.rfic")
	c, err := ParseFile(path)
	if err != nil {
		t.Fatalf("example circuit no longer parses: %v", err)
	}
	if len(c.Devices) != 5 || len(c.Microstrips) != 4 {
		t.Errorf("example circuit has %d devices / %d strips", len(c.Devices), len(c.Microstrips))
	}
	if err := c.Validate(); err != nil {
		t.Errorf("example circuit invalid: %v", err)
	}
}
