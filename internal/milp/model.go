// Package milp provides a mixed-integer linear programming model builder and
// a branch-and-bound solver on top of the simplex engine in internal/lp.
// Together they replace the commercial Gurobi optimizer the paper uses: the
// layout models of internal/ilpmodel are pure 0-1 MILPs, and the progressive
// flow in internal/pilp keeps each model small enough for an exact
// branch-and-bound search with warm starts and time limits.
//
// Beyond plain variables and linear constraints the package offers the
// linearization helpers the paper relies on (its reference [13]): products of
// a binary and a bounded continuous expression, absolute-value envelopes,
// big-M implications and maximum envelopes.
package milp

import (
	"fmt"
	"math"
	"sort"

	"rficlayout/internal/lp"
)

// VarType describes the integrality requirement of a variable.
type VarType int

// Variable types.
const (
	Continuous VarType = iota
	Binary
	Integer
)

// String implements fmt.Stringer.
func (v VarType) String() string {
	switch v {
	case Continuous:
		return "continuous"
	case Binary:
		return "binary"
	case Integer:
		return "integer"
	default:
		return fmt.Sprintf("VarType(%d)", int(v))
	}
}

// Var is the index of a model variable.
type Var int

// Expr is a sparse linear expression: sum of coefficient·variable terms plus
// a constant. The zero value is the empty expression.
type Expr struct {
	terms    map[Var]float64
	constant float64
}

// NewExpr returns an empty expression.
func NewExpr() *Expr { return &Expr{terms: map[Var]float64{}} }

// Term returns a fresh expression holding coef·v.
func Term(v Var, coef float64) *Expr { return NewExpr().Add(v, coef) }

// Constant returns a fresh constant expression.
func Constant(c float64) *Expr { return NewExpr().AddConst(c) }

// Add accumulates coef·v into the expression and returns it for chaining.
func (e *Expr) Add(v Var, coef float64) *Expr {
	if e.terms == nil {
		e.terms = map[Var]float64{}
	}
	e.terms[v] += coef
	return e
}

// AddConst accumulates a constant term.
func (e *Expr) AddConst(c float64) *Expr {
	e.constant += c
	return e
}

// AddExpr accumulates scale·o into the expression.
func (e *Expr) AddExpr(o *Expr, scale float64) *Expr {
	if o == nil {
		return e
	}
	for v, c := range o.terms {
		e.Add(v, scale*c)
	}
	e.constant += scale * o.constant
	return e
}

// Sub accumulates −coef·v.
func (e *Expr) Sub(v Var, coef float64) *Expr { return e.Add(v, -coef) }

// Clone returns a deep copy.
func (e *Expr) Clone() *Expr {
	out := NewExpr()
	out.AddExpr(e, 1)
	return out
}

// Constant returns the constant part of the expression.
func (e *Expr) ConstantPart() float64 { return e.constant }

// Terms returns the variable terms sorted by variable index.
func (e *Expr) Terms() []lp.Entry {
	out := make([]lp.Entry, 0, len(e.terms))
	for v, c := range e.terms {
		if c != 0 {
			out = append(out, lp.Entry{Var: int(v), Coef: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// Eval evaluates the expression at the assignment x (indexed by variable).
func (e *Expr) Eval(x []float64) float64 {
	v := e.constant
	for vr, c := range e.terms {
		v += c * x[vr]
	}
	return v
}

// constraint is one stored linear constraint.
type constraint struct {
	name  string
	row   []lp.Entry
	sense lp.Sense
	rhs   float64
}

// Model is a mixed-integer linear program under construction.
type Model struct {
	names       []string
	lower       []float64
	upper       []float64
	objective   []float64
	vtypes      []VarType
	constraints []constraint
	objConstant float64

	auxCounter int
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Infinity is re-exported for convenience when declaring unbounded variables.
var Infinity = lp.Infinity

// NumVars returns the number of variables declared so far.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.constraints) }

// NumBinaries returns the number of binary and integer variables.
func (m *Model) NumBinaries() int {
	n := 0
	for _, t := range m.vtypes {
		if t != Continuous {
			n++
		}
	}
	return n
}

// AddVar declares a variable and returns its handle.
func (m *Model) AddVar(name string, lower, upper float64, vt VarType) Var {
	if vt == Binary {
		if lower < 0 {
			lower = 0
		}
		if upper > 1 {
			upper = 1
		}
	}
	m.names = append(m.names, name)
	m.lower = append(m.lower, lower)
	m.upper = append(m.upper, upper)
	m.objective = append(m.objective, 0)
	m.vtypes = append(m.vtypes, vt)
	return Var(len(m.names) - 1)
}

// AddContinuous declares a continuous variable.
func (m *Model) AddContinuous(name string, lower, upper float64) Var {
	return m.AddVar(name, lower, upper, Continuous)
}

// AddBinary declares a 0-1 variable.
func (m *Model) AddBinary(name string) Var {
	return m.AddVar(name, 0, 1, Binary)
}

// AddInteger declares a general integer variable.
func (m *Model) AddInteger(name string, lower, upper float64) Var {
	return m.AddVar(name, lower, upper, Integer)
}

// Name returns the name of variable v.
func (m *Model) Name(v Var) string { return m.names[v] }

// Bounds returns the declared bounds of variable v.
func (m *Model) Bounds(v Var) (lower, upper float64) { return m.lower[v], m.upper[v] }

// SetBounds replaces the bounds of variable v.
func (m *Model) SetBounds(v Var, lower, upper float64) {
	m.lower[v] = lower
	m.upper[v] = upper
}

// VarType returns the integrality class of variable v.
func (m *Model) VarType(v Var) VarType { return m.vtypes[v] }

// SetObjectiveCoef sets the (minimization) objective coefficient of v.
func (m *Model) SetObjectiveCoef(v Var, coef float64) { m.objective[v] = coef }

// AddObjectiveCoef accumulates into the objective coefficient of v.
func (m *Model) AddObjectiveCoef(v Var, coef float64) { m.objective[v] += coef }

// AddObjectiveExpr accumulates a whole expression (with constant) into the
// minimization objective.
func (m *Model) AddObjectiveExpr(e *Expr, scale float64) {
	for v, c := range e.terms {
		m.objective[v] += scale * c
	}
	m.objConstant += scale * e.constant
}

// ObjectiveConstant returns the accumulated constant offset of the objective.
func (m *Model) ObjectiveConstant() float64 { return m.objConstant }

// AddConstraintExpr adds the constraint "expr sense rhs". The constant part
// of the expression is moved to the right-hand side.
func (m *Model) AddConstraintExpr(name string, e *Expr, sense lp.Sense, rhs float64) {
	m.constraints = append(m.constraints, constraint{
		name:  name,
		row:   e.Terms(),
		sense: sense,
		rhs:   rhs - e.ConstantPart(),
	})
}

// AddLE adds expr <= rhs.
func (m *Model) AddLE(name string, e *Expr, rhs float64) {
	m.AddConstraintExpr(name, e, lp.LE, rhs)
}

// AddGE adds expr >= rhs.
func (m *Model) AddGE(name string, e *Expr, rhs float64) {
	m.AddConstraintExpr(name, e, lp.GE, rhs)
}

// AddEQ adds expr == rhs.
func (m *Model) AddEQ(name string, e *Expr, rhs float64) {
	m.AddConstraintExpr(name, e, lp.EQ, rhs)
}

// auxName generates a unique name for internally created variables.
func (m *Model) auxName(prefix string) string {
	m.auxCounter++
	return fmt.Sprintf("%s#%d", prefix, m.auxCounter)
}

// ProductBinaryExpr creates and returns a continuous variable y constrained
// to equal z·e, where z is a binary variable and the expression e is known to
// lie within [lower, upper] whenever the model is feasible. This is the
// standard linearization of a binary-continuous product (the paper's
// reference [13]) used to linearize the segment-length expression (Eq. 6):
//
//	y <= upper·z            y >= lower·z
//	y <= e − lower·(1−z)    y >= e − upper·(1−z)
func (m *Model) ProductBinaryExpr(name string, z Var, e *Expr, lower, upper float64) Var {
	if m.vtypes[z] != Binary {
		panic(fmt.Sprintf("milp: ProductBinaryExpr requires a binary variable, got %v", m.vtypes[z]))
	}
	if lower > upper {
		panic(fmt.Sprintf("milp: ProductBinaryExpr with lower %g > upper %g", lower, upper))
	}
	if name == "" {
		name = m.auxName("prod")
	}
	lo := math.Min(lower, 0)
	up := math.Max(upper, 0)
	y := m.AddContinuous(name, lo, up)

	// y <= upper·z
	m.AddLE(name+".ub_z", Term(y, 1).Add(z, -upper), 0)
	// y >= lower·z
	m.AddGE(name+".lb_z", Term(y, 1).Add(z, -lower), 0)
	// y <= e − lower·(1−z)  ⇔  y − e − lower·z <= −lower
	m.AddLE(name+".ub_e", Term(y, 1).AddExpr(e, -1).Add(z, -lower), -lower)
	// y >= e − upper·(1−z)  ⇔  y − e − upper·z >= −upper
	m.AddGE(name+".lb_e", Term(y, 1).AddExpr(e, -1).Add(z, -upper), -upper)
	return y
}

// AbsEnvelope creates a continuous variable u with u >= |e| (an upper
// envelope of the absolute value of the expression). Minimizing u makes it
// tight. This is how the unmatched-length bound l_u,i of Eq. 24 is modeled.
func (m *Model) AbsEnvelope(name string, e *Expr, maxAbs float64) Var {
	if name == "" {
		name = m.auxName("abs")
	}
	u := m.AddContinuous(name, 0, maxAbs)
	// u >= e   and   u >= −e
	m.AddGE(name+".pos", Term(u, 1).AddExpr(e, -1), 0)
	m.AddGE(name+".neg", Term(u, 1).AddExpr(e, 1), 0)
	return u
}

// AddImpliedLE adds the big-M implication "z = 1 ⇒ e <= rhs":
// e <= rhs + M·(1−z). With z = 0 the constraint is inactive.
func (m *Model) AddImpliedLE(name string, z Var, e *Expr, rhs, bigM float64) {
	// e + M·z <= rhs + M
	m.AddLE(name, e.Clone().Add(z, bigM), rhs+bigM)
}

// AddImpliedGE adds the big-M implication "z = 1 ⇒ e >= rhs".
func (m *Model) AddImpliedGE(name string, z Var, e *Expr, rhs, bigM float64) {
	// e − M·z >= rhs − M
	m.AddGE(name, e.Clone().Add(z, -bigM), rhs-bigM)
}

// AddDisabledLE adds the big-M constraint "e <= rhs unless u = 1"
// (e <= rhs + M·u), matching the non-overlap constraints of Eq. 16–19 where
// the auxiliary binary u_i,j,k relaxes one of the four separation cases.
func (m *Model) AddDisabledLE(name string, u Var, e *Expr, rhs, bigM float64) {
	m.AddLE(name, e.Clone().Add(u, -bigM), rhs)
}

// MaxEnvelope creates a continuous variable that is constrained to be at
// least each of the given expressions; minimizing it yields their maximum.
// Used for n_b,max (Eq. 21) and l_u,max (Eq. 25).
func (m *Model) MaxEnvelope(name string, upper float64, exprs ...*Expr) Var {
	if name == "" {
		name = m.auxName("max")
	}
	v := m.AddContinuous(name, -Infinity, upper)
	for i, e := range exprs {
		m.AddGE(fmt.Sprintf("%s.ge%d", name, i), Term(v, 1).AddExpr(e, -1), 0)
	}
	return v
}

// EvalExpr evaluates an expression at an assignment.
func (m *Model) EvalExpr(e *Expr, x []float64) float64 { return e.Eval(x) }

// Objective evaluates the full objective (including constant) at x.
func (m *Model) Objective(x []float64) float64 {
	v := m.objConstant
	for j, c := range m.objective {
		if c != 0 {
			v += c * x[j]
		}
	}
	return v
}

// CheckFeasible reports whether x satisfies every bound, integrality
// requirement and constraint of the model within tol. It returns a
// description of the first violation found.
func (m *Model) CheckFeasible(x []float64, tol float64) (bool, string) {
	if len(x) < len(m.names) {
		return false, fmt.Sprintf("assignment has %d values for %d variables", len(x), len(m.names))
	}
	for j := range m.names {
		v := x[j]
		if v < m.lower[j]-tol || v > m.upper[j]+tol {
			return false, fmt.Sprintf("variable %s = %g outside [%g, %g]", m.names[j], v, m.lower[j], m.upper[j])
		}
		if m.vtypes[j] != Continuous && math.Abs(v-math.Round(v)) > tol {
			return false, fmt.Sprintf("variable %s = %g not integral", m.names[j], v)
		}
	}
	for _, c := range m.constraints {
		lhs := 0.0
		for _, e := range c.row {
			lhs += e.Coef * x[e.Var]
		}
		switch c.sense {
		case lp.LE:
			if lhs > c.rhs+tol {
				return false, fmt.Sprintf("constraint %s: %g <= %g violated", c.name, lhs, c.rhs)
			}
		case lp.GE:
			if lhs < c.rhs-tol {
				return false, fmt.Sprintf("constraint %s: %g >= %g violated", c.name, lhs, c.rhs)
			}
		case lp.EQ:
			if math.Abs(lhs-c.rhs) > tol {
				return false, fmt.Sprintf("constraint %s: %g == %g violated", c.name, lhs, c.rhs)
			}
		}
	}
	return true, ""
}

// toLP converts the model into an lp.Problem sharing the same variable
// indices.
func (m *Model) toLP() *lp.Problem {
	p := lp.NewProblem()
	for j := range m.names {
		p.AddVariable(m.names[j], m.lower[j], m.upper[j], m.objective[j])
	}
	for _, c := range m.constraints {
		p.AddConstraint(c.name, c.row, c.sense, c.rhs)
	}
	return p
}

// Stats summarizes model size for logging.
func (m *Model) Stats() string {
	return fmt.Sprintf("%d vars (%d integer), %d constraints",
		m.NumVars(), m.NumBinaries(), m.NumConstraints())
}
