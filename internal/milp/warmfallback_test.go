package milp

import (
	"math"
	"testing"

	"rficlayout/internal/lp"
)

// TestSingularWarmBasisCountsAsMiss: a node offered a warm basis whose basic
// columns are linearly dependent must fall back to the cold path — and the
// milp accounting must book that solve as a warm miss, not a hit or a cold
// solve. This is exactly the path a branch-and-bound node takes when its
// parent's basis no longer factorizes under the child's bounds.
func TestSingularWarmBasisCountsAsMiss(t *testing.T) {
	prob := lp.NewProblem()
	x := prob.AddVariable("x", 0, lp.Infinity, -3)
	y := prob.AddVariable("y", 0, lp.Infinity, -5)
	prob.AddConstraint("c1", []lp.Entry{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	prob.AddConstraint("c2", []lp.Entry{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 9)

	// Rank-1 basis matrix [[1,1],[2,2]]: dimensionally compatible, so only
	// the refactorization's singularity check can reject it.
	singular := &lp.Basis{
		Basic:  []int32{0, 1},
		Status: []lp.BasisStatus{lp.BasisBasic, lp.BasisBasic, lp.BasisAtLower, lp.BasisAtLower},
	}
	opts := lp.Options{WarmBasis: singular}
	sol, err := lp.Solve(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.WarmStarted {
		t.Fatal("solve claims a warm start from a singular basis")
	}

	var stats LPStats
	stats.count(sol, opts.WarmBasis != nil)
	if stats.WarmMisses != 1 || stats.WarmHits != 0 || stats.ColdSolves != 0 {
		t.Errorf("stats = hits %d misses %d cold %d, want the rejected basis booked as one miss",
			stats.WarmHits, stats.WarmMisses, stats.ColdSolves)
	}
	if stats.Pivots != sol.Iterations || stats.Refactorizations != sol.Refactorizations {
		t.Errorf("effort counters not folded: %+v vs sol %d/%d", stats, sol.Iterations, sol.Refactorizations)
	}
	if stats.PeakEta != sol.PeakEta {
		t.Errorf("PeakEta = %d, want %d", stats.PeakEta, sol.PeakEta)
	}

	// The fallback must still find the true optimum the cold path reports.
	ref, err := lp.Solve(prob, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-ref.Objective) > 1e-9 {
		t.Errorf("fallback objective %g, cold reference %g", sol.Objective, ref.Objective)
	}
}

// TestLPStatsPeakEtaMaxMerges: Add must merge PeakEta by maximum — it is a
// high-water mark of one solve's eta chain, not a summable effort counter.
func TestLPStatsPeakEtaMaxMerges(t *testing.T) {
	a := LPStats{Pivots: 10, PeakEta: 7}
	b := LPStats{Pivots: 5, PeakEta: 3}
	a.Add(b)
	if a.Pivots != 15 {
		t.Errorf("Pivots = %d, want 15 (summed)", a.Pivots)
	}
	if a.PeakEta != 7 {
		t.Errorf("PeakEta = %d, want 7 (max-merged)", a.PeakEta)
	}
	b.Add(LPStats{PeakEta: 9})
	if b.PeakEta != 9 {
		t.Errorf("PeakEta = %d, want 9 (max-merged upward)", b.PeakEta)
	}
}
