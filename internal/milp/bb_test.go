package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// buildKnapsack creates a 0-1 knapsack MILP: maximize value subject to a
// weight capacity (expressed as minimization of negated value).
func buildKnapsack(values, weights []float64, capacity float64) (*Model, []Var) {
	m := NewModel()
	vars := make([]Var, len(values))
	capRow := NewExpr()
	for i := range values {
		vars[i] = m.AddBinary("item")
		m.SetObjectiveCoef(vars[i], -values[i])
		capRow.Add(vars[i], weights[i])
	}
	m.AddLE("capacity", capRow, capacity)
	return m, vars
}

// bruteForceKnapsack returns the optimal value by enumeration.
func bruteForceKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
				v += values[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{10, 13, 7, 8, 12}
	weights := []float64{3, 4, 2, 3, 5}
	const capacity = 9
	m, _ := buildKnapsack(values, weights, capacity)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteForceKnapsack(values, weights, capacity)
	if math.Abs(-res.Objective-want) > 1e-6 {
		t.Errorf("value = %g, want %g", -res.Objective, want)
	}
	if ok, why := m.CheckFeasible(res.X, 1e-6); !ok {
		t.Errorf("incumbent infeasible: %s", why)
	}
}

func TestKnapsackRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			total += weights[i]
		}
		capacity := math.Floor(total * (0.3 + rng.Float64()*0.4))
		m, _ := buildKnapsack(values, weights, capacity)
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceKnapsack(values, weights, capacity)
		if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
			t.Errorf("trial %d: got %g (%v), want %g", trial, -res.Objective, res.Status, want)
		}
	}
}

func TestIntegerVariableRounding(t *testing.T) {
	// max 5a + 4b s.t. 6a + 4b <= 24, a + 2b <= 6, a,b integer >= 0.
	// LP optimum is fractional (a=3, b=1.5); ILP optimum is 5*4+0=20? check:
	// a=4: 24<=24, 4<=6 → value 20. a=3,b=1: 22<=24, 5<=6 → 19. a=2,b=2: 20<=24, 6<=6 → 18.
	// So optimum 20 at (4, 0).
	m := NewModel()
	a := m.AddInteger("a", 0, 10)
	b := m.AddInteger("b", 0, 10)
	m.SetObjectiveCoef(a, -5)
	m.SetObjectiveCoef(b, -4)
	m.AddLE("c1", Term(a, 6).Add(b, 4), 24)
	m.AddLE("c2", Term(a, 1).Add(b, 2), 6)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective+20) > 1e-6 {
		t.Fatalf("objective = %g (%v), want -20", res.Objective, res.Status)
	}
	if math.Abs(res.Value(a)-4) > 1e-6 || math.Abs(res.Value(b)) > 1e-6 {
		t.Errorf("a=%g b=%g, want 4, 0", res.Value(a), res.Value(b))
	}
}

func TestInfeasibleMILP(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddGE("sum", Term(x, 1).Add(y, 1), 3) // impossible for two binaries
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
	if res.X != nil {
		t.Error("infeasible result carries an assignment")
	}
	if !math.IsInf(res.Gap(), 1) {
		t.Error("gap of infeasible result should be +Inf")
	}
}

func TestInfeasibleByIntegrality(t *testing.T) {
	// 2x = 3 has an LP solution but no integer solution.
	m := NewModel()
	x := m.AddInteger("x", 0, 10)
	m.AddEQ("odd", Term(x, 2), 3)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, Infinity)
	m.SetObjectiveCoef(x, -1)
	m.AddGE("trivial", Term(x, 1), 0)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestWarmStartAcceptedAndImproved(t *testing.T) {
	values := []float64{10, 13, 7, 8, 12, 9, 4}
	weights := []float64{3, 4, 2, 3, 5, 4, 1}
	const capacity = 10
	m, vars := buildKnapsack(values, weights, capacity)

	// A valid but suboptimal warm start: take only item 0.
	warm := make([]float64, m.NumVars())
	warm[vars[0]] = 1
	res, err := m.Solve(SolveOptions{WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceKnapsack(values, weights, capacity)
	if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
		t.Errorf("objective = %g (%v), want %g", -res.Objective, res.Status, want)
	}
}

func TestWarmStartRejectedWhenInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	m.AddLE("cap", Term(x, 1), 0)
	m.SetObjectiveCoef(x, -1)
	// Warm start violates the constraint; it must be ignored, and the true
	// optimum x=0 returned.
	res, err := m.Solve(SolveOptions{WarmStart: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Value(x)) > 1e-6 {
		t.Errorf("x = %g (%v), want 0", res.Value(x), res.Status)
	}
}

func TestNodeLimitReturnsIncumbentOrNoSolution(t *testing.T) {
	// A larger knapsack with a 1-node limit: the search cannot finish, but
	// the result must be well-formed either way.
	rng := rand.New(rand.NewSource(3))
	n := 18
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(1 + rng.Intn(30))
		weights[i] = float64(1 + rng.Intn(12))
	}
	m, _ := buildKnapsack(values, weights, 40)
	res, err := m.Solve(SolveOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Status {
	case StatusFeasible:
		if ok, why := m.CheckFeasible(res.X, 1e-6); !ok {
			t.Errorf("claimed feasible incumbent is not: %s", why)
		}
	case StatusNoSolution, StatusOptimal:
		// Acceptable: the single node may already be integral.
	default:
		t.Errorf("unexpected status %v", res.Status)
	}
	if res.Nodes > 1 {
		t.Errorf("explored %d nodes with MaxNodes=1", res.Nodes)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 24
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(1 + rng.Intn(50))
		weights[i] = float64(1 + rng.Intn(20))
	}
	m, _ := buildKnapsack(values, weights, 100)
	start := time.Now()
	res, err := m.Solve(SolveOptions{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Errorf("solve took %v despite 50ms limit", elapsed)
	}
	if res.Status == StatusInfeasible || res.Status == StatusUnbounded {
		t.Errorf("unexpected status %v", res.Status)
	}
}

func TestWarmStartSurvivesTimeLimitZeroNodes(t *testing.T) {
	// With a warm start and an immediate node limit, the incumbent must be
	// exactly the warm start.
	values := []float64{5, 6, 7}
	weights := []float64{1, 1, 1}
	m, vars := buildKnapsack(values, weights, 2)
	warm := make([]float64, m.NumVars())
	warm[vars[0]] = 1
	res, err := m.Solve(SolveOptions{WarmStart: warm, MaxNodes: 0, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v, want a solution from the warm start", res.Status)
	}
	if math.Abs(-res.Objective-5) > 1e-6 {
		t.Errorf("objective = %g, want -5 (the warm start)", res.Objective)
	}
}

func TestGapAndBoundsOnOptimal(t *testing.T) {
	values := []float64{4, 5, 6}
	weights := []float64{2, 3, 4}
	m, _ := buildKnapsack(values, weights, 6)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Gap() > 1e-6 {
		t.Errorf("gap = %g, want ~0", res.Gap())
	}
	if math.Abs(res.Bound-res.Objective) > 1e-6 {
		t.Errorf("bound %g != objective %g at optimality", res.Bound, res.Objective)
	}
}

func TestBoolValue(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	m.SetObjectiveCoef(x, -1)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoolValue(x) {
		t.Error("x should be 1 when maximized")
	}
	var empty Result
	if empty.BoolValue(x) {
		t.Error("BoolValue on empty result should be false")
	}
	if !math.IsNaN(empty.Value(x)) {
		t.Error("Value on empty result should be NaN")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusFeasible, StatusInfeasible, StatusUnbounded, StatusNoSolution, Status(42)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if !StatusOptimal.HasSolution() || !StatusFeasible.HasSolution() || StatusInfeasible.HasSolution() {
		t.Error("HasSolution classification wrong")
	}
}

func TestEqualityILPWithBinariesAndContinuous(t *testing.T) {
	// Mixed problem: choose exactly 2 of 4 sites (binaries) and split 100
	// units of flow (continuous) between the chosen sites, minimizing cost.
	// Site costs per unit: 1, 2, 3, 4 and fixed opening costs 10, 5, 1, 0.
	// Capacity per open site: 60.
	// Best: open sites 0 and 1 → fixed 15, flow 60*1 + 40*2 = 140 → 155.
	// Alternatives: open 0 and 2 → 11 + 60+120 = 191; 0,3: 10+60+160=230;
	// 1,2: 6+120+120=246 ... so 155 is optimal.
	m := NewModel()
	open := make([]Var, 4)
	flow := make([]Var, 4)
	fixedCosts := []float64{10, 5, 1, 0}
	unitCosts := []float64{1, 2, 3, 4}
	sum := NewExpr()
	count := NewExpr()
	for i := 0; i < 4; i++ {
		open[i] = m.AddBinary("open")
		flow[i] = m.AddContinuous("flow", 0, 60)
		m.SetObjectiveCoef(open[i], fixedCosts[i])
		m.SetObjectiveCoef(flow[i], unitCosts[i])
		// flow_i <= 60 * open_i
		m.AddLE("cap", Term(flow[i], 1).Add(open[i], -60), 0)
		sum.Add(flow[i], 1)
		count.Add(open[i], 1)
	}
	m.AddEQ("demand", sum, 100)
	m.AddEQ("two-sites", count, 2)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-155) > 1e-5 {
		t.Errorf("objective = %g (%v), want 155", res.Objective, res.Status)
	}
	if !res.BoolValue(open[0]) || !res.BoolValue(open[1]) {
		t.Errorf("expected sites 0 and 1 open, got %v %v %v %v",
			res.BoolValue(open[0]), res.BoolValue(open[1]), res.BoolValue(open[2]), res.BoolValue(open[3]))
	}
}
