package milp

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// solveWithWorkers solves a fresh copy of a random knapsack with the given
// worker count.
func solveKnapsackWithWorkers(t *testing.T, values, weights []float64, capacity float64, workers int) *Result {
	t.Helper()
	m, _ := buildKnapsack(values, weights, capacity)
	res, err := m.Solve(SolveOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelSolveDeterministic checks the determinism contract: the result
// of a solve — status, objective, bound, node count and the exact solution
// vector — must be identical for every worker count.
func TestParallelSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			total += weights[i]
		}
		capacity := math.Floor(total * (0.3 + rng.Float64()*0.4))

		ref := solveKnapsackWithWorkers(t, values, weights, capacity, workerCounts[0])
		for _, w := range workerCounts[1:] {
			got := solveKnapsackWithWorkers(t, values, weights, capacity, w)
			if got.Status != ref.Status {
				t.Errorf("trial %d: workers=%d status %v, want %v", trial, w, got.Status, ref.Status)
			}
			if got.Objective != ref.Objective {
				t.Errorf("trial %d: workers=%d objective %g, want %g", trial, w, got.Objective, ref.Objective)
			}
			if got.Bound != ref.Bound {
				t.Errorf("trial %d: workers=%d bound %g, want %g", trial, w, got.Bound, ref.Bound)
			}
			if got.Nodes != ref.Nodes {
				t.Errorf("trial %d: workers=%d nodes %d, want %d", trial, w, got.Nodes, ref.Nodes)
			}
			if len(got.X) != len(ref.X) {
				t.Fatalf("trial %d: workers=%d len(X) %d, want %d", trial, w, len(got.X), len(ref.X))
			}
			for j := range got.X {
				if got.X[j] != ref.X[j] {
					t.Errorf("trial %d: workers=%d X[%d] = %g, want %g", trial, w, j, got.X[j], ref.X[j])
					break
				}
			}
		}
	}
}

// TestParallelSolveMatchesBruteForce re-runs the exhaustive comparison with a
// multi-worker pool so -race exercises the concurrent LP evaluation.
func TestParallelSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			total += weights[i]
		}
		capacity := math.Floor(total * (0.3 + rng.Float64()*0.4))
		m, _ := buildKnapsack(values, weights, capacity)
		res, err := m.Solve(SolveOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceKnapsack(values, weights, capacity)
		if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
			t.Errorf("trial %d: got %g (%v), want %g", trial, -res.Objective, res.Status, want)
		}
	}
}

// TestSolveCtxPreCancelled checks that a context that is already cancelled
// returns promptly with StatusNoSolution and no explored nodes.
func TestSolveCtxPreCancelled(t *testing.T) {
	m, _ := buildKnapsack([]float64{10, 13, 7}, []float64{3, 4, 2}, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := m.SolveCtx(ctx, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNoSolution {
		t.Errorf("status = %v, want %v", res.Status, StatusNoSolution)
	}
	if res.Nodes != 0 {
		t.Errorf("explored %d nodes under a cancelled context", res.Nodes)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled solve took %v", elapsed)
	}
}

// TestSolveCtxPreCancelledKeepsWarmStart checks that cancellation still
// surfaces a feasible warm start as the incumbent.
func TestSolveCtxPreCancelledKeepsWarmStart(t *testing.T) {
	m, _ := buildKnapsack([]float64{10, 13, 7}, []float64{3, 4, 2}, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.SolveCtx(ctx, SolveOptions{WarmStart: []float64{1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v, want %v", res.Status, StatusFeasible)
	}
	if math.Abs(res.Objective+17) > 1e-6 {
		t.Errorf("objective = %g, want -17", res.Objective)
	}
}

// TestSolveCtxDeadline checks that a context deadline behaves like TimeLimit:
// the search stops and reports what it has.
func TestSolveCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 18
	values := make([]float64, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range values {
		values[i] = 1 + rng.Float64()*20
		weights[i] = 1 + rng.Float64()*10
		total += weights[i]
	}
	m, _ := buildKnapsack(values, weights, math.Floor(total*0.5))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := m.SolveCtx(ctx, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline ignored: solve took %v", elapsed)
	}
	if res.Status == StatusOptimal {
		// Fine on a fast machine — but the incumbent must then be consistent.
		if res.X == nil {
			t.Error("optimal status without a solution vector")
		}
	}
}
