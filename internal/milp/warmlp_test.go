package milp

import (
	"math"
	"math/rand"
	"testing"

	"rficlayout/internal/lp"
)

// randomKnapsack builds a random 0-1 knapsack instance.
func randomKnapsack(rng *rand.Rand) *Model {
	n := 5 + rng.Intn(8)
	values := make([]float64, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range values {
		values[i] = float64(1 + rng.Intn(20))
		weights[i] = float64(1 + rng.Intn(10))
		total += weights[i]
	}
	m, _ := buildKnapsack(values, weights, math.Floor(total*(0.3+rng.Float64()*0.4)))
	return m
}

// sameResult asserts two results agree on everything deterministic.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Status != b.Status || a.Objective != b.Objective || a.Bound != b.Bound || a.Nodes != b.Nodes {
		t.Errorf("%s: status/obj/bound/nodes differ: %v/%v %v/%v %v/%v %d/%d",
			label, a.Status, b.Status, a.Objective, b.Objective, a.Bound, b.Bound, a.Nodes, b.Nodes)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: X length %d != %d", label, len(a.X), len(b.X))
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Errorf("%s: X[%d] %v != %v", label, j, a.X[j], b.X[j])
		}
	}
}

// TestWarmVsColdSearchIdentical is the MILP half of the determinism
// contract: basis reuse must not change anything observable about the search
// — same incumbent, same bound, same node count, bit-identical X — while
// spending fewer simplex pivots.
func TestWarmVsColdSearchIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var warmPivots, coldPivots, hits int
	for trial := 0; trial < 20; trial++ {
		m := randomKnapsack(rng)
		cold, err := m.Solve(SolveOptions{DisableWarmLP: true})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "warm-vs-cold", cold, warm)
		if cold.LP.WarmHits != 0 || cold.LP.WarmMisses != 0 {
			t.Errorf("trial %d: cold search counted warm LPs: %+v", trial, cold.LP)
		}
		warmPivots += warm.LP.Pivots
		coldPivots += cold.LP.Pivots
		hits += warm.LP.WarmHits
	}
	if hits == 0 {
		t.Error("no warm-start hits across 20 branch-and-bound searches")
	}
	if warmPivots >= coldPivots {
		t.Errorf("warm starts saved no pivots: warm %d, cold %d", warmPivots, coldPivots)
	}
	t.Logf("pivots: cold %d, warm %d (%.2fx), warm hits %d", coldPivots, warmPivots,
		float64(coldPivots)/math.Max(1, float64(warmPivots)), hits)
}

// TestLPStatsIdenticalAcrossWorkers pins that the counters only accumulate
// for sequentially processed nodes, so eager parallel evaluation does not
// change them.
func TestLPStatsIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		m := randomKnapsack(rng)
		one, err := m.Solve(SolveOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		four, err := m.Solve(SolveOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "workers", one, four)
		if one.LP != four.LP {
			t.Errorf("trial %d: LP stats differ across workers: %+v vs %+v", trial, one.LP, four.LP)
		}
	}
}

func TestWarmSeedCounters(t *testing.T) {
	values := []float64{10, 13, 7}
	weights := []float64{3, 4, 2}
	m, _ := buildKnapsack(values, weights, 7)
	res, err := m.Solve(SolveOptions{WarmStart: []float64{1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSeedAccepted != 1 || res.WarmSeedRejected != 0 {
		t.Errorf("feasible seed: accepted=%d rejected=%d", res.WarmSeedAccepted, res.WarmSeedRejected)
	}
	res, err = m.Solve(SolveOptions{WarmStart: []float64{1, 1, 1}}) // weight 9 > 7
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSeedAccepted != 0 || res.WarmSeedRejected != 1 {
		t.Errorf("infeasible seed: accepted=%d rejected=%d", res.WarmSeedAccepted, res.WarmSeedRejected)
	}
	res, err = m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSeedAccepted != 0 || res.WarmSeedRejected != 0 {
		t.Errorf("no seed: accepted=%d rejected=%d", res.WarmSeedAccepted, res.WarmSeedRejected)
	}
}

func TestPivotRuleThreadsThroughSearch(t *testing.T) {
	// Any pivot rule must reach the same optimum (vertices are canonicalized
	// at the LP layer, so even X matches).
	m := randomKnapsack(rand.New(rand.NewSource(3)))
	var ref *Result
	for _, rule := range []struct {
		name string
		opts SolveOptions
	}{
		{"dantzig", SolveOptions{}},
		{"bland", SolveOptions{LPOptions: lp.Options{Pivot: lp.PivotBland}}},
		{"devex", SolveOptions{LPOptions: lp.Options{Pivot: lp.PivotDevex}}},
	} {
		res, err := m.Solve(rule.opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("%s: status %v", rule.name, res.Status)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Objective != ref.Objective {
			t.Errorf("%s: objective %v != %v", rule.name, res.Objective, ref.Objective)
		}
	}
}
