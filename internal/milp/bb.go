package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"rficlayout/internal/conc"
	"rficlayout/internal/lp"
)

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal within the gap.
	StatusOptimal Status = iota
	// StatusFeasible means a limit was hit but an incumbent exists.
	StatusFeasible
	// StatusInfeasible means the model has no feasible assignment.
	StatusInfeasible
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
	// StatusNoSolution means a limit was hit before any incumbent was found.
	StatusNoSolution
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// HasSolution reports whether the status carries a usable assignment.
func (s Status) HasSolution() bool { return s == StatusOptimal || s == StatusFeasible }

// SolveOptions tunes the branch-and-bound search.
type SolveOptions struct {
	// TimeLimit bounds wall-clock time; zero means no limit. It is sugar for
	// a context deadline: SolveCtx derives a child context with this timeout,
	// so an enclosing context can still cancel the solve earlier.
	TimeLimit time.Duration
	// Workers is the number of goroutines evaluating LP relaxations
	// concurrently. Zero or one means sequential evaluation. The search is
	// deterministic: any worker count produces the identical Result (see the
	// determinism notes on Solve).
	Workers int
	// MaxNodes bounds the number of explored nodes; zero means a large
	// default (1 << 20).
	MaxNodes int
	// MIPGap is the relative optimality gap at which search stops; zero
	// means 1e-6.
	MIPGap float64
	// IntTol is the integrality tolerance; zero means 1e-6.
	IntTol float64
	// WarmStart, when non-nil and feasible, seeds the incumbent.
	WarmStart []float64
	// DisableWarmLP turns off basis reuse between parent and child nodes:
	// every node LP cold-starts from phase 1, as the solver did before warm
	// starts existed. The search path and result are identical either way
	// (the LP layer guarantees warm and cold solves agree); the switch
	// exists for benchmarking and as an escape hatch.
	DisableWarmLP bool
	// LPOptions are passed to every LP relaxation solve. The pivot rule set
	// here applies to all of them.
	LPOptions lp.Options
	// Logf, when non-nil, receives progress messages.
	Logf func(format string, args ...interface{})
}

func (o SolveOptions) intTol() float64 {
	if o.IntTol > 0 {
		return o.IntTol
	}
	return 1e-6
}

func (o SolveOptions) mipGap() float64 {
	if o.MIPGap > 0 {
		return o.MIPGap
	}
	return 1e-6
}

func (o SolveOptions) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 1 << 20
}

func (o SolveOptions) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// LPStats aggregates linear-programming effort across a branch-and-bound
// search. Counters only accumulate for the nodes the deterministic sequential
// order actually processes (speculative LPs of nodes pruned mid-batch under
// eager parallel evaluation are excluded), so the totals are identical at
// every worker count.
type LPStats struct {
	// Pivots is the total simplex iteration count across all node LPs.
	Pivots int
	// Refactorizations counts tableau rebuilds from the raw problem data
	// (one per accepted warm basis, one per optimal solve).
	Refactorizations int
	// WarmHits and WarmMisses split the node LPs that were offered a parent
	// basis into accepted (dual simplex) and rejected (cold fallback) ones.
	WarmHits   int
	WarmMisses int
	// ColdSolves counts node LPs with no basis to offer: the root, children
	// of nodes whose optimal basis was not exportable, and every node when
	// DisableWarmLP is set.
	ColdSolves int
	// PeakEta is the longest product-form eta chain any node LP carried
	// between refactorizations of the sparse core (zero on the dense core);
	// aggregation takes the maximum, not the sum.
	PeakEta int
}

// Add accumulates other into s.
func (s *LPStats) Add(other LPStats) {
	s.Pivots += other.Pivots
	s.Refactorizations += other.Refactorizations
	s.WarmHits += other.WarmHits
	s.WarmMisses += other.WarmMisses
	s.ColdSolves += other.ColdSolves
	if other.PeakEta > s.PeakEta {
		s.PeakEta = other.PeakEta
	}
}

// Solves is the total number of node LPs counted.
func (s LPStats) Solves() int { return s.WarmHits + s.WarmMisses + s.ColdSolves }

// WarmHitRate is the fraction of offered bases that were accepted (0 when
// none were offered).
func (s LPStats) WarmHitRate() float64 {
	offered := s.WarmHits + s.WarmMisses
	if offered == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(offered)
}

// count folds one node LP solution into the stats; warmOffered reports
// whether a parent basis was passed to the solve.
func (s *LPStats) count(sol *lp.Solution, warmOffered bool) {
	s.Pivots += sol.Iterations
	s.Refactorizations += sol.Refactorizations
	if sol.PeakEta > s.PeakEta {
		s.PeakEta = sol.PeakEta
	}
	switch {
	case sol.WarmStarted:
		s.WarmHits++
	case warmOffered:
		s.WarmMisses++
	default:
		s.ColdSolves++
	}
}

// Result is the outcome of Model.Solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective including the constant term
	Bound     float64   // best proven lower bound (minimization)
	X         []float64 // incumbent assignment (nil when none)
	Nodes     int
	Runtime   time.Duration
	// LP aggregates the LP-solver effort across all node relaxations,
	// including the root dive heuristic.
	LP LPStats
	// WarmSeedAccepted / WarmSeedRejected report the fate of the WarmStart
	// incumbent seed: 1/0 when it passed the feasibility check, 0/1 when it
	// was rejected, 0/0 when no seed was given.
	WarmSeedAccepted int
	WarmSeedRejected int
	// Cancelled reports that the solve stopped because its context was
	// cancelled (deadline or explicit cancel) rather than by exhausting the
	// search or an internal limit. A cancelled solve may still carry an
	// incumbent (StatusFeasible) — the anytime contract: cancellation costs
	// proof quality, never the best solution found so far.
	Cancelled bool
}

// Gap returns the relative gap between incumbent and bound (0 when proven
// optimal, +Inf when no incumbent).
func (r *Result) Gap() float64 {
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Max(1e-9, math.Abs(r.Objective))
	return math.Max(0, (r.Objective-r.Bound)/denom)
}

// Value returns the incumbent value of variable v.
func (r *Result) Value(v Var) float64 {
	if r.X == nil {
		return math.NaN()
	}
	return r.X[v]
}

// BoolValue returns the incumbent value of a binary variable as a bool.
func (r *Result) BoolValue(v Var) bool {
	return r.X != nil && r.X[v] > 0.5
}

// betterIncumbent reports whether (obj, x) should replace the current
// incumbent. A strictly better objective always wins; an objective tie within
// tolerance is broken lexicographically on the solution vector, so the
// adopted incumbent does not depend on the order in which equal-quality
// solutions are discovered.
func (r *Result) betterIncumbent(obj float64, x []float64) bool {
	if r.X == nil {
		return true
	}
	if obj < r.Objective-1e-9 {
		return true
	}
	if obj > r.Objective+1e-9 {
		return false
	}
	return lexLess(x, r.X)
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integral, or −1 when every one is within tol of an integer.
// Fractions within 1e-9 of the running maximum count as ties and the earlier
// variable keeps the slot: equally fractional variables are common in
// symmetric layout models, where their computed fractions agree only up to
// floating-point noise, and a strict comparison would let that noise pick the
// branching variable — making the search shape depend on the pivot path of
// the node LPs rather than on the model.
func mostFractional(x []float64, integers []int, tol float64) int {
	const tieTol = 1e-9
	branchVar := -1
	worst := tol
	for _, j := range integers {
		frac := math.Abs(x[j] - math.Round(x[j]))
		if frac > worst+tieTol || (branchVar < 0 && frac > worst) {
			worst = frac
			branchVar = j
		}
	}
	return branchVar
}

// lexLess is a strict lexicographic order on solution vectors.
func lexLess(a, b []float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// node is one branch-and-bound subproblem: the bound overrides accumulated
// along the path from the root.
type node struct {
	lower map[int]float64
	upper map[int]float64
	bound float64 // parent LP objective: a valid lower bound for this node
	depth int
	// basis is the parent's optimal LP basis (shared, read-only): the child
	// differs by one bound, so it is usually still dual-feasible and the LP
	// warm-starts from it. Nil means a cold solve.
	basis *lp.Basis
}

// nodeQueue is a best-bound priority queue of open nodes.
type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// bbBatchSize is how many open nodes are dequeued per search round. The batch
// size is a fixed constant — deliberately NOT derived from the worker count —
// because the exploration order (and therefore the exact result) must be a
// function of the model alone: workers only split the LP evaluations of one
// batch among themselves.
const bbBatchSize = 16

// Solve runs branch and bound on the model and returns the best solution
// found. The model is not modified. It is shorthand for SolveCtx with a
// background context.
func (m *Model) Solve(opts SolveOptions) (*Result, error) {
	return m.SolveCtx(context.Background(), opts)
}

// SolveCtx runs branch and bound under a context. Cancellation (or the
// deadline derived from opts.TimeLimit) stops the search at the next node
// boundary and returns the incumbent found so far (StatusFeasible) or
// StatusNoSolution when none exists yet. A context that is already cancelled
// on entry returns promptly without solving any LP.
//
// Determinism: the search dequeues nodes in fixed-size batches from the
// best-bound heap and makes every branching, pruning and incumbent decision
// sequentially in batch order; opts.Workers only parallelizes the LP
// relaxation solves of a batch, which are pure functions of their node. As
// long as no limit (time, cancellation) interrupts the search, the returned
// Result — status, objective, bound, node count and solution vector — is
// byte-identical for every worker count. Equal-objective incumbents are
// ordered lexicographically by solution vector as an extra guard.
func (m *Model) SolveCtx(ctx context.Context, opts SolveOptions) (*Result, error) {
	start := time.Now()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	intTol := opts.intTol()
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}

	prob := m.toLP()
	res := &Result{Status: StatusNoSolution, Bound: math.Inf(-1), Objective: math.Inf(1)}

	// Seed the incumbent from the warm start when it is feasible.
	if opts.WarmStart != nil {
		if ok, why := m.CheckFeasible(opts.WarmStart, 1e-6); ok {
			x := make([]float64, m.NumVars())
			copy(x, opts.WarmStart[:m.NumVars()])
			res.X = x
			res.Objective = m.Objective(x)
			res.Status = StatusFeasible
			res.WarmSeedAccepted = 1
			logf("milp: warm start accepted, objective %.6g", res.Objective)
		} else {
			res.WarmSeedRejected = 1
			logf("milp: warm start rejected: %s", why)
		}
	}

	integers := make([]int, 0, m.NumBinaries())
	for j, t := range m.vtypes {
		if t != Continuous {
			integers = append(integers, j)
		}
	}

	open := &nodeQueue{}
	heap.Init(open)
	heap.Push(open, &node{lower: map[int]float64{}, upper: map[int]float64{}, bound: math.Inf(-1)})

	workers := opts.workers()
	timedOut := false
	rootSolved := false
	batch := make([]*node, 0, bbBatchSize)
	sols := make([]*lp.Solution, bbBatchSize)
	errs := make([]error, bbBatchSize)

search:
	for open.Len() > 0 {
		if res.Nodes >= opts.maxNodes() || ctx.Err() != nil {
			timedOut = true
			break
		}

		// Dequeue one round of nodes, pruning against the incumbent before
		// paying for any LP.
		batch = batch[:0]
		for len(batch) < bbBatchSize && open.Len() > 0 {
			nd := heap.Pop(open).(*node)
			if res.X != nil && nd.bound >= res.Objective-1e-9 {
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}
		// Best-bound ordering means the first batch node carries the smallest
		// bound among open nodes: it is the current global lower bound.
		if rootSolved && batch[0].bound > res.Bound {
			res.Bound = batch[0].bound
		}

		// Clear the result slots: the slices are reused across rounds, and a
		// job skipped by mid-batch cancellation must read as "not evaluated"
		// rather than as the previous round's stale solution.
		for i := range batch {
			sols[i], errs[i] = nil, nil
		}
		solveNode := func(i int) {
			lpOpts := opts.LPOptions
			lpOpts.LowerOverride = batch[i].lower
			lpOpts.UpperOverride = batch[i].upper
			if !opts.DisableWarmLP {
				lpOpts.WarmBasis = batch[i].basis
			}
			sols[i], errs[i] = lp.SolveCtx(ctx, prob, lpOpts)
		}
		// With more than one worker the whole batch is evaluated eagerly by a
		// bounded pool; sequentially each LP is solved lazily right before
		// its node is processed, so nodes pruned mid-batch never pay for one.
		// Either way the decisions below see identical inputs.
		eager := workers > 1 && len(batch) > 1
		if eager {
			conc.ForEach(ctx, workers, len(batch), solveNode)
		}

		for i, nd := range batch {
			// Re-check the prune: the incumbent may have improved while
			// processing earlier nodes of this batch.
			if res.X != nil && nd.bound >= res.Objective-1e-9 {
				continue
			}
			if res.Nodes >= opts.maxNodes() {
				for _, rest := range batch[i:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			}
			res.Nodes++
			if !eager {
				solveNode(i)
			}
			if errs[i] != nil {
				return nil, errs[i]
			}
			sol := sols[i]
			if sol == nil {
				// Eager evaluation skipped this node: the context fired while
				// the batch was in flight. Same treatment as a cancelled LP.
				for _, rest := range batch[i+1:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			}
			res.LP.count(sol, !opts.DisableWarmLP && nd.basis != nil)
			switch sol.Status {
			case lp.StatusCancelled:
				for _, rest := range batch[i+1:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			case lp.StatusInfeasible:
				if res.Nodes == 1 && res.X == nil {
					res.Status = StatusInfeasible
					res.Runtime = time.Since(start)
					return res, nil
				}
				continue
			case lp.StatusUnbounded:
				if res.Nodes == 1 && res.X == nil {
					res.Status = StatusUnbounded
					res.Runtime = time.Since(start)
					return res, nil
				}
				continue
			case lp.StatusIterLimit:
				// Treat as an unusable node bound: keep the parent bound and
				// do not branch further on this path.
				logf("milp: node %d hit LP iteration limit", res.Nodes)
				continue
			}
			rootSolved = true
			lpObj := sol.Objective + m.objConstant
			nd.bound = lpObj
			if res.Nodes == 1 {
				res.Bound = lpObj
				// LP-guided dive from the root: greedily fix fractional integer
				// variables to find a first incumbent quickly. Big-M disjunction
				// models (the non-overlap constraints of the layout ILP) rarely
				// produce integral relaxations, so pure best-bound search can
				// wander for a long time without this.
				if res.X == nil {
					if x, obj, ok := m.dive(ctx, prob, opts, res, nd, sol, integers); ok {
						res.X = x
						res.Objective = obj
						res.Status = StatusFeasible
						logf("milp: dive incumbent %.6g", obj)
					}
				}
			}

			if res.X != nil && lpObj >= res.Objective-1e-9 {
				continue // dominated
			}

			// Find the most fractional integer variable.
			branchVar := mostFractional(sol.X, integers, intTol)

			if branchVar < 0 {
				// Integer feasible: candidate incumbent.
				x := make([]float64, len(sol.X))
				copy(x, sol.X)
				for _, j := range integers {
					x[j] = math.Round(x[j])
				}
				obj := m.Objective(x)
				if res.betterIncumbent(obj, x) {
					res.X = x
					res.Objective = obj
					res.Status = StatusFeasible
					logf("milp: incumbent %.6g after %d nodes", res.Objective, res.Nodes)
				}
				continue
			}

			// Rounding heuristic: cheap attempt to produce an incumbent early.
			if res.X == nil {
				if x, ok := m.roundingHeuristic(sol.X, integers, intTol); ok {
					obj := m.Objective(x)
					if res.betterIncumbent(obj, x) {
						res.X = x
						res.Objective = obj
						res.Status = StatusFeasible
						logf("milp: rounding heuristic incumbent %.6g", obj)
					}
				}
			}

			// Branch. Both children start from this node's optimal basis: the
			// single changed bound usually leaves it dual-feasible, so the
			// child LP re-solves with a handful of dual pivots instead of a
			// phase-1 cold start.
			val := sol.X[branchVar]
			down := &node{
				lower: nd.lower, upper: copyWith(nd.upper, branchVar, math.Floor(val)),
				bound: lpObj, depth: nd.depth + 1, basis: sol.Basis,
			}
			up := &node{
				lower: copyWith(nd.lower, branchVar, math.Ceil(val)), upper: nd.upper,
				bound: lpObj, depth: nd.depth + 1, basis: sol.Basis,
			}
			heap.Push(open, down)
			heap.Push(open, up)

			// Early stop on gap.
			if res.X != nil {
				gap := (res.Objective - res.Bound) / math.Max(1e-9, math.Abs(res.Objective))
				if gap <= opts.mipGap() {
					for _, rest := range batch[i+1:] {
						heap.Push(open, rest)
					}
					break search
				}
			}
		}
	}

	res.Runtime = time.Since(start)
	res.Cancelled = ctx.Err() != nil
	if res.X != nil {
		if !timedOut && open.Len() == 0 {
			res.Status = StatusOptimal
			res.Bound = res.Objective
		} else if !timedOut {
			// Stopped on gap.
			gap := (res.Objective - res.Bound) / math.Max(1e-9, math.Abs(res.Objective))
			if gap <= opts.mipGap() {
				res.Status = StatusOptimal
			} else {
				res.Status = StatusFeasible
			}
		} else {
			res.Status = StatusFeasible
		}
		return res, nil
	}
	if timedOut {
		res.Status = StatusNoSolution
		return res, nil
	}
	// Search exhausted with no incumbent: infeasible.
	res.Status = StatusInfeasible
	return res, nil
}

// dive runs an LP-guided diving heuristic from the given node: it repeatedly
// fixes the most fractional integer variable to its rounded value (flipping
// to the opposite value when that makes the LP infeasible) until the
// relaxation is integral or the dive fails. It returns the incumbent found.
// Each step warm-starts from the basis of the previous one (the fix is a
// bound change, same shape as a branch); the dive runs sequentially inside
// the root node, so its LP stats fold into res deterministically.
func (m *Model) dive(ctx context.Context, prob *lp.Problem, opts SolveOptions, res *Result, nd *node, rootSol *lp.Solution, integers []int) ([]float64, float64, bool) {
	intTol := opts.intTol()
	lower := copyMap(nd.lower)
	upper := copyMap(nd.upper)
	x := rootSol.X
	basis := rootSol.Basis
	for iter := 0; iter <= len(integers)+4; iter++ {
		if ctx.Err() != nil {
			return nil, 0, false
		}
		branchVar := mostFractional(x, integers, intTol)
		if branchVar < 0 {
			// Integral: verify against the full model and return.
			rounded := make([]float64, len(x))
			copy(rounded, x)
			for _, j := range integers {
				rounded[j] = math.Round(rounded[j])
			}
			if ok, _ := m.CheckFeasible(rounded, 1e-6); ok {
				return rounded, m.Objective(rounded), true
			}
			return nil, 0, false
		}
		tryValues := []float64{math.Round(x[branchVar])}
		other := 1 - tryValues[0]
		if m.vtypes[branchVar] == Integer {
			if tryValues[0] >= x[branchVar] {
				other = tryValues[0] - 1
			} else {
				other = tryValues[0] + 1
			}
		}
		tryValues = append(tryValues, other)
		fixed := false
		for _, v := range tryValues {
			trialLower := copyMap(lower)
			trialUpper := copyMap(upper)
			trialLower[branchVar] = v
			trialUpper[branchVar] = v
			lpOpts := opts.LPOptions
			lpOpts.LowerOverride = trialLower
			lpOpts.UpperOverride = trialUpper
			if !opts.DisableWarmLP {
				lpOpts.WarmBasis = basis
			}
			sol, err := lp.SolveCtx(ctx, prob, lpOpts)
			if err != nil {
				continue
			}
			res.LP.count(sol, lpOpts.WarmBasis != nil)
			if sol.Status != lp.StatusOptimal {
				continue
			}
			lower, upper = trialLower, trialUpper
			x = sol.X
			basis = sol.Basis
			fixed = true
			break
		}
		if !fixed {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

func copyMap(src map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	return out
}

// roundingHeuristic rounds the fractional LP values of integer variables and
// re-checks feasibility of the full model.
func (m *Model) roundingHeuristic(x []float64, integers []int, tol float64) ([]float64, bool) {
	rounded := make([]float64, len(x))
	copy(rounded, x)
	for _, j := range integers {
		rounded[j] = math.Round(rounded[j])
		// Keep within bounds.
		if rounded[j] < m.lower[j] {
			rounded[j] = math.Ceil(m.lower[j])
		}
		if rounded[j] > m.upper[j] {
			rounded[j] = math.Floor(m.upper[j])
		}
	}
	if ok, _ := m.CheckFeasible(rounded, 1e-6); ok {
		return rounded, true
	}
	_ = tol
	return nil, false
}

// copyWith clones the override map and sets key to value.
func copyWith(src map[int]float64, key int, value float64) map[int]float64 {
	out := make(map[int]float64, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	// Branches only ever tighten: the caller passes floor/ceil of the current
	// relaxation value, which is always at least as tight as any previous
	// override of the same variable.
	out[key] = value
	return out
}
