package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"rficlayout/internal/conc"
	"rficlayout/internal/lp"
)

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal within the gap.
	StatusOptimal Status = iota
	// StatusFeasible means a limit was hit but an incumbent exists.
	StatusFeasible
	// StatusInfeasible means the model has no feasible assignment.
	StatusInfeasible
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
	// StatusNoSolution means a limit was hit before any incumbent was found.
	StatusNoSolution
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// HasSolution reports whether the status carries a usable assignment.
func (s Status) HasSolution() bool { return s == StatusOptimal || s == StatusFeasible }

// SolveOptions tunes the branch-and-bound search.
type SolveOptions struct {
	// TimeLimit bounds wall-clock time; zero means no limit. It is sugar for
	// a context deadline: SolveCtx derives a child context with this timeout,
	// so an enclosing context can still cancel the solve earlier.
	TimeLimit time.Duration
	// Workers is the number of goroutines evaluating LP relaxations
	// concurrently. Zero or one means sequential evaluation. The search is
	// deterministic: any worker count produces the identical Result (see the
	// determinism notes on Solve).
	Workers int
	// MaxNodes bounds the number of explored nodes; zero means a large
	// default (1 << 20).
	MaxNodes int
	// MIPGap is the relative optimality gap at which search stops; zero
	// means 1e-6.
	MIPGap float64
	// IntTol is the integrality tolerance; zero means 1e-6.
	IntTol float64
	// WarmStart, when non-nil and feasible, seeds the incumbent.
	WarmStart []float64
	// LPOptions are passed to every LP relaxation solve.
	LPOptions lp.Options
	// Logf, when non-nil, receives progress messages.
	Logf func(format string, args ...interface{})
}

func (o SolveOptions) intTol() float64 {
	if o.IntTol > 0 {
		return o.IntTol
	}
	return 1e-6
}

func (o SolveOptions) mipGap() float64 {
	if o.MIPGap > 0 {
		return o.MIPGap
	}
	return 1e-6
}

func (o SolveOptions) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 1 << 20
}

func (o SolveOptions) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// Result is the outcome of Model.Solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective including the constant term
	Bound     float64   // best proven lower bound (minimization)
	X         []float64 // incumbent assignment (nil when none)
	Nodes     int
	Runtime   time.Duration
}

// Gap returns the relative gap between incumbent and bound (0 when proven
// optimal, +Inf when no incumbent).
func (r *Result) Gap() float64 {
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Max(1e-9, math.Abs(r.Objective))
	return math.Max(0, (r.Objective-r.Bound)/denom)
}

// Value returns the incumbent value of variable v.
func (r *Result) Value(v Var) float64 {
	if r.X == nil {
		return math.NaN()
	}
	return r.X[v]
}

// BoolValue returns the incumbent value of a binary variable as a bool.
func (r *Result) BoolValue(v Var) bool {
	return r.X != nil && r.X[v] > 0.5
}

// betterIncumbent reports whether (obj, x) should replace the current
// incumbent. A strictly better objective always wins; an objective tie within
// tolerance is broken lexicographically on the solution vector, so the
// adopted incumbent does not depend on the order in which equal-quality
// solutions are discovered.
func (r *Result) betterIncumbent(obj float64, x []float64) bool {
	if r.X == nil {
		return true
	}
	if obj < r.Objective-1e-9 {
		return true
	}
	if obj > r.Objective+1e-9 {
		return false
	}
	return lexLess(x, r.X)
}

// lexLess is a strict lexicographic order on solution vectors.
func lexLess(a, b []float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// node is one branch-and-bound subproblem: the bound overrides accumulated
// along the path from the root.
type node struct {
	lower map[int]float64
	upper map[int]float64
	bound float64 // parent LP objective: a valid lower bound for this node
	depth int
}

// nodeQueue is a best-bound priority queue of open nodes.
type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// bbBatchSize is how many open nodes are dequeued per search round. The batch
// size is a fixed constant — deliberately NOT derived from the worker count —
// because the exploration order (and therefore the exact result) must be a
// function of the model alone: workers only split the LP evaluations of one
// batch among themselves.
const bbBatchSize = 16

// Solve runs branch and bound on the model and returns the best solution
// found. The model is not modified. It is shorthand for SolveCtx with a
// background context.
func (m *Model) Solve(opts SolveOptions) (*Result, error) {
	return m.SolveCtx(context.Background(), opts)
}

// SolveCtx runs branch and bound under a context. Cancellation (or the
// deadline derived from opts.TimeLimit) stops the search at the next node
// boundary and returns the incumbent found so far (StatusFeasible) or
// StatusNoSolution when none exists yet. A context that is already cancelled
// on entry returns promptly without solving any LP.
//
// Determinism: the search dequeues nodes in fixed-size batches from the
// best-bound heap and makes every branching, pruning and incumbent decision
// sequentially in batch order; opts.Workers only parallelizes the LP
// relaxation solves of a batch, which are pure functions of their node. As
// long as no limit (time, cancellation) interrupts the search, the returned
// Result — status, objective, bound, node count and solution vector — is
// byte-identical for every worker count. Equal-objective incumbents are
// ordered lexicographically by solution vector as an extra guard.
func (m *Model) SolveCtx(ctx context.Context, opts SolveOptions) (*Result, error) {
	start := time.Now()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	intTol := opts.intTol()
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}

	prob := m.toLP()
	res := &Result{Status: StatusNoSolution, Bound: math.Inf(-1), Objective: math.Inf(1)}

	// Seed the incumbent from the warm start when it is feasible.
	if opts.WarmStart != nil {
		if ok, why := m.CheckFeasible(opts.WarmStart, 1e-6); ok {
			x := make([]float64, m.NumVars())
			copy(x, opts.WarmStart[:m.NumVars()])
			res.X = x
			res.Objective = m.Objective(x)
			res.Status = StatusFeasible
			logf("milp: warm start accepted, objective %.6g", res.Objective)
		} else {
			logf("milp: warm start rejected: %s", why)
		}
	}

	integers := make([]int, 0, m.NumBinaries())
	for j, t := range m.vtypes {
		if t != Continuous {
			integers = append(integers, j)
		}
	}

	open := &nodeQueue{}
	heap.Init(open)
	heap.Push(open, &node{lower: map[int]float64{}, upper: map[int]float64{}, bound: math.Inf(-1)})

	workers := opts.workers()
	timedOut := false
	rootSolved := false
	batch := make([]*node, 0, bbBatchSize)
	sols := make([]*lp.Solution, bbBatchSize)
	errs := make([]error, bbBatchSize)

search:
	for open.Len() > 0 {
		if res.Nodes >= opts.maxNodes() || ctx.Err() != nil {
			timedOut = true
			break
		}

		// Dequeue one round of nodes, pruning against the incumbent before
		// paying for any LP.
		batch = batch[:0]
		for len(batch) < bbBatchSize && open.Len() > 0 {
			nd := heap.Pop(open).(*node)
			if res.X != nil && nd.bound >= res.Objective-1e-9 {
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}
		// Best-bound ordering means the first batch node carries the smallest
		// bound among open nodes: it is the current global lower bound.
		if rootSolved && batch[0].bound > res.Bound {
			res.Bound = batch[0].bound
		}

		// Clear the result slots: the slices are reused across rounds, and a
		// job skipped by mid-batch cancellation must read as "not evaluated"
		// rather than as the previous round's stale solution.
		for i := range batch {
			sols[i], errs[i] = nil, nil
		}
		solveNode := func(i int) {
			lpOpts := opts.LPOptions
			lpOpts.LowerOverride = batch[i].lower
			lpOpts.UpperOverride = batch[i].upper
			sols[i], errs[i] = lp.SolveCtx(ctx, prob, lpOpts)
		}
		// With more than one worker the whole batch is evaluated eagerly by a
		// bounded pool; sequentially each LP is solved lazily right before
		// its node is processed, so nodes pruned mid-batch never pay for one.
		// Either way the decisions below see identical inputs.
		eager := workers > 1 && len(batch) > 1
		if eager {
			conc.ForEach(ctx, workers, len(batch), solveNode)
		}

		for i, nd := range batch {
			// Re-check the prune: the incumbent may have improved while
			// processing earlier nodes of this batch.
			if res.X != nil && nd.bound >= res.Objective-1e-9 {
				continue
			}
			if res.Nodes >= opts.maxNodes() {
				for _, rest := range batch[i:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			}
			res.Nodes++
			if !eager {
				solveNode(i)
			}
			if errs[i] != nil {
				return nil, errs[i]
			}
			sol := sols[i]
			if sol == nil {
				// Eager evaluation skipped this node: the context fired while
				// the batch was in flight. Same treatment as a cancelled LP.
				for _, rest := range batch[i+1:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			}
			switch sol.Status {
			case lp.StatusCancelled:
				for _, rest := range batch[i+1:] {
					heap.Push(open, rest)
				}
				timedOut = true
				break search
			case lp.StatusInfeasible:
				if res.Nodes == 1 && res.X == nil {
					res.Status = StatusInfeasible
					res.Runtime = time.Since(start)
					return res, nil
				}
				continue
			case lp.StatusUnbounded:
				if res.Nodes == 1 && res.X == nil {
					res.Status = StatusUnbounded
					res.Runtime = time.Since(start)
					return res, nil
				}
				continue
			case lp.StatusIterLimit:
				// Treat as an unusable node bound: keep the parent bound and
				// do not branch further on this path.
				logf("milp: node %d hit LP iteration limit", res.Nodes)
				continue
			}
			rootSolved = true
			lpObj := sol.Objective + m.objConstant
			nd.bound = lpObj
			if res.Nodes == 1 {
				res.Bound = lpObj
				// LP-guided dive from the root: greedily fix fractional integer
				// variables to find a first incumbent quickly. Big-M disjunction
				// models (the non-overlap constraints of the layout ILP) rarely
				// produce integral relaxations, so pure best-bound search can
				// wander for a long time without this.
				if res.X == nil {
					if x, obj, ok := m.dive(ctx, prob, opts, nd, sol.X, integers); ok {
						res.X = x
						res.Objective = obj
						res.Status = StatusFeasible
						logf("milp: dive incumbent %.6g", obj)
					}
				}
			}

			if res.X != nil && lpObj >= res.Objective-1e-9 {
				continue // dominated
			}

			// Find the most fractional integer variable.
			branchVar := -1
			worstFrac := intTol
			for _, j := range integers {
				v := sol.X[j]
				frac := math.Abs(v - math.Round(v))
				if frac > worstFrac {
					worstFrac = frac
					branchVar = j
				}
			}

			if branchVar < 0 {
				// Integer feasible: candidate incumbent.
				x := make([]float64, len(sol.X))
				copy(x, sol.X)
				for _, j := range integers {
					x[j] = math.Round(x[j])
				}
				obj := m.Objective(x)
				if res.betterIncumbent(obj, x) {
					res.X = x
					res.Objective = obj
					res.Status = StatusFeasible
					logf("milp: incumbent %.6g after %d nodes", res.Objective, res.Nodes)
				}
				continue
			}

			// Rounding heuristic: cheap attempt to produce an incumbent early.
			if res.X == nil {
				if x, ok := m.roundingHeuristic(sol.X, integers, intTol); ok {
					obj := m.Objective(x)
					if res.betterIncumbent(obj, x) {
						res.X = x
						res.Objective = obj
						res.Status = StatusFeasible
						logf("milp: rounding heuristic incumbent %.6g", obj)
					}
				}
			}

			// Branch.
			val := sol.X[branchVar]
			down := &node{
				lower: nd.lower, upper: copyWith(nd.upper, branchVar, math.Floor(val)),
				bound: lpObj, depth: nd.depth + 1,
			}
			up := &node{
				lower: copyWith(nd.lower, branchVar, math.Ceil(val)), upper: nd.upper,
				bound: lpObj, depth: nd.depth + 1,
			}
			heap.Push(open, down)
			heap.Push(open, up)

			// Early stop on gap.
			if res.X != nil {
				gap := (res.Objective - res.Bound) / math.Max(1e-9, math.Abs(res.Objective))
				if gap <= opts.mipGap() {
					for _, rest := range batch[i+1:] {
						heap.Push(open, rest)
					}
					break search
				}
			}
		}
	}

	res.Runtime = time.Since(start)
	if res.X != nil {
		if !timedOut && open.Len() == 0 {
			res.Status = StatusOptimal
			res.Bound = res.Objective
		} else if !timedOut {
			// Stopped on gap.
			gap := (res.Objective - res.Bound) / math.Max(1e-9, math.Abs(res.Objective))
			if gap <= opts.mipGap() {
				res.Status = StatusOptimal
			} else {
				res.Status = StatusFeasible
			}
		} else {
			res.Status = StatusFeasible
		}
		return res, nil
	}
	if timedOut {
		res.Status = StatusNoSolution
		return res, nil
	}
	// Search exhausted with no incumbent: infeasible.
	res.Status = StatusInfeasible
	return res, nil
}

// dive runs an LP-guided diving heuristic from the given node: it repeatedly
// fixes the most fractional integer variable to its rounded value (flipping
// to the opposite value when that makes the LP infeasible) until the
// relaxation is integral or the dive fails. It returns the incumbent found.
func (m *Model) dive(ctx context.Context, prob *lp.Problem, opts SolveOptions, nd *node, rootX []float64, integers []int) ([]float64, float64, bool) {
	intTol := opts.intTol()
	lower := copyMap(nd.lower)
	upper := copyMap(nd.upper)
	x := rootX
	for iter := 0; iter <= len(integers)+4; iter++ {
		if ctx.Err() != nil {
			return nil, 0, false
		}
		branchVar := -1
		worst := intTol
		for _, j := range integers {
			frac := math.Abs(x[j] - math.Round(x[j]))
			if frac > worst {
				worst = frac
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral: verify against the full model and return.
			rounded := make([]float64, len(x))
			copy(rounded, x)
			for _, j := range integers {
				rounded[j] = math.Round(rounded[j])
			}
			if ok, _ := m.CheckFeasible(rounded, 1e-6); ok {
				return rounded, m.Objective(rounded), true
			}
			return nil, 0, false
		}
		tryValues := []float64{math.Round(x[branchVar])}
		other := 1 - tryValues[0]
		if m.vtypes[branchVar] == Integer {
			if tryValues[0] >= x[branchVar] {
				other = tryValues[0] - 1
			} else {
				other = tryValues[0] + 1
			}
		}
		tryValues = append(tryValues, other)
		fixed := false
		for _, v := range tryValues {
			trialLower := copyMap(lower)
			trialUpper := copyMap(upper)
			trialLower[branchVar] = v
			trialUpper[branchVar] = v
			lpOpts := opts.LPOptions
			lpOpts.LowerOverride = trialLower
			lpOpts.UpperOverride = trialUpper
			sol, err := lp.SolveCtx(ctx, prob, lpOpts)
			if err != nil || sol.Status != lp.StatusOptimal {
				continue
			}
			lower, upper = trialLower, trialUpper
			x = sol.X
			fixed = true
			break
		}
		if !fixed {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

func copyMap(src map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	return out
}

// roundingHeuristic rounds the fractional LP values of integer variables and
// re-checks feasibility of the full model.
func (m *Model) roundingHeuristic(x []float64, integers []int, tol float64) ([]float64, bool) {
	rounded := make([]float64, len(x))
	copy(rounded, x)
	for _, j := range integers {
		rounded[j] = math.Round(rounded[j])
		// Keep within bounds.
		if rounded[j] < m.lower[j] {
			rounded[j] = math.Ceil(m.lower[j])
		}
		if rounded[j] > m.upper[j] {
			rounded[j] = math.Floor(m.upper[j])
		}
	}
	if ok, _ := m.CheckFeasible(rounded, 1e-6); ok {
		return rounded, true
	}
	_ = tol
	return nil, false
}

// copyWith clones the override map and sets key to value.
func copyWith(src map[int]float64, key int, value float64) map[int]float64 {
	out := make(map[int]float64, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	// Branches only ever tighten: the caller passes floor/ceil of the current
	// relaxation value, which is always at least as tight as any previous
	// override of the same variable.
	out[key] = value
	return out
}
