package milp

import (
	"math"
	"testing"

	"rficlayout/internal/lp"
)

func TestExprBasics(t *testing.T) {
	e := NewExpr().Add(0, 2).Add(1, -3).AddConst(5)
	x := []float64{4, 1}
	if got := e.Eval(x); got != 2*4-3*1+5 {
		t.Errorf("Eval = %g", got)
	}
	e.Add(0, 1) // accumulate onto existing term
	if got := e.Eval(x); got != 3*4-3*1+5 {
		t.Errorf("Eval after accumulate = %g", got)
	}
	clone := e.Clone()
	clone.Add(1, 100)
	if e.Eval(x) == clone.Eval(x) {
		t.Error("Clone is not independent")
	}
	sum := NewExpr().AddExpr(e, 2)
	if got := sum.Eval(x); got != 2*e.Eval(x) {
		t.Errorf("AddExpr scale = %g", got)
	}
	if Term(Var(1), 4).Eval(x) != 4 {
		t.Error("Term wrong")
	}
	if Constant(7).Eval(x) != 7 {
		t.Error("Constant wrong")
	}
	if NewExpr().Sub(0, 1).Eval(x) != -4 {
		t.Error("Sub wrong")
	}
	terms := e.Terms()
	if len(terms) != 2 || terms[0].Var != 0 || terms[1].Var != 1 {
		t.Errorf("Terms = %v", terms)
	}
}

func TestExprTermsDropsZeroCoefficients(t *testing.T) {
	e := NewExpr().Add(0, 2).Add(0, -2).Add(1, 1)
	terms := e.Terms()
	if len(terms) != 1 || terms[0].Var != 1 {
		t.Errorf("Terms = %v, want only var 1", terms)
	}
}

func TestModelVariableAccounting(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 10)
	b := m.AddBinary("b")
	n := m.AddInteger("n", 0, 5)
	if m.NumVars() != 3 || m.NumBinaries() != 2 {
		t.Errorf("NumVars=%d NumBinaries=%d", m.NumVars(), m.NumBinaries())
	}
	if m.Name(x) != "x" || m.VarType(b) != Binary || m.VarType(n) != Integer {
		t.Error("names or types wrong")
	}
	lo, up := m.Bounds(b)
	if lo != 0 || up != 1 {
		t.Errorf("binary bounds = [%g, %g]", lo, up)
	}
	m.SetBounds(x, 1, 4)
	lo, up = m.Bounds(x)
	if lo != 1 || up != 4 {
		t.Errorf("SetBounds = [%g, %g]", lo, up)
	}
	if m.Stats() == "" {
		t.Error("empty stats")
	}
	for _, vt := range []VarType{Continuous, Binary, Integer, VarType(9)} {
		if vt.String() == "" {
			t.Error("empty VarType string")
		}
	}
}

func TestObjectiveAccumulation(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 10)
	y := m.AddContinuous("y", 0, 10)
	m.SetObjectiveCoef(x, 2)
	m.AddObjectiveCoef(x, 1)
	m.AddObjectiveExpr(Term(y, 4).AddConst(3), 2)
	assignment := []float64{1, 2}
	// objective = 3x + 8y + 6 = 3 + 16 + 6 = 25
	if got := m.Objective(assignment); got != 25 {
		t.Errorf("Objective = %g, want 25", got)
	}
	if m.ObjectiveConstant() != 6 {
		t.Errorf("ObjectiveConstant = %g", m.ObjectiveConstant())
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 10)
	b := m.AddBinary("b")
	m.AddLE("cap", Term(x, 1).Add(b, 5), 8)
	if ok, _ := m.CheckFeasible([]float64{3, 1}, 1e-6); !ok {
		t.Error("feasible point rejected")
	}
	if ok, why := m.CheckFeasible([]float64{4, 1}, 1e-6); ok {
		t.Error("constraint violation accepted")
	} else if why == "" {
		t.Error("missing violation description")
	}
	if ok, _ := m.CheckFeasible([]float64{3, 0.5}, 1e-6); ok {
		t.Error("fractional binary accepted")
	}
	if ok, _ := m.CheckFeasible([]float64{-1, 0}, 1e-6); ok {
		t.Error("bound violation accepted")
	}
	if ok, _ := m.CheckFeasible([]float64{1}, 1e-6); ok {
		t.Error("short assignment accepted")
	}
}

func TestCheckFeasibleSenses(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", -10, 10)
	m.AddGE("ge", Term(x, 1), 2)
	m.AddEQ("eq", Term(x, 2), 8)
	if ok, _ := m.CheckFeasible([]float64{4}, 1e-6); !ok {
		t.Error("x=4 should satisfy both")
	}
	if ok, _ := m.CheckFeasible([]float64{3}, 1e-6); ok {
		t.Error("x=3 violates the equality")
	}
	if ok, _ := m.CheckFeasible([]float64{1}, 1e-6); ok {
		t.Error("x=1 violates the ge constraint")
	}
}

func TestConstraintConstantMovesToRHS(t *testing.T) {
	// x + 3 <= 5 must behave as x <= 2.
	m := NewModel()
	x := m.AddContinuous("x", 0, 10)
	m.SetObjectiveCoef(x, -1)
	m.AddLE("c", Term(x, 1).AddConst(3), 5)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() || math.Abs(res.Value(x)-2) > 1e-6 {
		t.Errorf("x = %g, want 2 (status %v)", res.Value(x), res.Status)
	}
}

func TestProductBinaryExprLinearization(t *testing.T) {
	// y = z * x with x in [2, 6]. For each forced z, minimizing / maximizing
	// y must reproduce the product.
	build := func() (*Model, Var, Var, Var) {
		m := NewModel()
		x := m.AddContinuous("x", 2, 6)
		z := m.AddBinary("z")
		y := m.ProductBinaryExpr("y", z, Term(x, 1), 2, 6)
		return m, x, z, y
	}

	// Force z = 0: y must be 0 regardless of x.
	m, x, z, y := build()
	m.AddEQ("fixz", Term(z, 1), 0)
	m.AddEQ("fixx", Term(x, 1), 5)
	m.SetObjectiveCoef(y, -1) // maximize y
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() || math.Abs(res.Value(y)) > 1e-6 {
		t.Errorf("z=0: y = %g, want 0", res.Value(y))
	}

	// Force z = 1, x = 5: y must be 5 whether minimized or maximized.
	for _, sign := range []float64{1, -1} {
		m, x, z, y = build()
		m.AddEQ("fixz", Term(z, 1), 1)
		m.AddEQ("fixx", Term(x, 1), 5)
		m.SetObjectiveCoef(y, sign)
		res, err = m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Status.HasSolution() || math.Abs(res.Value(y)-5) > 1e-6 {
			t.Errorf("z=1 sign=%g: y = %g, want 5", sign, res.Value(y))
		}
	}
}

func TestProductBinaryExprPanics(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-binary z")
		}
	}()
	m.ProductBinaryExpr("y", x, Term(x, 1), 0, 1)
}

func TestAbsEnvelope(t *testing.T) {
	// u >= |x - 7|, minimize u with x fixed: u must equal |x-7|.
	for _, fixed := range []float64{3, 7, 12} {
		m := NewModel()
		x := m.AddContinuous("x", 0, 20)
		m.AddEQ("fix", Term(x, 1), fixed)
		u := m.AbsEnvelope("u", Term(x, 1).AddConst(-7), 100)
		m.SetObjectiveCoef(u, 1)
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Abs(fixed - 7)
		if !res.Status.HasSolution() || math.Abs(res.Value(u)-want) > 1e-6 {
			t.Errorf("x=%g: u = %g, want %g", fixed, res.Value(u), want)
		}
	}
}

func TestMaxEnvelope(t *testing.T) {
	m := NewModel()
	a := m.AddContinuous("a", 0, 10)
	b := m.AddContinuous("b", 0, 10)
	m.AddEQ("fa", Term(a, 1), 3)
	m.AddEQ("fb", Term(b, 1), 8)
	mx := m.MaxEnvelope("max", 100, Term(a, 1), Term(b, 1))
	m.SetObjectiveCoef(mx, 1)
	res, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() || math.Abs(res.Value(mx)-8) > 1e-6 {
		t.Errorf("max = %g, want 8", res.Value(mx))
	}
}

func TestImpliedConstraints(t *testing.T) {
	// z = 1 forces x <= 3; maximize x with z fixed to 1 and to 0.
	const bigM = 100
	for _, zval := range []float64{0, 1} {
		m := NewModel()
		x := m.AddContinuous("x", 0, 10)
		z := m.AddBinary("z")
		m.AddEQ("fixz", Term(z, 1), zval)
		m.AddImpliedLE("imp", z, Term(x, 1), 3, bigM)
		m.SetObjectiveCoef(x, -1)
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := 10.0
		if zval == 1 {
			want = 3
		}
		if !res.Status.HasSolution() || math.Abs(res.Value(x)-want) > 1e-6 {
			t.Errorf("z=%g: x = %g, want %g", zval, res.Value(x), want)
		}
	}

	// z = 1 forces x >= 6; minimize x.
	for _, zval := range []float64{0, 1} {
		m := NewModel()
		x := m.AddContinuous("x", 0, 10)
		z := m.AddBinary("z")
		m.AddEQ("fixz", Term(z, 1), zval)
		m.AddImpliedGE("imp", z, Term(x, 1), 6, bigM)
		m.SetObjectiveCoef(x, 1)
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if zval == 1 {
			want = 6
		}
		if !res.Status.HasSolution() || math.Abs(res.Value(x)-want) > 1e-6 {
			t.Errorf("z=%g: x = %g, want %g", zval, res.Value(x), want)
		}
	}
}

func TestAddDisabledLE(t *testing.T) {
	// x <= 2 unless u = 1 (then effectively x <= 2 + M).
	const bigM = 50
	for _, uval := range []float64{0, 1} {
		m := NewModel()
		x := m.AddContinuous("x", 0, 10)
		u := m.AddBinary("u")
		m.AddEQ("fixu", Term(u, 1), uval)
		m.AddDisabledLE("dis", u, Term(x, 1), 2, bigM)
		m.SetObjectiveCoef(x, -1)
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := 2.0
		if uval == 1 {
			want = 10 // variable bound binds before the relaxed constraint
		}
		if !res.Status.HasSolution() || math.Abs(res.Value(x)-want) > 1e-6 {
			t.Errorf("u=%g: x = %g, want %g", uval, res.Value(x), want)
		}
	}
}

func TestBinaryBoundsClampedOnAdd(t *testing.T) {
	m := NewModel()
	b := m.AddVar("b", -5, 9, Binary)
	lo, up := m.Bounds(b)
	if lo != 0 || up != 1 {
		t.Errorf("binary bounds = [%g, %g], want [0, 1]", lo, up)
	}
}

func TestToLPSharesIndices(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 4)
	b := m.AddBinary("b")
	m.SetObjectiveCoef(x, 1)
	m.AddLE("c", Term(x, 1).Add(b, 2), 4)
	p := m.toLP()
	if p.NumVariables() != 2 || p.NumConstraints() != 1 {
		t.Fatalf("lp size = %d vars, %d cons", p.NumVariables(), p.NumConstraints())
	}
	if p.Variables[int(x)].Name != "x" || p.Variables[int(b)].Upper != 1 {
		t.Error("lp variables not aligned with model variables")
	}
	if p.Constraints[0].Sense != lp.LE {
		t.Error("constraint sense lost")
	}
}
