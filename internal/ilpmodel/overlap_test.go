package ilpmodel

import (
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// obstacleCircuit places a blocking capacitor directly between two connected
// devices, so the straight route is not available.
func obstacleCircuit() (*netlist.Circuit, *layout.Layout) {
	c := netlist.NewCircuit("obstacle", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(220))
	a := netlist.NewDevice("A", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	a.AddPin("p", geom.PtMicrons(20, 0), 0)
	c.AddDevice(a)
	b := netlist.NewDevice("B", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	b.AddPin("p", geom.PtMicrons(-20, 0), 0)
	c.AddDevice(b)
	blocker := netlist.NewDevice("X", netlist.Capacitor, geom.FromMicrons(50), geom.FromMicrons(60))
	blocker.AddPin("p", geom.Pt(0, 0), 0)
	c.AddDevice(blocker)
	// Target long enough to go around the blocker: direct pin distance is
	// 180 µm; the detour around a 60 µm tall blocker (plus spacing) needs
	// roughly 180 + 2·(30 + 10 + 5) ≈ 270 µm. Use 280 µm.
	c.Connect("TL", "A", "p", "B", "p", geom.FromMicrons(280))

	l := layout.New(c)
	_ = l.Place("A", geom.PtMicrons(40, 110), geom.R0)
	_ = l.Place("B", geom.PtMicrons(260, 110), geom.R0)
	_ = l.Place("X", geom.PtMicrons(150, 110), geom.R0)
	return c, l
}

func TestRouteAvoidsFixedObstacle(t *testing.T) {
	c, fixed := obstacleCircuit()
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(60 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v after %d nodes", res.Status, res.Nodes)
	}
	vs := lay.Check(layout.CheckOptions{PinTolerance: 2})
	if n := layout.CountViolations(vs, layout.SpacingViolation); n != 0 {
		t.Errorf("spacing violations: %v", vs)
	}
	if n := layout.CountViolations(vs, layout.LengthMismatch); n != 0 {
		t.Errorf("length mismatches: %v", vs)
	}
	rs := lay.Routed("TL")
	if rs.Bends() < 2 {
		t.Errorf("bends = %d; the detour around the obstacle needs at least 2", rs.Bends())
	}
}

func TestPairRadiusPrunesConstraints(t *testing.T) {
	c, fixed := obstacleCircuit()
	// Add a fixed device in the far corner and give the strip a warm route:
	// with a small pair radius the far device's non-overlap constraints are
	// dropped while everything near the strip is kept.
	far := netlist.NewDevice("FAR", netlist.Capacitor, geom.FromMicrons(30), geom.FromMicrons(30))
	far.AddPin("p", geom.Pt(0, 0), 0)
	c.AddDevice(far)
	if err := fixed.Place("FAR", geom.PtMicrons(280, 20), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := fixed.Route("TL",
		geom.PtMicrons(60, 110), geom.PtMicrons(60, 180),
		geom.PtMicrons(240, 180), geom.PtMicrons(240, 110)); err != nil {
		t.Fatal(err)
	}
	full, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
		PairRadius:         geom.FromMicrons(1), // prune almost everything
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.overlapPairs >= full.overlapPairs {
		t.Errorf("pruned pairs %d not fewer than full pairs %d", pruned.overlapPairs, full.overlapPairs)
	}
}

func TestBlurredModeSolves(t *testing.T) {
	// In blurred mode the devices are free, bodies are not modeled, strips
	// join device centres and the target absorbs the centre-to-pin runs.
	c, fixed := obstacleCircuit()
	m, err := Build(c, Config{
		Fixed:              fixed,
		Blurred:            true,
		SoftLength:         true,
		OverlapSlack:       true,
		DefaultChainPoints: 3,
		Confinement:        geom.FromMicrons(60),
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(60 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	if lay == nil || lay.Routed("TL") == nil {
		t.Fatal("no route extracted")
	}
	// The blurred model has no device boxes, so the only boxes are the three
	// segments of TL; adjacent ones are exempt, leaving at most one pair.
	if m.overlapPairs > 1 {
		t.Errorf("blurred model has %d overlap pairs, expected at most 1", m.overlapPairs)
	}
}

func TestConfinementWindowsRestrictCoordinates(t *testing.T) {
	c, fixed := obstacleCircuit()
	// Route the strip in the fixed layout so confinement has a reference.
	if err := fixed.Route("TL",
		geom.PtMicrons(60, 110), geom.PtMicrons(60, 170),
		geom.PtMicrons(240, 170), geom.PtMicrons(240, 110)); err != nil {
		t.Fatal(err)
	}
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
		Confinement:        geom.FromMicrons(30),
		FixTopology:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	rs := lay.Routed("TL")
	warm := fixed.Routed("TL")
	for i, p := range rs.Path.Points {
		if p.ManhattanTo(warm.Path.Points[i]) > geom.FromMicrons(61) {
			t.Errorf("chain point %d moved %v → %v, beyond the confinement window", i, warm.Path.Points[i], p)
		}
	}
	if e := geom.AbsCoord(rs.LengthError(c.Tech.BendCompensation)); e > 10 {
		t.Errorf("length error = %d nm", e)
	}
}

func TestConfinementTooTightIsRejected(t *testing.T) {
	c, fixed := obstacleCircuit()
	// No route for TL in the fixed layout: confinement on chain points is
	// then skipped, but a FixTopology request must fail cleanly.
	_, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
		FixTopology:        true,
	})
	if err == nil {
		t.Error("FixTopology without a warm route should fail")
	}
}
