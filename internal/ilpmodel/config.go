// Package ilpmodel builds the integer-linear-programming model of Section 4
// of the paper: concurrent exact device placement and fixed-length microstrip
// routing. A microstrip is decomposed into segments joined at chain points;
// 0-1 direction variables select each segment's direction (Eq. 1–5), the
// segment lengths are linearized (Eq. 6–7), bends are detected from direction
// changes (Eq. 8–11), the equivalent length including the per-bend
// compensation δ must match the target exactly (Eq. 12–13) or, in the soft
// phase-1 form, approximately with penalized mismatch (Eq. 23–25). Pins bind
// route endpoints to devices (Eq. 14), pads sit on the layout boundary
// (Eq. 15) and expanded bounding boxes must not overlap (Eq. 16–20). The
// objective minimizes the maximum and total bend counts (Eq. 21 / 26).
//
// The model is expressed on top of internal/milp and solved by its
// branch-and-bound engine. To keep from-scratch solves tractable, the
// progressive flow in internal/pilp builds restricted instances through
// Config: objects can be fixed at known positions, coordinates confined to
// τd windows, non-overlap pairs pruned by distance, and segment directions
// pinned to a warm-start topology.
package ilpmodel

import (
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
)

// Weights are the objective coefficients of Eq. 21 and Eq. 26.
type Weights struct {
	// Alpha weighs the maximum bend count over all microstrips.
	Alpha float64
	// Beta weighs the total bend count.
	Beta float64
	// Gamma weighs the maximum unmatched length (soft-length mode only).
	Gamma float64
	// Zeta weighs the total unmatched length (soft-length mode only).
	Zeta float64
	// Eta weighs the total overlap slack (overlap-slack mode only).
	Eta float64
	// Theta weighs the boundary-terminal drift of BoundarySlack strips.
	Theta float64
}

// DefaultWeights balances one bend against roughly two micrometres of length
// mismatch or overlap, matching the priorities the paper describes: exact
// lengths and few bends first, residual overlap cleanup second.
func DefaultWeights() Weights {
	return Weights{Alpha: 10, Beta: 1, Gamma: 0.02, Zeta: 0.005, Eta: 0.01, Theta: 0.1}
}

// Config controls which parts of the full Section-4 model are built and how
// much freedom the instance has.
type Config struct {
	// DefaultChainPoints is the number of chain points n_i given to every
	// microstrip that has no entry in ChainPoints. The minimum is 2 (a single
	// straight segment); the paper's phase 1 fixes a small constant and later
	// phases insert more where needed. Zero means 4.
	DefaultChainPoints int
	// ChainPoints overrides the chain-point count per microstrip name.
	ChainPoints map[string]int
	// Orientations fixes the orientation of each device (default R0).
	// Device rotation is explored by the refinement phase, which rebuilds
	// the model with different assignments.
	Orientations map[string]geom.Orientation

	// FreeDevices and FreeStrips name the objects whose geometry the solver
	// may change. Nil means "all". Objects that are not free must have a
	// position/route in Fixed and are treated as constants (obstacles).
	FreeDevices []string
	FreeStrips  []string

	// Fixed supplies positions for non-free objects, warm-start positions
	// for confinement, and the topology for FixTopology.
	Fixed *layout.Layout

	// Blurred selects the phase-1 abstraction (Section 5.1): device
	// geometries are not modeled; each microstrip connects device centres
	// directly, the spacing boxes of its end segments are enlarged by the
	// pin reach of the device (Figure 8), and the target length is increased
	// by the centre-to-pin distances (Eq. 23).
	Blurred bool
	// SoftLength replaces the exact-length equality (Eq. 13) with the
	// penalized mismatch bounds of Eq. 24–25.
	SoftLength bool
	// OverlapSlack adds a penalized slack to every non-overlap pair
	// (Section 5.1 allows residual overlap in phase 1, Figure 9).
	OverlapSlack bool
	// FixTopology pins every free strip's segment directions to the
	// directions of its route in Fixed, leaving only the coordinates
	// continuous. Requires Fixed routes whose point count matches the
	// configured chain points.
	FixTopology bool
	// RelativePositions replaces the four-way disjunctive non-overlap
	// constraints (Eq. 16–20) by the single separation constraint that the
	// Fixed layout already realizes for each pair, eliminating the
	// disjunction binaries. This keeps the global adjustment phases pure LPs
	// (plus pad binaries) at the cost of freezing the relative order of
	// objects — exactly the restriction the τd confinement of Sections
	// 5.2–5.3 imposes implicitly. Pairs without warm geometry keep the full
	// disjunction.
	RelativePositions bool

	// BoundarySlack names free strips whose endpoints at fixed devices bind
	// to the pin through a penalized slack (weighted by Theta) instead of an
	// exact equality. The sharded phase-1 sub-models (BuildSub) use this for
	// inter-cluster strips: the far terminal is pinned to its position in the
	// layout snapshot, and the slack keeps the shard feasible when the local
	// cluster has to move while the frozen topology cannot absorb the drift.
	// Terminals at free devices always bind exactly.
	BoundarySlack []string

	// Confinement, when positive, restricts every free coordinate to a
	// window of ±Confinement around its value in Fixed (the τd confinement
	// of Sections 5.2–5.3).
	Confinement geom.Coord
	// PairRadius, when positive, drops non-overlap constraints between
	// objects whose expanded boxes in Fixed are farther apart than this
	// radius. Zero keeps every pair.
	PairRadius geom.Coord

	// Weights are the objective coefficients; the zero value means
	// DefaultWeights.
	Weights Weights
}

func (c Config) chainPoints(strip string) int {
	if n, ok := c.ChainPoints[strip]; ok && n >= 2 {
		return n
	}
	if c.DefaultChainPoints >= 2 {
		return c.DefaultChainPoints
	}
	return 4
}

func (c Config) orientation(device string) geom.Orientation {
	if o, ok := c.Orientations[device]; ok {
		return o.Normalize()
	}
	return geom.R0
}

func (c Config) weights() Weights {
	if c.Weights == (Weights{}) {
		return DefaultWeights()
	}
	return c.Weights
}

func (c Config) deviceFree(name string) bool {
	if c.FreeDevices == nil {
		return true
	}
	for _, n := range c.FreeDevices {
		if n == name {
			return true
		}
	}
	return false
}

func (c Config) boundarySlack(name string) bool {
	for _, n := range c.BoundarySlack {
		if n == name {
			return true
		}
	}
	return false
}

func (c Config) stripFree(name string) bool {
	if c.FreeStrips == nil {
		return true
	}
	for _, n := range c.FreeStrips {
		if n == name {
			return true
		}
	}
	return false
}

// validate checks that the configuration is usable for the circuit.
func (c Config) validate(ckt *netlist.Circuit) error {
	needFixed := c.FreeDevices != nil || c.FreeStrips != nil || c.FixTopology || c.Confinement > 0 || c.PairRadius > 0
	if needFixed && c.Fixed == nil {
		return fmt.Errorf("ilpmodel: configuration requires a Fixed layout (fixed objects, topology, confinement or pair pruning requested)")
	}
	for name := range c.ChainPoints {
		if _, err := ckt.Microstrip(name); err != nil {
			return fmt.Errorf("ilpmodel: chain-point override for unknown microstrip %q", name)
		}
	}
	for name := range c.Orientations {
		if _, err := ckt.Device(name); err != nil {
			return fmt.Errorf("ilpmodel: orientation override for unknown device %q", name)
		}
	}
	for _, name := range c.FreeDevices {
		if _, err := ckt.Device(name); err != nil {
			return fmt.Errorf("ilpmodel: free device %q not in circuit", name)
		}
	}
	for _, name := range c.FreeStrips {
		if _, err := ckt.Microstrip(name); err != nil {
			return fmt.Errorf("ilpmodel: free microstrip %q not in circuit", name)
		}
	}
	for _, name := range c.BoundarySlack {
		if _, err := ckt.Microstrip(name); err != nil {
			return fmt.Errorf("ilpmodel: boundary-slack strip %q not in circuit", name)
		}
		if !c.stripFree(name) {
			return fmt.Errorf("ilpmodel: boundary-slack strip %q is not free", name)
		}
	}
	return nil
}
