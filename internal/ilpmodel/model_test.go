package ilpmodel

import (
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// twoBlockCircuit builds a minimal instance: two capacitor blocks connected
// by one microstrip inside a 300×200 µm area.
func twoBlockCircuit(targetUm float64) *netlist.Circuit {
	c := netlist.NewCircuit("pair", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(200))
	a := netlist.NewDevice("A", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	a.AddPin("p", geom.PtMicrons(20, 0), 0)
	c.AddDevice(a)
	b := netlist.NewDevice("B", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	b.AddPin("p", geom.PtMicrons(-20, 0), 0)
	c.AddDevice(b)
	c.Connect("TL", "A", "p", "B", "p", geom.FromMicrons(targetUm))
	return c
}

// fixedTwoBlockLayout places A and B at opposite ends of the area.
func fixedTwoBlockLayout(t *testing.T, c *netlist.Circuit) *layout.Layout {
	t.Helper()
	l := layout.New(c)
	if err := l.Place("A", geom.PtMicrons(40, 100), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place("B", geom.PtMicrons(260, 100), geom.R0); err != nil {
		t.Fatal(err)
	}
	return l
}

func solveOpts(limit time.Duration) milp.SolveOptions {
	return milp.SolveOptions{TimeLimit: limit, MIPGap: 1e-4}
}

func TestStraightStripExactLength(t *testing.T) {
	// Pins are 180 µm apart; the target is exactly 180 µm, so a straight
	// zero-bend route is optimal and exact.
	c := twoBlockCircuit(180)
	fixed := fixedTwoBlockLayout(t, c)
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	if lay == nil || !lay.Complete() {
		t.Fatal("incomplete layout extracted")
	}
	rs := lay.Routed("TL")
	if rs.Bends() != 0 {
		t.Errorf("bends = %d, want 0", rs.Bends())
	}
	if vs := lay.Check(layout.CheckOptions{PinTolerance: 2}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	if got := m.TotalBends(res.X); got != 0 {
		t.Errorf("modeled bends = %d", got)
	}
	if mismatch, _ := m.UnmatchedLength(res.X, "TL"); mismatch > 1e-4 {
		t.Errorf("modeled length mismatch = %g µm", mismatch)
	}
}

func TestLongerTargetForcesDetour(t *testing.T) {
	// Pins are 180 µm apart but the target is 240 µm: the strip must detour,
	// which needs at least two bends. The equivalent length must match the
	// target exactly, including the per-bend compensation.
	c := twoBlockCircuit(240)
	fixed := fixedTwoBlockLayout(t, c)
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	rs := lay.Routed("TL")
	if rs.Bends() < 2 {
		t.Errorf("bends = %d, want >= 2 for a detour", rs.Bends())
	}
	if vs := lay.Check(layout.CheckOptions{PinTolerance: 2}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestInfeasibleTooShortTarget(t *testing.T) {
	// The pins are 180 µm apart but the target is only 100 µm: no planar
	// rectilinear route can be shorter than the Manhattan pin distance, so
	// the model must be infeasible.
	c := twoBlockCircuit(100)
	fixed := fixedTwoBlockLayout(t, c)
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestSoftLengthReportsMismatch(t *testing.T) {
	// Same impossible 100 µm target, but with SoftLength the model stays
	// feasible and reports the 80 µm shortfall (pins are 180 µm apart).
	c := twoBlockCircuit(100)
	fixed := fixedTwoBlockLayout(t, c)
	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 3,
		SoftLength:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	mismatch, err := m.UnmatchedLength(res.X, "TL")
	if err != nil {
		t.Fatal(err)
	}
	if mismatch < 75 || mismatch > 85 {
		t.Errorf("mismatch = %g µm, want ≈ 80", mismatch)
	}
}

func TestFixTopologyKeepsDirectionsAndMatchesLength(t *testing.T) {
	// Give a warm route with an L topology (3 points) and fix it; the solver
	// may only slide coordinates. Target length chosen to require moving the
	// bend position: pins at (60,100) and (240,100); warm route goes up and
	// over. With topology up-right-down... use 4 points: up, right, down.
	c := netlist.NewCircuit("ltopo", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(200))
	a := netlist.NewDevice("A", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	a.AddPin("p", geom.PtMicrons(0, 20), 0)
	c.AddDevice(a)
	b := netlist.NewDevice("B", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	b.AddPin("p", geom.PtMicrons(0, 20), 0)
	c.AddDevice(b)
	// Pin distance horizontally 200 µm; target 280 µm → detour of 80 µm
	// vertically split over the up and down legs (40 each), minus bend
	// compensation 2·(−4) = −8 → geometric must be 288.
	c.Connect("TL", "A", "p", "B", "p", geom.FromMicrons(280))

	fixed := layout.New(c)
	if err := fixed.Place("A", geom.PtMicrons(40, 80), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := fixed.Place("B", geom.PtMicrons(240, 80), geom.R0); err != nil {
		t.Fatal(err)
	}
	// Warm route with the desired topology (up, right, down), not yet the
	// right length.
	if err := fixed.Route("TL",
		geom.PtMicrons(40, 100), geom.PtMicrons(40, 120),
		geom.PtMicrons(240, 120), geom.PtMicrons(240, 100)); err != nil {
		t.Fatal(err)
	}

	m, err := Build(c, Config{
		FreeDevices:        []string{},
		Fixed:              fixed,
		DefaultChainPoints: 4,
		FixTopology:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	rs := lay.Routed("TL")
	if rs.Bends() != 2 {
		t.Errorf("bends = %d, want 2", rs.Bends())
	}
	delta := c.Tech.BendCompensation
	if e := geom.AbsCoord(rs.LengthError(delta)); e > 10 {
		t.Errorf("length error = %d nm", e)
	}
	if vs := lay.Check(layout.CheckOptions{PinTolerance: 2}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestFreePadLandsOnBoundary(t *testing.T) {
	// One fixed device in the middle, one free pad, one strip of exactly the
	// length from the device pin to the best boundary position. The pad must
	// end on the layout boundary (Eq. 15).
	c := netlist.NewCircuit("padtest", tech.Default90nm(), geom.FromMicrons(200), geom.FromMicrons(160))
	d := netlist.NewDevice("M", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	d.AddPin("in", geom.PtMicrons(-20, 0), 0)
	c.AddDevice(d)
	c.AddDevice(netlist.NewPad("P", c.Tech.PadSize))
	c.Connect("TL", "P", "p", "M", "in", geom.FromMicrons(80))

	fixed := layout.New(c)
	if err := fixed.Place("M", geom.PtMicrons(100, 80), geom.R0); err != nil {
		t.Fatal(err)
	}
	m, err := Build(c, Config{
		FreeDevices:        []string{"P"},
		Fixed:              fixed,
		DefaultChainPoints: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("status = %v", res.Status)
	}
	pad := lay.Placed("P")
	onBoundary := pad.Center.X == 0 || pad.Center.X == c.AreaWidth ||
		pad.Center.Y == 0 || pad.Center.Y == c.AreaHeight
	if !onBoundary {
		t.Errorf("pad centre %v is not on the boundary", pad.Center)
	}
	rs := lay.Routed("TL")
	if e := geom.AbsCoord(rs.LengthError(c.Tech.BendCompensation)); e > 10 {
		t.Errorf("length error = %d nm", e)
	}
}

func TestConfigValidation(t *testing.T) {
	c := twoBlockCircuit(180)
	if _, err := Build(c, Config{FreeDevices: []string{"A"}}); err == nil {
		t.Error("missing Fixed layout accepted")
	}
	if _, err := Build(c, Config{ChainPoints: map[string]int{"nope": 4}}); err == nil {
		t.Error("unknown strip in ChainPoints accepted")
	}
	if _, err := Build(c, Config{Orientations: map[string]geom.Orientation{"nope": geom.R90}}); err == nil {
		t.Error("unknown device in Orientations accepted")
	}
	fixed := layout.New(c)
	if _, err := Build(c, Config{FreeDevices: []string{"A", "ZZ"}, Fixed: fixed}); err == nil {
		t.Error("unknown free device accepted")
	}
	if _, err := Build(c, Config{FreeStrips: []string{"ZZ"}, Fixed: fixed}); err == nil {
		t.Error("unknown free strip accepted")
	}
	// Fixed devices without placements must be rejected at build time.
	if _, err := Build(c, Config{FreeDevices: []string{}, Fixed: layout.New(c)}); err == nil {
		t.Error("missing fixed placement accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if cfg.chainPoints("any") != 4 {
		t.Errorf("default chain points = %d", cfg.chainPoints("any"))
	}
	cfg.DefaultChainPoints = 5
	if cfg.chainPoints("any") != 5 {
		t.Error("DefaultChainPoints not honoured")
	}
	cfg.ChainPoints = map[string]int{"x": 3}
	if cfg.chainPoints("x") != 3 {
		t.Error("per-strip chain points not honoured")
	}
	if cfg.orientation("any") != geom.R0 {
		t.Error("default orientation should be R0")
	}
	if cfg.weights() != DefaultWeights() {
		t.Error("zero weights should map to defaults")
	}
	w := Weights{Alpha: 1, Beta: 2, Gamma: 3, Zeta: 4, Eta: 5}
	cfg.Weights = w
	if cfg.weights() != w {
		t.Error("explicit weights overridden")
	}
}

func TestWarmDirections(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 0), geom.Pt(10, 20),
	}
	dirs := warmDirections(pts)
	want := []geom.Direction{geom.Right, geom.Right, geom.Up}
	for i := range want {
		if dirs[i] != want[i] {
			t.Errorf("dir %d = %v, want %v", i, dirs[i], want[i])
		}
	}
	// All-zero-length path falls back to a default without panicking.
	dirs = warmDirections([]geom.Point{geom.Pt(5, 5), geom.Pt(5, 5)})
	if len(dirs) != 1 {
		t.Errorf("dirs = %v", dirs)
	}
}

func TestModelStats(t *testing.T) {
	c := twoBlockCircuit(180)
	fixed := fixedTwoBlockLayout(t, c)
	m, err := Build(c, Config{FreeDevices: []string{}, Fixed: fixed, DefaultChainPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats() == "" {
		t.Error("empty stats")
	}
	if m.MILP.NumVars() == 0 || m.MILP.NumConstraints() == 0 {
		t.Error("model appears empty")
	}
}
