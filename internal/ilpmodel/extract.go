package ilpmodel

import (
	"context"
	"fmt"
	"math"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/milp"
)

// ExtractLayout converts a solution vector of the MILP into a concrete
// layout: device centres and orientations, and the chain-point routes of all
// free microstrips (fixed objects keep their positions from the Fixed
// layout). Coordinates are rounded to integer nanometres; routes are rebuilt
// from the solved segment directions and lengths so that they stay exactly
// axis-parallel and anchored on their pins after rounding.
func (m *Model) ExtractLayout(x []float64) (*layout.Layout, error) {
	if x == nil {
		return nil, fmt.Errorf("ilpmodel: cannot extract a layout from an empty solution")
	}
	l := layout.New(m.Circuit)

	for name, dv := range m.devices {
		var center geom.Point
		if dv.free {
			center = geom.Pt(roundUm(x[dv.x]), roundUm(x[dv.y]))
			if dv.isPad {
				center = m.snapPadToBoundary(center)
			}
		} else {
			center = dv.fixedCenter
		}
		if err := l.Place(name, center, dv.orient); err != nil {
			return nil, err
		}
	}

	for name, sv := range m.strips {
		var pts []geom.Point
		if sv.free {
			var err error
			pts, err = m.reconstructPath(l, sv, x)
			if err != nil {
				return nil, err
			}
		} else {
			pts = append([]geom.Point(nil), sv.fixedPts...)
		}
		if err := l.Route(name, pts...); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// reconstructPath rebuilds a free strip's chain points from the solved
// segment directions and lengths, anchored exactly on its start terminal and
// with the rounding residual absorbed into the last legs of each axis.
func (m *Model) reconstructPath(l *layout.Layout, sv *stripVars, x []float64) ([]geom.Point, error) {
	start, err := m.terminalPoint(l, sv, true)
	if err != nil {
		return nil, err
	}
	goal, err := m.terminalPoint(l, sv, false)
	if err != nil {
		return nil, err
	}

	segs := sv.n - 1
	dirs := make([]geom.Direction, segs)
	lens := make([]geom.Coord, segs)
	for j := 0; j < segs; j++ {
		dirs[j] = m.segmentDirection(sv, x, j)
		lens[j] = roundUm(x[sv.segLen[j]])
	}

	// Signed axis displacement of the solved route.
	var dx, dy geom.Coord
	for j := 0; j < segs; j++ {
		d := dirs[j].Delta()
		dx += d.X * lens[j]
		dy += d.Y * lens[j]
	}
	// Distribute the rounding residual onto the last segment of each axis.
	residX := (goal.X - start.X) - dx
	residY := (goal.Y - start.Y) - dy
	for j := segs - 1; j >= 0 && residX != 0; j-- {
		if dirs[j].Horizontal() {
			lens[j] += residX * geom.Coord(dirs[j].Delta().X)
			if lens[j] < 0 {
				lens[j] = 0
			}
			residX = 0
		}
	}
	for j := segs - 1; j >= 0 && residY != 0; j-- {
		if dirs[j].Vertical() {
			lens[j] += residY * geom.Coord(dirs[j].Delta().Y)
			if lens[j] < 0 {
				lens[j] = 0
			}
			residY = 0
		}
	}

	pts := make([]geom.Point, sv.n)
	pts[0] = start
	for j := 0; j < segs; j++ {
		d := dirs[j].Delta()
		pts[j+1] = pts[j].Add(geom.Pt(d.X*lens[j], d.Y*lens[j]))
	}
	return pts, nil
}

// terminalPoint returns the exact nanometre point a strip end must attach to:
// the device pin, or the device centre in blurred mode.
func (m *Model) terminalPoint(l *layout.Layout, sv *stripVars, from bool) (geom.Point, error) {
	term := sv.ms.From
	if !from {
		term = sv.ms.To
	}
	pd := l.Placed(term.Device)
	if pd == nil {
		return geom.Point{}, fmt.Errorf("ilpmodel: device %q not placed during extraction", term.Device)
	}
	if m.Config.Blurred {
		return pd.Center, nil
	}
	return pd.PinPosition(term.Pin)
}

// segmentDirection reads the direction of segment j of a free strip from the
// solution vector.
func (m *Model) segmentDirection(sv *stripVars, x []float64, j int) geom.Direction {
	if sv.topologyFixed {
		return sv.fixedDirs[j]
	}
	best := geom.Right
	bestVal := -1.0
	for _, d := range geom.Directions {
		if v := x[sv.dirs[j][d]]; v > bestVal {
			bestVal = v
			best = d
		}
	}
	return best
}

// SolveAndExtract solves the model and extracts the incumbent layout when one
// exists.
func (m *Model) SolveAndExtract(opts milp.SolveOptions) (*layout.Layout, *milp.Result, error) {
	return m.SolveAndExtractCtx(context.Background(), opts)
}

// SolveAndExtractCtx is SolveAndExtract under a context: cancellation stops
// the branch and bound and extracts whatever incumbent exists at that point.
func (m *Model) SolveAndExtractCtx(ctx context.Context, opts milp.SolveOptions) (*layout.Layout, *milp.Result, error) {
	res, err := m.SolveCtx(ctx, opts)
	if err != nil {
		return nil, nil, err
	}
	if !res.Status.HasSolution() {
		return nil, res, nil
	}
	l, err := m.ExtractLayout(res.X)
	if err != nil {
		return nil, res, err
	}
	return l, res, nil
}

// Bends returns the bend count of strip name in the given solution vector.
func (m *Model) Bends(x []float64, strip string) (int, error) {
	sv, ok := m.strips[strip]
	if !ok {
		return 0, fmt.Errorf("ilpmodel: unknown microstrip %q", strip)
	}
	return int(math.Round(sv.nbExpr.Eval(x))), nil
}

// TotalBends returns the total bend count encoded in the solution vector.
func (m *Model) TotalBends(x []float64) int {
	total := 0.0
	for _, sv := range m.strips {
		total += sv.nbExpr.Eval(x)
	}
	return int(math.Round(total))
}

// UnmatchedLength returns the modeled |target − equivalent length| of a strip
// in µm (zero for fixed strips, whose geometry is constant).
func (m *Model) UnmatchedLength(x []float64, strip string) (float64, error) {
	sv, ok := m.strips[strip]
	if !ok {
		return 0, fmt.Errorf("ilpmodel: unknown microstrip %q", strip)
	}
	if !sv.free || sv.lengthExpr == nil {
		return 0, nil
	}
	return math.Abs(sv.lengthExpr.Eval(x) - sv.target), nil
}

// snapPadToBoundary clamps a pad centre onto the nearest boundary edge,
// removing any residual solver tolerance from the Eq. 15 big-M constraints.
func (m *Model) snapPadToBoundary(c geom.Point) geom.Point {
	W, H := m.Circuit.AreaWidth, m.Circuit.AreaHeight
	dLeft := geom.AbsCoord(c.X)
	dRight := geom.AbsCoord(W - c.X)
	dBottom := geom.AbsCoord(c.Y)
	dTop := geom.AbsCoord(H - c.Y)
	minD := geom.MinCoord(geom.MinCoord(dLeft, dRight), geom.MinCoord(dBottom, dTop))
	switch minD {
	case dLeft:
		return geom.Pt(0, geom.ClampCoord(c.Y, 0, H))
	case dRight:
		return geom.Pt(W, geom.ClampCoord(c.Y, 0, H))
	case dBottom:
		return geom.Pt(geom.ClampCoord(c.X, 0, W), 0)
	default:
		return geom.Pt(geom.ClampCoord(c.X, 0, W), H)
	}
}

func roundUm(um float64) geom.Coord {
	return geom.Coord(math.Round(um * 1000))
}
