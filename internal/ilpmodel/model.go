package ilpmodel

import (
	"context"
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
)

// Model is the built MILP for one layout (sub)problem together with the
// bookkeeping needed to extract a layout from a solution vector. All model
// coordinates are micrometres (float64); extraction rounds to nanometres.
type Model struct {
	Circuit *netlist.Circuit
	Config  Config
	MILP    *milp.Model

	areaW, areaH float64 // layout area in µm
	bigM         float64
	clearance    float64 // spacing/2 in µm
	delta        float64 // bend compensation δ in µm

	devices map[string]*deviceVars
	strips  map[string]*stripVars

	nbMax milp.Var // envelope of per-strip bend counts
	luMax milp.Var // envelope of per-strip unmatched lengths (soft mode)

	overlapPairs int // number of non-overlap pairs actually constrained
}

// deviceVars holds per-device variables or fixed values.
type deviceVars struct {
	dev    *netlist.Device
	free   bool
	orient geom.Orientation

	x, y milp.Var // centre coordinates (free devices)

	fixedCenter geom.Point // used when !free

	// Pad boundary selection binaries (free pads only, Eq. 15):
	// ck chooses vertical (x pinned) vs horizontal (y pinned) boundary,
	// bx/by choose which of the two boundaries of that kind.
	ck, bx, by milp.Var
	isPad      bool
}

// stripVars holds per-microstrip variables or fixed values.
type stripVars struct {
	ms    *netlist.Microstrip
	free  bool
	n     int     // number of chain points
	width float64 // strip width in µm

	x, y []milp.Var // chain point coordinates (free strips)

	fixedPts []geom.Point // used when !free

	topologyFixed bool
	fixedDirs     []geom.Direction // per segment, when topologyFixed
	fixedBends    int              // constant bend count when topologyFixed

	dirs   [][4]milp.Var // per segment: Up, Down, Left, Right (free topology)
	segLen []milp.Var    // per segment length
	bendT  []milp.Var    // t_{i,j} per interior chain point (free topology)

	lu milp.Var // unmatched length bound (soft mode)

	target     float64 // adjusted target length in µm (Eq. 23 in blurred mode)
	nbExpr     *milp.Expr
	lengthExpr *milp.Expr
}

// Build constructs the MILP for the circuit under the given configuration.
func Build(ckt *netlist.Circuit, cfg Config) (*Model, error) {
	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(ckt); err != nil {
		return nil, err
	}
	m := &Model{
		Circuit:   ckt,
		Config:    cfg,
		MILP:      milp.NewModel(),
		areaW:     geom.Microns(ckt.AreaWidth),
		areaH:     geom.Microns(ckt.AreaHeight),
		clearance: geom.Microns(ckt.Tech.Clearance()),
		delta:     geom.Microns(ckt.Tech.BendCompensation),
		devices:   map[string]*deviceVars{},
		strips:    map[string]*stripVars{},
	}
	m.bigM = m.areaW + m.areaH + 200

	if err := m.buildDevices(); err != nil {
		return nil, err
	}
	if err := m.buildStrips(); err != nil {
		return nil, err
	}
	if err := m.buildConnections(); err != nil {
		return nil, err
	}
	if err := m.buildOverlap(); err != nil {
		return nil, err
	}
	m.buildObjective()
	return m, nil
}

// Stats describes the built model size.
func (m *Model) Stats() string {
	return fmt.Sprintf("%s; %d non-overlap pairs", m.MILP.Stats(), m.overlapPairs)
}

// buildDevices creates placement variables for free devices and records
// fixed positions for the rest. In blurred mode device bodies are not
// modeled, but their centres still exist because microstrips connect to them.
func (m *Model) buildDevices() error {
	for _, d := range m.Circuit.Devices {
		dv := &deviceVars{
			dev:    d,
			orient: m.Config.orientation(d.Name),
			isPad:  d.IsPad(),
			free:   m.Config.deviceFree(d.Name),
		}
		if !dv.free {
			pd := m.Config.Fixed.Placed(d.Name)
			if pd == nil {
				return fmt.Errorf("ilpmodel: device %q is fixed but has no placement in the Fixed layout", d.Name)
			}
			dv.fixedCenter = pd.Center
			dv.orient = pd.Orient
			m.devices[d.Name] = dv
			continue
		}

		w, h := d.Dimensions(dv.orient)
		halfW := geom.Microns(w) / 2
		halfH := geom.Microns(h) / 2
		loX, hiX := halfW, m.areaW-halfW
		loY, hiY := halfH, m.areaH-halfH
		if d.IsPad() || m.Config.Blurred {
			// Pad centres sit on the boundary; blurred devices may float
			// anywhere since their bodies are not modeled.
			loX, hiX = 0, m.areaW
			loY, hiY = 0, m.areaH
		}
		if m.Config.Confinement > 0 {
			if pd := m.Config.Fixed.Placed(d.Name); pd != nil {
				tau := geom.Microns(m.Config.Confinement)
				cx, cy := geom.Microns(pd.Center.X), geom.Microns(pd.Center.Y)
				loX, hiX = maxf(loX, cx-tau), minf(hiX, cx+tau)
				loY, hiY = maxf(loY, cy-tau), minf(hiY, cy+tau)
				dv.orient = pd.Orient
				if o, ok := m.Config.Orientations[d.Name]; ok {
					dv.orient = o.Normalize()
				}
			}
		}
		if loX > hiX || loY > hiY {
			return fmt.Errorf("ilpmodel: device %q has an empty feasible window", d.Name)
		}
		dv.x = m.MILP.AddContinuous("dev."+d.Name+".x", loX, hiX)
		dv.y = m.MILP.AddContinuous("dev."+d.Name+".y", loY, hiY)

		if d.IsPad() {
			// Eq. 15: the pad centre lies on one of the four boundary edges.
			dv.ck = m.MILP.AddBinary("pad." + d.Name + ".ck")
			dv.bx = m.MILP.AddBinary("pad." + d.Name + ".bx")
			dv.by = m.MILP.AddBinary("pad." + d.Name + ".by")
			// ck = 1 → x = W·bx ; ck = 0 → y = H·by.
			x := milp.Term(dv.x, 1).Add(dv.bx, -m.areaW)
			m.MILP.AddImpliedLE("pad."+d.Name+".xhi", dv.ck, x.Clone(), 0, m.bigM)
			m.MILP.AddImpliedGE("pad."+d.Name+".xlo", dv.ck, x, 0, m.bigM)
			y := milp.Term(dv.y, 1).Add(dv.by, -m.areaH)
			negCk := m.MILP.AddBinary("pad." + d.Name + ".nck")
			m.MILP.AddEQ("pad."+d.Name+".ckneg", milp.Term(dv.ck, 1).Add(negCk, 1), 1)
			m.MILP.AddImpliedLE("pad."+d.Name+".yhi", negCk, y.Clone(), 0, m.bigM)
			m.MILP.AddImpliedGE("pad."+d.Name+".ylo", negCk, y, 0, m.bigM)
		}
		m.devices[d.Name] = dv
	}
	return nil
}

// centerExpr returns linear expressions for the device centre coordinates
// (variables or constants).
func (m *Model) centerExpr(dv *deviceVars) (x, y *milp.Expr) {
	if dv.free {
		return milp.Term(dv.x, 1), milp.Term(dv.y, 1)
	}
	return milp.Constant(geom.Microns(dv.fixedCenter.X)), milp.Constant(geom.Microns(dv.fixedCenter.Y))
}

// pinExpr returns linear expressions for the absolute position of a device
// pin, honouring the device orientation.
func (m *Model) pinExpr(dv *deviceVars, pin string) (x, y *milp.Expr, err error) {
	off, err := dv.dev.PinOffset(pin, dv.orient)
	if err != nil {
		return nil, nil, err
	}
	cx, cy := m.centerExpr(dv)
	return cx.AddConst(geom.Microns(off.X)), cy.AddConst(geom.Microns(off.Y)), nil
}

// buildObjective assembles Eq. 21 (hard-length form) or Eq. 26 (progressive
// form with unmatched-length and overlap penalties added by the other build
// steps).
func (m *Model) buildObjective() {
	// Iterate strips in circuit declaration order, never map order: the
	// envelope-constraint order shapes the simplex pivot sequence, and on a
	// degenerate optimum a different pivot sequence lands on a different
	// vertex — the model must be a pure function of the circuit and config
	// for the flow's determinism contract (and the result cache) to hold.
	w := m.Config.weights()
	var nbExprs []*milp.Expr
	for _, ms := range m.Circuit.Microstrips {
		sv := m.strips[ms.Name]
		nbExprs = append(nbExprs, sv.nbExpr)
		// β · Σ n_b,i
		m.MILP.AddObjectiveExpr(sv.nbExpr, w.Beta)
	}
	m.nbMax = m.MILP.MaxEnvelope("nb.max", 1e6, nbExprs...)
	m.MILP.SetObjectiveCoef(m.nbMax, w.Alpha)

	if m.Config.SoftLength {
		var luExprs []*milp.Expr
		for _, ms := range m.Circuit.Microstrips {
			sv := m.strips[ms.Name]
			if sv.free {
				luExprs = append(luExprs, milp.Term(sv.lu, 1))
				m.MILP.AddObjectiveCoef(sv.lu, w.Zeta)
			}
		}
		if len(luExprs) > 0 {
			m.luMax = m.MILP.MaxEnvelope("lu.max", 1e9, luExprs...)
			m.MILP.SetObjectiveCoef(m.luMax, w.Gamma)
		}
	}
}

// Solve runs branch and bound on the model.
func (m *Model) Solve(opts milp.SolveOptions) (*milp.Result, error) {
	return m.MILP.Solve(opts)
}

// SolveCtx runs branch and bound on the model under a context; cancellation
// stops the search and returns the incumbent found so far, if any.
func (m *Model) SolveCtx(ctx context.Context, opts milp.SolveOptions) (*milp.Result, error) {
	return m.MILP.SolveCtx(ctx, opts)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
