package ilpmodel

import "rficlayout/internal/netlist"

// SubSpec names one cluster's share of a sharded solve: the devices and
// strips the sub-model may move, and the subset of strips whose far terminal
// is frozen in another cluster. internal/partition produces these specs and
// internal/pilp solves one sub-model per cluster concurrently, coordinating
// the boundaries between rounds.
type SubSpec struct {
	// FreeDevices are the cluster's movable devices.
	FreeDevices []string
	// FreeStrips are the strips the cluster owns; every other strip stays
	// frozen at its position in the Fixed layout.
	FreeStrips []string
	// BoundaryStrips is the subset of FreeStrips whose far terminal device
	// belongs to another cluster. That terminal is pinned to the snapshot and
	// bound through a penalized slack so the shard stays feasible.
	BoundaryStrips []string
}

// SubConfig restricts a full-model configuration to one cluster: only the
// spec's devices and strips stay free (empty slices mean "none", unlike the
// nil-means-all convention of Config), and the boundary strips get penalized
// terminal slack. Everything else — warm layout, soft lengths, confinement,
// pair pruning — carries over from the base configuration unchanged.
func SubConfig(base Config, spec SubSpec) Config {
	cfg := base
	cfg.FreeDevices = nonNilNames(spec.FreeDevices)
	cfg.FreeStrips = nonNilNames(spec.FreeStrips)
	cfg.BoundarySlack = spec.BoundaryStrips
	return cfg
}

// BuildSub builds the cluster-local MILP of one shard. Objects outside the
// spec enter the model as constants (their mutual non-overlap pairs are
// dropped entirely), so the sub-model's size tracks the cluster, not the
// circuit.
func BuildSub(ckt *netlist.Circuit, base Config, spec SubSpec) (*Model, error) {
	return Build(ckt, SubConfig(base, spec))
}

func nonNilNames(names []string) []string {
	if names == nil {
		return []string{}
	}
	return names
}
