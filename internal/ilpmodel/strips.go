package ilpmodel

import (
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
)

// buildStrips creates the chain-point, direction, length and bend variables
// of every microstrip (Sections 4.1 and 4.2).
func (m *Model) buildStrips() error {
	for _, ms := range m.Circuit.Microstrips {
		sv := &stripVars{
			ms:    ms,
			free:  m.Config.stripFree(ms.Name),
			width: geom.Microns(m.Circuit.Tech.StripWidth(ms.Width)),
		}
		sv.target = geom.Microns(ms.TargetLength)
		if m.Config.Blurred {
			// Eq. 23: the blurred strip absorbs the centre-to-pin runs of its
			// two terminal devices.
			sv.target += m.pinReach(ms.From) + m.pinReach(ms.To)
		}

		if !sv.free {
			rs := m.Config.Fixed.Routed(ms.Name)
			if rs == nil {
				return fmt.Errorf("ilpmodel: microstrip %q is fixed but has no route in the Fixed layout", ms.Name)
			}
			sv.fixedPts = rs.Path.Points
			sv.n = len(sv.fixedPts)
			sv.fixedBends = rs.Path.Bends()
			sv.nbExpr = milp.Constant(float64(sv.fixedBends))
			m.strips[ms.Name] = sv
			continue
		}

		sv.n = m.Config.chainPoints(ms.Name)
		if err := m.buildFreeStrip(sv); err != nil {
			return err
		}
		m.strips[ms.Name] = sv
	}
	return nil
}

// pinReach returns the centre-to-pin Manhattan distance of a terminal's
// device, which is the length increase L_s/L_e a blurred strip absorbs
// (Figure 8). Unknown devices or pins contribute zero; the circuit has been
// validated beforehand, so that only happens in malformed test fixtures.
func (m *Model) pinReach(t netlist.Terminal) float64 {
	d, err := m.Circuit.Device(t.Device)
	if err != nil {
		return 0
	}
	pin, err := d.Pin(t.Pin)
	if err != nil {
		return 0
	}
	return geom.Microns(geom.AbsCoord(pin.Offset.X) + geom.AbsCoord(pin.Offset.Y))
}

// buildFreeStrip creates the variables and constraints of one microstrip
// whose geometry the solver may change.
func (m *Model) buildFreeStrip(sv *stripVars) error {
	mdl := m.MILP
	name := sv.ms.Name
	n := sv.n
	segs := n - 1

	// Chain point coordinates, optionally confined around the warm start.
	sv.x = make([]milp.Var, n)
	sv.y = make([]milp.Var, n)
	var warm []geom.Point
	if m.Config.Fixed != nil {
		if rs := m.Config.Fixed.Routed(name); rs != nil {
			warm = rs.Path.Points
		}
	}
	for j := 0; j < n; j++ {
		loX, hiX := 0.0, m.areaW
		loY, hiY := 0.0, m.areaH
		if m.Config.Confinement > 0 && len(warm) == n {
			tau := geom.Microns(m.Config.Confinement)
			wx, wy := geom.Microns(warm[j].X), geom.Microns(warm[j].Y)
			loX, hiX = maxf(loX, wx-tau), minf(hiX, wx+tau)
			loY, hiY = maxf(loY, wy-tau), minf(hiY, wy+tau)
			if loX > hiX || loY > hiY {
				return fmt.Errorf("ilpmodel: chain point %d of %q has an empty confinement window", j, name)
			}
		}
		sv.x[j] = mdl.AddContinuous(fmt.Sprintf("cp.%s.%d.x", name, j), loX, hiX)
		sv.y[j] = mdl.AddContinuous(fmt.Sprintf("cp.%s.%d.y", name, j), loY, hiY)
	}

	// Topology handling.
	sv.topologyFixed = m.Config.FixTopology
	if sv.topologyFixed {
		if len(warm) != n {
			return fmt.Errorf("ilpmodel: FixTopology needs a warm route with %d points for %q, got %d", n, name, len(warm))
		}
		sv.fixedDirs = warmDirections(warm)
		sv.fixedBends = geom.Polyline{Points: warm, Width: 1}.Bends()
	}

	// Per-segment length variables. Each segment contributes four
	// non-negative movement components (right, left, up, down); the direction
	// selection forces all but one of them to zero, which is an equivalent
	// linearization of Eq. 6.
	sv.segLen = make([]milp.Var, segs)
	if !sv.topologyFixed {
		sv.dirs = make([][4]milp.Var, segs)
	}
	maxLen := m.areaW + m.areaH
	for j := 0; j < segs; j++ {
		dxp := mdl.AddContinuous(fmt.Sprintf("seg.%s.%d.dxp", name, j), 0, m.areaW)
		dxn := mdl.AddContinuous(fmt.Sprintf("seg.%s.%d.dxn", name, j), 0, m.areaW)
		dyp := mdl.AddContinuous(fmt.Sprintf("seg.%s.%d.dyp", name, j), 0, m.areaH)
		dyn := mdl.AddContinuous(fmt.Sprintf("seg.%s.%d.dyn", name, j), 0, m.areaH)

		// Coordinate propagation along the strip.
		mdl.AddEQ(fmt.Sprintf("seg.%s.%d.dx", name, j),
			milp.Term(sv.x[j+1], 1).Sub(sv.x[j], 1).Add(dxp, -1).Add(dxn, 1), 0)
		mdl.AddEQ(fmt.Sprintf("seg.%s.%d.dy", name, j),
			milp.Term(sv.y[j+1], 1).Sub(sv.y[j], 1).Add(dyp, -1).Add(dyn, 1), 0)

		if sv.topologyFixed {
			// Only the component along the fixed direction may be non-zero.
			allowed := sv.fixedDirs[j]
			for dir, v := range map[geom.Direction]milp.Var{
				geom.Right: dxp, geom.Left: dxn, geom.Up: dyp, geom.Down: dyn,
			} {
				if dir != allowed {
					mdl.SetBounds(v, 0, 0)
				}
			}
		} else {
			// Direction selection binaries s^u, s^d, s^l, s^r (Eq. 1) with
			// movement components tied to them.
			var s [4]milp.Var
			s[geom.Up] = mdl.AddBinary(fmt.Sprintf("dir.%s.%d.up", name, j))
			s[geom.Down] = mdl.AddBinary(fmt.Sprintf("dir.%s.%d.down", name, j))
			s[geom.Left] = mdl.AddBinary(fmt.Sprintf("dir.%s.%d.left", name, j))
			s[geom.Right] = mdl.AddBinary(fmt.Sprintf("dir.%s.%d.right", name, j))
			sv.dirs[j] = s
			mdl.AddEQ(fmt.Sprintf("dir.%s.%d.one", name, j),
				milp.Term(s[geom.Up], 1).Add(s[geom.Down], 1).Add(s[geom.Left], 1).Add(s[geom.Right], 1), 1)
			// Movement only along the selected direction.
			mdl.AddLE(fmt.Sprintf("dir.%s.%d.dxp", name, j), milp.Term(dxp, 1).Add(s[geom.Right], -m.areaW), 0)
			mdl.AddLE(fmt.Sprintf("dir.%s.%d.dxn", name, j), milp.Term(dxn, 1).Add(s[geom.Left], -m.areaW), 0)
			mdl.AddLE(fmt.Sprintf("dir.%s.%d.dyp", name, j), milp.Term(dyp, 1).Add(s[geom.Up], -m.areaH), 0)
			mdl.AddLE(fmt.Sprintf("dir.%s.%d.dyn", name, j), milp.Term(dyn, 1).Add(s[geom.Down], -m.areaH), 0)
			if j > 0 {
				// Eq. 2–5: the next segment must not reverse the previous one.
				prev := sv.dirs[j-1]
				for _, pair := range [][2]geom.Direction{
					{geom.Up, geom.Down}, {geom.Down, geom.Up}, {geom.Left, geom.Right}, {geom.Right, geom.Left},
				} {
					mdl.AddLE(fmt.Sprintf("dir.%s.%d.norev.%v", name, j, pair[0]),
						milp.Term(prev[pair[0]], 1).Add(s[pair[1]], 1), 1)
				}
			}
		}

		sv.segLen[j] = mdl.AddContinuous(fmt.Sprintf("seg.%s.%d.len", name, j), 0, maxLen)
		mdl.AddEQ(fmt.Sprintf("seg.%s.%d.lendef", name, j),
			milp.Term(sv.segLen[j], 1).Add(dxp, -1).Add(dxn, -1).Add(dyp, -1).Add(dyn, -1), 0)
	}

	// Bend detection (Eq. 8–11).
	sv.nbExpr = milp.NewExpr()
	if sv.topologyFixed {
		sv.nbExpr.AddConst(float64(sv.fixedBends))
	} else {
		sv.bendT = make([]milp.Var, 0, segs-1)
		for j := 1; j < segs; j++ {
			prev := sv.dirs[j-1]
			cur := sv.dirs[j]
			thv := mdl.AddBinary(fmt.Sprintf("bend.%s.%d.thv", name, j))
			uhv := mdl.AddBinary(fmt.Sprintf("bend.%s.%d.uhv", name, j))
			tvh := mdl.AddBinary(fmt.Sprintf("bend.%s.%d.tvh", name, j))
			uvh := mdl.AddBinary(fmt.Sprintf("bend.%s.%d.uvh", name, j))
			t := mdl.AddBinary(fmt.Sprintf("bend.%s.%d.t", name, j))
			// Eq. 8: horizontal → vertical bend.
			mdl.AddEQ(fmt.Sprintf("bend.%s.%d.hv", name, j),
				milp.Term(prev[geom.Right], 1).Add(prev[geom.Left], 1).
					Add(cur[geom.Up], 1).Add(cur[geom.Down], 1).
					Add(thv, -2).Add(uhv, -1), 0)
			// Eq. 9: vertical → horizontal bend.
			mdl.AddEQ(fmt.Sprintf("bend.%s.%d.vh", name, j),
				milp.Term(prev[geom.Up], 1).Add(prev[geom.Down], 1).
					Add(cur[geom.Right], 1).Add(cur[geom.Left], 1).
					Add(tvh, -2).Add(uvh, -1), 0)
			// Eq. 10: t = t_hv + t_vh (≤ 1 via binariness of t).
			mdl.AddEQ(fmt.Sprintf("bend.%s.%d.sum", name, j),
				milp.Term(t, 1).Add(thv, -1).Add(tvh, -1), 0)
			sv.bendT = append(sv.bendT, t)
			sv.nbExpr.Add(t, 1)
		}
	}

	// Length accounting (Eq. 7 and 12).
	sv.lengthExpr = milp.NewExpr()
	for j := 0; j < segs; j++ {
		sv.lengthExpr.Add(sv.segLen[j], 1)
	}
	sv.lengthExpr.AddExpr(sv.nbExpr, m.delta)

	if m.Config.SoftLength {
		// Eq. 24: lu ≥ |target − leq|.
		diff := sv.lengthExpr.Clone().AddConst(-sv.target)
		sv.lu = mdl.AbsEnvelope(fmt.Sprintf("lu.%s", name), diff, m.areaW+m.areaH)
	} else {
		// Eq. 13: exact equivalent length.
		mdl.AddEQ(fmt.Sprintf("len.%s.exact", name), sv.lengthExpr.Clone(), sv.target)
	}
	return nil
}

// warmDirections maps an n-point warm route to n−1 segment directions,
// inheriting the previous (or next) direction across zero-length legs.
func warmDirections(pts []geom.Point) []geom.Direction {
	segs := len(pts) - 1
	dirs := make([]geom.Direction, segs)
	known := make([]bool, segs)
	for j := 0; j < segs; j++ {
		if d, ok := geom.DirectionBetween(pts[j], pts[j+1]); ok {
			dirs[j] = d
			known[j] = true
		}
	}
	// Forward fill then backward fill for zero-length legs.
	last := geom.Right
	haveLast := false
	for j := 0; j < segs; j++ {
		if known[j] {
			last = dirs[j]
			haveLast = true
		} else if haveLast {
			dirs[j] = last
			known[j] = true
		}
	}
	next := geom.Right
	haveNext := false
	for j := segs - 1; j >= 0; j-- {
		if known[j] {
			next = dirs[j]
			haveNext = true
		} else if haveNext {
			dirs[j] = next
			known[j] = true
		} else {
			dirs[j] = geom.Right
		}
	}
	return dirs
}

// buildConnections binds route endpoints to device pins (Eq. 14) or, in
// blurred mode, to device centres.
func (m *Model) buildConnections() error {
	// Declaration order, not map order: constraint order must be a pure
	// function of the circuit (see buildObjective).
	for _, ms := range m.Circuit.Microstrips {
		sv := m.strips[ms.Name]
		if !sv.free {
			continue
		}
		type end struct {
			device string
			pin    string
			index  int
		}
		for _, e := range []end{
			{sv.ms.From.Device, sv.ms.From.Pin, 0},
			{sv.ms.To.Device, sv.ms.To.Pin, sv.n - 1},
		} {
			dv := m.devices[e.device]
			if dv == nil {
				return fmt.Errorf("ilpmodel: microstrip %q references unknown device %q", sv.ms.Name, e.device)
			}
			var px, py *milp.Expr
			var err error
			if m.Config.Blurred {
				px, py = m.centerExpr(dv)
			} else {
				px, py, err = m.pinExpr(dv, e.pin)
				if err != nil {
					return err
				}
			}
			cname := fmt.Sprintf("pin.%s.%d", sv.ms.Name, e.index)
			if m.Config.boundarySlack(sv.ms.Name) && !dv.free {
				// Frozen boundary terminal of a sharded sub-model: the chain
				// point may drift off the pin by a penalized slack per axis,
				// which keeps the shard feasible when the fixed topology
				// cannot absorb the local cluster's movement exactly.
				w := m.Config.weights()
				sx := m.MILP.AbsEnvelope(cname+".sx", milp.Term(sv.x[e.index], 1).AddExpr(px, -1), m.areaW+m.areaH)
				sy := m.MILP.AbsEnvelope(cname+".sy", milp.Term(sv.y[e.index], 1).AddExpr(py, -1), m.areaW+m.areaH)
				m.MILP.AddObjectiveCoef(sx, w.Theta)
				m.MILP.AddObjectiveCoef(sy, w.Theta)
				continue
			}
			m.MILP.AddEQ(cname+".x", milp.Term(sv.x[e.index], 1).AddExpr(px, -1), 0)
			m.MILP.AddEQ(cname+".y", milp.Term(sv.y[e.index], 1).AddExpr(py, -1), 0)
		}
	}
	return nil
}
