package ilpmodel

import (
	"fmt"

	"rficlayout/internal/geom"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
)

// box is one rectangle participating in the non-overlap constraints of
// Eq. 16–20. Its four expanded edges are linear expressions over model
// variables (constants for fixed objects).
type box struct {
	name  string // owning object name
	kind  string // "device" or "segment"
	strip string // owning strip for segments
	seg   int    // segment index within the strip, -1 for devices
	terms [2]string
	// endTerms lists the terminals this segment is directly adjacent to;
	// end segments of two strips that meet at the same pin (T-junction) are
	// exempt from the non-overlap constraint between each other.
	endTerms []netlist.Terminal

	xlo, xhi, ylo, yhi *milp.Expr

	warm    geom.Rect // expanded rectangle in the Fixed layout, for pruning
	hasWarm bool
	isConst bool
}

// buildOverlap creates the pairwise non-overlap constraints between all
// device bodies and microstrip segments (Eq. 16–20), honouring the
// exemptions for connected objects, the pair-radius pruning and the optional
// overlap slack of phase 1.
func (m *Model) buildOverlap() error {
	boxes, err := m.collectBoxes()
	if err != nil {
		return err
	}
	w := m.Config.weights()
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			a, b := boxes[i], boxes[j]
			if a.isConst && b.isConst {
				continue
			}
			if overlapExempt(a, b) {
				continue
			}
			if m.Config.PairRadius > 0 && a.hasWarm && b.hasWarm {
				if a.warm.Distance(b.warm) > m.Config.PairRadius {
					continue
				}
			}
			m.overlapPairs++
			pair := fmt.Sprintf("ovl.%s#%d.%s#%d", a.name, a.seg, b.name, b.seg)
			var slackTerm *milp.Expr
			if m.Config.OverlapSlack {
				s := m.MILP.AddContinuous(pair+".slack", 0, m.areaW+m.areaH)
				m.MILP.AddObjectiveCoef(s, w.Eta)
				slackTerm = milp.Term(s, 1)
			}
			if m.Config.RelativePositions && a.hasWarm && b.hasWarm {
				// Keep only the separation the warm layout already realizes
				// (or comes closest to realizing): no disjunction binaries.
				switch bestSeparation(a.warm, b.warm) {
				case 0:
					m.addHardSeparation(pair+".left", a.xhi, b.xlo, slackTerm)
				case 1:
					m.addHardSeparation(pair+".right", b.xhi, a.xlo, slackTerm)
				case 2:
					m.addHardSeparation(pair+".below", a.yhi, b.ylo, slackTerm)
				default:
					m.addHardSeparation(pair+".above", b.yhi, a.ylo, slackTerm)
				}
				continue
			}
			u := [4]milp.Var{}
			sum := milp.NewExpr()
			for k := 0; k < 4; k++ {
				u[k] = m.MILP.AddBinary(fmt.Sprintf("%s.u%d", pair, k))
				sum.Add(u[k], 1)
			}
			// Eq. 20: at least one separation case must be active.
			m.MILP.AddLE(pair+".pick", sum, 3)
			// Eq. 16–19: the four separation cases, each relaxable by its
			// binary (and by the shared slack in phase 1).
			m.addSeparation(pair+".left", a.xhi, b.xlo, u[0], slackTerm)
			m.addSeparation(pair+".right", b.xhi, a.xlo, u[1], slackTerm)
			m.addSeparation(pair+".below", a.yhi, b.ylo, u[2], slackTerm)
			m.addSeparation(pair+".above", b.yhi, a.ylo, u[3], slackTerm)
		}
	}
	return nil
}

// addSeparation adds "hi ≤ lo + M·u (+ slack)".
func (m *Model) addSeparation(name string, hi, lo *milp.Expr, u milp.Var, slack *milp.Expr) {
	e := hi.Clone().AddExpr(lo, -1).Add(u, -m.bigM)
	if slack != nil {
		e.AddExpr(slack, -1)
	}
	m.MILP.AddLE(name, e, 0)
}

// addHardSeparation adds "hi ≤ lo (+ slack)" with no relaxation binary.
func (m *Model) addHardSeparation(name string, hi, lo *milp.Expr, slack *milp.Expr) {
	e := hi.Clone().AddExpr(lo, -1)
	if slack != nil {
		e.AddExpr(slack, -1)
	}
	m.MILP.AddLE(name, e, 0)
}

// bestSeparation returns which of the four separation cases (0 a-left-of-b,
// 1 b-left-of-a, 2 a-below-b, 3 b-below-a) the two warm rectangles realize
// best, i.e. with the largest (least negative) gap.
func bestSeparation(a, b geom.Rect) int {
	gaps := [4]geom.Coord{
		b.Min.X - a.Max.X, // a left of b
		a.Min.X - b.Max.X, // b left of a
		b.Min.Y - a.Max.Y, // a below b
		a.Min.Y - b.Max.Y, // b below a
	}
	best := 0
	for k := 1; k < 4; k++ {
		if gaps[k] > gaps[best] {
			best = k
		}
	}
	return best
}

// overlapExempt mirrors the DRC exemptions: adjacent segments of the same
// strip, end segments of two strips meeting at the same pin, and a strip's
// segments against the devices it terminates on.
func overlapExempt(a, b box) bool {
	if a.kind == "segment" && b.kind == "segment" && a.strip == b.strip {
		di := a.seg - b.seg
		if di < 0 {
			di = -di
		}
		return di <= 1
	}
	if a.kind == "segment" && b.kind == "segment" {
		for _, ta := range a.endTerms {
			for _, tb := range b.endTerms {
				if ta == tb {
					return true
				}
			}
		}
	}
	if a.kind == "device" && b.kind == "segment" {
		a, b = b, a
	}
	if a.kind == "segment" && b.kind == "device" {
		return a.terms[0] == b.name || a.terms[1] == b.name
	}
	return false
}

// collectBoxes builds the expanded bounding boxes of all devices and
// segments.
func (m *Model) collectBoxes() ([]box, error) {
	var out []box

	// Device bodies. In blurred mode device geometries are excluded
	// (Section 5.1); their space is reserved by the enlarged end-segment
	// boxes instead.
	if !m.Config.Blurred {
		for _, d := range m.Circuit.Devices {
			dv := m.devices[d.Name]
			w, h := d.Dimensions(dv.orient)
			halfW := geom.Microns(w)/2 + m.clearance
			halfH := geom.Microns(h)/2 + m.clearance
			bx := box{name: d.Name, kind: "device", seg: -1}
			if dv.free {
				cx, cy := m.centerExpr(dv)
				bx.xlo = cx.Clone().AddConst(-halfW)
				bx.xhi = cx.Clone().AddConst(halfW)
				bx.ylo = cy.Clone().AddConst(-halfH)
				bx.yhi = cy.Clone().AddConst(halfH)
			} else {
				r := d.BodyRect(dv.fixedCenter, dv.orient).Expand(m.Circuit.Tech.Clearance())
				bx.xlo = milp.Constant(geom.Microns(r.Min.X))
				bx.xhi = milp.Constant(geom.Microns(r.Max.X))
				bx.ylo = milp.Constant(geom.Microns(r.Min.Y))
				bx.yhi = milp.Constant(geom.Microns(r.Max.Y))
				bx.isConst = true
			}
			if m.Config.Fixed != nil {
				if pd := m.Config.Fixed.Placed(d.Name); pd != nil {
					bx.warm = pd.BodyRect().Expand(m.Circuit.Tech.Clearance())
					bx.hasWarm = true
				}
			}
			out = append(out, bx)
		}
	}

	// Microstrip segments.
	for _, ms := range m.Circuit.Microstrips {
		sv := m.strips[ms.Name]
		terms := [2]string{ms.From.Device, ms.To.Device}

		if !sv.free {
			segs := (geom.Polyline{Points: sv.fixedPts, Width: m.Circuit.Tech.StripWidth(ms.Width)}).Segments()
			for k, seg := range segs {
				r := seg.Rect().Expand(m.Circuit.Tech.Clearance())
				bx := box{
					name: ms.Name, kind: "segment", strip: ms.Name, seg: k, terms: terms,
					xlo:     milp.Constant(geom.Microns(r.Min.X)),
					xhi:     milp.Constant(geom.Microns(r.Max.X)),
					ylo:     milp.Constant(geom.Microns(r.Min.Y)),
					yhi:     milp.Constant(geom.Microns(r.Max.Y)),
					isConst: true,
					warm:    r, hasWarm: true,
				}
				if k == 0 {
					bx.endTerms = append(bx.endTerms, ms.From)
				}
				if k == len(segs)-1 {
					bx.endTerms = append(bx.endTerms, ms.To)
				}
				out = append(out, bx)
			}
			continue
		}

		warmRect, hasWarm := m.warmStripRect(ms.Name)
		for j := 0; j < sv.n-1; j++ {
			// Envelope variables for the segment extent along each axis.
			exlo := m.MILP.AddContinuous(fmt.Sprintf("env.%s.%d.xlo", ms.Name, j), 0, m.areaW)
			exhi := m.MILP.AddContinuous(fmt.Sprintf("env.%s.%d.xhi", ms.Name, j), 0, m.areaW)
			eylo := m.MILP.AddContinuous(fmt.Sprintf("env.%s.%d.ylo", ms.Name, j), 0, m.areaH)
			eyhi := m.MILP.AddContinuous(fmt.Sprintf("env.%s.%d.yhi", ms.Name, j), 0, m.areaH)
			for _, idx := range []int{j, j + 1} {
				m.MILP.AddLE(fmt.Sprintf("env.%s.%d.xlo.%d", ms.Name, j, idx), milp.Term(exlo, 1).Sub(sv.x[idx], 1), 0)
				m.MILP.AddGE(fmt.Sprintf("env.%s.%d.xhi.%d", ms.Name, j, idx), milp.Term(exhi, 1).Sub(sv.x[idx], 1), 0)
				m.MILP.AddLE(fmt.Sprintf("env.%s.%d.ylo.%d", ms.Name, j, idx), milp.Term(eylo, 1).Sub(sv.y[idx], 1), 0)
				m.MILP.AddGE(fmt.Sprintf("env.%s.%d.yhi.%d", ms.Name, j, idx), milp.Term(eyhi, 1).Sub(sv.y[idx], 1), 0)
			}

			// Expansion of the segment body: the clearance on every side plus
			// half the strip width across the segment axis. With free
			// topology the lateral direction is selected by the direction
			// binaries, which keeps the box exact instead of conservatively
			// square.
			half := sv.width / 2
			expandX := milp.Constant(m.clearance)
			expandY := milp.Constant(m.clearance)
			switch {
			case sv.topologyFixed:
				if sv.fixedDirs[j].Vertical() {
					expandX.AddConst(half)
				} else {
					expandY.AddConst(half)
				}
			default:
				s := sv.dirs[j]
				expandX.Add(s[geom.Up], half).Add(s[geom.Down], half)
				expandY.Add(s[geom.Left], half).Add(s[geom.Right], half)
			}
			if m.Config.Blurred && (j == 0 || j == sv.n-2) {
				// Figure 8: end segments of blurred strips reserve space for
				// the device they will visualize later.
				dev := terms[0]
				if j == sv.n-2 {
					dev = terms[1]
				}
				if d, err := m.Circuit.Device(dev); err == nil {
					w, h := d.Dimensions(m.Config.orientation(dev))
					reach := geom.Microns(geom.MaxCoord(w, h)) / 2
					expandX.AddConst(reach)
					expandY.AddConst(reach)
				}
			}
			bx := box{
				name: ms.Name, kind: "segment", strip: ms.Name, seg: j, terms: terms,
				xlo:  milp.Term(exlo, 1).AddExpr(expandX, -1),
				xhi:  milp.Term(exhi, 1).AddExpr(expandX, 1),
				ylo:  milp.Term(eylo, 1).AddExpr(expandY, -1),
				yhi:  milp.Term(eyhi, 1).AddExpr(expandY, 1),
				warm: warmRect, hasWarm: hasWarm,
			}
			if j == 0 {
				bx.endTerms = append(bx.endTerms, ms.From)
			}
			if j == sv.n-2 {
				bx.endTerms = append(bx.endTerms, ms.To)
			}
			out = append(out, bx)
		}
	}
	return out, nil
}

// warmStripRect returns the expanded bounding rectangle of a strip's route in
// the Fixed layout, used for pair pruning of free strips.
func (m *Model) warmStripRect(strip string) (geom.Rect, bool) {
	if m.Config.Fixed == nil {
		return geom.Rect{}, false
	}
	rs := m.Config.Fixed.Routed(strip)
	if rs == nil || len(rs.Path.Points) == 0 {
		return geom.Rect{}, false
	}
	return rs.Path.Bounds().Expand(m.Circuit.Tech.Clearance()), true
}
