package ilpmodel

import (
	"testing"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/milp"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// driftedBoundaryFixture models the exact situation the boundary-coordination
// loop produces: the strip's warm route still ends where device B used to be,
// but B (the remote cluster) has since moved 20 µm up — farther than the
// 10 µm confinement window lets the local cluster follow — so a fixed
// straight topology cannot reach B's pin exactly any more.
func driftedBoundaryFixture(t *testing.T) (*netlist.Circuit, *layout.Layout) {
	t.Helper()
	c := netlist.NewCircuit("drift", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(200))
	a := netlist.NewDevice("A", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	a.AddPin("p", geom.PtMicrons(20, 0), 0)
	c.AddDevice(a)
	b := netlist.NewDevice("B", netlist.Capacitor, geom.FromMicrons(40), geom.FromMicrons(40))
	b.AddPin("p", geom.PtMicrons(-20, 0), 0)
	c.AddDevice(b)
	c.Connect("TL", "A", "p", "B", "p", geom.FromMicrons(160))

	fixed := layout.New(c)
	if err := fixed.Place("A", geom.PtMicrons(40, 100), geom.R0); err != nil {
		t.Fatal(err)
	}
	if err := fixed.Place("B", geom.PtMicrons(240, 120), geom.R0); err != nil {
		t.Fatal(err)
	}
	// Warm route at B's pre-drift position: straight horizontal at y = 100.
	if err := fixed.Route("TL", geom.PtMicrons(60, 100), geom.PtMicrons(220, 100)); err != nil {
		t.Fatal(err)
	}
	return c, fixed
}

func shardBaseConfig(fixed *layout.Layout) Config {
	return Config{
		DefaultChainPoints: 2,
		Fixed:              fixed,
		SoftLength:         true,
		FixTopology:        true,
		Confinement:        geom.FromMicrons(10),
	}
}

func TestBoundarySlackKeepsShardFeasible(t *testing.T) {
	c, fixed := driftedBoundaryFixture(t)
	spec := SubSpec{
		FreeDevices:    []string{"A"},
		FreeStrips:     []string{"TL"},
		BoundaryStrips: []string{"TL"},
	}

	// Without the slack the shard is infeasible: the frozen horizontal
	// topology cannot climb to B's drifted pin.
	hard := SubConfig(shardBaseConfig(fixed), spec)
	hard.BoundarySlack = nil
	m, err := Build(c, hard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusInfeasible {
		t.Fatalf("hard binding status = %v, want infeasible", res.Status)
	}

	// With the slack the shard solves; the drift shows up as a residual the
	// coordination loop can measure instead of a failed sub-solve.
	m, err = BuildSub(c, shardBaseConfig(fixed), spec)
	if err != nil {
		t.Fatal(err)
	}
	lay, res, err := m.SolveAndExtract(solveOpts(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Status.HasSolution() {
		t.Fatalf("slack binding status = %v, want a solution", res.Status)
	}
	if lay == nil || !lay.Complete() {
		t.Fatal("incomplete layout extracted")
	}
	// The frozen remote device must not have moved.
	if got := lay.Placed("B").Center; got != geom.PtMicrons(240, 120) {
		t.Errorf("frozen device B moved to %v", got)
	}
}

func TestSubConfigRestrictsFreedom(t *testing.T) {
	base := Config{Fixed: layout.New(twoBlockCircuit(180))}
	cfg := SubConfig(base, SubSpec{})
	if cfg.FreeDevices == nil || cfg.FreeStrips == nil {
		t.Error("empty spec must mean no free objects, not nil-means-all")
	}
	cfg = SubConfig(base, SubSpec{
		FreeDevices:    []string{"A"},
		FreeStrips:     []string{"TL"},
		BoundaryStrips: []string{"TL"},
	})
	if !cfg.deviceFree("A") || cfg.deviceFree("B") {
		t.Error("free-device restriction wrong")
	}
	if !cfg.stripFree("TL") || !cfg.boundarySlack("TL") {
		t.Error("strip freedom / boundary slack not carried over")
	}
}

func TestBoundarySlackValidation(t *testing.T) {
	c := twoBlockCircuit(180)
	fixed := fixedTwoBlockLayout(t, c)
	if _, err := Build(c, Config{
		FreeDevices:   []string{},
		Fixed:         fixed,
		BoundarySlack: []string{"ZZ"},
	}); err == nil {
		t.Error("unknown boundary-slack strip accepted")
	}
	if _, err := Build(c, Config{
		FreeDevices:   []string{},
		FreeStrips:    []string{},
		Fixed:         fixed,
		BoundarySlack: []string{"TL"},
	}); err == nil {
		t.Error("boundary slack on a fixed strip accepted")
	}
}
