package audit

import (
	"context"
	"fmt"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Check names, in battery order.
const (
	// CheckReorder: shuffling device/microstrip/pin declaration order must
	// leave the canonical text and the solved layout byte-identical
	// (canonicalization invariance).
	CheckReorder = "reorder"
	// CheckRename: renaming every object with an order-preserving mapping
	// must reproduce the identical geometry under the new names.
	CheckRename = "rename"
	// CheckRescale: multiplying every length by an integer factor must
	// reproduce the layout-quality metrics in the finer unit — equal
	// violation counts (at equally rescaled tolerances), equal bend totals,
	// and per-strip length errors that scale with the factor.
	CheckRescale = "rescale"
	// CheckMirror: negating every pin-offset X states the geometrically
	// mirrored problem, whose optimal score equals the base problem's by
	// symmetry. Two assertions: mirroring twice restores the byte-identical
	// canonical netlist (the transform is a true involution), and the
	// mirrored solve's score stays inside the mirror-ratio envelope of the
	// base. The envelope is wide: the constructive phase orders and routes
	// by coordinates, so mirroring flips every heuristic tie-break and at
	// fuzz-scale node budgets several-fold violation swings are an observed
	// property of the flow (a known chirality sensitivity, not a
	// determinism bug) — the check guards against outright collapse.
	CheckMirror = "mirror"
	// CheckRotate: swapping the area's and every device's width and height
	// and mapping every pin offset (x, y) → (−y, x) states the problem
	// rotated a quarter turn, whose optimal score equals the base problem's
	// by congruence. Two assertions, shaped exactly like the mirror check:
	// rotating four times restores the byte-identical canonical netlist, and
	// the rotated solve's score stays inside the rotate-ratio envelope of the
	// base. The envelope is as wide as the mirror's and for the same reason —
	// the constructive phase orders and routes by coordinates, so rotation
	// re-deals every heuristic tie-break (and additionally exchanges the
	// horizontal and vertical routing regimes), which at fuzz-scale node
	// budgets swings violation counts several-fold without indicating a bug.
	CheckRotate = "rotate"
	// CheckShardEnvelope: the sharded phase-1 adjustment must score within
	// the stated envelope of the monolithic solve on the same circuit. The
	// envelope is wide (50% plus one violation per boundary strip by
	// default): a strip frozen against a stale snapshot can end the bounded
	// coordination loop with unresolved drift, which the full flow's phase 2
	// absorbs but phase 1 in isolation reports — on pathological fuzz
	// circuits at small node budgets that drift is empirically a few
	// violations. The tight 10% envelope lives in the CI shardguard, which
	// runs the large synthetic circuit where phase 1 converges.
	CheckShardEnvelope = "shard-envelope"
	// CheckWarmCold: disabling LP warm starts must produce the byte-identical
	// layout.
	CheckWarmCold = "warm-cold"
	// CheckWorkers: every worker count must produce the byte-identical
	// layout.
	CheckWorkers = "workers"
)

// AllChecks lists every check in battery order.
var AllChecks = []string{
	CheckReorder, CheckRename, CheckRescale, CheckMirror, CheckRotate,
	CheckShardEnvelope, CheckWarmCold, CheckWorkers,
}

// Options tunes the battery.
type Options struct {
	// Solve is the base flow configuration. Harnesses should bound solves by
	// node budgets (StripNodeLimit/Phase1NodeLimit), not wall clock:
	// binding time limits break the byte-equality relations. Solve.Workers
	// is the base worker count; zero means 1 here (not GOMAXPROCS), so the
	// workers check compares against a fixed reference.
	Solve pilp.Options
	// Checks selects a subset of AllChecks; nil runs all of them.
	Checks []string
	// ShardSize is the cluster cap of the shard-envelope check. Zero means 5.
	ShardSize int
	// ShardTol is the allowed fractional score regression of the sharded
	// phase 1. Zero means 0.50 — see CheckShardEnvelope for why the default
	// is a collapse guard rather than the shardguard's tight 10%.
	ShardTol float64
	// ShardSlack is the absolute score slack added to the shard envelope on
	// top of the per-boundary-strip violation allowance (so a perfect-score
	// monolithic baseline does not turn every nonzero sharded score into a
	// failure). Zero means 100, one bend.
	ShardSlack float64
	// RescaleFactor is the unit-rescaling multiplier. Zero means 2.
	RescaleFactor int64
	// MirrorRatio is the allowed multiplicative score divergence between the
	// mirrored and the base solve (in either direction). Zero means 8:
	// mirroring flips every tie-break of the constructive heuristic, and at
	// fuzz-scale node budgets up to ~5x violation swings are empirically
	// normal — the envelope flags chirality-driven collapse, not wobble.
	MirrorRatio float64
	// MirrorSlack is the absolute score slack of the mirror envelope. Zero
	// means 2e6, two violations — a near-perfect base score must not turn
	// every residual mirrored violation into a failure.
	MirrorSlack float64
	// RotateRatio is the allowed multiplicative score divergence between the
	// quarter-turn-rotated and the base solve (in either direction). Zero
	// means 8, calibrated the same way as MirrorRatio: the 54-seed fuzz
	// battery at budget 10 stays inside it with the same margin the mirror
	// check has, and rotation perturbs the heuristics at least as much
	// (every tie-break re-dealt plus the routing regimes exchanged).
	RotateRatio float64
	// RotateSlack is the absolute score slack of the rotate envelope. Zero
	// means 2e6, two violations, matching MirrorSlack.
	RotateSlack float64
	// ExtraWorkers are the worker counts compared against the base solve by
	// the workers check. Nil means {4}.
	ExtraWorkers []int
}

func (o Options) shardSize() int {
	if o.ShardSize > 0 {
		return o.ShardSize
	}
	return 5
}

func (o Options) shardTol() float64 {
	if o.ShardTol > 0 {
		return o.ShardTol
	}
	return 0.50
}

func (o Options) shardSlack() float64 {
	if o.ShardSlack > 0 {
		return o.ShardSlack
	}
	return 100
}

func (o Options) rescaleFactor() int64 {
	if o.RescaleFactor > 1 {
		return o.RescaleFactor
	}
	return 2
}

func (o Options) mirrorRatio() float64 {
	if o.MirrorRatio > 0 {
		return o.MirrorRatio
	}
	return 8
}

func (o Options) mirrorSlack() float64 {
	if o.MirrorSlack > 0 {
		return o.MirrorSlack
	}
	return 2e6
}

func (o Options) rotateRatio() float64 {
	if o.RotateRatio > 0 {
		return o.RotateRatio
	}
	return 8
}

func (o Options) rotateSlack() float64 {
	if o.RotateSlack > 0 {
		return o.RotateSlack
	}
	return 2e6
}

func (o Options) extraWorkers() []int {
	if len(o.ExtraWorkers) > 0 {
		return o.ExtraWorkers
	}
	return []int{4}
}

func (o Options) checks() []string {
	if len(o.Checks) > 0 {
		return o.Checks
	}
	return AllChecks
}

// CheckResult is the outcome of one metamorphic check.
type CheckResult struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	// Detail explains a failure, or carries a short note on a pass (e.g.
	// "below shard threshold").
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of the whole battery on one circuit.
type Report struct {
	Circuit string        `json:"circuit"`
	Results []CheckResult `json:"checks"`
	// Nodes is the branch-and-bound node total across every solve the
	// battery ran — deterministic, so it may appear in reproducible output.
	Nodes int `json:"nodes"`
	// Runtime is the battery wall clock. Scheduling-dependent; harnesses
	// that promise byte-identical output must exclude it.
	Runtime time.Duration `json:"-"`
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, cr := range r.Results {
		if !cr.Passed {
			return false
		}
	}
	return true
}

// Failed returns the failing checks.
func (r *Report) Failed() []CheckResult {
	var out []CheckResult
	for _, cr := range r.Results {
		if !cr.Passed {
			out = append(out, cr)
		}
	}
	return out
}

// DefaultSolveOptions returns the flow configuration the fuzz harness uses:
// phase 3 skipped and every search bounded by deterministic node budgets, so
// circuits that would not converge still terminate at a path-independent
// point and the byte-equality relations hold. budget is the per-strip node
// budget (zero means 25); the phase-1 budget scales with it.
func DefaultSolveOptions(budget int) pilp.Options {
	if budget <= 0 {
		budget = 25
	}
	return pilp.Options{
		ChainPoints:         2,
		MaxChainPoints:      3,
		MaxRefineIterations: -1,
		StripNodeLimit:      budget,
		Phase1NodeLimit:     40 * budget,
		// Tight geometric windows keep the per-strip models small: simplex
		// pivot cost grows with the window, and on wide-aspect fuzz circuits
		// the default 40 µm window makes single solves ~20x slower for no
		// measurable quality gain at fuzz-scale node budgets.
		Confinement: geom.FromMicrons(10),
		PairRadius:  geom.FromMicrons(30),
		// Generous wall-clock ceilings that the node budgets undercut:
		// binding time limits would reintroduce nondeterminism.
		StripTimeLimit: 60 * time.Second,
		PhaseTimeLimit: 300 * time.Second,
		Workers:        1,
	}
}

// Run executes the battery on one circuit. A context error aborts the
// battery and surfaces as the returned error (never as a bogus check
// failure); any other solver error fails the check that triggered it.
func Run(ctx context.Context, c *netlist.Circuit, opts Options) (*Report, error) {
	start := time.Now()
	if opts.Solve.Workers == 0 {
		opts.Solve.Workers = 1
	}
	rep := &Report{Circuit: c.Name}

	base, err := pilp.GenerateCtx(ctx, c, opts.Solve)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("audit: base solve of %s: %w", c.Name, err)
	}
	rep.Nodes += base.Nodes

	for _, name := range opts.checks() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cr CheckResult
		switch name {
		case CheckReorder:
			cr = checkReorder(ctx, c, base, opts, rep)
		case CheckRename:
			cr = checkRename(ctx, c, base, opts, rep)
		case CheckRescale:
			cr = checkRescale(ctx, c, base, opts, rep)
		case CheckMirror:
			cr = checkMirror(ctx, c, base, opts, rep)
		case CheckRotate:
			cr = checkRotate(ctx, c, base, opts, rep)
		case CheckShardEnvelope:
			cr = checkShardEnvelope(ctx, c, opts, rep)
		case CheckWarmCold:
			cr = checkWarmCold(ctx, c, base, opts, rep)
		case CheckWorkers:
			cr = checkWorkers(ctx, c, base, opts, rep)
		default:
			return nil, fmt.Errorf("audit: unknown check %q", name)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, cr)
	}
	rep.Runtime = time.Since(start)
	return rep, nil
}

// resolve runs one transformed solve, charging its effort to the report.
func resolve(ctx context.Context, c *netlist.Circuit, opts pilp.Options, rep *Report) (*pilp.Result, error) {
	res, err := pilp.GenerateCtx(ctx, c, opts)
	if err != nil {
		return nil, err
	}
	rep.Nodes += res.Nodes
	return res, nil
}

func failf(name, format string, args ...interface{}) CheckResult {
	return CheckResult{Name: name, Passed: false, Detail: fmt.Sprintf(format, args...)}
}

func pass(name string) CheckResult { return CheckResult{Name: name, Passed: true} }

func passf(name, format string, args ...interface{}) CheckResult {
	return CheckResult{Name: name, Passed: true, Detail: fmt.Sprintf(format, args...)}
}

// checkReorder: canonical text and solved layout must be invariant under
// declaration-order shuffling.
func checkReorder(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	shuffled := reordered(c)
	if netlist.Canonical(shuffled) != netlist.Canonical(c) {
		return failf(CheckReorder, "canonical text changed under declaration reordering")
	}
	res, err := resolve(ctx, shuffled, opts.Solve, rep)
	if err != nil {
		return failf(CheckReorder, "solving reordered circuit: %v", err)
	}
	if layout.Format(res.Layout) != layout.Format(base.Layout) {
		return failf(CheckReorder, "layout differs after declaration reordering")
	}
	return pass(CheckReorder)
}

// checkRename: an order-preserving rename must reproduce identical geometry
// under the new names.
func checkRename(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	rc, mapping := renamed(c)
	res, err := resolve(ctx, rc, opts.Solve, rep)
	if err != nil {
		return failf(CheckRename, "solving renamed circuit: %v", err)
	}
	for _, d := range c.Devices {
		b := base.Layout.Placed(d.Name)
		r := res.Layout.Placed(mapping[d.Name])
		if (b == nil) != (r == nil) {
			return failf(CheckRename, "device %s placed in only one of the two layouts", d.Name)
		}
		if b == nil {
			continue
		}
		if !b.Center.Eq(r.Center) || b.Orient != r.Orient {
			return failf(CheckRename, "device %s moved under rename: %v/%v vs %v/%v",
				d.Name, b.Center, b.Orient, r.Center, r.Orient)
		}
	}
	for _, ms := range c.Microstrips {
		b := base.Layout.Routed(ms.Name)
		r := res.Layout.Routed(mapping[ms.Name])
		if (b == nil) != (r == nil) {
			return failf(CheckRename, "strip %s routed in only one of the two layouts", ms.Name)
		}
		if b == nil {
			continue
		}
		if len(b.Path.Points) != len(r.Path.Points) {
			return failf(CheckRename, "strip %s changed chain points under rename", ms.Name)
		}
		for i := range b.Path.Points {
			if !b.Path.Points[i].Eq(r.Path.Points[i]) {
				return failf(CheckRename, "strip %s rerouted under rename at point %d", ms.Name, i)
			}
		}
	}
	return pass(CheckRename)
}

// checkRescale: solving the k-times-rescaled circuit (with equally rescaled
// flow windows and check tolerances) must reproduce the base layout quality
// in the finer unit: equal violation counts, equal bend totals, and a total
// length error within the rescale envelope of k times the base.
func checkRescale(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	k := opts.rescaleFactor()
	sc := rescaled(c, k)
	so := opts.Solve
	// The flow's geometric windows are lengths too; leaving them in the old
	// unit would state a different problem.
	so.Confinement = resolveConfinement(opts.Solve) * k
	so.PairRadius = resolvePairRadius(opts.Solve) * k
	so.ShardBoundaryTol = resolveShardBoundaryTol(opts.Solve) * k
	res, err := resolve(ctx, sc, so, rep)
	if err != nil {
		return failf(CheckRescale, "solving rescaled circuit: %v", err)
	}

	baseViol := len(base.Layout.Check(layout.CheckOptions{PinTolerance: 2}))
	// The DRC tolerances are lengths: rescale them with the unit.
	scaledViol := len(res.Layout.Check(layout.CheckOptions{
		LengthTolerance: 10 * k,
		PinTolerance:    2 * k,
	}))
	if scaledViol != baseViol {
		return failf(CheckRescale, "violations changed under x%d rescale: %d vs %d", k, scaledViol, baseViol)
	}
	bm, sm := base.Layout.Metrics(), res.Layout.Metrics()
	if bm.TotalBends != sm.TotalBends {
		return failf(CheckRescale, "total bends changed under x%d rescale: %d vs %d", k, sm.TotalBends, bm.TotalBends)
	}
	// Integer rounding inside the constructive serpentine shifts coordinates
	// by up to k−1 nm per division; allow the accumulated length error one
	// strip-width of drift per strip on top of exact scaling.
	slack := geom.Coord(len(c.Microstrips)) * c.Tech.MicrostripWidth * k
	if diff := geom.AbsCoord(sm.TotalLengthError - k*bm.TotalLengthError); diff > slack {
		return failf(CheckRescale, "total length error %0.3fµm not within %0.3fµm of %d x %0.3fµm",
			geom.Microns(sm.TotalLengthError), geom.Microns(slack), k, geom.Microns(bm.TotalLengthError))
	}
	return pass(CheckRescale)
}

// resolveConfinement mirrors pilp's internal default (40 µm) so the rescale
// check can scale the effective value rather than the zero sentinel.
func resolveConfinement(o pilp.Options) geom.Coord {
	if o.Confinement > 0 {
		return o.Confinement
	}
	return geom.FromMicrons(40)
}

func resolvePairRadius(o pilp.Options) geom.Coord {
	if o.PairRadius > 0 {
		return o.PairRadius
	}
	return geom.FromMicrons(80)
}

func resolveShardBoundaryTol(o pilp.Options) geom.Coord {
	if o.ShardBoundaryTol > 0 {
		return o.ShardBoundaryTol
	}
	return geom.FromMicrons(2)
}

// checkMirror: see CheckMirror. The involution half is exact; the score half
// is the wide collapse envelope — a tight envelope would be unsound, the
// constructive heuristic is genuinely chirality-sensitive (solving the
// mirrored problem is NOT solving the problem and mirroring the answer).
func checkMirror(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	mc := mirroredX(c)
	if netlist.Canonical(mirroredX(mc)) != netlist.Canonical(c) {
		return failf(CheckMirror, "mirroring twice did not restore the canonical netlist")
	}
	res, err := resolve(ctx, mc, opts.Solve, rep)
	if err != nil {
		return failf(CheckMirror, "solving mirrored circuit: %v", err)
	}
	bs, ms := pilp.Score(base.Layout), pilp.Score(res.Layout)
	lo, hi := bs, ms
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > lo*opts.mirrorRatio()+opts.mirrorSlack() {
		return failf(CheckMirror, "mirrored score %.1f vs base %.1f exceeds the %gx collapse envelope",
			ms, bs, opts.mirrorRatio())
	}
	return pass(CheckMirror)
}

// checkRotate: see CheckRotate. The four-times-identity half is exact; the
// score half reuses the mirror check's collapse-envelope shape, because a
// quarter turn, like a reflection, states a congruent problem that the
// coordinate-ordered heuristics nevertheless attack in a different order.
func checkRotate(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	rc := rotated90(c)
	if netlist.Canonical(rotated90(rotated90(rotated90(rc)))) != netlist.Canonical(c) {
		return failf(CheckRotate, "rotating four times did not restore the canonical netlist")
	}
	res, err := resolve(ctx, rc, opts.Solve, rep)
	if err != nil {
		return failf(CheckRotate, "solving rotated circuit: %v", err)
	}
	bs, rs := pilp.Score(base.Layout), pilp.Score(res.Layout)
	lo, hi := bs, rs
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > lo*opts.rotateRatio()+opts.rotateSlack() {
		return failf(CheckRotate, "rotated score %.1f vs base %.1f exceeds the %gx collapse envelope",
			rs, bs, opts.rotateRatio())
	}
	return pass(CheckRotate)
}

// checkShardEnvelope: phase 1 sharded must stay within the stated score
// envelope of phase 1 monolithic.
func checkShardEnvelope(ctx context.Context, c *netlist.Circuit, opts Options, rep *Report) CheckResult {
	mono := opts.Solve
	mono.ShardSize = 0
	monoRes, err := pilp.AdjustPhase1(ctx, c, mono)
	if err != nil {
		return failf(CheckShardEnvelope, "monolithic phase 1: %v", err)
	}
	rep.Nodes += monoRes.Nodes
	sharded := opts.Solve
	sharded.ShardSize = opts.shardSize()
	shardRes, err := pilp.AdjustPhase1(ctx, c, sharded)
	if err != nil {
		return failf(CheckShardEnvelope, "sharded phase 1: %v", err)
	}
	rep.Nodes += shardRes.Nodes
	if len(shardRes.Shards) < 2 {
		return passf(CheckShardEnvelope, "below shard threshold at size %d", opts.shardSize())
	}
	// Boundary counts owned strips crossing clusters, so summing over the
	// shards counts each inter-cluster strip exactly once.
	boundaryStrips := 0
	for _, s := range shardRes.Shards {
		boundaryStrips += s.Boundary
	}
	monoScore, shardScore := pilp.Score(monoRes.Layout), pilp.Score(shardRes.Layout)
	allowed := monoScore*(1+opts.shardTol()) + 1e6*float64(boundaryStrips) + opts.shardSlack()
	if shardScore > allowed {
		return failf(CheckShardEnvelope, "sharded score %.1f exceeds allowed %.1f (monolithic %.1f, %d shards, %d boundary strips)",
			shardScore, allowed, monoScore, len(shardRes.Shards), boundaryStrips)
	}
	return pass(CheckShardEnvelope)
}

// checkWarmCold: warm-started and cold LP solves must return byte-identical
// layouts.
func checkWarmCold(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	cold := opts.Solve
	cold.ColdLP = true
	res, err := resolve(ctx, c, cold, rep)
	if err != nil {
		return failf(CheckWarmCold, "cold-LP solve: %v", err)
	}
	if layout.Format(res.Layout) != layout.Format(base.Layout) {
		return failf(CheckWarmCold, "cold-LP layout differs from warm-started layout")
	}
	return pass(CheckWarmCold)
}

// checkWorkers: every worker count must return the byte-identical layout.
func checkWorkers(ctx context.Context, c *netlist.Circuit, base *pilp.Result, opts Options, rep *Report) CheckResult {
	want := layout.Format(base.Layout)
	for _, w := range opts.extraWorkers() {
		if w == opts.Solve.Workers {
			continue
		}
		so := opts.Solve
		so.Workers = w
		res, err := resolve(ctx, c, so, rep)
		if err != nil {
			return failf(CheckWorkers, "solve at %d workers: %v", w, err)
		}
		if layout.Format(res.Layout) != want {
			return failf(CheckWorkers, "layout differs between %d and %d workers", opts.Solve.Workers, w)
		}
	}
	return pass(CheckWorkers)
}
