package audit

import (
	"context"
	"os"
	"path/filepath"

	"rficlayout/internal/netlist"
)

// Predicate decides whether a circuit still exhibits the failure being
// minimized. detail describes the failure (carried into the MinimizeResult
// for the final circuit); failed reports whether it is present. Predicates
// must be deterministic — the minimizer re-evaluates candidates and assumes
// a circuit that failed once fails again.
type Predicate func(ctx context.Context, c *netlist.Circuit) (detail string, failed bool)

// MinimizeResult is the outcome of Minimize.
type MinimizeResult struct {
	// Circuit is the smallest failing circuit found (the input itself when
	// nothing could be removed).
	Circuit *netlist.Circuit
	// Detail is the predicate's description of the failure on that circuit.
	Detail string
	// Steps counts the accepted removals.
	Steps int
}

// Minimize greedily shrinks a failing circuit while the predicate keeps
// failing: it repeatedly tries removing one microstrip (name order), then one
// disconnected device, keeping any removal after which the circuit still
// validates and still fails, until a full sweep removes nothing. Greedy
// one-object removal is deliberately simple — deterministic, worst-case
// quadratic in circuit size, and in practice it reduces fuzz circuits to a
// handful of objects, which is what a committable fixture needs.
//
// The input circuit is never mutated. A context error aborts minimization and
// returns the best circuit found so far together with ctx.Err().
func Minimize(ctx context.Context, c *netlist.Circuit, pred Predicate) (*MinimizeResult, error) {
	detail, failed := pred(ctx, c)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !failed {
		return &MinimizeResult{Circuit: c, Detail: ""}, nil
	}
	cur := copyCircuit(c)
	res := &MinimizeResult{Circuit: cur, Detail: detail}
	for {
		removed, err := minimizeSweep(ctx, res, pred)
		if err != nil {
			return res, err
		}
		if !removed {
			return res, nil
		}
	}
}

// minimizeSweep performs one pass over the removable objects, adopting every
// removal that keeps the failure alive. It reports whether anything was
// removed.
func minimizeSweep(ctx context.Context, res *MinimizeResult, pred Predicate) (bool, error) {
	removed := false
	// Strips first: removing a strip can only disconnect, never invalidate a
	// remaining reference, and each removal may free a device for the second
	// loop.
	for i := 0; i < len(res.Circuit.Microstrips); {
		if err := ctx.Err(); err != nil {
			return removed, err
		}
		cand := withoutStrip(res.Circuit, res.Circuit.Microstrips[i].Name)
		if detail, ok := stillFails(ctx, cand, pred); ok {
			res.Circuit, res.Detail = cand, detail
			res.Steps++
			removed = true
			continue // same index now holds the next strip
		}
		i++
	}
	for i := 0; i < len(res.Circuit.Devices); {
		if err := ctx.Err(); err != nil {
			return removed, err
		}
		name := res.Circuit.Devices[i].Name
		if stripDegree(res.Circuit, name) > 0 {
			i++
			continue
		}
		cand := withoutDevice(res.Circuit, name)
		if detail, ok := stillFails(ctx, cand, pred); ok {
			res.Circuit, res.Detail = cand, detail
			res.Steps++
			removed = true
			continue
		}
		i++
	}
	return removed, nil
}

// stillFails reports whether the candidate both validates and still fails the
// predicate — the two conditions an accepted removal must keep.
func stillFails(ctx context.Context, cand *netlist.Circuit, pred Predicate) (string, bool) {
	if cand == nil || cand.Validate() != nil {
		return "", false
	}
	detail, failed := pred(ctx, cand)
	if ctx.Err() != nil {
		return "", false
	}
	return detail, failed
}

// withoutStrip returns a copy lacking the named microstrip.
func withoutStrip(c *netlist.Circuit, name string) *netlist.Circuit {
	out := netlist.NewCircuit(c.Name, c.Tech, c.AreaWidth, c.AreaHeight)
	for _, d := range c.Devices {
		dd := *d
		dd.Pins = append([]netlist.Pin(nil), d.Pins...)
		out.AddDevice(&dd)
	}
	for _, ms := range c.Microstrips {
		if ms.Name == name {
			continue
		}
		mm := *ms
		out.AddMicrostrip(&mm)
	}
	return out
}

// withoutDevice returns a copy lacking the named device, or nil if any strip
// still references it (removal would dangle).
func withoutDevice(c *netlist.Circuit, name string) *netlist.Circuit {
	if stripDegree(c, name) > 0 {
		return nil
	}
	out := netlist.NewCircuit(c.Name, c.Tech, c.AreaWidth, c.AreaHeight)
	for _, d := range c.Devices {
		if d.Name == name {
			continue
		}
		dd := *d
		dd.Pins = append([]netlist.Pin(nil), d.Pins...)
		out.AddDevice(&dd)
	}
	for _, ms := range c.Microstrips {
		mm := *ms
		out.AddMicrostrip(&mm)
	}
	return out
}

// stripDegree counts the microstrips touching the named device.
func stripDegree(c *netlist.Circuit, device string) int {
	n := 0
	for _, ms := range c.Microstrips {
		if ms.From.Device == device || ms.To.Device == device {
			n++
		}
	}
	return n
}

// WriteFixture writes the circuit's canonical text to path, creating parent
// directories as needed. Canonical text round-trips through netlist.Parse, so
// the fixture replays the failure exactly.
func WriteFixture(path string, c *netlist.Circuit) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(netlist.Canonical(c)), 0o644)
}
