// Package audit runs a metamorphic test battery over the progressive ILP
// layout flow. Each check transforms the input circuit in a way whose effect
// on the output is predictable, solves the transformed circuit, and verifies
// the predicted relation. The determinism contract (worker counts, warm
// starts and pivot rules never change results; node budgets cut searches at
// path-independent points) is what turns most relations into byte-equality
// checks; the rest compare on the flow's own score and design-rule metrics
// within stated envelopes.
//
// # Architecture
//
// Three layers, composed by the fuzz harness (rficbench -fuzz):
//
//   - transform.go — structure-preserving circuit transformations, each
//     returning a deep copy: declaration reordering, order-preserving
//     renaming, integer unit rescaling, pin-geometry mirroring.
//   - audit.go — the battery (Run): one base solve, then per-check
//     transformed solves compared against it. Byte-exact checks: reorder,
//     rename (geometry under the name mapping), warm-vs-cold LP, worker
//     counts. Envelope checks: rescale (metrics must rescale with the unit,
//     within integer-rounding slack), mirror (involution byte-exact, score
//     inside a wide chirality-collapse envelope), shard-envelope (phase 1
//     sharded vs monolithic, slack per boundary strip).
//   - minimize.go — a greedy failing-circuit minimizer: remove one strip or
//     disconnected device at a time, keep removals after which the circuit
//     still validates and the failure predicate still fires, iterate to a
//     fixpoint, and write the result as a committable .rfic fixture
//     (testdata/fuzzmin.rfic is one such output, pinned by a test).
//
// The split between exact and envelope checks is deliberate: the flow is a
// deterministic function of (circuit, options), so transformations that
// preserve the solver's tie-break order (reorder, order-preserving rename)
// or that the contract covers outright (warm starts, workers) must reproduce
// layouts byte for byte, and any drift is a bug. Rescaling and mirroring
// change the heuristic's arithmetic (integer divisions, coordinate-ordered
// tie-breaks), so for them only bounded quality relations are sound — the
// envelopes are tuned to observed behavior and guard against collapse, and
// their calibration doubles as a record of two real findings (chirality
// sensitivity; phase-1 shard drift on pathological inputs).
//
// The battery is the instrument behind rficbench -fuzz:
// internal/circuits/fuzz generates seeded circuits across RF topology space
// (same seed, byte-identical netlist.Canonical), every circuit runs through
// Run under deterministic node budgets (DefaultSolveOptions), results stream
// as wall-clock-free JSONL (replays compare byte-identical), and failures
// shrink through Minimize into fixtures CI uploads as artifacts.
package audit
