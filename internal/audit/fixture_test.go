package audit

import (
	"context"
	"path/filepath"
	"testing"

	"rficlayout/internal/netlist"
)

// perimeterPred is the synthetic failure behind testdata/fuzzmin.rfic: some
// strip demands more than half the area perimeter.
func perimeterPred(_ context.Context, c *netlist.Circuit) (string, bool) {
	for _, ms := range c.Microstrips {
		if ms.TargetLength > (c.AreaWidth+c.AreaHeight)/2 {
			return "strip " + ms.Name + " demands more than half the area perimeter", true
		}
	}
	return "", false
}

// TestCommittedFixture: testdata/fuzzmin.rfic is the minimizer's output on a
// fuzz circuit (seed 15) with an injected over-long strip target. It must
// stay parseable, still exhibit the violation, and be a minimization
// fixpoint — if the minimizer learns to shrink further, the fixture should
// be regenerated rather than silently drift.
func TestCommittedFixture(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "fuzzmin.rfic")
	c, err := netlist.ParseFile(path)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if _, failed := perimeterPred(context.Background(), c); !failed {
		t.Fatal("fixture no longer exhibits the perimeter violation")
	}
	if len(c.Microstrips) != 1 || len(c.Devices) != 2 {
		t.Fatalf("fixture is not minimal: %d devices, %d strips", len(c.Devices), len(c.Microstrips))
	}
	res, err := Minimize(context.Background(), c, perimeterPred)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.Steps != 0 {
		t.Fatalf("fixture is not a minimization fixpoint: %d further step(s)", res.Steps)
	}
}
