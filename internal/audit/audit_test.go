package audit

import (
	"context"
	"strings"
	"testing"

	"rficlayout/internal/circuits/fuzz"
	"rficlayout/internal/netlist"
)

// TestTransformsPreserveValidity: every metamorphic transform of a valid
// circuit must itself validate — otherwise a check failure could be an
// artifact of the transform, not of the solver.
func TestTransformsPreserveValidity(t *testing.T) {
	for seed := int64(0); seed < fuzz.ProfilePeriod; seed += 7 {
		c, _ := fuzz.Generate(seed)
		shuffled := reordered(c)
		if err := shuffled.Validate(); err != nil {
			t.Errorf("seed %d: reordered circuit invalid: %v", seed, err)
		}
		if netlist.Canonical(shuffled) != netlist.Canonical(c) {
			t.Errorf("seed %d: reorder changed canonical text", seed)
		}
		rc, mapping := renamed(c)
		if err := rc.Validate(); err != nil {
			t.Errorf("seed %d: renamed circuit invalid: %v", seed, err)
		}
		if len(mapping) != len(c.Devices)+len(c.Microstrips) {
			t.Errorf("seed %d: rename mapping covers %d of %d objects",
				seed, len(mapping), len(c.Devices)+len(c.Microstrips))
		}
		if err := rescaled(c, 2).Validate(); err != nil {
			t.Errorf("seed %d: rescaled circuit invalid: %v", seed, err)
		}
		if err := mirroredX(c).Validate(); err != nil {
			t.Errorf("seed %d: mirrored circuit invalid: %v", seed, err)
		}
		if err := rotated90(c).Validate(); err != nil {
			t.Errorf("seed %d: rotated circuit invalid: %v", seed, err)
		}
	}
}

// TestRotateFourTimesIsIdentity: the quarter-turn transform composed with
// itself four times must restore the byte-identical canonical netlist — the
// exactness half of the rotate check, asserted directly over many seeds.
func TestRotateFourTimesIsIdentity(t *testing.T) {
	for seed := int64(0); seed < fuzz.ProfilePeriod; seed += 5 {
		c, _ := fuzz.Generate(seed)
		r4 := rotated90(rotated90(rotated90(rotated90(c))))
		if netlist.Canonical(r4) != netlist.Canonical(c) {
			t.Errorf("seed %d: four rotations changed the canonical netlist", seed)
		}
		// A single rotation of a non-square circuit must NOT be the identity;
		// a transform that does nothing would make the check vacuous.
		if c.AreaWidth != c.AreaHeight && netlist.Canonical(rotated90(c)) == netlist.Canonical(c) {
			t.Errorf("seed %d: one rotation left the canonical netlist unchanged", seed)
		}
	}
}

// TestRenamePreservesOrder: the rename mapping must preserve lexicographic
// order, the property that keeps the solver's name-ordered tie-breaks firing
// identically.
func TestRenamePreservesOrder(t *testing.T) {
	m := orderPreservingNames([]string{"M2", "M10", "M1", "XCORE"}, "D")
	// Sorted input order: M1 < M10 < M2 < XCORE.
	want := map[string]string{"M1": "D0000", "M10": "D0001", "M2": "D0002", "XCORE": "D0003"}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("orderPreservingNames[%s] = %s, want %s", k, m[k], v)
		}
	}
}

// TestBatteryPasses: the full battery must pass on generated circuits — the
// exact property the CI fuzz smoke asserts at larger seed counts.
func TestBatteryPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("battery runs the full flow several times per circuit")
	}
	for _, seed := range []int64{3, 31} {
		c, p := fuzz.Generate(seed)
		rep, err := Run(context.Background(), c, Options{Solve: DefaultSolveOptions(15)})
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, p, err)
		}
		for _, f := range rep.Failed() {
			t.Errorf("seed %d (%+v): check %s failed: %s", seed, p, f.Name, f.Detail)
		}
		if rep.Nodes < 0 {
			t.Errorf("seed %d: negative node total", seed)
		}
	}
}

// TestRunSubsetAndUnknownCheck: Checks selects a subset; an unknown name is
// an error, not a silent skip.
func TestRunSubsetAndUnknownCheck(t *testing.T) {
	c, _ := fuzz.Generate(5)
	rep, err := Run(context.Background(), c, Options{
		Solve:  DefaultSolveOptions(10),
		Checks: []string{CheckReorder},
	})
	if err != nil {
		t.Fatalf("subset run: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != CheckReorder {
		t.Fatalf("subset run results = %+v, want one %s result", rep.Results, CheckReorder)
	}
	if _, err := Run(context.Background(), c, Options{
		Solve:  DefaultSolveOptions(10),
		Checks: []string{"no-such-check"},
	}); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("unknown check error = %v, want unknown-check error", err)
	}
}

// TestRunCancelled: a cancelled context must surface as an error, never as a
// bogus failing report.
func TestRunCancelled(t *testing.T) {
	c, _ := fuzz.Generate(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := Run(ctx, c, Options{Solve: DefaultSolveOptions(10)}); err == nil {
		t.Fatalf("cancelled run returned report %+v with nil error", rep)
	}
}
