package audit

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"rficlayout/internal/netlist"
)

// The metamorphic checks apply structure-preserving transformations to the
// input circuit and compare the solved outputs against the relation the
// transformation predicts. Every transform returns a deep copy — devices,
// pins and microstrips are fresh structs — so a check can never leak
// mutations into the circuit another check is solving.

// copyCircuit deep-copies the circuit: shared Technology value, fresh device
// and microstrip structs.
func copyCircuit(c *netlist.Circuit) *netlist.Circuit {
	out := netlist.NewCircuit(c.Name, c.Tech, c.AreaWidth, c.AreaHeight)
	for _, d := range c.Devices {
		dd := *d
		dd.Pins = append([]netlist.Pin(nil), d.Pins...)
		out.AddDevice(&dd)
	}
	for _, ms := range c.Microstrips {
		mm := *ms
		out.AddMicrostrip(&mm)
	}
	return out
}

// reordered returns a copy with the device and microstrip declaration order
// deterministically shuffled (seeded by the circuit name), the input of the
// reorder-invariance check: canonicalization must erase the permutation.
func reordered(c *netlist.Circuit) *netlist.Circuit {
	out := copyCircuit(c)
	h := fnv.New64a()
	h.Write([]byte(c.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	rng.Shuffle(len(out.Devices), func(i, j int) {
		out.Devices[i], out.Devices[j] = out.Devices[j], out.Devices[i]
	})
	rng.Shuffle(len(out.Microstrips), func(i, j int) {
		out.Microstrips[i], out.Microstrips[j] = out.Microstrips[j], out.Microstrips[i]
	})
	// Also reverse each device's pin declaration order; Normalized must
	// restore it.
	for _, d := range out.Devices {
		for i, j := 0, len(d.Pins)-1; i < j; i, j = i+1, j-1 {
			d.Pins[i], d.Pins[j] = d.Pins[j], d.Pins[i]
		}
	}
	return out
}

// renamed returns a copy in which every device and microstrip carries a
// fresh generated name, plus the old→new mapping. The mapping preserves
// lexicographic order (sorted old names map to sorted new names index by
// index), so the solver's name-ordered tie-breaks fire identically and the
// renamed circuit must solve to the geometrically identical layout.
func renamed(c *netlist.Circuit) (*netlist.Circuit, map[string]string) {
	out := copyCircuit(c)
	devMap := orderPreservingNames(deviceNames(out), "D")
	stripMap := orderPreservingNames(stripNames(out), "S")
	for _, d := range out.Devices {
		d.Name = devMap[d.Name]
	}
	for _, ms := range out.Microstrips {
		ms.Name = stripMap[ms.Name]
		ms.From.Device = devMap[ms.From.Device]
		ms.To.Device = devMap[ms.To.Device]
	}
	// The device index still holds the old names; rebuild via re-adding.
	fresh := netlist.NewCircuit(out.Name, out.Tech, out.AreaWidth, out.AreaHeight)
	for _, d := range out.Devices {
		fresh.AddDevice(d)
	}
	for _, ms := range out.Microstrips {
		fresh.AddMicrostrip(ms)
	}
	mapping := make(map[string]string, len(devMap)+len(stripMap))
	for k, v := range devMap {
		mapping[k] = v
	}
	for k, v := range stripMap {
		mapping[k] = v
	}
	return fresh, mapping
}

func deviceNames(c *netlist.Circuit) []string {
	out := make([]string, 0, len(c.Devices))
	for _, d := range c.Devices {
		out = append(out, d.Name)
	}
	return out
}

func stripNames(c *netlist.Circuit) []string {
	out := make([]string, 0, len(c.Microstrips))
	for _, ms := range c.Microstrips {
		out = append(out, ms.Name)
	}
	return out
}

// orderPreservingNames maps the sorted input names onto zero-padded
// "<prefix>NNNN" names, which sort in the same relative order.
func orderPreservingNames(names []string, prefix string) map[string]string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	m := make(map[string]string, len(sorted))
	for i, n := range sorted {
		m[n] = fmt.Sprintf("%s%04d", prefix, i)
	}
	return m
}

// rescaled returns a copy with every length of the problem — layout area,
// device bodies, pin offsets, strip targets and widths, and all technology
// lengths — multiplied by the integer factor k: the same problem stated in a
// k-times-finer unit.
func rescaled(c *netlist.Circuit, k int64) *netlist.Circuit {
	out := copyCircuit(c)
	out.AreaWidth *= k
	out.AreaHeight *= k
	t := out.Tech
	t.GroundDistance *= k
	t.MicrostripWidth *= k
	t.BendCompensation *= k
	t.SpacingOverride *= k
	t.PadSize *= k
	out.Tech = t
	for _, d := range out.Devices {
		d.Width *= k
		d.Height *= k
		for i := range d.Pins {
			d.Pins[i].Offset.X *= k
			d.Pins[i].Offset.Y *= k
		}
	}
	for _, ms := range out.Microstrips {
		ms.TargetLength *= k
		ms.Width *= k
	}
	return out
}

// mirroredX returns a copy reflected through a vertical axis: every pin
// offset has its X coordinate negated. Device bodies and the layout area are
// symmetric under the reflection, so the mirrored circuit describes the
// geometrically mirrored problem.
func mirroredX(c *netlist.Circuit) *netlist.Circuit {
	out := copyCircuit(c)
	for _, d := range out.Devices {
		for i := range d.Pins {
			d.Pins[i].Offset.X = -d.Pins[i].Offset.X
		}
	}
	return out
}

// rotated90 returns a copy rotated a quarter turn counter-clockwise: the
// layout area and every device body swap width and height, and every pin
// offset maps (x, y) → (−y, x). The rotated circuit states the congruent
// problem in the rotated frame — same distances, same adjacencies — so its
// optimal score equals the base problem's by symmetry, and applying the
// transform four times is the identity.
func rotated90(c *netlist.Circuit) *netlist.Circuit {
	out := copyCircuit(c)
	out.AreaWidth, out.AreaHeight = c.AreaHeight, c.AreaWidth
	for _, d := range out.Devices {
		d.Width, d.Height = d.Height, d.Width
		for i := range d.Pins {
			x, y := d.Pins[i].Offset.X, d.Pins[i].Offset.Y
			d.Pins[i].Offset.X, d.Pins[i].Offset.Y = -y, x
		}
	}
	return out
}
