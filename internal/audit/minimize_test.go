package audit

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"rficlayout/internal/circuits/fuzz"
	"rficlayout/internal/netlist"
)

// TestMinimizeShrinks: an injected structural violation (a strip whose target
// is far too long for the layout area) must survive minimization, and the
// minimized circuit must be strictly smaller while still exhibiting it.
func TestMinimizeShrinks(t *testing.T) {
	c, _ := fuzz.Generate(9)
	// The "failure": some strip demands more than half the area perimeter —
	// a cheap deterministic stand-in for a solver-level check failure.
	threshold := (c.AreaWidth + c.AreaHeight) / 2
	pred := func(_ context.Context, cand *netlist.Circuit) (string, bool) {
		for _, ms := range cand.Microstrips {
			if ms.TargetLength > threshold {
				return "strip " + ms.Name + " exceeds the perimeter budget", true
			}
		}
		return "", false
	}
	// Inject the violation into one strip.
	c.Microstrips[len(c.Microstrips)/2].TargetLength = threshold * 2

	before := len(c.Devices) + len(c.Microstrips)
	res, err := Minimize(context.Background(), c, pred)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	after := len(res.Circuit.Devices) + len(res.Circuit.Microstrips)
	if after >= before {
		t.Fatalf("minimized circuit has %d objects, input had %d", after, before)
	}
	if _, failed := pred(context.Background(), res.Circuit); !failed {
		t.Fatal("minimized circuit no longer fails the predicate")
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatalf("minimized circuit invalid: %v", err)
	}
	if res.Steps == 0 || res.Detail == "" {
		t.Fatalf("result metadata incomplete: %+v", res)
	}
	// The ideal minimum keeps the one bad strip and its two endpoint devices.
	if len(res.Circuit.Microstrips) != 1 {
		t.Errorf("minimized circuit keeps %d strips, want 1", len(res.Circuit.Microstrips))
	}
	if len(res.Circuit.Devices) > 2 {
		t.Errorf("minimized circuit keeps %d devices, want <= 2", len(res.Circuit.Devices))
	}
}

// TestMinimizeNonFailing: a circuit that does not fail comes back unchanged.
func TestMinimizeNonFailing(t *testing.T) {
	c, _ := fuzz.Generate(2)
	res, err := Minimize(context.Background(), c, func(context.Context, *netlist.Circuit) (string, bool) {
		return "", false
	})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.Steps != 0 || res.Circuit != c {
		t.Fatalf("non-failing circuit was modified: %+v", res)
	}
}

// TestWriteFixtureRoundTrip: a written fixture parses back to the identical
// canonical text.
func TestWriteFixtureRoundTrip(t *testing.T) {
	c, _ := fuzz.Generate(4)
	path := filepath.Join(t.TempDir(), "sub", "min.rfic")
	if err := WriteFixture(path, c); err != nil {
		t.Fatalf("WriteFixture: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	if string(data) != netlist.Canonical(c) {
		t.Fatal("fixture bytes differ from canonical text")
	}
	parsed, err := netlist.ParseString(string(data))
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if netlist.Canonical(parsed) != netlist.Canonical(c) {
		t.Fatal("fixture did not round-trip")
	}
}
