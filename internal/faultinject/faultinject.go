// Package faultinject is a seeded, deterministic fault-injection registry.
// Production code marks named injection points (a cache read, a pool job, an
// admission decision); a chaos harness arms a Registry with a per-point
// probability and budget, and every point then fails on a schedule that is a
// pure function of (seed, point name, occurrence index). The same seed
// always yields the identical fault schedule — injected faults reproduce
// byte-for-byte, exactly like the solver's determinism contract — which is
// what makes failure-domain tests replayable instead of flaky.
//
// Design constraints, in priority order:
//
//   - Zero cost when disabled: an injection point in a hot path (the conc
//     pool wraps every LP evaluation) is a single atomic pointer load.
//   - Deterministic schedule under concurrency: the decision for the n-th
//     occurrence of a point depends only on (seed, point, n), never on
//     goroutine interleaving. Concurrent callers may race for *which* of
//     them observes occurrence n, but the set of fired occurrences — the
//     schedule — is identical on every run.
//   - Recomputable: the registry stores only per-point counters; the full
//     schedule is re-derived from the seed on demand (WriteSchedule), so
//     archiving it costs nothing during the run.
//
// The spec grammar is point=prob[/budget], comma- or semicolon-separated:
//
//	conc.panic=0.02/2,cache.dir.read=1/3
//
// arms conc.panic at 2% per occurrence capped at 2 firings, and fails the
// first 3 cache directory reads outright. rficserve arms the global registry
// from $RFIC_FAULTS / $RFIC_FAULT_SEED, rficbench from -faults / -fault-seed.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known injection points. The registry accepts any name — these
// constants exist so the producing and consuming sides of each point cannot
// drift apart.
const (
	// PointConcPanic panics a worker-pool job before it runs (internal/conc),
	// exercising the per-job panic isolation of engine.Run and server.runJob.
	PointConcPanic = "conc.panic"
	// PointConcDelay delays a worker-pool job by a millisecond, exercising
	// completion-order robustness without changing any result.
	PointConcDelay = "conc.delay"
	// PointEnginePanic panics a job inside engine.Run before the flow starts.
	PointEnginePanic = "engine.panic"
	// PointServerAdmit fails server admission as if the queue were full
	// (503, retryable).
	PointServerAdmit = "server.admit"
	// PointCacheRead fails a persistent-cache read with a transient error
	// (retried a bounded number of times, then a miss).
	PointCacheRead = "cache.dir.read"
	// PointCacheWrite fails a persistent-cache write (the entry is dropped).
	PointCacheWrite = "cache.dir.write"
	// PointCacheRename fails the temp-file rename that commits a
	// persistent-cache write (the entry is dropped).
	PointCacheRename = "cache.dir.rename"
	// PointCacheTorn truncates a persistent-cache write mid-entry: the file
	// commits but holds torn JSON, exercising the checksum/quarantine path.
	PointCacheTorn = "cache.dir.torn"
	// PointClusterDial fails a peer-forward attempt before the request is
	// issued, as if the owner node refused the connection.
	PointClusterDial = "cluster.dial"
	// PointClusterForward fails a peer-forward attempt after the request was
	// issued, as if the connection died mid-exchange.
	PointClusterForward = "cluster.forward"
	// PointClusterBody fails reading the owner's response body, as if the
	// connection was cut after the status line arrived.
	PointClusterBody = "cluster.body"
)

// ErrInjected is the target every injected I/O error matches via errors.Is.
// Consumers treat such errors as transient: bounded deterministic retry is
// safe because the schedule is deterministic.
var ErrInjected = errors.New("faultinject: injected error")

// pointError is the concrete injected error; it names its point so logs can
// attribute failures to the schedule.
type pointError struct{ point string }

func (e *pointError) Error() string        { return "faultinject: injected error at " + e.point }
func (e *pointError) Is(target error) bool { return target == ErrInjected }

// Panic is the value thrown by PanicAt. The message deliberately excludes
// the occurrence index so recovered-panic errors stay byte-identical across
// replays of the same schedule.
type Panic struct{ Point string }

func (p Panic) String() string { return "faultinject: injected panic at " + p.Point }

// PointSpec arms one injection point.
type PointSpec struct {
	// Prob is the firing probability per occurrence, in [0, 1].
	Prob float64
	// Budget caps how many occurrences may fire; zero or negative means
	// unlimited.
	Budget int
}

// Plan maps point names to their specs.
type Plan map[string]PointSpec

// ParsePlan parses the point=prob[/budget] spec grammar. An empty spec is a
// valid empty plan.
func ParsePlan(spec string) (Plan, error) {
	plan := Plan{}
	for _, field := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, rest, ok := strings.Cut(field, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: %q is not point=prob[/budget]", field)
		}
		probStr, budgetStr, hasBudget := strings.Cut(rest, "/")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultinject: %q: probability must be in [0,1]", field)
		}
		spec := PointSpec{Prob: prob}
		if hasBudget {
			b, err := strconv.Atoi(budgetStr)
			if err != nil || b <= 0 {
				return nil, fmt.Errorf("faultinject: %q: budget must be a positive integer", field)
			}
			spec.Budget = b
		}
		plan[name] = spec
	}
	return plan, nil
}

// String renders the plan back into the spec grammar, points sorted by name.
func (p Plan) String() string {
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		s := p[name]
		if s.Budget > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g/%d", name, s.Prob, s.Budget))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%g", name, s.Prob))
		}
	}
	return strings.Join(parts, ",")
}

// pointState tracks one armed point. The mutex serializes occurrence
// assignment, which is what makes the runtime decisions agree exactly with
// the pure recomputation in WriteSchedule.
type pointState struct {
	spec  PointSpec
	mu    sync.Mutex
	hits  int64
	fired int64
}

// Registry is an armed fault plan. A nil *Registry is valid and never fires.
type Registry struct {
	seed int64
	plan Plan
	pts  map[string]*pointState
}

// New arms a plan under a seed.
func New(plan Plan, seed int64) *Registry {
	r := &Registry{seed: seed, plan: plan, pts: make(map[string]*pointState, len(plan))}
	for name, spec := range plan {
		r.pts[name] = &pointState{spec: spec}
	}
	return r
}

// Seed returns the registry's seed.
func (r *Registry) Seed() int64 { return r.seed }

// Plan returns the armed plan.
func (r *Registry) Plan() Plan { return r.plan }

// Fire records one occurrence of the point and reports whether it fires.
// The decision for the n-th occurrence is decide(seed, point, n) gated by
// the point's remaining budget; unarmed points never fire (and are not
// counted — an unarmed point costs one map lookup).
func (r *Registry) Fire(point string) bool {
	if r == nil {
		return false
	}
	st, ok := r.pts[point]
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.hits
	st.hits++
	if st.spec.Budget > 0 && st.fired >= int64(st.spec.Budget) {
		return false
	}
	if !decide(r.seed, point, n, st.spec.Prob) {
		return false
	}
	st.fired++
	return true
}

// PointCount reports one point's occurrence bookkeeping.
type PointCount struct {
	Hits  int64 `json:"hits"`
	Fired int64 `json:"fired"`
}

// Counts snapshots every armed point's hit/fired counters. Points that were
// never hit are included (zero counts) so consumers can see the full plan.
func (r *Registry) Counts() map[string]PointCount {
	if r == nil {
		return nil
	}
	out := make(map[string]PointCount, len(r.pts))
	for name, st := range r.pts {
		st.mu.Lock()
		out[name] = PointCount{Hits: st.hits, Fired: st.fired}
		st.mu.Unlock()
	}
	return out
}

// FiredTotal sums the fired counters across the named points (all points
// when none are named).
func (r *Registry) FiredTotal(points ...string) int64 {
	counts := r.Counts()
	var total int64
	if len(points) == 0 {
		for _, c := range counts {
			total += c.Fired
		}
		return total
	}
	for _, p := range points {
		total += counts[p].Fired
	}
	return total
}

// scheduleEvent is one fired occurrence in the schedule JSONL; the summary
// variant (hits/fired set, occurrence -1) closes out each point.
type scheduleEvent struct {
	Point      string `json:"point"`
	Occurrence int64  `json:"occurrence,omitempty"`
	Fired      *bool  `json:"fired,omitempty"`
	Hits       *int64 `json:"hits,omitempty"`
	Total      *int64 `json:"total_fired,omitempty"`
}

// WriteSchedule re-derives the fault schedule of this run and writes it as
// JSONL: one line per fired occurrence, then one summary line per point,
// points in name order. The output is a pure function of (seed, plan, hit
// counts), so two runs with the same seed and the same deterministic
// workload produce byte-identical schedules — that file is the replayable
// record CI archives.
func (r *Registry) WriteSchedule(w io.Writer) error {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.pts))
	for name := range r.pts {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := r.Counts()
	for _, name := range names {
		c := counts[name]
		spec := r.plan[name]
		var fired int64
		for n := int64(0); n < c.Hits; n++ {
			if spec.Budget > 0 && fired >= int64(spec.Budget) {
				break
			}
			if !decide(r.seed, name, n, spec.Prob) {
				continue
			}
			fired++
			t := true
			if err := writeJSONLine(w, scheduleEvent{Point: name, Occurrence: n, Fired: &t}); err != nil {
				return err
			}
		}
		hits, total := c.Hits, c.Fired
		if err := writeJSONLine(w, scheduleEvent{Point: name, Hits: &hits, Total: &total}); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONLine hand-renders one schedule line: field order must be stable
// and encoding/json already guarantees that for a struct, but a tiny local
// helper keeps the Write error handling in one place.
func writeJSONLine(w io.Writer, ev scheduleEvent) error {
	var b strings.Builder
	b.WriteString(`{"point":` + strconv.Quote(ev.Point))
	if ev.Fired != nil {
		fmt.Fprintf(&b, `,"occurrence":%d,"fired":true`, ev.Occurrence)
	}
	if ev.Hits != nil {
		fmt.Fprintf(&b, `,"hits":%d,"total_fired":%d`, *ev.Hits, *ev.Total)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// decide is the pure per-occurrence draw: a splitmix64 finalizer over the
// seed, the point-name hash and the occurrence index, mapped to [0,1) and
// compared against the probability. Integer-only math keeps it identical on
// every platform.
func decide(seed int64, point string, n int64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	io.WriteString(h, point)
	x := uint64(seed) ^ h.Sum64() ^ (uint64(n)+1)*0x9e3779b97f4a7c15
	x = mix64(x)
	return float64(x>>11)/(1<<53) < prob
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// active is the process-global registry injection points consult. Injection
// points live deep inside layers (the conc pool, cache I/O) whose APIs should
// not grow a fault parameter; a single atomic pointer is the zero-cost
// disabled path those hot paths need.
var active atomic.Pointer[Registry]

// Enable installs the registry globally. Passing nil disables injection.
func Enable(r *Registry) {
	if r == nil {
		active.Store(nil)
		return
	}
	active.Store(r)
}

// Disable removes the global registry.
func Disable() { active.Store(nil) }

// Active returns the installed registry, nil when injection is disabled.
func Active() *Registry { return active.Load() }

// Fired records one occurrence of the point on the global registry and
// reports whether it fires. Disabled: one atomic load, no allocation.
func Fired(point string) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	return r.Fire(point)
}

// ErrorAt returns an injected transient error when the point fires, nil
// otherwise.
func ErrorAt(point string) error {
	if Fired(point) {
		return &pointError{point: point}
	}
	return nil
}

// PanicAt panics with a deterministic value when the point fires.
func PanicAt(point string) {
	if Fired(point) {
		panic(Panic{Point: point})
	}
}

// SleepAt sleeps for d when the point fires — a scheduling perturbation that
// must never change results (the determinism contract's whole claim).
func SleepAt(point string, d time.Duration) {
	if Fired(point) {
		time.Sleep(d)
	}
}
