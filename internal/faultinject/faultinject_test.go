package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec    string
		want    Plan
		wantErr bool
	}{
		{spec: "", want: Plan{}},
		{spec: "  ,; ", want: Plan{}},
		{spec: "cache.dir.read=1", want: Plan{"cache.dir.read": {Prob: 1}}},
		{spec: "cache.dir.read=0.5/3", want: Plan{"cache.dir.read": {Prob: 0.5, Budget: 3}}},
		{
			spec: "conc.panic=0.02/2,cache.dir.torn=1/1;server.admit=0.1",
			want: Plan{
				"conc.panic":     {Prob: 0.02, Budget: 2},
				"cache.dir.torn": {Prob: 1, Budget: 1},
				"server.admit":   {Prob: 0.1},
			},
		},
		{spec: "noequals", wantErr: true},
		{spec: "=0.5", wantErr: true},
		{spec: "p=1.5", wantErr: true},
		{spec: "p=-0.1", wantErr: true},
		{spec: "p=abc", wantErr: true},
		{spec: "p=0.5/0", wantErr: true},
		{spec: "p=0.5/-1", wantErr: true},
		{spec: "p=0.5/x", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePlan(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlan(%q): want error, got %v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParsePlan(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for name, spec := range tc.want {
			if got[name] != spec {
				t.Errorf("ParsePlan(%q)[%s] = %v, want %v", tc.spec, name, got[name], spec)
			}
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	plan, err := ParsePlan("conc.panic=0.02/2,cache.dir.read=1/3,server.admit=0.25")
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	want := "cache.dir.read=1/3,conc.panic=0.02/2,server.admit=0.25"
	if s != want {
		t.Fatalf("Plan.String() = %q, want %q", s, want)
	}
	back, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if back.String() != want {
		t.Fatalf("round trip = %q, want %q", back.String(), want)
	}
}

// Same seed, same sequence of Fire calls: identical decisions. Different
// seed: some decision differs (with overwhelming probability at prob 0.5
// over 200 draws).
func TestFireDeterministicPerSeed(t *testing.T) {
	plan := Plan{"p": {Prob: 0.5}}
	run := func(seed int64) []bool {
		r := New(plan, seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.Fire("p")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at occurrence %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-draw schedules")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 50 || fired > 150 {
		t.Fatalf("prob 0.5 fired %d/200 times — draw badly biased", fired)
	}
}

func TestProbEdges(t *testing.T) {
	r := New(Plan{"never": {Prob: 0}, "always": {Prob: 1}}, 7)
	for i := 0; i < 50; i++ {
		if r.Fire("never") {
			t.Fatal("prob 0 fired")
		}
		if !r.Fire("always") {
			t.Fatal("prob 1 did not fire")
		}
	}
	if r.Fire("unarmed") {
		t.Fatal("unarmed point fired")
	}
}

func TestBudget(t *testing.T) {
	r := New(Plan{"p": {Prob: 1, Budget: 3}}, 1)
	fired := 0
	for i := 0; i < 10; i++ {
		if r.Fire("p") {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("budget 3: fired %d times", fired)
	}
	c := r.Counts()["p"]
	if c.Hits != 10 || c.Fired != 3 {
		t.Fatalf("counts = %+v, want hits 10 fired 3", c)
	}
	if got := r.FiredTotal("p"); got != 3 {
		t.Fatalf("FiredTotal = %d, want 3", got)
	}
}

// Concurrent Fire calls must agree with the recomputed schedule: the set of
// fired occurrences is a pure function of (seed, plan, hits), regardless of
// which goroutine observed which occurrence.
func TestConcurrentFireMatchesSchedule(t *testing.T) {
	plan := Plan{"p": {Prob: 0.3, Budget: 20}}
	r := New(plan, 99)
	const hits = 512
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < hits/8; i++ {
				r.Fire("p")
			}
		}()
	}
	wg.Wait()

	c := r.Counts()["p"]
	if c.Hits != hits {
		t.Fatalf("hits = %d, want %d", c.Hits, hits)
	}
	// Recompute the expected fired count the way WriteSchedule does.
	expect := int64(0)
	for n := int64(0); n < hits; n++ {
		if expect >= 20 {
			break
		}
		if decide(99, "p", n, 0.3) {
			expect++
		}
	}
	if c.Fired != expect {
		t.Fatalf("fired = %d, recomputed schedule says %d", c.Fired, expect)
	}
}

func TestWriteScheduleReplay(t *testing.T) {
	run := func() *bytes.Buffer {
		r := New(Plan{"a": {Prob: 0.4, Budget: 5}, "b": {Prob: 1, Budget: 2}}, 1234)
		for i := 0; i < 40; i++ {
			r.Fire("a")
		}
		for i := 0; i < 10; i++ {
			r.Fire("b")
		}
		var buf bytes.Buffer
		if err := r.WriteSchedule(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	first, second := run(), run()
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("schedule not byte-identical across replays:\n%s\nvs\n%s", first, second)
	}
	out := first.String()
	if !strings.Contains(out, `"point":"b","occurrence":0,"fired":true`) {
		t.Fatalf("schedule missing b occurrence 0:\n%s", out)
	}
	if !strings.Contains(out, `"hits":40`) || !strings.Contains(out, `"hits":10,"total_fired":2`) {
		t.Fatalf("schedule missing summary lines:\n%s", out)
	}
	// Points must appear in sorted order: every "a" line before any "b" line.
	if strings.Index(out, `"point":"b"`) < strings.LastIndex(out, `"point":"a"`) {
		t.Fatalf("schedule points not sorted:\n%s", out)
	}
}

func TestGlobalHelpers(t *testing.T) {
	Disable()
	t.Cleanup(Disable)
	if Fired("p") {
		t.Fatal("disabled registry fired")
	}
	if err := ErrorAt("p"); err != nil {
		t.Fatalf("disabled ErrorAt = %v", err)
	}
	PanicAt("p") // must not panic when disabled
	SleepAt("p", time.Hour)

	Enable(New(Plan{"p": {Prob: 1, Budget: 2}}, 5))
	if Active() == nil {
		t.Fatal("Active() nil after Enable")
	}
	err := ErrorAt("p")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrorAt = %v, want ErrInjected match", err)
	}
	if want := "faultinject: injected error at p"; err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
	func() {
		defer func() {
			v := recover()
			p, ok := v.(Panic)
			if !ok {
				t.Fatalf("recovered %v (%T), want faultinject.Panic", v, v)
			}
			if want := "faultinject: injected panic at p"; p.String() != want {
				t.Fatalf("panic message %q, want %q", p.String(), want)
			}
		}()
		PanicAt("p")
	}()
	// Budget exhausted: no further fires.
	if Fired("p") {
		t.Fatal("fired past budget")
	}
	Disable()
	if Fired("p") {
		t.Fatal("fired after Disable")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Fire("p") {
		t.Fatal("nil registry fired")
	}
	if r.Counts() != nil {
		t.Fatal("nil registry counts non-nil")
	}
	if err := r.WriteSchedule(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.FiredTotal() != 0 {
		t.Fatal("nil registry FiredTotal non-zero")
	}
}
