// Package geom provides the fixed-point planar geometry primitives used by
// the RFIC layout generator: points, rectangles, axis-parallel segments,
// intervals, polylines and the bounding-box operations (expansion, overlap
// area, distance) that back the spacing and non-overlap rules of the paper.
//
// All coordinates are integer nanometres (Coord). The paper quotes dimensions
// in micrometres; use FromMicrons / Microns to convert. Integer coordinates
// keep the ILP formulation exact and the design-rule checks free of floating
// point epsilons.
package geom

import (
	"fmt"
	"math"
)

// Coord is a coordinate or length in integer nanometres.
type Coord = int64

// Nanometre scale helpers.
const (
	// Nanometre is the base unit.
	Nanometre Coord = 1
	// Micron is 1000 nanometres.
	Micron Coord = 1000
)

// FromMicrons converts a micrometre value (possibly fractional) to Coord
// nanometres, rounding to the nearest integer.
func FromMicrons(um float64) Coord {
	return Coord(math.Round(um * float64(Micron)))
}

// Microns converts a Coord in nanometres to micrometres.
func Microns(c Coord) float64 {
	return float64(c) / float64(Micron)
}

// Point is a point in the layout plane.
type Point struct {
	X, Y Coord
}

// Pt constructs a Point.
func Pt(x, y Coord) Point { return Point{X: x, Y: y} }

// PtMicrons constructs a Point from micrometre coordinates.
func PtMicrons(x, y float64) Point {
	return Point{X: FromMicrons(x), Y: FromMicrons(y)}
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns the point reflected through the origin.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// ManhattanTo returns the L1 distance between p and q.
func (p Point) ManhattanTo(q Point) Coord {
	return AbsCoord(p.X-q.X) + AbsCoord(p.Y-q.Y)
}

// EuclideanTo returns the L2 distance between p and q as a float64.
func (p Point) EuclideanTo(q Point) float64 {
	dx := float64(p.X - q.X)
	dy := float64(p.Y - q.Y)
	return math.Hypot(dx, dy)
}

// Eq reports whether p and q are the same point.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// String implements fmt.Stringer with micrometre formatting.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)µm", Microns(p.X), Microns(p.Y))
}

// AbsCoord returns the absolute value of a Coord.
func AbsCoord(c Coord) Coord {
	if c < 0 {
		return -c
	}
	return c
}

// MinCoord returns the smaller of a and b.
func MinCoord(a, b Coord) Coord {
	if a < b {
		return a
	}
	return b
}

// MaxCoord returns the larger of a and b.
func MaxCoord(a, b Coord) Coord {
	if a > b {
		return a
	}
	return b
}

// ClampCoord restricts v to the closed interval [lo, hi].
func ClampCoord(v, lo, hi Coord) Coord {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Orientation is a device rotation restricted to multiples of 90 degrees.
type Orientation int

// The four supported orientations. Rotations are counter-clockwise.
const (
	R0 Orientation = iota
	R90
	R180
	R270
)

// NumOrientations is the count of distinct orientations.
const NumOrientations = 4

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	default:
		return fmt.Sprintf("Orientation(%d)", int(o))
	}
}

// Normalize maps any integer orientation onto {R0, R90, R180, R270}.
func (o Orientation) Normalize() Orientation {
	n := int(o) % NumOrientations
	if n < 0 {
		n += NumOrientations
	}
	return Orientation(n)
}

// Plus composes two rotations.
func (o Orientation) Plus(p Orientation) Orientation {
	return (o + p).Normalize()
}

// SwapsDimensions reports whether the rotation exchanges width and height.
func (o Orientation) SwapsDimensions() bool {
	n := o.Normalize()
	return n == R90 || n == R270
}

// RotateOffset rotates a pin offset (relative to a device centre) by the
// orientation. The device centre is the rotation pivot.
func (o Orientation) RotateOffset(p Point) Point {
	switch o.Normalize() {
	case R90:
		return Point{X: -p.Y, Y: p.X}
	case R180:
		return Point{X: -p.X, Y: -p.Y}
	case R270:
		return Point{X: p.Y, Y: -p.X}
	default:
		return p
	}
}

// Direction is one of the four axis-parallel routing directions used for the
// chain-point direction variables of the ILP model (Figure 4 of the paper).
type Direction int

// The four routing directions.
const (
	Up Direction = iota
	Down
	Left
	Right
)

// NumDirections is the count of routing directions.
const NumDirections = 4

// Directions lists all directions in a stable order.
var Directions = [NumDirections]Direction{Up, Down, Left, Right}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the reversed direction.
func (d Direction) Opposite() Direction {
	switch d {
	case Up:
		return Down
	case Down:
		return Up
	case Left:
		return Right
	case Right:
		return Left
	default:
		return d
	}
}

// Horizontal reports whether the direction is Left or Right.
func (d Direction) Horizontal() bool { return d == Left || d == Right }

// Vertical reports whether the direction is Up or Down.
func (d Direction) Vertical() bool { return d == Up || d == Down }

// Perpendicular reports whether d and e form a 90° bend.
func (d Direction) Perpendicular(e Direction) bool {
	return d.Horizontal() != e.Horizontal()
}

// Delta returns the unit step of the direction.
func (d Direction) Delta() Point {
	switch d {
	case Up:
		return Point{0, 1}
	case Down:
		return Point{0, -1}
	case Left:
		return Point{-1, 0}
	case Right:
		return Point{1, 0}
	default:
		return Point{}
	}
}

// DirectionBetween returns the axis-parallel direction from a to b and true
// when the two points differ along exactly one axis; otherwise it returns
// false (coincident or diagonal points have no single direction).
func DirectionBetween(a, b Point) (Direction, bool) {
	dx := b.X - a.X
	dy := b.Y - a.Y
	switch {
	case dx == 0 && dy > 0:
		return Up, true
	case dx == 0 && dy < 0:
		return Down, true
	case dy == 0 && dx > 0:
		return Right, true
	case dy == 0 && dx < 0:
		return Left, true
	default:
		return Up, false
	}
}
