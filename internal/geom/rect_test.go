package geom

import (
	"testing"
	"testing/quick"
)

func TestRNormalizesCorners(t *testing.T) {
	r := R(10, 20, -5, 3)
	if !r.Min.Eq(Pt(-5, 3)) || !r.Max.Eq(Pt(10, 20)) {
		t.Errorf("R did not normalise: %v", r)
	}
	if !r.Valid() {
		t.Error("normalised rect not valid")
	}
}

func TestRectBasicProps(t *testing.T) {
	r := R(0, 0, 10, 4)
	if r.Width() != 10 || r.Height() != 4 {
		t.Errorf("dims = %d x %d", r.Width(), r.Height())
	}
	if r.Area() != 40 {
		t.Errorf("area = %d", r.Area())
	}
	if !r.Center().Eq(Pt(5, 2)) {
		t.Errorf("center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !R(3, 3, 3, 8).Empty() {
		t.Error("zero-width rect should be empty")
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Pt(100, 100), 20, 10)
	if r.Width() != 20 || r.Height() != 10 {
		t.Errorf("dims = %d x %d", r.Width(), r.Height())
	}
	if !r.Center().Eq(Pt(100, 100)) {
		t.Errorf("center = %v", r.Center())
	}
	// Odd dimensions still produce the requested size.
	r = RectFromCenter(Pt(0, 0), 7, 3)
	if r.Width() != 7 || r.Height() != 3 {
		t.Errorf("odd dims = %d x %d", r.Width(), r.Height())
	}
}

func TestRectTranslate(t *testing.T) {
	r := R(0, 0, 2, 2).Translate(Pt(5, -1))
	if !r.Eq(R(5, -1, 7, 1)) {
		t.Errorf("translate = %v", r)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(10, 10, 20, 20)
	e := r.Expand(5)
	if !e.Eq(R(5, 5, 25, 25)) {
		t.Errorf("expand = %v", e)
	}
	// Shrinking past degeneracy collapses to the centre but stays valid.
	s := R(0, 0, 4, 4).Expand(-10)
	if !s.Valid() {
		t.Errorf("over-shrunk rect invalid: %v", s)
	}
	if !s.Empty() {
		t.Errorf("over-shrunk rect should be empty: %v", s)
	}
	xy := r.ExpandXY(1, 2)
	if !xy.Eq(R(9, 8, 21, 22)) {
		t.Errorf("ExpandXY = %v", xy)
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.ContainsPoint(Pt(0, 0)) || !r.ContainsPoint(Pt(10, 10)) || !r.ContainsPoint(Pt(5, 5)) {
		t.Error("ContainsPoint border/interior failed")
	}
	if r.ContainsPoint(Pt(11, 5)) || r.ContainsPoint(Pt(5, -1)) {
		t.Error("ContainsPoint exterior failed")
	}
	if !r.ContainsRect(R(2, 2, 8, 8)) || !r.ContainsRect(r) {
		t.Error("ContainsRect failed")
	}
	if r.ContainsRect(R(2, 2, 11, 8)) {
		t.Error("ContainsRect accepted protruding rect")
	}
}

func TestRectOverlap(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(10, 0, 20, 10)  // touches a at x=10
	d := R(20, 20, 30, 30) // disjoint

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if a.Overlaps(c) {
		t.Error("touching rects should not count as overlapping")
	}
	if a.Overlaps(d) {
		t.Error("disjoint rects reported overlapping")
	}
	if got := a.OverlapArea(b); got != 25 {
		t.Errorf("overlap area = %d, want 25", got)
	}
	if got := a.OverlapArea(d); got != 0 {
		t.Errorf("disjoint overlap area = %d, want 0", got)
	}
	dh, dv := a.OverlapDims(b)
	if dh != 5 || dv != 5 {
		t.Errorf("overlap dims = %d,%d", dh, dv)
	}
	dh, dv = a.OverlapDims(d)
	if dh != 0 || dv != 0 {
		t.Errorf("disjoint overlap dims = %d,%d", dh, dv)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); !got.Eq(R(5, 5, 10, 10)) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Union(b); !got.Eq(R(0, 0, 15, 15)) {
		t.Errorf("union = %v", got)
	}
	disjoint := a.Intersect(R(20, 20, 30, 30))
	if !disjoint.Empty() || !disjoint.Valid() {
		t.Errorf("disjoint intersect = %v", disjoint)
	}
}

func TestRectDistance(t *testing.T) {
	a := R(0, 0, 10, 10)
	if got := a.Distance(R(15, 0, 20, 10)); got != 5 {
		t.Errorf("horizontal gap = %d, want 5", got)
	}
	if got := a.Distance(R(0, 17, 10, 20)); got != 7 {
		t.Errorf("vertical gap = %d, want 7", got)
	}
	if got := a.Distance(R(5, 5, 15, 15)); got != 0 {
		t.Errorf("overlapping distance = %d, want 0", got)
	}
	if got := a.Distance(R(13, 14, 20, 20)); got != 4 {
		t.Errorf("diagonal distance = %d, want 4 (max of gaps)", got)
	}
	if got := a.ManhattanGap(R(13, 14, 20, 20)); got != 7 {
		t.Errorf("manhattan gap = %d, want 7", got)
	}
}

func TestSpacingViaExpandedBoxes(t *testing.T) {
	// The paper's rule: expanding each shape by t and requiring non-overlap
	// of the expanded boxes enforces a spacing of 2t between the shapes.
	const tDist = 5000 // 5 µm
	a := R(0, 0, 10000, 10000)
	farEnough := R(20000, 0, 30000, 10000) // gap 10000 = 2t
	tooClose := R(19999, 0, 30000, 10000)  // gap 9999 < 2t
	if a.Expand(tDist).Overlaps(farEnough.Expand(tDist)) {
		t.Error("boxes exactly 2t apart must not violate the expanded-box rule")
	}
	if !a.Expand(tDist).Overlaps(tooClose.Expand(tDist)) {
		t.Error("boxes closer than 2t must violate the expanded-box rule")
	}
}

func TestRectRotateAbout(t *testing.T) {
	r := R(0, 0, 10, 4)
	rot := r.RotateAbout(Pt(0, 0), R90)
	if rot.Width() != 4 || rot.Height() != 10 {
		t.Errorf("rotated dims = %d x %d", rot.Width(), rot.Height())
	}
	if !r.RotateAbout(Pt(5, 2), R180).Eq(r) {
		t.Error("180° rotation about centre should map the rect onto itself")
	}
}

func TestBoundingRectAndUnionAll(t *testing.T) {
	r := BoundingRect(Pt(3, 5), Pt(-1, 2), Pt(10, -4))
	if !r.Eq(R(-1, -4, 10, 5)) {
		t.Errorf("BoundingRect = %v", r)
	}
	u := UnionAll(R(0, 0, 1, 1), R(5, 5, 6, 6), R(-2, 0, 0, 3))
	if !u.Eq(R(-2, 0, 6, 6)) {
		t.Errorf("UnionAll = %v", u)
	}
}

func TestBoundingRectPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect() should panic with no points")
		}
	}()
	BoundingRect()
}

func TestUnionAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionAll() should panic with no rects")
		}
	}()
	UnionAll()
}

func TestRectCorners(t *testing.T) {
	c := R(0, 0, 4, 2).Corners()
	want := [4]Point{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(0, 2)}
	if c != want {
		t.Errorf("corners = %v", c)
	}
}

// quickRect builds a well-formed rectangle from arbitrary int16 seeds.
func quickRect(x0, y0, w, h int16) Rect {
	ww := Coord(w)
	hh := Coord(h)
	if ww < 0 {
		ww = -ww
	}
	if hh < 0 {
		hh = -hh
	}
	return R(Coord(x0), Coord(y0), Coord(x0)+ww, Coord(y0)+hh)
}

func TestRectPropertyIntersectionSymmetricAndContained(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 int16) bool {
		a := quickRect(x0, y0, w0, h0)
		b := quickRect(x1, y1, w1, h1)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if !ab.Eq(ba) {
			return false
		}
		if !ab.Empty() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			return false
		}
		// Overlap area is symmetric and bounded by each area.
		if a.OverlapArea(b) != b.OverlapArea(a) {
			return false
		}
		if a.OverlapArea(b) > a.Area() || a.OverlapArea(b) > b.Area() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyUnionContainsBoth(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 int16) bool {
		a := quickRect(x0, y0, w0, h0)
		b := quickRect(x1, y1, w1, h1)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyOverlapIffZeroDistance(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 int16) bool {
		a := quickRect(x0, y0, w0, h0)
		b := quickRect(x1, y1, w1, h1)
		if a.Empty() || b.Empty() {
			return true
		}
		if a.Overlaps(b) {
			return a.Distance(b) == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
