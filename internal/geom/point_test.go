package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromMicronsRoundTrip(t *testing.T) {
	cases := []struct {
		um   float64
		want Coord
	}{
		{0, 0},
		{1, 1000},
		{0.5, 500},
		{890, 890000},
		{615, 615000},
		{0.0004, 0},
		{0.0006, 1},
		{-2.5, -2500},
	}
	for _, c := range cases {
		if got := FromMicrons(c.um); got != c.want {
			t.Errorf("FromMicrons(%v) = %d, want %d", c.um, got, c.want)
		}
	}
	if got := Microns(2500); got != 2.5 {
		t.Errorf("Microns(2500) = %v, want 2.5", got)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Neg(); !got.Eq(Pt(-3, -4)) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.ManhattanTo(q); got != 6 {
		t.Errorf("ManhattanTo = %d, want 6", got)
	}
	if got := p.EuclideanTo(Pt(0, 0)); math.Abs(got-5) > 1e-12 {
		t.Errorf("EuclideanTo = %v, want 5", got)
	}
}

func TestPtMicrons(t *testing.T) {
	p := PtMicrons(1.5, -2)
	if !p.Eq(Pt(1500, -2000)) {
		t.Errorf("PtMicrons = %v", p)
	}
}

func TestCoordHelpers(t *testing.T) {
	if AbsCoord(-7) != 7 || AbsCoord(7) != 7 || AbsCoord(0) != 0 {
		t.Error("AbsCoord wrong")
	}
	if MinCoord(3, 5) != 3 || MinCoord(5, 3) != 3 {
		t.Error("MinCoord wrong")
	}
	if MaxCoord(3, 5) != 5 || MaxCoord(5, 3) != 5 {
		t.Error("MaxCoord wrong")
	}
	if ClampCoord(7, 0, 5) != 5 || ClampCoord(-2, 0, 5) != 0 || ClampCoord(3, 0, 5) != 3 {
		t.Error("ClampCoord wrong")
	}
}

func TestOrientationNormalize(t *testing.T) {
	if Orientation(5).Normalize() != R90 {
		t.Errorf("Normalize(5) = %v", Orientation(5).Normalize())
	}
	if Orientation(-1).Normalize() != R270 {
		t.Errorf("Normalize(-1) = %v", Orientation(-1).Normalize())
	}
	if R90.Plus(R270) != R0 {
		t.Errorf("R90+R270 = %v", R90.Plus(R270))
	}
}

func TestOrientationSwapsDimensions(t *testing.T) {
	if R0.SwapsDimensions() || R180.SwapsDimensions() {
		t.Error("R0/R180 should not swap dimensions")
	}
	if !R90.SwapsDimensions() || !R270.SwapsDimensions() {
		t.Error("R90/R270 should swap dimensions")
	}
}

func TestRotateOffset(t *testing.T) {
	p := Pt(10, 0)
	if got := R90.RotateOffset(p); !got.Eq(Pt(0, 10)) {
		t.Errorf("R90 rotate = %v", got)
	}
	if got := R180.RotateOffset(p); !got.Eq(Pt(-10, 0)) {
		t.Errorf("R180 rotate = %v", got)
	}
	if got := R270.RotateOffset(p); !got.Eq(Pt(0, -10)) {
		t.Errorf("R270 rotate = %v", got)
	}
	if got := R0.RotateOffset(p); !got.Eq(p) {
		t.Errorf("R0 rotate = %v", got)
	}
}

func TestRotateOffsetComposition(t *testing.T) {
	// Property: rotating twice by R90 equals rotating once by R180.
	f := func(x, y int16) bool {
		p := Pt(Coord(x), Coord(y))
		return R90.RotateOffset(R90.RotateOffset(p)).Eq(R180.RotateOffset(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateOffsetPreservesManhattanNorm(t *testing.T) {
	f := func(x, y int16) bool {
		p := Pt(Coord(x), Coord(y))
		origin := Pt(0, 0)
		n := p.ManhattanTo(origin)
		for _, o := range []Orientation{R0, R90, R180, R270} {
			if o.RotateOffset(p).ManhattanTo(origin) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectionOpposite(t *testing.T) {
	for _, d := range Directions {
		if d.Opposite().Opposite() != d {
			t.Errorf("double opposite of %v != itself", d)
		}
		if d.Opposite() == d {
			t.Errorf("opposite of %v equals itself", d)
		}
	}
	if Up.Opposite() != Down || Left.Opposite() != Right {
		t.Error("opposite pairs wrong")
	}
}

func TestDirectionAxes(t *testing.T) {
	if !Up.Vertical() || !Down.Vertical() || Up.Horizontal() {
		t.Error("vertical classification wrong")
	}
	if !Left.Horizontal() || !Right.Horizontal() || Left.Vertical() {
		t.Error("horizontal classification wrong")
	}
	if !Up.Perpendicular(Left) || Up.Perpendicular(Down) {
		t.Error("perpendicular classification wrong")
	}
}

func TestDirectionDelta(t *testing.T) {
	for _, d := range Directions {
		delta := d.Delta()
		got, ok := DirectionBetween(Pt(0, 0), delta)
		if !ok || got != d {
			t.Errorf("DirectionBetween(origin, delta(%v)) = %v, %v", d, got, ok)
		}
	}
}

func TestDirectionBetween(t *testing.T) {
	cases := []struct {
		a, b Point
		d    Direction
		ok   bool
	}{
		{Pt(0, 0), Pt(0, 5), Up, true},
		{Pt(0, 0), Pt(0, -5), Down, true},
		{Pt(0, 0), Pt(5, 0), Right, true},
		{Pt(0, 0), Pt(-5, 0), Left, true},
		{Pt(0, 0), Pt(0, 0), Up, false},
		{Pt(0, 0), Pt(3, 3), Up, false},
	}
	for _, c := range cases {
		d, ok := DirectionBetween(c.a, c.b)
		if ok != c.ok || (ok && d != c.d) {
			t.Errorf("DirectionBetween(%v,%v) = %v,%v; want %v,%v", c.a, c.b, d, ok, c.d, c.ok)
		}
	}
}

func TestStringers(t *testing.T) {
	// Smoke tests for String methods; they must not panic and must be
	// non-empty, including for out-of-range values.
	if Pt(1000, 2000).String() == "" {
		t.Error("empty Point string")
	}
	for _, o := range []Orientation{R0, R90, R180, R270, Orientation(9)} {
		if o.String() == "" {
			t.Error("empty Orientation string")
		}
	}
	for _, d := range []Direction{Up, Down, Left, Right, Direction(9)} {
		if d.String() == "" {
			t.Error("empty Direction string")
		}
	}
}
