package geom

import (
	"testing"
	"testing/quick"
)

func TestSegBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(100, 0), 10)
	if !s.Horizontal() || s.Vertical() {
		t.Error("horizontal segment misclassified")
	}
	if s.Length() != 100 {
		t.Errorf("length = %d", s.Length())
	}
	d, ok := s.Direction()
	if !ok || d != Right {
		t.Errorf("direction = %v,%v", d, ok)
	}
	v := Seg(Pt(0, 0), Pt(0, -30), 10)
	if !v.Vertical() || v.Horizontal() {
		t.Error("vertical segment misclassified")
	}
	if d, _ := v.Direction(); d != Down {
		t.Errorf("direction = %v", d)
	}
	if !s.Reverse().A.Eq(s.B) || !s.Reverse().B.Eq(s.A) {
		t.Error("Reverse wrong")
	}
	if s.String() == "" {
		t.Error("empty segment string")
	}
}

func TestSegPanicsOnDiagonal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Seg should panic for diagonal endpoints")
		}
	}()
	Seg(Pt(0, 0), Pt(3, 4), 1)
}

func TestSegmentRect(t *testing.T) {
	h := Seg(Pt(0, 0), Pt(100, 0), 10)
	if got := h.Rect(); !got.Eq(R(0, -5, 100, 5)) {
		t.Errorf("horizontal rect = %v", got)
	}
	v := Seg(Pt(10, 10), Pt(10, 50), 8)
	if got := v.Rect(); !got.Eq(R(6, 10, 14, 50)) {
		t.Errorf("vertical rect = %v", got)
	}
	z := Segment{A: Pt(5, 5), B: Pt(5, 5), Width: 4}
	if got := z.Rect(); !got.Eq(R(3, 3, 7, 7)) {
		t.Errorf("zero-length rect = %v", got)
	}
	if got := h.ExpandedRect(5); !got.Eq(R(-5, -10, 105, 10)) {
		t.Errorf("expanded rect = %v", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cross1 := Seg(Pt(0, 5), Pt(10, 5), 1)
	cross2 := Seg(Pt(5, 0), Pt(5, 10), 1)
	if !SegmentsIntersect(cross1, cross2) {
		t.Error("crossing segments not detected")
	}
	par1 := Seg(Pt(0, 0), Pt(10, 0), 1)
	par2 := Seg(Pt(0, 5), Pt(10, 5), 1)
	if SegmentsIntersect(par1, par2) {
		t.Error("parallel separated segments reported intersecting")
	}
	touch1 := Seg(Pt(0, 0), Pt(10, 0), 1)
	touch2 := Seg(Pt(10, 0), Pt(10, 10), 1)
	if !SegmentsIntersect(touch1, touch2) {
		t.Error("touching segments should intersect")
	}
	collinearOverlap1 := Seg(Pt(0, 0), Pt(10, 0), 1)
	collinearOverlap2 := Seg(Pt(5, 0), Pt(15, 0), 1)
	if !SegmentsIntersect(collinearOverlap1, collinearOverlap2) {
		t.Error("collinear overlapping segments should intersect")
	}
	collinearApart := Seg(Pt(0, 0), Pt(4, 0), 1)
	collinearApart2 := Seg(Pt(6, 0), Pt(10, 0), 1)
	if SegmentsIntersect(collinearApart, collinearApart2) {
		t.Error("collinear disjoint segments reported intersecting")
	}
}

func TestSegmentsIntersectSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		// Build axis-parallel segments by zeroing one delta.
		a := Pt(Coord(ax), Coord(ay))
		b := Pt(Coord(bx), Coord(ay)) // horizontal
		c := Pt(Coord(cx), Coord(cy))
		d := Pt(Coord(cx), Coord(dy)) // vertical
		s1 := Segment{A: a, B: b, Width: 1}
		s2 := Segment{A: c, B: d, Width: 1}
		return SegmentsIntersect(s1, s2) == SegmentsIntersect(s2, s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPolylineValidation(t *testing.T) {
	if _, err := NewPolyline(10, Pt(0, 0), Pt(5, 5)); err == nil {
		t.Error("diagonal polyline accepted")
	}
	pl, err := NewPolyline(10, Pt(0, 0), Pt(10, 0), Pt(10, 10))
	if err != nil {
		t.Fatalf("valid polyline rejected: %v", err)
	}
	if len(pl.Points) != 3 {
		t.Errorf("points = %d", len(pl.Points))
	}
}

func TestMustPolylinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPolyline should panic on invalid input")
		}
	}()
	MustPolyline(1, Pt(0, 0), Pt(1, 1))
}

func TestPolylineLengthSegmentsBends(t *testing.T) {
	// An L-shape: one bend.
	pl := MustPolyline(10, Pt(0, 0), Pt(100, 0), Pt(100, 50))
	if pl.Length() != 150 {
		t.Errorf("length = %d", pl.Length())
	}
	if got := pl.Bends(); got != 1 {
		t.Errorf("bends = %d, want 1", got)
	}
	if got := len(pl.Segments()); got != 2 {
		t.Errorf("segments = %d", got)
	}
	bp := pl.BendPoints()
	if len(bp) != 1 || !bp[0].Eq(Pt(100, 0)) {
		t.Errorf("bend points = %v", bp)
	}

	// A U-shape: two bends.
	u := MustPolyline(10, Pt(0, 0), Pt(0, 50), Pt(80, 50), Pt(80, 0))
	if u.Bends() != 2 {
		t.Errorf("U bends = %d", u.Bends())
	}

	// Straight line with a redundant chain point: no bends.
	straight := MustPolyline(10, Pt(0, 0), Pt(50, 0), Pt(120, 0))
	if straight.Bends() != 0 {
		t.Errorf("straight bends = %d", straight.Bends())
	}

	// Zero-length legs are skipped when counting bends.
	withZero := MustPolyline(10, Pt(0, 0), Pt(50, 0), Pt(50, 0), Pt(120, 0))
	if withZero.Bends() != 0 {
		t.Errorf("zero-leg bends = %d", withZero.Bends())
	}
}

func TestPolylineSimplify(t *testing.T) {
	pl := MustPolyline(10, Pt(0, 0), Pt(50, 0), Pt(50, 0), Pt(120, 0), Pt(120, 40))
	s := pl.Simplify()
	if len(s.Points) != 3 {
		t.Fatalf("simplified points = %v", s.Points)
	}
	if s.Length() != pl.Length() {
		t.Errorf("simplify changed length: %d vs %d", s.Length(), pl.Length())
	}
	if s.Bends() != pl.Bends() {
		t.Errorf("simplify changed bends: %d vs %d", s.Bends(), pl.Bends())
	}
	empty := Polyline{Width: 5}
	if got := empty.Simplify(); len(got.Points) != 0 || got.Width != 5 {
		t.Errorf("empty simplify = %+v", got)
	}
}

func TestPolylineSimplifyProperties(t *testing.T) {
	// Property: Simplify never changes length or bend count, and never has
	// two consecutive collinear legs afterwards.
	f := func(seed []int8) bool {
		pts := []Point{Pt(0, 0)}
		cur := Pt(0, 0)
		for i, s := range seed {
			d := Directions[int(uint8(s))%NumDirections]
			step := Coord(int(uint8(s))%7) * 10 // may be zero
			delta := d.Delta()
			cur = cur.Add(Point{delta.X * step, delta.Y * step})
			pts = append(pts, cur)
			if i > 24 {
				break
			}
		}
		pl := Polyline{Points: pts, Width: 10}
		s := pl.Simplify()
		if s.Length() != pl.Length() || s.Bends() != pl.Bends() {
			return false
		}
		for i := 2; i < len(s.Points); i++ {
			d1, ok1 := DirectionBetween(s.Points[i-2], s.Points[i-1])
			d2, ok2 := DirectionBetween(s.Points[i-1], s.Points[i])
			if !ok1 || !ok2 {
				return false // no zero-length legs may remain
			}
			if d1 == d2 {
				return false // no collinear consecutive legs may remain
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolylineBoundsStartEnd(t *testing.T) {
	pl := MustPolyline(10, Pt(0, 0), Pt(100, 0), Pt(100, 60))
	b := pl.Bounds()
	if !b.Eq(R(-5, -5, 105, 65)) {
		t.Errorf("bounds = %v", b)
	}
	if !pl.Start().Eq(Pt(0, 0)) || !pl.End().Eq(Pt(100, 60)) {
		t.Error("start/end wrong")
	}
}
