package geom

import "fmt"

// Segment is an axis-parallel microstrip segment between two chain points.
// The segment carries the strip width so it can be turned into the rectangle
// that the spacing rule operates on.
type Segment struct {
	A, B  Point
	Width Coord
}

// Seg constructs a segment. It panics when the endpoints are neither
// horizontally nor vertically aligned, because microstrip segments are
// axis-parallel by construction (chain-point model, Section 4.1).
func Seg(a, b Point, width Coord) Segment {
	if a.X != b.X && a.Y != b.Y {
		panic(fmt.Sprintf("geom: segment %v-%v is not axis-parallel", a, b))
	}
	return Segment{A: a, B: b, Width: width}
}

// Horizontal reports whether the segment spans along the X axis. A
// zero-length segment reports true for both Horizontal and Vertical.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// Vertical reports whether the segment spans along the Y axis.
func (s Segment) Vertical() bool { return s.A.X == s.B.X }

// ZeroLength reports whether both endpoints coincide.
func (s Segment) ZeroLength() bool { return s.A.Eq(s.B) }

// Length returns the Manhattan length of the segment.
func (s Segment) Length() Coord { return s.A.ManhattanTo(s.B) }

// Direction returns the routing direction from A to B; ok is false for a
// zero-length segment.
func (s Segment) Direction() (Direction, bool) { return DirectionBetween(s.A, s.B) }

// Rect returns the body rectangle of the segment: the centreline extruded by
// half the strip width on each side.
func (s Segment) Rect() Rect {
	half := s.Width / 2
	r := R(s.A.X, s.A.Y, s.B.X, s.B.Y)
	if s.Horizontal() && !s.ZeroLength() {
		return r.ExpandXY(0, half)
	}
	if s.Vertical() && !s.ZeroLength() {
		return r.ExpandXY(half, 0)
	}
	// Zero-length segment: a square of the strip width.
	return r.Expand(half)
}

// ExpandedRect returns the spacing bounding box of the segment: the body
// rectangle expanded by the clearance on every side (Figure 2a).
func (s Segment) ExpandedRect(clearance Coord) Rect {
	return s.Rect().Expand(clearance)
}

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A, Width: s.Width} }

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("seg %v→%v w=%.3fµm", s.A, s.B, Microns(s.Width))
}

// orient returns the orientation of the ordered triple (p, q, r):
// 0 collinear, 1 clockwise, 2 counter-clockwise.
func orient(p, q, r Point) int {
	v := int64(q.Y-p.Y)*int64(r.X-q.X) - int64(q.X-p.X)*int64(r.Y-q.Y)
	switch {
	case v == 0:
		return 0
	case v > 0:
		return 1
	default:
		return 2
	}
}

// onSegment reports whether q lies on segment pr given the three points are
// collinear.
func onSegment(p, q, r Point) bool {
	return q.X <= MaxCoord(p.X, r.X) && q.X >= MinCoord(p.X, r.X) &&
		q.Y <= MaxCoord(p.Y, r.Y) && q.Y >= MinCoord(p.Y, r.Y)
}

// SegmentsIntersect reports whether the centrelines of two segments intersect
// (including touching at endpoints). Planar microstrip routing forbids any
// crossing between different microstrips.
func SegmentsIntersect(a, b Segment) bool {
	p1, q1 := a.A, a.B
	p2, q2 := b.A, b.B
	o1 := orient(p1, q1, p2)
	o2 := orient(p1, q1, q2)
	o3 := orient(p2, q2, p1)
	o4 := orient(p2, q2, q1)
	if o1 != o2 && o3 != o4 {
		return true
	}
	if o1 == 0 && onSegment(p1, p2, q1) {
		return true
	}
	if o2 == 0 && onSegment(p1, q2, q1) {
		return true
	}
	if o3 == 0 && onSegment(p2, p1, q2) {
		return true
	}
	if o4 == 0 && onSegment(p2, q1, q2) {
		return true
	}
	return false
}

// Polyline is an ordered list of chain points describing a routed microstrip
// centreline. Consecutive points must be axis-aligned.
type Polyline struct {
	Points []Point
	Width  Coord
}

// NewPolyline builds a polyline, validating axis alignment of every leg.
func NewPolyline(width Coord, pts ...Point) (Polyline, error) {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X != pts[i].X && pts[i-1].Y != pts[i].Y {
			return Polyline{}, fmt.Errorf("geom: polyline leg %d (%v→%v) is not axis-parallel", i, pts[i-1], pts[i])
		}
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return Polyline{Points: cp, Width: width}, nil
}

// MustPolyline is like NewPolyline but panics on error; intended for tests
// and constant construction.
func MustPolyline(width Coord, pts ...Point) Polyline {
	pl, err := NewPolyline(width, pts...)
	if err != nil {
		panic(err)
	}
	return pl
}

// Segments returns the non-zero-length segments of the polyline.
func (pl Polyline) Segments() []Segment {
	var segs []Segment
	for i := 1; i < len(pl.Points); i++ {
		a, b := pl.Points[i-1], pl.Points[i]
		if a.Eq(b) {
			continue
		}
		segs = append(segs, Segment{A: a, B: b, Width: pl.Width})
	}
	return segs
}

// Length returns the total Manhattan length of the polyline centreline.
func (pl Polyline) Length() Coord {
	var sum Coord
	for i := 1; i < len(pl.Points); i++ {
		sum += pl.Points[i-1].ManhattanTo(pl.Points[i])
	}
	return sum
}

// Bends returns the number of real 90° bends along the polyline: the number
// of interior chain points where the incoming and outgoing directions are
// perpendicular. Zero-length legs are skipped, matching the paper's rule that
// a chain point where the second segment simply continues the first direction
// forms no bend.
func (pl Polyline) Bends() int {
	bends := 0
	var prev Direction
	hasPrev := false
	for i := 1; i < len(pl.Points); i++ {
		d, ok := DirectionBetween(pl.Points[i-1], pl.Points[i])
		if !ok {
			continue // zero-length leg
		}
		if hasPrev && prev.Perpendicular(d) {
			bends++
		}
		prev, hasPrev = d, true
	}
	return bends
}

// BendPoints returns the interior points at which a real bend occurs.
func (pl Polyline) BendPoints() []Point {
	var out []Point
	var prev Direction
	hasPrev := false
	for i := 1; i < len(pl.Points); i++ {
		d, ok := DirectionBetween(pl.Points[i-1], pl.Points[i])
		if !ok {
			continue
		}
		if hasPrev && prev.Perpendicular(d) {
			out = append(out, pl.Points[i-1])
		}
		prev, hasPrev = d, true
	}
	return out
}

// Simplify removes zero-length legs and merges consecutive collinear legs,
// mirroring the chain-point deletion step of the refinement phase.
func (pl Polyline) Simplify() Polyline {
	if len(pl.Points) == 0 {
		return Polyline{Width: pl.Width}
	}
	pts := []Point{pl.Points[0]}
	for i := 1; i < len(pl.Points); i++ {
		p := pl.Points[i]
		if p.Eq(pts[len(pts)-1]) {
			continue
		}
		if len(pts) >= 2 {
			a, b := pts[len(pts)-2], pts[len(pts)-1]
			d1, ok1 := DirectionBetween(a, b)
			d2, ok2 := DirectionBetween(b, p)
			if ok1 && ok2 && d1 == d2 {
				pts[len(pts)-1] = p
				continue
			}
		}
		pts = append(pts, p)
	}
	return Polyline{Points: pts, Width: pl.Width}
}

// Bounds returns the bounding rectangle of the polyline body (centreline
// expanded by half the width). It panics for an empty polyline.
func (pl Polyline) Bounds() Rect {
	if len(pl.Points) == 0 {
		panic("geom: Bounds of empty polyline")
	}
	r := BoundingRect(pl.Points...)
	return r.Expand(pl.Width / 2)
}

// Start returns the first chain point. It panics for an empty polyline.
func (pl Polyline) Start() Point { return pl.Points[0] }

// End returns the last chain point. It panics for an empty polyline.
func (pl Polyline) End() Point { return pl.Points[len(pl.Points)-1] }
