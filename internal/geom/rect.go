package geom

import "fmt"

// Rect is an axis-aligned rectangle described by its lower-left (Min) and
// upper-right (Max) corners. A Rect is well formed when Min.X <= Max.X and
// Min.Y <= Max.Y; a degenerate rectangle with zero width or height is valid
// and represents a line or a point.
type Rect struct {
	Min, Max Point
}

// R constructs a rectangle from two corner coordinates, normalising the
// corner order so the result is well formed.
func R(x0, y0, x1, y1 Coord) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectFromCenter builds the rectangle of the given width and height centred
// at c. Odd sizes are rounded so that the rectangle fully covers the size.
func RectFromCenter(c Point, w, h Coord) Rect {
	halfW := w / 2
	halfH := h / 2
	return Rect{
		Min: Point{c.X - halfW, c.Y - halfH},
		Max: Point{c.X - halfW + w, c.Y - halfH + h},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() Coord { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() Coord { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area in nm².
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// Center returns the centre point (rounded down for odd sizes).
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Empty reports whether the rectangle has no interior (zero or negative
// extent along either axis).
func (r Rect) Empty() bool {
	return r.Max.X <= r.Min.X || r.Max.Y <= r.Min.Y
}

// Valid reports whether Min <= Max along both axes.
func (r Rect) Valid() bool {
	return r.Max.X >= r.Min.X && r.Max.Y >= r.Min.Y
}

// Eq reports whether two rectangles are identical.
func (r Rect) Eq(s Rect) bool { return r.Min.Eq(s.Min) && r.Max.Eq(s.Max) }

// Translate returns the rectangle shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Min: r.Min.Add(d), Max: r.Max.Add(d)}
}

// Expand grows the rectangle by m on every side. The paper expands bounding
// boxes by the ground-plane distance t on each side to express the 2t
// microstrip spacing rule (Section 2.1, Figure 2a). A negative m shrinks the
// rectangle; the result may become empty but stays well formed.
func (r Rect) Expand(m Coord) Rect {
	out := Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
	if out.Max.X < out.Min.X {
		c := (out.Max.X + out.Min.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Max.Y < out.Min.Y {
		c := (out.Max.Y + out.Min.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// ExpandXY grows the rectangle by mx horizontally and my vertically on each
// side.
func (r Rect) ExpandXY(mx, my Coord) Rect {
	return Rect{
		Min: Point{r.Min.X - mx, r.Min.Y - my},
		Max: Point{r.Max.X + mx, r.Max.Y + my},
	}
}

// ContainsPoint reports whether p lies inside or on the border of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside (or on the border of) r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersect returns the intersection of r and s. When the rectangles do not
// overlap the result is an empty but well-formed rectangle.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{MaxCoord(r.Min.X, s.Min.X), MaxCoord(r.Min.Y, s.Min.Y)},
		Max: Point{MinCoord(r.Max.X, s.Max.X), MinCoord(r.Max.Y, s.Max.Y)},
	}
	if out.Max.X < out.Min.X {
		out.Max.X = out.Min.X
	}
	if out.Max.Y < out.Min.Y {
		out.Max.Y = out.Min.Y
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{MinCoord(r.Min.X, s.Min.X), MinCoord(r.Min.Y, s.Min.Y)},
		Max: Point{MaxCoord(r.Max.X, s.Max.X), MaxCoord(r.Max.Y, s.Max.Y)},
	}
}

// Overlaps reports whether r and s share interior area (touching edges do not
// count as overlap, matching the ">= 0 distance" non-overlap rule of Eq.
// 16–20).
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// OverlapArea returns the shared interior area of r and s (0 when disjoint).
func (r Rect) OverlapArea(s Rect) int64 {
	ix := r.Intersect(s)
	if ix.Empty() {
		return 0
	}
	return ix.Area()
}

// OverlapDims returns the horizontal and vertical extents of the overlap
// region between r and s (the d_h and d_v quantities of Figure 9). Both are 0
// when the rectangles do not overlap.
func (r Rect) OverlapDims(s Rect) (dh, dv Coord) {
	ix := r.Intersect(s)
	if ix.Empty() {
		return 0, 0
	}
	return ix.Width(), ix.Height()
}

// Distance returns the minimum axis-separated (Chebyshev-like) gap between
// two rectangles: the larger of the horizontal and vertical gaps, or 0 when
// the rectangles overlap or touch. For the spacing rule of the paper, two
// shapes expanded by t each satisfy the 2t spacing exactly when their
// expanded boxes do not overlap.
func (r Rect) Distance(s Rect) Coord {
	var dx, dy Coord
	if r.Max.X < s.Min.X {
		dx = s.Min.X - r.Max.X
	} else if s.Max.X < r.Min.X {
		dx = r.Min.X - s.Max.X
	}
	if r.Max.Y < s.Min.Y {
		dy = s.Min.Y - r.Max.Y
	} else if s.Max.Y < r.Min.Y {
		dy = r.Min.Y - s.Max.Y
	}
	return MaxCoord(dx, dy)
}

// ManhattanGap returns the sum of the horizontal and vertical gaps between
// two rectangles (0 when they overlap along that axis).
func (r Rect) ManhattanGap(s Rect) Coord {
	var dx, dy Coord
	if r.Max.X < s.Min.X {
		dx = s.Min.X - r.Max.X
	} else if s.Max.X < r.Min.X {
		dx = r.Min.X - s.Max.X
	}
	if r.Max.Y < s.Min.Y {
		dy = s.Min.Y - r.Max.Y
	} else if s.Max.Y < r.Min.Y {
		dy = r.Min.Y - s.Max.Y
	}
	return dx + dy
}

// RotateAbout rotates the rectangle about pivot by the orientation and
// returns the normalised result.
func (r Rect) RotateAbout(pivot Point, o Orientation) Rect {
	a := o.RotateOffset(r.Min.Sub(pivot)).Add(pivot)
	b := o.RotateOffset(r.Max.Sub(pivot)).Add(pivot)
	return R(a.X, a.Y, b.X, b.Y)
}

// Corners returns the four corners in counter-clockwise order starting from
// Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// String implements fmt.Stringer with micrometre formatting.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f → %.3f,%.3f]µm",
		Microns(r.Min.X), Microns(r.Min.Y), Microns(r.Max.X), Microns(r.Max.Y))
}

// BoundingRect returns the smallest rectangle containing all the given
// points. It panics when called with no points.
func BoundingRect(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect requires at least one point")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = MinCoord(r.Min.X, p.X)
		r.Min.Y = MinCoord(r.Min.Y, p.Y)
		r.Max.X = MaxCoord(r.Max.X, p.X)
		r.Max.Y = MaxCoord(r.Max.Y, p.Y)
	}
	return r
}

// UnionAll returns the union of all given rectangles. It panics when called
// with no rectangles.
func UnionAll(rects ...Rect) Rect {
	if len(rects) == 0 {
		panic("geom: UnionAll requires at least one rectangle")
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}
