// Package circuits provides the benchmark circuits of the paper's evaluation
// (Table 1): a 94 GHz LNA with 25 microstrips and 34 devices, a 60 GHz buffer
// with 14 microstrips and 26 devices, and a 60 GHz LNA with 19 microstrips
// and 28 devices, each with the published layout-area settings. The original
// netlists are unpublished, so the circuits here are synthetic cascade
// amplifiers generated to the published statistics: the same microstrip and
// device counts, the same areas, and target lengths in the range typical of
// matching stubs and interconnect at those frequencies. See DESIGN.md for the
// substitution rationale.
package circuits

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// Spec describes one benchmark circuit and its two area settings from
// Table 1.
type Spec struct {
	Name        string
	Microstrips int
	Devices     int
	// AreaA is the area of the manual layout; AreaB is the smaller stress
	// area (µm).
	AreaAWidth, AreaAHeight float64
	AreaBWidth, AreaBHeight float64
	// Frequency is the operating frequency in GHz (for the RF simulation).
	Frequency float64
	// Seed makes the synthetic netlist generation reproducible.
	Seed int64
}

// Table1 returns the three circuits of Table 1 with the paper's published
// statistics.
func Table1() []Spec {
	return []Spec{
		{Name: "lna94", Microstrips: 25, Devices: 34, AreaAWidth: 890, AreaAHeight: 615, AreaBWidth: 845, AreaBHeight: 580, Frequency: 94, Seed: 94},
		{Name: "buffer60", Microstrips: 14, Devices: 26, AreaAWidth: 595, AreaAHeight: 850, AreaBWidth: 505, AreaBHeight: 720, Frequency: 60, Seed: 60},
		{Name: "lna60", Microstrips: 19, Devices: 28, AreaAWidth: 600, AreaAHeight: 855, AreaBWidth: 570, AreaBHeight: 810, Frequency: 60, Seed: 61},
	}
}

// LargeSpec returns a synthetic stress circuit roughly scale× the size of
// the largest Table 1 design, for exercising the sharded phase-1 pipeline:
// the device/microstrip counts grow linearly with scale and the layout area
// grows with √scale per side so the density stays comparable. The generation
// is seeded, so a given scale always yields the same circuit. Scale values
// below 1 are clamped to 1; LargeSpec(1) is "large" and reachable through
// BySpecName.
func LargeSpec(scale int) Spec {
	if scale < 1 {
		scale = 1
	}
	side := math.Sqrt(float64(scale))
	name := "large"
	if scale > 1 {
		name = fmt.Sprintf("large%d", scale)
	}
	return Spec{
		Name:        name,
		Microstrips: 20 * scale,
		Devices:     30 * scale,
		AreaAWidth:  math.Round(900 * side),
		AreaAHeight: math.Round(640 * side),
		AreaBWidth:  math.Round(850 * side),
		AreaBHeight: math.Round(600 * side),
		Frequency:   60,
		Seed:        1000 + int64(scale),
	}
}

// BySpecName returns the Table 1 spec with the given name, or the synthetic
// large-circuit spec for "large" / "largeN" (e.g. "large4" is four times the
// base size).
func BySpecName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	if rest, ok := strings.CutPrefix(name, "large"); ok {
		if rest == "" {
			return LargeSpec(1), nil
		}
		// Atoi (rather than Sscanf) so trailing junk like "large4x" stays
		// unknown; "large1" is an accepted alias for "large".
		if scale, err := strconv.Atoi(rest); err == nil && scale >= 1 {
			return LargeSpec(scale), nil
		}
	}
	return Spec{}, fmt.Errorf("circuits: unknown benchmark circuit %q", name)
}

// Build generates the circuit of a spec at its manual-layout area (setting A).
func Build(s Spec) *netlist.Circuit {
	return build(s, s.AreaAWidth, s.AreaAHeight)
}

// BuildSmallArea generates the circuit at the smaller stress area (setting B).
func BuildSmallArea(s Spec) *netlist.Circuit {
	return build(s, s.AreaBWidth, s.AreaBHeight)
}

// build synthesizes a cascade amplifier netlist with exactly s.Microstrips
// microstrips and s.Devices devices inside the given area.
func build(s Spec, areaW, areaH float64) *netlist.Circuit {
	rng := rand.New(rand.NewSource(s.Seed))
	t := tech.Default90nm()
	c := netlist.NewCircuit(s.Name, t, geom.FromMicrons(areaW), geom.FromMicrons(areaH))

	// The main chain: input pad, N transistor stages, output pad. The chain
	// consumes 2 pads + N transistors and N+1 microstrips; roughly half of
	// the remaining microstrip budget becomes shunt stubs (matching-network
	// capacitors/inductors attached to chain nodes). Devices beyond
	// 2 + stages + stubs are bias/decoupling blocks that are placed but not
	// connected by precision microstrips, which is how the published
	// device/microstrip ratios of Table 1 (more devices than a connected
	// microstrip tree allows) arise in practice.
	stubCount := s.Microstrips / 2
	chainStrips := s.Microstrips - stubCount
	stages := chainStrips - 1
	if stages < 1 {
		stages = 1
		chainStrips = 2
		stubCount = s.Microstrips - chainStrips
		if stubCount < 0 {
			stubCount = 0
		}
	}
	extraDevices := s.Devices - 2 - stages - stubCount
	if extraDevices < 0 {
		extraDevices = 0
	}

	addTransistor := func(name string) *netlist.Device {
		w := float64(28 + rng.Intn(19))
		h := float64(24 + rng.Intn(15))
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(w), geom.FromMicrons(h))
		d.AddPin("in", geom.PtMicrons(-w/2, 0), 0)
		d.AddPin("out", geom.PtMicrons(w/2, 0), 0)
		return d
	}
	addStubDevice := func(name string) *netlist.Device {
		kind := netlist.Capacitor
		if rng.Intn(3) == 0 {
			kind = netlist.Inductor
		}
		w := float64(30 + rng.Intn(31))
		h := float64(25 + rng.Intn(26))
		d := netlist.NewDevice(name, kind, geom.FromMicrons(w), geom.FromMicrons(h))
		d.AddPin("p", geom.PtMicrons(0, -h/2), 0)
		return d
	}

	c.AddDevice(netlist.NewPad("PIN", t.PadSize))
	c.AddDevice(netlist.NewPad("POUT", t.PadSize))
	chain := []string{"PIN"}
	for i := 1; i <= stages; i++ {
		name := fmt.Sprintf("M%d", i)
		c.AddDevice(addTransistor(name))
		chain = append(chain, name)
	}
	chain = append(chain, "POUT")

	// Target lengths: sized so the serpentine of the chain fits the area.
	// Rows available ≈ areaH / 130 µm; usable length ≈ rows · areaW · 0.8.
	usable := (areaH / 130) * areaW * 0.78
	perStrip := usable / float64(chainStrips)
	if perStrip > 320 {
		perStrip = 320
	}
	if perStrip < 70 {
		perStrip = 70
	}
	terminalPin := func(dev string, toward string) string {
		d, _ := c.Device(dev)
		if d.IsPad() {
			return "p"
		}
		if toward == "next" {
			return "out"
		}
		return "in"
	}
	stripIdx := 0
	for i := 0; i+1 < len(chain); i++ {
		stripIdx++
		length := perStrip * (0.75 + rng.Float64()*0.5)
		c.Connect(fmt.Sprintf("TL%d", stripIdx),
			chain[i], terminalPin(chain[i], "next"),
			chain[i+1], terminalPin(chain[i+1], "prev"),
			geom.FromMicrons(length))
	}

	// Stubs: attach to chain transistor outputs round-robin.
	for sIdx := 0; sIdx < stubCount; sIdx++ {
		name := fmt.Sprintf("C%d", sIdx+1)
		c.AddDevice(addStubDevice(name))
		anchor := chain[1+sIdx%stages]
		stripIdx++
		length := 50 + rng.Float64()*90
		c.Connect(fmt.Sprintf("TL%d", stripIdx), anchor, "out", name, "p", geom.FromMicrons(length))
	}

	// Bias / decoupling blocks: placed as obstacles, no precision microstrip.
	for e := 0; e < extraDevices; e++ {
		name := fmt.Sprintf("B%d", e+1)
		c.AddDevice(addStubDevice(name))
	}
	return c
}
