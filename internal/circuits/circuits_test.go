package circuits

import (
	"testing"

	"rficlayout/internal/geom"
	"rficlayout/internal/partition"
)

func TestTable1SpecsMatchPaperStatistics(t *testing.T) {
	specs := Table1()
	if len(specs) != 3 {
		t.Fatalf("expected 3 benchmark circuits, got %d", len(specs))
	}
	want := map[string][2]int{
		"lna94":    {25, 34},
		"buffer60": {14, 26},
		"lna60":    {19, 28},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected spec %q", s.Name)
			continue
		}
		if s.Microstrips != w[0] || s.Devices != w[1] {
			t.Errorf("%s: spec says %d strips / %d devices, paper says %d / %d",
				s.Name, s.Microstrips, s.Devices, w[0], w[1])
		}
	}
}

func TestBuildMatchesSpecCounts(t *testing.T) {
	for _, s := range Table1() {
		cA := Build(s)
		if err := cA.Validate(); err != nil {
			t.Errorf("%s (area A): invalid circuit: %v", s.Name, err)
		}
		if len(cA.Microstrips) != s.Microstrips {
			t.Errorf("%s: %d microstrips, want %d", s.Name, len(cA.Microstrips), s.Microstrips)
		}
		if len(cA.Devices) != s.Devices {
			t.Errorf("%s: %d devices, want %d", s.Name, len(cA.Devices), s.Devices)
		}
		if cA.AreaWidth != geom.FromMicrons(s.AreaAWidth) || cA.AreaHeight != geom.FromMicrons(s.AreaAHeight) {
			t.Errorf("%s: area %v×%v", s.Name, cA.AreaWidth, cA.AreaHeight)
		}
		cB := BuildSmallArea(s)
		if err := cB.Validate(); err != nil {
			t.Errorf("%s (area B): invalid circuit: %v", s.Name, err)
		}
		if cB.AreaWidth != geom.FromMicrons(s.AreaBWidth) || cB.AreaHeight != geom.FromMicrons(s.AreaBHeight) {
			t.Errorf("%s: small area %v×%v", s.Name, cB.AreaWidth, cB.AreaHeight)
		}
		if len(cB.Microstrips) != len(cA.Microstrips) || len(cB.Devices) != len(cA.Devices) {
			t.Errorf("%s: area variants differ in content", s.Name)
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	s, err := BySpecName("lna94")
	if err != nil {
		t.Fatal(err)
	}
	a := Build(s)
	b := Build(s)
	if len(a.Microstrips) != len(b.Microstrips) {
		t.Fatal("non-deterministic strip count")
	}
	for i := range a.Microstrips {
		if a.Microstrips[i].TargetLength != b.Microstrips[i].TargetLength {
			t.Errorf("strip %d target differs between builds", i)
		}
	}
	if _, err := BySpecName("nothere"); err == nil {
		t.Error("unknown spec accepted")
	}
}

// TestLargeSpecShardsIntoClusters pins the property the sharded phase-1
// pipeline relies on: the synthetic large circuit is valid, matches its spec
// counts, and splits into at least four connectivity clusters under a small
// shard size.
func TestLargeSpecShardsIntoClusters(t *testing.T) {
	for _, scale := range []int{1, 2} {
		spec := LargeSpec(scale)
		c := Build(spec)
		if err := c.Validate(); err != nil {
			t.Fatalf("scale %d: invalid circuit: %v", scale, err)
		}
		if len(c.Microstrips) != spec.Microstrips || len(c.Devices) != spec.Devices {
			t.Errorf("scale %d: got %d strips / %d devices, want %d / %d",
				scale, len(c.Microstrips), len(c.Devices), spec.Microstrips, spec.Devices)
		}
		clusters := partition.Clusters(c, partition.Options{MaxDevices: 5})
		if len(clusters) < 4 {
			t.Errorf("scale %d: only %d clusters at shard size 5, want >= 4", scale, len(clusters))
		}
	}
}

func TestLargeSpecByName(t *testing.T) {
	s, err := BySpecName("large")
	if err != nil {
		t.Fatal(err)
	}
	if s != LargeSpec(1) {
		t.Errorf("BySpecName(large) = %+v", s)
	}
	s, err = BySpecName("large4")
	if err != nil {
		t.Fatal(err)
	}
	if s != LargeSpec(4) {
		t.Errorf("BySpecName(large4) = %+v", s)
	}
	if s, err := BySpecName("large1"); err != nil || s != LargeSpec(1) {
		t.Errorf("large1 should alias large: %+v, %v", s, err)
	}
	if _, err := BySpecName("large0"); err == nil {
		t.Error("large0 accepted")
	}
	if _, err := BySpecName("large4x"); err == nil {
		t.Error("large4x accepted")
	}
}

func TestTargetLengthsAreRealizable(t *testing.T) {
	for _, s := range Table1() {
		c := Build(s)
		for _, ms := range c.Microstrips {
			um := geom.Microns(ms.TargetLength)
			if um < 40 || um > 400 {
				t.Errorf("%s/%s: target %.1f µm outside the plausible 40–400 µm range", s.Name, ms.Name, um)
			}
		}
	}
}
