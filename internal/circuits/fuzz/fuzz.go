// Package fuzz generates seeded random RFIC circuits for the metamorphic
// audit battery (internal/audit). Where package circuits reproduces the three
// published Table 1 designs plus one synthetic stress family, this package
// spans the topology space those designs come from: LNA-shaped cascades with
// shunt matching stubs, mixer-shaped three-port trees meeting at a core
// device, and PA-shaped chains of wide output stages — each crossed with
// square/wide/tall layout aspect regimes, short/long/mixed strip-length
// regimes, and a near-symmetric degenerate mode in which every stage has
// identical dimensions and every strip the identical target length (the tie
// storm that stresses the solver's lexicographic canonicalization).
//
// Generation is a pure function of the seed: the same seed always yields a
// circuit with byte-identical netlist.Canonical text, which is what lets the
// fuzz harness (rficbench -fuzz) promise byte-identical JSONL across runs and
// lets a failing seed be replayed exactly. The profile dimensions (shape ×
// aspect × length regime × symmetry) are stratified over consecutive seeds,
// so any contiguous block of ProfilePeriod seeds covers the whole matrix.
package fuzz

import (
	"fmt"
	"math"
	"math/rand"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// Shape is the topology family of a generated circuit.
type Shape string

// The three topology families, mirroring the device mixes of real mm-wave
// front-ends.
const (
	// ShapeLNA is a cascade amplifier: input pad → N gain stages → output
	// pad, with shunt matching stubs hanging off the stage outputs.
	ShapeLNA Shape = "lna"
	// ShapeMixer is a three-port tree: RF and LO input chains meeting at a
	// core device whose IF chain leads to the output pad.
	ShapeMixer Shape = "mixer"
	// ShapePA is a power-amplifier chain: few stages, wide transistors,
	// extra bias/decoupling blocks placed without precision microstrips.
	ShapePA Shape = "pa"
)

// Aspect is the layout-area aspect regime.
type Aspect string

// Aspect regimes; wide and tall are the pathological ones.
const (
	AspectSquare Aspect = "square"
	AspectWide   Aspect = "wide"
	AspectTall   Aspect = "tall"
)

// Lengths is the strip-length regime.
type Lengths string

// Length regimes.
const (
	LengthsShort Lengths = "short"
	LengthsLong  Lengths = "long"
	LengthsMixed Lengths = "mixed"
)

var (
	shapes  = []Shape{ShapeLNA, ShapeMixer, ShapePA}
	aspects = []Aspect{AspectSquare, AspectWide, AspectTall}
	lengths = []Lengths{LengthsShort, LengthsLong, LengthsMixed}
)

// ProfilePeriod is the number of consecutive seeds that covers every
// shape × aspect × length-regime × symmetry combination exactly once.
const ProfilePeriod = 3 * 3 * 3 * 2

// Profile describes what one seed generated — the coordinates of the circuit
// in the topology matrix plus its headline statistics. Every field is a pure
// function of the seed.
type Profile struct {
	Seed        int64   `json:"seed"`
	Shape       Shape   `json:"shape"`
	Aspect      Aspect  `json:"aspect"`
	Lengths     Lengths `json:"lengths"`
	Symmetric   bool    `json:"symmetric"`
	Devices     int     `json:"devices"`
	Microstrips int     `json:"strips"`
	// AreaWidth and AreaHeight are in microns.
	AreaWidth  float64 `json:"area_w_um"`
	AreaHeight float64 `json:"area_h_um"`
}

// profileOf stratifies the matrix dimensions over consecutive seeds.
func profileOf(seed int64) Profile {
	i := seed % ProfilePeriod
	if i < 0 {
		i += ProfilePeriod
	}
	return Profile{
		Seed:      seed,
		Shape:     shapes[i%3],
		Aspect:    aspects[(i/3)%3],
		Lengths:   lengths[(i/9)%3],
		Symmetric: (i/27)%2 == 1,
	}
}

// Generate builds the circuit of a seed together with its profile. The
// result always passes netlist.Validate; the same seed always produces
// byte-identical netlist.Canonical text.
func Generate(seed int64) (*netlist.Circuit, Profile) {
	p := profileOf(seed)
	rng := rand.New(rand.NewSource(seed))
	g := &generator{p: p, rng: rng, t: tech.Default90nm()}
	c := g.build()
	p.Devices = len(c.Devices)
	p.Microstrips = len(c.Microstrips)
	p.AreaWidth = geom.Microns(c.AreaWidth)
	p.AreaHeight = geom.Microns(c.AreaHeight)
	return c, p
}

// generator holds the state of one seeded build.
type generator struct {
	p   Profile
	rng *rand.Rand
	t   tech.Technology

	devices []*netlist.Device
	strips  []*netlist.Microstrip
}

// stripLen draws a target length (µm) from the profile's regime. In the
// symmetric mode the draw collapses to the regime midpoint so every strip of
// the circuit carries the identical target — maximally degenerate ties.
func (g *generator) stripLen() float64 {
	var lo, hi float64
	switch g.p.Lengths {
	case LengthsShort:
		lo, hi = 55, 115
	case LengthsLong:
		lo, hi = 190, 320
	default: // mixed
		lo, hi = 60, 300
	}
	if g.p.Symmetric {
		return math.Round((lo + hi) / 2)
	}
	return math.Round(lo + g.rng.Float64()*(hi-lo))
}

// transistor draws a gain-stage transistor. PA stages are much wider; the
// symmetric mode pins every stage to one fixed geometry.
func (g *generator) transistor(name string) *netlist.Device {
	var w, h float64
	switch {
	case g.p.Symmetric && g.p.Shape == ShapePA:
		w, h = 80, 36
	case g.p.Symmetric:
		w, h = 36, 30
	case g.p.Shape == ShapePA:
		w = float64(64 + g.rng.Intn(57)) // 64..120
		h = float64(30 + g.rng.Intn(21)) // 30..50
	default:
		w = float64(28 + g.rng.Intn(19)) // 28..46
		h = float64(24 + g.rng.Intn(15)) // 24..38
	}
	d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(w), geom.FromMicrons(h))
	d.AddPin("in", geom.PtMicrons(-w/2, 0), 0)
	d.AddPin("out", geom.PtMicrons(w/2, 0), 0)
	return d
}

// passive draws a stub/bias passive (capacitor or inductor) with a single
// pin on its bottom edge.
func (g *generator) passive(name string) *netlist.Device {
	kind := netlist.Capacitor
	if g.rng.Intn(3) == 0 {
		kind = netlist.Inductor
	}
	var w, h float64
	if g.p.Symmetric {
		kind = netlist.Capacitor
		w, h = 40, 34
	} else {
		w = float64(30 + g.rng.Intn(31)) // 30..60
		h = float64(25 + g.rng.Intn(26)) // 25..50
	}
	d := netlist.NewDevice(name, kind, geom.FromMicrons(w), geom.FromMicrons(h))
	d.AddPin("p", geom.PtMicrons(0, -h/2), 0)
	return d
}

func (g *generator) addDevice(d *netlist.Device) *netlist.Device {
	g.devices = append(g.devices, d)
	return d
}

func (g *generator) connect(name, fromDev, fromPin, toDev, toPin string, lenUM float64) {
	g.strips = append(g.strips, &netlist.Microstrip{
		Name:         name,
		From:         netlist.Terminal{Device: fromDev, Pin: fromPin},
		To:           netlist.Terminal{Device: toDev, Pin: toPin},
		TargetLength: geom.FromMicrons(lenUM),
	})
}

// chain appends a run of transistor stages between two endpoint terminals,
// connecting consecutive elements with regime-length strips. Names are
// prefixed so the three mixer branches stay distinct.
func (g *generator) chain(prefix string, stages int, from netlist.Terminal, to netlist.Terminal) []string {
	names := make([]string, 0, stages)
	prev := from
	for i := 1; i <= stages; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		g.addDevice(g.transistor(name))
		g.connect(fmt.Sprintf("TL%s%d", prefix, i), prev.Device, prev.Pin, name, "in", g.stripLen())
		prev = netlist.Terminal{Device: name, Pin: "out"}
		names = append(names, name)
	}
	g.connect(fmt.Sprintf("TL%sout", prefix), prev.Device, prev.Pin, to.Device, to.Pin, g.stripLen())
	return names
}

// stubsOn attaches count shunt stubs round-robin to the given anchor devices'
// "out" pins.
func (g *generator) stubsOn(anchors []string, count int) {
	for i := 0; i < count && len(anchors) > 0; i++ {
		name := fmt.Sprintf("C%d", i+1)
		g.addDevice(g.passive(name))
		stubLen := g.stripLen() * 0.6
		if stubLen < 45 {
			stubLen = 45
		}
		g.connect(fmt.Sprintf("TLc%d", i+1), anchors[i%len(anchors)], "out", name, "p", math.Round(stubLen))
	}
}

// biasBlocks appends count unconnected bias/decoupling devices.
func (g *generator) biasBlocks(count int) {
	for i := 0; i < count; i++ {
		g.addDevice(g.passive(fmt.Sprintf("B%d", i+1)))
	}
}

// build assembles the topology of the profile's shape and sizes the layout
// area to fit it.
func (g *generator) build() *netlist.Circuit {
	pin := netlist.NewPad("PIN", g.t.PadSize)
	pout := netlist.NewPad("POUT", g.t.PadSize)

	switch g.p.Shape {
	case ShapeMixer:
		plo := netlist.NewPad("PLO", g.t.PadSize)
		g.addDevice(pin)
		g.addDevice(plo)
		g.addDevice(pout)
		core := g.addDevice(netlist.NewDevice("XCORE", netlist.Transistor,
			geom.FromMicrons(44), geom.FromMicrons(40)))
		core.AddPin("rf", geom.PtMicrons(-22, 8), 0)
		core.AddPin("lo", geom.PtMicrons(-22, -8), 0)
		core.AddPin("if", geom.PtMicrons(22, 0), 0)
		rf := g.chain("MR", 1+g.rng.Intn(2), term("PIN", "p"), term("XCORE", "rf"))
		lo := g.chain("ML", 1+g.rng.Intn(2), term("PLO", "p"), term("XCORE", "lo"))
		ifc := g.chain("MI", 1+g.rng.Intn(2), term("XCORE", "if"), term("POUT", "p"))
		anchors := append(append(rf, lo...), ifc...)
		g.stubsOn(anchors, 1+g.rng.Intn(3))
		g.biasBlocks(g.rng.Intn(3))
	case ShapePA:
		g.addDevice(pin)
		g.addDevice(pout)
		stages := g.chain("P", 2+g.rng.Intn(2), term("PIN", "p"), term("POUT", "p"))
		g.stubsOn(stages, 1+g.rng.Intn(2))
		g.biasBlocks(1 + g.rng.Intn(4))
	default: // ShapeLNA
		g.addDevice(pin)
		g.addDevice(pout)
		stages := g.chain("M", 2+g.rng.Intn(3), term("PIN", "p"), term("POUT", "p"))
		g.stubsOn(stages, 2+g.rng.Intn(3))
		g.biasBlocks(g.rng.Intn(2))
	}

	c := netlist.NewCircuit(fmt.Sprintf("fuzz%d", g.p.Seed), g.t, 0, 0)
	for _, d := range g.devices {
		c.AddDevice(d)
	}
	for _, ms := range g.strips {
		c.AddMicrostrip(ms)
	}
	g.sizeArea(c)
	return c
}

func term(dev, pin string) netlist.Terminal { return netlist.Terminal{Device: dev, Pin: pin} }

// sizeArea picks the layout area for the assembled circuit: large enough
// that a serpentine of rows can realize the total strip length plus the
// device widths (the same capacity model circuits.LargeSpec uses), shaped by
// the profile's aspect regime. If the first estimate still fails validation
// (pathological aspect ratios can leave a side too short for the widest
// device) the area grows deterministically until the circuit validates.
func (g *generator) sizeArea(c *netlist.Circuit) {
	var need geom.Coord
	for _, ms := range c.Microstrips {
		need += ms.TargetLength
	}
	for _, d := range c.Devices {
		need += d.Width + d.Height
	}
	needUM := geom.Microns(need) * 1.35

	ratio := 1.0
	switch g.p.Aspect {
	case AspectWide:
		ratio = 3.5
	case AspectTall:
		ratio = 1.0 / 3.5
	}
	// Rows available ≈ H/130 µm, each carrying ≈ 0.78·W of usable length:
	// capacity = (H/130)·(ratio·H)·0.78 ⇒ H = sqrt(need·130/(0.78·ratio)).
	h := math.Sqrt(needUM * 130 / (0.78 * ratio))
	w := ratio * h
	for i := 0; i < 32; i++ {
		c.AreaWidth = geom.FromMicrons(math.Round(w))
		c.AreaHeight = geom.FromMicrons(math.Round(h))
		if c.Validate() == nil {
			return
		}
		w *= 1.15
		h *= 1.15
	}
}
