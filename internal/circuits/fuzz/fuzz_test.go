package fuzz

import (
	"strings"
	"testing"

	"rficlayout/internal/netlist"
)

// TestGenerateDeterministic: the same seed must yield byte-identical
// canonical text — the property the fuzz harness's replayability and the
// byte-identical-JSONL promise rest on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 2*ProfilePeriod; seed++ {
		a, pa := Generate(seed)
		b, pb := Generate(seed)
		if netlist.Canonical(a) != netlist.Canonical(b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if pa != pb {
			t.Fatalf("seed %d: profiles differ: %+v vs %+v", seed, pa, pb)
		}
	}
}

// TestGenerateValid: every generated circuit passes full netlist validation.
func TestGenerateValid(t *testing.T) {
	for seed := int64(0); seed < 3*ProfilePeriod; seed++ {
		c, p := Generate(seed)
		if err := c.Validate(); err != nil {
			t.Errorf("seed %d (%+v): %v", seed, p, err)
		}
	}
}

// TestGenerateDistinct: different seeds must produce structurally different
// circuits, not just differently named copies — compare canonical text with
// the name line stripped.
func TestGenerateDistinct(t *testing.T) {
	body := func(seed int64) string {
		c, _ := Generate(seed)
		canon := netlist.Canonical(c)
		_, rest, _ := strings.Cut(canon, "\n")
		return rest
	}
	seen := map[string]int64{}
	distinct := 0
	const n = ProfilePeriod
	for seed := int64(0); seed < n; seed++ {
		b := body(seed)
		if _, dup := seen[b]; !dup {
			distinct++
		}
		seen[b] = seed
	}
	// Symmetric profiles deliberately collapse dimensions, so a few
	// collisions are possible in principle; the overwhelming majority must
	// still be structurally unique.
	if distinct < n*9/10 {
		t.Fatalf("only %d of %d seeds are structurally distinct", distinct, n)
	}
}

// TestProfileCoverage: a contiguous block of ProfilePeriod seeds covers the
// whole shape × aspect × lengths × symmetry matrix.
func TestProfileCoverage(t *testing.T) {
	type cellKey struct {
		s Shape
		a Aspect
		l Lengths
		y bool
	}
	cells := map[cellKey]bool{}
	for seed := int64(100); seed < 100+ProfilePeriod; seed++ {
		_, p := Generate(seed)
		cells[cellKey{p.Shape, p.Aspect, p.Lengths, p.Symmetric}] = true
	}
	if len(cells) != ProfilePeriod {
		t.Fatalf("covered %d of %d matrix cells", len(cells), ProfilePeriod)
	}
}

// TestCanonicalRoundTrip: generated circuits survive the canonical-text
// round trip (Parse ∘ Canonical = identity on canonical text), which is what
// makes minimized fixtures committable and replayable.
func TestCanonicalRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		c, _ := Generate(seed)
		canon := netlist.Canonical(c)
		parsed, err := netlist.ParseString(canon)
		if err != nil {
			t.Fatalf("seed %d: reparsing canonical text: %v", seed, err)
		}
		if got := netlist.Canonical(parsed); got != canon {
			t.Fatalf("seed %d: canonical text did not round-trip", seed)
		}
	}
}
