// Package emsim is the RF-simulation substrate that stands in for the
// Agilent ADS full-wave simulations of Figure 11. It models the routed layout
// as a cascade of two-ports: quasi-TEM thin-film microstrip lines whose
// electrical length and loss come from the *routed* geometry (equivalent
// length and bend count), lossy bend discontinuities, and small-signal gain
// stages for the transistors. The absolute numbers are not ADS-accurate, but
// the layout-dependent effects the paper evaluates — gain loss per extra
// bend and detuning from length mismatch — are captured, so the relative
// comparison of manual vs. P-ILP layouts is preserved.
package emsim

import (
	"math"
	"math/cmplx"

	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
)

// TwoPort is an ABCD-parameter two-port network.
type TwoPort struct {
	A, B, C, D complex128
}

// Identity returns the pass-through two-port.
func Identity() TwoPort { return TwoPort{A: 1, D: 1} }

// Cascade multiplies two ABCD matrices (t followed by u).
func (t TwoPort) Cascade(u TwoPort) TwoPort {
	return TwoPort{
		A: t.A*u.A + t.B*u.C,
		B: t.A*u.B + t.B*u.D,
		C: t.C*u.A + t.D*u.C,
		D: t.C*u.B + t.D*u.D,
	}
}

// SParams converts the ABCD matrix to S-parameters in a Z0 reference system.
func (t TwoPort) SParams(z0 float64) (s11, s21, s12, s22 complex128) {
	z := complex(z0, 0)
	den := t.A + t.B/z + t.C*z + t.D
	s11 = (t.A + t.B/z - t.C*z - t.D) / den
	s21 = 2 / den
	s12 = 2 * (t.A*t.D - t.B*t.C) / den
	s22 = (-t.A + t.B/z - t.C*z + t.D) / den
	return
}

// Technology-level microstrip parameters of the thin-film stack (Figure 1a).
const (
	// characteristicImpedance of the 10 µm wide thin-film microstrip (Ω).
	characteristicImpedance = 50.0
	// effectivePermittivity of the SiO2 stack.
	effectivePermittivity = 3.9
	// lossDBPerMMPerGHz is the conductor+dielectric loss slope.
	lossDBPerMMPerGHz = 0.011
	// bendLossDB is the residual loss of one smoothed 90° bend.
	bendLossDB = 0.055
	// stageGainDB is the small-signal gain of one transistor stage at its
	// design bias.
	stageGainDB = 7.4
)

// Line returns the ABCD two-port of a lossy transmission line of the given
// equivalent length (nm) at frequency f (GHz).
func Line(equivalentLength geom.Coord, freqGHz float64) TwoPort {
	lengthM := geom.Microns(equivalentLength) * 1e-6
	lambda := 299792458.0 / (freqGHz * 1e9) / math.Sqrt(effectivePermittivity)
	beta := 2 * math.Pi / lambda
	lossDB := lossDBPerMMPerGHz * (geom.Microns(equivalentLength) / 1000) * freqGHz
	alpha := lossDB / 8.686 / lengthM // Np per metre
	gamma := complex(alpha*lengthM, beta*lengthM)
	z0 := complex(characteristicImpedance, 0)
	return TwoPort{
		A: cmplx.Cosh(gamma),
		B: z0 * cmplx.Sinh(gamma),
		C: cmplx.Sinh(gamma) / z0,
		D: cmplx.Cosh(gamma),
	}
}

// Bends returns the two-port of n smoothed bends: a small extra loss and a
// small series phase perturbation per bend.
func Bends(n int, freqGHz float64) TwoPort {
	if n <= 0 {
		return Identity()
	}
	loss := math.Pow(10, -float64(n)*bendLossDB/20)
	phase := 0.015 * float64(n) * freqGHz / 60
	g := complex(loss*math.Cos(phase), -loss*math.Sin(phase))
	// Model as a slightly lossy, slightly dispersive attenuator.
	return TwoPort{A: 1 / g, D: 1} // attenuation of S21 by g
}

// Stage returns the two-port of one transistor gain stage.
func Stage(freqGHz, centerGHz float64) TwoPort {
	// Gain rolls off away from the design frequency.
	rolloff := 1 / (1 + math.Pow((freqGHz-centerGHz)/(0.35*centerGHz), 2))
	gain := math.Pow(10, stageGainDB/20) * rolloff
	if gain < 0.05 {
		gain = 0.05
	}
	return TwoPort{A: complex(1/gain, 0), D: 1}
}

// Result is one frequency point of a sweep.
type Result struct {
	FreqGHz             float64
	S11dB, S21dB, S22dB float64
}

// SimulateLayout sweeps the RF path of a routed layout from the input pad to
// the output pad: every chain microstrip contributes a line two-port built
// from its *routed* equivalent length and bend count, every transistor on the
// path contributes a gain stage, and residual length mismatch contributes an
// additional detuning stub.
func SimulateLayout(l *layout.Layout, freqsGHz []float64, centerGHz float64) []Result {
	c := l.Circuit
	delta := c.Tech.BendCompensation
	out := make([]Result, 0, len(freqsGHz))
	for _, f := range freqsGHz {
		net := Identity()
		for _, rs := range l.RoutedStrips() {
			net = net.Cascade(Line(rs.EquivalentLength(delta), f))
			net = net.Cascade(Bends(rs.Bends(), f))
			// Length mismatch against the circuit target detunes the
			// matching network: model it as an extra (unwanted) line.
			if mismatch := rs.LengthError(delta); mismatch != 0 {
				net = net.Cascade(Line(geom.AbsCoord(mismatch)*3, f))
			}
			// A gain stage follows every strip that ends on a transistor
			// input.
			if d, err := c.Device(rs.Strip.To.Device); err == nil && d.Type == netlist.Transistor && rs.Strip.To.Pin == "in" {
				net = net.Cascade(Stage(f, centerGHz))
			}
		}
		s11, s21, _, s22 := net.SParams(characteristicImpedance)
		out = append(out, Result{
			FreqGHz: f,
			S11dB:   db(s11),
			S21dB:   db(s21),
			S22dB:   db(s22),
		})
	}
	return out
}

// GainAt returns the S21 value at the frequency closest to f.
func GainAt(results []Result, f float64) float64 {
	best := math.Inf(1)
	gain := math.NaN()
	for _, r := range results {
		if d := math.Abs(r.FreqGHz - f); d < best {
			best = d
			gain = r.S21dB
		}
	}
	return gain
}

// Sweep returns n evenly spaced frequencies covering ±25% around the centre.
func Sweep(centerGHz float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	lo := centerGHz * 0.75
	hi := centerGHz * 1.25
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func db(v complex128) float64 {
	m := cmplx.Abs(v)
	if m <= 0 {
		return -200
	}
	return 20 * math.Log10(m)
}
