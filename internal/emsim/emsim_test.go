package emsim

import (
	"math"
	"testing"

	"rficlayout/internal/geom"
	"rficlayout/internal/manual"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/tech"
)

func TestCascadeIdentity(t *testing.T) {
	line := Line(geom.FromMicrons(200), 60)
	both := Identity().Cascade(line)
	if both != line {
		t.Error("cascading with identity changed the two-port")
	}
}

func TestLineIsReciprocalAndLossy(t *testing.T) {
	line := Line(geom.FromMicrons(500), 94)
	s11, s21, s12, _ := line.SParams(characteristicImpedance)
	if math.Abs(db(s21)-db(s12)) > 1e-9 {
		t.Error("passive line must be reciprocal")
	}
	if db(s21) >= 0 {
		t.Errorf("lossy line has gain %f dB", db(s21))
	}
	if db(s11) > -25 {
		t.Errorf("matched line should have low reflection, got %f dB", db(s11))
	}
	// Longer lines lose more.
	_, s21long, _, _ := Line(geom.FromMicrons(2000), 94).SParams(characteristicImpedance)
	if db(s21long) >= db(s21) {
		t.Error("longer line should be lossier")
	}
}

func TestBendsReduceGain(t *testing.T) {
	_, none, _, _ := Identity().Cascade(Bends(0, 60)).SParams(50)
	_, many, _, _ := Identity().Cascade(Bends(10, 60)).SParams(50)
	if db(many) >= db(none) {
		t.Errorf("10 bends (%f dB) should lose more than 0 bends (%f dB)", db(many), db(none))
	}
}

func TestStagePeaksAtCenter(t *testing.T) {
	_, atCenter, _, _ := Identity().Cascade(Stage(60, 60)).SParams(50)
	_, offCenter, _, _ := Identity().Cascade(Stage(45, 60)).SParams(50)
	if db(atCenter) <= 0 {
		t.Errorf("stage gain %f dB at centre should be positive", db(atCenter))
	}
	if db(offCenter) >= db(atCenter) {
		t.Error("gain should roll off away from the centre frequency")
	}
}

func TestSweepAndGainAt(t *testing.T) {
	fs := Sweep(60, 11)
	if len(fs) != 11 || fs[0] >= fs[10] {
		t.Fatalf("sweep = %v", fs)
	}
	res := []Result{{FreqGHz: 59, S21dB: 1}, {FreqGHz: 60, S21dB: 2}, {FreqGHz: 61, S21dB: 3}}
	if GainAt(res, 60.2) != 2 {
		t.Error("GainAt picked the wrong point")
	}
}

// buildAmp builds a 2-stage amplifier and lays it out with both flows.
func TestPILPLayoutBeatsBendHeavyManualLayout(t *testing.T) {
	c := netlist.NewCircuit("amp2", tech.Default90nm(), geom.FromMicrons(500), geom.FromMicrons(380))
	for _, name := range []string{"M1", "M2"} {
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("in", geom.PtMicrons(-20, 0), 0)
		d.AddPin("out", geom.PtMicrons(20, 0), 0)
		c.AddDevice(d)
	}
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	c.Connect("TL1", "PIN", "p", "M1", "in", geom.FromMicrons(150))
	c.Connect("TL2", "M1", "out", "M2", "in", geom.FromMicrons(180))
	c.Connect("TL3", "M2", "out", "POUT", "p", geom.FromMicrons(160))

	manualLayout, err := manual.Generate(c, manual.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pilpLayout, err := pilp.Construct(c)
	if err != nil {
		t.Fatal(err)
	}

	freqs := Sweep(60, 41)
	manualRes := SimulateLayout(manualLayout, freqs, 60)
	pilpRes := SimulateLayout(pilpLayout, freqs, 60)
	if len(manualRes) != len(freqs) || len(pilpRes) != len(freqs) {
		t.Fatal("wrong sweep length")
	}
	gManual := GainAt(manualRes, 60)
	gPILP := GainAt(pilpRes, 60)
	if math.IsNaN(gManual) || math.IsNaN(gPILP) {
		t.Fatal("NaN gain")
	}
	// The meander-heavy manual layout must not out-perform the low-bend
	// layout at the operating frequency (the Figure 11 relationship).
	if gManual > gPILP+0.01 {
		t.Errorf("manual gain %.2f dB exceeds low-bend layout gain %.2f dB", gManual, gPILP)
	}
}
