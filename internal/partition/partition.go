// Package partition clusters the devices of a circuit by net connectivity so
// that the phase-1 global adjustment of internal/pilp can be sharded into
// cluster-local sub-MILPs (see ilpmodel.BuildSub). Clustering is a capped
// union-find over the microstrip graph: strips are processed in name order
// and merge their terminal devices while the combined cluster stays within
// the size cap; the leftover components are then first-fit packed, again in
// name order, so small fragments and unconnected bias blocks do not each
// become their own shard. Every step breaks ties on device/strip names, so
// the partition is a pure function of the circuit — the property the flow's
// determinism contract needs.
package partition

import (
	"sort"

	"rficlayout/internal/netlist"
)

// Options tunes the clustering.
type Options struct {
	// MaxDevices caps the non-pad devices per cluster. Zero means 8.
	MaxDevices int
}

func (o Options) maxDevices() int {
	if o.MaxDevices > 0 {
		return o.MaxDevices
	}
	return 8
}

// Cluster is one shard of the device graph. Pads are never cluster members:
// phase 1 keeps them fixed, so they act as frozen anchors for every cluster.
type Cluster struct {
	// Devices are the non-pad devices the cluster owns, sorted by name.
	Devices []string
	// Strips are the microstrips the cluster owns (its sub-model frees them),
	// sorted by name. A strip is owned by the lowest-indexed cluster among
	// its terminal devices' clusters; strips touching only pads belong to
	// cluster 0. Boundary is a subset of Strips.
	Strips []string
	// Boundary lists the owned strips whose far terminal device lies in
	// another cluster. The owning sub-model pins that terminal to the layout
	// snapshot and binds it through a penalized slack.
	Boundary []string
	// Adjacent lists the boundary strips of other clusters that terminate on
	// one of this cluster's devices. The cluster's sub-model frees them too
	// (with slack at the owner-side terminal) so its devices stay tethered
	// to the shared net instead of drifting away from a frozen route — but
	// only the owner's solved route is merged.
	Adjacent []string
}

// Clusters partitions the circuit's non-pad devices into connectivity
// clusters of at most opts.MaxDevices devices each and assigns every
// microstrip to exactly one owning cluster. The result is deterministic:
// equal circuits (up to declaration order) produce equal partitions.
func Clusters(c *netlist.Circuit, opts Options) []Cluster {
	cap := opts.maxDevices()

	devices := make([]string, 0, len(c.Devices))
	for _, d := range c.Devices {
		if !d.IsPad() {
			devices = append(devices, d.Name)
		}
	}
	sort.Strings(devices)
	if len(devices) == 0 {
		return nil
	}

	uf := newUnionFind(devices)

	// Merge along microstrips in strip-name order while the cap holds.
	strips := append([]*netlist.Microstrip(nil), c.Microstrips...)
	sort.Slice(strips, func(i, j int) bool { return strips[i].Name < strips[j].Name })
	for _, ms := range strips {
		a, aok := uf.index[ms.From.Device]
		b, bok := uf.index[ms.To.Device]
		if !aok || !bok {
			continue // pad terminal: never clustered
		}
		uf.union(a, b, cap)
	}

	// Collect components, each sorted by name, ordered by their first device.
	byRoot := map[int][]string{}
	for i, name := range devices {
		r := uf.find(i)
		byRoot[r] = append(byRoot[r], name)
	}
	components := make([][]string, 0, len(byRoot))
	for _, names := range byRoot {
		sort.Strings(names)
		components = append(components, names)
	}
	sort.Slice(components, func(i, j int) bool { return components[i][0] < components[j][0] })

	// First-fit pack the components so fragments and unconnected devices
	// share shards instead of each spawning a tiny sub-solve.
	var packed [][]string
	for _, comp := range components {
		placed := false
		for i := range packed {
			if len(packed[i])+len(comp) <= cap {
				packed[i] = append(packed[i], comp...)
				placed = true
				break
			}
		}
		if !placed {
			packed = append(packed, append([]string(nil), comp...))
		}
	}
	clusters := make([]Cluster, len(packed))
	clusterOf := map[string]int{}
	for i, names := range packed {
		sort.Strings(names)
		clusters[i].Devices = names
		for _, n := range names {
			clusterOf[n] = i
		}
	}

	// Strip ownership: lowest-indexed terminal cluster wins; pad-only strips
	// fall to cluster 0. Strips spanning two clusters are boundary strips of
	// their owner.
	for _, ms := range strips {
		from, fok := clusterOf[ms.From.Device]
		to, tok := clusterOf[ms.To.Device]
		owner := 0
		switch {
		case fok && tok:
			if to < from {
				from, to = to, from
			}
			owner = from
		case fok:
			owner = from
		case tok:
			owner = to
		}
		clusters[owner].Strips = append(clusters[owner].Strips, ms.Name)
		if fok && tok && from != to {
			clusters[owner].Boundary = append(clusters[owner].Boundary, ms.Name)
			clusters[to].Adjacent = append(clusters[to].Adjacent, ms.Name)
		}
	}
	return clusters
}

// unionFind is a plain union-by-size structure over an indexed name set.
type unionFind struct {
	parent []int
	size   []int
	index  map[string]int
}

func newUnionFind(names []string) *unionFind {
	uf := &unionFind{
		parent: make([]int, len(names)),
		size:   make([]int, len(names)),
		index:  make(map[string]int, len(names)),
	}
	for i, n := range names {
		uf.parent[i] = i
		uf.size[i] = 1
		uf.index[n] = i
	}
	return uf
}

func (uf *unionFind) find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

// union merges the components of a and b unless the merged size would exceed
// cap. The smaller-index root wins so the outcome never depends on argument
// order.
func (uf *unionFind) union(a, b, cap int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra]+uf.size[rb] > cap {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
