package partition

import (
	"reflect"
	"testing"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/tech"
)

// chainCircuit builds PIN → M1 → … → Mn → POUT with one stub capacitor per
// even-numbered transistor.
func chainCircuit(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("chain", tech.Default90nm(), geom.FromMicrons(900), geom.FromMicrons(700))
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	prev, prevPin := "PIN", "p"
	strip := 0
	for i := 1; i <= n; i++ {
		name := deviceName("M", i)
		d := netlist.NewDevice(name, netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
		d.AddPin("in", geom.PtMicrons(-20, 0), 0)
		d.AddPin("out", geom.PtMicrons(20, 0), 0)
		c.AddDevice(d)
		strip++
		c.Connect(deviceName("TL", strip), prev, prevPin, name, "in", geom.FromMicrons(120))
		prev, prevPin = name, "out"
		if i%2 == 0 {
			cap := deviceName("C", i)
			cd := netlist.NewDevice(cap, netlist.Capacitor, geom.FromMicrons(30), geom.FromMicrons(25))
			cd.AddPin("p", geom.PtMicrons(0, -12), 0)
			c.AddDevice(cd)
			strip++
			c.Connect(deviceName("TS", strip), name, "out", cap, "p", geom.FromMicrons(80))
		}
	}
	strip++
	c.Connect(deviceName("TL", strip), prev, prevPin, "POUT", "p", geom.FromMicrons(120))
	return c
}

func deviceName(prefix string, i int) string {
	// Zero-padded so lexicographic order matches numeric order in tests.
	const digits = "0123456789"
	return prefix + string([]byte{digits[i/10%10], digits[i%10]})
}

func TestClustersRespectCapAndCoverEveryDevice(t *testing.T) {
	c := chainCircuit(t, 12) // 12 transistors + 6 caps = 18 non-pad devices
	clusters := Clusters(c, Options{MaxDevices: 5})
	if len(clusters) < 4 {
		t.Fatalf("got %d clusters, want >= 4", len(clusters))
	}
	seen := map[string]int{}
	for i, cl := range clusters {
		if len(cl.Devices) == 0 {
			t.Errorf("cluster %d is empty", i)
		}
		if len(cl.Devices) > 5 {
			t.Errorf("cluster %d has %d devices, cap is 5", i, len(cl.Devices))
		}
		for _, d := range cl.Devices {
			if prev, dup := seen[d]; dup {
				t.Errorf("device %s in clusters %d and %d", d, prev, i)
			}
			seen[d] = i
		}
	}
	for _, d := range c.NonPadDevices() {
		if _, ok := seen[d.Name]; !ok {
			t.Errorf("device %s not clustered", d.Name)
		}
	}
	for _, d := range c.Pads() {
		if _, ok := seen[d.Name]; ok {
			t.Errorf("pad %s must not be clustered", d.Name)
		}
	}
}

func TestEveryStripOwnedExactlyOnce(t *testing.T) {
	c := chainCircuit(t, 12)
	clusters := Clusters(c, Options{MaxDevices: 5})
	owner := map[string]int{}
	for i, cl := range clusters {
		inBoundary := map[string]bool{}
		for _, s := range cl.Boundary {
			inBoundary[s] = true
		}
		owned := map[string]bool{}
		for _, s := range cl.Strips {
			if prev, dup := owner[s]; dup {
				t.Errorf("strip %s owned by clusters %d and %d", s, prev, i)
			}
			owner[s] = i
			owned[s] = true
		}
		for _, s := range cl.Boundary {
			if !owned[s] {
				t.Errorf("boundary strip %s of cluster %d not in its Strips", s, i)
			}
		}
		_ = inBoundary
	}
	for _, ms := range c.Microstrips {
		if _, ok := owner[ms.Name]; !ok {
			t.Errorf("strip %s unowned", ms.Name)
		}
	}
}

func TestBoundaryStripsSpanClusters(t *testing.T) {
	c := chainCircuit(t, 12)
	clusters := Clusters(c, Options{MaxDevices: 5})
	clusterOf := map[string]int{}
	for i, cl := range clusters {
		for _, d := range cl.Devices {
			clusterOf[d] = i
		}
	}
	boundary := map[string]bool{}
	total := 0
	for _, cl := range clusters {
		for _, s := range cl.Boundary {
			boundary[s] = true
			total++
		}
	}
	if total == 0 {
		t.Fatal("a 12-stage chain split into >=4 clusters must have boundary strips")
	}
	for _, ms := range c.Microstrips {
		fc, fok := clusterOf[ms.From.Device]
		tc, tok := clusterOf[ms.To.Device]
		spans := fok && tok && fc != tc
		if spans != boundary[ms.Name] {
			t.Errorf("strip %s: spans-clusters=%v but boundary=%v", ms.Name, spans, boundary[ms.Name])
		}
	}
}

// TestClustersDeterministicUnderDeclarationOrder reorders the circuit's
// slices and requires the identical partition — the property the flow's
// determinism (and the result cache) builds on.
func TestClustersDeterministicUnderDeclarationOrder(t *testing.T) {
	a := chainCircuit(t, 12)
	b := chainCircuit(t, 12)
	// Reverse declaration order in b.
	for i, j := 0, len(b.Devices)-1; i < j; i, j = i+1, j-1 {
		b.Devices[i], b.Devices[j] = b.Devices[j], b.Devices[i]
	}
	for i, j := 0, len(b.Microstrips)-1; i < j; i, j = i+1, j-1 {
		b.Microstrips[i], b.Microstrips[j] = b.Microstrips[j], b.Microstrips[i]
	}
	ca := Clusters(a, Options{MaxDevices: 5})
	cb := Clusters(b, Options{MaxDevices: 5})
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("partition depends on declaration order:\n%v\nvs\n%v", ca, cb)
	}
}

func TestUnconnectedDevicesPackTogether(t *testing.T) {
	c := netlist.NewCircuit("loose", tech.Default90nm(), geom.FromMicrons(600), geom.FromMicrons(600))
	for i := 1; i <= 6; i++ {
		d := netlist.NewDevice(deviceName("B", i), netlist.Capacitor, geom.FromMicrons(30), geom.FromMicrons(25))
		d.AddPin("p", geom.PtMicrons(0, -12), 0)
		c.AddDevice(d)
	}
	clusters := Clusters(c, Options{MaxDevices: 4})
	if len(clusters) != 2 {
		t.Fatalf("6 singletons under cap 4 should pack into 2 clusters, got %d", len(clusters))
	}
	if len(clusters[0].Devices) != 4 || len(clusters[1].Devices) != 2 {
		t.Errorf("first-fit packing gave sizes %d/%d, want 4/2",
			len(clusters[0].Devices), len(clusters[1].Devices))
	}
}

func TestNoDevicesNoClusters(t *testing.T) {
	c := netlist.NewCircuit("pads", tech.Default90nm(), geom.FromMicrons(300), geom.FromMicrons(300))
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	if got := Clusters(c, Options{}); got != nil {
		t.Errorf("pad-only circuit clustered: %v", got)
	}
}
