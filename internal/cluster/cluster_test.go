package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rficlayout/internal/faultinject"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080,http://h3:8080")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{Name: "a", URL: "http://h1:8080"},
		{Name: "b", URL: "http://h2:8080"},
		{Name: "http://h3:8080", URL: "http://h3:8080"},
	}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v, want %v", peers, want)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %v, want %v", i, peers[i], want[i])
		}
	}

	for _, bad := range []string{"a=http://h1,a=http://h2", "=http://h1", "a="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted, want error", bad)
		}
	}
}

// testKeys returns n distinct hex content addresses with the statistics the
// ring sees in production — SHA-256 output, not sequential strings. That
// matters: FNV places near-identical strings close together on the circle, so
// sequential keys would all land in a handful of arcs and prove nothing about
// balance.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("circuit-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	peers := []Peer{{Name: "a", URL: "u1"}, {Name: "b", URL: "u2"}, {Name: "c", URL: "u3"}}
	r1 := NewRing(peers, 0)
	// Same name set in a different order and with different URLs must map every
	// key identically: ownership is a pure function of the sorted name set.
	shuffled := []Peer{{Name: "c", URL: "x3"}, {Name: "a", URL: "x1"}, {Name: "b", URL: "x2"}}
	r2 := NewRing(shuffled, 0)

	counts := map[string]int{}
	for _, k := range testKeys(1000) {
		p1, ok1 := r1.Owner(k)
		p2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 {
			t.Fatal("non-empty ring owned nothing")
		}
		if p1.Name != p2.Name {
			t.Fatalf("key %s: owner %q vs %q across peer orderings", k[:8], p1.Name, p2.Name)
		}
		counts[p1.Name]++
	}
	if len(counts) != 3 {
		t.Errorf("owners seen = %v, want all 3 peers", counts)
	}
	// 64 vnodes gives rough, not perfect, balance; guard against the
	// pathological case (one peer starved), not hash variance.
	for name, n := range counts {
		if n < 50 {
			t.Errorf("peer %q owns only %d/1000 keys; ring badly unbalanced", name, n)
		}
	}
}

func TestRingMembershipChangeOnlyRemapsLostKeys(t *testing.T) {
	full := NewRing([]Peer{{Name: "a"}, {Name: "b"}, {Name: "c"}}, 0)
	without := NewRing([]Peer{{Name: "a"}, {Name: "b"}}, 0)
	moved := 0
	for _, k := range testKeys(1000) {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before.Name != "c" && before.Name != after.Name {
			t.Fatalf("key %s moved %q -> %q though its owner stayed in the ring", k[:8], before.Name, after.Name)
		}
		if before.Name == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("peer c owned no keys; test proves nothing")
	}
}

func TestEmptyRingOwnsNothing(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	var c *Cluster
	if _, remote := c.Owner("k"); remote {
		t.Fatal("nil cluster claimed a remote owner")
	}
	if c.Snapshot() != nil {
		t.Fatal("nil cluster returned a snapshot")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := Config{BackoffBase: 50 * time.Millisecond, BackoffMax: 2 * time.Second}
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := backoffDelay(cfg, "somekey", attempt)
		d2 := backoffDelay(cfg, "somekey", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff %v vs %v not deterministic", attempt, d1, d2)
		}
		if d1 < cfg.BackoffBase/2 {
			t.Errorf("attempt %d: backoff %v below half the base", attempt, d1)
		}
		if d1 > cfg.BackoffMax+cfg.BackoffMax/2 {
			t.Errorf("attempt %d: backoff %v above 1.5x the cap", attempt, d1)
		}
	}
	if backoffDelay(cfg, "key-a", 1) == backoffDelay(cfg, "key-b", 1) {
		t.Log("note: two keys drew identical jitter (possible but unlikely)")
	}
}

func TestAuditSampledDeterministicRate(t *testing.T) {
	const every = 8
	sampled := 0
	for _, k := range testKeys(4000) {
		if AuditSampled(k, every) {
			sampled++
		}
		if AuditSampled(k, every) != AuditSampled(k, every) {
			t.Fatal("AuditSampled not deterministic")
		}
	}
	// A hash sample of rate 1/8 over 4000 keys: accept a generous band.
	if sampled < 250 || sampled > 750 {
		t.Errorf("sampled %d/4000 at every=%d, want roughly 500", sampled, every)
	}
	if AuditSampled("k", 0) || AuditSampled("k", -1) {
		t.Error("AuditSampled fired with sampling disabled")
	}
}

func TestRetryAfterFormat(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {time.Millisecond, "1"}, {time.Second, "1"}, {1500 * time.Millisecond, "2"}, {3 * time.Second, "3"},
	} {
		if got := RetryAfter(tc.d); got != tc.want {
			t.Errorf("RetryAfter(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// newTestCluster builds a two-node cluster whose remote peer is the given
// test server, with fast backoff so retry tests stay quick.
func newTestCluster(t *testing.T, ownerURL string, cfgTweak func(*Config)) (*Cluster, Peer) {
	t.Helper()
	cfg := Config{
		Self:           "self",
		Peers:          []Peer{{Name: "self", URL: "http://unused"}, {Name: "owner", URL: ownerURL}},
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		RetryBudget:    10,
	}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	return New(cfg), Peer{Name: "owner", URL: ownerURL}
}

func TestForwardRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(HeaderForwardedFrom); got != "self" {
			t.Errorf("forwarded request missing ownership header, got %q", got)
		}
		if calls.Add(1) < 3 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "layout-bytes")
	}))
	defer srv.Close()

	c, owner := newTestCluster(t, srv.URL, nil)
	body, err := c.Forward(context.Background(), owner, "k1", []byte("circuit"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "layout-bytes" {
		t.Fatalf("body = %q", body)
	}
	if got := c.stats.Retried.Load(); got != 2 {
		t.Errorf("retried = %d, want 2", got)
	}
	if got := c.stats.AttemptFailures.Load(); got != 2 {
		t.Errorf("attempt failures = %d, want 2", got)
	}
}

func TestForwardDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad circuit", http.StatusBadRequest)
	}))
	defer srv.Close()

	c, owner := newTestCluster(t, srv.URL, nil)
	if _, err := c.Forward(context.Background(), owner, "k1", []byte("x"), nil); err == nil {
		t.Fatal("4xx forwarded as success")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("owner called %d times for a 4xx, want 1 (not retryable)", n)
	}
}

func TestForwardHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "admission queue full, retry later", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	// BackoffMax above 1s so the hint is not clipped.
	c, owner := newTestCluster(t, srv.URL, func(cfg *Config) { cfg.BackoffMax = 2 * time.Second })
	start := time.Now()
	if _, err := c.Forward(context.Background(), owner, "k1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry after %v, want >= 1s per the owner's Retry-After hint", elapsed)
	}
}

func TestForwardRetryBudgetExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	// Budget of 1 token: the operation earns a tenth, has 10 tenths initially
	// (the full budget), spends it on the first retry, then is denied.
	c, owner := newTestCluster(t, srv.URL, func(cfg *Config) {
		cfg.RetryBudget = 1
		cfg.MaxAttempts = 5
	})
	if _, err := c.Forward(context.Background(), owner, "k1", nil, nil); err == nil {
		t.Fatal("forward succeeded against a dead owner")
	}
	if got := c.stats.BudgetExhausted.Load(); got != 1 {
		t.Errorf("budget_exhausted = %d, want 1", got)
	}
	if got := c.stats.Retried.Load(); got != 1 {
		t.Errorf("retried = %d, want 1 (second retry denied by budget)", got)
	}
}

func TestForwardInjectedFaultsCountAsAttemptFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	plan, err := faultinject.ParsePlan(faultinject.PointClusterDial + "=1.0/2")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(plan, 7))
	defer faultinject.Disable()

	c, owner := newTestCluster(t, srv.URL, nil)
	if _, err := c.Forward(context.Background(), owner, "k1", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Budget of 2 dial faults: attempts 1 and 2 fail before any request is
	// issued, attempt 3 reaches the owner.
	if n := calls.Load(); n != 1 {
		t.Errorf("owner called %d times, want 1 (dial faults fail before I/O)", n)
	}
	if got := c.stats.AttemptFailures.Load(); got != 2 {
		t.Errorf("attempt failures = %d, want 2 (== fired faults)", got)
	}
	if got := c.stats.Retried.Load(); got != 2 {
		t.Errorf("retried = %d, want 2", got)
	}
}

func TestForwardCancelledContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, owner := newTestCluster(t, srv.URL, func(cfg *Config) { cfg.BackoffBase = time.Hour; cfg.BackoffMax = time.Hour })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Forward(ctx, owner, "k1", nil, nil)
	if err == nil {
		t.Fatal("forward succeeded after context expiry")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled forward did not abort the backoff sleep")
	}
}
