package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Peer is one member of the serving ring: a stable name (what the ring
// hashes, what the ownership header carries) and the URL the peer client
// dials. Keeping the two apart matters: dial addresses may change across
// restarts (containers, port-zero test topologies) without remapping a single
// key, because ownership is a pure function of the name set.
type Peer struct {
	Name string
	URL  string
}

// ParsePeers parses a comma-separated peer list of [name=]url entries, e.g.
//
//	a=http://10.0.0.1:8080,b=http://10.0.0.2:8080
//
// A bare URL is its own name — fine for static production fleets where
// addresses are stable identities.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		p := Peer{Name: field, URL: field}
		// A name is anything before the first '=' that does not look like the
		// start of a URL (scheme separators contain "://", never a bare '=').
		if name, url, ok := strings.Cut(field, "="); ok && !strings.Contains(name, "/") {
			if name == "" || url == "" {
				return nil, fmt.Errorf("cluster: peer %q is not [name=]url", field)
			}
			p = Peer{Name: name, URL: url}
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		peers = append(peers, p)
	}
	return peers, nil
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring maps content-address keys to owner peers by consistent hashing: each
// peer name is hashed onto a circle at vnodes points, a key is owned by the
// first point clockwise of its own hash. The mapping is a pure function of
// the sorted peer-name set — membership change (a restarted fleet with an
// edited -peers list) rehashes deterministically, and adding or removing one
// peer only remaps the keys that peer gains or loses.
type Ring struct {
	points []ringPoint
	peers  []Peer
	byName map[string]Peer
}

// DefaultVNodes balances ownership evenly enough for small static fleets
// while keeping the ring tiny.
const DefaultVNodes = 64

// NewRing builds the ring over the peer set. vnodes <= 0 means DefaultVNodes.
func NewRing(peers []Peer, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{byName: make(map[string]Peer, len(peers))}
	r.peers = append(r.peers, peers...)
	sort.Slice(r.peers, func(i, j int) bool { return r.peers[i].Name < r.peers[j].Name })
	for _, p := range r.peers {
		r.byName[p.Name] = p
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p.Name, v)), peer: p.Name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between peers resolve by name so the mapping stays a
		// pure function of the peer set, never of insertion order.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Owner returns the peer owning key (a hex content address). An empty ring
// owns nothing.
func (r *Ring) Owner(key string) (Peer, bool) {
	if r == nil || len(r.points) == 0 {
		return Peer{}, false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.byName[r.points[i].peer], true
}

// Peers returns the members in name order.
func (r *Ring) Peers() []Peer {
	if r == nil {
		return nil
	}
	return append([]Peer(nil), r.peers...)
}

// ringHash is the circle position of a name or key: FNV-64a, identical on
// every platform, so every replica computes the identical ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
