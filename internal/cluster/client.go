package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rficlayout/internal/faultinject"
)

// forwardError wraps the last failure of a forward operation with how it was
// classified; callers only need the message (every forward failure degrades
// to a local solve), the classification drives the retry loop.
type forwardError struct {
	err       error
	retryable bool
	// retryAfter is the owner's Retry-After hint on a 503, zero otherwise.
	retryAfter time.Duration
}

func (e *forwardError) Error() string { return e.err.Error() }
func (e *forwardError) Unwrap() error { return e.err }

// attempt issues one forward attempt against the owner and classifies the
// outcome. The three cluster fault points bracket the real I/O so a chaos
// schedule can fail the dial, the exchange, or the body read without a real
// network: each fired fault is exactly one failed attempt, which is what lets
// the chaos battery reconcile retried+degraded against fired-fault counts.
func (c *Client) attempt(ctx context.Context, ownerURL, path string, body []byte, hdr http.Header, timeout time.Duration) ([]byte, *forwardError) {
	if err := faultinject.ErrorAt(faultinject.PointClusterDial); err != nil {
		return nil, &forwardError{err: err, retryable: true}
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, ownerURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, &forwardError{err: err}
	}
	req.Header.Set("Content-Type", "text/plain")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return nil, &forwardError{err: err, retryable: true}
	}
	defer resp.Body.Close()
	if faultinject.Fired(faultinject.PointClusterForward) {
		return nil, &forwardError{err: fmt.Errorf("faultinject: injected error at %s", faultinject.PointClusterForward), retryable: true}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		fe := &forwardError{
			err:       fmt.Errorf("owner answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg)),
			retryable: resp.StatusCode >= 500,
		}
		// A 503 carries the owner's back-off hint; honoring it is what keeps a
		// fleet of retrying peers from hammering a node that just shed load.
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				fe.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, fe
	}
	if err := faultinject.ErrorAt(faultinject.PointClusterBody); err != nil {
		return nil, &forwardError{err: err, retryable: true}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &forwardError{err: err, retryable: true}
	}
	return data, nil
}

// Client is the retrying peer HTTP client. Every forward operation makes at
// most MaxAttempts attempts, each under its own timeout, separated by
// deterministic jittered exponential backoff; a process-wide retry budget
// caps how many retries may be outstanding relative to fresh requests, so a
// fleet-wide brownout cannot amplify itself through retry storms.
type Client struct {
	cfg        Config
	httpClient *http.Client
	stats      *Stats
}

// Forward sends one solve to the owner node and returns the response body of
// the first successful attempt. On every failure path the returned error is
// non-nil and the caller is expected to degrade to a local solve — the
// client never fails a request that the local node could still serve.
func (c *Client) Forward(ctx context.Context, owner Peer, path string, body []byte, query url.Values, hdr http.Header) ([]byte, error) {
	target := path
	if len(query) > 0 {
		target = path + "?" + query.Encode()
	}
	var last *forwardError
	for a := 0; a < c.cfg.maxAttempts(); a++ {
		if a > 0 {
			// Retry gate: budget first (a denied retry fails the operation
			// over to the local fallback), then the deterministic backoff.
			if !c.stats.takeRetryToken() {
				c.stats.BudgetExhausted.Add(1)
				return nil, fmt.Errorf("retry budget exhausted after %v", last.err)
			}
			c.stats.Retried.Add(1)
			delay := backoffDelay(c.cfg, keyOfHeader(hdr), a)
			if last.retryAfter > delay {
				delay = last.retryAfter
			}
			if delay > c.cfg.backoffMax() {
				delay = c.cfg.backoffMax()
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, fe := c.attempt(ctx, owner.URL, target, body, hdr, c.cfg.attemptTimeout())
		if fe == nil {
			return data, nil
		}
		c.stats.AttemptFailures.Add(1)
		last = fe
		if !fe.retryable {
			return nil, fe.err
		}
		if err := ctx.Err(); err != nil {
			// The job was cancelled (deadline, last waiter left): surface the
			// cancellation, not the attempt failure it caused.
			return nil, err
		}
	}
	return nil, fmt.Errorf("all %d attempts failed: %w", c.cfg.maxAttempts(), last.err)
}

// keyOfHeader extracts the content key the forward carries (set by the
// server) so the backoff jitter is a pure function of the request, not of
// scheduling.
func keyOfHeader(hdr http.Header) string { return hdr.Get(HeaderContentKey) }

// backoffDelay is the deterministic jittered exponential backoff before
// retry attempt a (a >= 1): base·2^(a-1), jittered by ±50% where the jitter
// fraction is a splitmix64 draw over (key, attempt). Determinism here is not
// a luxury — it is what makes the chaos battery's retry timing replayable —
// and the per-key jitter still de-synchronizes a thundering herd, because
// different circuits back off on different schedules.
func backoffDelay(cfg Config, key string, attempt int) time.Duration {
	base := cfg.backoffBase()
	d := base << uint(attempt-1)
	if d > cfg.backoffMax() {
		d = cfg.backoffMax()
	}
	x := ringHash(key) ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	// frac in [0.5, 1.5): full-jitter around the exponential midpoint.
	frac := 0.5 + float64(x>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}
