// Package cluster turns a set of rficserve processes into one logical
// solver. A consistent-hash ring over the content address (the SHA-256 cache
// key of canonical circuit + options fingerprint) routes every solve to its
// owner node — cache affinity for free, since the owner's persistent tier
// accumulates exactly the keys it owns — and a retrying peer client forwards
// non-owned requests there. Robustness is the design center:
//
//   - Per-attempt timeouts, bounded retries and deterministic jittered
//     exponential backoff on the peer path; a process-wide retry budget so a
//     brownout cannot amplify itself into a retry storm.
//   - Degraded mode: when the owner is unreachable or over budget, the
//     receiving node solves locally instead of failing the request — the
//     determinism contract guarantees the bytes are identical, so degrading
//     costs cache affinity, never correctness. Counted on /healthz.
//   - Loop safety: a forwarded request carries the ownership header and is
//     never re-forwarded, so peer-list skew during membership change cannot
//     create forwarding cycles; at the owner it joins the regular
//     singleflight index, so N nodes forwarding the same circuit still solve
//     it once.
//   - Cross-replica audit: a deterministic sample of proxied results (a pure
//     function of the content key) is re-solved locally and compared
//     byte-for-byte — the determinism contract as a continuous distributed
//     correctness oracle. Any difference alarms via counter + log.
//
// Membership is a static peer list ([name=]url entries); the ring is a pure
// function of the name set, so an edited list rehashes identically on every
// node, and the existing SIGTERM drain (plus /readyz turning "draining")
// hands off in-flight work before a member leaves.
package cluster

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// Header names of the peer protocol.
const (
	// HeaderForwardedFrom carries the sending node's name on a forwarded
	// request. Its presence is the ownership claim: the receiver solves
	// locally and never re-forwards, which is what makes forwarding loop-free
	// under peer-list skew.
	HeaderForwardedFrom = "X-Rfic-Forwarded-From"
	// HeaderContentKey carries the content address the sender computed, so
	// the receiver can cross-check ownership and the backoff jitter can be a
	// pure function of the request.
	HeaderContentKey = "X-Rfic-Content-Key"
)

// Config assembles a node's view of the cluster.
type Config struct {
	// Self is this node's peer name; it must appear in Peers.
	Self string
	// Peers is the full static membership, this node included.
	Peers []Peer
	// VNodes is the virtual-node count per peer on the ring (0 =
	// DefaultVNodes).
	VNodes int
	// AttemptTimeout bounds each forward attempt (0 = 30s). It should cover
	// the owner's expected solve time, not just its network RTT: a sync solve
	// holds the response open.
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per forward operation (0 = 3).
	MaxAttempts int
	// BackoffBase is the first retry's backoff midpoint (0 = 50ms).
	BackoffBase time.Duration
	// BackoffMax caps any single backoff, including owner Retry-After hints
	// (0 = 2s).
	BackoffMax time.Duration
	// RetryBudget caps outstanding retries: every fresh forward earns 1/10 of
	// a retry token (up to the cap), every retry spends one token (0 = 10
	// tokens). Storms borrow against real traffic instead of multiplying it.
	RetryBudget int
	// AuditEvery samples one of every AuditEvery proxied results for the
	// cross-replica audit, selected by content key (0 = 8; negative disables
	// the audit).
	AuditEvery int
}

func (c Config) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return 30 * time.Second
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 50 * time.Millisecond
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 2 * time.Second
}

func (c Config) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 10
}

func (c Config) auditEvery() int {
	if c.AuditEvery > 0 {
		return c.AuditEvery
	}
	if c.AuditEvery < 0 {
		return 0
	}
	return 8
}

// Stats are the node's cluster counters, surfaced on /healthz. All atomic;
// the chaos battery reconciles them exactly against fired-fault counts.
type Stats struct {
	// Forwarded counts solves successfully answered by their owner node.
	Forwarded atomic.Int64
	// Retried counts peer attempts beyond the first of their operation.
	Retried atomic.Int64
	// AttemptFailures counts every failed peer attempt (each injected
	// cluster fault is exactly one). AttemptFailures == Retried + Degraded
	// when the only failures are injected ones.
	AttemptFailures atomic.Int64
	// Degraded counts forwards that fell back to a local solve.
	Degraded atomic.Int64
	// BudgetExhausted counts retries denied by the retry budget.
	BudgetExhausted atomic.Int64
	// Audited counts proxied results re-solved locally for the
	// cross-replica audit; AuditMismatch counts byte differences found.
	// Any nonzero AuditMismatch is an alarm: the determinism contract is
	// broken somewhere in the fleet.
	Audited       atomic.Int64
	AuditMismatch atomic.Int64

	// retryTokensTenths is the retry budget in tenths of a token.
	retryTokensTenths atomic.Int64
}

// takeRetryToken spends one retry token (10 tenths) if available.
func (s *Stats) takeRetryToken() bool {
	for {
		cur := s.retryTokensTenths.Load()
		if cur < 10 {
			return false
		}
		if s.retryTokensTenths.CompareAndSwap(cur, cur-10) {
			return true
		}
	}
}

// earnRetryTenth credits 1/10 of a retry token for a fresh forward, capped at
// the budget.
func (s *Stats) earnRetryTenth(budget int) {
	for {
		cur := s.retryTokensTenths.Load()
		if cur >= int64(budget)*10 {
			return
		}
		if s.retryTokensTenths.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// StatsSnapshot is the JSON form of Stats.
type StatsSnapshot struct {
	Self            string   `json:"self"`
	Peers           []string `json:"peers"`
	Forwarded       int64    `json:"forwarded"`
	Retried         int64    `json:"retried"`
	AttemptFailures int64    `json:"attempt_failures"`
	Degraded        int64    `json:"degraded"`
	BudgetExhausted int64    `json:"budget_exhausted"`
	Audited         int64    `json:"audited"`
	AuditMismatch   int64    `json:"audit_mismatch"`
}

// Cluster is one node's membership, routing and peer-client state. A nil
// *Cluster is valid and means "single node": Owner never reports remote.
type Cluster struct {
	cfg    Config
	ring   *Ring
	client *Client
	stats  Stats
}

// New assembles a node's cluster view. The ring is built once — membership
// is static; changing it means restarting with a new peer list, which
// rehashes deterministically on every node.
func New(cfg Config) *Cluster {
	c := &Cluster{cfg: cfg, ring: NewRing(cfg.Peers, cfg.VNodes)}
	c.client = &Client{
		cfg: cfg,
		httpClient: &http.Client{
			// No overall client timeout: per-attempt contexts bound each try,
			// and a client-level timeout would race them.
			Transport: http.DefaultTransport,
		},
		stats: &c.stats,
	}
	c.stats.retryTokensTenths.Store(int64(cfg.retryBudget()) * 10)
	return c
}

// Self returns this node's peer name.
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	return c.cfg.Self
}

// Owner resolves the owner of a content key and whether it is a remote peer.
func (c *Cluster) Owner(key string) (Peer, bool) {
	if c == nil {
		return Peer{}, false
	}
	p, ok := c.ring.Owner(key)
	if !ok {
		return Peer{}, false
	}
	return p, p.Name != c.cfg.Self
}

// Forward sends one solve to the owner and returns the response body. The
// fresh operation earns its sliver of retry budget up front; failures have
// already been counted per attempt. The caller counts Forwarded/Degraded —
// only it knows whether the fallback succeeded.
func (c *Cluster) Forward(ctx context.Context, owner Peer, key string, body []byte, query url.Values) ([]byte, error) {
	c.stats.earnRetryTenth(c.cfg.retryBudget())
	hdr := http.Header{}
	hdr.Set(HeaderForwardedFrom, c.cfg.Self)
	hdr.Set(HeaderContentKey, key)
	return c.client.Forward(ctx, owner, "/v1/solve", body, query, hdr)
}

// ShouldAudit reports whether a proxied result under this key is in the
// deterministic audit sample: a pure function of (key, AuditEvery), so every
// replay audits the identical set and the chaos battery can predict the
// audited count exactly.
func (c *Cluster) ShouldAudit(key string) bool {
	if c == nil {
		return false
	}
	return AuditSampled(key, c.cfg.auditEvery())
}

// AuditSampled is the pure audit-sampling predicate shared with harnesses.
func AuditSampled(key string, every int) bool {
	if every <= 0 {
		return false
	}
	return ringHash("audit\x00"+key)%uint64(every) == 0
}

// CountForwarded, CountDegraded and CountAudit record outcomes the client
// cannot see.
func (c *Cluster) CountForwarded() { c.stats.Forwarded.Add(1) }
func (c *Cluster) CountDegraded()  { c.stats.Degraded.Add(1) }
func (c *Cluster) CountAudit(match bool) {
	c.stats.Audited.Add(1)
	if !match {
		c.stats.AuditMismatch.Add(1)
	}
}

// Snapshot returns the counters for /healthz.
func (c *Cluster) Snapshot() *StatsSnapshot {
	if c == nil {
		return nil
	}
	peers := c.ring.Peers()
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	return &StatsSnapshot{
		Self:            c.cfg.Self,
		Peers:           names,
		Forwarded:       c.stats.Forwarded.Load(),
		Retried:         c.stats.Retried.Load(),
		AttemptFailures: c.stats.AttemptFailures.Load(),
		Degraded:        c.stats.Degraded.Load(),
		BudgetExhausted: c.stats.BudgetExhausted.Load(),
		Audited:         c.stats.Audited.Load(),
		AuditMismatch:   c.stats.AuditMismatch.Load(),
	}
}

// RetryAfter formats a Retry-After value in whole seconds, rounding up so a
// sub-second hint never renders as "0" (which clients read as "immediately").
func RetryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
