package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/engine"
	"rficlayout/internal/faultinject"
)

// armFaults installs a fault plan globally for one test. Chaos tests share
// the process-global registry, so none of them may run in parallel.
func armFaults(t *testing.T, spec string, seed int64) *faultinject.Registry {
	t.Helper()
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := faultinject.New(plan, seed)
	faultinject.Enable(r)
	t.Cleanup(faultinject.Disable)
	return r
}

func getHealth(t *testing.T, url string) healthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPanicIsolationKeepsServing checks the panic firewall end to end: a
// panicking solve returns a 500 naming the panic, the panics counter
// increments, and the very next solve on the same server succeeds.
func TestPanicIsolationKeepsServing(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	flaky := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			panic("solver exploded")
		}
		return engineSolver(ctx, job, logf)
	}
	cfg := fastConfig()
	s := newWithSolver(cfg, flaky)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked solve: status %d (%+v), want 500", resp.StatusCode, sr)
	}
	if !strings.Contains(sr.Error, "panicked") {
		t.Errorf("panicked solve error = %q, want it to say panicked", sr.Error)
	}
	if h := getHealth(t, ts.URL); h.Panics != 1 {
		t.Errorf("healthz panics = %d, want 1", h.Panics)
	}
	// The process survived; the next request solves normally.
	resp, sr = postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusOK || sr.Status != "done" {
		t.Fatalf("solve after isolated panic: status %d/%s (%s)", resp.StatusCode, sr.Status, sr.Error)
	}
}

// TestPanicErrorFromEngineCounted checks the other panic path: the engine
// already recovered the panic into an engine.PanicError job error, and the
// server still charges the panics counter.
func TestPanicErrorFromEngineCounted(t *testing.T) {
	armFaults(t, faultinject.PointEnginePanic+"=1/1", 21)
	_, ts := startServer(t, fastConfig())
	resp, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%+v), want 500", resp.StatusCode, sr)
	}
	if !strings.Contains(sr.Error, "injected panic at engine.panic") {
		t.Errorf("error = %q, want the deterministic injected-panic message", sr.Error)
	}
	if h := getHealth(t, ts.URL); h.Panics != 1 {
		t.Errorf("healthz panics = %d, want 1", h.Panics)
	}
	if h := getHealth(t, ts.URL); h.Faults[faultinject.PointEnginePanic].Fired != 1 {
		t.Errorf("healthz faults = %+v, want engine.panic fired once", h.Faults)
	}
}

// TestAcceptPartialParam checks the anytime plumbing: accept_partial=1 sets
// the flow option, a partial result is flagged in the response with its gap
// stats, and partial layouts are never written to the cache.
func TestAcceptPartialParam(t *testing.T) {
	var solves int32
	var mu sync.Mutex
	partialSolver := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		mu.Lock()
		solves++
		mu.Unlock()
		if !job.Options.AcceptPartial {
			return engine.Result{ID: job.ID, Err: fmt.Errorf("AcceptPartial not plumbed through")}
		}
		// Deterministic partial: cancel after construction via the log hook.
		jctx, cancel := context.WithCancel(ctx)
		defer cancel()
		job.Options.Logf = func(format string, args ...interface{}) {
			if strings.Contains(format, "constructed initial layout") {
				cancel()
			}
		}
		res := engine.Run(jctx, []engine.Job{job}, engine.Options{Parallel: 1})[0]
		return res
	}
	cfg := fastConfig()
	cfg.Cache = cache.NewLRU(16, 0)
	s := newWithSolver(cfg, partialSolver)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, sr := postSolve(t, ts.URL+"/v1/solve?accept_partial=1", tinyNetlist)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial solve: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if !sr.Partial {
		t.Fatal("response not marked partial")
	}
	if sr.Layout == "" {
		t.Fatal("partial response carries no layout")
	}
	if sr.Stats == nil || sr.Stats.PartialPhase == "" {
		t.Errorf("partial response names no phase: %+v", sr.Stats)
	}

	// The partial result must not have been cached: the same request solves
	// again rather than hitting the cache.
	resp, sr = postSolve(t, ts.URL+"/v1/solve?accept_partial=1", tinyNetlist)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second partial solve: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.CacheHit {
		t.Fatal("partial result was served from the cache")
	}
	mu.Lock()
	n := solves
	mu.Unlock()
	if n != 2 {
		t.Errorf("solver ran %d times, want 2 (partial results must not cache)", n)
	}

	resp, _ = postSolve(t, ts.URL+"/v1/solve?accept_partial=bogus", tinyNetlist)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus accept_partial: status %d, want 400", resp.StatusCode)
	}
}

// TestGracefulShutdownInflight races Close against active workers: an
// in-flight synchronous solve must get a definite, clean response (its
// result or a shutdown/cancellation failure — never a hang or a crash) and
// every admitted async job must end in a terminal state.
func TestGracefulShutdownInflight(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		started <- struct{}{}
		select {
		case <-release:
			return engine.Result{ID: job.ID, Name: job.Circuit.Name, Err: fmt.Errorf("released without result")}
		case <-ctx.Done():
			return engine.Result{ID: job.ID, Name: job.Circuit.Name, Err: ctx.Err()}
		}
	}
	cfg := fastConfig()
	cfg.Workers = 2
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	distinct := func(i int) string {
		return strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit tiny%d", i), 1)
	}

	// One sync solve and one async job, both occupying workers.
	syncDone := make(chan solveResponse, 1)
	go func() {
		_, sr := postSolve(t, ts.URL+"/v1/solve", distinct(1))
		syncDone <- sr
	}()
	resp, async := postSolve(t, ts.URL+"/v1/solve?async=1", distinct(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async admit: status %d", resp.StatusCode)
	}
	<-started
	<-started

	// Close races both active workers.
	s.Close()

	select {
	case sr := <-syncDone:
		if sr.Status == string(statusQueued) || sr.Status == string(statusRunning) {
			t.Errorf("sync request resolved in non-terminal state %q", sr.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync request hung across Close")
	}

	// The async job must be queryable and terminal: Close cancelled its
	// context, the blocking solver returned the context error, and runJob
	// recorded it before Close's wg.Wait returned.
	j, ok := s.jobs.get(async.ID)
	if !ok {
		t.Fatalf("async job %s lost across shutdown", async.ID)
	}
	snap := j.snapshot()
	if snap.Status != string(statusFailed) && snap.Status != string(statusDone) {
		t.Errorf("async job state %q after Close, want terminal", snap.Status)
	}

	// Admission after Close answers cleanly instead of queueing forever.
	resp, sr := postSolve(t, ts.URL+"/v1/solve", distinct(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-Close solve: status %d (%+v), want 503", resp.StatusCode, sr)
	}
}

// TestChaosScheduleSurvival is the in-package chaos battery: a seeded
// schedule of injected panics, admission failures and torn cache writes runs
// against a live server with a persistent cache, the client retries through
// the faults, and afterwards every /healthz counter must account exactly for
// every injected fault while the final layouts are byte-identical to a
// fault-free baseline. cmd/rficbench -chaos scales the same design up.
func TestChaosScheduleSurvival(t *testing.T) {
	distinct := func(i int) string {
		return strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit chaos%d", i), 1)
	}
	const circuits = 2

	// Fault-free baseline layouts.
	baseline := make([]string, circuits)
	func() {
		_, ts := startServer(t, fastConfig())
		for i := 0; i < circuits; i++ {
			resp, sr := postSolve(t, ts.URL+"/v1/solve", distinct(i))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline circuit %d: status %d (%s)", i, resp.StatusCode, sr.Error)
			}
			baseline[i] = sr.Layout
		}
	}()

	// Chaos server: persistent Dir cache only (a memory tier would mask torn
	// disk entries), pool of 2 so flows are pinned sequential — one injected
	// conc panic aborts exactly one solve, keeping the accounting exact.
	dir, err := cache.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Cache = dir
	reg := armFaults(t,
		faultinject.PointConcPanic+"=0.3/2,"+
			faultinject.PointEnginePanic+"=0.5/1,"+
			faultinject.PointServerAdmit+"=0.5/2,"+
			faultinject.PointCacheTorn+"=0.5/2", 4242)
	_, ts := startServer(t, cfg)

	// solveWithRetry drives one circuit through the fault schedule: 503s and
	// panic 500s are retryable by design; anything else fails the test.
	solveWithRetry := func(i int) solveResponse {
		for attempt := 0; attempt < 10; attempt++ {
			resp, sr := postSolve(t, ts.URL+"/v1/solve", distinct(i))
			switch resp.StatusCode {
			case http.StatusOK:
				return sr
			case http.StatusServiceUnavailable, http.StatusInternalServerError:
				continue
			default:
				t.Fatalf("circuit %d: unexpected status %d (%s)", i, resp.StatusCode, sr.Error)
			}
		}
		t.Fatalf("circuit %d: no success within the retry budget", i)
		return solveResponse{}
	}

	// Enough rounds that every fault budget exhausts and every torn write is
	// read (round r+1 reads round r's writes), plus final verify rounds.
	const rounds = 6
	for r := 0; r < rounds; r++ {
		for i := 0; i < circuits; i++ {
			sr := solveWithRetry(i)
			if sr.Partial {
				t.Fatalf("round %d circuit %d: partial without accept_partial", r, i)
			}
			if sr.Layout != baseline[i] {
				t.Fatalf("round %d circuit %d: layout diverged from fault-free baseline", r, i)
			}
		}
	}

	counts := reg.Counts()
	for point, c := range counts {
		if c.Fired != c.Hits && c.Fired < 1 {
			t.Logf("point %s: %d/%d fired", point, c.Fired, c.Hits)
		}
	}
	h := getHealth(t, ts.URL)

	// Every injected fault is accounted for on /healthz:
	// each fired panic point killed exactly one solve,
	wantPanics := counts[faultinject.PointConcPanic].Fired + counts[faultinject.PointEnginePanic].Fired
	if h.Panics != wantPanics {
		t.Errorf("healthz panics = %d, want %d (injected conc+engine panics)", h.Panics, wantPanics)
	}
	// each injected admission failure was one rejection,
	if h.Rejected != counts[faultinject.PointServerAdmit].Fired {
		t.Errorf("healthz rejected = %d, want %d (injected admission failures)", h.Rejected, counts[faultinject.PointServerAdmit].Fired)
	}
	// and each torn write was detected and quarantined on a later read.
	if h.Cache == nil || h.Cache.Corrupt != counts[faultinject.PointCacheTorn].Fired {
		var got int64 = -1
		if h.Cache != nil {
			got = h.Cache.Corrupt
		}
		t.Errorf("healthz cache corrupt = %d, want %d (torn writes)", got, counts[faultinject.PointCacheTorn].Fired)
	}
	// The faults snapshot rides on /healthz for the harness to reconcile.
	if len(h.Faults) != 4 {
		t.Errorf("healthz faults = %+v, want all 4 armed points", h.Faults)
	}

	// Replaying the schedule dump is byte-identical (the CI artifact claim).
	var a, b strings.Builder
	if err := reg.WriteSchedule(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSchedule(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("fault schedule dump not reproducible")
	}
}
