package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/cluster"
	"rficlayout/internal/engine"
	"rficlayout/internal/netlist"
)

// clusterNode is one member of an in-process test topology.
type clusterNode struct {
	name  string
	srv   *Server
	ts    *httptest.Server
	cache cache.Cache
	cl    *cluster.Cluster
}

func (n *clusterNode) url() string { return n.ts.URL }

// startTwoNodes builds a real two-node cluster on loopback listeners. The
// listeners are created before the servers so both rings see final URLs, and
// the ring hashes names ("a", "b"), so ownership is independent of the random
// ports.
func startTwoNodes(t *testing.T, tweak func(*cluster.Config)) map[string]*clusterNode {
	t.Helper()
	names := []string{"a", "b"}
	lns := map[string]net.Listener{}
	var peers []cluster.Peer
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[name] = ln
		peers = append(peers, cluster.Peer{Name: name, URL: "http://" + ln.Addr().String()})
	}
	nodes := map[string]*clusterNode{}
	for _, name := range names {
		cc := cluster.Config{
			Self:           name,
			Peers:          peers,
			AttemptTimeout: 30 * time.Second,
			BackoffBase:    time.Millisecond,
			BackoffMax:     10 * time.Millisecond,
			AuditEvery:     1,
		}
		if tweak != nil {
			tweak(&cc)
		}
		cl := cluster.New(cc)
		cfg := fastConfig()
		cfg.Cache = cache.NewLRU(16, 0)
		cfg.Cluster = cl
		s := New(cfg)
		ts := &httptest.Server{Listener: lns[name], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() { ts.Close(); s.Close() })
		nodes[name] = &clusterNode{name: name, srv: s, ts: ts, cache: cfg.Cache, cl: cl}
	}
	return nodes
}

// circuitOwnedBy returns a solvable netlist whose content key the given
// cluster maps to the wanted peer, by varying the circuit name until the ring
// cooperates.
func circuitOwnedBy(t *testing.T, cl *cluster.Cluster, want string) (string, string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		nl := strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit tiny%d", i), 1)
		circuit, err := netlist.ParseString(nl)
		if err != nil {
			t.Fatal(err)
		}
		key := cache.Key(circuit, fastConfig().SolveOptions)
		if p, _ := cl.Owner(key); p.Name == want {
			return nl, key
		}
	}
	t.Fatalf("no test circuit hashes to peer %q", want)
	return "", ""
}

func clusterHealth(t *testing.T, url string) *cluster.StatsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatal("healthz missing cluster stats on a clustered node")
	}
	return h.Cluster
}

// TestClusterForwardToOwner drives a solve through the non-owner node and
// checks the full forwarding contract: the result is proxied from the owner,
// byte-identical to solving at the owner directly, and the key's cache entry
// lives only on the owner (cache affinity).
func TestClusterForwardToOwner(t *testing.T) {
	nodes := startTwoNodes(t, nil)
	nl, key := circuitOwnedBy(t, nodes["a"].cl, "b")
	sender, owner := nodes["a"], nodes["b"]

	resp, sr := postSolve(t, sender.url()+"/v1/solve", nl)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded solve: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if !sr.Proxied || sr.Owner != "b" {
		t.Fatalf("response proxied=%v owner=%q, want proxied by b", sr.Proxied, sr.Owner)
	}
	if sr.Degraded {
		t.Fatal("healthy forward marked degraded")
	}
	if sr.Layout == "" {
		t.Fatal("forwarded solve returned no layout")
	}

	// Byte identity with a direct solve at the owner (a cache hit there:
	// the forwarded solve populated the owner's tier).
	_, direct := postSolve(t, owner.url()+"/v1/solve", nl)
	if direct.Layout != sr.Layout {
		t.Error("proxied layout differs from the owner's direct solve")
	}
	if !direct.CacheHit {
		t.Error("owner's tier did not retain the forwarded solve")
	}

	// Cache affinity: the sender must not have cached the remote-owned key.
	if _, ok := sender.cache.Get(key); ok {
		t.Error("sender cached a remote-owned key")
	}

	st := clusterHealth(t, sender.url())
	if st.Forwarded != 1 || st.Degraded != 0 || st.Retried != 0 {
		t.Errorf("sender stats = %+v, want exactly 1 clean forward", st)
	}
	// AuditEvery=1: the proxied result was audited and matched.
	if st.Audited != 1 || st.AuditMismatch != 0 {
		t.Errorf("audited=%d mismatch=%d, want 1/0", st.Audited, st.AuditMismatch)
	}
}

// TestClusterForwardedRequestNotReforwarded pins loop safety: a request
// carrying the ownership header is solved locally even by a node whose own
// ring says another peer owns it.
func TestClusterForwardedRequestNotReforwarded(t *testing.T) {
	nodes := startTwoNodes(t, nil)
	nl, _ := circuitOwnedBy(t, nodes["a"].cl, "b")

	// Send to a (not the owner) with the header claiming b already routed it
	// here. a must solve it itself — re-forwarding would bounce it to b, and
	// under skewed peer lists could cycle forever.
	req, err := http.NewRequest(http.MethodPost, nodes["a"].url()+"/v1/solve", strings.NewReader(nl))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HeaderForwardedFrom, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || sr.Proxied || sr.Degraded {
		t.Fatalf("forwarded request: status=%d proxied=%v degraded=%v, want a plain local solve", resp.StatusCode, sr.Proxied, sr.Degraded)
	}
	if st := clusterHealth(t, nodes["a"].url()); st.Forwarded != 0 {
		t.Errorf("node a re-forwarded a forwarded request (forwarded=%d)", st.Forwarded)
	}
}

// TestClusterDegradedFallback points the owner's URL at a dead port: the
// forward exhausts its attempts and the sender solves locally, marked
// degraded, with the layout byte-identical to a single-node solve.
func TestClusterDegradedFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	cc := cluster.Config{
		Self:           "a",
		Peers:          []cluster.Peer{{Name: "a", URL: "http://unused"}, {Name: "b", URL: deadURL}},
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	}
	cl := cluster.New(cc)
	cfg := fastConfig()
	cfg.Cache = cache.NewLRU(16, 0)
	cfg.Cluster = cl
	_, ts := startServer(t, cfg)

	nl, key := circuitOwnedBy(t, cl, "b")
	resp, sr := postSolve(t, ts.URL+"/v1/solve", nl)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded solve: status %d (%s)", resp.StatusCode, sr.Error)
	}
	if !sr.Degraded || sr.Proxied {
		t.Fatalf("degraded=%v proxied=%v, want a degraded local solve", sr.Degraded, sr.Proxied)
	}

	// Byte identity with a plain single-node solve of the same circuit.
	_, baseTS := startServer(t, fastConfig())
	_, base := postSolve(t, baseTS.URL+"/v1/solve", nl)
	if base.Layout != sr.Layout {
		t.Error("degraded layout differs from single-node solve — determinism broken")
	}

	// Degraded solves stay out of the local cache: the key still belongs to b.
	if _, ok := cfg.Cache.Get(key); ok {
		t.Error("degraded solve cached under a remote-owned key")
	}
	st := clusterHealth(t, ts.URL)
	if st.Degraded != 1 || st.Forwarded != 0 {
		t.Errorf("stats = %+v, want exactly 1 degraded solve", st)
	}
	if st.AttemptFailures != st.Retried+st.Degraded {
		t.Errorf("attempt_failures=%d retried=%d degraded=%d: accounting identity broken",
			st.AttemptFailures, st.Retried, st.Degraded)
	}
}

// TestClusterAuditCatchesMismatch gives the node a lying owner: a fake peer
// answering well-formed responses with the wrong layout. The cross-replica
// audit must catch the difference, alarm, and serve the locally solved bytes.
func TestClusterAuditCatchesMismatch(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &solveResponse{
			ID:     "fake-1",
			Status: string(statusDone),
			Layout: "layout lies\n",
		})
	}))
	defer fake.Close()

	cc := cluster.Config{
		Self:           "a",
		Peers:          []cluster.Peer{{Name: "a", URL: "http://unused"}, {Name: "b", URL: fake.URL}},
		AttemptTimeout: 30 * time.Second,
		AuditEvery:     1,
	}
	cl := cluster.New(cc)
	cfg := fastConfig()
	cfg.Cluster = cl
	_, ts := startServer(t, cfg)

	nl, _ := circuitOwnedBy(t, cl, "b")
	resp, sr := postSolve(t, ts.URL+"/v1/solve", nl)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.Layout == "layout lies\n" {
		t.Fatal("audit let the owner's wrong bytes through")
	}
	if sr.Proxied {
		t.Error("mismatched result still marked proxied")
	}
	if !strings.HasPrefix(sr.Layout, "layout tiny") {
		t.Errorf("audit fallback layout looks wrong: %q", sr.Layout[:min(40, len(sr.Layout))])
	}
	st := clusterHealth(t, ts.URL)
	if st.Audited != 1 || st.AuditMismatch != 1 {
		t.Errorf("audited=%d mismatch=%d, want 1/1", st.Audited, st.AuditMismatch)
	}
}

// TestReadyzLifecycle pins the /readyz contract: ready while serving,
// draining after StartDraining (while /healthz stays ok), not_ready before
// the pool starts.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := startServer(t, fastConfig())

	getReady := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body["status"]
	}

	if code, status := getReady(); code != http.StatusOK || status != "ready" {
		t.Fatalf("fresh server readyz = %d %q, want 200 ready", code, status)
	}

	// Before the pool starts: not_ready. (New flips ready on just before
	// returning; simulate the pre-start window directly.)
	s.ready.Store(false)
	if code, status := getReady(); code != http.StatusServiceUnavailable || status != "not_ready" {
		t.Fatalf("pre-start readyz = %d %q, want 503 not_ready", code, status)
	}
	s.ready.Store(true)

	s.StartDraining()
	if code, status := getReady(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, status)
	}
	// Liveness is unaffected: a draining node is still alive.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionRejectionRetryAfterAndWaiterRelease fills the queue and checks
// two things about the 503 that comes back: it carries a Retry-After hint,
// and the rejected job's waiter refcount drops to zero (the creator's slot is
// released, so a rejected job can never pin cancellation bookkeeping — the
// regression the forwarding path would turn into a leaked remote solve).
func TestAdmissionRejectionRetryAfterAndWaiterRelease(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return engine.Result{ID: job.ID, Err: context.Canceled}
	}
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(release)
		ts.Close()
		s.Close()
	}()

	// Distinct circuits so singleflight cannot coalesce them: one occupies
	// the worker, one fills the queue, the third is rejected.
	distinct := func(i int) string {
		return strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit fill%d", i), 1)
	}
	for i := 0; i < 2; i++ {
		resp, sr := postSolve(t, ts.URL+"/v1/solve?async=1", distinct(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d: status %d (%s)", i, resp.StatusCode, sr.Error)
		}
	}
	// The first filler may still be queued for an instant; wait until the
	// worker picked it up so the queue has exactly one slot taken.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want 1", len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}

	resp, sr := postSolve(t, ts.URL+"/v1/solve", distinct(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%+v), want 503", resp.StatusCode, sr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 rejection carries no Retry-After header")
	}
	j, ok := s.jobs.get(sr.ID)
	if !ok {
		t.Fatalf("rejected job %q not registered", sr.ID)
	}
	if n := j.waiters.Load(); n != 0 {
		t.Errorf("rejected job holds %d waiter slots, want 0 (creator's slot leaked)", n)
	}
}

// TestForwardedLeaderFollowerDetaches is the singleflight regression for the
// forwarding path: a follower joining a remote-owned leader and timing out
// must detach cleanly (its own 504, refcount back to the creator alone), and
// the creator leaving must then abort the in-flight forward.
func TestForwardedLeaderFollowerDetaches(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
			writeJSON(w, http.StatusOK, &solveResponse{ID: "fake", Status: string(statusDone), Layout: "layout slow\n"})
		case <-r.Context().Done():
		}
	}))
	defer fake.Close()

	cc := cluster.Config{
		Self:  "a",
		Peers: []cluster.Peer{{Name: "a", URL: "http://unused"}, {Name: "b", URL: fake.URL}},
		// One attempt, generous timeout: the forward just hangs until the
		// fake answers or the job context dies.
		AttemptTimeout: 30 * time.Second,
		MaxAttempts:    1,
		AuditEvery:     -1,
	}
	cl := cluster.New(cc)
	cfg := fastConfig()
	cfg.Cluster = cl
	s := newWithSolver(cfg, func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		return engine.Result{ID: job.ID, Err: ctx.Err()}
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	nl, key := circuitOwnedBy(t, cl, "b")
	leaderDone := make(chan solveResponse, 1)
	go func() {
		_, sr := postSolve(t, ts.URL+"/v1/solve", nl)
		leaderDone <- sr
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("forward never reached the fake owner")
	}

	// A follower with its own short timeout joins the remote-owned leader.
	resp, _ := postSolve(t, ts.URL+"/v1/solve?timeout=150ms", nl)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("follower status = %d, want 504", resp.StatusCode)
	}

	// The follower detached: only the creator's slot remains, and the
	// forward is still in flight.
	s.inflightMu.Lock()
	j := s.inflight[key]
	s.inflightMu.Unlock()
	if j == nil {
		t.Fatal("leader job left the inflight index while its forward is still running")
	}
	if n := j.waiters.Load(); n != 1 {
		t.Errorf("leader waiters = %d after follower timeout, want 1 (creator only)", n)
	}

	// Release the owner; the creator gets the proxied result.
	close(release)
	select {
	case sr := <-leaderDone:
		if !sr.Proxied || sr.Layout != "layout slow\n" {
			t.Errorf("leader response = %+v, want the proxied result", sr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never finished after the owner answered")
	}
	if n := j.waiters.Load(); n != 0 {
		t.Errorf("leader waiters = %d after completion, want 0", n)
	}
}
