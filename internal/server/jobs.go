package server

import (
	"context"
	"sync"
	"sync/atomic"

	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// jobStatus is the lifecycle of one solve request.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one admitted solve request as it moves through the queue and the
// worker pool.
type job struct {
	id      string
	circuit *netlist.Circuit
	key     string
	opts    pilp.Options
	// body is the raw netlist text as received, kept so a remote-owned job
	// can be forwarded byte-for-byte to its owner node.
	body []byte
	// noCache marks a remote-owned job: its result must not enter the local
	// cache (cache affinity — only the owner's tier accumulates the key), and
	// degraded local solves of it stay uncached for the same reason.
	noCache bool
	// degraded marks a remote-owned job that fell back to a local solve after
	// the forward failed; the response surfaces it.
	degraded bool

	// ctx bounds the solve; cancel releases its timer and aborts a running
	// solve (e.g. when a synchronous client disconnects).
	ctx    context.Context
	cancel context.CancelFunc

	// done is closed exactly once, when resp holds the final outcome.
	done chan struct{}

	// waiters counts the synchronous requests attached to this job — the
	// creator plus any singleflight followers sharing the solve. asyncHeld
	// records that at least one async request wants the result, which pins
	// the job against waiter-departure cancellation.
	waiters   atomic.Int64
	asyncHeld atomic.Bool

	mu     sync.Mutex
	status jobStatus
	resp   *solveResponse
}

// attachWaiter records one more synchronous request waiting on the job. It
// must only be called with the server's inflight lock held (joinInflight),
// which serializes it against the last-waiter cancellation in
// Server.releaseWaiter.
func (j *job) attachWaiter() { j.waiters.Add(1) }

// snapshot returns the job's current response document: the final one when
// finished, a synthesized in-flight one otherwise.
func (j *job) snapshot() *solveResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		cp := *j.resp
		return &cp
	}
	return &solveResponse{ID: j.id, Circuit: j.circuit.Name, Status: string(j.status)}
}

// isDone reports whether the job already holds its final response (such a
// job is safe to join even with a cancelled context — waiters get the
// response immediately).
func (j *job) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resp != nil
}

// setRunning flips a queued job to running; it reports false when the job
// already finished (cancelled while queued).
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != statusQueued {
		return false
	}
	j.status = statusRunning
	return true
}

// finish records the final response and wakes every waiter. Subsequent calls
// are ignored so a shutdown race cannot double-close done.
func (j *job) finish(resp *solveResponse) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return
	}
	j.status = jobStatus(resp.Status)
	j.resp = resp
	close(j.done)
}

// jobStore indexes jobs by ID for GET /v1/jobs/{id} and retains a bounded
// number of finished jobs (FIFO eviction) so completed results stay
// queryable for a while without growing without bound.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	finished  []string
	retention int
}

func newJobStore(retention int) *jobStore {
	return &jobStore{jobs: map[string]*job{}, retention: retention}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// markFinished records that a job completed and evicts the oldest finished
// jobs beyond the retention bound.
func (s *jobStore) markFinished(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// counts returns how many known jobs are in each lifecycle state.
func (s *jobStore) counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		out[string(j.status)]++
		j.mu.Unlock()
	}
	return out
}
