package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/engine"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// tinyNetlist is a minimal solvable circuit (PIN → M1 → POUT) that the full
// flow lays out in tens of milliseconds.
const tinyNetlist = `
circuit tiny
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
device M1 transistor 40 30
pin M1 in -20 0
pin M1 out 20 0
pad PIN
pad POUT
strip TL1 PIN.p M1.in length=130
strip TL2 M1.out POUT.p length=140
`

func fastConfig() Config {
	return Config{
		Workers:    2,
		QueueDepth: 8,
		SolveOptions: pilp.Options{
			ChainPoints:         3,
			MaxChainPoints:      3,
			StripTimeLimit:      2 * time.Second,
			PhaseTimeLimit:      5 * time.Second,
			MaxRefineIterations: 1,
		},
	}
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSolve(t *testing.T, url, body string) (*http.Response, solveResponse) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, sr
}

func TestSolveSyncAndWarmCacheHit(t *testing.T) {
	cfg := fastConfig()
	cfg.Cache = cache.NewLRU(16, 0)
	_, ts := startServer(t, cfg)

	resp, first := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d (%s)", resp.StatusCode, first.Error)
	}
	if first.Status != "done" || first.CacheHit {
		t.Fatalf("first solve: status=%s cache_hit=%v, want done/false", first.Status, first.CacheHit)
	}
	if first.Layout == "" || !strings.HasPrefix(first.Layout, "layout tiny\n") {
		t.Fatalf("first solve returned no layout text: %q", first.Layout)
	}
	if first.Stats == nil || first.Stats.Nodes <= 0 || first.Stats.RuntimeNS <= 0 {
		t.Fatalf("first solve missing stats: %+v", first.Stats)
	}
	if first.Stats.WirelengthUM <= 0 {
		t.Errorf("wirelength = %v µm, want > 0", first.Stats.WirelengthUM)
	}

	// The warm request must hit the cache and return byte-identical layout
	// text — the deterministic-flow guarantee the cache relies on.
	resp, second := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d (%s)", resp.StatusCode, second.Error)
	}
	if !second.CacheHit {
		t.Fatal("warm solve did not hit the cache")
	}
	if second.Layout != first.Layout {
		t.Errorf("warm cache hit is not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first.Layout, second.Layout)
	}
	if second.Stats == nil || second.Stats.Nodes != first.Stats.Nodes {
		t.Errorf("warm hit stats differ: %+v vs %+v", second.Stats, first.Stats)
	}

	// Reordering the netlist declarations must still hit the cache: the key
	// hashes the canonical form.
	reordered := strings.Replace(tinyNetlist, "strip TL1 PIN.p M1.in length=130\nstrip TL2 M1.out POUT.p length=140",
		"strip TL2 M1.out POUT.p length=140\nstrip TL1 PIN.p M1.in length=130", 1)
	if reordered == tinyNetlist {
		t.Fatal("test fixture not reordered")
	}
	_, third := postSolve(t, ts.URL+"/v1/solve", reordered)
	if !third.CacheHit || third.Layout != first.Layout {
		t.Errorf("reordered netlist missed the cache (hit=%v)", third.CacheHit)
	}
}

func TestSolveMalformedRequests(t *testing.T) {
	_, ts := startServer(t, fastConfig())
	tests := []struct {
		name     string
		body     string
		wantCode int
		wantIn   string // substring of the error message
	}{
		{"garbage keyword", "circuit x\nnonsense line here\n", http.StatusBadRequest, "unknown keyword"},
		{"empty body", "", http.StatusBadRequest, "no 'circuit' declaration"},
		{"fails validation", "circuit x\narea 100 100\nstrip TL1 A.p B.q length=50\n", http.StatusBadRequest, "no device"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, sr := postSolve(t, ts.URL+"/v1/solve", tt.body)
			if resp.StatusCode != tt.wantCode {
				t.Errorf("status = %d, want %d", resp.StatusCode, tt.wantCode)
			}
			if !strings.Contains(sr.Error, tt.wantIn) {
				t.Errorf("error %q does not mention %q", sr.Error, tt.wantIn)
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		cfg := fastConfig()
		cfg.MaxBodyBytes = 64
		_, small := startServer(t, cfg)
		resp, _ := postSolve(t, small.URL+"/v1/solve", tinyNetlist)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body = %d, want 413", resp.StatusCode)
		}
	})
}

func TestSolveDeadlineExceeded(t *testing.T) {
	_, ts := startServer(t, fastConfig())
	resp, sr := postSolve(t, ts.URL+"/v1/solve?timeout=1ns", tinyNetlist)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", resp.StatusCode, sr)
	}
	if sr.Status != "failed" || !strings.Contains(sr.Error, "deadline exceeded") {
		t.Errorf("response = %+v, want failed with deadline error", sr)
	}
}

func TestSolveAsyncAndJobLookup(t *testing.T) {
	_, ts := startServer(t, fastConfig())
	resp, sr := postSolve(t, ts.URL+"/v1/solve?async=1", tinyNetlist)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve: status %d, want 202", resp.StatusCode)
	}
	if sr.ID == "" || (sr.Status != "queued" && sr.Status != "running") {
		t.Fatalf("async response = %+v, want queued/running with an ID", sr)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final solveResponse
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", sr.ID, final)
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&final)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if final.Status == "done" || final.Status == "failed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Status != "done" {
		t.Fatalf("job finished as %s: %s", final.Status, final.Error)
	}
	if final.Layout == "" || final.Stats == nil {
		t.Errorf("finished job missing layout/stats: %+v", final)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", r.StatusCode)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return engine.Result{ID: job.ID, Name: job.Circuit.Name, Err: ctx.Err()}
	}
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		close(release)
		ts.Close()
		s.Close()
	}()

	// Distinct circuits per request: identical bodies would be coalesced by
	// the singleflight layer instead of stressing admission control.
	distinct := func(i int) string {
		return strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit tiny%d", i), 1)
	}
	// First job occupies the single worker...
	resp, _ := postSolve(t, ts.URL+"/v1/solve?async=1", distinct(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	<-started
	// ...the second fills the depth-1 queue...
	resp, _ = postSolve(t, ts.URL+"/v1/solve?async=1", distinct(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}
	// ...and the third must be rejected by admission control.
	resp, sr := postSolve(t, ts.URL+"/v1/solve?async=1", distinct(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job 3: status %d (%+v), want 503", resp.StatusCode, sr)
	}
	if !strings.Contains(sr.Error, "queue full") {
		t.Errorf("rejection error = %q", sr.Error)
	}
}

func TestHealthz(t *testing.T) {
	cfg := fastConfig()
	cfg.Cache = cache.NewLRU(16, 0)
	_, ts := startServer(t, cfg)
	postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	postSolve(t, ts.URL+"/v1/solve", tinyNetlist)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Workers != cfg.Workers || h.QueueCapacity != cfg.QueueDepth {
		t.Errorf("workers/queue = %d/%d, want %d/%d", h.Workers, h.QueueCapacity, cfg.Workers, cfg.QueueDepth)
	}
	if h.Solved != 1 || h.CacheHits != 1 || h.CacheMisses != 1 {
		t.Errorf("counters solved=%d hits=%d misses=%d, want 1/1/1", h.Solved, h.CacheHits, h.CacheMisses)
	}
}

// TestServerDeterministicAcrossRestart solves the same circuit on two
// independent servers and checks the layouts are byte-identical — the
// property that makes the cross-process cache exact.
func TestServerDeterministicAcrossRestart(t *testing.T) {
	var layouts [2]string
	for i := range layouts {
		_, ts := startServer(t, fastConfig())
		resp, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d: status %d (%s)", i, resp.StatusCode, sr.Error)
		}
		layouts[i] = sr.Layout
	}
	if layouts[0] != layouts[1] {
		t.Error("two servers produced different layouts for the same circuit")
	}
}

func TestJobRetentionEviction(t *testing.T) {
	cfg := fastConfig()
	cfg.JobRetention = 2
	_, ts := startServer(t, cfg)

	var ids []string
	for i := 0; i < 4; i++ {
		// Distinct circuits so no cache/keys interfere; retention is about
		// the job store only.
		body := strings.Replace(tinyNetlist, "circuit tiny", fmt.Sprintf("circuit tiny%d", i), 1)
		resp, sr := postSolve(t, ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d (%s)", i, resp.StatusCode, sr.Error)
		}
		ids = append(ids, sr.ID)
	}
	evicted, kept := ids[0], ids[len(ids)-1]
	r, err := http.Get(ts.URL + "/v1/jobs/" + evicted)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job still present (%d), want evicted", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/jobs/" + kept)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("newest job = %d, want 200", r.StatusCode)
	}
}

// TestCorruptCacheEntryDegradesToMiss locks in the contract that the cache
// is never a correctness dependency: an entry whose layout text does not
// parse is re-solved (and overwritten), not served.
func TestCorruptCacheEntryDegradesToMiss(t *testing.T) {
	cfg := fastConfig()
	lru := cache.NewLRU(16, 0)
	cfg.Cache = lru
	circuit, err := netlist.ParseString(tinyNetlist)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key(circuit, cfg.SolveOptions)
	lru.Put(key, cache.Entry{Circuit: "tiny", Layout: []byte("not a layout file")})

	_, ts := startServer(t, cfg)
	resp, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, sr.Error)
	}
	if sr.CacheHit {
		t.Error("corrupt entry served as a cache hit")
	}
	if !strings.HasPrefix(sr.Layout, "layout tiny\n") {
		t.Errorf("re-solve did not produce a layout: %q", sr.Layout)
	}
	// The re-solve must have replaced the corrupt entry.
	if entry, ok := lru.Get(key); !ok || !strings.HasPrefix(string(entry.Layout), "layout tiny\n") {
		t.Error("corrupt entry not overwritten by the re-solve")
	}
}

// TestSingleflightSharesOneSolve is the ROADMAP's singleflight contract: N
// concurrent identical requests must run the solver exactly once and all
// receive that one result.
func TestSingleflightSharesOneSolve(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return engine.Result{ID: job.ID, Err: ctx.Err()}
		}
		return engineSolver(ctx, job, logf)
	}
	cfg := fastConfig()
	cfg.Workers = 4
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	const followers = 4
	var wg sync.WaitGroup
	codes := make([]int, followers)
	bodies := make([]solveResponse, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
			codes[i], bodies[i] = resp.StatusCode, sr
		}(i)
	}
	// Wait until every request is attached to the one shared job before
	// letting the solver finish — releasing earlier would let a straggler
	// miss the inflight window and honestly start a second solve.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.inflightMu.Lock()
		var waiters int64
		for _, j := range s.inflight {
			waiters = j.waiters.Load()
		}
		n := len(s.inflight)
		s.inflightMu.Unlock()
		if n == 1 && waiters == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never converged on one job (%d inflight, %d waiters)", n, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("solver called %d times for %d identical requests", got, followers)
	}
	for i := 0; i < followers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i].Error)
		}
		if bodies[i].Layout != bodies[0].Layout || bodies[i].Layout == "" {
			t.Errorf("request %d received a different layout", i)
		}
		if bodies[i].ID != bodies[0].ID {
			t.Errorf("request %d answered from job %s, want shared job %s", i, bodies[i].ID, bodies[0].ID)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Coalesced != followers-1 {
		t.Errorf("coalesced = %d, want %d", h.Coalesced, followers-1)
	}
	if h.Solved != 1 {
		t.Errorf("solved = %d, want 1", h.Solved)
	}
}

// TestSingleflightAsyncJoinsLeader checks an async request for an in-flight
// circuit returns the leader's job instead of admitting a duplicate.
func TestSingleflightAsyncJoinsLeader(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return engineSolver(ctx, job, logf)
	}
	cfg := fastConfig()
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	resp, leader := postSolve(t, ts.URL+"/v1/solve?async=1", tinyNetlist)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("leader: status %d", resp.StatusCode)
	}
	resp, follower := postSolve(t, ts.URL+"/v1/solve?async=1", tinyNetlist)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("follower: status %d", resp.StatusCode)
	}
	if follower.ID != leader.ID {
		t.Errorf("follower got job %s, want the leader's %s", follower.ID, leader.ID)
	}
	close(release)
}

// TestHealthzCacheTierStats checks /healthz surfaces the cache tier's own
// counters (hits, misses, evictions, footprint) alongside the server's.
func TestHealthzCacheTierStats(t *testing.T) {
	cfg := fastConfig()
	cfg.Cache = cache.NewLRU(16, 0)
	_, ts := startServer(t, cfg)
	postSolve(t, ts.URL+"/v1/solve", tinyNetlist) // miss + put
	postSolve(t, ts.URL+"/v1/solve", tinyNetlist) // hit

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatal("healthz has no cache tier stats")
	}
	if h.Cache.Hits != 1 || h.Cache.Misses != 1 {
		t.Errorf("cache tier stats = %+v, want 1 hit / 1 miss", h.Cache)
	}
	if h.Cache.Entries != 1 || h.Cache.Bytes <= 0 {
		t.Errorf("cache footprint = %d entries / %d bytes, want 1 entry", h.Cache.Entries, h.Cache.Bytes)
	}
}

// TestSingleflightFollowerKeepsOwnTimeout pins the per-request 504 contract
// under coalescing: a follower with a short ?timeout must time out on its
// own schedule even though the shared solve keeps running under the
// leader's deadline.
func TestSingleflightFollowerKeepsOwnTimeout(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
		select {
		case <-release:
		case <-ctx.Done():
			return engine.Result{ID: job.ID, Err: ctx.Err()}
		}
		return engineSolver(ctx, job, logf)
	}
	cfg := fastConfig()
	s := newWithSolver(cfg, blocking)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	leaderDone := make(chan solveResponse, 1)
	go func() {
		_, sr := postSolve(t, ts.URL+"/v1/solve", tinyNetlist)
		leaderDone <- sr
	}()
	// Wait for the leader's job to be in flight before the follower joins.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.inflightMu.Lock()
		n := len(s.inflight)
		s.inflightMu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader job never registered in flight")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	resp, sr := postSolve(t, ts.URL+"/v1/solve?timeout=150ms", tinyNetlist)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("follower status = %d (%+v), want 504", resp.StatusCode, sr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("follower waited %v for a 150ms timeout", elapsed)
	}

	// The shared solve must have survived the follower's departure: release
	// it and the leader gets a real result.
	close(release)
	select {
	case sr := <-leaderDone:
		if sr.Status != "done" || sr.Layout == "" {
			t.Errorf("leader response after follower timeout: %+v", sr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("leader never finished")
	}
}
