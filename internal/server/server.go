// Package server is the HTTP serving front-end over the batch engine: it
// accepts netlists, runs them through a bounded admission queue feeding a
// worker pool over engine.Run, honors per-request deadlines via context, and
// returns layouts plus solve stats as JSON. A content-addressed result cache
// (internal/cache) sits in front of the engine — the flow is deterministic,
// so cache hits are byte-identical to re-solving.
//
// Endpoints:
//
//	POST /v1/solve        body: circuit text; query: timeout=DUR, async=1
//	GET  /v1/jobs/{id}    status/result of an admitted job
//	GET  /healthz         liveness plus queue/worker/cache counters
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/engine"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Config tunes a Server.
type Config struct {
	// Workers is the solver worker pool size: how many solves run at once.
	// Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects new solves
	// with 503 instead of queueing unboundedly. Zero means 64.
	QueueDepth int
	// MaxSolveTime is the hard per-job wall-clock ceiling; request timeouts
	// may only shorten it. Zero means 2 minutes.
	MaxSolveTime time.Duration
	// SolveOptions is the base progressive-flow configuration applied to
	// every request. Its Workers field is overridden by the server (flows
	// are pinned to one worker when the pool itself is parallel).
	SolveOptions pilp.Options
	// Cache, when non-nil, serves repeated circuits without re-solving and
	// stores every successful solve.
	Cache cache.Cache
	// JobRetention bounds how many finished jobs stay queryable under
	// /v1/jobs. Zero means 256.
	JobRetention int
	// MaxBodyBytes bounds the accepted netlist size. Zero means 1 MiB.
	MaxBodyBytes int64
	// Logf, when non-nil, receives server and solver progress messages; it
	// may be called from concurrent workers.
	Logf func(format string, args ...interface{})
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) maxSolveTime() time.Duration {
	if c.MaxSolveTime > 0 {
		return c.MaxSolveTime
	}
	return 2 * time.Minute
}

func (c Config) jobRetention() int {
	if c.JobRetention > 0 {
		return c.JobRetention
	}
	return 256
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// solver abstracts the engine call so tests can substitute a controllable
// fake; the production solver is one-job engine.Run.
type solver func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result

func engineSolver(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
	return engine.Run(ctx, []engine.Job{job}, engine.Options{Parallel: 1, Logf: logf})[0]
}

// Server is the HTTP front-end. Create with New, expose via Handler, stop
// with Close.
type Server struct {
	cfg   Config
	solve solver
	queue chan *job
	jobs  *jobStore
	mux   *http.ServeMux

	base context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	// closeMu fences admission against Close: enqueues hold the read lock,
	// Close flips closed under the write lock before draining, so no job can
	// slip into the queue after the drain and sit "queued" forever.
	closeMu sync.RWMutex
	closed  bool

	start       time.Time
	seq         atomic.Int64
	solved      atomic.Int64
	failed      atomic.Int64
	rejected    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	return newWithSolver(cfg, engineSolver)
}

func newWithSolver(cfg Config, solve solver) *Server {
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		solve: solve,
		queue: make(chan *job, cfg.queueDepth()),
		jobs:  newJobStore(cfg.jobRetention()),
		mux:   http.NewServeMux(),
		base:  base,
		stop:  stop,
		start: time.Now(),
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool, aborts running solves and fails every job
// still queued. It is safe to call more than once.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.stop()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.finishJob(j, failedResponse(j, context.Canceled))
		default:
			return
		}
	}
}

// admit enqueues a job unless the queue is full or the server is closing.
func (s *Server) admit(j *job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return fmt.Errorf("server shutting down")
	}
	select {
	case s.queue <- j:
		s.jobs.add(j)
		return nil
	default:
		s.rejected.Add(1)
		return fmt.Errorf("admission queue full, retry later")
	}
}

// worker pulls admitted jobs off the queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.base.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one admitted job on this worker and records its outcome.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	if !j.setRunning() {
		return
	}
	res := s.solve(j.ctx, engine.Job{ID: j.id, Circuit: j.circuit, Options: j.opts}, s.cfg.Logf)
	if res.Err == nil && (res.Result == nil || res.Result.Layout == nil) {
		res.Err = fmt.Errorf("solver returned no layout")
	}
	if res.Err != nil {
		s.finishJob(j, failedResponse(j, res.Err))
		return
	}
	text := layout.Format(res.Result.Layout)
	if s.cfg.Cache != nil {
		s.cfg.Cache.Put(j.key, cache.Entry{
			Circuit: j.circuit.Name,
			Layout:  []byte(text),
			Runtime: res.Runtime,
			Nodes:   res.Nodes,
		})
	}
	resp := &solveResponse{
		ID:      j.id,
		Circuit: j.circuit.Name,
		Status:  string(statusDone),
		Layout:  text,
		Stats:   buildStats(j.circuit, res.Result.Layout, res.Runtime, res.Nodes),
	}
	s.finishJob(j, resp)
}

func (s *Server) finishJob(j *job, resp *solveResponse) {
	if resp.Status == string(statusDone) {
		s.solved.Add(1)
	} else {
		s.failed.Add(1)
	}
	j.finish(resp)
	s.jobs.markFinished(j.id)
}

// solveResponse is the JSON document returned by /v1/solve and /v1/jobs.
type solveResponse struct {
	ID       string      `json:"id"`
	Circuit  string      `json:"circuit,omitempty"`
	Status   string      `json:"status"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Layout   string      `json:"layout,omitempty"`
	Stats    *solveStats `json:"stats,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// solveStats reports how the layout was obtained and how good it is.
type solveStats struct {
	RuntimeNS        int64   `json:"runtime_ns"`
	Runtime          string  `json:"runtime"`
	Nodes            int     `json:"nodes"`
	WirelengthUM     float64 `json:"wirelength_um"`
	TotalBends       int     `json:"total_bends"`
	MaxBends         int     `json:"max_bends"`
	Violations       int     `json:"violations"`
	MaxLengthErrorUM float64 `json:"max_length_error_um"`
}

// buildStats derives the quality metrics of a layout plus the solve-effort
// counters.
func buildStats(c *netlist.Circuit, l *layout.Layout, elapsed time.Duration, nodes int) *solveStats {
	m := l.Metrics()
	var wirelength geom.Coord
	for _, rs := range l.RoutedStrips() {
		wirelength += rs.EquivalentLength(c.Tech.BendCompensation)
	}
	return &solveStats{
		RuntimeNS:        int64(elapsed),
		Runtime:          elapsed.String(),
		Nodes:            nodes,
		WirelengthUM:     geom.Microns(wirelength),
		TotalBends:       m.TotalBends,
		MaxBends:         m.MaxBends,
		Violations:       len(l.Check(layout.CheckOptions{PinTolerance: 2})),
		MaxLengthErrorUM: geom.Microns(m.MaxLengthError),
	}
}

func failedResponse(j *job, err error) *solveResponse {
	return &solveResponse{
		ID:      j.id,
		Circuit: j.circuit.Name,
		Status:  string(statusFailed),
		Error:   err.Error(),
	}
}

// handleSolve admits a netlist: cache hits answer immediately, misses are
// queued onto the worker pool. Synchronous requests (the default) block
// until the solve finishes or the request context dies; async=1 returns 202
// with a job ID for polling via /v1/jobs/{id}.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a circuit file to /v1/solve")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBodyBytes()+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.maxBodyBytes() {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("netlist exceeds the %d byte limit", s.cfg.maxBodyBytes()))
		return
	}
	circuit, err := netlist.ParseString(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	opts := s.cfg.SolveOptions
	key := cache.Key(circuit, opts)
	if s.cfg.Cache != nil {
		if entry, ok := s.cfg.Cache.Get(key); ok {
			// An entry whose layout text no longer parses (format drift,
			// torn disk entry) degrades to a miss and is re-solved — the
			// cache is an optimization, never a correctness dependency.
			if l, err := layout.ParseLayoutString(string(entry.Layout), circuit); err == nil {
				s.cacheHits.Add(1)
				writeJSON(w, http.StatusOK, cachedResponse(circuit, entry, l))
				return
			}
		}
		s.cacheMisses.Add(1)
	}

	timeout := s.cfg.maxSolveTime()
	if arg := r.URL.Query().Get("timeout"); arg != "" {
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid timeout %q", arg))
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	async := false
	switch arg := r.URL.Query().Get("async"); arg {
	case "", "0", "false":
	case "1", "true":
		async = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid async flag %q", arg))
		return
	}

	// The pool owns the parallelism dimension: with several workers each
	// flow is pinned to one solver goroutine; a single-worker pool hands the
	// whole machine to the one flow in flight.
	if s.cfg.workers() > 1 {
		opts.Workers = 1
	}

	ctx, cancel := context.WithTimeout(s.base, timeout)
	j := &job{
		id:      fmt.Sprintf("j%06d-%s", s.seq.Add(1), key[:12]),
		circuit: circuit,
		key:     key,
		opts:    opts,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  statusQueued,
	}

	if err := s.admit(j); err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}

	if async {
		writeJSON(w, http.StatusAccepted, j.snapshot())
		return
	}

	// A synchronous client that goes away aborts its solve so the worker
	// frees up; the AfterFunc is detached once the job finishes normally.
	detach := context.AfterFunc(r.Context(), j.cancel)
	defer detach()
	select {
	case <-j.done:
		resp := j.snapshot()
		writeJSON(w, statusCodeFor(resp), resp)
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "request cancelled before the solve finished: "+r.Context().Err().Error())
	case <-s.base.Done():
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	}
}

// cachedResponse rebuilds a full solve response from a cache entry and its
// already-parsed layout. The layout text is served verbatim — determinism
// makes it byte-identical to what re-solving would produce — while the
// quality metrics are recomputed from the parsed layout.
func cachedResponse(c *netlist.Circuit, entry cache.Entry, l *layout.Layout) *solveResponse {
	return &solveResponse{
		ID:       fmt.Sprintf("cached-%s", c.Name),
		Circuit:  c.Name,
		Status:   string(statusDone),
		CacheHit: true,
		Layout:   string(entry.Layout),
		Stats:    buildStats(c, l, entry.Runtime, entry.Nodes),
	}
}

// statusCodeFor maps a finished job to its HTTP status: deadline and
// cancellation failures surface as 504, other solver failures as 500.
func statusCodeFor(resp *solveResponse) int {
	if resp.Status == string(statusDone) {
		return http.StatusOK
	}
	if strings.Contains(resp.Error, context.DeadlineExceeded.Error()) ||
		strings.Contains(resp.Error, context.Canceled.Error()) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/jobs/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, "job ID required: /v1/jobs/{id}")
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	resp := j.snapshot()
	code := http.StatusOK
	if resp.Status == string(statusFailed) {
		code = statusCodeFor(resp)
	}
	writeJSON(w, code, resp)
}

// healthResponse is the /healthz document.
type healthResponse struct {
	Status        string         `json:"status"`
	Uptime        string         `json:"uptime"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
	Solved        int64          `json:"solved"`
	Failed        int64          `json:"failed"`
	Rejected      int64          `json:"rejected"`
	CacheHits     int64          `json:"cache_hits"`
	CacheMisses   int64          `json:"cache_misses"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /healthz")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Uptime:        time.Since(s.start).Round(time.Millisecond).String(),
		Workers:       s.cfg.workers(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Jobs:          s.jobs.counts(),
		Solved:        s.solved.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorResponse is the JSON error document shared by all endpoints.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
