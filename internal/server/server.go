// Package server is the HTTP serving front-end over the batch engine: it
// accepts netlists, runs them through a bounded admission queue feeding a
// worker pool over engine.Run, honors per-request deadlines via context, and
// returns layouts plus solve stats as JSON. A content-addressed result cache
// (internal/cache) sits in front of the engine — the flow is deterministic,
// so cache hits are byte-identical to re-solving.
//
// Endpoints:
//
//	POST /v1/solve        body: circuit text; query: timeout=DUR, async=1
//	GET  /v1/jobs/{id}    status/result of an admitted job
//	GET  /healthz         liveness plus queue/worker/cache/cluster counters
//	GET  /readyz          routing readiness: ready / draining / not_ready
//
// With a cluster configured (internal/cluster), solves whose content address
// is owned by a remote peer are forwarded there and answered from the owner's
// cache-affine tier; an unreachable owner degrades to a local solve.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/cluster"
	"rficlayout/internal/engine"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

// Config tunes a Server.
type Config struct {
	// Workers is the solver worker pool size: how many solves run at once.
	// Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects new solves
	// with 503 instead of queueing unboundedly. Zero means 64.
	QueueDepth int
	// MaxSolveTime is the hard per-job wall-clock ceiling; request timeouts
	// may only shorten it. Zero means 2 minutes.
	MaxSolveTime time.Duration
	// SolveOptions is the base progressive-flow configuration applied to
	// every request. Its Workers field is overridden by the server (flows
	// are pinned to one worker when the pool itself is parallel).
	SolveOptions pilp.Options
	// Cache, when non-nil, serves repeated circuits without re-solving and
	// stores every successful solve.
	Cache cache.Cache
	// JobRetention bounds how many finished jobs stay queryable under
	// /v1/jobs. Zero means 256.
	JobRetention int
	// MaxBodyBytes bounds the accepted netlist size. Zero means 1 MiB.
	MaxBodyBytes int64
	// Logf, when non-nil, receives server and solver progress messages; it
	// may be called from concurrent workers.
	Logf func(format string, args ...interface{})
	// Cluster, when non-nil, joins this server to a multi-node serving tier:
	// a solve whose content address is owned by a remote peer is forwarded
	// there (cache affinity — the owner's persistent tier accumulates exactly
	// its keys), with bounded retries, degraded local fallback when the owner
	// is unreachable, and a cross-replica audit on a deterministic sample of
	// proxied results. Nil means single node.
	Cluster *cluster.Cluster
	// RetryAfterHint is the Retry-After value sent with every 503 rejection,
	// telling well-behaved clients (the peer client included) how long to back
	// off before retrying. Zero means 1s.
	RetryAfterHint time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) maxSolveTime() time.Duration {
	if c.MaxSolveTime > 0 {
		return c.MaxSolveTime
	}
	return 2 * time.Minute
}

func (c Config) jobRetention() int {
	if c.JobRetention > 0 {
		return c.JobRetention
	}
	return 256
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) retryAfterHint() time.Duration {
	if c.RetryAfterHint > 0 {
		return c.RetryAfterHint
	}
	return time.Second
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// solver abstracts the engine call so tests can substitute a controllable
// fake; the production solver is one-job engine.Run.
type solver func(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result

func engineSolver(ctx context.Context, job engine.Job, logf func(string, ...interface{})) engine.Result {
	return engine.Run(ctx, []engine.Job{job}, engine.Options{Parallel: 1, Logf: logf})[0]
}

// Server is the HTTP front-end. Create with New, expose via Handler, stop
// with Close.
type Server struct {
	cfg   Config
	solve solver
	queue chan *job
	jobs  *jobStore
	mux   *http.ServeMux

	base context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	// closeMu fences admission against Close: enqueues hold the read lock,
	// Close flips closed under the write lock before draining, so no job can
	// slip into the queue after the drain and sit "queued" forever.
	closeMu sync.RWMutex
	closed  bool

	// inflight indexes admitted-but-unfinished jobs by content key so
	// concurrent identical requests share one solve (singleflight) instead
	// of all missing the cache and queueing duplicates.
	inflightMu sync.Mutex
	inflight   map[string]*job

	start       time.Time
	seq         atomic.Int64
	solved      atomic.Int64
	failed      atomic.Int64
	rejected    atomic.Int64
	coalesced   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// panics counts solves that died by panic and were isolated to their job
	// (engine.PanicError or the runJob-level recover). A nonzero panics with
	// an alive server is the panic-isolation layer working as designed.
	panics atomic.Int64

	// ready flips on once the worker pool is running; draining flips on at
	// SIGTERM (or Close) and never off. /readyz reports them so load
	// balancers route around a node that is starting up or handing off —
	// distinct from /healthz, which answers "is the process alive" and keeps
	// saying ok throughout a drain so orchestrators don't kill a node that is
	// cleanly finishing its in-flight work.
	ready    atomic.Bool
	draining atomic.Bool

	// Simplex-effort totals across every solve this server ran (cache hits
	// excluded: they spent no pivots here); exposed on /healthz.
	lpPivots     atomic.Int64
	lpWarmHits   atomic.Int64
	lpColdSolves atomic.Int64
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	return newWithSolver(cfg, engineSolver)
}

func newWithSolver(cfg Config, solve solver) *Server {
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		solve:    solve,
		queue:    make(chan *job, cfg.queueDepth()),
		jobs:     newJobStore(cfg.jobRetention()),
		mux:      http.NewServeMux(),
		inflight: map[string]*job{},
		base:     base,
		stop:     stop,
		start:    time.Now(),
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDraining flips /readyz to "draining" so load balancers stop routing
// new work here while in-flight jobs finish. rficserve calls it on SIGTERM
// before shutting the listener down; Close implies it.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Close stops the worker pool, aborts running solves and fails every job
// still queued. It is safe to call more than once.
func (s *Server) Close() {
	s.StartDraining()
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.stop()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.finishJob(j, failedResponse(j, context.Canceled))
		default:
			return
		}
	}
}

// admit enqueues a job unless the queue is full or the server is closing.
func (s *Server) admit(j *job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return fmt.Errorf("server shutting down")
	}
	// Injected admission failure: same retryable 503 surface as a full queue,
	// so chaos schedules exercise the client retry path without real load.
	if faultinject.Fired(faultinject.PointServerAdmit) {
		s.rejected.Add(1)
		return fmt.Errorf("admission queue full, retry later")
	}
	select {
	case s.queue <- j:
		s.jobs.add(j)
		return nil
	default:
		s.rejected.Add(1)
		return fmt.Errorf("admission queue full, retry later")
	}
}

// worker pulls admitted jobs off the queue until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.base.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one admitted job on this worker and records its outcome.
// It is the server's panic firewall: the engine already converts solver
// panics into engine.PanicError job errors, and a second recover here covers
// everything after the solve (formatting, caching, stats) — either way the
// panic is charged to the panics counter and the job fails cleanly while the
// worker, the queue and every other job keep going.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.cfg.logf("server: job %s panicked: %v", j.id, r)
			s.finishJob(j, failedResponse(j, fmt.Errorf("job %s panicked: %v", j.id, r)))
		}
	}()
	if !j.setRunning() {
		return
	}
	res := s.solve(j.ctx, engine.Job{ID: j.id, Circuit: j.circuit, Options: j.opts}, s.cfg.Logf)
	if res.Err == nil && (res.Result == nil || res.Result.Layout == nil) {
		res.Err = fmt.Errorf("solver returned no layout")
	}
	if res.Err != nil {
		var pe *engine.PanicError
		if errors.As(res.Err, &pe) {
			s.panics.Add(1)
			s.cfg.logf("server: job %s isolated a solver panic: %v\n%s", j.id, pe.Value, pe.Stack)
		}
		s.finishJob(j, failedResponse(j, res.Err))
		return
	}
	text := layout.Format(res.Result.Layout)
	// Partial results are anytime degradation, not the deterministic full
	// solve — caching one would serve degraded layouts to future full-quality
	// requests under the same key. Remote-owned keys (noCache) also stay out:
	// the owner's tier is where they belong.
	if s.cfg.Cache != nil && !res.Partial && !j.noCache {
		s.cfg.Cache.Put(j.key, cache.Entry{
			Circuit: j.circuit.Name,
			Layout:  []byte(text),
			Runtime: res.Runtime,
			Nodes:   res.Nodes,
			Shards:  len(res.Shards),
			LP:      res.LP,
		})
	}
	s.lpPivots.Add(int64(res.LP.Pivots))
	s.lpWarmHits.Add(int64(res.LP.WarmHits))
	s.lpColdSolves.Add(int64(res.LP.ColdSolves))
	stats := buildStats(j.circuit, res.Result.Layout, res.Runtime, res.Nodes)
	stats.ShardCount = len(res.Shards)
	stats.Shards = shardStatsJSON(res.Shards)
	stats.LP = lpStats(res.LP)
	if res.Partial {
		stats.PartialPhase = res.Result.PartialPhase
		stats.MaxGap = res.Result.MaxGap
		stats.InterruptedSolves = res.Result.InterruptedSolves
	}
	resp := &solveResponse{
		ID:       j.id,
		Circuit:  j.circuit.Name,
		Status:   string(statusDone),
		Partial:  res.Partial,
		Degraded: j.degraded,
		Layout:   text,
		Stats:    stats,
	}
	s.finishJob(j, resp)
}

func (s *Server) finishJob(j *job, resp *solveResponse) {
	if resp.Status == string(statusDone) {
		s.solved.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.completeJob(j, resp)
}

// completeJob is the one sequence that finishes a job — wake waiters, leave
// the singleflight index, surface in the job store. finishJob wraps it with
// the solved/failed counters; the admission-rejection path calls it directly
// because rejections are counted by the rejected counter alone.
func (s *Server) completeJob(j *job, resp *solveResponse) {
	j.finish(resp)
	s.dropInflight(j)
	s.jobs.markFinished(j.id)
}

// coalesceGrace is how far a joiner's deadline may outlive the leader's and
// still share the leader's solve. Beyond it the request solves on its own:
// inheriting a much earlier deadline would fail it while its own budget
// still had time. Thundering herds arrive well inside this window, so the
// coalescing they need survives the rule.
const coalesceGrace = 5 * time.Second

// joinInflight registers j as the in-flight solve for its key, or returns
// the job already solving it. The caller's interest (async hold or sync
// waiter) is recorded under the lock, so a shared job cannot be cancelled
// from under a joiner by the other waiters leaving.
func (s *Server) joinInflight(j *job, async bool) *job {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	target := s.inflight[j.key]
	switch {
	case target == nil,
		// A leader whose context is already cancelled (its last client went
		// away moments ago, finishJob has not removed it yet) would only
		// hand the joiner a spurious "context canceled" failure — take over
		// as the new leader instead. dropInflight's identity check keeps
		// the old job's eventual cleanup from removing the replacement.
		target.ctx.Err() != nil && !target.isDone():
		s.inflight[j.key] = j
		target = j
	case outlivesLeader(j, target):
		// This request's deadline extends well past the leader's: sharing
		// would hand it the leader's earlier deadline failure. Solve
		// independently (unregistered — dropInflight's identity check makes
		// that harmless; the next cold request still finds the leader).
		target = j
	}
	if async {
		target.asyncHeld.Store(true)
	} else {
		target.attachWaiter()
	}
	if target == j {
		return nil
	}
	return target
}

// outlivesLeader reports whether j's deadline exceeds the leader's by more
// than the coalescing grace. Both contexts come from context.WithTimeout, so
// the deadlines exist; missing ones count as unbounded.
func outlivesLeader(j, leader *job) bool {
	ld, ok := leader.ctx.Deadline()
	if !ok {
		return false
	}
	jd, ok := j.ctx.Deadline()
	return !ok || jd.After(ld.Add(coalesceGrace))
}

func (s *Server) dropInflight(j *job) {
	s.inflightMu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.inflightMu.Unlock()
}

// releaseWaiter drops one synchronous waiter from a job. The last waiter
// leaving aborts the solve so the worker frees up — unless an async request
// still holds the job. Both the decision and the cancellation happen under
// the inflight lock, so a concurrent joinInflight either attaches before the
// cancellation (and keeps the job alive) or observes the cancelled job and
// starts a fresh leader — it can never attach to a job this method is about
// to kill. The job is also removed from the inflight index here for the same
// reason.
func (s *Server) releaseWaiter(j *job) {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if j.waiters.Add(-1) == 0 && !j.asyncHeld.Load() && !j.isDone() {
		j.cancel()
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
	}
}

// solveResponse is the JSON document returned by /v1/solve and /v1/jobs.
type solveResponse struct {
	ID       string `json:"id"`
	Circuit  string `json:"circuit,omitempty"`
	Status   string `json:"status"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Partial marks an anytime result: the deadline fired mid-flow and (with
	// accept_partial=1) Layout holds the best layout reached, not the fully
	// refined one. Stats carries the phase reached and bound-gap figures.
	Partial bool        `json:"partial,omitempty"`
	Layout  string      `json:"layout,omitempty"`
	Stats   *solveStats `json:"stats,omitempty"`
	Error   string      `json:"error,omitempty"`
	// Proxied marks a result answered by the owner node (named by Owner) via
	// the cluster forwarding path; Degraded marks a remote-owned solve that
	// fell back to this node after the forward failed. Determinism makes the
	// three provenances — local, proxied, degraded — byte-identical in Layout;
	// the flags exist so operators and the chaos battery can tell them apart.
	Proxied  bool   `json:"proxied,omitempty"`
	Owner    string `json:"owner,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`

	// code, when non-zero, is the HTTP status this response must be served
	// with — admission rejections carry 503 so singleflight followers see
	// the same retryable status as the leader instead of a generic 500.
	code int
}

// solveStats reports how the layout was obtained and how good it is.
type solveStats struct {
	RuntimeNS        int64   `json:"runtime_ns"`
	Runtime          string  `json:"runtime"`
	Nodes            int     `json:"nodes"`
	WirelengthUM     float64 `json:"wirelength_um"`
	TotalBends       int     `json:"total_bends"`
	MaxBends         int     `json:"max_bends"`
	Violations       int     `json:"violations"`
	MaxLengthErrorUM float64 `json:"max_length_error_um"`
	// ShardCount and Shards describe the sharded phase-1 adjustment; both
	// are absent when phase 1 ran monolithically. Cache hits report only the
	// count (the per-shard breakdown is not persisted).
	ShardCount int             `json:"shard_count,omitempty"`
	Shards     []shardStatJSON `json:"shards,omitempty"`
	// LP reports the simplex-level effort of the solve; absent for cache
	// entries written before the counters existed.
	LP *lpStatsJSON `json:"lp,omitempty"`
	// PartialPhase, MaxGap and InterruptedSolves qualify a partial result:
	// the last flow phase the layout completed, the worst relative
	// incumbent/bound gap across its MILP solves, and how many of those
	// solves the deadline interrupted. Present only when partial is set.
	PartialPhase      string  `json:"partial_phase,omitempty"`
	MaxGap            float64 `json:"max_gap,omitempty"`
	InterruptedSolves int     `json:"interrupted_solves,omitempty"`
}

// lpStatsJSON is the wire form of pilp.LPStats.
type lpStatsJSON struct {
	Pivots           int     `json:"pivots"`
	Refactorizations int     `json:"refactorizations"`
	WarmHits         int     `json:"warm_hits"`
	WarmMisses       int     `json:"warm_misses"`
	ColdSolves       int     `json:"cold_solves"`
	WarmHitRate      float64 `json:"warm_hit_rate"`
	WarmSeedAccepted int     `json:"warm_seed_accepted,omitempty"`
	WarmSeedRejected int     `json:"warm_seed_rejected,omitempty"`
}

func lpStats(s pilp.LPStats) *lpStatsJSON {
	if s == (pilp.LPStats{}) {
		return nil
	}
	return &lpStatsJSON{
		Pivots:           s.Pivots,
		Refactorizations: s.Refactorizations,
		WarmHits:         s.WarmHits,
		WarmMisses:       s.WarmMisses,
		ColdSolves:       s.ColdSolves,
		WarmHitRate:      s.WarmHitRate(),
		WarmSeedAccepted: s.WarmSeedAccepted,
		WarmSeedRejected: s.WarmSeedRejected,
	}
}

// shardStatJSON is the wire form of one pilp.ShardStat.
type shardStatJSON struct {
	Cluster   int   `json:"cluster"`
	Devices   int   `json:"devices"`
	Strips    int   `json:"strips"`
	Boundary  int   `json:"boundary"`
	Rounds    int   `json:"rounds"`
	Nodes     int   `json:"nodes"`
	RuntimeNS int64 `json:"runtime_ns"`
}

func shardStatsJSON(shards []pilp.ShardStat) []shardStatJSON {
	if len(shards) == 0 {
		return nil
	}
	out := make([]shardStatJSON, len(shards))
	for i, st := range shards {
		out[i] = shardStatJSON{
			Cluster:   st.Cluster,
			Devices:   st.Devices,
			Strips:    st.Strips,
			Boundary:  st.Boundary,
			Rounds:    st.Rounds,
			Nodes:     st.Nodes,
			RuntimeNS: int64(st.Runtime),
		}
	}
	return out
}

// buildStats derives the quality metrics of a layout plus the solve-effort
// counters.
func buildStats(c *netlist.Circuit, l *layout.Layout, elapsed time.Duration, nodes int) *solveStats {
	m := l.Metrics()
	var wirelength geom.Coord
	for _, rs := range l.RoutedStrips() {
		wirelength += rs.EquivalentLength(c.Tech.BendCompensation)
	}
	return &solveStats{
		RuntimeNS:        int64(elapsed),
		Runtime:          elapsed.String(),
		Nodes:            nodes,
		WirelengthUM:     geom.Microns(wirelength),
		TotalBends:       m.TotalBends,
		MaxBends:         m.MaxBends,
		Violations:       len(l.Check(layout.CheckOptions{PinTolerance: 2})),
		MaxLengthErrorUM: geom.Microns(m.MaxLengthError),
	}
}

func failedResponse(j *job, err error) *solveResponse {
	return &solveResponse{
		ID:      j.id,
		Circuit: j.circuit.Name,
		Status:  string(statusFailed),
		Error:   err.Error(),
	}
}

// handleSolve admits a netlist: cache hits answer immediately, misses are
// queued onto the worker pool. Synchronous requests (the default) block
// until the solve finishes or the request context dies; async=1 returns 202
// with a job ID for polling via /v1/jobs/{id}.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a circuit file to /v1/solve")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBodyBytes()+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.maxBodyBytes() {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("netlist exceeds the %d byte limit", s.cfg.maxBodyBytes()))
		return
	}
	circuit, err := netlist.ParseString(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	opts := s.cfg.SolveOptions
	// accept_partial opts this request into anytime degradation: a deadline
	// mid-flow returns the best layout reached (marked partial) instead of
	// 504. The flag is excluded from the option fingerprint, so it shares the
	// cache key — and the singleflight key — with full-quality requests; a
	// partial result is never written to the cache.
	switch arg := r.URL.Query().Get("accept_partial"); arg {
	case "", "0", "false":
	case "1", "true":
		opts.AcceptPartial = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid accept_partial flag %q", arg))
		return
	}
	key := cache.Key(circuit, opts)

	// Cluster routing. A request carrying the ownership header was forwarded
	// here by a peer that resolved this node as the owner: solve locally and
	// never re-forward, whatever our own ring says — that asymmetry is what
	// makes forwarding loop-free when peer lists skew during membership
	// change. Otherwise, resolve the owner; a remote owner means this request
	// forwards, so the local cache is neither consulted nor (later) written —
	// cache affinity keeps each key's entries on exactly one node.
	fromPeer := r.Header.Get(cluster.HeaderForwardedFrom)
	owner, remote := s.cfg.Cluster.Owner(key)
	if fromPeer != "" {
		remote = false
	}

	if s.cfg.Cache != nil && !remote {
		if entry, ok := s.cfg.Cache.Get(key); ok {
			// An entry whose layout text no longer parses (format drift,
			// torn disk entry) degrades to a miss and is re-solved — the
			// cache is an optimization, never a correctness dependency.
			if l, err := layout.ParseLayoutString(string(entry.Layout), circuit); err == nil {
				s.cacheHits.Add(1)
				writeJSON(w, http.StatusOK, cachedResponse(circuit, entry, l))
				return
			}
		}
		s.cacheMisses.Add(1)
	}

	timeout := s.cfg.maxSolveTime()
	if arg := r.URL.Query().Get("timeout"); arg != "" {
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid timeout %q", arg))
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	async := false
	switch arg := r.URL.Query().Get("async"); arg {
	case "", "0", "false":
	case "1", "true":
		async = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid async flag %q", arg))
		return
	}

	// The pool owns the parallelism dimension: with several workers each
	// flow is pinned to one solver goroutine; a single-worker pool hands the
	// whole machine to the one flow in flight.
	if s.cfg.workers() > 1 {
		opts.Workers = 1
	}

	ctx, cancel := context.WithTimeout(s.base, timeout)
	j := &job{
		id:      fmt.Sprintf("j%06d-%s", s.seq.Add(1), key[:12]),
		circuit: circuit,
		key:     key,
		opts:    opts,
		body:    body,
		noCache: remote,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  statusQueued,
	}

	// Singleflight: an identical solve already in flight (same content key,
	// i.e. same canonical circuit and options) is shared instead of queued a
	// second time. The solve runs under the leader's deadline, but a sync
	// follower still waits no longer than its own requested timeout (j.ctx
	// carries it) — coalescing must not erase the per-request 504 contract.
	if leader := s.joinInflight(j, async); leader != nil {
		s.coalesced.Add(1)
		if async {
			cancel()
			writeJSON(w, http.StatusAccepted, leader.snapshot())
			return
		}
		s.awaitJob(w, r, leader, j.ctx)
		cancel()
		return
	}

	// A remote-owned job starts a forward operation instead of entering the
	// local queue; everything downstream (singleflight joiners, awaitJob, the
	// job store) treats it like any other leader. Degraded fallbacks re-enter
	// through admit, so local solve capacity still bounds them.
	var admitErr error
	if remote {
		admitErr = s.startForward(j, owner)
	} else {
		admitErr = s.admit(j)
	}
	if admitErr != nil {
		// Followers may have joined this job between joinInflight and the
		// failed admit: finish it (which also drops it from the inflight
		// index) so sync followers wake with the rejection instead of
		// hanging on done, and register it so async followers' polls find
		// the rejection rather than a permanent 404. Rejections count under
		// the rejected counter only (admit incremented it), not failed, and
		// carry 503 so followers answer with the leader's retryable status.
		// The creator's own waiter slot (attached by joinInflight) is
		// released here — without this, a rejected job's refcount never
		// reaches zero, which matters once followers can join remote-owned
		// leaders whose cancellation is driven by that refcount.
		s.jobs.add(j)
		resp := failedResponse(j, admitErr)
		resp.code = http.StatusServiceUnavailable
		s.completeJob(j, resp)
		if !async {
			s.releaseWaiter(j)
		}
		cancel()
		s.writeResult(w, resp)
		return
	}

	if async {
		writeJSON(w, http.StatusAccepted, j.snapshot())
		return
	}
	s.awaitJob(w, r, j, nil)
}

// startForward launches the peer-forward goroutine for a remote-owned job.
// It mirrors admit's close fencing: after Close has flipped closed, no new
// forward can start, so wg.Wait() cannot race a late wg.Add.
func (s *Server) startForward(j *job, owner cluster.Peer) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return fmt.Errorf("server shutting down")
	}
	s.jobs.add(j)
	s.wg.Add(1)
	go s.runForward(j, owner)
	return nil
}

// runForward drives one remote-owned job: forward to the owner (the cluster
// client retries with backoff under the retry budget), audit a deterministic
// sample of proxied results against a local re-solve, and degrade to a local
// solve when the owner cannot answer. The job stays "queued" while the
// forward is in flight so a degraded fallback can re-enter the worker pool
// through the normal admission path.
func (s *Server) runForward(j *job, owner cluster.Peer) {
	defer s.wg.Done()
	cl := s.cfg.Cluster

	query := url.Values{}
	if deadline, ok := j.ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining > 0 {
			query.Set("timeout", remaining.Round(time.Millisecond).String())
		}
	}
	if j.opts.AcceptPartial {
		query.Set("accept_partial", "1")
	}

	body, err := cl.Forward(j.ctx, owner, j.key, j.body, query)
	if err == nil {
		var resp solveResponse
		if jerr := json.Unmarshal(body, &resp); jerr == nil && resp.Layout != "" {
			resp.ID = j.id
			resp.Proxied = true
			resp.Owner = owner.Name
			resp.code = 0
			if cl.ShouldAudit(j.key) && !resp.Partial {
				s.auditProxied(j, owner, &resp)
			}
			cl.CountForwarded()
			j.cancel()
			s.finishJob(j, &resp)
			return
		} else {
			err = fmt.Errorf("owner %s returned an unusable response (%v)", owner.Name, jerr)
		}
	}
	if cerr := j.ctx.Err(); cerr != nil {
		// The client went away (or the deadline fired) while forwarding:
		// surface the cancellation, don't burn a local solve on it.
		j.cancel()
		s.finishJob(j, failedResponse(j, cerr))
		return
	}

	// Degraded mode: the owner is unreachable or over budget, so this node
	// solves locally. Correctness is untouched — determinism makes the bytes
	// identical to the owner's — the cost is cache affinity (the result stays
	// uncached here). Admission still gates the work so a dead peer cannot
	// bypass the queue bound.
	cl.CountDegraded()
	j.degraded = true
	s.cfg.logf("server: degraded: job %s owner %s unreachable, solving locally: %v", j.id, owner.Name, err)
	if aerr := s.admit(j); aerr != nil {
		j.cancel()
		resp := failedResponse(j, aerr)
		resp.code = http.StatusServiceUnavailable
		s.completeJob(j, resp)
	}
}

// auditProxied is the cross-replica audit: re-solve the forwarded job locally
// and compare layouts byte-for-byte. The determinism contract says they must
// match; a mismatch is a fleet-level alarm (counter + log) and the locally
// solved bytes win, since this node can vouch for them. The audit runs on the
// forward goroutine, off the worker pool — it is sampled (AuditEvery), so the
// extra load is bounded and never queues behind real work.
func (s *Server) auditProxied(j *job, owner cluster.Peer, resp *solveResponse) {
	res := s.solve(j.ctx, engine.Job{ID: j.id + "-audit", Circuit: j.circuit, Options: j.opts}, s.cfg.Logf)
	if res.Err != nil || res.Result == nil || res.Result.Layout == nil || res.Partial {
		// Inconclusive (cancelled mid-solve, or the local solve failed):
		// count the audit, alarm nothing — a broken local node must not
		// accuse a healthy owner.
		cl := s.cfg.Cluster
		cl.CountAudit(true)
		s.cfg.logf("server: audit of job %s inconclusive: %v", j.id, res.Err)
		return
	}
	local := layout.Format(res.Result.Layout)
	match := local == resp.Layout
	s.cfg.Cluster.CountAudit(match)
	if !match {
		s.cfg.logf("server: AUDIT MISMATCH job %s: owner %s layout differs from local re-solve (%d vs %d bytes) — determinism contract broken",
			j.id, owner.Name, len(resp.Layout), len(local))
		resp.Layout = local
		resp.Proxied = false
		resp.Owner = ""
	}
}

// awaitJob blocks a synchronous request on a job it holds a waiter slot on
// (recorded by joinInflight). A client that goes away releases its slot; the
// last synchronous waiter leaving aborts the solve so the worker frees up,
// unless an async request also holds the job. limit, when non-nil, bounds
// the wait independently of the job — singleflight followers pass their own
// request-timeout context so a shared solve still answers 504 on their
// schedule (the leader needs no limit: its job context is what times the
// solve out).
func (s *Server) awaitJob(w http.ResponseWriter, r *http.Request, j *job, limit context.Context) {
	stop := context.AfterFunc(r.Context(), func() { s.releaseWaiter(j) })
	defer func() {
		if stop() {
			s.releaseWaiter(j)
		}
	}()
	var limitDone <-chan struct{}
	if limit != nil {
		limitDone = limit.Done()
	}
	select {
	case <-j.done:
		s.writeResult(w, j.snapshot())
	case <-limitDone:
		// The shared solve may have finished in the same instant; prefer
		// its result over a spurious timeout.
		select {
		case <-j.done:
			s.writeResult(w, j.snapshot())
		default:
			writeError(w, http.StatusGatewayTimeout, "request timed out before the shared solve finished: "+limit.Err().Error())
		}
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "request cancelled before the solve finished: "+r.Context().Err().Error())
	case <-s.base.Done():
		s.writeUnavailable(w, "server shutting down")
	}
}

// writeResult serves a finished job's response under its HTTP status. Every
// 503 leaving the server — direct rejections, follower-visible rejection
// snapshots, shutdown — carries a Retry-After hint so well-behaved clients
// (the peer client included) back off instead of hammering a node that just
// shed load.
func (s *Server) writeResult(w http.ResponseWriter, resp *solveResponse) {
	code := statusCodeFor(resp)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", cluster.RetryAfter(s.cfg.retryAfterHint()))
	}
	writeJSON(w, code, resp)
}

// writeUnavailable is the 503-with-Retry-After error path for rejections that
// never made a job.
func (s *Server) writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", cluster.RetryAfter(s.cfg.retryAfterHint()))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// cachedResponse rebuilds a full solve response from a cache entry and its
// already-parsed layout. The layout text is served verbatim — determinism
// makes it byte-identical to what re-solving would produce — while the
// quality metrics are recomputed from the parsed layout.
func cachedResponse(c *netlist.Circuit, entry cache.Entry, l *layout.Layout) *solveResponse {
	stats := buildStats(c, l, entry.Runtime, entry.Nodes)
	stats.ShardCount = entry.Shards
	stats.LP = lpStats(entry.LP)
	return &solveResponse{
		ID:       fmt.Sprintf("cached-%s", c.Name),
		Circuit:  c.Name,
		Status:   string(statusDone),
		CacheHit: true,
		Layout:   string(entry.Layout),
		Stats:    stats,
	}
}

// statusCodeFor maps a finished job to its HTTP status: an explicit code
// wins, deadline and cancellation failures surface as 504, other solver
// failures as 500.
func statusCodeFor(resp *solveResponse) int {
	if resp.code != 0 {
		return resp.code
	}
	if resp.Status == string(statusDone) {
		return http.StatusOK
	}
	if strings.Contains(resp.Error, context.DeadlineExceeded.Error()) ||
		strings.Contains(resp.Error, context.Canceled.Error()) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/jobs/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, "job ID required: /v1/jobs/{id}")
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	resp := j.snapshot()
	code := http.StatusOK
	if resp.Status == string(statusFailed) {
		code = statusCodeFor(resp)
	}
	writeJSON(w, code, resp)
}

// healthResponse is the /healthz document. CacheHits/CacheMisses count this
// server's lookups; Cache reports the tier's own counters (including
// evictions and footprint) when the configured cache exposes them.
type healthResponse struct {
	Status        string         `json:"status"`
	Uptime        string         `json:"uptime"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
	Solved        int64          `json:"solved"`
	Failed        int64          `json:"failed"`
	Rejected      int64          `json:"rejected"`
	Coalesced     int64          `json:"coalesced"`
	CacheHits     int64          `json:"cache_hits"`
	CacheMisses   int64          `json:"cache_misses"`
	// LPPivots, LPWarmHits and LPColdSolves total the simplex effort of
	// every solve this server ran (cache hits excluded).
	LPPivots     int64        `json:"lp_pivots"`
	LPWarmHits   int64        `json:"lp_warm_hits"`
	LPColdSolves int64        `json:"lp_cold_solves"`
	Cache        *cache.Stats `json:"cache,omitempty"`
	// Panics counts solver panics isolated to their job: each one failed a
	// single request while the process kept serving. The cache tier's own
	// quarantine counter rides in Cache.Corrupt.
	Panics int64 `json:"panics"`
	// Faults snapshots the active fault-injection registry's per-point
	// hit/fired counters (absent when injection is disabled), so a chaos
	// harness can reconcile every injected fault against the counters above.
	Faults map[string]faultinject.PointCount `json:"faults,omitempty"`
	// Cluster reports the node's serving-tier counters (forwarded, retried,
	// degraded, audit results); absent on a single-node server.
	Cluster *cluster.StatsSnapshot `json:"cluster,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /healthz")
		return
	}
	h := healthResponse{
		Status:        "ok",
		Uptime:        time.Since(s.start).Round(time.Millisecond).String(),
		Workers:       s.cfg.workers(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Jobs:          s.jobs.counts(),
		Solved:        s.solved.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		LPPivots:      s.lpPivots.Load(),
		LPWarmHits:    s.lpWarmHits.Load(),
		LPColdSolves:  s.lpColdSolves.Load(),
		Panics:        s.panics.Load(),
		Faults:        faultinject.Active().Counts(),
		Cluster:       s.cfg.Cluster.Snapshot(),
	}
	if sr, ok := s.cfg.Cache.(cache.StatsReader); ok {
		st := sr.Stats()
		h.Cache = &st
	}
	writeJSON(w, http.StatusOK, h)
}

// handleReadyz is the routing signal, distinct from /healthz liveness: a
// draining or not-yet-started node is alive (keep the process) but must not
// receive new work (stop routing to it).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /readyz")
		return
	}
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not_ready"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorResponse is the JSON error document shared by all endpoints.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
