package tech

import (
	"testing"

	"rficlayout/internal/geom"
)

func TestDefault90nm(t *testing.T) {
	tc := Default90nm()
	if err := tc.Validate(); err != nil {
		t.Fatalf("default technology invalid: %v", err)
	}
	if tc.GroundDistance != geom.FromMicrons(5) {
		t.Errorf("t = %d nm, want 5000", tc.GroundDistance)
	}
	if tc.Spacing() != geom.FromMicrons(10) {
		t.Errorf("spacing = %d nm, want 10000 (2t)", tc.Spacing())
	}
	if tc.Clearance() != geom.FromMicrons(5) {
		t.Errorf("clearance = %d nm, want 5000", tc.Clearance())
	}
	if tc.String() == "" {
		t.Error("empty string representation")
	}
}

func TestSpacingOverride(t *testing.T) {
	tc := Default90nm()
	tc.SpacingOverride = geom.FromMicrons(14)
	if tc.Spacing() != geom.FromMicrons(14) {
		t.Errorf("spacing = %d, want 14000", tc.Spacing())
	}
	if tc.Clearance() != geom.FromMicrons(7) {
		t.Errorf("clearance = %d, want 7000", tc.Clearance())
	}
}

func TestStripWidthDefaulting(t *testing.T) {
	tc := Default90nm()
	if tc.StripWidth(0) != tc.MicrostripWidth {
		t.Error("zero width should default to technology width")
	}
	if tc.StripWidth(geom.FromMicrons(8)) != geom.FromMicrons(8) {
		t.Error("explicit width should be preserved")
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Technology)
	}{
		{"zero ground distance", func(tc *Technology) { tc.GroundDistance = 0 }},
		{"negative strip width", func(tc *Technology) { tc.MicrostripWidth = -1 }},
		{"zero pad", func(tc *Technology) { tc.PadSize = 0 }},
		{"negative spacing override", func(tc *Technology) { tc.SpacingOverride = -5 }},
		{"huge bend compensation", func(tc *Technology) { tc.BendCompensation = tc.MicrostripWidth * 10 }},
	}
	for _, c := range cases {
		tc := Default90nm()
		c.mutate(&tc)
		if err := tc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}
