// Package tech describes the process technology parameters that the RFIC
// layout generator needs: the thin-film microstrip geometry (Figure 1 of the
// paper), the coupling-driven spacing rule, and the equivalent-length
// compensation of smoothed bends (Figure 3).
package tech

import (
	"fmt"

	"rficlayout/internal/geom"
)

// Technology bundles the layout-relevant parameters of a CMOS process with
// thin-film microstrip transmission lines.
type Technology struct {
	// Name identifies the process, e.g. "cmos90".
	Name string
	// GroundDistance is t: the dielectric distance between the microstrip
	// layer (top metal) and its ground plane (Metal 1). About 5 µm in 90 nm
	// CMOS.
	GroundDistance geom.Coord
	// MicrostripWidth is the default width of microstrip lines.
	MicrostripWidth geom.Coord
	// BendCompensation is δ: the signed equivalent-length change applied for
	// every smoothed 90° bend. A 45° shortcut propagates slightly shorter
	// than the two legs it replaces, so δ is typically negative.
	BendCompensation geom.Coord
	// SpacingOverride, when non-zero, replaces the default 2·t spacing rule
	// between microstrips/devices.
	SpacingOverride geom.Coord
	// PadSize is the edge length of the square I/O pads.
	PadSize geom.Coord
}

// Default90nm returns the parameters the paper quotes for a 90 nm CMOS
// process: t ≈ 5 µm, hence 10 µm spacing, 10 µm wide microstrips, 60 µm pads
// and a −4 µm equivalent-length correction per smoothed bend.
func Default90nm() Technology {
	return Technology{
		Name:             "cmos90",
		GroundDistance:   geom.FromMicrons(5),
		MicrostripWidth:  geom.FromMicrons(10),
		BendCompensation: geom.FromMicrons(-4),
		PadSize:          geom.FromMicrons(60),
	}
}

// Spacing returns the required minimum distance between any two microstrip
// segments or devices: 2·t unless overridden.
func (t Technology) Spacing() geom.Coord {
	if t.SpacingOverride > 0 {
		return t.SpacingOverride
	}
	return 2 * t.GroundDistance
}

// Clearance returns the per-shape bounding-box expansion that encodes the
// spacing rule: expanding every shape by Clearance on each side and requiring
// the expanded boxes not to overlap enforces Spacing between the shapes.
func (t Technology) Clearance() geom.Coord {
	return t.Spacing() / 2
}

// StripWidth returns the width to use for a microstrip that did not specify
// its own.
func (t Technology) StripWidth(requested geom.Coord) geom.Coord {
	if requested > 0 {
		return requested
	}
	return t.MicrostripWidth
}

// Validate checks that the parameters are physically meaningful.
func (t Technology) Validate() error {
	if t.GroundDistance <= 0 {
		return fmt.Errorf("tech %q: ground distance must be positive, got %d nm", t.Name, t.GroundDistance)
	}
	if t.MicrostripWidth <= 0 {
		return fmt.Errorf("tech %q: microstrip width must be positive, got %d nm", t.Name, t.MicrostripWidth)
	}
	if t.PadSize <= 0 {
		return fmt.Errorf("tech %q: pad size must be positive, got %d nm", t.Name, t.PadSize)
	}
	if t.SpacingOverride < 0 {
		return fmt.Errorf("tech %q: spacing override must not be negative, got %d nm", t.Name, t.SpacingOverride)
	}
	if geom.AbsCoord(t.BendCompensation) >= t.MicrostripWidth*4 {
		return fmt.Errorf("tech %q: bend compensation %d nm is implausibly large", t.Name, t.BendCompensation)
	}
	return nil
}

// String implements fmt.Stringer.
func (t Technology) String() string {
	return fmt.Sprintf("%s: t=%.1fµm spacing=%.1fµm strip=%.1fµm δ=%.1fµm pad=%.1fµm",
		t.Name,
		geom.Microns(t.GroundDistance),
		geom.Microns(t.Spacing()),
		geom.Microns(t.MicrostripWidth),
		geom.Microns(t.BendCompensation),
		geom.Microns(t.PadSize))
}
