// Command rficgen runs the progressive ILP-based layout flow on one or more
// circuit files and writes the resulting layout, an SVG rendering and a
// quality report. With several -circuit files (or -parallel > 1) the circuits
// are solved concurrently through the batch engine. Ctrl-C cancels the solve
// cleanly at the next solver boundary.
//
// Usage:
//
//	rficgen -circuit lna.rfic -out lna.rlay -svg lna.svg
//	rficgen -benchmark lna94 -svg lna94.svg
//	rficgen -parallel 4 -circuit a.rfic -circuit b.rfic -circuit c.rfic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/engine"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

// stringList collects repeated -circuit flags.
type stringList []string

func (s *stringList) String() string     { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var circuitPaths stringList
	flag.Var(&circuitPaths, "circuit", "circuit file to lay out (repeatable)")
	benchmark := flag.String("benchmark", "", "built-in benchmark circuit (lna94, buffer60, lna60) instead of -circuit")
	smallArea := flag.Bool("small-area", false, "use the smaller stress-test area of the benchmark circuit")
	outPath := flag.String("out", "", "write the layout file here (single circuit only)")
	svgPath := flag.String("svg", "", "write an SVG rendering here (single circuit only)")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	parallel := flag.Int("parallel", 0, "worker count: jobs in flight and per-flow strip solvers (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Workers stays unset while building jobs: with several circuits the
	// engine parallelizes across jobs (and pins each flow to one worker);
	// only a single-circuit run hands -parallel to the flow's own pool.
	opts := pilp.Options{StripTimeLimit: *stripTime}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var jobs []engine.Job
	switch {
	case *benchmark != "":
		spec, err := circuits.BySpecName(*benchmark)
		if err != nil {
			fatal(err)
		}
		circuit := circuits.Build(spec)
		if *smallArea {
			circuit = circuits.BuildSmallArea(spec)
		}
		jobs = append(jobs, engine.Job{Circuit: circuit, Options: opts})
	case len(circuitPaths) > 0:
		for _, path := range circuitPaths {
			c, err := netlist.ParseFile(path)
			if err != nil {
				fatal(err)
			}
			jobs = append(jobs, engine.Job{Name: path, Circuit: c, Options: opts})
		}
	default:
		fatal(fmt.Errorf("either -circuit or -benchmark is required"))
	}
	if len(jobs) > 1 && (*outPath != "" || *svgPath != "") {
		fatal(fmt.Errorf("-out and -svg apply to a single circuit; got %d", len(jobs)))
	}
	if len(jobs) == 1 {
		jobs[0].Options.Workers = *parallel
	}

	engineOpts := engine.Options{Parallel: *parallel}
	if *verbose {
		engineOpts.Logf = opts.Logf
	}
	results := engine.Run(ctx, jobs, engineOpts)

	failed := 0
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "rficgen: %s: %v\n", r.Name, r.Err)
			failed++
			continue
		}
		fmt.Println(report.LayoutSummary(jobs[i].Circuit.Name, r.Result.Layout, r.Result.Runtime))
		for _, v := range r.Result.Violations() {
			fmt.Printf("  violation: %v\n", v)
		}
		if *outPath != "" {
			if err := layout.WriteFile(*outPath, r.Result.Layout); err != nil {
				fatal(err)
			}
		}
		if *svgPath != "" {
			if err := layout.SaveSVG(*svgPath, r.Result.Layout, layout.SVGOptions{ShowLabels: true, Title: jobs[i].Circuit.Name}); err != nil {
				fatal(err)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rficgen:", err)
	os.Exit(1)
}
