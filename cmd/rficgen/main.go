// Command rficgen runs the progressive ILP-based layout flow on a circuit
// file and writes the resulting layout, an SVG rendering and a quality
// report.
//
// Usage:
//
//	rficgen -circuit lna.rfic -out lna.rlay -svg lna.svg
//	rficgen -benchmark lna94 -svg lna94.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

func main() {
	circuitPath := flag.String("circuit", "", "circuit file to lay out")
	benchmark := flag.String("benchmark", "", "built-in benchmark circuit (lna94, buffer60, lna60) instead of -circuit")
	smallArea := flag.Bool("small-area", false, "use the smaller stress-test area of the benchmark circuit")
	outPath := flag.String("out", "", "write the layout file here")
	svgPath := flag.String("svg", "", "write an SVG rendering here")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	var circuit *netlist.Circuit
	switch {
	case *benchmark != "":
		spec, err := circuits.BySpecName(*benchmark)
		if err != nil {
			fatal(err)
		}
		if *smallArea {
			circuit = circuits.BuildSmallArea(spec)
		} else {
			circuit = circuits.Build(spec)
		}
	case *circuitPath != "":
		c, err := netlist.ParseFile(*circuitPath)
		if err != nil {
			fatal(err)
		}
		circuit = c
	default:
		fatal(fmt.Errorf("either -circuit or -benchmark is required"))
	}

	opts := pilp.Options{StripTimeLimit: *stripTime}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	res, err := pilp.Generate(circuit, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.LayoutSummary(circuit.Name, res.Layout, time.Since(start)))
	for _, v := range res.Violations() {
		fmt.Printf("  violation: %v\n", v)
	}
	if *outPath != "" {
		if err := layout.WriteFile(*outPath, res.Layout); err != nil {
			fatal(err)
		}
	}
	if *svgPath != "" {
		if err := layout.SaveSVG(*svgPath, res.Layout, layout.SVGOptions{ShowLabels: true, Title: circuit.Name}); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rficgen:", err)
	os.Exit(1)
}
