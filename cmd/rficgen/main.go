// Command rficgen runs the progressive ILP-based layout flow on one or more
// circuit files and writes the resulting layout, an SVG rendering and a
// quality report. With several -circuit files (or -parallel > 1) the circuits
// are solved concurrently through the batch engine. Ctrl-C cancels the solve
// cleanly at the next solver boundary.
//
// With -cache DIR, solved layouts are stored in a content-addressed result
// cache under DIR and repeated runs (same circuit, same solve options) skip
// the solve entirely — the flow is deterministic, so the cached layout is
// byte-identical to what re-solving would produce.
//
// Usage:
//
//	rficgen -circuit lna.rfic -out lna.rlay -svg lna.svg
//	rficgen -benchmark lna94 -svg lna94.svg
//	rficgen -parallel 4 -circuit a.rfic -circuit b.rfic -circuit c.rfic
//	rficgen -cache .rficcache -circuit lna.rfic -out lna.rlay
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/circuits"
	"rficlayout/internal/engine"
	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

// stringList collects repeated -circuit flags.
type stringList []string

func (s *stringList) String() string     { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var circuitPaths stringList
	flag.Var(&circuitPaths, "circuit", "circuit file to lay out (repeatable)")
	benchmark := flag.String("benchmark", "", "built-in benchmark circuit (lna94, buffer60, lna60) instead of -circuit")
	smallArea := flag.Bool("small-area", false, "use the smaller stress-test area of the benchmark circuit")
	outPath := flag.String("out", "", "write the layout file here (single circuit only)")
	svgPath := flag.String("svg", "", "write an SVG rendering here (single circuit only)")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	shardSize := flag.Int("shard-size", 0, "shard the phase-1 global adjustment into device clusters of at most this size (0 = monolithic)")
	parallel := flag.Int("parallel", 0, "worker count: jobs in flight and per-flow strip solvers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "result cache directory; hits skip the solve with byte-identical layouts")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Workers stays unset while building jobs: with several circuits the
	// engine parallelizes across jobs (and pins each flow to one worker);
	// only a single-circuit run hands -parallel to the flow's own pool.
	opts := pilp.Options{StripTimeLimit: *stripTime, ShardSize: *shardSize}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var jobs []engine.Job
	switch {
	case *benchmark != "":
		spec, err := circuits.BySpecName(*benchmark)
		if err != nil {
			fatal(err)
		}
		circuit := circuits.Build(spec)
		if *smallArea {
			circuit = circuits.BuildSmallArea(spec)
		}
		jobs = append(jobs, engine.Job{Circuit: circuit, Options: opts})
	case len(circuitPaths) > 0:
		for _, path := range circuitPaths {
			c, err := netlist.ParseFile(path)
			if err != nil {
				fatal(err)
			}
			jobs = append(jobs, engine.Job{Name: path, Circuit: c, Options: opts})
		}
	default:
		fatal(fmt.Errorf("either -circuit or -benchmark is required"))
	}
	if len(jobs) > 1 && (*outPath != "" || *svgPath != "") {
		fatal(fmt.Errorf("-out and -svg apply to a single circuit; got %d", len(jobs)))
	}
	if len(jobs) == 1 {
		jobs[0].Options.Workers = *parallel
	}

	// With -cache, answer as many jobs as possible from the content-addressed
	// result cache and only hand the misses to the engine. The cache key
	// ignores worker counts (output-invariant), so -parallel never splits the
	// cache. An entry whose layout text no longer parses (format drift, torn
	// disk entry) degrades to a miss and is re-solved.
	var store cache.Cache
	type cachedResult struct {
		entry  cache.Entry
		layout *layout.Layout
	}
	cached := make([]*cachedResult, len(jobs))
	if *cacheDir != "" {
		disk, err := cache.NewDir(*cacheDir)
		if err != nil {
			fatal(err)
		}
		store = disk
		for i := range jobs {
			entry, ok := store.Get(cache.Key(jobs[i].Circuit, jobs[i].Options))
			if !ok {
				continue
			}
			if l, err := layout.ParseLayoutString(string(entry.Layout), jobs[i].Circuit); err == nil {
				cached[i] = &cachedResult{entry: entry, layout: l}
			}
		}
	}
	var pending []engine.Job
	var pendingIdx []int
	for i := range jobs {
		if cached[i] == nil {
			pending = append(pending, jobs[i])
			pendingIdx = append(pendingIdx, i)
		}
	}

	engineOpts := engine.Options{Parallel: *parallel}
	if *verbose {
		engineOpts.Logf = opts.Logf
	}
	results := make([]engine.Result, len(jobs))
	for i, r := range engine.Run(ctx, pending, engineOpts) {
		results[pendingIdx[i]] = r
	}

	failed := 0
	for i := range jobs {
		circuit := jobs[i].Circuit
		var lay *layout.Layout
		var layoutText []byte
		var runtime time.Duration
		if hit := cached[i]; hit != nil {
			lay, layoutText, runtime = hit.layout, hit.entry.Layout, hit.entry.Runtime
			fmt.Printf("%s (cached)\n", report.LayoutSummary(circuit.Name, lay, runtime))
		} else {
			r := results[i]
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "rficgen: %s: %v\n", r.Name, r.Err)
				failed++
				continue
			}
			lay, runtime = r.Result.Layout, r.Result.Runtime
			layoutText = []byte(layout.Format(lay))
			if store != nil {
				// Store the flow runtime (what the cold run prints) so warm
				// summaries repeat the cold run's numbers exactly.
				store.Put(cache.Key(circuit, jobs[i].Options), cache.Entry{
					Circuit: circuit.Name,
					Layout:  layoutText,
					Runtime: r.Result.Runtime,
					Nodes:   r.Nodes,
					Shards:  len(r.Shards),
				})
			}
			fmt.Println(report.LayoutSummary(circuit.Name, lay, runtime))
		}
		for _, v := range lay.Check(layout.CheckOptions{PinTolerance: 2}) {
			fmt.Printf("  violation: %v\n", v)
		}
		if *outPath != "" {
			// The cached bytes are written verbatim so a warm run's output is
			// byte-identical to the cold run that produced the entry.
			if err := os.WriteFile(*outPath, layoutText, 0o644); err != nil {
				fatal(err)
			}
		}
		if *svgPath != "" {
			if err := layout.SaveSVG(*svgPath, lay, layout.SVGOptions{ShowLabels: true, Title: circuit.Name}); err != nil {
				fatal(err)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rficgen:", err)
	os.Exit(1)
}
