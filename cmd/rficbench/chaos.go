package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/server"
)

// defaultFaultSpec is the chaos battery's stock schedule: worker-pool and
// engine panics, injected admission failures, torn cache writes, and
// transient cache read errors (absorbed by the tier's bounded retry). Every
// budget is finite, so a long enough run always clears the faults and must
// return to byte-identical service.
const defaultFaultSpec = "conc.panic=0.25/3," +
	"engine.panic=0.5/2," +
	"server.admit=0.5/2," +
	"cache.dir.torn=0.5/2," +
	"cache.dir.read=1/2"

// chaosNetlist builds the i-th tiny chaos circuit: the same solvable
// PIN → M1 → POUT shape under distinct names, so requests are neither
// coalesced by singleflight nor cross-served from the cache.
func chaosNetlist(i int) string {
	return fmt.Sprintf(`
circuit chaos%d
area 400 300
tech name=cmos90 t=5 width=10 delta=-4 pad=60
device M1 transistor 40 30
pin M1 in -20 0
pin M1 out 20 0
pad PIN
pad POUT
strip TL1 PIN.p M1.in length=130
strip TL2 M1.out POUT.p length=140
`, i)
}

// chaosRecord is one JSONL line of the chaos run. It carries no wall-clock
// fields: the request sequence, retry counts and statuses are all pure
// functions of the fault seed, so two runs with the same flags must produce
// byte-identical files — CI diffs them as the replay guard.
type chaosRecord struct {
	Round    int    `json:"round"`
	Circuit  string `json:"circuit"`
	Attempts int    `json:"attempts"`
	Status   string `json:"status"`
	CacheHit bool   `json:"cache_hit"`
	Partial  bool   `json:"partial"`
	Match    bool   `json:"match"`
	// Cluster-path provenance, set only by the two-node battery (omitted from
	// single-node JSONL so its byte format is unchanged).
	Proxied  bool   `json:"proxied,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Owner    string `json:"owner,omitempty"`
}

// chaosResponse is the subset of the server's solve response the battery
// inspects.
type chaosResponse struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	CacheHit bool   `json:"cache_hit"`
	Partial  bool   `json:"partial"`
	Layout   string `json:"layout"`
	Error    string `json:"error"`
	Proxied  bool   `json:"proxied"`
	Degraded bool   `json:"degraded"`
	Owner    string `json:"owner"`
}

func chaosSolve(ctx context.Context, url, body string) (chaosResponse, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/solve", strings.NewReader(body))
	if err != nil {
		return chaosResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return chaosResponse{}, 0, err
	}
	defer resp.Body.Close()
	var cr chaosResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return chaosResponse{}, resp.StatusCode, err
	}
	return cr, resp.StatusCode, nil
}

// runChaos is the seeded chaos battery: solve a small circuit set through a
// live server while the fault registry injects panics, admission failures
// and cache corruption on a deterministic schedule, then reconcile every
// /healthz counter against the fired-fault counts and require byte-identical
// layouts to a fault-free baseline once the budgets clear. Returns false on
// any accounting mismatch, layout divergence, retry exhaustion — or a dead
// server, which is the one failure mode the whole battery exists to rule out.
func runChaos(ctx context.Context, faultSpec string, seed int64, rounds int, chaosOut, scheduleOut string) bool {
	if faultSpec == "" {
		faultSpec = defaultFaultSpec
	}
	plan, err := faultinject.ParsePlan(faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -faults:", err)
		return false
	}
	const circuits = 3
	bodies := make([]string, circuits)
	names := make([]string, circuits)
	for i := range bodies {
		bodies[i] = chaosNetlist(i)
		c, err := netlist.ParseString(bodies[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: chaos netlist:", err)
			return false
		}
		names[i] = c.Name
	}

	// Flow options mirror the server test fixture: small models that solve in
	// tens of milliseconds, generous limits so nothing binds — determinism
	// holds and the only perturbations are the injected ones.
	solveOpts := pilp.Options{
		ChainPoints:         3,
		MaxChainPoints:      3,
		StripTimeLimit:      2 * time.Second,
		PhaseTimeLimit:      5 * time.Second,
		MaxRefineIterations: 1,
	}
	newServer := func(c cache.Cache) (*server.Server, *httptest.Server) {
		// Workers=2 pins each flow to one solver goroutine (sequential conc
		// path), so one injected pool panic aborts exactly one solve — the
		// invariant behind the panics == fired equality below.
		s := server.New(server.Config{Workers: 2, QueueDepth: 8, SolveOptions: solveOpts, Cache: c})
		return s, httptest.NewServer(s.Handler())
	}

	// Fault-free baseline layouts.
	baseline := make([]string, circuits)
	{
		s, ts := newServer(nil)
		for i, body := range bodies {
			cr, code, err := chaosSolve(ctx, ts.URL, body)
			if err != nil || code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "rficbench: baseline %s: status %d err %v (%s)\n", names[i], code, err, cr.Error)
				ts.Close()
				s.Close()
				return false
			}
			baseline[i] = cr.Layout
		}
		ts.Close()
		s.Close()
	}

	// Chaos run: fresh server, persistent Dir cache only (a memory tier would
	// mask torn disk entries), registry armed.
	cacheDir, err := os.MkdirTemp("", "rficbench-chaos-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		return false
	}
	defer os.RemoveAll(cacheDir)
	dir, err := cache.NewDir(cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		return false
	}
	reg := faultinject.New(plan, seed)
	faultinject.Enable(reg)
	defer faultinject.Disable()
	s, ts := newServer(dir)
	defer s.Close()
	defer ts.Close()

	var out io.Writer = os.Stdout
	if chaosOut != "" {
		f, err := os.Create(chaosOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -chaos-out:", err)
			return false
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	fmt.Printf("chaos: seed %d, plan %s, %d rounds x %d circuits\n", seed, plan.String(), rounds, circuits)
	ok := true
	for r := 0; r < rounds; r++ {
		for i, body := range bodies {
			rec := chaosRecord{Round: r, Circuit: names[i]}
			for rec.Attempts = 1; rec.Attempts <= 10; rec.Attempts++ {
				cr, code, err := chaosSolve(ctx, ts.URL, body)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rficbench: chaos round %d %s: transport error: %v (server died?)\n", r, names[i], err)
					return false
				}
				if code == http.StatusServiceUnavailable || code == http.StatusInternalServerError {
					continue // retryable by design: injected rejection or isolated panic
				}
				if code != http.StatusOK {
					fmt.Fprintf(os.Stderr, "rficbench: chaos round %d %s: unexpected status %d (%s)\n", r, names[i], code, cr.Error)
					return false
				}
				rec.Status = cr.Status
				rec.CacheHit = cr.CacheHit
				rec.Partial = cr.Partial
				rec.Match = cr.Layout == baseline[i]
				break
			}
			if rec.Status == "" {
				fmt.Fprintf(os.Stderr, "rficbench: chaos round %d %s: no success in 10 attempts\n", r, names[i])
				return false
			}
			// Every full-quality result must be byte-identical to the
			// fault-free baseline, faults or not.
			if !rec.Partial && !rec.Match {
				fmt.Fprintf(os.Stderr, "rficbench: chaos round %d %s: layout diverged from fault-free baseline\n", r, names[i])
				ok = false
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "rficbench:", err)
				return false
			}
		}
	}

	// Reconcile /healthz against the fired-fault counts.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: healthz:", err)
		return false
	}
	var h struct {
		Solved   int64 `json:"solved"`
		Failed   int64 `json:"failed"`
		Rejected int64 `json:"rejected"`
		Panics   int64 `json:"panics"`
		Cache    *struct {
			Corrupt int64 `json:"corrupt"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: healthz:", err)
		return false
	}
	counts := reg.Counts()
	for _, point := range []string{faultinject.PointConcPanic, faultinject.PointEnginePanic, faultinject.PointServerAdmit, faultinject.PointCacheTorn, faultinject.PointCacheRead} {
		c := counts[point]
		fmt.Printf("chaos: %-16s hits %3d fired %2d\n", point, c.Hits, c.Fired)
	}
	wantPanics := counts[faultinject.PointConcPanic].Fired + counts[faultinject.PointEnginePanic].Fired
	if h.Panics != wantPanics {
		fmt.Fprintf(os.Stderr, "rficbench: healthz panics %d != injected panics %d\n", h.Panics, wantPanics)
		ok = false
	}
	if h.Rejected != counts[faultinject.PointServerAdmit].Fired {
		fmt.Fprintf(os.Stderr, "rficbench: healthz rejected %d != injected admission failures %d\n", h.Rejected, counts[faultinject.PointServerAdmit].Fired)
		ok = false
	}
	var corrupt int64 = -1
	if h.Cache != nil {
		corrupt = h.Cache.Corrupt
	}
	if corrupt != counts[faultinject.PointCacheTorn].Fired {
		fmt.Fprintf(os.Stderr, "rficbench: cache corrupt %d != injected torn writes %d\n", corrupt, counts[faultinject.PointCacheTorn].Fired)
		ok = false
	}
	fmt.Printf("chaos: solved %d failed %d rejected %d panics %d corrupt %d\n", h.Solved, h.Failed, h.Rejected, h.Panics, corrupt)

	if scheduleOut != "" {
		f, err := os.Create(scheduleOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -fault-schedule-out:", err)
			return false
		}
		werr := reg.WriteSchedule(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "rficbench: writing fault schedule: %v %v\n", werr, cerr)
			return false
		}
	}
	if ok {
		fmt.Println("chaos: OK — zero process deaths, all injected faults accounted for")
	}
	return ok
}
