package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rficlayout/internal/audit"
	"rficlayout/internal/circuits/fuzz"
	"rficlayout/internal/netlist"
)

// fuzzRecord is one JSONL line of -fuzz output. Every field is a
// deterministic function of (seed, budget, checks): wall-clock never appears,
// so two runs with the same flags produce byte-identical files — the property
// that lets CI diff fuzz output across replays and makes any divergence
// itself a determinism failure.
type fuzzRecord struct {
	Seed    int64               `json:"seed"`
	Circuit string              `json:"circuit"`
	Profile fuzz.Profile        `json:"profile"`
	Budget  int                 `json:"budget"`
	Nodes   int                 `json:"nodes"`
	Passed  bool                `json:"passed"`
	Checks  []audit.CheckResult `json:"checks"`
	// Fixture is the path of the minimized failing circuit, when one was
	// written.
	Fixture string `json:"fixture,omitempty"`
	// Error reports a battery-level error (solver failure, cancellation) —
	// distinct from a check failing.
	Error string `json:"error,omitempty"`
}

// runFuzz drives the seeded fuzzer: for each seed in [seedBase, seedBase+count)
// it generates a circuit, runs the metamorphic audit battery under
// deterministic node budgets, appends one JSONL record to outPath (stdout if
// empty), and on failure shrinks the circuit with the audit minimizer and
// writes a committable .rfic fixture to fixtureDir. Returns false when any
// seed failed.
func runFuzz(ctx context.Context, seedBase int64, count, budget int, checksCSV, outPath, fixtureDir string) bool {
	checks, err := parseChecks(checksCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		return false
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -fuzz-out:", err)
			return false
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	opts := audit.Options{Solve: audit.DefaultSolveOptions(budget), Checks: checks}
	ok := true
	failures := 0
	for i := 0; i < count; i++ {
		seed := seedBase + int64(i)
		c, profile := fuzz.Generate(seed)
		rec := fuzzRecord{Seed: seed, Circuit: c.Name, Profile: profile, Budget: budget}
		rep, err := audit.Run(ctx, c, opts)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "rficbench: fuzz interrupted:", ctx.Err())
				return false
			}
			rec.Error = err.Error()
			ok = false
		default:
			rec.Nodes = rep.Nodes
			rec.Checks = rep.Results
			rec.Passed = rep.Passed()
			if !rec.Passed {
				ok = false
				failures++
				fmt.Fprintf(os.Stderr, "rficbench: seed %d (%s/%s/%s): failing checks: %s\n",
					seed, profile.Shape, profile.Aspect, profile.Lengths, checkNames(rep.Failed()))
				if fixtureDir != "" {
					rec.Fixture = minimizeFailure(ctx, c, rep, opts, fixtureDir, seed)
				}
			}
		}
		_ = enc.Encode(rec)
	}
	fmt.Fprintf(os.Stderr, "fuzz: %d circuit(s), %d failing\n", count, failures)
	if ok {
		fmt.Println("fuzz: OK")
	}
	return ok
}

// minimizeFailure shrinks a failing circuit while its failing checks keep
// failing and writes the result as a replayable .rfic fixture. Returns the
// fixture path, or "" when minimization could not produce one.
func minimizeFailure(ctx context.Context, c *netlist.Circuit, rep *audit.Report, opts audit.Options, fixtureDir string, seed int64) string {
	failing := make([]string, 0, len(rep.Failed()))
	for _, f := range rep.Failed() {
		failing = append(failing, f.Name)
	}
	mopts := opts
	mopts.Checks = failing
	pred := func(ctx context.Context, cand *netlist.Circuit) (string, bool) {
		r, err := audit.Run(ctx, cand, mopts)
		if err != nil {
			return "", false
		}
		if f := r.Failed(); len(f) > 0 {
			return f[0].Name + ": " + f[0].Detail, true
		}
		return "", false
	}
	res, err := audit.Minimize(ctx, c, pred)
	if err != nil || res == nil {
		fmt.Fprintf(os.Stderr, "rficbench: seed %d: minimization aborted: %v\n", seed, err)
		return ""
	}
	path := filepath.Join(fixtureDir, fmt.Sprintf("fuzz%d.min.rfic", seed))
	if err := audit.WriteFixture(path, res.Circuit); err != nil {
		fmt.Fprintf(os.Stderr, "rficbench: seed %d: writing fixture: %v\n", seed, err)
		return ""
	}
	fmt.Fprintf(os.Stderr, "rficbench: seed %d: minimized to %d device(s), %d strip(s) in %d step(s): %s (%s)\n",
		seed, len(res.Circuit.Devices), len(res.Circuit.Microstrips), res.Steps, path, res.Detail)
	return path
}

// parseChecks validates a comma-separated check subset against the battery's
// known names. Empty means the full battery.
func parseChecks(csv string) ([]string, error) {
	if csv == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, name := range audit.AllChecks {
		known[name] = true
	}
	var out []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("-fuzz-checks: unknown check %q (known: %s)", name, strings.Join(audit.AllChecks, ","))
		}
		out = append(out, name)
	}
	return out, nil
}

func checkNames(results []audit.CheckResult) string {
	names := make([]string, len(results))
	for i, r := range results {
		names[i] = r.Name
	}
	return strings.Join(names, ",")
}
