package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/cluster"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/server"
)

// defaultClusterFaultSpec is the two-node battery's stock schedule: every
// phase of a peer forward can fail (dial, mid-exchange, body read), plus torn
// cache writes on either node's persistent tier. Dial fails outright with a
// budget equal to MaxAttempts, so the first forward operation deterministically
// exhausts its attempts and exercises the degraded local fallback; the other
// budgets are finite too, so the run always clears the faults and must return
// to clean forwarded service.
const defaultClusterFaultSpec = "cluster.dial=1/3," +
	"cluster.forward=0.4/2," +
	"cluster.body=0.4/2," +
	"cache.dir.torn=0.5/2"

// chaosClusterHealth is the /healthz subset the two-node battery reconciles.
type chaosClusterHealth struct {
	Solved   int64 `json:"solved"`
	Failed   int64 `json:"failed"`
	Rejected int64 `json:"rejected"`
	Panics   int64 `json:"panics"`
	Cache    *struct {
		Corrupt int64 `json:"corrupt"`
	} `json:"cache"`
	Cluster *cluster.StatsSnapshot `json:"cluster"`
}

func getChaosHealth(url string) (chaosClusterHealth, error) {
	var h chaosClusterHealth
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// runChaosCluster is the two-node chaos battery: a cross-replica topology of
// two in-process servers ("a" and "b") on a consistent-hash ring, with every
// request sent to node a. Requests owned by b exercise the full forwarding
// path — peer retries with backoff, degraded local fallback once budgets
// exhaust, the cross-replica audit on proxied results — while injected
// cluster faults fail forwards and torn writes corrupt either node's
// persistent tier. The run fails unless both processes survive, every fired
// fault reconciles exactly against the cluster and cache counters, the audit
// finds zero mismatches, and every layout is byte-identical to a fault-free
// single-node baseline (including degraded and post-fault rounds).
func runChaosCluster(ctx context.Context, faultSpec string, seed int64, rounds int, chaosOut, scheduleOut string) bool {
	if faultSpec == "" {
		faultSpec = defaultClusterFaultSpec
	}
	plan, err := faultinject.ParsePlan(faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -faults:", err)
		return false
	}

	solveOpts := pilp.Options{
		ChainPoints:         3,
		MaxChainPoints:      3,
		StripTimeLimit:      2 * time.Second,
		PhaseTimeLimit:      5 * time.Second,
		MaxRefineIterations: 1,
	}

	// Assemble the circuit set: scan the chaos circuit family until both
	// nodes own two circuits each (ownership hashes stable peer names, so
	// this selection is deterministic and port-independent). Keys owned by b
	// exercise the forwarding path from a; keys owned by a pin the local path
	// under the same fault schedule.
	const auditEvery = 2
	ringOnly := cluster.New(cluster.Config{Self: "a", Peers: []cluster.Peer{{Name: "a"}, {Name: "b"}}})
	var bodies, names, keys []string
	var owners []string
	counts := map[string]int{}
	for i := 0; counts["a"] < 2 || counts["b"] < 2; i++ {
		if i >= 50 {
			fmt.Fprintln(os.Stderr, "rficbench: chaos-cluster: circuit family never covered both owners")
			return false
		}
		body := chaosNetlist(i)
		c, err := netlist.ParseString(body)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: chaos netlist:", err)
			return false
		}
		key := cache.Key(c, solveOpts)
		p, _ := ringOnly.Owner(key)
		if counts[p.Name] >= 2 {
			continue
		}
		counts[p.Name]++
		bodies = append(bodies, body)
		names = append(names, c.Name)
		keys = append(keys, key)
		owners = append(owners, p.Name)
	}
	nB := counts["b"]

	// Fault-free single-node baseline: the oracle every later response —
	// local, proxied or degraded — must match byte-for-byte.
	baseline := make([]string, len(bodies))
	{
		s := server.New(server.Config{Workers: 2, QueueDepth: 8, SolveOptions: solveOpts})
		ts := httptest.NewServer(s.Handler())
		for i, body := range bodies {
			cr, code, err := chaosSolve(ctx, ts.URL, body)
			if err != nil || code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "rficbench: baseline %s: status %d err %v (%s)\n", names[i], code, err, cr.Error)
				ts.Close()
				s.Close()
				return false
			}
			baseline[i] = cr.Layout
		}
		ts.Close()
		s.Close()
	}

	// Two-node topology: listeners first (so both rings see final URLs),
	// then one server per node with its own persistent Dir tier — Dir only,
	// so torn writes surface as quarantines instead of hiding behind a
	// memory tier. The fault registry is process-global: both nodes draw
	// from the same deterministic schedule, in request order.
	lns := make(map[string]net.Listener, 2)
	peers := make([]cluster.Peer, 0, 2)
	for _, name := range []string{"a", "b"} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench:", err)
			return false
		}
		lns[name] = ln
		peers = append(peers, cluster.Peer{Name: name, URL: "http://" + ln.Addr().String()})
	}
	reg := faultinject.New(plan, seed)
	faultinject.Enable(reg)
	defer faultinject.Disable()

	type node struct {
		srv *server.Server
		ts  *httptest.Server
		url string
	}
	nodes := map[string]*node{}
	for _, name := range []string{"a", "b"} {
		cacheDir, err := os.MkdirTemp("", "rficbench-chaos-"+name+"-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench:", err)
			return false
		}
		defer os.RemoveAll(cacheDir)
		dir, err := cache.NewDir(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench:", err)
			return false
		}
		cl := cluster.New(cluster.Config{
			Self:           name,
			Peers:          peers,
			AttemptTimeout: 30 * time.Second,
			MaxAttempts:    3,
			BackoffBase:    time.Millisecond,
			BackoffMax:     10 * time.Millisecond,
			AuditEvery:     auditEvery,
		})
		s := server.New(server.Config{Workers: 2, QueueDepth: 8, SolveOptions: solveOpts, Cache: dir, Cluster: cl})
		ts := &httptest.Server{Listener: lns[name], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		defer s.Close()
		defer ts.Close()
		nodes[name] = &node{srv: s, ts: ts, url: ts.URL}
	}

	var out io.Writer = os.Stdout
	if chaosOut != "" {
		f, err := os.Create(chaosOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -chaos-out:", err)
			return false
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	fmt.Printf("chaos-cluster: seed %d, plan %s, %d rounds x %d circuits (%d owned by b)\n",
		seed, plan.String(), rounds, len(bodies), nB)
	ok := true
	var expectAudited, lastRoundDegraded int64
	for r := 0; r < rounds; r++ {
		for i, body := range bodies {
			rec := chaosRecord{Round: r, Circuit: names[i]}
			for rec.Attempts = 1; rec.Attempts <= 10; rec.Attempts++ {
				cr, code, err := chaosSolve(ctx, nodes["a"].url, body)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: transport error: %v (node died?)\n", r, names[i], err)
					return false
				}
				if code == http.StatusServiceUnavailable || code == http.StatusInternalServerError {
					continue
				}
				if code != http.StatusOK {
					fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: unexpected status %d (%s)\n", r, names[i], code, cr.Error)
					return false
				}
				rec.Status = cr.Status
				rec.CacheHit = cr.CacheHit
				rec.Partial = cr.Partial
				rec.Proxied = cr.Proxied
				rec.Degraded = cr.Degraded
				rec.Owner = cr.Owner
				rec.Match = cr.Layout == baseline[i]
				break
			}
			if rec.Status == "" {
				fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: no success in 10 attempts\n", r, names[i])
				return false
			}
			if !rec.Match {
				fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: layout diverged from single-node baseline (proxied=%v degraded=%v)\n",
					r, names[i], rec.Proxied, rec.Degraded)
				ok = false
			}
			// Cross-checks the counters cannot see: a b-owned request must
			// come back proxied or degraded, an a-owned one must be plain.
			if owners[i] == "b" && !rec.Proxied && !rec.Degraded {
				fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: b-owned request served without forwarding\n", r, names[i])
				ok = false
			}
			if owners[i] == "a" && (rec.Proxied || rec.Degraded) {
				fmt.Fprintf(os.Stderr, "rficbench: chaos-cluster round %d %s: a-owned request took the cluster path\n", r, names[i])
				ok = false
			}
			if rec.Proxied && cluster.AuditSampled(keys[i], auditEvery) {
				expectAudited++
			}
			if rec.Degraded && r == rounds-1 {
				lastRoundDegraded++
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "rficbench:", err)
				return false
			}
		}
	}

	hA, errA := getChaosHealth(nodes["a"].url)
	hB, errB := getChaosHealth(nodes["b"].url)
	if errA != nil || errB != nil {
		fmt.Fprintf(os.Stderr, "rficbench: healthz: %v %v\n", errA, errB)
		return false
	}
	counts2 := reg.Counts()
	var firedCluster int64
	for _, point := range []string{faultinject.PointClusterDial, faultinject.PointClusterForward, faultinject.PointClusterBody, faultinject.PointCacheTorn} {
		c := counts2[point]
		fmt.Printf("chaos-cluster: %-16s hits %3d fired %2d\n", point, c.Hits, c.Fired)
		if point != faultinject.PointCacheTorn {
			firedCluster += c.Fired
		}
	}
	ca := hA.Cluster
	if ca == nil {
		fmt.Fprintln(os.Stderr, "rficbench: node a reports no cluster stats")
		return false
	}

	// Exact reconciliation. Every failed forward attempt is one fired
	// cluster fault; an operation's failures are its retries when it finally
	// succeeds, retries+1 when it degrades — so the fired total must equal
	// retried + degraded, with no slack in either direction.
	if ca.AttemptFailures != firedCluster {
		fmt.Fprintf(os.Stderr, "rficbench: attempt failures %d != fired cluster faults %d\n", ca.AttemptFailures, firedCluster)
		ok = false
	}
	if ca.Retried+ca.Degraded != firedCluster {
		fmt.Fprintf(os.Stderr, "rficbench: retried %d + degraded %d != fired cluster faults %d\n", ca.Retried, ca.Degraded, firedCluster)
		ok = false
	}
	// Every b-owned request is exactly one forward operation (a never caches
	// remote-owned keys), so the operations partition into forwarded and
	// degraded with nothing unaccounted.
	if ca.Forwarded+ca.Degraded != int64(rounds*nB) {
		fmt.Fprintf(os.Stderr, "rficbench: forwarded %d + degraded %d != %d forward operations\n", ca.Forwarded, ca.Degraded, rounds*nB)
		ok = false
	}
	// Loop safety at scale: b solved everything a sent it without forwarding
	// anything back, and nothing on either node was lost to panics or
	// rejections the schedule never injected.
	if cb := hB.Cluster; cb == nil || cb.Forwarded != 0 || cb.Degraded != 0 {
		fmt.Fprintf(os.Stderr, "rficbench: node b cluster stats %+v, want zero forwards\n", hB.Cluster)
		ok = false
	}
	if hA.Panics != 0 || hB.Panics != 0 || hA.Rejected != 0 || hB.Rejected != 0 || hA.Failed != 0 || hB.Failed != 0 {
		fmt.Fprintf(os.Stderr, "rficbench: unexpected losses: a panics=%d rejected=%d failed=%d, b panics=%d rejected=%d failed=%d\n",
			hA.Panics, hA.Rejected, hA.Failed, hB.Panics, hB.Rejected, hB.Failed)
		ok = false
	}
	// Torn writes: each fired torn write is read back as a quarantine on
	// whichever node owns the key (the schedule fires early under its finite
	// budget, so no torn entry is left unread at the end of the run).
	var corrupt int64 = -1
	if hA.Cache != nil && hB.Cache != nil {
		corrupt = hA.Cache.Corrupt + hB.Cache.Corrupt
	}
	if corrupt != counts2[faultinject.PointCacheTorn].Fired {
		fmt.Fprintf(os.Stderr, "rficbench: quarantined %d != injected torn writes %d\n", corrupt, counts2[faultinject.PointCacheTorn].Fired)
		ok = false
	}
	// The cross-replica audit: sampling is a pure function of the content
	// key, so the battery knows exactly which proxied results were audited —
	// and the determinism contract demands zero mismatches.
	if ca.Audited != expectAudited {
		fmt.Fprintf(os.Stderr, "rficbench: audited %d != expected %d\n", ca.Audited, expectAudited)
		ok = false
	}
	if ca.AuditMismatch != 0 {
		fmt.Fprintf(os.Stderr, "rficbench: AUDIT MISMATCH count %d — determinism contract broken across replicas\n", ca.AuditMismatch)
		ok = false
	}
	// Once every budget is exhausted the fleet must be healed: the final
	// round forwards cleanly, nothing degrades.
	if lastRoundDegraded != 0 {
		fmt.Fprintf(os.Stderr, "rficbench: %d degraded solves in the final round; budgets should be exhausted\n", lastRoundDegraded)
		ok = false
	}
	fmt.Printf("chaos-cluster: forwarded %d retried %d degraded %d audited %d mismatch %d corrupt %d\n",
		ca.Forwarded, ca.Retried, ca.Degraded, ca.Audited, ca.AuditMismatch, corrupt)

	if scheduleOut != "" {
		f, err := os.Create(scheduleOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -fault-schedule-out:", err)
			return false
		}
		werr := reg.WriteSchedule(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "rficbench: writing fault schedule: %v %v\n", werr, cerr)
			return false
		}
	}
	if ok {
		fmt.Println("chaos-cluster: OK — both nodes alive, every fault accounted for, zero audit mismatches")
	}
	return ok
}
