// Command rficbench regenerates the paper's evaluation artifacts: the Table 1
// comparison of manual vs. P-ILP layouts, the Figure 7 phase snapshots (as
// SVG files) and the Figure 11 S-parameter sweeps. The Table 1 circuits are
// independent, so -parallel dispatches them to the batch engine and solves
// them concurrently; with -strip-time generous enough that no per-strip
// solve hits its limit, the layouts are identical to a sequential run
// (binding time limits stop solves at wall-clock-dependent points). Ctrl-C
// cancels cleanly at the next solver boundary.
//
// Usage:
//
//	rficbench -table1 -parallel 4
//	rficbench -figure7 -outdir out/
//	rficbench -figure11a
//	rficbench -figure11b
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/emsim"
	"rficlayout/internal/engine"
	"rficlayout/internal/layout"
	"rficlayout/internal/manual"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	figure7 := flag.Bool("figure7", false, "regenerate the Figure 7 phase snapshots (SVG)")
	figure11a := flag.Bool("figure11a", false, "regenerate Figure 11(a): 94 GHz LNA S-parameters")
	figure11b := flag.Bool("figure11b", false, "regenerate Figure 11(b): 60 GHz buffer S-parameters")
	outDir := flag.String("outdir", ".", "directory for SVG output")
	stripTime := flag.Duration("strip-time", 2*time.Second, "time limit per per-strip ILP solve")
	parallel := flag.Int("parallel", 0, "concurrent circuit solves for -table1 (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := pilp.Options{StripTimeLimit: *stripTime, MaxRefineIterations: 2}

	if *table1 {
		runTable1(ctx, opts, *parallel)
	}
	if *figure7 {
		runFigure7(ctx, opts, *outDir)
	}
	if *figure11a {
		runFigure11(ctx, "lna94", opts)
	}
	if *figure11b {
		runFigure11(ctx, "buffer60", opts)
	}
	if !*table1 && !*figure7 && !*figure11a && !*figure11b {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table1, -figure7, -figure11a or -figure11b")
		os.Exit(2)
	}
}

func buildCircuit(spec circuits.Spec, small bool) *netlist.Circuit {
	if small {
		return circuits.BuildSmallArea(spec)
	}
	return circuits.Build(spec)
}

func runTable1(ctx context.Context, opts pilp.Options, parallel int) {
	type cell struct {
		spec  circuits.Spec
		small bool
	}
	var cells []cell
	var jobs []engine.Job
	for _, spec := range circuits.Table1() {
		for _, small := range []bool{false, true} {
			cells = append(cells, cell{spec, small})
			jobs = append(jobs, engine.Job{
				Name:    fmt.Sprintf("%s/small=%v", spec.Name, small),
				Circuit: buildCircuit(spec, small),
				Options: opts,
			})
		}
	}
	results := engine.Run(ctx, jobs, engine.Options{Parallel: parallel})

	var rows []report.Table1Row
	for i, cl := range cells {
		c := jobs[i].Circuit
		row := report.Table1Row{
			Circuit:     cl.spec.Name,
			Microstrips: len(c.Microstrips),
			Devices:     len(c.Devices),
			AreaWidth:   c.AreaWidth,
			AreaHeight:  c.AreaHeight,
		}
		if !cl.small {
			start := time.Now()
			ml, err := manual.Generate(c, manual.Options{})
			if err == nil {
				m := ml.Metrics()
				row.ManualAvailable = true
				row.ManualMaxBends = m.MaxBends
				row.ManualTotalBends = m.TotalBends
				row.ManualRuntime = time.Since(start)
			}
		}
		r := results[i]
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "rficbench: %s: %v\n", r.Name, r.Err)
			continue
		}
		m := r.Result.Layout.Metrics()
		row.PILPMaxBends = m.MaxBends
		row.PILPTotalBends = m.TotalBends
		row.PILPRuntime = r.Result.Runtime
		row.PILPUnmatched = report.UnmatchedStrips(r.Result.Layout, 10)
		rows = append(rows, row)
	}
	fmt.Print(report.FormatTable1(rows))
}

func runFigure7(ctx context.Context, opts pilp.Options, outDir string) {
	spec, _ := circuits.BySpecName("lna94")
	c := circuits.Build(spec)
	res, err := pilp.GenerateCtx(ctx, c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	for i, snap := range res.Snapshots {
		path := filepath.Join(outDir, fmt.Sprintf("figure7_%d_%s.svg", i+1, snap.Phase))
		if err := layout.SaveSVG(path, snap.Layout, layout.SVGOptions{ShowLabels: true, Title: snap.Phase}); err != nil {
			fmt.Fprintln(os.Stderr, "rficbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s (violations %d) → %s\n", snap.Phase, snap.Metrics, snap.Violations, path)
	}
}

func runFigure11(ctx context.Context, name string, opts pilp.Options) {
	spec, err := circuits.BySpecName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	c := circuits.Build(spec)
	ml, err := manual.Generate(c, manual.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	res, err := pilp.GenerateCtx(ctx, c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	freqs := emsim.Sweep(spec.Frequency, 51)
	manualRF := emsim.SimulateLayout(ml, freqs, spec.Frequency)
	pilpRF := emsim.SimulateLayout(res.Layout, freqs, spec.Frequency)
	fmt.Print(report.FormatSweep(fmt.Sprintf("%s manual layout", spec.Name), manualRF))
	fmt.Print(report.FormatSweep(fmt.Sprintf("%s P-ILP layout", spec.Name), pilpRF))
	fmt.Printf("# gain at %.0f GHz: manual %.3f dB, P-ILP %.3f dB\n",
		spec.Frequency, emsim.GainAt(manualRF, spec.Frequency), emsim.GainAt(pilpRF, spec.Frequency))
}
