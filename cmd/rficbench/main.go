// Command rficbench regenerates the paper's evaluation artifacts: the Table 1
// comparison of manual vs. P-ILP layouts, the Figure 7 phase snapshots (as
// SVG files) and the Figure 11 S-parameter sweeps. The Table 1 circuits are
// independent, so -parallel dispatches them to the batch engine and solves
// them concurrently; with -strip-time generous enough that no per-strip
// solve hits its limit, the layouts are identical to a sequential run
// (binding time limits stop solves at wall-clock-dependent points). Ctrl-C
// cancels cleanly at the next solver boundary.
//
// With -shardguard the harness solves the synthetic large benchmark twice —
// monolithic phase 1 and sharded phase 1 (-shard-size) — reports the phase-1
// wall-clock of both, verifies the sharded run is byte-identical across
// worker counts, and exits non-zero when the sharded layout score regresses
// beyond -shard-tol. CI runs this as the sharding guard.
//
// With -lp-compare the harness runs the pivot-level benchmark
// (internal/lp/benchharness): the circuit named by -lp-circuit (a Table 1
// name, "large"/"largeN", or a .rfic path) is solved under every simplex
// core (-lp-cores) × pivot rule (-lp-rules) × warm/cold LP mode × worker
// count, the per-run simplex counters are printed as a table (and recorded
// via -stats-out), and the run exits non-zero when any cell's layout
// deviates from the rest, when a warm run spends more pivots than its cold
// baseline, or when the default rule's warm-start pivot reduction falls
// below -lp-min-speedup. With -lp-golden every cell's layout is additionally
// compared byte-for-byte against a committed golden file — CI points it at
// the dense-era goldens so the sparse rewrite is provably layout-preserving.
// With -lp-cores sparse,dense and -lp-core-floor the run also fails when the
// sparse core's wall-clock time per pivot is not at least floor× cheaper
// than the dense tableau's. CI runs these as the pivot-regression and
// sparse-core guards.
//
// With -cachebench the harness replays a seeded request mix — repeated
// solves of a small circuit pool, near-duplicate perturbations of pool
// circuits, and occasional novel circuits — through the same tiered cache
// (memory LRU in front of a directory tier) the server uses, then reports
// the hit rate and the wall-clock saved by serving hits from cache. One
// JSONL summary line goes to -stats-out, so CI's perf-trend folds track
// cache effectiveness run over run.
//
// With -fuzz the harness generates -count seeded random circuits starting at
// -seed-base (internal/circuits/fuzz: LNA/mixer/PA topologies across aspect,
// strip-length and symmetry regimes) and runs the metamorphic audit battery
// (internal/audit) on each under the deterministic node budget -budget. One
// JSON line per seed goes to -fuzz-out; the records carry no wall-clock
// fields, so two runs with the same flags are byte-identical — CI diffs them
// as a determinism guard. A failing circuit is greedily minimized while its
// failing checks keep failing and the result written to -fuzz-fixtures as a
// committable .rfic fixture; the run then exits non-zero. CI runs a bounded
// smoke sweep on every PR and a long scheduled sweep nightly.
//
// With -chaos the harness runs the seeded chaos battery: a small circuit set
// is solved fault-free for baseline layouts, then re-solved -chaos-rounds
// times through an in-process server while internal/faultinject injects
// worker-pool and engine panics, admission failures, torn cache writes and
// transient cache read errors on the deterministic schedule derived from
// -fault-seed. The run fails unless the server survives every fault, each
// /healthz counter accounts exactly for the fired faults, and every
// full-quality layout is byte-identical to the fault-free baseline. The
// per-request log (-chaos-out) and the fired-fault schedule
// (-fault-schedule-out) carry no wall-clock fields, so replaying the same
// seed yields byte-identical files — CI runs the battery twice and diffs.
// Independently of -chaos, -faults arms the injection registry for any other
// mode (e.g. -table1 under cache faults).
//
// With -chaos -chaos-nodes 2 the battery grows into a two-node cluster
// (internal/cluster): two in-process servers on a consistent-hash ring, every
// request sent to node a, so remote-owned circuits exercise peer forwarding
// under injected dial/exchange/body-read failures plus torn cache writes on
// either node. The run additionally requires exact reconciliation of the
// forwarded/retried/degraded/audited counters against the fired faults, zero
// cross-replica audit mismatches, zero forwards from node b (loop safety),
// and byte-identical layouts to a fault-free single-node baseline — including
// degraded fallback solves and the clean final round after budgets exhaust.
//
// With -stats-out FILE every solved job appends one JSON line (circuit,
// runtime, branch-and-bound nodes, shard count, simplex counters) to FILE,
// building the perf-trajectory artifact CI archives run over run —
// scripts/perftrend folds those archives into a per-PR report.
//
// Usage:
//
//	rficbench -table1 -parallel 4
//	rficbench -table1 -stats-out solve-stats.jsonl
//	rficbench -figure7 -outdir out/
//	rficbench -figure11a
//	rficbench -figure11b
//	rficbench -shardguard -shard-size 6 -shard-tol 0.1
//	rficbench -lp-compare -lp-circuit large -lp-phase1 -lp-min-speedup 1.5
//	rficbench -lp-compare -lp-circuit large -lp-phase1 -lp-cores sparse,dense -lp-core-floor 1.3
//	rficbench -lp-compare -lp-circuit mini.rfic -lp-golden testdata/golden/mini.lpcompare.layout
//	rficbench -cachebench -cache-requests 48 -stats-out cache-stats.jsonl
//	rficbench -table1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	rficbench -fuzz -seed-base 1 -count 54 -budget 25 -fuzz-out fuzz.jsonl
//	rficbench -chaos -fault-seed 42 -chaos-out chaos.jsonl -fault-schedule-out schedule.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/circuits"
	"rficlayout/internal/circuits/fuzz"
	"rficlayout/internal/emsim"
	"rficlayout/internal/engine"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/geom"
	"rficlayout/internal/layout"
	"rficlayout/internal/lp"
	"rficlayout/internal/lp/benchharness"
	"rficlayout/internal/manual"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	figure7 := flag.Bool("figure7", false, "regenerate the Figure 7 phase snapshots (SVG)")
	figure11a := flag.Bool("figure11a", false, "regenerate Figure 11(a): 94 GHz LNA S-parameters")
	figure11b := flag.Bool("figure11b", false, "regenerate Figure 11(b): 60 GHz buffer S-parameters")
	shardGuard := flag.Bool("shardguard", false, "compare monolithic vs sharded phase 1 on the large synthetic circuit; fail on score regression")
	outDir := flag.String("outdir", ".", "directory for SVG output")
	stripTime := flag.Duration("strip-time", 2*time.Second, "time limit per per-strip ILP solve")
	parallel := flag.Int("parallel", 0, "concurrent circuit solves for -table1 (0 = GOMAXPROCS)")
	shardSize := flag.Int("shard-size", 0, "shard the phase-1 global adjustment into device clusters of at most this size (0 = monolithic; -shardguard requires > 0)")
	shardTol := flag.Float64("shard-tol", 0.1, "allowed fractional score regression of the sharded run in -shardguard")
	guardScale := flag.Int("guard-scale", 1, "size multiplier of the synthetic circuit used by -shardguard")
	statsOut := flag.String("stats-out", "", "append one JSON line of solve stats per job to this file")
	lpCompare := flag.Bool("lp-compare", false, "run the pivot-level LP benchmark: pivot rules x warm/cold x worker counts on one circuit")
	lpCircuit := flag.String("lp-circuit", "large", "circuit for -lp-compare: a Table 1 name, large/largeN, or a .rfic path")
	lpPhase1 := flag.Bool("lp-phase1", false, "restrict -lp-compare to the phase-1 adjustment (faster on big circuits)")
	lpMinSpeedup := flag.Float64("lp-min-speedup", 1.0, "minimum warm-start pivot reduction (cold/warm) for the default rule in -lp-compare")
	lpStripNodes := flag.Int("lp-strip-nodes", 25, "deterministic node budget per per-strip solve in -lp-compare (0 = unlimited); caps searches that would otherwise run into their wall-clock limit at a path-independent point")
	lpCores := flag.String("lp-cores", "sparse", "comma-separated simplex cores for -lp-compare (sparse, dense); include both for the dense-vs-sparse wall-clock comparison")
	lpRules := flag.String("lp-rules", "", "comma-separated pivot rules for -lp-compare (empty = all rules)")
	lpGolden := flag.String("lp-golden", "", "golden layout file for -lp-compare; every cell must match it byte-for-byte")
	lpCoreFloor := flag.Float64("lp-core-floor", 0, "minimum sparse-core pivot-time reduction vs dense in -lp-compare (0 = off; requires both cores in -lp-cores)")
	cacheBench := flag.Bool("cachebench", false, "run the cache hit-rate benchmark: a seeded repeated+perturbed request mix through the tiered result cache")
	cacheRequests := flag.Int("cache-requests", 48, "request count of the -cachebench mix")
	cacheSeed := flag.Int64("cache-seed", 1, "seed of the -cachebench circuit pool and request mix")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after a final GC) to this file on exit")
	fuzzMode := flag.Bool("fuzz", false, "run the seeded circuit fuzzer: generate circuits and run the metamorphic audit battery on each")
	seedBase := flag.Int64("seed-base", 1, "first seed of the -fuzz sweep; seeds run contiguously from here")
	fuzzCount := flag.Int("count", 54, "number of seeds in the -fuzz sweep (54 covers the whole topology matrix once)")
	fuzzBudget := flag.Int("budget", 25, "deterministic branch-and-bound node budget per per-strip solve in -fuzz (phase 1 scales with it); node budgets, not wall clock, so results are byte-reproducible")
	fuzzChecks := flag.String("fuzz-checks", "", "comma-separated subset of audit checks for -fuzz (empty = full battery)")
	fuzzOut := flag.String("fuzz-out", "", "write one deterministic JSON line per fuzzed seed to this file (default stdout)")
	fuzzFixtures := flag.String("fuzz-fixtures", "fuzz-failures", "directory for minimized failing-circuit fixtures from -fuzz (empty disables minimization)")
	chaosMode := flag.Bool("chaos", false, "run the seeded chaos battery: solve through a live server under injected faults, reconcile /healthz against the fault schedule")
	faults := flag.String("faults", "", "fault-injection plan, point=prob[/budget] pairs (see internal/faultinject); -chaos default: "+defaultFaultSpec)
	faultSeed := flag.Int64("fault-seed", 42, "seed of the deterministic fault schedule")
	chaosRounds := flag.Int("chaos-rounds", 8, "solve rounds over the chaos circuit set (enough to exhaust every fault budget and verify healing)")
	chaosNodes := flag.Int("chaos-nodes", 1, "with -chaos: 1 = single-node battery, 2 = two-node cluster battery (peer forwarding faults, degraded fallback, cross-replica audit)")
	chaosOut := flag.String("chaos-out", "", "write one deterministic JSON line per chaos request to this file (default stdout)")
	scheduleOut := flag.String("fault-schedule-out", "", "write the fired-fault schedule JSONL to this file after the chaos run")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -faults outside -chaos arms the process-global registry for whatever
	// mode runs; -chaos manages its own registry from the same spec.
	if *faults != "" && !*chaosMode {
		plan, err := faultinject.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -faults:", err)
			os.Exit(2)
		}
		faultinject.Enable(faultinject.New(plan, *faultSeed))
		defer faultinject.Disable()
	}

	opts := pilp.Options{StripTimeLimit: *stripTime, MaxRefineIterations: 2, ShardSize: *shardSize}

	prof, err := startProfiler(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}

	stats, err := newStatsWriter(*statsOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		prof.Stop()
		os.Exit(1)
	}
	defer stats.Close()
	// os.Exit skips defers, so every early exit below flushes the profiler
	// (and the stats file) explicitly.
	fail := func() {
		stats.Close()
		prof.Stop()
		os.Exit(1)
	}

	if *table1 {
		runTable1(ctx, opts, *parallel, stats)
	}
	if *figure7 {
		runFigure7(ctx, opts, *outDir)
	}
	if *figure11a {
		runFigure11(ctx, "lna94", opts)
	}
	if *figure11b {
		runFigure11(ctx, "buffer60", opts)
	}
	if *shardGuard {
		if !runShardGuard(ctx, opts, *shardSize, *shardTol, *guardScale, stats) {
			fail()
		}
	}
	if *lpCompare {
		cfg := lpCompareConfig{
			circuit: *lpCircuit, phase1Only: *lpPhase1,
			minSpeedup: *lpMinSpeedup, coreFloor: *lpCoreFloor,
			stripNodes: *lpStripNodes,
			cores:      *lpCores, rules: *lpRules, golden: *lpGolden,
		}
		if !runLPCompare(ctx, opts, cfg, stats) {
			fail()
		}
	}
	if *cacheBench {
		if !runCacheBench(ctx, opts, *cacheSeed, *cacheRequests, *lpStripNodes, stats) {
			fail()
		}
	}
	if *fuzzMode {
		if !runFuzz(ctx, *seedBase, *fuzzCount, *fuzzBudget, *fuzzChecks, *fuzzOut, *fuzzFixtures) {
			fail()
		}
	}
	if *chaosMode && *chaosNodes >= 2 {
		if !runChaosCluster(ctx, *faults, *faultSeed, *chaosRounds, *chaosOut, *scheduleOut) {
			fail()
		}
	} else if *chaosMode {
		if !runChaos(ctx, *faults, *faultSeed, *chaosRounds, *chaosOut, *scheduleOut) {
			fail()
		}
	}
	if !*table1 && !*figure7 && !*figure11a && !*figure11b && !*shardGuard && !*lpCompare && !*cacheBench && !*fuzzMode && !*chaosMode {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table1, -figure7, -figure11a, -figure11b, -shardguard, -lp-compare, -cachebench, -fuzz or -chaos")
		prof.Stop()
		os.Exit(2)
	}
	prof.Stop()
}

// profiler owns the optional runtime/pprof outputs: a CPU profile covering
// the whole run and a heap profile written at exit. Stop is idempotent and
// must run on every exit path — os.Exit skips defers.
type profiler struct {
	cpu     *os.File
	memPath string
	stopped bool
}

func startProfiler(cpuPath, memPath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

func (p *profiler) Stop() {
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	if p.cpu != nil {
		pprof.StopCPUProfile()
		_ = p.cpu.Close()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -memprofile:", err)
			return
		}
		runtime.GC() // materialize the final live set before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -memprofile:", err)
		}
		_ = f.Close()
	}
}

// loadLPCircuit resolves the -lp-circuit argument: a path to a .rfic netlist
// is parsed from disk, anything else goes through the named-spec registry
// (Table 1 names plus the large synthetics).
func loadLPCircuit(name string) (*netlist.Circuit, error) {
	if strings.HasSuffix(name, ".rfic") {
		return netlist.ParseFile(name)
	}
	spec, err := circuits.BySpecName(name)
	if err != nil {
		return nil, err
	}
	return circuits.Build(spec), nil
}

// lpCompareConfig carries the -lp-* flag values into runLPCompare.
type lpCompareConfig struct {
	circuit    string
	phase1Only bool
	minSpeedup float64 // warm-start pivot-reduction floor for the default rule
	coreFloor  float64 // sparse-vs-dense pivot-time reduction floor (0 = off)
	stripNodes int
	cores      string // comma-separated lp.Core names
	rules      string // comma-separated lp.PivotRule names (empty = all)
	golden     string // golden layout path (empty = matrix-internal check only)
}

// parseLPCores resolves the -lp-cores list.
func parseLPCores(spec string) ([]lp.Core, error) {
	var out []lp.Core
	for _, name := range strings.Split(spec, ",") {
		core, err := lp.ParseCore(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, core)
	}
	return out, nil
}

// parseLPRules resolves the -lp-rules list; empty means all rules.
func parseLPRules(spec string) ([]lp.PivotRule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []lp.PivotRule
	for _, name := range strings.Split(spec, ",") {
		rule, err := lp.ParsePivotRule(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, rule)
	}
	return out, nil
}

// runLPCompare runs the pivot-level comparison matrix and applies the
// guards: byte-identical layouts across every cell (and, with -lp-golden,
// against the committed golden), no warm cell spending more pivots than its
// cold baseline, the default rule's warm-start reduction meeting the
// -lp-min-speedup floor, and (with -lp-core-floor) the sparse core beating
// the dense tableau on time per pivot by at least the floor.
func runLPCompare(ctx context.Context, opts pilp.Options, cfg lpCompareConfig, stats *statsWriter) bool {
	c, err := loadLPCircuit(cfg.circuit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -lp-circuit:", err)
		return false
	}
	cores, err := parseLPCores(cfg.cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -lp-cores:", err)
		return false
	}
	rules, err := parseLPRules(cfg.rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -lp-rules:", err)
		return false
	}
	var golden string
	if cfg.golden != "" {
		b, err := os.ReadFile(cfg.golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -lp-golden:", err)
			return false
		}
		golden = string(b)
	}
	// The comparison needs a converging, deterministic branch-and-bound
	// workload, not a production-quality layout: restrict the chain-point
	// growth, skip the phase-3 refinement (whose junction escalations
	// dwarf everything else on big circuits), and cap each per-strip
	// search by node count, so every cell of the matrix finishes well
	// inside its wall-clock limits (a binding time limit cuts the search
	// at a wall-clock-dependent point, which would void the byte-equality
	// guard; a binding node budget cuts it at a path-independent one).
	opts.ChainPoints = 2
	opts.MaxChainPoints = 3
	opts.MaxRefineIterations = -1
	opts.StripNodeLimit = cfg.stripNodes
	fmt.Printf("lp-compare: %s\n", c.Stats())
	rep, err := benchharness.Compare(ctx, benchharness.Config{
		Circuit:    c,
		Options:    opts,
		Rules:      rules,
		Cores:      cores,
		Phase1Only: cfg.phase1Only,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		return false
	}
	fmt.Print(rep.Table())
	for _, run := range rep.Runs {
		variant := fmt.Sprintf("lp-%s-%s-%s-w%d", run.Core, run.Rule, map[bool]string{true: "cold", false: "warm"}[run.Cold], run.Workers)
		stats.record(solveRecord{
			Circuit: c.Name, Variant: variant,
			RuntimeNS: int64(run.Runtime), Nodes: run.Nodes,
			LPPivots: run.LP.Pivots, LPRefactorizations: run.LP.Refactorizations,
			LPPeakEta:  run.LP.PeakEta,
			LPWarmHits: run.LP.WarmHits, LPWarmMisses: run.LP.WarmMisses,
			LPColdSolves: run.LP.ColdSolves,
		})
	}
	ok := true
	if ms := rep.Mismatches(); len(ms) > 0 {
		for _, m := range ms {
			fmt.Fprintln(os.Stderr, "rficbench: layout mismatch:", m)
		}
		ok = false
	}
	if golden != "" {
		matched := true
		for _, run := range rep.Runs {
			if run.Layout != golden {
				fmt.Fprintf(os.Stderr, "rficbench: %s/%s/%s/w%d deviates from golden %s\n",
					run.Core, run.Rule, map[bool]string{true: "cold", false: "warm"}[run.Cold], run.Workers, cfg.golden)
				matched = false
			}
		}
		if matched {
			fmt.Printf("lp-compare: all %d cells match golden %s\n", len(rep.Runs), cfg.golden)
		}
		ok = ok && matched
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "rficbench: pivot regression:", r)
		}
		ok = false
	}
	if red := rep.PivotReduction(lp.PivotDantzig); red < cfg.minSpeedup {
		fmt.Fprintf(os.Stderr, "rficbench: warm-start pivot reduction %.2fx below the %.2fx floor\n", red, cfg.minSpeedup)
		ok = false
	}
	if cfg.coreFloor > 0 {
		if red := rep.PivotTimeReduction(); red < cfg.coreFloor {
			fmt.Fprintf(os.Stderr, "rficbench: sparse-core pivot-time reduction %.2fx below the %.2fx floor\n", red, cfg.coreFloor)
			ok = false
		}
	}
	if ok {
		fmt.Println("lp-compare: OK")
	}
	return ok
}

// runCacheBench replays a deterministic request mix through the tiered
// result cache and reports its hit rate. The mix models production traffic:
// most requests repeat a circuit from a small hot pool (cache hits after the
// first solve), some are near-duplicate perturbations of a pool circuit (a
// microstrip's target length nudged, so the content address — and therefore
// the cache line — changes), and a few are novel circuits. Solves use the
// same deterministic node budgets as -lp-compare so the benchmark is about
// cache behaviour, not solver wall-clock variance.
func runCacheBench(ctx context.Context, opts pilp.Options, seed int64, requests, stripNodes int, stats *statsWriter) bool {
	opts.ChainPoints = 2
	opts.MaxChainPoints = 3
	opts.MaxRefineIterations = -1
	opts.StripNodeLimit = stripNodes

	dir, err := os.MkdirTemp("", "rficbench-cache-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -cachebench:", err)
		return false
	}
	defer os.RemoveAll(dir)
	disk, err := cache.NewDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: -cachebench:", err)
		return false
	}
	// The LRU tier is sized below the pool so the benchmark exercises both
	// tiers: evicted pool circuits come back as disk hits and re-promote.
	const poolSize = 6
	tier := cache.NewTiered(cache.NewLRU(poolSize-2, cache.DefaultMaxBytes), disk)

	type request struct {
		c    *netlist.Circuit
		kind string
	}
	// The whole request sequence is derived up front from the seed, so the
	// mix is reproducible run over run.
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*netlist.Circuit, poolSize)
	for i := range pool {
		pool[i], _ = fuzz.Generate(seed + int64(i))
	}
	novel := 0
	mix := make([]request, requests)
	for i := range mix {
		switch roll := rng.Float64(); {
		case roll < 0.60: // repeat: straight re-request of a pool circuit
			mix[i] = request{pool[rng.Intn(poolSize)], "repeat"}
		case roll < 0.85: // perturbed: pool circuit with one strip length nudged
			k := rng.Intn(poolSize)
			c, _ := fuzz.Generate(seed + int64(k))
			ms := c.Microstrips[rng.Intn(len(c.Microstrips))]
			ms.TargetLength += geom.Micron * geom.Coord(1+rng.Intn(4))
			mix[i] = request{c, "perturbed"}
		default: // novel: a circuit outside the pool entirely
			novel++
			c, _ := fuzz.Generate(seed + 1000 + int64(novel))
			mix[i] = request{c, "novel"}
		}
	}

	fmt.Printf("cachebench: %d requests over a pool of %d circuits (seed %d)\n", requests, poolSize, seed)
	var solved, saved time.Duration
	start := time.Now()
	kinds := map[string]int{}
	for i, req := range mix {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "rficbench: -cachebench: cancelled")
			return false
		}
		kinds[req.kind]++
		key := cache.Key(req.c, opts)
		if e, ok := tier.Get(key); ok {
			saved += e.Runtime
			continue
		}
		res, err := pilp.GenerateCtx(ctx, req.c, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rficbench: -cachebench: request %d (%s): %v\n", i, req.kind, err)
			return false
		}
		solved += res.Runtime
		tier.Put(key, cache.Entry{
			Circuit: req.c.Name,
			Layout:  []byte(layout.Format(res.Layout)),
			Runtime: res.Runtime,
			Nodes:   res.Nodes,
			Shards:  len(res.Shards),
			LP:      res.LP,
		})
	}
	elapsed := time.Since(start)

	st := tier.Stats()
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	fmt.Printf("cachebench: mix repeat=%d perturbed=%d novel=%d\n", kinds["repeat"], kinds["perturbed"], kinds["novel"])
	fmt.Printf("cachebench: hits %d, misses %d (hit rate %.1f%%), evictions %d\n",
		st.Hits, st.Misses, 100*hitRate, st.Evictions)
	fmt.Printf("cachebench: solving spent %v, cache saved %v (run total %v)\n",
		solved.Round(time.Millisecond), saved.Round(time.Millisecond), elapsed.Round(time.Millisecond))
	stats.record(solveRecord{
		Circuit: "cachebench", Variant: fmt.Sprintf("cachebench-s%d-r%d", seed, requests),
		RuntimeNS: int64(elapsed), Nodes: 0,
		CacheHits: st.Hits, CacheMisses: st.Misses, CacheHitRate: hitRate,
		CacheSavedNS: int64(saved),
	})
	// The guard is intentionally loose — the mix is seeded, so the floor is a
	// sanity check that the cache is wired in at all, not a tuned threshold:
	// every straight repeat after its first solve must hit.
	if st.Hits == 0 && requests > poolSize {
		fmt.Fprintln(os.Stderr, "rficbench: -cachebench: zero cache hits on a repeating mix")
		return false
	}
	fmt.Println("cachebench: OK")
	return true
}

// statsWriter appends one JSON document per line to a file (JSONL), the
// accumulating perf-trajectory format the CI bench artifacts collect. A nil
// receiver (no -stats-out) drops every record.
type statsWriter struct {
	f   *os.File
	enc *json.Encoder
}

// solveRecord is one JSONL line of solve stats. The lp_* fields carry the
// simplex-level effort counters; they are zero (and omitted) for records
// written by modes that predate them.
type solveRecord struct {
	Circuit            string  `json:"circuit"`
	Variant            string  `json:"variant,omitempty"` // e.g. "small-area", "monolithic", "lp-dantzig-warm-w1"
	RuntimeNS          int64   `json:"runtime_ns"`
	Phase1NS           int64   `json:"phase1_ns,omitempty"`
	Nodes              int     `json:"nodes"`
	Shards             int     `json:"shards"`
	Score              float64 `json:"score"`
	LPPivots           int     `json:"lp_pivots,omitempty"`
	LPRefactorizations int     `json:"lp_refactorizations,omitempty"`
	LPPeakEta          int     `json:"lp_peak_eta,omitempty"`
	LPWarmHits         int     `json:"lp_warm_hits,omitempty"`
	LPWarmMisses       int     `json:"lp_warm_misses,omitempty"`
	LPColdSolves       int     `json:"lp_cold_solves,omitempty"`
	// The cache_* fields carry the -cachebench summary; zero (and omitted)
	// everywhere else.
	CacheHits    int64   `json:"cache_hits,omitempty"`
	CacheMisses  int64   `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	CacheSavedNS int64   `json:"cache_saved_ns,omitempty"`
}

func newStatsWriter(path string) (*statsWriter, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening -stats-out file: %w", err)
	}
	return &statsWriter{f: f, enc: json.NewEncoder(f)}, nil
}

func (w *statsWriter) record(rec solveRecord) {
	if w == nil {
		return
	}
	_ = w.enc.Encode(rec)
}

func (w *statsWriter) Close() {
	if w != nil && w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
}

// phase1Elapsed reads the wall-clock of phase 1 (construction + global
// adjustment) from the flow's snapshots.
func phase1Elapsed(res *pilp.Result) time.Duration {
	if len(res.Snapshots) == 0 {
		return 0
	}
	return res.Snapshots[0].Elapsed
}

// runShardGuard runs phase 1 (construct + global adjustment) of the
// synthetic large circuit with the monolithic and the sharded solver —
// pilp.AdjustPhase1 isolates exactly the subsystem the sharding refactor
// touches, so the guard stays fast enough for CI — prints the wall-clock
// comparison, and reports whether the sharded run held the quality bar:
// byte-identical layouts across 1 and 4 workers, and a phase-1 score within
// (1+tol)·monolithic plus one bend of absolute slack (so a perfect-score
// baseline does not make every nonzero score a failure).
func runShardGuard(ctx context.Context, opts pilp.Options, shardSize int, tol float64, scale int, stats *statsWriter) bool {
	if shardSize <= 0 {
		fmt.Fprintln(os.Stderr, "rficbench: -shardguard requires -shard-size > 0")
		return false
	}
	c := circuits.Build(circuits.LargeSpec(scale))
	fmt.Printf("shardguard: %s\n", c.Stats())

	mono := opts
	mono.ShardSize = 0
	monoRes, err := pilp.AdjustPhase1(ctx, c, mono)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench: monolithic phase 1:", err)
		return false
	}
	monoScore := pilp.Score(monoRes.Layout)
	stats.record(solveRecord{
		Circuit: c.Name, Variant: "phase1-monolithic",
		RuntimeNS: int64(monoRes.Runtime), Phase1NS: int64(monoRes.Runtime),
		Nodes: monoRes.Nodes, Score: monoScore,
	})

	sharded := opts
	sharded.ShardSize = shardSize
	var layouts [2]string
	var shardRes *pilp.Phase1Result
	for i, workers := range []int{1, 4} {
		run := sharded
		run.Workers = workers
		res, err := pilp.AdjustPhase1(ctx, c, run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rficbench: sharded phase 1 (workers=%d): %v\n", workers, err)
			return false
		}
		layouts[i] = layout.Format(res.Layout)
		shardRes = res
	}
	if layouts[0] != layouts[1] {
		fmt.Fprintln(os.Stderr, "rficbench: sharded layouts differ between 1 and 4 workers — determinism contract broken")
		return false
	}
	shardScore := pilp.Score(shardRes.Layout)
	stats.record(solveRecord{
		Circuit: c.Name, Variant: "phase1-sharded",
		RuntimeNS: int64(shardRes.Runtime), Phase1NS: int64(shardRes.Runtime),
		Nodes: shardRes.Nodes, Shards: len(shardRes.Shards), Score: shardScore,
	})

	speedup := 0.0
	if shardRes.Runtime > 0 {
		speedup = float64(monoRes.Runtime) / float64(shardRes.Runtime)
	}
	fmt.Printf("shardguard: phase 1 monolithic %v, sharded %v at 4 workers (%d shards, %.2fx)\n",
		monoRes.Runtime.Round(time.Millisecond), shardRes.Runtime.Round(time.Millisecond),
		len(shardRes.Shards), speedup)
	fmt.Printf("shardguard: score monolithic %.1f, sharded %.1f (tolerance %.0f%%)\n",
		monoScore, shardScore, tol*100)
	if len(shardRes.Shards) < 2 {
		fmt.Fprintln(os.Stderr, "rficbench: sharded run did not actually shard")
		return false
	}
	if allowed := monoScore*(1+tol) + 100; shardScore > allowed {
		fmt.Fprintf(os.Stderr, "rficbench: sharded score %.1f exceeds allowed %.1f\n", shardScore, allowed)
		return false
	}
	fmt.Println("shardguard: OK")
	return true
}

func buildCircuit(spec circuits.Spec, small bool) *netlist.Circuit {
	if small {
		return circuits.BuildSmallArea(spec)
	}
	return circuits.Build(spec)
}

func runTable1(ctx context.Context, opts pilp.Options, parallel int, stats *statsWriter) {
	type cell struct {
		spec  circuits.Spec
		small bool
	}
	var cells []cell
	var jobs []engine.Job
	for _, spec := range circuits.Table1() {
		for _, small := range []bool{false, true} {
			cells = append(cells, cell{spec, small})
			jobs = append(jobs, engine.Job{
				Name:    fmt.Sprintf("%s/small=%v", spec.Name, small),
				Circuit: buildCircuit(spec, small),
				Options: opts,
			})
		}
	}
	results := engine.Run(ctx, jobs, engine.Options{Parallel: parallel})

	var rows []report.Table1Row
	for i, cl := range cells {
		c := jobs[i].Circuit
		row := report.Table1Row{
			Circuit:     cl.spec.Name,
			Microstrips: len(c.Microstrips),
			Devices:     len(c.Devices),
			AreaWidth:   c.AreaWidth,
			AreaHeight:  c.AreaHeight,
		}
		if !cl.small {
			start := time.Now()
			ml, err := manual.Generate(c, manual.Options{})
			if err == nil {
				m := ml.Metrics()
				row.ManualAvailable = true
				row.ManualMaxBends = m.MaxBends
				row.ManualTotalBends = m.TotalBends
				row.ManualRuntime = time.Since(start)
			}
		}
		r := results[i]
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "rficbench: %s: %v\n", r.Name, r.Err)
			continue
		}
		variant := ""
		if cl.small {
			variant = "small-area"
		}
		stats.record(solveRecord{
			Circuit: cl.spec.Name, Variant: variant,
			RuntimeNS: int64(r.Result.Runtime), Phase1NS: int64(phase1Elapsed(r.Result)),
			Nodes: r.Nodes, Shards: len(r.Shards), Score: pilp.Score(r.Result.Layout),
		})
		m := r.Result.Layout.Metrics()
		row.PILPMaxBends = m.MaxBends
		row.PILPTotalBends = m.TotalBends
		row.PILPRuntime = r.Result.Runtime
		row.PILPUnmatched = report.UnmatchedStrips(r.Result.Layout, 10)
		rows = append(rows, row)
	}
	fmt.Print(report.FormatTable1(rows))
}

func runFigure7(ctx context.Context, opts pilp.Options, outDir string) {
	spec, _ := circuits.BySpecName("lna94")
	c := circuits.Build(spec)
	res, err := pilp.GenerateCtx(ctx, c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	for i, snap := range res.Snapshots {
		path := filepath.Join(outDir, fmt.Sprintf("figure7_%d_%s.svg", i+1, snap.Phase))
		if err := layout.SaveSVG(path, snap.Layout, layout.SVGOptions{ShowLabels: true, Title: snap.Phase}); err != nil {
			fmt.Fprintln(os.Stderr, "rficbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s (violations %d) → %s\n", snap.Phase, snap.Metrics, snap.Violations, path)
	}
}

func runFigure11(ctx context.Context, name string, opts pilp.Options) {
	spec, err := circuits.BySpecName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	c := circuits.Build(spec)
	ml, err := manual.Generate(c, manual.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	res, err := pilp.GenerateCtx(ctx, c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rficbench:", err)
		os.Exit(1)
	}
	freqs := emsim.Sweep(spec.Frequency, 51)
	manualRF := emsim.SimulateLayout(ml, freqs, spec.Frequency)
	pilpRF := emsim.SimulateLayout(res.Layout, freqs, spec.Frequency)
	fmt.Print(report.FormatSweep(fmt.Sprintf("%s manual layout", spec.Name), manualRF))
	fmt.Print(report.FormatSweep(fmt.Sprintf("%s P-ILP layout", spec.Name), pilpRF))
	fmt.Printf("# gain at %.0f GHz: manual %.3f dB, P-ILP %.3f dB\n",
		spec.Frequency, emsim.GainAt(manualRF, spec.Frequency), emsim.GainAt(pilpRF, spec.Frequency))
}
