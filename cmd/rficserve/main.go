// Command rficserve is the HTTP serving front-end of the layout generator:
// it accepts netlists over POST /v1/solve, runs them through a bounded
// admission queue feeding the batch engine, and returns layouts plus solve
// stats as JSON. A content-addressed result cache (in-memory LRU, optionally
// backed by a directory) serves repeated circuits without re-solving — the
// flow is deterministic, so cached layouts are byte-identical to fresh ones.
//
// The server is hardened along its failure domains: a panicking solve is
// isolated to its job (500 + the panics counter on /healthz, the process
// keeps serving), slow-client damage is bounded by the header/read/idle
// timeouts, SIGINT and SIGTERM both drain in-flight work before exit (with
// /readyz flipping to "draining" so load balancers stop routing here first),
// and the persistent cache tier checksums entries and quarantines corruption
// instead of serving it. Setting RFIC_FAULTS (point=prob[/budget] pairs, see
// internal/faultinject) with RFIC_FAULT_SEED arms deterministic fault
// injection inside the live process — staging chaos drills only; leave it
// unset in production.
//
// With -peers and -self, the process joins a multi-node serving tier
// (internal/cluster): a consistent-hash ring over the content address routes
// each solve to its owner node, non-owned requests forward there with bounded
// retries under a retry budget, an unreachable owner degrades to a local
// solve, and a deterministic sample of proxied results is re-solved locally
// and compared byte-for-byte (the cross-replica audit). Every node of the
// fleet must run the same -peers list and the same solve options, or content
// keys will not agree across nodes.
//
// Usage:
//
//	rficserve -addr :8080
//	rficserve -addr :8080 -workers 4 -queue 128 -cache-dir /var/cache/rfic
//	rficserve -addr :8080 -pprof-addr 127.0.0.1:6060
//	rficserve -addr :8080 -self a -peers 'a=http://10.0.0.1:8080,b=http://10.0.0.2:8080'
//	RFIC_FAULTS='cache.dir.read=0.1/4' RFIC_FAULT_SEED=42 rficserve -addr :8080
//
// Quick start:
//
//	curl -s -X POST --data-binary @testdata/twostage.rfic localhost:8080/v1/solve
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?timeout=30s'
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?async=1'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/cluster"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/pilp"
	"rficlayout/internal/server"
)

// armFaultsFromEnv enables the fault-injection registry when RFIC_FAULTS is
// set, so chaos drills run against the real binary with no special build.
func armFaultsFromEnv() error {
	spec := os.Getenv("RFIC_FAULTS")
	if spec == "" {
		return nil
	}
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		return fmt.Errorf("RFIC_FAULTS: %w", err)
	}
	var seed int64
	if s := os.Getenv("RFIC_FAULT_SEED"); s != "" {
		seed, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("RFIC_FAULT_SEED: %w", err)
		}
	}
	faultinject.Enable(faultinject.New(plan, seed))
	log.Printf("rficserve: FAULT INJECTION ARMED: plan %s seed %d", plan.String(), seed)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue rejects with 503")
	maxSolveTime := flag.Duration("max-solve-time", 2*time.Minute, "hard per-job wall-clock ceiling")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	shardSize := flag.Int("shard-size", 0, "shard the phase-1 global adjustment into device clusters of at most this size (0 = monolithic)")
	cacheEntries := flag.Int("cache-entries", cache.DefaultMaxEntries, "in-memory cache entry limit")
	cacheBytes := flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory cache byte limit")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent cache tier (empty = memory only)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: bound on slow-header clients")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: bound on reading a whole request (netlists are small; slower means a stuck client)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: reap idle keep-alive connections")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof diagnostics (empty = disabled); bind it to loopback — the profile endpoints are unauthenticated")
	peers := flag.String("peers", "", "static cluster membership as comma-separated [name=]url entries, this node included (empty = single node)")
	self := flag.String("self", "", "this node's peer name within -peers (required with -peers)")
	peerTimeout := flag.Duration("peer-timeout", 30*time.Second, "per-attempt timeout for forwarded solves; must cover the owner's solve time")
	peerRetries := flag.Int("peer-retries", 3, "max attempts per forwarded solve")
	peerRetryBudget := flag.Int("peer-retry-budget", 10, "retry budget tokens: fresh forwards earn 1/10 token each, every retry spends one")
	auditEvery := flag.Int("audit-every", 8, "re-solve 1 of every N proxied results locally and compare bytes (cross-replica audit; negative = disabled)")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	// The pprof endpoints live on their own listener and mux, never on the
	// serving address: profiling stays reachable when the admission queue is
	// saturated, and the public API surface does not grow debug handlers.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("rficserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("rficserve: pprof server: %v", err)
			}
		}()
	}

	if err := armFaultsFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "rficserve:", err)
		os.Exit(1)
	}

	var tier cache.Cache = cache.NewLRU(*cacheEntries, *cacheBytes)
	if *cacheDir != "" {
		disk, err := cache.NewDir(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficserve:", err)
			os.Exit(1)
		}
		tier = cache.NewTiered(tier, disk)
	}

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxSolveTime: *maxSolveTime,
		SolveOptions: pilp.Options{StripTimeLimit: *stripTime, ShardSize: *shardSize},
		Cache:        tier,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *peers != "" {
		peerList, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficserve:", err)
			os.Exit(1)
		}
		found := false
		for _, p := range peerList {
			if p.Name == *self {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "rficserve: -self %q does not name a -peers entry\n", *self)
			os.Exit(1)
		}
		cfg.Cluster = cluster.New(cluster.Config{
			Self:           *self,
			Peers:          peerList,
			AttemptTimeout: *peerTimeout,
			MaxAttempts:    *peerRetries,
			RetryBudget:    *peerRetryBudget,
			AuditEvery:     *auditEvery,
		})
		names := make([]string, len(peerList))
		for i, p := range peerList {
			names[i] = p.Name
		}
		log.Printf("rficserve: cluster member %q of %v", *self, names)
	}
	srv := server.New(cfg)
	defer srv.Close()

	// The solve timeouts live in the engine (MaxSolveTime), so the HTTP
	// timeouts only have to bound client misbehaviour, not solve time:
	// WriteTimeout stays unset because a sync solve legitimately holds the
	// response open for up to MaxSolveTime.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// SIGTERM is what init systems and orchestrators send first; treat it
	// exactly like Ctrl-C and drain before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Flip /readyz to draining first so load balancers (and peers) stop
		// routing new work here, then let in-flight requests finish.
		srv.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("rficserve: listening on %s (workers=%d queue=%d)", *addr, cfg.Workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "rficserve:", err)
		os.Exit(1)
	}
	log.Printf("rficserve: shut down cleanly")
}
