// Command rficserve is the HTTP serving front-end of the layout generator:
// it accepts netlists over POST /v1/solve, runs them through a bounded
// admission queue feeding the batch engine, and returns layouts plus solve
// stats as JSON. A content-addressed result cache (in-memory LRU, optionally
// backed by a directory) serves repeated circuits without re-solving — the
// flow is deterministic, so cached layouts are byte-identical to fresh ones.
//
// Usage:
//
//	rficserve -addr :8080
//	rficserve -addr :8080 -workers 4 -queue 128 -cache-dir /var/cache/rfic
//
// Quick start:
//
//	curl -s -X POST --data-binary @testdata/twostage.rfic localhost:8080/v1/solve
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?timeout=30s'
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?async=1'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/pilp"
	"rficlayout/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue rejects with 503")
	maxSolveTime := flag.Duration("max-solve-time", 2*time.Minute, "hard per-job wall-clock ceiling")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	shardSize := flag.Int("shard-size", 0, "shard the phase-1 global adjustment into device clusters of at most this size (0 = monolithic)")
	cacheEntries := flag.Int("cache-entries", cache.DefaultMaxEntries, "in-memory cache entry limit")
	cacheBytes := flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory cache byte limit")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent cache tier (empty = memory only)")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	var tier cache.Cache = cache.NewLRU(*cacheEntries, *cacheBytes)
	if *cacheDir != "" {
		disk, err := cache.NewDir(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficserve:", err)
			os.Exit(1)
		}
		tier = cache.NewTiered(tier, disk)
	}

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxSolveTime: *maxSolveTime,
		SolveOptions: pilp.Options{StripTimeLimit: *stripTime, ShardSize: *shardSize},
		Cache:        tier,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("rficserve: listening on %s (workers=%d queue=%d)", *addr, cfg.Workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "rficserve:", err)
		os.Exit(1)
	}
	log.Printf("rficserve: shut down cleanly")
}
