// Command rficserve is the HTTP serving front-end of the layout generator:
// it accepts netlists over POST /v1/solve, runs them through a bounded
// admission queue feeding the batch engine, and returns layouts plus solve
// stats as JSON. A content-addressed result cache (in-memory LRU, optionally
// backed by a directory) serves repeated circuits without re-solving — the
// flow is deterministic, so cached layouts are byte-identical to fresh ones.
//
// The server is hardened along its failure domains: a panicking solve is
// isolated to its job (500 + the panics counter on /healthz, the process
// keeps serving), slow-client damage is bounded by the header/read/idle
// timeouts, SIGINT and SIGTERM both drain in-flight work before exit, and
// the persistent cache tier checksums entries and quarantines corruption
// instead of serving it. Setting RFIC_FAULTS (point=prob[/budget] pairs, see
// internal/faultinject) with RFIC_FAULT_SEED arms deterministic fault
// injection inside the live process — staging chaos drills only; leave it
// unset in production.
//
// Usage:
//
//	rficserve -addr :8080
//	rficserve -addr :8080 -workers 4 -queue 128 -cache-dir /var/cache/rfic
//	rficserve -addr :8080 -pprof-addr 127.0.0.1:6060
//	RFIC_FAULTS='cache.dir.read=0.1/4' RFIC_FAULT_SEED=42 rficserve -addr :8080
//
// Quick start:
//
//	curl -s -X POST --data-binary @testdata/twostage.rfic localhost:8080/v1/solve
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?timeout=30s'
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?async=1'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rficlayout/internal/cache"
	"rficlayout/internal/faultinject"
	"rficlayout/internal/pilp"
	"rficlayout/internal/server"
)

// armFaultsFromEnv enables the fault-injection registry when RFIC_FAULTS is
// set, so chaos drills run against the real binary with no special build.
func armFaultsFromEnv() error {
	spec := os.Getenv("RFIC_FAULTS")
	if spec == "" {
		return nil
	}
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		return fmt.Errorf("RFIC_FAULTS: %w", err)
	}
	var seed int64
	if s := os.Getenv("RFIC_FAULT_SEED"); s != "" {
		seed, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("RFIC_FAULT_SEED: %w", err)
		}
	}
	faultinject.Enable(faultinject.New(plan, seed))
	log.Printf("rficserve: FAULT INJECTION ARMED: plan %s seed %d", plan.String(), seed)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue rejects with 503")
	maxSolveTime := flag.Duration("max-solve-time", 2*time.Minute, "hard per-job wall-clock ceiling")
	stripTime := flag.Duration("strip-time", 3*time.Second, "time limit per per-strip ILP solve")
	shardSize := flag.Int("shard-size", 0, "shard the phase-1 global adjustment into device clusters of at most this size (0 = monolithic)")
	cacheEntries := flag.Int("cache-entries", cache.DefaultMaxEntries, "in-memory cache entry limit")
	cacheBytes := flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory cache byte limit")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent cache tier (empty = memory only)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: bound on slow-header clients")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: bound on reading a whole request (netlists are small; slower means a stuck client)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: reap idle keep-alive connections")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof diagnostics (empty = disabled); bind it to loopback — the profile endpoints are unauthenticated")
	verbose := flag.Bool("v", false, "log solver progress")
	flag.Parse()

	// The pprof endpoints live on their own listener and mux, never on the
	// serving address: profiling stays reachable when the admission queue is
	// saturated, and the public API surface does not grow debug handlers.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("rficserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("rficserve: pprof server: %v", err)
			}
		}()
	}

	if err := armFaultsFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "rficserve:", err)
		os.Exit(1)
	}

	var tier cache.Cache = cache.NewLRU(*cacheEntries, *cacheBytes)
	if *cacheDir != "" {
		disk, err := cache.NewDir(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rficserve:", err)
			os.Exit(1)
		}
		tier = cache.NewTiered(tier, disk)
	}

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxSolveTime: *maxSolveTime,
		SolveOptions: pilp.Options{StripTimeLimit: *stripTime, ShardSize: *shardSize},
		Cache:        tier,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)
	defer srv.Close()

	// The solve timeouts live in the engine (MaxSolveTime), so the HTTP
	// timeouts only have to bound client misbehaviour, not solve time:
	// WriteTimeout stays unset because a sync solve legitimately holds the
	// response open for up to MaxSolveTime.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// SIGTERM is what init systems and orchestrators send first; treat it
	// exactly like Ctrl-C and drain before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("rficserve: listening on %s (workers=%d queue=%d)", *addr, cfg.Workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "rficserve:", err)
		os.Exit(1)
	}
	log.Printf("rficserve: shut down cleanly")
}
