// Example buffer60 lays out the 60 GHz buffer benchmark with both flows and
// compares their RF performance with the built-in S-parameter simulator,
// reproducing the Figure 11(b) comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/emsim"
	"rficlayout/internal/manual"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

func main() {
	spec, err := circuits.BySpecName("buffer60")
	if err != nil {
		log.Fatal(err)
	}
	c := circuits.Build(spec)

	ml, err := manual.Generate(c, manual.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pilp.Generate(c, pilp.Options{StripTimeLimit: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.LayoutSummary("manual", ml, 0))
	fmt.Println(report.LayoutSummary("p-ilp ", res.Layout, res.Runtime))

	freqs := emsim.Sweep(spec.Frequency, 31)
	manualRF := emsim.SimulateLayout(ml, freqs, spec.Frequency)
	pilpRF := emsim.SimulateLayout(res.Layout, freqs, spec.Frequency)
	fmt.Print(report.FormatSweep("60 GHz buffer, manual layout", manualRF))
	fmt.Print(report.FormatSweep("60 GHz buffer, P-ILP layout", pilpRF))
	fmt.Printf("gain at %.0f GHz: manual %.3f dB vs P-ILP %.3f dB\n",
		spec.Frequency,
		emsim.GainAt(manualRF, spec.Frequency),
		emsim.GainAt(pilpRF, spec.Frequency))
}
