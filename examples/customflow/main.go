// Example customflow shows the lower-level API: writing a circuit in the text
// format, parsing it, inspecting each phase of the progressive flow and
// running the design-rule checker on the result.
package main

import (
	"fmt"
	"log"
	"time"

	"rficlayout/internal/layout"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
)

const circuitFile = `
circuit custom
area 450 360
tech name=cmos90 t=5 width=10 delta=-4 pad=60

device M1 transistor 36 28
pin M1 in -18 0
pin M1 out 18 0
device C1 capacitor 45 35
pin C1 p 0 -17.5
pad P1
pad P2

strip TL1 P1.p M1.in length=170
strip TL2 M1.out P2.p length=210
strip TL3 M1.out C1.p length=95
`

func main() {
	c, err := netlist.ParseString(circuitFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", c.Stats())

	res, err := pilp.Generate(c, pilp.Options{
		StripTimeLimit:      3 * time.Second,
		MaxRefineIterations: 2,
		Logf:                func(f string, a ...interface{}) { fmt.Printf("  "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, snap := range res.Snapshots {
		fmt.Printf("%-28s %s (violations %d, %.1fs)\n",
			snap.Phase, snap.Metrics, snap.Violations, snap.Elapsed.Seconds())
	}
	violations := res.Layout.Check(layout.CheckOptions{PinTolerance: 2})
	fmt.Printf("final DRC: %d violations\n", len(violations))
	for _, v := range violations {
		fmt.Println("  ", v)
	}
	fmt.Println(layout.Format(res.Layout))
}
