// Quickstart: build a tiny RFIC circuit programmatically, run the progressive
// ILP layout flow and print the resulting quality metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"rficlayout/internal/geom"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/tech"
)

func main() {
	// A one-transistor amplifier in a 400×300 µm area.
	c := netlist.NewCircuit("quickstart", tech.Default90nm(), geom.FromMicrons(400), geom.FromMicrons(300))
	m1 := netlist.NewDevice("M1", netlist.Transistor, geom.FromMicrons(40), geom.FromMicrons(30))
	m1.AddPin("in", geom.PtMicrons(-20, 0), 0)
	m1.AddPin("out", geom.PtMicrons(20, 0), 0)
	c.AddDevice(m1)
	c.AddDevice(netlist.NewPad("PIN", c.Tech.PadSize))
	c.AddDevice(netlist.NewPad("POUT", c.Tech.PadSize))
	// Exact microstrip lengths come from the circuit design.
	c.Connect("TLIN", "PIN", "p", "M1", "in", geom.FromMicrons(180))
	c.Connect("TLOUT", "M1", "out", "POUT", "p", geom.FromMicrons(200))

	res, err := pilp.Generate(c, pilp.Options{StripTimeLimit: 3 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout:", res.Layout.Metrics())
	for _, rs := range res.Layout.RoutedStrips() {
		fmt.Printf("  %s: %d bends, equivalent length %.2f µm (target %.2f µm)\n",
			rs.Strip.Name, rs.Bends(),
			geom.Microns(rs.EquivalentLength(c.Tech.BendCompensation)),
			geom.Microns(rs.Strip.TargetLength))
	}
	fmt.Println("violations:", len(res.Violations()))
	fmt.Println("runtime:", res.Runtime.Round(time.Millisecond))
}
