// Example lna94 reproduces the paper's flagship experiment: the 94 GHz LNA of
// Table 1, laid out by the emulated manual flow and by the P-ILP flow at both
// published area settings, with an SVG written for each result.
package main

import (
	"fmt"
	"log"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/layout"
	"rficlayout/internal/manual"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

func main() {
	spec, err := circuits.BySpecName("lna94")
	if err != nil {
		log.Fatal(err)
	}
	for _, small := range []bool{false, true} {
		c := circuits.Build(spec)
		label := "area 890×615"
		if small {
			c = circuits.BuildSmallArea(spec)
			label = "area 845×580 (stress)"
		}
		fmt.Println("=== 94 GHz LNA,", label, "===")

		if !small {
			start := time.Now()
			ml, err := manual.Generate(c, manual.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(report.LayoutSummary("manual ", ml, time.Since(start)))
		}
		start := time.Now()
		res, err := pilp.Generate(c, pilp.Options{StripTimeLimit: 2 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.LayoutSummary("p-ilp  ", res.Layout, time.Since(start)))
		name := fmt.Sprintf("lna94_pilp_small=%v.svg", small)
		if err := layout.SaveSVG(name, res.Layout, layout.SVGOptions{ShowLabels: true, Title: "94 GHz LNA (P-ILP)"}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
