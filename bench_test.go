// Package main holds the benchmark harness that regenerates the paper's
// evaluation: one benchmark per Table 1 row (bend counts and runtime for the
// manual baseline and the P-ILP flow at both area settings), benchmarks for
// the two Figure 11 RF-performance comparisons, a Figure 7 phase-snapshot
// benchmark and ablation benchmarks for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Reported custom metrics: bends_total, bends_max, drc_violations,
// unmatched_strips and gain_dB where applicable. Benchmarks are ordered from
// cheap to expensive; the Figure 7/11 benchmarks reuse the P-ILP layout
// computed by the corresponding Table 1 benchmark (the flow is deterministic),
// so the expensive flow runs once per circuit/area.
package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rficlayout/internal/circuits"
	"rficlayout/internal/emsim"
	"rficlayout/internal/engine"
	"rficlayout/internal/layout"
	"rficlayout/internal/manual"
	"rficlayout/internal/netlist"
	"rficlayout/internal/pilp"
	"rficlayout/internal/report"
)

// benchPILPOptions keeps the per-strip solves short so the whole table can be
// regenerated in a single benchmark run; raise the limits (cmd/rficbench
// -strip-time) for higher-quality layouts.
func benchPILPOptions() pilp.Options {
	return pilp.Options{
		ChainPoints:         4,
		MaxChainPoints:      6,
		StripTimeLimit:      700 * time.Millisecond,
		PhaseTimeLimit:      8 * time.Second,
		MaxRefineIterations: 1,
	}
}

var (
	pilpCacheMu sync.Mutex
	pilpCache   = map[string]*pilp.Result{}
)

// generatePILP runs the progressive flow, memoizing the result per
// circuit/area so that the Figure 7/11 benchmarks do not repeat the Table 1
// work.
func generatePILP(b *testing.B, name string, smallArea bool) *pilp.Result {
	b.Helper()
	key := fmt.Sprintf("%s/small=%v", name, smallArea)
	pilpCacheMu.Lock()
	cached := pilpCache[key]
	pilpCacheMu.Unlock()
	if cached != nil {
		return cached
	}
	res, err := pilp.Generate(table1Circuit(b, name, smallArea), benchPILPOptions())
	if err != nil {
		b.Fatal(err)
	}
	pilpCacheMu.Lock()
	pilpCache[key] = res
	pilpCacheMu.Unlock()
	return res
}

func reportLayoutMetrics(b *testing.B, prefix string, l *layout.Layout) {
	m := l.Metrics()
	b.ReportMetric(float64(m.TotalBends), prefix+"_bends_total")
	b.ReportMetric(float64(m.MaxBends), prefix+"_bends_max")
	b.ReportMetric(float64(len(l.Check(layout.CheckOptions{PinTolerance: 2}))), prefix+"_drc_violations")
	b.ReportMetric(float64(report.UnmatchedStrips(l, 10)), prefix+"_unmatched_strips")
}

func table1Circuit(b *testing.B, name string, smallArea bool) *netlist.Circuit {
	b.Helper()
	spec, err := circuits.BySpecName(name)
	if err != nil {
		b.Fatal(err)
	}
	if smallArea {
		return circuits.BuildSmallArea(spec)
	}
	return circuits.Build(spec)
}

// BenchmarkConstructOnly measures the constructive warm start alone, the
// baseline every ILP phase builds on.
func BenchmarkConstructOnly(b *testing.B) {
	circuit := table1Circuit(b, "lna94", false)
	for i := 0; i < b.N; i++ {
		l, err := pilp.Construct(circuit)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLayoutMetrics(b, "construct", l)
		}
	}
}

// BenchmarkManualBaseline measures the emulated manual flow alone (the
// "Manual" column of Table 1 for the 94 GHz LNA).
func BenchmarkManualBaseline(b *testing.B) {
	circuit := table1Circuit(b, "lna94", false)
	for i := 0; i < b.N; i++ {
		l, err := manual.Generate(circuit, manual.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLayoutMetrics(b, "manual", l)
		}
	}
}

// benchTable1 runs one Table 1 cell: the manual baseline and the P-ILP flow
// on the given circuit/area.
func benchTable1(b *testing.B, name string, smallArea bool) {
	circuit := table1Circuit(b, name, smallArea)
	for i := 0; i < b.N; i++ {
		manualLayout, err := manual.Generate(circuit, manual.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res := generatePILP(b, name, smallArea)
		if i == b.N-1 {
			reportLayoutMetrics(b, "manual", manualLayout)
			reportLayoutMetrics(b, "pilp", res.Layout)
			b.ReportMetric(res.Runtime.Seconds(), "pilp_runtime_s")
		}
	}
}

// Table 1, row "60 GHz Buffer", area 595×850 and 505×720.
func BenchmarkTable1Buffer60AreaA(b *testing.B) { benchTable1(b, "buffer60", false) }
func BenchmarkTable1Buffer60AreaB(b *testing.B) { benchTable1(b, "buffer60", true) }

// Table 1, row "60 GHz LNA", area 600×855 and 570×810.
func BenchmarkTable1LNA60AreaA(b *testing.B) { benchTable1(b, "lna60", false) }
func BenchmarkTable1LNA60AreaB(b *testing.B) { benchTable1(b, "lna60", true) }

// Table 1, row "94 GHz LNA", area 890×615 and 845×580.
func BenchmarkTable1LNA94AreaA(b *testing.B) { benchTable1(b, "lna94", false) }
func BenchmarkTable1LNA94AreaB(b *testing.B) { benchTable1(b, "lna94", true) }

// BenchmarkFigure7Phases regenerates the phase snapshots of Figure 7 on the
// 94 GHz LNA and reports the bend count after each phase.
func BenchmarkFigure7Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := generatePILP(b, "lna94", false)
		if i == b.N-1 {
			for p, snap := range res.Snapshots {
				b.ReportMetric(float64(snap.Metrics.TotalBends), fmt.Sprintf("phase%d_bends", p+1))
				b.ReportMetric(float64(snap.Violations), fmt.Sprintf("phase%d_violations", p+1))
			}
		}
	}
}

// benchFigure11 compares the RF performance of the manual and P-ILP layouts
// of one circuit, reporting the S21 gain at the operating frequency
// (Figure 11a: 94 GHz LNA, Figure 11b: 60 GHz buffer).
func benchFigure11(b *testing.B, name string) {
	spec, err := circuits.BySpecName(name)
	if err != nil {
		b.Fatal(err)
	}
	circuit := circuits.Build(spec)
	for i := 0; i < b.N; i++ {
		manualLayout, err := manual.Generate(circuit, manual.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res := generatePILP(b, name, false)
		freqs := emsim.Sweep(spec.Frequency, 41)
		manualRF := emsim.SimulateLayout(manualLayout, freqs, spec.Frequency)
		pilpRF := emsim.SimulateLayout(res.Layout, freqs, spec.Frequency)
		if i == b.N-1 {
			b.ReportMetric(emsim.GainAt(manualRF, spec.Frequency), "manual_gain_dB")
			b.ReportMetric(emsim.GainAt(pilpRF, spec.Frequency), "pilp_gain_dB")
		}
	}
}

func BenchmarkFigure11LNA(b *testing.B)    { benchFigure11(b, "lna94") }
func BenchmarkFigure11Buffer(b *testing.B) { benchFigure11(b, "buffer60") }

// BenchmarkAblationNoRefinement measures the effect of dropping phase 3
// (chain-point deletion/insertion and rotation), one of the design choices
// DESIGN.md calls out: it compares the phase-2 snapshot with the final layout
// of the cached buffer60 run.
func BenchmarkAblationNoRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := generatePILP(b, "buffer60", false)
		if i == b.N-1 {
			phase2 := res.Snapshots[1]
			b.ReportMetric(float64(phase2.Metrics.TotalBends), "phase2_bends")
			b.ReportMetric(float64(phase2.Violations), "phase2_violations")
			b.ReportMetric(float64(res.Layout.Metrics().TotalBends), "final_bends")
			b.ReportMetric(float64(len(res.Layout.Check(layout.CheckOptions{PinTolerance: 2}))), "final_violations")
		}
	}
}

// BenchmarkProgressiveFlowWorkers measures the wall-clock effect of the
// solver worker pool on one progressive flow: workers=1 is the sequential
// baseline, workers=GOMAXPROCS the parallel flow. Note the bench options
// use short per-strip time limits that can bind, so the two layouts may
// differ slightly in quality; compare the reported layout metrics alongside
// the times (with non-binding limits the layouts would be identical by the
// determinism contract).
func BenchmarkProgressiveFlowWorkers(b *testing.B) {
	circuit := table1Circuit(b, "lna94", false)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchPILPOptions()
				opts.Workers = workers
				res, err := pilp.Generate(circuit, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportLayoutMetrics(b, "pilp", res.Layout)
				}
			}
		})
	}
}

// BenchmarkEngineBatch measures the batch engine on all six Table 1 cells:
// jobs=1 runs them back to back, jobs=GOMAXPROCS overlaps whole circuits.
func BenchmarkEngineBatch(b *testing.B) {
	var jobs []engine.Job
	for _, spec := range circuits.Table1() {
		for _, small := range []bool{false, true} {
			c := circuits.Build(spec)
			if small {
				c = circuits.BuildSmallArea(spec)
			}
			jobs = append(jobs, engine.Job{
				Name:    fmt.Sprintf("%s/small=%v", spec.Name, small),
				Circuit: c,
				Options: benchPILPOptions(),
			})
		}
	}
	for _, parallel := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := engine.Run(context.Background(), jobs, engine.Options{Parallel: parallel})
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Name, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationChainPoints sweeps the fixed chain-point count of the
// per-strip models, the main model-size lever of Section 5.1.
func BenchmarkAblationChainPoints(b *testing.B) {
	circuit := table1Circuit(b, "buffer60", false)
	for _, n := range []int{3, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchPILPOptions()
				opts.ChainPoints = n
				opts.MaxChainPoints = n
				res, err := pilp.Generate(circuit, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportLayoutMetrics(b, "pilp", res.Layout)
				}
			}
		})
	}
}
