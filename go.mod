module rficlayout

go 1.21
