// Command rficlayout-bench is a thin wrapper so the repository root builds as
// a package; the actual experiment harness lives in bench_test.go (run with
// "go test -bench=.") and in cmd/rficbench. Running this binary just points
// at those entry points.
//
// # Architecture
//
// The solver stack is layered, every layer context-aware and deterministic:
//
//	cmd/rficserve                HTTP serving front-end: POST /v1/solve,
//	                             GET /v1/jobs/{id}, GET /healthz, GET /readyz;
//	                             -peers/-self joins the multi-node tier
//	cmd/rficgen, cmd/rficbench   CLI front-ends (-parallel, -cache, Ctrl-C
//	                             cancels)
//	internal/cluster             multi-node serving tier: consistent-hash ring
//	                             over the content address routes each solve to
//	                             its owner node; retrying peer client with
//	                             per-attempt timeouts, deterministic jittered
//	                             backoff and a retry budget; degraded local
//	                             fallback when the owner is unreachable; a
//	                             deterministic sample of proxied results is
//	                             re-solved locally and byte-compared (the
//	                             cross-replica audit)
//	internal/server              admission queue + worker pool over the
//	                             engine; per-request deadlines, JSON results;
//	                             forwards remote-owned requests via the
//	                             cluster layer (X-Rfic-Forwarded-From marks a
//	                             peer hop and pins the solve local — one hop,
//	                             never a forwarding loop)
//	internal/cache               content-addressed result cache (canonical
//	                             circuit hash → layout); LRU memory tier +
//	                             persistent directory tier
//	internal/engine              batch API: many circuits on a worker pool,
//	                             per-job isolation and per-job stats
//	                             (engine.Run)
//	internal/pilp                progressive ILP flow of the paper (Section 5):
//	                             construct → global adjust → per-strip exact
//	                             lengths → refinement; independent per-strip
//	                             and per-rotation subproblems run concurrently;
//	                             with ShardSize set, the phase-1 adjustment
//	                             solves one sub-MILP per device cluster under
//	                             a bounded boundary-coordination loop
//	internal/partition           connectivity clustering for the sharded
//	                             phase 1: capped union-find over the strip
//	                             graph plus deterministic first-fit packing
//	internal/ilpmodel            builds the layout MILP (device placement,
//	                             chain-point routing, non-overlap, Eq. 1–28)
//	                             and cluster-local sub-MILPs with penalized
//	                             boundary slack (BuildSub)
//	internal/milp                branch-and-bound with batched parallel LP
//	                             evaluation, dive heuristic; child nodes
//	                             warm-start the dual simplex from the parent
//	                             basis and fall back to a cold solve when the
//	                             basis is incompatible
//	internal/lp                  bounded-variable primal + dual simplex. One
//	                             shared driver (pricing, ratio tests, phases,
//	                             lexicographic canonicalization) runs over a
//	                             pluggable basis-inverse core: the default
//	                             sparse revised core stores A in compressed
//	                             sparse columns and maintains B⁻¹ as an LU-style
//	                             eta file — refactorized every RefactorEvery
//	                             pivots or on drift, product-form update etas
//	                             in between, FTRAN/BTRAN solves for columns,
//	                             rows and pricing — while the dense tableau
//	                             core remains as the baseline. Pivot rules:
//	                             Dantzig, Bland, Devex, projected steepest
//	                             edge; bases are exportable for warm starts
//	                             and every core × rule × warm/cold combination
//	                             returns the byte-identical canonical vertex
//	internal/lp/benchharness     pivot-level benchmark matrix behind
//	                             rficbench -lp-compare: core × pivot rule ×
//	                             warm/cold × workers, byte-equality,
//	                             pivot-regression and pivot-time checks
//	internal/faultinject         seeded deterministic fault-injection registry
//	                             (named points, per-point probability/budget);
//	                             a fixed seed replays the identical fault
//	                             schedule, a disabled registry costs one
//	                             atomic load per injection point
//
// Cancellation flows top-down: every solve entry point has a Ctx variant
// (engine.Run, pilp.GenerateCtx, ilpmodel.SolveAndExtractCtx, milp.SolveCtx,
// lp.SolveCtx), and the duration knobs (pilp StripTimeLimit/PhaseTimeLimit,
// milp TimeLimit) are sugar that derives a context deadline, so an enclosing
// context can always cancel earlier. The server front-end maps per-request
// timeouts onto the same mechanism.
//
// # Determinism contract
//
// Parallelism never changes results, only wall-clock time. The milp search
// dequeues nodes in fixed-size batches and makes all decisions sequentially;
// workers only evaluate the LP relaxations of a batch. The pilp flow solves
// per-strip subproblems against a frozen snapshot of the layout and merges
// them in a fixed order; the sharded phase-1 adjustment follows the same
// discipline (cluster sub-solves against a frozen snapshot, merges in
// cluster order, drift detection as a pure function of the merged layout).
// Consequently the same circuit yields byte-identical layouts for every
// worker count — the property the engine relies on to scale batches across
// cores. Model construction is deterministic too: constraint emission walks
// circuit declaration order, never Go map order, because on a degenerate
// optimum the simplex pivot sequence decides which vertex — and therefore
// which layout — comes back. On top of that, internal/lp canonicalizes
// every optimal solution to the lexicographically smallest vertex of its
// optimal face, so the reported X is independent of the pivot path
// entirely: warm-started, cold-started, and differently-ruled solves all
// return the byte-identical layout. The one caveat: a binding time limit
// (or cancellation) interrupts the search at a timing-dependent point, so
// only runs whose limits do not bind are comparable —
// pilp.Options.StripNodeLimit offers a deterministic node budget as the
// path-independent alternative for workloads whose strip solves would
// otherwise hit the clock.
//
// Determinism is also what makes results exactly cacheable: internal/cache
// addresses a solve by the SHA-256 of the canonical circuit text
// (netlist.Canonical) plus the output-relevant solve options
// (pilp.Options.Fingerprint), so a cache hit is byte-identical to
// re-solving. rficgen -cache DIR and rficserve both sit behind this cache.
//
// # Failure domains
//
// Failures are contained at the job boundary and degrade quality before
// availability:
//
//   - Panic isolation. A panic anywhere inside a solve — the pilp flow, the
//     shared worker pool, a solver bug — is recovered by engine.Run (and by
//     a second firewall in server.runJob) into a per-job *engine.PanicError
//     carrying the panic value and goroutine stack. The job fails with a
//     500; the process, its queue and its neighbours keep running. The
//     `panics` counter on /healthz counts every recovered panic.
//   - Anytime degradation. When a deadline or cancellation fires mid-flow,
//     a request that opted in with accept_partial=1 receives the best
//     layout reached so far, marked `partial` with the phase reached and
//     bound-gap stats (pilp Result.PartialPhase/MaxGap/InterruptedSolves),
//     instead of an error. Partial results are never cached, and
//     AcceptPartial is excluded from the cache fingerprint: a run that
//     completes is byte-identical with the flag on or off.
//   - Self-healing cache. The persistent tier records a SHA-256 per entry
//     at write and verifies it at read; a mismatch (bit rot, torn write)
//     quarantines the file aside as <key>.json.corrupt, counts it in the
//     `corrupt` stat on /healthz, and misses so the flow re-solves — the
//     next Put heals the entry. Transient read errors get a bounded
//     deterministic retry.
//   - Bounded intake. SIGINT/SIGTERM drain in-flight solves before exit
//     (GET /readyz flips to "draining" first so load balancers and peers
//     stop routing here), rficserve bounds slow clients with
//     header/read/idle timeouts, and every 503 carries a Retry-After hint.
//   - Peer degradation. In the multi-node tier an unreachable owner never
//     takes requests down with it: after bounded retries under a retry
//     budget (a token bucket that keeps retry traffic a fraction of fresh
//     traffic, so a dead peer cannot trigger a retry storm), the node
//     solves locally — determinism makes the fallback result byte-identical
//     to the owner's — and counts it in `degraded` on /healthz. Degraded
//     and remote-owned results stay out of the local cache (cache
//     affinity), and the cross-replica audit re-solves a deterministic
//     sample of proxied results locally, alarming on `audit_mismatch` if
//     any byte ever differs across replicas.
//
// All of it is testable because faults are deterministic too:
// internal/faultinject threads named injection points through the cache
// tier (read/write/rename errors, torn writes), the conc pool (panics,
// delays), engine job execution and the server admission queue. A seeded
// plan fires an identical fault schedule every run, so the chaos battery
// (rficbench -chaos, and TestChaosScheduleSurvival in internal/server) can
// assert exact accounting: every /healthz counter reconciles against the
// fired-fault counts, and once budgets exhaust the layouts are
// byte-identical to a fault-free run. The same registry covers the cluster
// layer (cluster.dial/cluster.forward/cluster.body), so the two-node battery
// (rficbench -chaos -chaos-nodes 2) proves the forwarding, degraded-fallback
// and audit paths under the same exact-accounting standard. rficserve arms
// the registry from RFIC_FAULTS/RFIC_FAULT_SEED for staging drills.
//
// # Serving quick start
//
// Start the HTTP front-end and solve the checked-in example circuit:
//
//	go run ./cmd/rficserve -addr :8080 &
//	curl -s -X POST --data-binary @testdata/twostage.rfic localhost:8080/v1/solve
//
// The response carries the layout text, solve stats (wall-clock, explored
// branch-and-bound nodes, wirelength, bends, DRC violations) and whether the
// result came from the cache. Useful variants:
//
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?timeout=30s'
//	curl -s -X POST --data-binary @c.rfic 'localhost:8080/v1/solve?async=1'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/healthz
//
// Admission control is explicit: a full queue answers 503 immediately, a
// per-request timeout that expires answers 504, and repeating a request
// (even with reordered netlist declarations) answers from the cache without
// touching the solver. Concurrent identical requests are coalesced by a
// singleflight layer — one solve runs, every waiter shares its result —
// and GET /healthz reports the coalescing counter plus the cache tier's
// hit/miss/eviction/footprint stats.
package main

import "fmt"

func main() {
	fmt.Println("rficlayout: run 'go test -bench=. -benchmem' for the experiment harness,")
	fmt.Println("or use the tools under cmd/ (rficgen, rficbench).")
}
