// Command rficlayout-bench is a thin wrapper so the repository root builds as
// a package; the actual experiment harness lives in bench_test.go (run with
// "go test -bench=.") and in cmd/rficbench. Running this binary just points
// at those entry points.
//
// # Architecture
//
// The solver stack is layered, every layer context-aware and deterministic:
//
//	cmd/rficgen, cmd/rficbench   CLI front-ends (-parallel, Ctrl-C cancels)
//	internal/engine              batch API: many circuits on a worker pool,
//	                             per-job isolation (engine.Run)
//	internal/pilp                progressive ILP flow of the paper (Section 5):
//	                             construct → global adjust → per-strip exact
//	                             lengths → refinement; independent per-strip
//	                             and per-rotation subproblems run concurrently
//	internal/ilpmodel            builds the layout MILP (device placement,
//	                             chain-point routing, non-overlap, Eq. 1–28)
//	internal/milp                branch-and-bound with batched parallel LP
//	                             evaluation, warm starts, dive heuristic
//	internal/lp                  bounded-variable primal simplex
//
// Cancellation flows top-down: every solve entry point has a Ctx variant
// (engine.Run, pilp.GenerateCtx, ilpmodel.SolveAndExtractCtx, milp.SolveCtx,
// lp.SolveCtx), and the duration knobs (pilp StripTimeLimit/PhaseTimeLimit,
// milp TimeLimit) are sugar that derives a context deadline, so an enclosing
// context can always cancel earlier.
//
// # Determinism contract
//
// Parallelism never changes results, only wall-clock time. The milp search
// dequeues nodes in fixed-size batches and makes all decisions sequentially;
// workers only evaluate the LP relaxations of a batch. The pilp flow solves
// per-strip subproblems against a frozen snapshot of the layout and merges
// them in a fixed order. Consequently the same circuit yields byte-identical
// layouts for every worker count — the property the engine relies on to
// scale batches across cores. The one caveat: a binding time limit (or
// cancellation) interrupts the search at a timing-dependent point, so only
// runs whose limits do not bind are comparable.
package main

import "fmt"

func main() {
	fmt.Println("rficlayout: run 'go test -bench=. -benchmem' for the experiment harness,")
	fmt.Println("or use the tools under cmd/ (rficgen, rficbench).")
}
