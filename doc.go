// Command rficlayout-bench is a thin wrapper so the repository root builds as
// a package; the actual experiment harness lives in bench_test.go (run with
// "go test -bench=.") and in cmd/rficbench. Running this binary just points
// at those entry points.
package main

import "fmt"

func main() {
	fmt.Println("rficlayout: run 'go test -bench=. -benchmem' for the experiment harness,")
	fmt.Println("or use the tools under cmd/ (rficgen, rficbench).")
}
