package main

import (
	"strings"
	"testing"
)

const oldArchive = `{"circuit":"lna94","runtime_ns":1000000000,"nodes":100,"lp_pivots":4000}
{"circuit":"large","variant":"lp-dantzig-warm-w1","runtime_ns":2000000000,"nodes":50,"lp_pivots":1000}
`

const newArchive = `{"circuit":"lna94","runtime_ns":900000000,"nodes":100,"lp_pivots":3000}
{"circuit":"large","variant":"lp-dantzig-warm-w1","runtime_ns":1500000000,"nodes":50,"lp_pivots":800}
{"circuit":"large","variant":"lp-dantzig-cold-w1","runtime_ns":2500000000,"nodes":50,"lp_pivots":2400}
`

func TestParseAccumulates(t *testing.T) {
	pts, err := parse(strings.NewReader(oldArchive + oldArchive))
	if err != nil {
		t.Fatal(err)
	}
	p := pts["lna94"]
	if p.count != 2 || p.nodes != 200 || p.pivots != 8000 {
		t.Errorf("accumulated point = %+v, want count 2, nodes 200, pivots 8000", p)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(strings.NewReader("{\"circuit\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("expected a parse error")
	}
}

func TestReportDeltas(t *testing.T) {
	old, err := parse(strings.NewReader(oldArchive))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(strings.NewReader(newArchive))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	report(&b, []string{"old.jsonl", "new.jsonl"}, []map[string]point{old, cur}, "")
	out := b.String()
	for _, want := range []string{
		"lna94", "large/lp-dantzig-warm-w1",
		"-25.0%", // lna94 pivots 4000 -> 3000
		"-20.0%", // warm pivots 1000 -> 800
		"new",    // cold series only exists in the new archive
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportSeriesFilter(t *testing.T) {
	cur, err := parse(strings.NewReader(newArchive))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	report(&b, []string{"a"}, []map[string]point{cur}, "lp-dantzig")
	out := b.String()
	if strings.Contains(out, "lna94") {
		t.Errorf("filter leaked unrelated series:\n%s", out)
	}
	if !strings.Contains(out, "lp-dantzig-cold-w1") {
		t.Errorf("filter dropped a matching series:\n%s", out)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	if got := delta(0, 0); got != "-" {
		t.Errorf("delta(0,0) = %q", got)
	}
	if got := delta(0, 5); got != "new" {
		t.Errorf("delta(0,5) = %q", got)
	}
	if got := delta(100, 150); got != "+50.0%" {
		t.Errorf("delta(100,150) = %q", got)
	}
}
