// Command perftrend folds rficbench -stats-out JSONL artifacts into a
// perf-trajectory report. CI archives one stats file per run; pointing this
// tool at those files (in chronological order — pass them oldest first, e.g.
// by PR number) prints, per circuit/variant series, how the deterministic
// effort counters (branch-and-bound nodes, simplex pivots) and the
// wall-clock runtime moved from the first archive to the last. Node and
// pivot counts are deterministic, so any movement there is a real solver
// change; runtime is scheduling noise unless it moves a lot.
//
// Usage:
//
//	go run ./scripts/perftrend pr41.jsonl pr42.jsonl pr43.jsonl
//	go run ./scripts/perftrend -series lp-dantzig artifacts/*.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// record mirrors rficbench's solveRecord; unknown fields are ignored so the
// tool reads archives from any PR vintage.
type record struct {
	Circuit   string `json:"circuit"`
	Variant   string `json:"variant"`
	RuntimeNS int64  `json:"runtime_ns"`
	Nodes     int    `json:"nodes"`
	LPPivots  int    `json:"lp_pivots"`
}

func (r record) series() string {
	if r.Variant == "" {
		return r.Circuit
	}
	return r.Circuit + "/" + r.Variant
}

// point is one archive's accumulated totals for a series. A series can
// appear several times in one archive (e.g. repeated solves); summing keeps
// the totals comparable as long as the benchmark matrix is stable.
type point struct {
	runtime time.Duration
	nodes   int
	pivots  int
	count   int
}

func parseFile(path string) (map[string]point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string]point, error) {
	out := map[string]point{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Circuit == "" {
			continue
		}
		p := out[rec.series()]
		p.runtime += time.Duration(rec.RuntimeNS)
		p.nodes += rec.Nodes
		p.pivots += rec.LPPivots
		p.count++
		out[rec.series()] = p
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// delta renders new relative to old as a signed percentage, or "new" when
// the series did not exist in the oldest archive.
func delta(old, new int) string {
	if old == 0 {
		if new == 0 {
			return "-"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(new)-float64(old))/float64(old))
}

func report(w io.Writer, labels []string, archives []map[string]point, filter string) {
	series := map[string]bool{}
	for _, a := range archives {
		for s := range a {
			if filter == "" || strings.Contains(s, filter) {
				series[s] = true
			}
		}
	}
	names := make([]string, 0, len(series))
	for s := range series {
		names = append(names, s)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "perftrend: %d archive(s): %s\n", len(labels), strings.Join(labels, ", "))
	fmt.Fprintf(w, "%-40s %10s %12s %12s %9s %9s %10s\n",
		"series", "solves", "nodes", "lp_pivots", "Δnodes", "Δpivots", "runtime")
	for _, name := range names {
		first, last := archives[0][name], archives[len(archives)-1][name]
		fmt.Fprintf(w, "%-40s %10d %12d %12d %9s %9s %10s\n",
			name, last.count, last.nodes, last.pivots,
			delta(first.nodes, last.nodes), delta(first.pivots, last.pivots),
			last.runtime.Round(time.Millisecond))
	}
}

func main() {
	filter := flag.String("series", "", "only report series whose circuit/variant contains this substring")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: perftrend [-series SUBSTR] stats1.jsonl [stats2.jsonl ...] (oldest first)")
		os.Exit(2)
	}
	var labels []string
	var archives []map[string]point
	for _, path := range flag.Args() {
		pts, err := parseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perftrend: %s: %v\n", path, err)
			os.Exit(1)
		}
		labels = append(labels, path)
		archives = append(archives, pts)
	}
	report(os.Stdout, labels, archives, *filter)
}
